package server

import (
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/nvclient"
	"nvmcache/internal/pmem"
)

func testServer(t *testing.T, opts Options) (*Server, *nvclient.Client) {
	t.Helper()
	kvOpts := kv.DefaultOptions()
	kvOpts.Shards = 2
	kvOpts.MaxDelay = time.Millisecond
	return testServerKV(t, kvOpts, opts)
}

func testServerKV(t *testing.T, kvOpts kv.Options, opts Options) (*Server, *nvclient.Client) {
	t.Helper()
	h := pmem.New(int(kv.RecommendedHeapBytes(kvOpts)))
	st, err := kv.Open(h, kvOpts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Start(st, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := nvclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return srv, cl
}

func TestProtocolEndToEnd(t *testing.T) {
	srv, cl := testServer(t, Options{})
	st := srv.Store()
	step := func(cmd, want string) {
		t.Helper()
		got, err := cl.Do(cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if got != want {
			t.Fatalf("%s: got %q, want %q", cmd, got, want)
		}
	}
	step("PUT 1 100", "OK")
	step("GET 1", "VAL 100")
	step("GET 2", "NIL")
	step("PUT 18446744073709551615 7", "OK") // max uint64 key
	step("GET 18446744073709551615", "VAL 7")
	step("DEL 1", "OK")
	step("DEL 1", "NIL")
	step("GET 1", "NIL")

	if got, _ := cl.Do("PUT 1"); !strings.HasPrefix(got, "ERR usage: PUT") {
		t.Fatalf("arity error: %q", got)
	}
	if got, _ := cl.Do("PUT x y"); !strings.HasPrefix(got, "ERR usage: PUT") {
		t.Fatalf("parse error: %q", got)
	}
	if got, _ := cl.Do("FROB 1"); !strings.HasPrefix(got, "ERR unknown command") {
		t.Fatalf("unknown command: %q", got)
	}

	lines, err := cl.DoMulti("STATS", "END")
	if err != nil {
		t.Fatal(err)
	}
	shards := st.Shards()
	if len(lines) != shards+2 {
		t.Fatalf("STATS: %d lines, want %d shard lines + total + stripes", len(lines), shards+2)
	}
	for i := 0; i < shards; i++ {
		if !strings.HasPrefix(lines[i], "shard=") || !strings.Contains(lines[i], "flush_ratio=") {
			t.Fatalf("STATS shard line %q", lines[i])
		}
	}
	if !strings.HasPrefix(lines[shards], "total ") || !strings.Contains(lines[shards], "ops=4") {
		t.Fatalf("STATS total line %q", lines[shards]) // 2 puts + 2 dels committed
	}
	if !strings.HasPrefix(lines[shards+1], "stripes=") || !strings.Contains(lines[shards+1], "contention=") {
		t.Fatalf("STATS stripes line %q", lines[shards+1])
	}

	step("QUIT", "BYE")
	if _, err := cl.Do("GET 2"); err == nil {
		t.Fatal("connection survived QUIT")
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The drained store still serves direct reads.
	if v, ok, err := st.Get(18446744073709551615); err != nil || !ok || v != 7 {
		t.Fatalf("Get after shutdown = %d,%v,%v", v, ok, err)
	}
}

func TestScanCommand(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	// Write a contiguous key range, then scan it back. Keys are
	// hash-routed, so the scan only sees the subset in start's shard —
	// verify order and membership against the store directly.
	for k := uint64(100); k < 200; k++ {
		if err := cl.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := cl.Do("SCAN 100 20")
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(reply)
	if len(fields) < 2 || fields[0] != "RANGE" {
		t.Fatalf("SCAN reply %q", reply)
	}
	want, err := srv.Store().Scan(100, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2+2*len(want) {
		t.Fatalf("SCAN returned %d fields, want %d pairs", len(fields), len(want))
	}
	var prev uint64
	for i, p := range want {
		if fields[2+2*i] != formatU(p.K) || fields[3+2*i] != formatU(p.V) {
			t.Fatalf("SCAN pair %d = %s/%s, want %d/%d", i, fields[2+2*i], fields[3+2*i], p.K, p.V)
		}
		if i > 0 && p.K <= prev {
			t.Fatalf("SCAN keys not ascending: %d after %d", p.K, prev)
		}
		prev = p.K
		if p.V != p.K*10 {
			t.Fatalf("SCAN value %d for key %d", p.V, p.K)
		}
	}
	// Scans are counted in STATS.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total["scans"] < 1 {
		t.Fatalf("scans counter = %v, want >= 1", stats.Total["scans"])
	}
}

// TestCounterVerbs drives INCR/DECR through the protocol, with absorption
// off (plain read-modify-write) and on (accumulator-deferred acks); the
// replies must be identical.
func TestCounterVerbs(t *testing.T) {
	for _, absorb := range []bool{false, true} {
		name := "absorb-off"
		if absorb {
			name = "absorb-on"
		}
		t.Run(name, func(t *testing.T) {
			kvOpts := kv.DefaultOptions()
			kvOpts.Shards = 2
			kvOpts.MaxDelay = time.Millisecond
			kvOpts.Absorb = kv.AbsorbConfig{Enabled: absorb, Threshold: 4, Deadline: 2 * time.Millisecond}
			srv, cl := testServerKV(t, kvOpts, Options{})
			defer srv.Shutdown()
			step := func(cmd, want string) {
				t.Helper()
				got, err := cl.Do(cmd)
				if err != nil {
					t.Fatalf("%s: %v", cmd, err)
				}
				if got != want {
					t.Fatalf("%s: got %q, want %q", cmd, got, want)
				}
			}
			step("INCR 5 10", "VAL 10")
			step("INCR 5 1", "VAL 11")
			step("DECR 5 2", "VAL 9")
			step("GET 5", "VAL 9")
			step("DECR 6 1", "VAL 18446744073709551615") // wraps from missing=0
			if got, _ := cl.Do("INCR 5"); !strings.HasPrefix(got, "ERR usage: INCR") {
				t.Fatalf("arity error: %q", got)
			}
			if got, _ := cl.Do("DECR x 1"); !strings.HasPrefix(got, "ERR usage: DECR") {
				t.Fatalf("parse error: %q", got)
			}
			if v, err := cl.Incr(5, 1); err != nil || v != 10 {
				t.Fatalf("typed Incr = %d,%v", v, err)
			}
			if v, err := cl.Decr(5, 1); err != nil || v != 9 {
				t.Fatalf("typed Decr = %d,%v", v, err)
			}
			stats, err := cl.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if stats.Total["incrs"] != 3 || stats.Total["decrs"] != 3 {
				t.Fatalf("counter stats: incrs=%v decrs=%v", stats.Total["incrs"], stats.Total["decrs"])
			}
		})
	}
}

// TestStatsAbsorbKeysFixedSchema is the fixed-key-set regression for the
// absorption counters: a server with absorption off must still render the
// absorbed_*/committed_* keys (zero absorption, committed == mutations),
// and nvclient.ParseStats/Diff must handle them like any other key.
func TestStatsAbsorbKeysFixedSchema(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	before, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"absorbed_ops", "committed_ops", "absorb_ratio",
		"absorb_commits_threshold", "absorb_commits_deadline",
		"incrs", "decrs",
	} {
		if _, ok := before.Total[key]; !ok {
			t.Fatalf("STATS total line missing %q on an absorption-off server", key)
		}
		for shard, kvmap := range before.Shards {
			if _, ok := kvmap[key]; !ok {
				t.Fatalf("STATS shard %d missing %q", shard, key)
			}
		}
	}
	for i := uint64(0); i < 10; i++ {
		if err := cl.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	after, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	d := after.Diff(before)
	if d["total.absorbed_ops"] != 0 {
		t.Fatalf("absorption-off server absorbed %v ops", d["total.absorbed_ops"])
	}
	if d["total.committed_ops"] != 10 || d["total.ops"] != 10 {
		t.Fatalf("committed=%v ops=%v, want 10/10", d["total.committed_ops"], d["total.ops"])
	}
	if after.Total["absorb_ratio"] != 0 {
		t.Fatalf("absorb_ratio = %v on an absorption-off server", after.Total["absorb_ratio"])
	}
}

func TestStallHook(t *testing.T) {
	var stalls atomic.Int64
	srv, cl := testServer(t, Options{Stall: func(verb string) {
		if verb == "GET" {
			stalls.Add(1)
			time.Sleep(5 * time.Millisecond)
		}
	}})
	defer srv.Shutdown()
	if err := cl.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, _, err := cl.Get(1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("stall hook did not delay the GET (%v)", d)
	}
	if stalls.Load() != 1 {
		t.Fatalf("stall hook ran %d times, want 1", stalls.Load())
	}
}

// TestPipelinedWindow drives the server with the client's pipelined calls:
// a whole window of requests is sent in one flush and the replies come
// back in FIFO order.
func TestPipelinedWindow(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	const n = 256
	for i := uint64(0); i < n; i++ {
		if err := cl.Send(formatPut(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		reply, err := cl.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if reply != "OK" {
			t.Fatalf("pipelined PUT %d: %q", i, reply)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok, err := cl.Get(i); err != nil || !ok || v != i+1 {
			t.Fatalf("GET %d = %d,%v,%v", i, v, ok, err)
		}
	}
}

func formatU(v uint64) string      { return strconv.FormatUint(v, 10) }
func formatPut(k, v uint64) string { return "PUT " + formatU(k) + " " + formatU(v) }

// TestStatsCheckpointKeysFixedSchema is the fixed-key-set regression for
// the checkpoint/recovery gauges: every server — checkpointing or not —
// must render the checkpoint_*, journal_* and recovery_* keys so dashboards
// and nvclient.Diff never see the schema flap, and a checkpointing server
// must show live values through the wire protocol.
func TestStatsCheckpointKeysFixedSchema(t *testing.T) {
	ckptKeys := []string{
		"checkpoint_last_gen", "checkpoint_pairs", "checkpoint_skipped",
		"checkpoints", "journal_ops", "journal_overflows",
		"journal_truncated", "recovery_fallbacks", "recovery_mode",
		"recovery_replayed", "recovery_restored",
	}

	srv, cl := testServer(t, Options{})
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ckptKeys {
		if _, ok := stats.Total[key]; !ok {
			t.Fatalf("STATS total line missing %q on a checkpoint-off server", key)
		}
		for shard, kvmap := range stats.Shards {
			if _, ok := kvmap[key]; !ok {
				t.Fatalf("STATS shard %d missing %q", shard, key)
			}
		}
	}
	if stats.Total["checkpoints"] != 0 || stats.Total["journal_ops"] != 0 {
		t.Fatalf("checkpoint-off server reports checkpoints=%v journal_ops=%v",
			stats.Total["checkpoints"], stats.Total["journal_ops"])
	}
	srv.Shutdown()

	kvOpts := kv.DefaultOptions()
	kvOpts.Shards = 2
	kvOpts.MaxDelay = time.Millisecond
	kvOpts.Checkpoint = kv.CheckpointConfig{Enabled: true, Interval: 2 * time.Millisecond}
	srv2, cl2 := testServerKV(t, kvOpts, Options{})
	defer srv2.Shutdown()
	for i := uint64(0); i < 32; i++ {
		if err := cl2.Put(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err = cl2.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Total["checkpoints"] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint published within 5s: %v", stats.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stats.Total["journal_ops"] == 0 {
		t.Fatalf("checkpointing server journaled nothing: %v", stats.Total)
	}
	if stats.Total["checkpoint_pairs"] == 0 {
		t.Fatalf("published image holds no pairs: %v", stats.Total)
	}
}
