package server

import (
	"io"
	"net"
	"testing"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/proto"
)

// FuzzServerProto feeds arbitrary byte streams — text lines, binary
// frames, and garbage — to a live server over TCP. The properties under
// test: the handler never panics (a panic kills the shared server and
// every subsequent input fails to dial), always closes the connection
// once the input is exhausted (the read-to-EOF below would otherwise
// time out), and never leaks its goroutine (Shutdown in cleanup blocks
// on the handler WaitGroup, so a leak deadlocks the test binary).
func FuzzServerProto(f *testing.F) {
	opts := kv.DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	srv, err := SelfHost(opts, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		if err := srv.Shutdown(); err != nil {
			f.Errorf("shutdown after fuzzing: %v", err)
		}
	})

	// Well-formed text.
	f.Add([]byte("PUT 1 2\nGET 1\nSCAN 0 10\nSTATS\nQUIT\n"))
	f.Add([]byte("MPUT 1 10 2 20\nMGET 1 2 3\nINCR 4 1\nDECR 4 1\nDEL 1\n"))
	// Truncated and malformed text.
	f.Add([]byte("PUT 1 2"))
	f.Add([]byte("PUT 1\nBOGUS\nGET x\n\n\n"))
	// Well-formed binary.
	bin := proto.AppendPut(nil, 1, 2)
	bin = proto.AppendGet(bin, 1)
	bin = proto.AppendMPut(bin, []uint64{3, 4}, []uint64{30, 40})
	bin = proto.AppendMGet(bin, []uint64{1, 3, 9})
	bin = proto.AppendScan(bin, 0, 16)
	bin = proto.AppendStats(bin)
	bin = proto.AppendQuit(bin)
	f.Add(bin)
	// Binary framing violations: bad version, oversized length, truncated
	// header, payload shorter than declared, count over MaxOps.
	f.Add([]byte{0xff, 0x01, 0, 0, 0, 0})
	f.Add([]byte{proto.Version, proto.OpGet, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{proto.Version, proto.OpPut})
	f.Add([]byte{proto.Version, proto.OpPut, 16, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{proto.Version, proto.OpMGet, 4, 0, 0, 0, 0xff, 0xff, 0, 0})
	f.Add([]byte{proto.Version, 0x7f, 0, 0, 0, 0}) // unknown opcode

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatalf("dial (did a previous input kill the server?): %v", err)
		}
		defer c.Close()
		c.SetDeadline(time.Now().Add(10 * time.Second))
		if _, err := c.Write(data); err != nil {
			// The server may close mid-write after a framing violation;
			// that is valid behavior, not a failure.
			return
		}
		c.(*net.TCPConn).CloseWrite()
		if _, err := io.Copy(io.Discard, c); err != nil {
			t.Fatalf("handler did not terminate the connection: %v", err)
		}
	})
}
