// Package server implements the nvserver wire protocols on top of a
// kv.Store. It used to live inside cmd/nvserver; it is a package of its
// own so that internal/loadgen can boot an in-process ("self-hosted")
// server for tests, CI smoke runs and nvbench experiments without an
// external process, and so each protocol has exactly one implementation.
//
// One goroutine accepts; every connection gets its own handler goroutine,
// so a slow client never stalls the others — concurrency converges in the
// store's shard queues, where group commit batches it.
//
// Two protocols share the port, chosen per connection by its first byte:
// proto.Version (0xB1, never a text verb's first byte) selects the binary
// framed protocol (see internal/proto — length-prefixed frames, reused
// per-connection buffers, an allocation-free decode→reply hot path),
// anything else the text line protocol below. Replies in both are
// coalesced: the handler writes only once no further request is already
// buffered, so a pipelining client gets its whole window's replies in one
// syscall.
//
// Text protocol (one request line, one reply line, decimal uint64
// operands):
//
//	PUT <k> <v>        ->  OK
//	GET <k>            ->  VAL <v> | NIL
//	DEL <k>            ->  OK | NIL
//	INCR <k> <d>       ->  VAL <v> (the post-increment value)
//	DECR <k> <d>       ->  VAL <v> (wrapping uint64; missing keys count from 0)
//	SCAN <start> <n>   ->  RANGE <count> k1 v1 k2 v2 ... (ascending, one line)
//	MGET <k> ...       ->  VALS <count> <v|NIL> ... (input order)
//	MPUT <k> <v> ...   ->  OK (all pairs durable; one group-commit enqueue per shard)
//	STATS              ->  one line per shard, a total line, a stripes line, then END
//	QUIT               ->  BYE (server closes the connection)
//	anything else      ->  ERR <message>
//
// MGET/MPUT accept at most proto.MaxOps keys/pairs per request in either
// protocol. An OK reply to PUT/DEL/MPUT is an ack-after-flush: the
// mutation's FASE has committed and drained, so it survives any later
// power failure. The same holds for a VAL reply to INCR/DECR — with
// absorption enabled (kv.Options.Absorb) the reply may be deferred until
// the shard's counter accumulator commits the key's net delta, but a
// replied counter op is durable. STATS lines are sorted, stable
// `key=value` tokens (see kv.ShardStats.Pairs); internal/nvclient parses
// them.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
	"nvmcache/internal/proto"
)

// MaxScan caps the pair count one SCAN may return (the reply is a single
// line; an unbounded scan would turn it into an arbitrarily large write).
const MaxScan = 512

// connBufSize sizes each connection's read buffer and reply buffer: large
// enough that a deep pipeline window of requests decodes zero-copy and
// its replies coalesce into one write.
const connBufSize = 64 << 10

// Options tune one Server beyond its store and listener.
type Options struct {
	// Stall, when non-nil, runs before every parsed request with the
	// request's verb. Load tests inject server-side latency through it (a
	// sleeping hook) to prove the client's coordinated-omission accounting:
	// an open-loop driver must see the stall inflate its tail percentiles.
	// Binary-protocol requests report the equivalent text verb.
	Stall func(verb string)
	// WrapConn, when non-nil, wraps every accepted connection before the
	// handler touches it. Tests interpose counting wrappers through it to
	// assert write-coalescing behavior.
	WrapConn func(net.Conn) net.Conn
}

// Server serves the line protocol until Shutdown.
type Server struct {
	st     *kv.Store
	ln     net.Listener
	opts   Options
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// New wraps an accepted listener and a running store. Call Serve to accept.
func New(st *kv.Store, ln net.Listener, opts Options) *Server {
	return &Server{st: st, ln: ln, opts: opts, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves st in a background goroutine.
func Start(st *kv.Store, addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := New(st, ln, opts)
	go srv.Serve()
	return srv, nil
}

// SelfHost boots a complete in-process server: a fresh emulated NVRAM heap
// sized for kvOpts, a store opened on it, and a listener on an ephemeral
// loopback port, serving in the background. It is how loadgen tests, CI
// smoke runs and `nvload -selfhost` get a live nvserver with no external
// process. Shutdown closes the store too.
func SelfHost(kvOpts kv.Options, opts Options) (*Server, error) {
	h := pmem.New(int(kv.RecommendedHeapBytes(kvOpts)))
	st, err := kv.Open(h, kvOpts)
	if err != nil {
		return nil, err
	}
	srv, err := Start(st, "127.0.0.1:0", opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	return srv, nil
}

// Addr returns the listener's address (dial this).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Store exposes the served store (self-tests assert against it directly).
func (s *Server) Store() *kv.Store { return s.st }

// Serve accepts until the listener closes.
func (s *Server) Serve() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, unblocks every connection reader, waits for
// the handlers to finish, then closes the store gracefully: requests
// already in the shard queues are still batched, committed, flushed and
// acked before Close returns, so a load run ends with a clean durable
// state. On a crashed store the drain is impossible and Close reports
// ErrCrashed; Shutdown passes that through.
func (s *Server) Shutdown() error {
	s.closed.Store(true)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.st.Close()
}

// handle serves one connection: the first byte picks the protocol (see
// the package comment), then the matching loop runs until the client
// quits or the connection dies.
func (s *Server) handle(c net.Conn) {
	if s.opts.WrapConn != nil {
		c = s.opts.WrapConn(c)
	}
	defer c.Close()
	r := bufio.NewReaderSize(c, connBufSize)
	first, err := r.Peek(1)
	if err != nil {
		return
	}
	if proto.Sniff(first[0]) {
		s.handleBinary(c, r)
		return
	}
	s.handleText(c, r)
}

func (s *Server) handleText(c net.Conn, r *bufio.Reader) {
	w := bufio.NewWriter(c)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			// No trailing delimiter: the line is a truncated request from a
			// dying connection and must never execute — a partial `PUT 1 2`
			// cut from `PUT 1 23` would commit the wrong value.
			w.Flush()
			return
		}
		if fields := strings.Fields(line); len(fields) > 0 {
			if quit := s.command(w, fields); quit {
				w.Flush()
				return
			}
		}
		// Flush only when no further request is already buffered: a
		// pipelining client gets its whole window's replies in one syscall.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// backend is the store surface the binary handler drives; *kv.Store
// implements it. The indirection is a test seam: the decode→reply
// allocation gates drive a binHandler over a stub backend to prove the
// protocol layer itself adds zero allocations per op, independent of the
// engine's per-batch bookkeeping (which group commit amortizes and the
// nvbench proto experiment measures end to end).
type backend interface {
	Put(k, v uint64) error
	Get(k uint64) (uint64, bool, error)
	Delete(k uint64) (bool, error)
	Incr(k, d uint64) (uint64, error)
	Decr(k, d uint64) (uint64, error)
	Scan(start uint64, n int) ([]kv.Pair, error)
	GetBatch(keys, vals []uint64, found []bool) error
	PutBatch(pairs []kv.Pair) error
}

// binHandler is one binary-protocol connection's state: the backend it
// drives and the reused buffers that keep the decode→reply path
// allocation-free (wbuf accumulates reply frames between coalesced
// writes; scratch backs oversized request payloads; keys/vals/found/pairs
// back the batched verbs).
type binHandler struct {
	srv     *Server
	be      backend
	wbuf    []byte
	scratch []byte
	keys    []uint64
	vals    []uint64
	found   []bool
	pairs   []kv.Pair
}

func (s *Server) handleBinary(c net.Conn, r *bufio.Reader) {
	h := &binHandler{srv: s, be: s.st, wbuf: make([]byte, 0, connBufSize)}
	for {
		op, payload, err := proto.ReadFrame(r, &h.scratch)
		if err != nil {
			// A protocol violation gets a final error frame before the
			// close (framing past it cannot be trusted, so the connection
			// cannot be resynchronized); a plain read error — EOF, reset —
			// just ends the handler.
			var pe *proto.Error
			if errors.As(err, &pe) {
				h.wbuf = proto.AppendErr(h.wbuf, pe.Msg)
			}
			if len(h.wbuf) > 0 {
				c.Write(h.wbuf)
			}
			return
		}
		if h.exec(op, payload) {
			c.Write(h.wbuf)
			return
		}
		// Coalesce: write only when no further request is already buffered
		// (one syscall acks the whole pipeline window) or the reply buffer
		// has outgrown its window.
		if r.Buffered() == 0 || len(h.wbuf) >= connBufSize {
			if len(h.wbuf) > 0 {
				if _, err := c.Write(h.wbuf); err != nil {
					return
				}
				h.wbuf = h.wbuf[:0]
			}
		}
	}
}

// exec decodes and executes one binary request, appending its reply
// frame(s) to h.wbuf; it reports whether the connection should close. A
// malformed payload inside an intact frame gets an error frame and the
// connection keeps serving — framing is still synchronized.
func (h *binHandler) exec(op byte, p []byte) (quit bool) {
	if stall := h.srv.opts.Stall; stall != nil {
		stall(proto.VerbName(op))
	}
	switch op {
	case proto.OpPut:
		k, v, err := proto.DecodeKV(p)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, "bad PUT payload")
			return false
		}
		if err := h.be.Put(k, v); err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		h.wbuf = proto.AppendOK(h.wbuf)
	case proto.OpGet:
		k, err := proto.DecodeKey(p)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, "bad GET payload")
			return false
		}
		v, ok, err := h.be.Get(k)
		switch {
		case err != nil:
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
		case ok:
			h.wbuf = proto.AppendVal(h.wbuf, v)
		default:
			h.wbuf = proto.AppendNil(h.wbuf)
		}
	case proto.OpDel:
		k, err := proto.DecodeKey(p)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, "bad DEL payload")
			return false
		}
		found, err := h.be.Delete(k)
		switch {
		case err != nil:
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
		case found:
			h.wbuf = proto.AppendOK(h.wbuf)
		default:
			h.wbuf = proto.AppendNil(h.wbuf)
		}
	case proto.OpIncr, proto.OpDecr:
		k, d, err := proto.DecodeKV(p)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, "bad counter payload")
			return false
		}
		cop := h.be.Incr
		if op == proto.OpDecr {
			cop = h.be.Decr
		}
		v, err := cop(k, d)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		h.wbuf = proto.AppendVal(h.wbuf, v)
	case proto.OpScan:
		start, n, err := proto.DecodeScan(p)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, "bad SCAN payload")
			return false
		}
		if n > MaxScan {
			n = MaxScan
		}
		pairs, err := h.be.Scan(start, int(n))
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		h.wbuf = proto.AppendRangeHeader(h.wbuf, len(pairs))
		for _, pr := range pairs {
			h.wbuf = proto.AppendU64(h.wbuf, pr.K)
			h.wbuf = proto.AppendU64(h.wbuf, pr.V)
		}
	case proto.OpMGet:
		var err error
		h.keys, err = proto.DecodeMGet(p, h.keys)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		n := len(h.keys)
		if cap(h.vals) < n {
			h.vals = make([]uint64, 0, proto.MaxOps)
		}
		if cap(h.found) < n {
			h.found = make([]bool, 0, proto.MaxOps)
		}
		h.vals, h.found = h.vals[:n], h.found[:n]
		if err := h.be.GetBatch(h.keys, h.vals, h.found); err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		h.wbuf = proto.AppendValsHeader(h.wbuf, n)
		for i := 0; i < n; i++ {
			h.wbuf = proto.AppendValsEntry(h.wbuf, h.vals[i], h.found[i])
		}
	case proto.OpMPut:
		var err error
		h.keys, h.vals, err = proto.DecodeMPut(p, h.keys, h.vals)
		if err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		if cap(h.pairs) < len(h.keys) {
			h.pairs = make([]kv.Pair, 0, proto.MaxOps)
		}
		h.pairs = h.pairs[:0]
		for i := range h.keys {
			h.pairs = append(h.pairs, kv.Pair{K: h.keys[i], V: h.vals[i]})
		}
		if err := h.be.PutBatch(h.pairs); err != nil {
			h.wbuf = proto.AppendErr(h.wbuf, err.Error())
			return false
		}
		h.wbuf = proto.AppendOK(h.wbuf)
	case proto.OpStats:
		h.wbuf = proto.AppendStatsReply(h.wbuf, h.srv.statsText())
	case proto.OpQuit:
		h.wbuf = proto.AppendBye(h.wbuf)
		return true
	default:
		h.wbuf = proto.AppendErr(h.wbuf, "unknown opcode")
	}
	return false
}

// statsText renders the STATS body shared by both protocols: one line per
// shard, the total line, the stripes line (END is the text protocol's
// framing and stays out).
func (s *Server) statsText() []byte {
	var b strings.Builder
	stats := s.st.Stats()
	for _, st := range stats {
		fmt.Fprintln(&b, st)
	}
	fmt.Fprintln(&b, kv.Totals(stats))
	fmt.Fprintln(&b, s.st.StripeSummary())
	return []byte(b.String())
}

// command executes one request line and buffers the reply; it reports
// whether the connection should close.
func (s *Server) command(w *bufio.Writer, f []string) (quit bool) {
	verb := strings.ToUpper(f[0])
	if s.opts.Stall != nil {
		s.opts.Stall(verb)
	}
	switch verb {
	case "PUT":
		k, v, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: PUT <key> <value> (%v)\n", err)
			return false
		}
		if err := s.st.Put(k, v); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		k, err := parse1(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: GET <key> (%v)\n", err)
			return false
		}
		v, ok, err := s.st.Get(k)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case ok:
			fmt.Fprintf(w, "VAL %d\n", v)
		default:
			fmt.Fprintln(w, "NIL")
		}
	case "DEL":
		k, err := parse1(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: DEL <key> (%v)\n", err)
			return false
		}
		found, err := s.st.Delete(k)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case found:
			fmt.Fprintln(w, "OK")
		default:
			fmt.Fprintln(w, "NIL")
		}
	case "INCR", "DECR":
		k, d, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: %s <key> <delta> (%v)\n", verb, err)
			return false
		}
		op := s.st.Incr
		if verb == "DECR" {
			op = s.st.Decr
		}
		v, err := op(k, d)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "VAL %d\n", v)
	case "SCAN":
		start, n, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: SCAN <start> <count> (%v)\n", err)
			return false
		}
		if n > MaxScan {
			n = MaxScan
		}
		pairs, err := s.st.Scan(start, int(n))
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "RANGE %d", len(pairs))
		for _, p := range pairs {
			fmt.Fprintf(w, " %d %d", p.K, p.V)
		}
		fmt.Fprintln(w)
	case "MGET":
		if len(f) < 2 {
			fmt.Fprintln(w, "ERR usage: MGET <key> ...")
			return false
		}
		if len(f)-1 > proto.MaxOps {
			fmt.Fprintf(w, "ERR MGET accepts at most %d keys\n", proto.MaxOps)
			return false
		}
		keys := make([]uint64, len(f)-1)
		for i, tok := range f[1:] {
			k, err := strconv.ParseUint(tok, 10, 64)
			if err != nil {
				fmt.Fprintf(w, "ERR usage: MGET <key> ... (%v)\n", err)
				return false
			}
			keys[i] = k
		}
		vals := make([]uint64, len(keys))
		found := make([]bool, len(keys))
		if err := s.st.GetBatch(keys, vals, found); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "VALS %d", len(keys))
		for i := range keys {
			if found[i] {
				fmt.Fprintf(w, " %d", vals[i])
			} else {
				fmt.Fprint(w, " NIL")
			}
		}
		fmt.Fprintln(w)
	case "MPUT":
		if len(f) < 3 || (len(f)-1)%2 != 0 {
			fmt.Fprintln(w, "ERR usage: MPUT <key> <value> ...")
			return false
		}
		if (len(f)-1)/2 > proto.MaxOps {
			fmt.Fprintf(w, "ERR MPUT accepts at most %d pairs\n", proto.MaxOps)
			return false
		}
		pairs := make([]kv.Pair, 0, (len(f)-1)/2)
		for i := 1; i < len(f); i += 2 {
			k, err := strconv.ParseUint(f[i], 10, 64)
			if err == nil {
				var v uint64
				v, err = strconv.ParseUint(f[i+1], 10, 64)
				if err == nil {
					pairs = append(pairs, kv.Pair{K: k, V: v})
					continue
				}
			}
			fmt.Fprintf(w, "ERR usage: MPUT <key> <value> ... (%v)\n", err)
			return false
		}
		if err := s.st.PutBatch(pairs); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintln(w, "OK")
	case "STATS":
		w.Write(s.statsText())
		fmt.Fprintln(w, "END")
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", f[0])
	}
	return false
}

func parse1(f []string) (uint64, error) {
	if len(f) != 2 {
		return 0, fmt.Errorf("want 1 operand, got %d", len(f)-1)
	}
	return strconv.ParseUint(f[1], 10, 64)
}

func parse2(f []string) (uint64, uint64, error) {
	if len(f) != 3 {
		return 0, 0, fmt.Errorf("want 2 operands, got %d", len(f)-1)
	}
	k, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(f[2], 10, 64)
	return k, v, err
}
