// Package server implements the nvserver TCP line protocol on top of a
// kv.Store. It used to live inside cmd/nvserver; it is a package of its
// own so that internal/loadgen can boot an in-process ("self-hosted")
// server for tests, CI smoke runs and nvbench experiments without an
// external process, and so the protocol has exactly one implementation.
//
// One goroutine accepts; every connection gets its own handler goroutine,
// so a slow client never stalls the others — concurrency converges in the
// store's shard queues, where group commit batches it.
//
// Protocol (one request line, one reply line, decimal uint64 operands):
//
//	PUT <k> <v>      ->  OK
//	GET <k>          ->  VAL <v> | NIL
//	DEL <k>          ->  OK | NIL
//	INCR <k> <d>     ->  VAL <v> (the post-increment value)
//	DECR <k> <d>     ->  VAL <v> (wrapping uint64; missing keys count from 0)
//	SCAN <start> <n> ->  RANGE <count> k1 v1 k2 v2 ... (ascending, one line)
//	STATS            ->  one line per shard, a total line, a stripes line, then END
//	QUIT             ->  BYE (server closes the connection)
//	anything else    ->  ERR <message>
//
// An OK reply to PUT/DEL is an ack-after-flush: the mutation's FASE has
// committed and drained, so it survives any later power failure. The same
// holds for a VAL reply to INCR/DECR — with absorption enabled
// (kv.Options.Absorb) the reply may be deferred until the shard's counter
// accumulator commits the key's net delta, but a replied counter op is
// durable. STATS lines are sorted, stable `key=value` tokens (see
// kv.ShardStats.Pairs); internal/nvclient parses them.
package server

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
)

// MaxScan caps the pair count one SCAN may return (the reply is a single
// line; an unbounded scan would turn it into an arbitrarily large write).
const MaxScan = 512

// Options tune one Server beyond its store and listener.
type Options struct {
	// Stall, when non-nil, runs before every parsed request with the
	// request's verb. Load tests inject server-side latency through it (a
	// sleeping hook) to prove the client's coordinated-omission accounting:
	// an open-loop driver must see the stall inflate its tail percentiles.
	Stall func(verb string)
}

// Server serves the line protocol until Shutdown.
type Server struct {
	st     *kv.Store
	ln     net.Listener
	opts   Options
	closed atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// New wraps an accepted listener and a running store. Call Serve to accept.
func New(st *kv.Store, ln net.Listener, opts Options) *Server {
	return &Server{st: st, ln: ln, opts: opts, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves st in a background goroutine.
func Start(st *kv.Store, addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := New(st, ln, opts)
	go srv.Serve()
	return srv, nil
}

// SelfHost boots a complete in-process server: a fresh emulated NVRAM heap
// sized for kvOpts, a store opened on it, and a listener on an ephemeral
// loopback port, serving in the background. It is how loadgen tests, CI
// smoke runs and `nvload -selfhost` get a live nvserver with no external
// process. Shutdown closes the store too.
func SelfHost(kvOpts kv.Options, opts Options) (*Server, error) {
	h := pmem.New(int(kv.RecommendedHeapBytes(kvOpts)))
	st, err := kv.Open(h, kvOpts)
	if err != nil {
		return nil, err
	}
	srv, err := Start(st, "127.0.0.1:0", opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	return srv, nil
}

// Addr returns the listener's address (dial this).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Store exposes the served store (self-tests assert against it directly).
func (s *Server) Store() *kv.Store { return s.st }

// Serve accepts until the listener closes.
func (s *Server) Serve() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, unblocks every connection reader, waits for
// the handlers to finish, then closes the store gracefully: requests
// already in the shard queues are still batched, committed, flushed and
// acked before Close returns, so a load run ends with a clean durable
// state. On a crashed store the drain is impossible and Close reports
// ErrCrashed; Shutdown passes that through.
func (s *Server) Shutdown() error {
	s.closed.Store(true)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.st.Close()
}

func (s *Server) handle(c net.Conn) {
	defer c.Close()
	r := bufio.NewReader(c)
	w := bufio.NewWriter(c)
	for {
		line, err := r.ReadString('\n')
		if fields := strings.Fields(line); len(fields) > 0 {
			if quit := s.command(w, fields); quit {
				w.Flush()
				return
			}
		}
		if err != nil {
			w.Flush()
			return
		}
		// Flush only when no further request is already buffered: a
		// pipelining client gets its whole window's replies in one syscall.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// command executes one request line and buffers the reply; it reports
// whether the connection should close.
func (s *Server) command(w *bufio.Writer, f []string) (quit bool) {
	verb := strings.ToUpper(f[0])
	if s.opts.Stall != nil {
		s.opts.Stall(verb)
	}
	switch verb {
	case "PUT":
		k, v, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: PUT <key> <value> (%v)\n", err)
			return false
		}
		if err := s.st.Put(k, v); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		k, err := parse1(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: GET <key> (%v)\n", err)
			return false
		}
		v, ok, err := s.st.Get(k)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case ok:
			fmt.Fprintf(w, "VAL %d\n", v)
		default:
			fmt.Fprintln(w, "NIL")
		}
	case "DEL":
		k, err := parse1(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: DEL <key> (%v)\n", err)
			return false
		}
		found, err := s.st.Delete(k)
		switch {
		case err != nil:
			fmt.Fprintf(w, "ERR %v\n", err)
		case found:
			fmt.Fprintln(w, "OK")
		default:
			fmt.Fprintln(w, "NIL")
		}
	case "INCR", "DECR":
		k, d, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: %s <key> <delta> (%v)\n", verb, err)
			return false
		}
		op := s.st.Incr
		if verb == "DECR" {
			op = s.st.Decr
		}
		v, err := op(k, d)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "VAL %d\n", v)
	case "SCAN":
		start, n, err := parse2(f)
		if err != nil {
			fmt.Fprintf(w, "ERR usage: SCAN <start> <count> (%v)\n", err)
			return false
		}
		if n > MaxScan {
			n = MaxScan
		}
		pairs, err := s.st.Scan(start, int(n))
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return false
		}
		fmt.Fprintf(w, "RANGE %d", len(pairs))
		for _, p := range pairs {
			fmt.Fprintf(w, " %d %d", p.K, p.V)
		}
		fmt.Fprintln(w)
	case "STATS":
		stats := s.st.Stats()
		for _, st := range stats {
			fmt.Fprintln(w, st)
		}
		fmt.Fprintln(w, kv.Totals(stats))
		fmt.Fprintln(w, s.st.StripeSummary())
		fmt.Fprintln(w, "END")
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", f[0])
	}
	return false
}

func parse1(f []string) (uint64, error) {
	if len(f) != 2 {
		return 0, fmt.Errorf("want 1 operand, got %d", len(f)-1)
	}
	return strconv.ParseUint(f[1], 10, 64)
}

func parse2(f []string) (uint64, uint64, error) {
	if len(f) != 3 {
		return 0, 0, fmt.Errorf("want 2 operands, got %d", len(f)-1)
	}
	k, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseUint(f[2], 10, 64)
	return k, v, err
}
