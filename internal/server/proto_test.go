package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/nvclient"
	"nvmcache/internal/proto"
)

// testServerBin boots a server and a binary-mode client on it.
func testServerBin(t *testing.T, opts Options) (*Server, *nvclient.Client) {
	t.Helper()
	srv, cl := testServer(t, opts)
	cl.Close()
	bcl, err := nvclient.DialBinary(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return srv, bcl
}

func TestBinaryProtocolEndToEnd(t *testing.T) {
	srv, cl := testServerBin(t, Options{})
	defer srv.Shutdown()

	if err := cl.Put(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v,%v", v, ok, err)
	}
	if _, ok, err := cl.Get(2); err != nil || ok {
		t.Fatalf("Get(2) = %v,%v, want miss", ok, err)
	}
	if err := cl.Put(1<<64-1, 7); err != nil { // max uint64 key
		t.Fatal(err)
	}
	if v, ok, _ := cl.Get(1<<64 - 1); !ok || v != 7 {
		t.Fatalf("Get(max) = %d,%v", v, ok)
	}
	if v, err := cl.Incr(5, 10); err != nil || v != 10 {
		t.Fatalf("Incr = %d,%v", v, err)
	}
	if v, err := cl.Decr(5, 3); err != nil || v != 7 {
		t.Fatalf("Decr = %d,%v", v, err)
	}

	// DEL via the pipelined primitives (no blocking helper for it).
	if err := cl.SendDel(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if op, _, err := cl.RecvReply(); err != nil || op != proto.RepOK {
		t.Fatalf("DEL reply = %d,%v, want RepOK", op, err)
	}
	if err := cl.SendDel(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if op, _, err := cl.RecvReply(); err != nil || op != proto.RepNil {
		t.Fatalf("second DEL reply = %d,%v, want RepNil", op, err)
	}

	// Batched verbs.
	keys := []uint64{10, 11, 12, 13}
	vals := []uint64{100, 110, 120, 130}
	if err := cl.MPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	probe := []uint64{10, 999, 12}
	gv, gf, err := cl.MGet(probe, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !gf[0] || gv[0] != 100 || gf[1] || !gf[2] || gv[2] != 120 {
		t.Fatalf("MGet = %v %v", gv, gf)
	}

	// SCAN parity with the store.
	if err := cl.SendScan(10, 4); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	op, p, err := cl.RecvReply()
	if err != nil || op != proto.RepRange {
		t.Fatalf("SCAN reply = %d,%v", op, err)
	}
	sk, sv, err := proto.DecodeRange(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Store().Scan(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sk) != len(want) {
		t.Fatalf("SCAN: %d pairs, want %d", len(sk), len(want))
	}
	for i := range want {
		if sk[i] != want[i].K || sv[i] != want[i].V {
			t.Fatalf("SCAN pair %d = %d/%d, want %d/%d", i, sk[i], sv[i], want[i].K, want[i].V)
		}
	}

	// STATS over the binary protocol parses into the same schema.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total["puts"] != 6 { // 2 puts + 4 mput pairs
		t.Fatalf("stats puts = %v, want 6", stats.Total["puts"])
	}

	// QUIT closes the connection after the BYE frame.
	if err := cl.SendQuit(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if op, _, err := cl.RecvReply(); err != nil || op != proto.RepBye {
		t.Fatalf("QUIT reply = %d,%v", op, err)
	}
	if _, _, err := cl.RecvReply(); err == nil {
		t.Fatal("connection survived QUIT")
	}
}

// TestProtocolsShareThePort proves the version-sniffing negotiation: a
// text and a binary client work side by side against one listener and
// see each other's writes.
func TestProtocolsShareThePort(t *testing.T) {
	srv, txt := testServer(t, Options{})
	defer srv.Shutdown()
	bin, err := nvclient.DialBinary(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	if err := txt.Put(1, 11); err != nil {
		t.Fatal(err)
	}
	if err := bin.Put(2, 22); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := bin.Get(1); err != nil || !ok || v != 11 {
		t.Fatalf("binary Get(text's key) = %d,%v,%v", v, ok, err)
	}
	if v, ok, err := txt.Get(2); err != nil || !ok || v != 22 {
		t.Fatalf("text Get(binary's key) = %d,%v,%v", v, ok, err)
	}
}

// TestTextMGetMPutVerbs drives the new batched text verbs end to end.
func TestTextMGetMPutVerbs(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	step := func(cmd, want string) {
		t.Helper()
		got, err := cl.Do(cmd)
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		if got != want {
			t.Fatalf("%s: got %q, want %q", cmd, got, want)
		}
	}
	step("MPUT 1 10 2 20 3 30", "OK")
	step("MGET 1 9 3", "VALS 3 10 NIL 30")
	// Typed client calls ride the same verbs on a text connection.
	if err := cl.MPut([]uint64{4}, []uint64{40}); err != nil {
		t.Fatal(err)
	}
	vals, found, err := cl.MGet([]uint64{4, 5}, nil, nil)
	if err != nil || !found[0] || vals[0] != 40 || found[1] {
		t.Fatalf("typed MGet = %v %v %v", vals, found, err)
	}
	if got, _ := cl.Do("MPUT 1 2 3"); !strings.HasPrefix(got, "ERR usage: MPUT") {
		t.Fatalf("odd operand count: %q", got)
	}
	if got, _ := cl.Do("MGET"); !strings.HasPrefix(got, "ERR usage: MGET") {
		t.Fatalf("no keys: %q", got)
	}
	if got, _ := cl.Do("MGET x"); !strings.HasPrefix(got, "ERR usage: MGET") {
		t.Fatalf("bad key: %q", got)
	}
}

// TestPartialLineNotExecuted is the regression for the truncated-request
// bug: a line that arrives without its newline (the connection died
// mid-request) must never execute. The old handler ran strings.Fields on
// the partial line before checking the read error, so `PUT 7 9` cut from
// a longer value would commit.
func TestPartialLineNotExecuted(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	if err := cl.Put(8, 1); err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// One complete request, then a truncated one.
	if _, err := c.Write([]byte("PUT 6 5\nPUT 7 9")); err != nil {
		t.Fatal(err)
	}
	c.(*net.TCPConn).CloseWrite()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, c); err != nil {
		t.Fatalf("handler did not close the connection: %v", err)
	}
	c.Close()
	if v, ok, err := srv.Store().Get(6); err != nil || !ok || v != 5 {
		t.Fatalf("complete line not executed: Get(6) = %d,%v,%v", v, ok, err)
	}
	if _, ok, _ := srv.Store().Get(7); ok {
		t.Fatal("truncated PUT 7 9 was executed")
	}
}

// countingConn counts its Write calls; WrapConn interposes it so tests
// can observe the handler's syscall behavior.
type countingConn struct {
	net.Conn
	writes *atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// TestPipelinedAckCoalescing asserts the write-coalescing contract in
// both protocols: a window of N pipelined requests, delivered in one
// client write, is answered in O(1) server writes — not O(N).
func TestPipelinedAckCoalescing(t *testing.T) {
	const window = 64
	for _, mode := range []string{"text", "binary"} {
		t.Run(mode, func(t *testing.T) {
			var writes atomic.Int64
			srv, cl := testServer(t, Options{
				WrapConn: func(c net.Conn) net.Conn {
					return &countingConn{Conn: c, writes: &writes}
				},
			})
			defer srv.Shutdown()
			if err := cl.Put(1, 2); err != nil {
				t.Fatal(err)
			}
			cl.Close()

			var req bytes.Buffer
			if mode == "text" {
				for i := 0; i < window; i++ {
					fmt.Fprintln(&req, "GET 1")
				}
			} else {
				frames := make([]byte, 0, window*(proto.HeaderSize+8))
				for i := 0; i < window; i++ {
					frames = proto.AppendGet(frames, 1)
				}
				req.Write(frames)
			}
			c, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			writes.Store(0)
			if _, err := c.Write(req.Bytes()); err != nil {
				t.Fatal(err)
			}
			c.(*net.TCPConn).CloseWrite()
			c.SetReadDeadline(time.Now().Add(5 * time.Second))
			body, err := io.ReadAll(c)
			if err != nil {
				t.Fatal(err)
			}
			// All replies arrived...
			if mode == "text" {
				if got := strings.Count(string(body), "\n"); got != window {
					t.Fatalf("%d reply lines, want %d", got, window)
				}
			} else {
				r := bufio.NewReader(bytes.NewReader(body))
				var scratch []byte
				for i := 0; i < window; i++ {
					op, p, err := proto.ReadFrame(r, &scratch)
					if err != nil || op != proto.RepVal {
						t.Fatalf("reply %d = (%d,%v)", i, op, err)
					}
					if v, _ := proto.DecodeVal(p); v != 2 {
						t.Fatalf("reply %d = %d, want 2", i, v)
					}
				}
			}
			// ...in O(1) writes. The exact count depends on TCP segmentation
			// of the request (the window may straddle reads), but it must be
			// nowhere near one write per request.
			if w := writes.Load(); w > 4 {
				t.Fatalf("%d server writes for a %d-request window, want O(1)", w, window)
			}
		})
	}
}

// stubBackend is an engine-free backend: it isolates the binary protocol
// layer so its allocation budget can be gated without the store's
// per-batch bookkeeping (channels, batch slices) in the measurement.
type stubBackend struct{}

func (stubBackend) Put(k, v uint64) error                       { return nil }
func (stubBackend) Get(k uint64) (uint64, bool, error)          { return k, true, nil }
func (stubBackend) Delete(k uint64) (bool, error)               { return true, nil }
func (stubBackend) Incr(k, d uint64) (uint64, error)            { return d, nil }
func (stubBackend) Decr(k, d uint64) (uint64, error)            { return d, nil }
func (stubBackend) Scan(start uint64, n int) ([]kv.Pair, error) { return nil, nil }
func (stubBackend) GetBatch(keys, vals []uint64, found []bool) error {
	for i := range keys {
		vals[i], found[i] = keys[i], true
	}
	return nil
}
func (stubBackend) PutBatch(pairs []kv.Pair) error { return nil }

// execFrames runs every frame in the stream through h.exec, resetting
// the reply buffer, exactly as handleBinary's loop would.
func execFrames(h *binHandler, rd *bytes.Reader, r *bufio.Reader) {
	rd.Seek(0, io.SeekStart)
	r.Reset(rd)
	h.wbuf = h.wbuf[:0]
	for {
		op, p, err := proto.ReadFrame(r, &h.scratch)
		if err != nil {
			if err == io.EOF {
				return
			}
			panic(err)
		}
		if h.exec(op, p) {
			return
		}
	}
}

// TestBinaryDecodeReplyAllocsProtocolLayer pins the server's binary
// decode→reply path for PUT and GET at zero allocations per op across
// the protocol layer (stub backend: the engine's per-batch bookkeeping is
// group-commit-amortized and measured separately by `nvbench -exp
// proto`).
func TestBinaryDecodeReplyAllocsProtocolLayer(t *testing.T) {
	frames := proto.AppendPut(nil, 1, 2)
	frames = proto.AppendGet(frames, 1)
	frames = proto.AppendPut(frames, 3, 4)
	frames = proto.AppendGet(frames, 3)
	rd := bytes.NewReader(frames)
	r := bufio.NewReaderSize(rd, connBufSize)
	h := &binHandler{srv: &Server{}, be: stubBackend{}, wbuf: make([]byte, 0, connBufSize)}
	execFrames(h, rd, r) // warm
	if n := testing.AllocsPerRun(200, func() { execFrames(h, rd, r) }); n != 0 {
		t.Fatalf("PUT/GET decode→reply allocs = %v, want 0", n)
	}
}

// TestBinaryDecodeReplyAllocsFullGet pins the GET path at zero
// allocations through the real engine: decode, snapshot read against the
// committed tree, and reply encode — the full server-side read hot path.
func TestBinaryDecodeReplyAllocsFullGet(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	for k := uint64(0); k < 8; k++ {
		if err := cl.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	var frames []byte
	for k := uint64(0); k < 8; k++ {
		frames = proto.AppendGet(frames, k)
	}
	rd := bytes.NewReader(frames)
	r := bufio.NewReaderSize(rd, connBufSize)
	h := &binHandler{srv: srv, be: srv.Store(), wbuf: make([]byte, 0, connBufSize)}
	execFrames(h, rd, r) // warm
	if n := testing.AllocsPerRun(200, func() { execFrames(h, rd, r) }); n != 0 {
		t.Fatalf("full-path GET allocs = %v, want 0", n)
	}
}

// TestBinaryDecodeReplyAllocsFullMGet extends the full-path gate to the
// batched read verb: one MGET frame through kv.Store.GetBatch and back.
func TestBinaryDecodeReplyAllocsFullMGet(t *testing.T) {
	srv, cl := testServer(t, Options{})
	defer srv.Shutdown()
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i)
		if err := cl.Put(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	frames := proto.AppendMGet(nil, keys)
	rd := bytes.NewReader(frames)
	r := bufio.NewReaderSize(rd, connBufSize)
	h := &binHandler{srv: srv, be: srv.Store(), wbuf: make([]byte, 0, connBufSize)}
	execFrames(h, rd, r) // warm (grows h.keys/h.vals/h.found once)
	if n := testing.AllocsPerRun(200, func() { execFrames(h, rd, r) }); n != 0 {
		t.Fatalf("full-path MGET allocs = %v, want 0", n)
	}
}

// TestBinaryMalformedPayloadKeepsServing: a bad payload inside an intact
// frame gets an error frame and the connection keeps working; a framing
// violation (bad version byte) gets an error frame and a close.
func TestBinaryMalformedPayloadKeepsServing(t *testing.T) {
	srv, _ := testServer(t, Options{})
	defer srv.Shutdown()
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A PUT frame with a truncated (4-byte) payload, framing intact, then
	// a well-formed GET: the server must answer ERR then serve the GET.
	bad := []byte{proto.Version, proto.OpPut, 4, 0, 0, 0, 1, 2, 3, 4}
	req := append(bad, proto.AppendGet(nil, 42)...)
	if _, err := c.Write(req); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(c)
	var scratch []byte
	op, _, err := proto.ReadFrame(r, &scratch)
	if err != nil || op != proto.RepErr {
		t.Fatalf("malformed payload reply = (%d,%v), want RepErr", op, err)
	}
	op, _, err = proto.ReadFrame(r, &scratch)
	if err != nil || op != proto.RepNil {
		t.Fatalf("follow-up GET reply = (%d,%v), want RepNil", op, err)
	}
	// Now break framing: a non-version byte mid-stream on a binary
	// connection. The server replies with an error frame and closes.
	if _, err := c.Write([]byte("GET 1\n")); err != nil {
		t.Fatal(err)
	}
	op, _, err = proto.ReadFrame(r, &scratch)
	if err != nil || op != proto.RepErr {
		t.Fatalf("framing violation reply = (%d,%v), want RepErr", op, err)
	}
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatalf("connection not closed after framing violation: %v", err)
	}
}
