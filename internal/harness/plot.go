package harness

import (
	"fmt"
	"strings"
)

// ASCII plotting for cmd/nvbench: miss ratio curves and speedup bars, so
// the "figures" read as figures in a terminal.

// PlotCurve renders one or more aligned series as a fixed-height ASCII
// chart. Series share the x axis (index = capacity) and the y axis is
// scaled to the joint maximum.
func PlotCurve(title string, names []string, series [][]float64, height int) string {
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	width := 0
	maxV := 0.0
	for _, s := range series {
		if len(s) > width {
			width = len(s)
		}
		for _, v := range s {
			if v > maxV {
				maxV = v
			}
		}
	}
	if width == 0 || maxV == 0 {
		return b.String() + "(empty)\n"
	}
	marks := []byte("*o+x#@")
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := marks[si%len(marks)]
		for x, v := range s {
			r := int((1 - v/maxV) * float64(height-1))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][x] = m
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.4f ", maxV)
		case height - 1:
			label = fmt.Sprintf("%7.4f ", 0.0)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "         0%*s\n", width-1, fmt.Sprintf("%d", width-1))
	for si, name := range names {
		fmt.Fprintf(&b, "         %c = %s\n", marks[si%len(marks)], name)
	}
	return b.String()
}

// PlotBars renders labelled horizontal bars scaled to the maximum value.
func PlotBars(title string, labels []string, values []float64, unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	labW := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > labW {
			labW = len(labels[i])
		}
	}
	if maxV == 0 {
		return b.String() + "(empty)\n"
	}
	const barW = 48
	for i, v := range values {
		n := int(v / maxV * barW)
		fmt.Fprintf(&b, "%-*s %s %.2f%s\n", labW, labels[i], strings.Repeat("#", n), v, unit)
	}
	return b.String()
}

// CSV renders a Table as comma-separated values (quotes are not needed:
// every cell this harness emits is quote-free).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
