package harness

import (
	"fmt"
	"sync"
	"time"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

// ContentionOptions tunes the store-scaling experiment.
type ContentionOptions struct {
	// Goroutines lists the mutator counts to sweep (default 1, 2, 4, 8).
	Goroutines []int
	// StoresPerThread is each mutator's store count (default 200k).
	StoresPerThread int
	// FASELength is the number of stores per failure-atomic section
	// (default 64).
	FASELength int
	// Policy is the per-thread persistence policy (default SC).
	Policy core.PolicyKind
}

// DefaultContentionOptions returns the sweep the contention experiment
// reports.
func DefaultContentionOptions() ContentionOptions {
	return ContentionOptions{
		Goroutines:      []int{1, 2, 4, 8},
		StoresPerThread: 200_000,
		FASELength:      64,
		Policy:          core.SoftCacheOnline,
	}
}

// ContentionRow is one sweep point of the store-scaling experiment.
type ContentionRow struct {
	Goroutines int
	Stores     int64
	Elapsed    time.Duration
	StoresPerS float64
	// Speedup is StoresPerS relative to the 1-goroutine row.
	Speedup float64
	// StripeContention is the heap's contended/acquired stripe-lock ratio
	// during the run: the software serialization that survives sharding.
	StripeContention float64
	// HotStripeShare is the hottest stripe's fraction of all stripe
	// acquisitions (1/NumStripes ≈ 0.016 is a perfectly uniform spread).
	HotStripeShare float64
}

// ContentionResult is the multi-thread store-throughput sweep.
type ContentionResult struct {
	Policy core.PolicyKind
	Rows   []ContentionRow
}

// StoreScaling measures real (wall-clock) multi-goroutine store throughput
// on the atlas→pmem hot path: g goroutines, one atlas.Thread each, storing
// into disjoint heap regions in FASEs of opt.FASELength stores. It reports
// throughput, scaling versus one goroutine, and the heap's stripe-lock
// contention counters. Unlike the trace-replay experiments (which model
// time in hwsim cycles), this experiment times the substrate itself — it
// is the reproduction harness for the global-heap-lock removal.
func StoreScaling(opt ContentionOptions) (*ContentionResult, error) {
	if len(opt.Goroutines) == 0 {
		opt.Goroutines = DefaultContentionOptions().Goroutines
	}
	if opt.StoresPerThread <= 0 {
		opt.StoresPerThread = DefaultContentionOptions().StoresPerThread
	}
	if opt.FASELength <= 0 {
		opt.FASELength = DefaultContentionOptions().FASELength
	}
	res := &ContentionResult{Policy: opt.Policy}
	for _, g := range opt.Goroutines {
		row, err := storeScalingOnce(g, opt)
		if err != nil {
			return nil, err
		}
		if len(res.Rows) > 0 && res.Rows[0].StoresPerS > 0 {
			row.Speedup = row.StoresPerS / res.Rows[0].StoresPerS
		} else {
			row.Speedup = 1
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func storeScalingOnce(g int, opt ContentionOptions) (ContentionRow, error) {
	const regionWords = 1 << 13
	heapSize := (g + 2) * regionWords * 8 * 2
	if heapSize < 1<<22 {
		heapSize = 1 << 22
	}
	h := pmem.New(heapSize)
	opts := atlas.DefaultOptions()
	opts.Policy = opt.Policy
	opts.DisableTrace = true
	rt := atlas.NewRuntime(h, opts)
	threads := make([]*atlas.Thread, g)
	bases := make([]uint64, g)
	for i := range threads {
		th, err := rt.NewThread()
		if err != nil {
			return ContentionRow{}, err
		}
		threads[i] = th
		if bases[i], err = h.AllocLines(regionWords * 8); err != nil {
			return ContentionRow{}, err
		}
	}
	before := pmem.SummarizeStripes(h.StripeStats())
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(th *atlas.Thread, base uint64) {
			defer wg.Done()
			for n := 0; n < opt.StoresPerThread; n++ {
				if n%opt.FASELength == 0 {
					th.FASEBegin()
				}
				off := uint64(n%regionWords) * 8
				th.Store64(base+off, uint64(n))
				if n%opt.FASELength == opt.FASELength-1 {
					th.FASEEnd()
				}
			}
			if th.InFASE() {
				th.FASEEnd()
			}
		}(threads[i], bases[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	rt.Close()
	after := pmem.SummarizeStripes(h.StripeStats())
	acquired := after.Acquired - before.Acquired
	contended := after.Contended - before.Contended
	row := ContentionRow{
		Goroutines: g,
		Stores:     int64(g) * int64(opt.StoresPerThread),
		Elapsed:    elapsed,
	}
	if s := elapsed.Seconds(); s > 0 {
		row.StoresPerS = float64(row.Stores) / s
	}
	if acquired > 0 {
		row.StripeContention = float64(contended) / float64(acquired)
		row.HotStripeShare = float64(after.HotAcquired) / float64(after.Acquired)
	}
	return row, nil
}

// Table renders the sweep.
func (r *ContentionResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Store-throughput scaling (policy %v, wall clock)", r.Policy),
		Headers: []string{"goroutines", "stores", "elapsed", "stores/sec", "speedup", "stripe cont.", "hot stripe"},
		Notes: []string{
			"wall-clock timing of the atlas→pmem substrate itself (not hwsim cycles)",
			"stripe cont. = contended/acquired dirty-stripe lock acquisitions",
			fmt.Sprintf("hot stripe = hottest stripe's share of acquisitions (uniform ≈ %.3f)", 1.0/float64(pmem.NumStripes)),
			fmt.Sprintf("GOMAXPROCS and core count bound attainable speedup (this run: %d goroutine sweep)", len(r.Rows)),
		},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Goroutines),
			fmt.Sprintf("%d", row.Stores),
			row.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", row.StoresPerS),
			fx(row.Speedup),
			f5(row.StripeContention),
			f5(row.HotStripeShare),
		)
	}
	return t
}
