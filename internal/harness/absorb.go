package harness

import (
	"fmt"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/loadgen"
	"nvmcache/internal/server"
)

// AbsorbOptions configure the logical write-absorption comparison: the
// same counter-heavy open-loop workload driven against a store with
// absorption off and one with it on.
type AbsorbOptions struct {
	Rate   float64
	Conns  int
	Ops    int
	Shards int
	// Keys is the workload keyspace — narrow on purpose, so logical
	// writes collide on the same keys and the absorption layer has net
	// effects to fold (a wide keyspace would leave nothing to absorb).
	Keys uint64
	// Schedule is the phased distribution schedule (loadgen.ParseDist
	// syntax); the default leads with a counter phase (accumulator
	// commits, threshold- and deadline-triggered) and ends with a uniform
	// put phase (same-key batch coalescing).
	Schedule string
	// Mix, when non-empty, overrides Schedule with a weighted verb mix
	// (loadgen.ParseMix syntax).
	Mix string
	// Threshold and Deadline pass through to kv.AbsorbConfig for the
	// absorbing run (0 = kv defaults). The defaults pair a low threshold
	// with a deadline a few delta-interarrivals wide, so steady counter
	// traffic forces threshold commits while lulls (and the phase switch)
	// leave the deadline timer to drain the stragglers — both triggers in
	// one run.
	Threshold int
	Deadline  time.Duration
	Seed      int64
}

// DefaultAbsorbOptions keeps the comparison in smoke-test territory: a
// counter-dominated phased schedule over 64 keys, ~4s of driving per run.
func DefaultAbsorbOptions() AbsorbOptions {
	return AbsorbOptions{
		Rate: 800, Conns: 4, Ops: 8000, Shards: 4, Keys: 64,
		Schedule:  "incr@3,uniform@1",
		Threshold: 2,
		Deadline:  25 * time.Millisecond,
		Seed:      42,
	}
}

// AbsorbRun is one half of the comparison, with the server's absorption
// accounting deltas for the run: Issued counts the logical write ops the
// server parsed, Committed the physical ops its FASEs executed, Absorbed
// the logical ops folded away before any FASE.
type AbsorbRun struct {
	Name      string
	Report    *loadgen.Report
	Issued    float64
	Committed float64
	Absorbed  float64
	// ThresholdCommits and DeadlineCommits split the absorbing run's
	// accumulator commits by trigger.
	ThresholdCommits float64
	DeadlineCommits  float64
}

// Ratio is the run's absorbed fraction of logical writes.
func (r *AbsorbRun) Ratio() float64 {
	if t := r.Absorbed + r.Committed; t > 0 {
		return r.Absorbed / t
	}
	return 0
}

// AbsorbResult is the paired sweep.
type AbsorbResult struct {
	Opt AbsorbOptions
	Off AbsorbRun
	On  AbsorbRun
}

// AbsorbSweep drives the counter-heavy mix twice — against a fresh
// self-hosted nvserver with absorption off, then one with it on — and
// captures each run's latency plus the server's absorption accounting.
// With absorption on, the committed-op count must land strictly below the
// issued logical writes: that gap is the work the accumulator and
// same-key coalescing removed from the persistence path.
func AbsorbSweep(opt AbsorbOptions) (*AbsorbResult, error) {
	res := &AbsorbResult{Opt: opt}
	off, err := absorbRun(opt, false)
	if err != nil {
		return nil, fmt.Errorf("absorb-off run: %w", err)
	}
	res.Off = *off
	on, err := absorbRun(opt, true)
	if err != nil {
		return nil, fmt.Errorf("absorb-on run: %w", err)
	}
	res.On = *on
	return res, nil
}

func absorbRun(opt AbsorbOptions, absorbOn bool) (*AbsorbRun, error) {
	kvOpts := kv.DefaultOptions()
	if opt.Shards > 0 {
		kvOpts.Shards = opt.Shards
	}
	name := "absorb off"
	if absorbOn {
		name = "absorb on"
		kvOpts.Absorb = kv.AbsorbConfig{
			Enabled:   true,
			Threshold: opt.Threshold,
			Deadline:  opt.Deadline,
		}
	}
	srv, err := server.SelfHost(kvOpts, server.Options{})
	if err != nil {
		return nil, err
	}
	base := loadgen.DefaultSpec()
	base.Keys = opt.Keys
	var spec loadgen.Spec
	var err2 error
	if opt.Mix != "" {
		spec, err2 = loadgen.ParseMix(opt.Mix, base)
	} else {
		spec, err2 = loadgen.ParseDist(opt.Schedule, base)
	}
	if err2 != nil {
		srv.Shutdown()
		return nil, err2
	}
	rep, err := loadgen.Run(loadgen.Config{
		Addr:  srv.Addr().String(),
		Rate:  opt.Rate,
		Conns: opt.Conns,
		Ops:   opt.Ops,
		Dist:  spec,
		Seed:  opt.Seed,
	})
	srv.Shutdown()
	if err != nil {
		return nil, err
	}
	d := rep.ServerDelta
	return &AbsorbRun{
		Name:             name,
		Report:           rep,
		Issued:           d["total.puts"] + d["total.dels"] + d["total.incrs"] + d["total.decrs"],
		Committed:        d["total.committed_ops"],
		Absorbed:         d["total.absorbed_ops"],
		ThresholdCommits: d["total.absorb_commits_threshold"],
		DeadlineCommits:  d["total.absorb_commits_deadline"],
	}, nil
}

// Table renders the comparison; the ratio column is the artifact's
// absorption evidence.
func (r *AbsorbResult) Table() *Table {
	workload := r.Opt.Mix
	if workload == "" {
		workload = r.Opt.Schedule
	}
	t := &Table{
		Title: fmt.Sprintf("logical write absorption: %s over %d keys at %.0f ops/s",
			workload, r.Opt.Keys, r.Opt.Rate),
		Headers: []string{"run", "issued writes", "committed", "absorbed", "ratio", "ops/s", "p50", "p99"},
		Notes: []string{
			"issued = logical write ops the server parsed; committed = physical ops its FASEs executed",
			"absorption folds same-key writes and counter deltas into net effects before group commit",
			fmt.Sprintf("absorb-on accumulator commits by trigger: threshold=%.0f deadline=%.0f",
				r.On.ThresholdCommits, r.On.DeadlineCommits),
		},
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.0fus", float64(d)/1e3) }
	for _, run := range []*AbsorbRun{&r.Off, &r.On} {
		t.AddRow(run.Name,
			fmt.Sprintf("%.0f", run.Issued),
			fmt.Sprintf("%.0f", run.Committed),
			fmt.Sprintf("%.0f", run.Absorbed),
			fmt.Sprintf("%.3f", run.Ratio()),
			fmt.Sprintf("%.0f", run.Report.Throughput()),
			us(run.Report.Hist.Quantile(0.50)),
			us(run.Report.Hist.Quantile(0.99)))
	}
	return t
}
