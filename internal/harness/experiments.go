package harness

import (
	"fmt"

	"nvmcache/internal/core"
	"nvmcache/internal/locality"
	"nvmcache/internal/sampling"
	"nvmcache/internal/trace"
)

// This file reproduces every table and figure of the paper's evaluation.
// Each experiment returns a typed result holding the measured numbers (for
// tests and EXPERIMENTS.md) and renders to a Table (for cmd/nvbench).

// ---------------------------------------------------------------- Table I

// EagerSlowdownResult reproduces Table I: the cost of eager persistence on
// the SPLASH2 programs, measured as cycles(ER)/cycles(BEST).
type EagerSlowdownResult struct {
	Programs  []string
	Slowdown  []float64
	PaperVals []float64
	Average   float64
}

// EagerSlowdown runs Table I.
func EagerSlowdown(opt RunOptions) (*EagerSlowdownResult, error) {
	res := &EagerSlowdownResult{}
	var sum float64
	for _, w := range SplashWorkloads(Workloads()) {
		er, err := Run(w, core.Eager, opt)
		if err != nil {
			return nil, err
		}
		best, err := Run(w, core.Best, opt)
		if err != nil {
			return nil, err
		}
		s := er.Cycles / best.Cycles
		res.Programs = append(res.Programs, w.Name)
		res.Slowdown = append(res.Slowdown, s)
		paper := 0.0
		for _, p := range splashPaperSlowdowns() {
			if p.name == w.Name {
				paper = p.slowdown
			}
		}
		res.PaperVals = append(res.PaperVals, paper)
		sum += s
	}
	res.Average = sum / float64(len(res.Programs))
	return res, nil
}

type paperSlowdown struct {
	name     string
	slowdown float64
}

func splashPaperSlowdowns() []paperSlowdown {
	return []paperSlowdown{
		{"barnes", 22}, {"fmm", 24}, {"ocean", 17}, {"raytrace", 6},
		{"volrend", 26}, {"water-nsquared", 24}, {"water-spatial", 33},
	}
}

// Table renders Table I.
func (r *EagerSlowdownResult) Table() *Table {
	t := &Table{
		Title:   "Table I: cost of eager data persistence (slowdown vs BEST)",
		Headers: []string{"Program", "Slowdown", "Paper"},
	}
	for i, p := range r.Programs {
		t.AddRow(p, fx(r.Slowdown[i]), fx(r.PaperVals[i]))
	}
	t.AddRow("average", fx(r.Average), "22.00x")
	return t
}

// --------------------------------------------------------------- Figure 2

// MRCResult reproduces Figure 2: the miss ratio curve of one program with
// its knees and the selected capacity.
type MRCResult struct {
	Program string
	Miss    []float64 // index = capacity
	Knees   []int
	Chosen  int
}

// MRCOf computes the offline (full-trace) MRC of a workload's first
// thread.
func MRCOf(name string, opt RunOptions) (*MRCResult, error) {
	w, err := WorkloadByName(Workloads(), name)
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace(opt.Scale, 1, opt.Seed)
	if err != nil {
		return nil, err
	}
	cfg := locality.DefaultKneeConfig()
	renamed := trace.RenameFASEs(tr.Threads[0])
	mrc := locality.MRCFromReuse(locality.ReuseAll(renamed), cfg.MaxSize)
	return &MRCResult{
		Program: name,
		Miss:    mrc.Miss,
		Knees:   locality.Knees(mrc, cfg),
		Chosen:  locality.SelectSize(mrc, cfg),
	}, nil
}

// Table renders the curve.
func (r *MRCResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 2: MRC of %s (knees %v, chosen size %d)", r.Program, r.Knees, r.Chosen),
		Headers: []string{"Capacity", "MissRatio"},
	}
	for c, mr := range r.Miss {
		t.AddRow(fmt.Sprintf("%d", c), f5(mr))
	}
	return t
}

// ---------------------------------------------------------------- Table II

// MDBResult reproduces Table II: Mtest on MDB under five techniques.
type MDBResult struct {
	Policies []core.PolicyKind
	Cycles   []float64
	Speedup  []float64 // over ER
	PaperUp  []float64
}

// MDBTable2 runs Table II (the paper uses eight threads).
func MDBTable2(opt RunOptions) (*MDBResult, error) {
	if opt.Threads == 1 {
		opt.Threads = 8
	}
	w, err := WorkloadByName(Workloads(), "mdb")
	if err != nil {
		return nil, err
	}
	kinds := []core.PolicyKind{core.Eager, core.AtlasTable, core.SoftCacheOnline, core.SoftCacheOffline, core.Best}
	paper := []float64{1, 2.94, 5.07, 5.60, 6.94}
	res := &MDBResult{Policies: kinds, PaperUp: paper}
	var erCycles float64
	for _, k := range kinds {
		r, err := Run(w, k, opt)
		if err != nil {
			return nil, err
		}
		if k == core.Eager {
			erCycles = r.Cycles
		}
		res.Cycles = append(res.Cycles, r.Cycles)
	}
	for _, c := range res.Cycles {
		res.Speedup = append(res.Speedup, erCycles/c)
	}
	return res, nil
}

// Table renders Table II.
func (r *MDBResult) Table() *Table {
	t := &Table{
		Title:   "Table II: execution of Mtest on MDB (simulated cycles)",
		Headers: []string{"Method", "Cycles", "Speedup", "Paper"},
	}
	for i, k := range r.Policies {
		t.AddRow(k.String(), fmt.Sprintf("%.3g", r.Cycles[i]), fx(r.Speedup[i]), fx(r.PaperUp[i]))
	}
	return t
}

// --------------------------------------------------------------- Table III

// FlushRow is one workload's Table III row.
type FlushRow struct {
	Name                      string
	ProblemSize               string
	FASEs                     int64
	Stores                    int64
	ER, LA, AT, SC            float64
	ATOverSC                  float64
	SCOverLA                  float64
	PaperLA, PaperAT, PaperSC float64
}

// FlushRatiosResult reproduces Table III.
type FlushRatiosResult struct {
	Rows []FlushRow
	// AvgATOverSC excludes persistent-array, linked-list and queue, as the
	// paper's caption specifies; this is the headline "12×".
	AvgATOverSC float64
	AvgSCOverLA float64
}

// FlushRatiosTable3 runs Table III over all twelve workloads.
func FlushRatiosTable3(opt RunOptions) (*FlushRatiosResult, error) {
	res := &FlushRatiosResult{}
	var sumAT, sumLA float64
	var n int
	for _, w := range Workloads() {
		tr, err := w.Trace(opt.Scale, opt.Threads, opt.Seed)
		if err != nil {
			return nil, err
		}
		st := trace.ComputeStats(tr)
		cfg := core.DefaultConfig()
		cfg.BurstLength = BurstFor(st.TotalWrites / int64(st.Threads))
		row := FlushRow{
			Name:        w.Name,
			ProblemSize: w.ProblemSize,
			FASEs:       st.TotalFASEs,
			Stores:      st.TotalWrites,
			ER:          core.FlushRatio(core.Eager, cfg, tr),
			LA:          core.FlushRatio(core.Lazy, cfg, tr),
			AT:          core.FlushRatio(core.AtlasTable, cfg, tr),
			PaperLA:     w.PaperLA, PaperAT: w.PaperAT, PaperSC: w.PaperSC,
		}
		// Table III's caption: "The number of flushes is almost identical
		// for SC and SC-offline, which is shown by SC" — the column uses
		// the offline-sized cache, free of the scaled-down runs' larger
		// relative sampling transient.
		size, err := OfflineSize(w, opt)
		if err != nil {
			return nil, err
		}
		scCfg := cfg
		scCfg.PresetSize = size
		row.SC = core.FlushRatio(core.SoftCacheOffline, scCfg, tr)
		if row.SC > 0 {
			row.ATOverSC = row.AT / row.SC
		}
		if row.LA > 0 {
			row.SCOverLA = row.SC / row.LA
		}
		res.Rows = append(res.Rows, row)
		switch w.Name {
		case "persistent-array", "linked-list", "queue":
			// excluded from the paper's averages
		default:
			sumAT += row.ATOverSC
			sumLA += row.SCOverLA
			n++
		}
	}
	if n > 0 {
		res.AvgATOverSC = sumAT / float64(n)
		res.AvgSCOverLA = sumLA / float64(n)
	}
	return res, nil
}

// Table renders Table III.
func (r *FlushRatiosResult) Table() *Table {
	t := &Table{
		Title: "Table III: data flush ratios",
		Headers: []string{"Benchmark", "Size", "FASEs", "Stores",
			"ER", "LA", "AT", "SC", "AT/SC", "SC/LA", "paperAT", "paperSC"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.ProblemSize,
			fmt.Sprintf("%d", row.FASEs), fmt.Sprintf("%d", row.Stores),
			f5(row.ER), f5(row.LA), f5(row.AT), f5(row.SC),
			fx(row.ATOverSC), fx(row.SCOverLA), f5(row.PaperAT), f5(row.PaperSC))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average AT/SC %.2fx (paper 11.88x), SC/LA %.2fx (paper 1.43x); averages exclude persistent-array, linked-list and queue per the paper's caption",
			r.AvgATOverSC, r.AvgSCOverLA))
	return t
}

// --------------------------------------------------------------- Figure 4

// SpeedupRow is one workload's Figure 4 bars: speedups over ER.
type SpeedupRow struct {
	Name                    string
	AT, SC, SCOffline, Best float64
}

// SpeedupsResult reproduces Figure 4.
type SpeedupsResult struct {
	Rows                                []SpeedupRow
	AvgAT, AvgSC, AvgSCOffline, AvgBest float64
}

// SpeedupsFigure4 runs every workload single-threaded (mdb with eight
// threads, as in the paper).
func SpeedupsFigure4(opt RunOptions) (*SpeedupsResult, error) {
	res := &SpeedupsResult{}
	kinds := []core.PolicyKind{core.Eager, core.AtlasTable, core.SoftCacheOnline, core.SoftCacheOffline, core.Best}
	for _, w := range Workloads() {
		o := opt
		if w.Name == "mdb" {
			o.Threads = 8
		}
		runs, err := RunAll(w, kinds, o)
		if err != nil {
			return nil, err
		}
		er := runs[core.Eager].Cycles
		row := SpeedupRow{
			Name:      w.Name,
			AT:        er / runs[core.AtlasTable].Cycles,
			SC:        er / runs[core.SoftCacheOnline].Cycles,
			SCOffline: er / runs[core.SoftCacheOffline].Cycles,
			Best:      er / runs[core.Best].Cycles,
		}
		res.Rows = append(res.Rows, row)
		res.AvgAT += row.AT
		res.AvgSC += row.SC
		res.AvgSCOffline += row.SCOffline
		res.AvgBest += row.Best
	}
	n := float64(len(res.Rows))
	res.AvgAT /= n
	res.AvgSC /= n
	res.AvgSCOffline /= n
	res.AvgBest /= n
	return res, nil
}

// Table renders Figure 4.
func (r *SpeedupsResult) Table() *Table {
	t := &Table{
		Title:   "Figure 4: speedups over ER (paper averages: AT 4.5x, SC 9.6x, SC-offline 10.3x, BEST 16.1x)",
		Headers: []string{"Program", "AT", "SC", "SC-offline", "BEST"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fx(row.AT), fx(row.SC), fx(row.SCOffline), fx(row.Best))
	}
	t.AddRow("average", fx(r.AvgAT), fx(r.AvgSC), fx(r.AvgSCOffline), fx(r.AvgBest))
	return t
}

// ------------------------------------------------------- Figures 5 and 6

// ThreadSweepThreads is the paper's thread axis.
var ThreadSweepThreads = []int{1, 2, 4, 8, 16, 32}

// ParallelRow is one (program, threads) cell of Figures 5 and 6.
type ParallelRow struct {
	Name             string
	Threads          int
	SCOverAT         float64 // Figure 5
	SCOfflineOverAT  float64 // Figure 5
	SCSlowdownVsBest float64 // Figure 6
}

// ParallelResult reproduces Figures 5 and 6 in one sweep.
type ParallelResult struct {
	Rows []ParallelRow
	// FracSCBeatsAT is the share of (program, threads) cells where SC
	// outperforms AT; the paper reports 36/42 ≈ 85%.
	FracSCBeatsAT        float64
	FracSCOfflineBeatsAT float64
}

// ParallelFigures56 runs the SPLASH2 programs over the thread sweep.
func ParallelFigures56(opt RunOptions, threadCounts []int) (*ParallelResult, error) {
	if len(threadCounts) == 0 {
		threadCounts = ThreadSweepThreads
	}
	res := &ParallelResult{}
	var beats, beatsOff, cells int
	kinds := []core.PolicyKind{core.AtlasTable, core.SoftCacheOnline, core.SoftCacheOffline, core.Best}
	for _, w := range SplashWorkloads(Workloads()) {
		for _, th := range threadCounts {
			o := opt
			o.Threads = th
			runs, err := RunAll(w, kinds, o)
			if err != nil {
				return nil, err
			}
			row := ParallelRow{
				Name:             w.Name,
				Threads:          th,
				SCOverAT:         runs[core.AtlasTable].Cycles / runs[core.SoftCacheOnline].Cycles,
				SCOfflineOverAT:  runs[core.AtlasTable].Cycles / runs[core.SoftCacheOffline].Cycles,
				SCSlowdownVsBest: runs[core.SoftCacheOnline].Cycles / runs[core.Best].Cycles,
			}
			res.Rows = append(res.Rows, row)
			cells++
			if row.SCOverAT > 1 {
				beats++
			}
			if row.SCOfflineOverAT > 1 {
				beatsOff++
			}
		}
	}
	res.FracSCBeatsAT = float64(beats) / float64(cells)
	res.FracSCOfflineBeatsAT = float64(beatsOff) / float64(cells)
	return res, nil
}

// Figure5Table renders the speedups over AT.
func (r *ParallelResult) Figure5Table() *Table {
	t := &Table{
		Title:   "Figure 5: parallel speedup of SC and SC-offline over AT",
		Headers: []string{"Program", "Threads", "SC/AT", "SC-off/AT"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Threads), fx(row.SCOverAT), fx(row.SCOfflineOverAT))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("SC beats AT in %.0f%% of cells (paper: 85%%); SC-offline in %.0f%% (paper: 90%%)",
		100*r.FracSCBeatsAT, 100*r.FracSCOfflineBeatsAT))
	return t
}

// Figure6Table renders the slowdown of SC over BEST.
func (r *ParallelResult) Figure6Table() *Table {
	t := &Table{
		Title:   "Figure 6: slowdown of SC over BEST",
		Headers: []string{"Program", "Threads", "SC/BEST"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Threads), fx(row.SCSlowdownVsBest))
	}
	return t
}

// ---------------------------------------------------------------- Table IV

// WaterSpatialCell is one (policy, threads) cell of Table IV.
type WaterSpatialCell struct {
	Policy       core.PolicyKind
	Threads      int
	Instructions float64
	FlushRatio   float64
	L1MissRatio  float64
}

// WaterSpatialResult reproduces Table IV.
type WaterSpatialResult struct {
	Cells []WaterSpatialCell
}

// WaterSpatialTable4 sweeps water-spatial with the L1 simulator.
func WaterSpatialTable4(opt RunOptions, threadCounts []int) (*WaterSpatialResult, error) {
	if len(threadCounts) == 0 {
		threadCounts = ThreadSweepThreads
	}
	w, err := WorkloadByName(Workloads(), "water-spatial")
	if err != nil {
		return nil, err
	}
	res := &WaterSpatialResult{}
	for _, kind := range []core.PolicyKind{core.AtlasTable, core.SoftCacheOnline, core.Best} {
		for _, th := range threadCounts {
			o := opt
			o.Threads = th
			o.MeasureL1 = true
			r, err := Run(w, kind, o)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, WaterSpatialCell{
				Policy:       kind,
				Threads:      th,
				Instructions: r.Instructions,
				FlushRatio:   r.FlushRatio,
				L1MissRatio:  r.L1MissRatio,
			})
		}
	}
	return res, nil
}

// Table renders Table IV.
func (r *WaterSpatialResult) Table() *Table {
	t := &Table{
		Title:   "Table IV: water-spatial detail (instructions, flush ratio, L1 miss ratio)",
		Headers: []string{"Metric", "Policy", "Threads", "Value"},
	}
	for _, c := range r.Cells {
		th := fmt.Sprintf("%d", c.Threads)
		t.AddRow("instructions", c.Policy.String(), th, fmt.Sprintf("%.3g", c.Instructions))
		t.AddRow("flush-ratio", c.Policy.String(), th, pc(c.FlushRatio))
		t.AddRow("l1-miss-ratio", c.Policy.String(), th, pc(c.L1MissRatio))
	}
	t.Notes = append(t.Notes,
		"paper trends: AT flush 2.6->5.9%, SC flush 0.43->1.0%, BEST 0; L1 mr rises with threads for all, AT > SC > BEST")
	return t
}

// --------------------------------------------------------------- Figure 7

// MRCAccuracyResult reproduces Figure 7: actual vs full-trace vs sampled
// MRC for one program.
type MRCAccuracyResult struct {
	Program                                 string
	Actual                                  []float64 // exact LRU simulation (stack distances)
	Full                                    []float64 // linear-time reuse conversion, whole trace
	Sampled                                 []float64 // linear-time reuse conversion, one burst
	ChosenActual, ChosenFull, ChosenSampled int
}

// Figure7Programs lists the four programs of the paper's Figure 7.
var Figure7Programs = []string{"barnes", "ocean", "water-nsquared", "water-spatial"}

// MRCAccuracyFigure7 computes the three curves for one program.
func MRCAccuracyFigure7(name string, opt RunOptions) (*MRCAccuracyResult, error) {
	w, err := WorkloadByName(Workloads(), name)
	if err != nil {
		return nil, err
	}
	tr, err := w.Trace(opt.Scale, 1, opt.Seed)
	if err != nil {
		return nil, err
	}
	cfg := locality.DefaultKneeConfig()
	renamed := trace.RenameFASEs(tr.Threads[0])
	actual := locality.StackDistanceMRC(renamed, cfg.MaxSize)
	full := locality.MRCFromReuse(locality.ReuseAll(renamed), cfg.MaxSize)

	// Sampled: replay the store stream through the bursty sampler exactly
	// as the online policy does.
	s := tr.Threads[0]
	smp := sampling.New(sampling.DefaultConfig(BurstFor(int64(s.NumWrites()))))
	for i := 0; i < s.NumFASEs() && smp.Collecting(); i++ {
		for _, line := range s.FASE(i) {
			if done := smp.RecordStore(line); done {
				break
			}
		}
		smp.FASEEnd()
	}
	sampled := locality.MRCFromReuse(locality.ReuseAll(smp.Burst()), cfg.MaxSize)

	return &MRCAccuracyResult{
		Program:       name,
		Actual:        actual.Miss,
		Full:          full.Miss,
		Sampled:       sampled.Miss,
		ChosenActual:  locality.SelectSize(actual, cfg),
		ChosenFull:    locality.SelectSize(full, cfg),
		ChosenSampled: locality.SelectSize(sampled, cfg),
	}, nil
}

// Table renders Figure 7 for one program.
func (r *MRCAccuracyResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 7: MRC accuracy for %s (chosen: actual %d, full %d, sampled %d)",
			r.Program, r.ChosenActual, r.ChosenFull, r.ChosenSampled),
		Headers: []string{"Capacity", "Actual", "FullTrace", "Sampled"},
	}
	for c := range r.Actual {
		t.AddRow(fmt.Sprintf("%d", c), f5(r.Actual[c]), f5(r.Full[c]), f5(r.Sampled[c]))
	}
	return t
}

// --------------------------------------------------------------- Figure 8

// OnlineOverheadRow is one program's Figure 8 bar.
type OnlineOverheadRow struct {
	Name     string
	Threads  int
	Overhead float64 // (cycles(SC) - cycles(SC, preset best size)) / cycles(SC)
}

// OnlineOverheadResult reproduces Figure 8.
type OnlineOverheadResult struct {
	Rows    []OnlineOverheadRow
	Average float64
}

// OnlineOverheadFigure8 measures the cost of online cache-size selection:
// the difference between starting at the default size and sampling versus
// running with the best size preset from the start.
func OnlineOverheadFigure8(opt RunOptions, threadCounts []int) (*OnlineOverheadResult, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 8}
	}
	res := &OnlineOverheadResult{}
	var sum float64
	for _, w := range SplashWorkloads(Workloads()) {
		best, err := OfflineSize(w, opt)
		if err != nil {
			return nil, err
		}
		for _, th := range threadCounts {
			o := opt
			o.Threads = th
			online, err := Run(w, core.SoftCacheOnline, o)
			if err != nil {
				return nil, err
			}
			o.PresetSize = best
			preset, err := Run(w, core.SoftCacheOffline, o)
			if err != nil {
				return nil, err
			}
			ov := (online.Cycles - preset.Cycles) / online.Cycles
			if ov < 0 {
				ov = 0
			}
			res.Rows = append(res.Rows, OnlineOverheadRow{Name: w.Name, Threads: th, Overhead: ov})
			sum += ov
		}
	}
	res.Average = sum / float64(len(res.Rows))
	return res, nil
}

// Table renders Figure 8.
func (r *OnlineOverheadResult) Table() *Table {
	t := &Table{
		Title:   "Figure 8: online cache-selection overhead (paper average 6.78%)",
		Headers: []string{"Program", "Threads", "Overhead"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Threads), pc(row.Overhead))
	}
	t.AddRow("average", "-", pc(r.Average))
	return t
}

// ------------------------------------------------------- Section IV-G sizes

// SelectedSizesResult reproduces the Section IV-G list of per-program
// selected cache sizes.
type SelectedSizesResult struct {
	Names  []string
	Chosen []int
	Paper  []int
}

// SelectedSizes computes the offline selection for the eight programs the
// paper lists (seven SPLASH2 + mdb).
func SelectedSizes(opt RunOptions) (*SelectedSizesResult, error) {
	res := &SelectedSizesResult{}
	for _, w := range Workloads() {
		if w.PaperChosen == 0 {
			continue
		}
		size, err := OfflineSize(w, opt)
		if err != nil {
			return nil, err
		}
		res.Names = append(res.Names, w.Name)
		res.Chosen = append(res.Chosen, size)
		res.Paper = append(res.Paper, w.PaperChosen)
	}
	return res, nil
}

// Table renders the size list.
func (r *SelectedSizesResult) Table() *Table {
	t := &Table{
		Title:   "Section IV-G: selected cache sizes",
		Headers: []string{"Program", "Chosen", "Paper"},
	}
	for i := range r.Names {
		t.AddRow(r.Names[i], fmt.Sprintf("%d", r.Chosen[i]), fmt.Sprintf("%d", r.Paper[i]))
	}
	return t
}
