package harness

import (
	"strings"
	"testing"
)

func TestStoreScalingSmoke(t *testing.T) {
	opt := DefaultContentionOptions()
	opt.Goroutines = []int{1, 2}
	opt.StoresPerThread = 4096
	res, err := StoreScaling(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	if res.Rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup %v", res.Rows[0].Speedup)
	}
	for _, r := range res.Rows {
		if r.Stores != int64(r.Goroutines)*4096 || r.StoresPerS <= 0 {
			t.Fatalf("row %+v", r)
		}
		if r.StripeContention < 0 || r.StripeContention > 1 {
			t.Fatalf("contention %v", r.StripeContention)
		}
	}
	s := res.Table().String()
	for _, want := range []string{"goroutines", "stores/sec", "stripe cont."} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
