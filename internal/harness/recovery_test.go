package harness

import "testing"

// TestRecoverySweep runs a shrunk sweep and checks the structural
// invariants: the baseline recovers by full journal replay of the whole
// history, the checkpointed store recovers from an image plus a suffix no
// longer than the tail, and both spot-check to exact values (recoveryRun
// errors otherwise). Timing is asserted only directionally in the nvbench
// gate, not here, to keep the test robust on loaded machines.
func TestRecoverySweep(t *testing.T) {
	opt := DefaultRecoveryOptions()
	opt.Sizes = []int{256, 1024}
	opt.Tail = 64
	res, err := RecoverySweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		full := uint64(row.Keys*opt.Overwrite + opt.Tail)
		if row.Baseline.Replayed != full {
			t.Errorf("keys %d: baseline replayed %d entries, want the full history %d",
				row.Keys, row.Baseline.Replayed, full)
		}
		if row.Ckpt.Replayed > uint64(opt.Tail) {
			t.Errorf("keys %d: checkpointed replayed %d entries, want <= tail %d",
				row.Keys, row.Ckpt.Replayed, opt.Tail)
		}
		if row.Ckpt.Restored < uint64(row.Keys)/2 {
			t.Errorf("keys %d: checkpointed restored only %d pairs", row.Keys, row.Ckpt.Restored)
		}
	}
	if lg := res.Largest(); lg == nil || lg.Keys != 1024 {
		t.Fatalf("Largest() = %+v, want the 1024-key row", lg)
	}
	if s := res.Table().String(); len(s) == 0 {
		t.Fatal("empty table")
	}
}
