package harness

import (
	"fmt"
	"sort"

	"nvmcache/internal/core"
	"nvmcache/internal/faultinject"
)

// CrashExplorationResult is the crash-point exploration experiment: the
// exhaustive sweeps over the atlas runtime (one per policy) and the kv
// group-commit service, plus one seeded randomized concurrent sweep. It is
// not a figure from the paper — it is the evidence that the artifact keeps
// the paper's failure-atomicity promise at every persistence boundary.
type CrashExplorationResult struct {
	// AtlasPolicies pairs each explored policy with its sweep.
	AtlasPolicies []core.PolicyKind
	Atlas         []faultinject.Report
	// KV is the exhaustive sweep of the sharded group-commit store.
	KV faultinject.Report
	// Random is the seeded concurrent sweep (kv only).
	Random faultinject.Report
}

// CrashExploration runs all sweeps. Any invariant violation is returned as
// an error: there is no partial credit for crash consistency.
func CrashExploration(randomRuns int) (*CrashExplorationResult, error) {
	res := &CrashExplorationResult{}
	for _, kind := range []core.PolicyKind{core.Eager, core.Lazy, core.AtlasTable, core.SoftCacheOnline} {
		opt := faultinject.DefaultAtlasOptions()
		opt.Policy = kind
		rep, err := faultinject.ExploreAtlas(opt)
		if err != nil {
			return nil, fmt.Errorf("atlas/%v: %w", kind, err)
		}
		res.AtlasPolicies = append(res.AtlasPolicies, kind)
		res.Atlas = append(res.Atlas, rep)
	}
	kvRep, err := faultinject.ExploreKV(faultinject.DefaultKVOptions())
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	res.KV = kvRep
	ro := faultinject.DefaultKVOptions()
	if randomRuns > 0 {
		ro.Runs = randomRuns
	}
	randRep, err := faultinject.ExploreKVRandom(ro)
	if err != nil {
		return nil, fmt.Errorf("kv randomized: %w", err)
	}
	res.Random = randRep
	return res, nil
}

// Table renders one row per sweep.
func (r *CrashExplorationResult) Table() *Table {
	t := &Table{
		Title:   "Crash-point exploration: injected power failures and recovery invariants",
		Headers: []string{"sweep", "sites", "runs", "crashed", "missed", "checks", "rolled back", "words restored"},
	}
	row := func(name string, rep faultinject.Report) {
		t.AddRow(name,
			fmt.Sprint(rep.Sites), fmt.Sprint(rep.Runs), fmt.Sprint(rep.Crashes),
			fmt.Sprint(rep.Missed), fmt.Sprint(rep.Checks),
			fmt.Sprint(rep.FASEsRolledBack), fmt.Sprint(rep.WordsRestored))
	}
	total := faultinject.Report{}
	for i, rep := range r.Atlas {
		row("atlas/"+r.AtlasPolicies[i].String(), rep)
		total = merged(total, rep)
	}
	row("kv exhaustive", r.KV)
	total = merged(total, r.KV)
	row(fmt.Sprintf("kv randomized (seed %d)", r.Random.Seed), r.Random)
	total = merged(total, r.Random)
	row("total", total)
	kinds := make([]faultinject.Kind, 0, len(total.Kinds))
	for k := range total.Kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	census := "sites by boundary kind:"
	for _, k := range kinds {
		census += fmt.Sprintf(" %s=%d", k, total.Kinds[k])
	}
	t.Notes = append(t.Notes, census,
		"every crashed run recovered and passed all invariants; missed runs are concurrent schedules that never reached their armed site")
	return t
}

// merged is Report.merge as a pure function (keeps the zero total usable).
func merged(a, b faultinject.Report) faultinject.Report {
	out := a
	out.Kinds = make(map[faultinject.Kind]int, len(a.Kinds)+len(b.Kinds))
	for k, n := range a.Kinds {
		out.Kinds[k] = n
	}
	out.Sites += b.Sites
	out.Runs += b.Runs
	out.Crashes += b.Crashes
	out.Missed += b.Missed
	out.Checks += b.Checks
	out.FASEsRolledBack += b.FASEsRolledBack
	out.WordsRestored += b.WordsRestored
	for k, n := range b.Kinds {
		out.Kinds[k] += n
	}
	return out
}
