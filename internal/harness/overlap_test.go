package harness

import (
	"strings"
	"testing"
)

// TestFlushOverlap pins the experiment's acceptance criteria: the pipelined
// run takes strictly fewer stripe-lock acquisitions than the per-line sync
// baseline (batching locks each stripe once per drain where the baseline
// locks per line), actually batches (epochs and multi-line batches appear),
// and reports a sane overlap fraction.
func TestFlushOverlap(t *testing.T) {
	opt := DefaultOverlapOptions()
	opt.Stores = 16 * 1024
	res, err := FlushOverlap(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sync.Flushed == 0 || res.Pipe.Flushed == 0 {
		t.Fatalf("no flush traffic: sync %+v pipe %+v", res.Sync, res.Pipe)
	}
	if res.Pipe.StripeAcquired >= res.Sync.StripeAcquired {
		t.Fatalf("per-batch stripe locking not below per-line baseline: pipeline %d >= sync %d",
			res.Pipe.StripeAcquired, res.Sync.StripeAcquired)
	}
	if res.LockSaving <= 0 {
		t.Fatalf("lock saving %v, want > 0", res.LockSaving)
	}
	if res.Pipe.Batches == 0 || res.Pipe.AvgBatch < 1 {
		t.Fatalf("pipeline did not batch: %+v", res.Pipe)
	}
	if res.Pipe.Overlap < 0 || res.Pipe.Overlap > 1 {
		t.Fatalf("overlap fraction %v out of [0,1]", res.Pipe.Overlap)
	}
	var histTotal int64
	for _, n := range res.BatchHist {
		histTotal += n
	}
	if histTotal == 0 {
		t.Fatalf("empty batch-size histogram: %v", res.BatchHist)
	}
	s := res.Table().String()
	for _, want := range []string{"pipeline", "stripe acq.", "overlap", "histogram"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
