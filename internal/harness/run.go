package harness

import (
	"math/rand"
	"sync"

	"nvmcache/internal/core"
	"nvmcache/internal/hwsim"
	"nvmcache/internal/locality"
	"nvmcache/internal/trace"
)

// RunOptions tune one policy execution.
type RunOptions struct {
	Scale   float64
	Threads int
	Seed    int64
	// PresetSize forces the software cache capacity (SC-offline and the
	// Figure 8 "preset" runs). 0 derives it from the offline MRC.
	PresetSize int
	// MeasureL1 also runs the per-thread L1 simulator (Table IV).
	MeasureL1 bool
	// L1Lines / L1Ways configure the simulated cache (defaults 64 × 8).
	L1Lines, L1Ways int
	// ContentionPerMille injects that many random invalidations per 1000
	// L1 accesses per extra thread pair, modelling cross-thread cache
	// contention (Section IV-F); 0 uses the default model.
	ContentionPerMille float64
	// UseCLWB flushes with clwb semantics (no invalidation) instead of
	// Atlas's clflush — an ablation the paper's Section II-A motivates.
	UseCLWB bool
	// Hibernation overrides the sampler's hibernation (0 = the paper's
	// infinite; positive = re-sample every that many writes).
	Hibernation int64
}

// DefaultRunOptions runs at the repository's default scale, single thread.
func DefaultRunOptions() RunOptions {
	return RunOptions{Scale: 1.0 / 256, Threads: 1, Seed: 42}
}

// Result is one (workload, policy, threads) execution.
type Result struct {
	Workload string
	Policy   core.PolicyKind
	Threads  int

	Stores     int64
	FASEs      int64
	Flushes    int64
	FlushRatio float64

	// Cycles is the parallel makespan: the slowest thread's simulated
	// clock, the stand-in for the paper's wall-clock seconds.
	Cycles float64
	// Instructions aggregates all threads (Table IV's "inst." row).
	Instructions float64
	// Stats sums the per-thread engine statistics.
	Stats hwsim.EngineStats

	// ChosenSize is the software cache capacity after adaptation (or the
	// preset), 0 for non-cache policies.
	ChosenSize int
	// AnalyzedWrites is the online sampling volume (SC only).
	AnalyzedWrites int64

	// L1MissRatio is filled when MeasureL1 is set.
	L1MissRatio float64
}

// OfflineSize computes the SC-offline capacity for a workload: the knee of
// the whole-trace MRC of the first thread (the paper's offline profiling
// run).
func OfflineSize(w *Workload, opt RunOptions) (int, error) {
	tr, err := w.Trace(opt.Scale, 1, opt.Seed)
	if err != nil {
		return 0, err
	}
	if len(tr.Threads) == 0 || tr.Threads[0].NumWrites() == 0 {
		return locality.DefaultKneeConfig().DefaultSize, nil
	}
	renamed := trace.RenameFASEs(tr.Threads[0])
	cfg := locality.DefaultKneeConfig()
	mrc := locality.MRCFromReuse(locality.ReuseAll(renamed), cfg.MaxSize)
	return locality.SelectSize(mrc, cfg), nil
}

// l1Flusher invalidates flushed lines in the simulated L1 (clflush
// semantics) before forwarding to the engine.
type l1Flusher struct {
	l1   *hwsim.L1Cache
	next core.Flusher
}

func (f l1Flusher) FlushAsync(line trace.LineAddr) {
	f.l1.Invalidate(line)
	f.next.FlushAsync(line)
}

func (f l1Flusher) FlushDrain(lines []trace.LineAddr) {
	for _, l := range lines {
		f.l1.Invalidate(l)
	}
	f.next.FlushDrain(lines)
}

// Run executes the workload under one policy with full cycle accounting.
func Run(w *Workload, kind core.PolicyKind, opt RunOptions) (Result, error) {
	if opt.Threads < 1 {
		opt.Threads = 1
	}
	tr, err := w.Trace(opt.Scale, opt.Threads, opt.Seed)
	if err != nil {
		return Result{}, err
	}
	res := Result{Workload: w.Name, Policy: kind, Threads: opt.Threads}

	cfg := core.DefaultConfig()
	var total int64
	for _, s := range tr.Threads {
		total += int64(s.NumWrites())
	}
	perThread := total / int64(max(1, len(tr.Threads)))
	cfg.BurstLength = BurstFor(perThread)
	// Never sample more than an eighth of a thread's stream: with many
	// threads strong scaling shrinks per-thread work and a fixed burst
	// would otherwise dominate the run.
	if cap8 := int(perThread / 8); cfg.BurstLength > cap8 && cap8 >= 256 {
		cfg.BurstLength = cap8
	}
	if w.BurstFrac > 0 {
		cfg.BurstLength = int(w.BurstFrac * float64(perThread))
	}
	if kind == core.SoftCacheOffline {
		size := opt.PresetSize
		if size == 0 {
			if size, err = OfflineSize(w, opt); err != nil {
				return Result{}, err
			}
		}
		cfg.PresetSize = size
	} else if opt.PresetSize > 0 {
		cfg.PresetSize = opt.PresetSize
	}

	cm := hwsim.DefaultCostModel()
	if w.ComputePerStore > 0 {
		cm.ComputePerStore = w.ComputePerStore
	}
	cm.NoInvalidate = opt.UseCLWB
	if opt.Hibernation != 0 {
		cfg.Hibernation = opt.Hibernation
	}
	instr := hwsim.NoInstrument
	switch kind {
	case core.Lazy, core.AtlasTable:
		instr = hwsim.TableInstrument
	case core.SoftCacheOnline, core.SoftCacheOffline:
		instr = hwsim.CacheInstrument
	}

	contention := opt.ContentionPerMille
	if contention == 0 {
		contention = 14 // default: see Table IV reproduction notes
	}
	l1Lines, l1Ways := opt.L1Lines, opt.L1Ways
	if l1Lines == 0 {
		l1Lines = 64
	}
	if l1Ways == 0 {
		l1Ways = 8
	}

	// Threads are fully independent (per-thread policies, engines and
	// L1s — the paper's isolation property), so they replay in parallel.
	var mu sync.Mutex
	var wg sync.WaitGroup
	var l1Accesses, l1Misses int64
	var maxCycles float64
	for ti, s := range tr.Threads {
		wg.Add(1)
		go func(ti int, s *trace.ThreadSeq) {
			defer wg.Done()
			// Each thread owns a private L1 (per-core caches); cross-thread
			// pressure is modelled by random invalidations whose rate grows
			// with the thread count.
			var l1 *hwsim.L1Cache
			var rng *rand.Rand
			if opt.MeasureL1 {
				l1 = hwsim.NewL1Cache(l1Lines, l1Ways)
				rng = rand.New(rand.NewSource(opt.Seed + int64(ti) + 1))
			}
			engine := hwsim.NewEngine(cm, opt.Threads)
			var sink core.FlushSink = hwsim.NewSink(engine)
			if l1 != nil {
				sink = core.NewCountingSink(l1Flusher{l1: l1, next: engine})
			}
			policy := core.NewPolicy(kind, cfg, sink)
			for i := 0; i < s.NumFASEs(); i++ {
				engine.OnFASEBoundary()
				policy.FASEBegin()
				for _, line := range s.FASE(i) {
					engine.OnStore(line, instr)
					if l1 != nil {
						l1.Access(line)
						if opt.Threads > 1 && rng.Float64()*1000 < contention*float64(opt.Threads-1)/float64(opt.Threads) {
							l1.InvalidateRandom(rng)
						}
					}
					policy.Store(line)
				}
				policy.FASEEnd()
				engine.OnFASEBoundary()
			}
			policy.Finish()
			var rep core.AdaptReport
			hasRep := false
			if r, ok := policy.(core.SizeReporter); ok {
				rep = r.AdaptReport()
				hasRep = true
				engine.ChargeAnalysis(rep.AnalyzedWrites)
			}
			st := engine.Stats()

			mu.Lock()
			defer mu.Unlock()
			if hasRep {
				res.ChosenSize = rep.ChosenSize
				res.AnalyzedWrites += rep.AnalyzedWrites
			}
			if l1 != nil {
				l1Accesses += l1.Accesses()
				l1Misses += l1.Misses()
			}
			if st.Cycles > maxCycles {
				maxCycles = st.Cycles
			}
			res.Stats.ComputeCycles += st.ComputeCycles
			res.Stats.TableCycles += st.TableCycles
			res.Stats.IssueCycles += st.IssueCycles
			res.Stats.QueueStall += st.QueueStall
			res.Stats.DrainStall += st.DrainStall
			res.Stats.MissPenalty += st.MissPenalty
			res.Stats.AnalysisCycles += st.AnalysisCycles
			res.Stats.FASECycles += st.FASECycles
			res.Stats.Stores += st.Stores
			res.Stats.AsyncFlushes += st.AsyncFlushes
			res.Stats.DrainFlushes += st.DrainFlushes
			res.Stats.InvalidationRe += st.InvalidationRe
			res.Stats.Instructions += st.Instructions
			res.Stats.FASEs += st.FASEs
			res.Stores += st.Stores
			res.Flushes += sink.Stats().Total()
		}(ti, s)
	}
	wg.Wait()
	res.FASEs = res.Stats.FASEs / 2 // boundaries counted at begin and end
	res.Cycles = maxCycles
	res.Instructions = res.Stats.Instructions
	if res.Stores > 0 {
		res.FlushRatio = float64(res.Flushes) / float64(res.Stores)
	}
	if opt.MeasureL1 && l1Accesses > 0 {
		res.L1MissRatio = float64(l1Misses) / float64(l1Accesses)
	}
	return res, nil
}

// RunAll executes every given policy on the workload and returns results
// keyed by policy kind.
func RunAll(w *Workload, kinds []core.PolicyKind, opt RunOptions) (map[core.PolicyKind]Result, error) {
	out := make(map[core.PolicyKind]Result, len(kinds))
	for _, k := range kinds {
		r, err := Run(w, k, opt)
		if err != nil {
			return nil, err
		}
		out[k] = r
	}
	return out, nil
}
