package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
)

// RecoveryOptions configure the bounded-time recovery comparison: the same
// crash, at the same point of the same workload, recovered from the full
// redo journal (no checkpoint ever published) versus from the newest
// checkpoint image plus its short journal suffix.
type RecoveryOptions struct {
	Shards int
	// Sizes is the heap-size axis: live keys per run. The gate (checkpointed
	// strictly faster) is applied at the largest size, where full replay has
	// the most history to redo.
	Sizes []int
	// Overwrite is the history multiplier: each run issues Overwrite×keys
	// write ops, so the journal holds Overwrite versions of the key space —
	// the work a full replay pays and a checkpoint folds away.
	Overwrite int
	// Tail is the number of ops issued after the last checkpoint and before
	// the crash: the bounded suffix a checkpointed recovery replays.
	Tail int
	Seed int64
}

// DefaultRecoveryOptions sweep three sizes; the largest carries ~64k ops
// of history into the crash.
func DefaultRecoveryOptions() RecoveryOptions {
	return RecoveryOptions{
		Shards:    4,
		Sizes:     []int{1024, 4096, 16384},
		Overwrite: 4,
		Tail:      256,
		Seed:      42,
	}
}

// RecoveryRun is one timed recovery.
type RecoveryRun struct {
	Name      string
	Keys      int
	Ops       int
	HeapBytes uint64
	// RecoverMS is the wall-clock kv.Recover time, crash to serving store.
	RecoverMS float64
	// Mode, Replayed and Restored come from the recovered store's gauges:
	// which source recovery used, how many journal entries it replayed, how
	// many pairs it restored from images.
	Mode     uint64
	Replayed uint64
	Restored uint64
}

// RecoverySizeResult pairs the two recoveries of one heap size.
type RecoverySizeResult struct {
	Keys     int
	Baseline RecoveryRun // full-journal replay (no image published)
	Ckpt     RecoveryRun // newest image + bounded suffix
}

// Speedup is baseline time over checkpointed time (>1: checkpoints win).
func (r *RecoverySizeResult) Speedup() float64 {
	if r.Ckpt.RecoverMS > 0 {
		return r.Baseline.RecoverMS / r.Ckpt.RecoverMS
	}
	return 0
}

// RecoveryResult is the sweep across the size axis.
type RecoveryResult struct {
	Opt  RecoveryOptions
	Rows []RecoverySizeResult
}

// Largest returns the largest-size row — the one the CI gate judges.
func (r *RecoveryResult) Largest() *RecoverySizeResult {
	if len(r.Rows) == 0 {
		return nil
	}
	best := &r.Rows[0]
	for i := range r.Rows {
		if r.Rows[i].Keys > best.Keys {
			best = &r.Rows[i]
		}
	}
	return best
}

// RecoverySweep drives each size twice: identical workload, identical
// injected crash, one store that never published a checkpoint (recovery
// must replay the whole journal) and one that checkpointed during the run
// (recovery restores the newest image and replays only the post-checkpoint
// tail). Both recoveries are wall-clock timed from crashed heap to serving
// store and verified for mode and exact spot-checked values.
func RecoverySweep(opt RecoveryOptions) (*RecoveryResult, error) {
	res := &RecoveryResult{Opt: opt}
	for _, keys := range opt.Sizes {
		base, err := recoveryRun(opt, keys, false)
		if err != nil {
			return nil, fmt.Errorf("keys %d, full replay: %w", keys, err)
		}
		ck, err := recoveryRun(opt, keys, true)
		if err != nil {
			return nil, fmt.Errorf("keys %d, checkpointed: %w", keys, err)
		}
		res.Rows = append(res.Rows, RecoverySizeResult{Keys: keys, Baseline: *base, Ckpt: *ck})
	}
	return res, nil
}

// recoveryKeyVal is the deterministic value of key k in overwrite round r.
func recoveryKeyVal(r, k int) uint64 { return uint64(r)<<40 | uint64(k) + 1 }

func recoveryRun(opt RecoveryOptions, keys int, checkpointed bool) (*RecoveryRun, error) {
	ops := keys * opt.Overwrite
	kvOpts := kv.DefaultOptions()
	kvOpts.Shards = opt.Shards
	if pp := 8 * keys / opt.Shards; pp > kvOpts.PoolPages {
		kvOpts.PoolPages = pp
	}
	// Checkpoint structures exist in both runs — the journal is the
	// persistence scheme under comparison — but only the checkpointed run
	// ever publishes an image. The journal is sized to hold the entire
	// history so the baseline's full replay never overflows, and no timer
	// or batch trigger fires behind the experiment's back.
	kvOpts.Checkpoint = kv.CheckpointConfig{
		Enabled:    true,
		JournalOps: ops + 4*opt.Tail + 1024,
		MaxPairs:   keys + 1024,
	}
	var armed atomic.Bool
	kvOpts.CrashBeforeCommit = func(shard, batch, size int) bool {
		return armed.Load()
	}
	h := pmem.New(int(2 * kv.RecommendedHeapBytes(kvOpts)))
	st, err := kv.Open(h, kvOpts)
	if err != nil {
		return nil, err
	}

	// Load Overwrite rounds over the key space from a few concurrent
	// clients (keys are partitioned, so each key's write order is its round
	// order and the final state is deterministic).
	const clients = 4
	for r := 0; r < opt.Overwrite; r++ {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for k := c; k < keys; k += clients {
					if err := st.Put(uint64(k), recoveryKeyVal(r, k)); err != nil {
						errs[c] = err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// The checkpointed store publishes mid-history too, so truncation
		// has an older image to retire and the journal head moves.
		if checkpointed && (r == opt.Overwrite/2 || r == opt.Overwrite-1) {
			if err := st.Checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	// The bounded suffix: Tail more overwrites after the last checkpoint.
	for i := 0; i < opt.Tail; i++ {
		k := (i * 769) % keys
		if err := st.Put(uint64(k), recoveryKeyVal(opt.Overwrite, k)); err != nil {
			return nil, err
		}
	}

	// Crash the next commit, then time recovery to a serving store.
	armed.Store(true)
	if err := st.Put(uint64(keys), ^uint64(0)); !errors.Is(err, kv.ErrCrashed) {
		return nil, fmt.Errorf("crash put: %v (want ErrCrashed)", err)
	}
	<-st.Crashed()

	t0 := time.Now()
	s2, _, err := kv.Recover(h, kvOpts)
	if err != nil {
		return nil, fmt.Errorf("recover: %w", err)
	}
	elapsed := time.Since(t0)

	run := &RecoveryRun{
		Name:      "full replay",
		Keys:      keys,
		Ops:       ops + opt.Tail,
		HeapBytes: h.Size(),
		RecoverMS: float64(elapsed) / 1e6,
	}
	tot := kv.Totals(s2.Stats())
	run.Mode, run.Replayed, run.Restored = tot.RecoveryMode, tot.RecoveryReplayed, tot.RecoveryRestored
	wantMode := uint64(kv.RecoveryModeJournal)
	if checkpointed {
		run.Name = "checkpointed"
		wantMode = kv.RecoveryModeCheckpoint
	}
	if run.Mode != wantMode {
		return nil, fmt.Errorf("recovery mode %d, want %d", run.Mode, wantMode)
	}
	// Spot-check: the tail's overwrites and the last round's values must
	// both have survived with exact values.
	for i := 0; i < 64; i++ {
		k := (i * 769) % keys
		want := recoveryKeyVal(opt.Overwrite, k)
		if opt.Tail == 0 || i >= opt.Tail {
			want = recoveryKeyVal(opt.Overwrite-1, k)
		}
		got, found, err := s2.Get(uint64(k))
		if err != nil {
			return nil, err
		}
		if !found || got != want {
			return nil, fmt.Errorf("key %d after recovery: got (%#x, %v), want %#x", k, got, found, want)
		}
	}
	if err := s2.Close(); err != nil {
		return nil, err
	}
	return run, nil
}

// Table renders the sweep; the speedup column at the largest size is the
// artifact's bounded-recovery evidence.
func (r *RecoveryResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("bounded-time recovery: full journal replay vs checkpoint + suffix (%d shards, %dx overwrite, %d-op tail)",
			r.Opt.Shards, r.Opt.Overwrite, r.Opt.Tail),
		Headers: []string{"keys", "ops", "heap MB", "full-replay ms", "replayed", "ckpt ms", "replayed", "restored", "speedup"},
		Notes: []string{
			"both stores persist through the same redo journal; only the checkpointed one published images",
			"full replay redoes the whole history; checkpointed recovery restores the newest image and replays only the post-checkpoint tail",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Keys),
			fmt.Sprintf("%d", row.Baseline.Ops),
			fmt.Sprintf("%.1f", float64(row.Baseline.HeapBytes)/(1<<20)),
			fmt.Sprintf("%.2f", row.Baseline.RecoverMS),
			fmt.Sprintf("%d", row.Baseline.Replayed),
			fmt.Sprintf("%.2f", row.Ckpt.RecoverMS),
			fmt.Sprintf("%d", row.Ckpt.Replayed),
			fmt.Sprintf("%d", row.Ckpt.Restored),
			fmt.Sprintf("%.2fx", row.Speedup()),
		)
	}
	return t
}
