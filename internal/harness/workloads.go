// Package harness assembles the paper's full evaluation (Section IV): the
// twelve workloads (four micro-benchmarks, seven SPLASH2 write-locality
// generators, and the MDB case study), the policy × cost-model runner, and
// one reproduction function per table and figure. cmd/nvbench and the
// repository-root benchmarks are thin wrappers around this package.
package harness

import (
	"fmt"
	"sync"

	"nvmcache/internal/bench"
	"nvmcache/internal/mdb"
	"nvmcache/internal/splash"
	"nvmcache/internal/trace"
)

// Workload is one evaluated program: a deterministic trace source plus the
// cost-model and reference data the experiments need.
type Workload struct {
	Name        string
	ProblemSize string
	// ComputePerStore is the program's own work per persistent store in
	// cycles (drives Table I/II/Figure 4 spreads; see splash.Params).
	ComputePerStore float64
	// Micro reports whether this is one of the micro-benchmarks excluded
	// from some paper averages.
	Micro bool
	// Threadable reports whether the workload supports multi-thread runs
	// (the SPLASH2 generators and MDB).
	Threadable bool
	// Paper-published Table III reference ratios (0 when not applicable).
	PaperLA, PaperAT, PaperSC float64
	PaperStores, PaperFASEs   int64
	// PaperChosen is the Section IV-G selected cache size (0 = unlisted).
	PaperChosen int
	// BurstFrac overrides the sampling burst as a fraction of one
	// thread's stores (0 = use BurstFor). MDB needs a long burst because
	// its write locality matures as the tree deepens; the paper's 64M
	// burst likewise covers most of its Mtest run.
	BurstFrac float64

	gen func(scale float64, threads int, seed int64) (*trace.Trace, error)

	mu     sync.Mutex
	cached map[cacheKey]*trace.Trace
}

type cacheKey struct {
	scale   float64
	threads int
	seed    int64
}

// Trace produces (and memoizes) the workload's trace. Generation is
// deterministic in (scale, threads, seed), so every policy replays the
// identical store stream — the paper's controlled-comparison methodology.
func (w *Workload) Trace(scale float64, threads int, seed int64) (*trace.Trace, error) {
	if !w.Threadable {
		threads = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	key := cacheKey{scale, threads, seed}
	if tr, ok := w.cached[key]; ok {
		return tr, nil
	}
	tr, err := w.gen(scale, threads, seed)
	if err != nil {
		return nil, fmt.Errorf("harness: generating %s: %w", w.Name, err)
	}
	if w.cached == nil {
		w.cached = make(map[cacheKey]*trace.Trace)
	}
	w.cached[key] = tr
	return tr, nil
}

// BurstFor returns the default online sampling burst for one thread's
// store stream: ~0.1% of the thread's stores, at least 256 (the paper's
// single 64M burst is a comparable sliver of its full-scale traces; the
// floor keeps several working-set sweeps inside the burst at small
// scales).
func BurstFor(perThreadStores int64) int {
	b := int(perThreadStores / 1000)
	if b < 1024 {
		b = 1024 // long enough to span a few sweeps of the widest working sets
	}
	return b
}

// Workloads returns the paper's twelve evaluated programs in Table III
// order. Micro-benchmarks and MDB execute their real data structures on
// the Atlas runtime; SPLASH2 programs use the calibrated generators.
func Workloads() []*Workload {
	list := []*Workload{
		{
			Name: "linked-list", ProblemSize: "10000", Micro: true, Threadable: true,
			ComputePerStore: 30,
			PaperLA:         0.60001, PaperAT: 0.60001, PaperSC: 0.60001,
			PaperStores: 49999, PaperFASEs: 10000,
			gen: func(scale float64, threads int, _ int64) (*trace.Trace, error) {
				cfg := bench.DefaultChain().Scale(scale * 8) // cheap enough to run larger
				cfg.Threads = threads
				res, err := bench.RunChain(cfg)
				if err != nil {
					return nil, err
				}
				return res.Trace, nil
			},
		},
		{
			Name: "persistent-array", ProblemSize: "100000", Micro: true,
			ComputePerStore: 30,
			PaperLA:         0.00003, PaperAT: 0.06250, PaperSC: 0.00003,
			PaperStores: 1000001, PaperFASEs: 1,
			gen: func(scale float64, _ int, _ int64) (*trace.Trace, error) {
				res, err := bench.RunPersistentArray(bench.DefaultPersistentArray().Scale(scale * 8))
				if err != nil {
					return nil, err
				}
				return res.Trace, nil
			},
		},
		{
			Name: "queue", ProblemSize: "400000", Micro: true, Threadable: true,
			ComputePerStore: 30,
			PaperLA:         0.62500, PaperAT: 0.62500, PaperSC: 0.62500,
			PaperStores: 400006, PaperFASEs: 300000,
			gen: func(scale float64, threads int, _ int64) (*trace.Trace, error) {
				cfg := bench.DefaultMSQueue().Scale(scale * 8)
				cfg.Threads = threads
				res, err := bench.RunMSQueue(cfg)
				if err != nil {
					return nil, err
				}
				return res.Trace, nil
			},
		},
		{
			Name: "hash", ProblemSize: "4000", Micro: true,
			ComputePerStore: 25,
			PaperLA:         0.50092, PaperAT: 0.62128, PaperSC: 0.59531,
			PaperStores: 83061, PaperFASEs: 7000,
			gen: func(scale float64, _ int, _ int64) (*trace.Trace, error) {
				res, err := bench.RunHTable(bench.DefaultHTable().Scale(scale * 16))
				if err != nil {
					return nil, err
				}
				return res.Trace, nil
			},
		},
	}
	for _, p := range splash.Programs() {
		p := p
		list = append(list, &Workload{
			Name:            p.Name,
			ProblemSize:     splashProblemSize(p.Name),
			ComputePerStore: p.ComputePerStore,
			Threadable:      true,
			PaperLA:         p.PaperLA, PaperAT: p.PaperAT, PaperSC: p.PaperSC,
			PaperStores: p.PaperStores, PaperFASEs: p.PaperFASEs,
			PaperChosen: p.PaperChosen,
			gen: func(scale float64, threads int, seed int64) (*trace.Trace, error) {
				return p.Generate(scale, threads, seed), nil
			},
		})
	}
	list = append(list, &Workload{
		Name: "mdb", ProblemSize: "1000000", Threadable: true,
		ComputePerStore: 34,
		PaperLA:         0.05163, PaperAT: 0.30140, PaperSC: 0.11289,
		PaperStores: 65558123, PaperFASEs: 100516,
		PaperChosen: 20,
		gen: func(scale float64, threads int, _ int64) (*trace.Trace, error) {
			// 4x the base scale keeps each thread's stream long relative
			// to the sampling burst (mdb divides work across 8 threads).
			cfg := mdb.DefaultMtest().Scale(scale * 4)
			cfg.Threads = threads
			res, err := mdb.RunMtest(cfg)
			if err != nil {
				return nil, err
			}
			return res.Trace, nil
		},
	})
	return list
}

func splashProblemSize(name string) string {
	switch name {
	case "barnes", "fmm":
		return "16384"
	case "ocean":
		return "1026"
	case "raytrace":
		return "car"
	case "volrend":
		return "head"
	case "water-nsquared", "water-spatial":
		return "512"
	default:
		return "-"
	}
}

// WorkloadByName finds a workload.
func WorkloadByName(list []*Workload, name string) (*Workload, error) {
	for _, w := range list {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown workload %q", name)
}

// SplashWorkloads filters the seven SPLASH2 programs out of a list.
func SplashWorkloads(list []*Workload) []*Workload {
	var out []*Workload
	for _, w := range list {
		if !w.Micro && w.Name != "mdb" {
			out = append(out, w)
		}
	}
	return out
}
