package harness

import (
	"math"
	"strings"
	"testing"

	"nvmcache/internal/core"
)

// Most shape tests run at 1/1024 scale to stay fast; the calibration tests
// in internal/splash pin the exact Table III numbers at the default scale.
func testOpt() RunOptions {
	opt := DefaultRunOptions()
	opt.Scale = 1.0 / 1024
	return opt
}

func TestWorkloadsRoster(t *testing.T) {
	list := Workloads()
	if len(list) != 12 {
		t.Fatalf("got %d workloads, want the paper's 12", len(list))
	}
	want := []string{"linked-list", "persistent-array", "queue", "hash",
		"barnes", "fmm", "ocean", "raytrace", "volrend",
		"water-nsquared", "water-spatial", "mdb"}
	for i, w := range list {
		if w.Name != want[i] {
			t.Errorf("workload %d = %s, want %s (Table III order)", i, w.Name, want[i])
		}
	}
	if len(SplashWorkloads(list)) != 7 {
		t.Errorf("SplashWorkloads: %d", len(SplashWorkloads(list)))
	}
	if _, err := WorkloadByName(list, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTraceCachedAndDeterministic(t *testing.T) {
	w, err := WorkloadByName(Workloads(), "barnes")
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.Trace(1.0/2048, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Trace(1.0/2048, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace not memoized")
	}
}

func TestRunBasics(t *testing.T) {
	opt := testOpt()
	w, _ := WorkloadByName(Workloads(), "water-spatial")
	er, err := Run(w, core.Eager, opt)
	if err != nil {
		t.Fatal(err)
	}
	if er.FlushRatio != 1 {
		t.Errorf("ER flush ratio %v", er.FlushRatio)
	}
	best, err := Run(w, core.Best, opt)
	if err != nil {
		t.Fatal(err)
	}
	if best.Flushes != 0 {
		t.Errorf("BEST flushed %d", best.Flushes)
	}
	if er.Cycles <= best.Cycles {
		t.Errorf("ER (%v) not slower than BEST (%v)", er.Cycles, best.Cycles)
	}
	if er.Stores != best.Stores {
		t.Errorf("store counts differ: %d vs %d", er.Stores, best.Stores)
	}
}

func TestRunMeasuresL1(t *testing.T) {
	opt := testOpt()
	opt.MeasureL1 = true
	w, _ := WorkloadByName(Workloads(), "water-spatial")
	at, err := Run(w, core.AtlasTable, opt)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Run(w, core.Best, opt)
	if err != nil {
		t.Fatal(err)
	}
	if at.L1MissRatio <= best.L1MissRatio {
		t.Errorf("AT L1 mr (%v) not above BEST (%v): clflush invalidations missing",
			at.L1MissRatio, best.L1MissRatio)
	}
}

func TestEagerSlowdownShapeAgainstTableI(t *testing.T) {
	res, err := EagerSlowdown(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Programs) != 7 {
		t.Fatalf("programs: %v", res.Programs)
	}
	for i, p := range res.Programs {
		got, paper := res.Slowdown[i], res.PaperVals[i]
		if math.Abs(got-paper)/paper > 0.4 {
			t.Errorf("%s: slowdown %.1fx, paper %.0fx", p, got, paper)
		}
	}
	if res.Average < 14 || res.Average > 30 {
		t.Errorf("average slowdown %.1fx, paper 22x", res.Average)
	}
	if !strings.Contains(res.Table().String(), "barnes") {
		t.Error("table rendering broken")
	}
}

func TestFigure2WaterSpatialKnee(t *testing.T) {
	opt := DefaultRunOptions() // knee positions need the calibrated scale
	r, err := MRCOf("water-spatial", opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chosen != 23 {
		t.Errorf("chosen %d, paper 23", r.Chosen)
	}
	// The knee must be a real cliff: miss ratio above it ~7%, below ~LA.
	if r.Miss[22] < 0.05 || r.Miss[23] > 0.01 {
		t.Errorf("no cliff at 23: mr(22)=%v mr(23)=%v", r.Miss[22], r.Miss[23])
	}
}

func TestTable2MDBOrdering(t *testing.T) {
	res, err := MDBTable2(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	sp := map[core.PolicyKind]float64{}
	for i, k := range res.Policies {
		sp[k] = res.Speedup[i]
	}
	if sp[core.Eager] != 1 {
		t.Errorf("ER speedup %v", sp[core.Eager])
	}
	// Paper ordering: ER < AT < SC < SC-offline < BEST.
	if !(sp[core.AtlasTable] > 1.5 &&
		sp[core.SoftCacheOnline] > sp[core.AtlasTable] &&
		sp[core.SoftCacheOffline] >= sp[core.SoftCacheOnline] &&
		sp[core.Best] > sp[core.SoftCacheOffline]) {
		t.Errorf("ordering broken: %v", sp)
	}
	if sp[core.Best] < 4.5 || sp[core.Best] > 9.5 {
		t.Errorf("BEST speedup %.2fx, paper 6.94x", sp[core.Best])
	}
}

func TestTable3Headline(t *testing.T) {
	res, err := FlushRatiosTable3(DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// The headline: SC reduces write-backs by roughly an order of
	// magnitude vs AT (paper 11.88x).
	if res.AvgATOverSC < 7 || res.AvgATOverSC > 25 {
		t.Errorf("average AT/SC %.1fx, paper 11.88x", res.AvgATOverSC)
	}
	if res.AvgSCOverLA < 1 || res.AvgSCOverLA > 2.5 {
		t.Errorf("average SC/LA %.2fx, paper 1.43x", res.AvgSCOverLA)
	}
	for _, row := range res.Rows {
		if row.ER != 1 {
			t.Errorf("%s: ER %v", row.Name, row.ER)
		}
		if !(row.LA <= row.SC+1e-9 && row.SC <= row.AT+1e-9) {
			t.Errorf("%s: ordering LA %v SC %v AT %v", row.Name, row.LA, row.SC, row.AT)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := SpeedupsFigure4(testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Best < row.SC-1e-9 || row.Best < row.AT-1e-9 {
			t.Errorf("%s: BEST (%v) not the upper bound (AT %v, SC %v)",
				row.Name, row.Best, row.AT, row.SC)
		}
		if row.AT < 1 {
			t.Errorf("%s: AT slower than ER (%v)", row.Name, row.AT)
		}
	}
	// Paper: AT 4.5x, SC 9.6x, BEST 16.1x on average.
	if res.AvgSC < 5 || res.AvgSC > 15 {
		t.Errorf("average SC speedup %.1fx, paper 9.6x", res.AvgSC)
	}
	if res.AvgBest < 10 || res.AvgBest > 22 {
		t.Errorf("average BEST speedup %.1fx, paper 16.1x", res.AvgBest)
	}
	if res.AvgSCOffline < res.AvgSC-0.5 {
		t.Errorf("SC-offline average (%v) below SC (%v)", res.AvgSCOffline, res.AvgSC)
	}
}

func TestFigures56Shape(t *testing.T) {
	res, err := ParallelFigures56(testOpt(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("cells: %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Figure 5: SC is never catastrophically worse than AT.
		if row.SCOverAT < 0.7 {
			t.Errorf("%s@%d: SC/AT %.2f", row.Name, row.Threads, row.SCOverAT)
		}
		// Figure 6: SC within a small factor of BEST (paper: 1-2 for most,
		// ocean up to 11).
		lim := 4.0
		if row.Name == "ocean" {
			lim = 14
		}
		if row.SCSlowdownVsBest < 1 || row.SCSlowdownVsBest > lim {
			t.Errorf("%s@%d: SC/BEST %.2f outside [1,%.0f]", row.Name, row.Threads, row.SCSlowdownVsBest, lim)
		}
	}
	// Paper: SC beats AT in 85% of cells.
	if res.FracSCBeatsAT < 0.6 {
		t.Errorf("SC beats AT in only %.0f%% of cells", 100*res.FracSCBeatsAT)
	}
}

func TestTable4Trends(t *testing.T) {
	res, err := WaterSpatialTable4(testOpt(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	get := func(k core.PolicyKind, th int) WaterSpatialCell {
		for _, c := range res.Cells {
			if c.Policy == k && c.Threads == th {
				return c
			}
		}
		t.Fatalf("missing cell %v@%d", k, th)
		return WaterSpatialCell{}
	}
	for _, th := range []int{1, 8} {
		at, sc, best := get(core.AtlasTable, th), get(core.SoftCacheOnline, th), get(core.Best, th)
		if !(at.FlushRatio > sc.FlushRatio && sc.FlushRatio >= 0 && best.FlushRatio == 0) {
			t.Errorf("threads=%d: flush ratios AT %v SC %v BEST %v", th, at.FlushRatio, sc.FlushRatio, best.FlushRatio)
		}
		if !(at.L1MissRatio >= sc.L1MissRatio && sc.L1MissRatio >= best.L1MissRatio) {
			t.Errorf("threads=%d: L1 mr AT %v SC %v BEST %v", th, at.L1MissRatio, sc.L1MissRatio, best.L1MissRatio)
		}
		if !(sc.Instructions > best.Instructions && at.Instructions > best.Instructions) {
			t.Errorf("threads=%d: instrumented instruction counts not above BEST", th)
		}
		if sc.Instructions <= at.Instructions {
			t.Errorf("threads=%d: SC instructions (%v) not above AT (%v), paper shows ~6%% more",
				th, sc.Instructions, at.Instructions)
		}
	}
	// Contention: BEST's L1 miss ratio grows with the thread count.
	if get(core.Best, 8).L1MissRatio <= get(core.Best, 1).L1MissRatio {
		t.Error("BEST L1 miss ratio did not grow with threads")
	}
}

func TestFigure7MRCAccuracy(t *testing.T) {
	opt := DefaultRunOptions()
	for _, name := range Figure7Programs {
		r, err := MRCAccuracyFigure7(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		// "Sampled MRC is not as precise ... but in terms of cache size
		// selection, it is sufficiently good": all three curves must lead
		// to nearly the same capacity choice.
		if d := absInt(r.ChosenFull - r.ChosenActual); d > 3 {
			t.Errorf("%s: full-trace choice %d vs actual %d", name, r.ChosenFull, r.ChosenActual)
		}
		if d := absInt(r.ChosenSampled - r.ChosenActual); d > 3 {
			t.Errorf("%s: sampled choice %d vs actual %d", name, r.ChosenSampled, r.ChosenActual)
		}
	}
}

func TestFigure8Overheads(t *testing.T) {
	res, err := OnlineOverheadFigure8(testOpt(), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Overhead < 0 || row.Overhead > 0.25 {
			t.Errorf("%s@%d: overhead %.1f%%", row.Name, row.Threads, 100*row.Overhead)
		}
	}
	if res.Average > 0.15 {
		t.Errorf("average overhead %.1f%%, paper 6.78%%", 100*res.Average)
	}
}

func TestSelectedSizesAgainstPaper(t *testing.T) {
	res, err := SelectedSizes(DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 8 {
		t.Fatalf("programs: %v", res.Names)
	}
	for i, name := range res.Names {
		if d := absInt(res.Chosen[i] - res.Paper[i]); d > 5 {
			t.Errorf("%s: chosen %d, paper %d", name, res.Chosen[i], res.Paper[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.Notes = append(tb.Notes, "n")
	s := tb.String()
	for _, want := range []string{"T", "a", "bb", "x", "1", "note: n"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
