package harness

import (
	"fmt"
	"runtime"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/loadgen"
	"nvmcache/internal/server"
)

// ProtoOptions configure the text-vs-binary wire-protocol A/B: the same
// open-loop schedule, mix, and preload driven through each dialect
// against its own fresh self-hosted nvserver.
type ProtoOptions struct {
	Rate     float64
	Conns    int
	Ops      int
	Shards   int
	Preload  uint64
	Seed     int64
	Mix      string // loadgen -mix string; the A/B exercises the batched verbs
	BatchLen int    // keys per MGET/MPUT frame
}

// DefaultProtoOptions keeps the A/B in smoke-test territory (~2s per
// side) while still exercising every verb class including the batched
// ones.
func DefaultProtoOptions() ProtoOptions {
	return ProtoOptions{
		Rate:     2000,
		Conns:    4,
		Ops:      8000,
		Shards:   8,
		Preload:  2048,
		Seed:     42,
		Mix:      "get:4,put:2,incr:1,mget:1,mput:1",
		BatchLen: 8,
	}
}

// ProtoRun is one dialect's side of the A/B.
type ProtoRun struct {
	Proto  string
	Report *loadgen.Report
	// AllocsPerOp and BytesPerOp are process-wide runtime.MemStats deltas
	// (driver + in-process server) over the measured window, divided by
	// completed wire operations. The absolute numbers include the load
	// driver's own bookkeeping; the A/B difference is the protocol stack's
	// cost, which is what the zero-copy refactor is gated on.
	AllocsPerOp float64
	BytesPerOp  float64
}

// ProtoABResult is the finished comparison.
type ProtoABResult struct {
	Opt          ProtoOptions
	Text, Binary ProtoRun
}

// ProtoAB drives the identical workload through the text and binary
// protocols, each against a fresh self-hosted nvserver, and measures
// throughput, tail latency, and allocation cost per operation.
func ProtoAB(opt ProtoOptions) (*ProtoABResult, error) {
	res := &ProtoABResult{Opt: opt}
	for _, mode := range []string{"text", "binary"} {
		run, err := protoRun(opt, mode)
		if err != nil {
			return nil, err
		}
		if mode == "text" {
			res.Text = *run
		} else {
			res.Binary = *run
		}
	}
	return res, nil
}

func protoRun(opt ProtoOptions, mode string) (*ProtoRun, error) {
	kvOpts := kv.DefaultOptions()
	if opt.Shards > 0 {
		kvOpts.Shards = opt.Shards
	}
	srv, err := server.SelfHost(kvOpts, server.Options{})
	if err != nil {
		return nil, err
	}
	defer srv.Shutdown()

	base := loadgen.DefaultSpec()
	base.BatchLen = opt.BatchLen
	spec, err := loadgen.ParseMix(opt.Mix, base)
	if err != nil {
		return nil, err
	}
	cfg := loadgen.Config{
		Addr:    srv.Addr().String(),
		Rate:    opt.Rate,
		Conns:   opt.Conns,
		Ops:     opt.Ops,
		Dist:    spec,
		Seed:    opt.Seed,
		Proto:   mode,
		Preload: opt.Preload,
	}
	// Settle the allocator before the measured window so one side's
	// warm-up garbage does not bill the other (the runs share a process).
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rep, err := loadgen.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("proto %s run: %w", mode, err)
	}
	runtime.ReadMemStats(&after)
	run := &ProtoRun{Proto: mode, Report: rep}
	if rep.Completed > 0 {
		run.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(rep.Completed)
		run.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Completed)
	}
	return run, nil
}

// Table renders the A/B.
func (r *ProtoABResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("wire protocol A/B: text vs binary at %.0f ops/s over %d conns, mix %s",
			r.Opt.Rate, r.Opt.Conns, r.Opt.Mix),
		Headers: []string{"proto", "sent", "done", "err", "ops/s", "p50", "p99", "max", "allocs/op", "B/op"},
		Notes: []string{
			"allocs/op and B/op are process-wide (driver + in-process server) MemStats deltas per completed wire op",
			fmt.Sprintf("batched verbs carry %d keys per MGET/MPUT frame", r.Opt.BatchLen),
		},
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.0fus", float64(d)/1e3) }
	for _, run := range []*ProtoRun{&r.Text, &r.Binary} {
		rep := run.Report
		t.AddRow(run.Proto,
			fmt.Sprintf("%d", rep.Sent),
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%d", rep.Errors+rep.Timeouts),
			fmt.Sprintf("%.0f", rep.Throughput()),
			us(rep.Hist.Quantile(0.50)),
			us(rep.Hist.Quantile(0.99)),
			us(rep.Hist.Max()),
			fmt.Sprintf("%.1f", run.AllocsPerOp),
			fmt.Sprintf("%.0f", run.BytesPerOp))
	}
	return t
}
