package harness

import (
	"strings"
	"testing"
)

func TestCrashExplorationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps run in internal/faultinject; skip the aggregate in -short")
	}
	r, err := CrashExploration(4)
	if err != nil {
		t.Fatalf("CrashExploration: %v", err)
	}
	if r.KV.Sites < 100 {
		t.Errorf("kv sweep enumerated %d sites, want >= 100", r.KV.Sites)
	}
	if len(r.Atlas) != 4 {
		t.Errorf("expected 4 atlas policy sweeps, got %d", len(r.Atlas))
	}
	tab := r.Table().String()
	for _, want := range []string{"kv exhaustive", "atlas/ER", "total", "sites by boundary kind"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}
