package harness

import "testing"

// TestAdaptiveSweepSmoke runs the static-vs-adaptive comparison at a tiny
// scale and checks the pieces the nvbench artifact depends on: per-phase
// histograms on both runs, control-plane activity (sampling, at least one
// resize somewhere) on the adaptive one, and renderable tables.
func TestAdaptiveSweepSmoke(t *testing.T) {
	opt := DefaultAdaptiveOptions()
	opt.Ops = 3000
	opt.Preload = 512
	r, err := AdaptiveSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []*AdaptiveRun{&r.Static, &r.Adaptive} {
		if got := len(run.Report.PhaseHists); got != 3 {
			t.Fatalf("%s run has %d phase histograms, want 3", run.Name, got)
		}
		if run.Report.Completed == 0 || run.Report.Errors > 0 {
			t.Fatalf("%s run: completed=%d errors=%d", run.Name, run.Report.Completed, run.Report.Errors)
		}
	}
	if len(r.Adaptive.Gauges) != opt.Shards {
		t.Fatalf("adaptive run has %d gauges, want %d", len(r.Adaptive.Gauges), opt.Shards)
	}
	sampled, resizes := int64(0), int64(0)
	for _, g := range r.Adaptive.Gauges {
		sampled += g.Sampled
		resizes += g.Resizes
	}
	if sampled == 0 {
		t.Error("adaptive run sampled no lines")
	}
	if resizes == 0 {
		t.Error("adaptive run never resized (no decisions recorded in the trajectory)")
	}
	if resizes > 0 && len(r.Adaptive.Decisions) == 0 {
		t.Error("resizes counted but no decisions retained")
	}
	if tb := r.Table(); len(tb.Rows) != 4 {
		t.Errorf("comparison table has %d rows, want 4 (3 phases + all)", len(tb.Rows))
	}
	if tb := r.TrajectoryTable(); len(tb.Rows) != opt.Shards {
		t.Errorf("trajectory table has %d rows, want %d", len(tb.Rows), opt.Shards)
	}
}
