package harness

import (
	"fmt"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/loadgen"
	"nvmcache/internal/server"
)

// LoadgenResult is one self-hosted open-loop sweep: the same arrival rate
// driven through each distribution against a fresh in-process nvserver,
// with the coordinated-omission-aware latency percentiles per run.
type LoadgenResult struct {
	Rate    float64
	Conns   int
	Reports []*loadgen.Report
}

// LoadgenOptions configure the sweep.
type LoadgenOptions struct {
	Rate    float64
	Conns   int
	Ops     int    // per distribution
	Shards  int    // self-hosted server shards
	Preload uint64 // keys PUT before each measured run
	Seed    int64
}

// DefaultLoadgenOptions keeps the sweep in smoke-test territory: ~2s of
// driving per distribution.
func DefaultLoadgenOptions() LoadgenOptions {
	return LoadgenOptions{Rate: 2000, Conns: 4, Ops: 8000, Shards: 8, Preload: 2048, Seed: 42}
}

// LoadgenSweep boots one self-hosted nvserver per distribution (so each
// run's STATS delta and key population are its own) and drives the
// open-loop schedule through it.
func LoadgenSweep(opt LoadgenOptions) (*LoadgenResult, error) {
	dists := append(append([]string{}, loadgen.DistNames...), "zipf@1,uniform@1")
	res := &LoadgenResult{Rate: opt.Rate, Conns: opt.Conns}
	for _, name := range dists {
		kvOpts := kv.DefaultOptions()
		if opt.Shards > 0 {
			kvOpts.Shards = opt.Shards
		}
		srv, err := server.SelfHost(kvOpts, server.Options{})
		if err != nil {
			return nil, err
		}
		base := loadgen.DefaultSpec()
		spec, err := loadgen.ParseDist(name, base)
		if err != nil {
			srv.Shutdown()
			return nil, err
		}
		rep, err := loadgen.Run(loadgen.Config{
			Addr:    srv.Addr().String(),
			Rate:    opt.Rate,
			Conns:   opt.Conns,
			Ops:     opt.Ops,
			Dist:    spec,
			Seed:    opt.Seed,
			Preload: opt.Preload,
		})
		srv.Shutdown()
		if err != nil {
			return nil, fmt.Errorf("loadgen %s: %w", name, err)
		}
		res.Reports = append(res.Reports, rep)
	}
	return res, nil
}

// Table renders the sweep.
func (r *LoadgenResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("open-loop load sweep: %.0f ops/s over %d conns, self-hosted nvserver", r.Rate, r.Conns),
		Headers: []string{"dist", "sent", "done", "err", "ops/s", "p50", "p99", "p999", "max"},
		Notes: []string{
			"latency measured from intended send time (coordinated-omission aware)",
		},
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.0fus", float64(d)/1e3) }
	for _, rep := range r.Reports {
		t.AddRow(rep.Config.Dist.Name(),
			fmt.Sprintf("%d", rep.Sent),
			fmt.Sprintf("%d", rep.Completed),
			fmt.Sprintf("%d", rep.Errors+rep.Timeouts),
			fmt.Sprintf("%.0f", rep.Throughput()),
			us(rep.Hist.Quantile(0.50)),
			us(rep.Hist.Quantile(0.99)),
			us(rep.Hist.Quantile(0.999)),
			us(rep.Hist.Max()))
	}
	return t
}
