package harness

import (
	"fmt"
	"strings"
	"time"

	"nvmcache/internal/adaptive"
	"nvmcache/internal/kv"
	"nvmcache/internal/loadgen"
	"nvmcache/internal/server"
)

// AdaptiveOptions configure the static-vs-adaptive comparison sweep.
type AdaptiveOptions struct {
	Rate    float64
	Conns   int
	Ops     int
	Shards  int
	Preload uint64
	Seed    int64
	// Interval is the controller's decision period; the sweep default is
	// much shorter than the serving default so the loop gets many decisions
	// within a smoke-scale run.
	Interval time.Duration
	// MemBudget caps the adaptive store's total write-cache lines (0 =
	// per-shard knee only).
	MemBudget int
}

// DefaultAdaptiveOptions keeps the sweep in smoke-test territory while
// leaving the controller enough operations per phase to sample and react.
func DefaultAdaptiveOptions() AdaptiveOptions {
	return AdaptiveOptions{
		Rate: 3000, Conns: 4, Ops: 18000, Shards: 4, Preload: 2048, Seed: 42,
		Interval: 5 * time.Millisecond,
	}
}

// adaptiveSchedule is the phase-changing workload the controller is judged
// on: a hot-key phase (small working set, deep write combining), a uniform
// phase (wide working set, little reuse), and a scan-heavy phase.
const adaptiveSchedule = "zipf@1,uniform@1,scan@1"

// AdaptiveRun is one server's half of the comparison.
type AdaptiveRun struct {
	Name      string
	Report    *loadgen.Report
	Gauges    []adaptive.ShardGauges
	Decisions []adaptive.Decision
}

// AdaptiveResult is the paired sweep: the same open-loop phased schedule
// against a static store and an adaptive one.
type AdaptiveResult struct {
	Opt      AdaptiveOptions
	Schedule string
	Static   AdaptiveRun
	Adaptive AdaptiveRun
}

// AdaptiveSweep drives the phased schedule twice — against a fresh static
// self-hosted nvserver (the default online-once policy) and against one
// running the adaptive control plane — and captures per-phase latency,
// server flush counters, and the adaptive run's capacity trajectory.
func AdaptiveSweep(opt AdaptiveOptions) (*AdaptiveResult, error) {
	res := &AdaptiveResult{Opt: opt, Schedule: adaptiveSchedule}
	static, err := adaptiveRun(opt, false)
	if err != nil {
		return nil, fmt.Errorf("static run: %w", err)
	}
	res.Static = *static
	adapt, err := adaptiveRun(opt, true)
	if err != nil {
		return nil, fmt.Errorf("adaptive run: %w", err)
	}
	res.Adaptive = *adapt
	return res, nil
}

func adaptiveRun(opt AdaptiveOptions, adaptiveOn bool) (*AdaptiveRun, error) {
	kvOpts := kv.DefaultOptions()
	if opt.Shards > 0 {
		kvOpts.Shards = opt.Shards
	}
	name := "static"
	if adaptiveOn {
		name = "adaptive"
		cfg := adaptive.DefaultConfig()
		cfg.Interval = opt.Interval
		cfg.MemBudget = opt.MemBudget
		// Short bursts re-sampled quickly: a smoke-scale run writes far
		// fewer lines than a serving day, and every phase must be sampled.
		cfg.BurstLength = 1024
		cfg.Hibernation = 2048
		kvOpts.Adaptive = cfg
	}
	srv, err := server.SelfHost(kvOpts, server.Options{})
	if err != nil {
		return nil, err
	}
	spec, err := loadgen.ParseDist(adaptiveSchedule, loadgen.DefaultSpec())
	if err != nil {
		srv.Shutdown()
		return nil, err
	}
	rep, err := loadgen.Run(loadgen.Config{
		Addr:    srv.Addr().String(),
		Rate:    opt.Rate,
		Conns:   opt.Conns,
		Ops:     opt.Ops,
		Dist:    spec,
		Seed:    opt.Seed,
		Preload: opt.Preload,
	})
	run := &AdaptiveRun{Name: name, Report: rep}
	if err == nil && adaptiveOn {
		// Snapshot the control plane before shutdown tears the store down.
		run.Gauges = srv.Store().AdaptiveGauges()
		run.Decisions = srv.Store().AdaptiveDecisions()
	}
	srv.Shutdown()
	if err != nil {
		return nil, err
	}
	return run, nil
}

// flushRatio extracts the server-side flush ratio delta of a run.
func flushRatio(rep *loadgen.Report) float64 {
	flushes := rep.ServerDelta["total.flushes"]
	ops := rep.ServerDelta["total.ops"]
	if ops <= 0 {
		return 0
	}
	return flushes / ops
}

// Table renders the per-phase comparison.
func (r *AdaptiveResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("adaptive control plane vs static: %s at %.0f ops/s over %d conns",
			r.Schedule, r.Opt.Rate, r.Opt.Conns),
		Headers: []string{"phase", "static p50", "static p99", "adaptive p50", "adaptive p99"},
		Notes: []string{
			"latency measured from intended send time (coordinated-omission aware)",
			fmt.Sprintf("flush ratio (flushes/op over the whole run): static=%.3f adaptive=%.3f",
				flushRatio(r.Static.Report), flushRatio(r.Adaptive.Report)),
		},
	}
	us := func(d time.Duration) string { return fmt.Sprintf("%.0fus", float64(d)/1e3) }
	sh, ah := r.Static.Report.PhaseHists, r.Adaptive.Report.PhaseHists
	for i := range sh {
		t.AddRow(r.Static.Report.PhaseNames[i],
			us(sh[i].Quantile(0.50)), us(sh[i].Quantile(0.99)),
			us(ah[i].Quantile(0.50)), us(ah[i].Quantile(0.99)))
	}
	t.AddRow("all",
		us(r.Static.Report.Hist.Quantile(0.50)), us(r.Static.Report.Hist.Quantile(0.99)),
		us(r.Adaptive.Report.Hist.Quantile(0.50)), us(r.Adaptive.Report.Hist.Quantile(0.99)))
	return t
}

// TrajectoryTable renders the adaptive run's control decisions: per shard,
// the capacity path the controller walked (the convergence evidence the
// artifact persists) and the final gauges.
func (r *AdaptiveResult) TrajectoryTable() *Table {
	t := &Table{
		Title:   "adaptive capacity trajectory (per shard: requested capacities in decision order)",
		Headers: []string{"shard", "final cap", "resizes", "sampled lines", "capacity path"},
	}
	paths := make([][]string, len(r.Adaptive.Gauges))
	for _, d := range r.Adaptive.Decisions {
		if d.Resized && d.Shard < len(paths) {
			paths[d.Shard] = append(paths[d.Shard], fmt.Sprintf("%d", d.Capacity))
		}
	}
	for i, g := range r.Adaptive.Gauges {
		path := strings.Join(paths[i], "→")
		if path == "" {
			path = "(no resizes)"
		}
		t.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%d", g.Capacity),
			fmt.Sprintf("%d", g.Resizes),
			fmt.Sprintf("%d", g.Sampled),
			path)
	}
	return t
}
