package harness

import (
	"strings"
	"testing"
)

func TestPlotCurveRendersAllSeries(t *testing.T) {
	out := PlotCurve("T", []string{"a", "b"},
		[][]float64{{1, 0.5, 0.25}, {0.5, 0.5, 0.5}}, 6)
	for _, want := range []string{"T", "* = a", "o = b", "1.0000", "0.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series marks missing")
	}
}

func TestPlotCurveEmpty(t *testing.T) {
	if out := PlotCurve("T", nil, nil, 6); !strings.Contains(out, "(empty)") {
		t.Errorf("empty plot: %q", out)
	}
	if out := PlotCurve("T", []string{"z"}, [][]float64{{0, 0}}, 6); !strings.Contains(out, "(empty)") {
		t.Errorf("all-zero plot: %q", out)
	}
}

func TestPlotCurveHeightClamp(t *testing.T) {
	out := PlotCurve("T", []string{"a"}, [][]float64{{1, 0}}, 1)
	if lines := strings.Count(out, "\n"); lines < 5 {
		t.Errorf("height clamp failed: %d lines", lines)
	}
}

func TestPlotBars(t *testing.T) {
	out := PlotBars("B", []string{"one", "two"}, []float64{2, 4}, "x")
	if !strings.Contains(out, "one") || !strings.Contains(out, "4.00x") {
		t.Errorf("bars:\n%s", out)
	}
	// The longer bar must have more hashes.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Errorf("bar scaling wrong:\n%s", out)
	}
	if out := PlotBars("B", nil, nil, ""); !strings.Contains(out, "(empty)") {
		t.Errorf("empty bars: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddRow("3", "4")
	want := "a,b\n1,2\n3,4\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
