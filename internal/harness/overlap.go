package harness

import (
	"fmt"
	"time"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

// OverlapOptions tunes the flush-overlap experiment: the same single-thread
// FASE workload run twice, once with synchronous FASE-end drains and once
// through the asynchronous flush pipeline (publish epoch N, run FASE N+1,
// await epoch N).
type OverlapOptions struct {
	// Stores is the store count per run (default 200k).
	Stores int
	// FASELength is the number of stores per failure-atomic section. Each
	// store hits its own cache line, so a FASE-end drain covers FASELength
	// consecutive lines. The default 128 puts exactly two lines on each of
	// the heap's 64 stripes per drain, making the per-batch stripe-lock
	// saving deterministic: the batched path locks each stripe once where
	// the per-line path locks it twice.
	FASELength int
	// Policy is the per-thread persistence policy (default SC).
	Policy core.PolicyKind
	// Depth is the pipeline ring capacity in entries (default 256).
	Depth int
	// BatchSize caps async write-back batches (default 64).
	BatchSize int
}

// DefaultOverlapOptions returns the configuration the overlap experiment
// reports.
func DefaultOverlapOptions() OverlapOptions {
	return OverlapOptions{
		Stores:     200_000,
		FASELength: 128,
		Policy:     core.SoftCacheOnline,
		Depth:      256,
		BatchSize:  64,
	}
}

func (o OverlapOptions) withDefaults() OverlapOptions {
	d := DefaultOverlapOptions()
	if o.Stores <= 0 {
		o.Stores = d.Stores
	}
	if o.FASELength <= 0 {
		o.FASELength = d.FASELength
	}
	if o.Depth <= 0 {
		o.Depth = d.Depth
	}
	if o.BatchSize <= 0 {
		o.BatchSize = d.BatchSize
	}
	return o
}

// OverlapRow is one run (sync or pipelined) of the overlap experiment.
type OverlapRow struct {
	Mode       string
	Stores     int64
	Elapsed    time.Duration
	StoresPerS float64
	// StripeAcquired is the heap's dirty-stripe lock acquisitions during
	// the run: store-side dirty marks plus flush-side write-backs. The
	// store side is identical across the two runs, so the difference is
	// purely the flush path — per-line locking versus one acquisition per
	// stripe per batch.
	StripeAcquired int64
	// Flushed is the number of lines written back (async + drained).
	Flushed int64
	// Batches, AvgBatch and MaxBatch describe the pipeline worker's batch
	// sizes (zero for the sync row).
	Batches  int64
	AvgBatch float64
	MaxBatch int64
	// Stalls counts backpressure events (enqueues that found the ring
	// full); Blocked is the mutator wall clock lost to those stalls plus
	// epoch awaits.
	Stalls  int64
	Blocked time.Duration
	// Overlap is the fraction of the mutator's wall clock during which
	// flushing proceeded without blocking it: 1 - Blocked/Elapsed. For the
	// sync row it is zero by construction — every FASE-end drain runs on
	// the mutator.
	Overlap float64
}

// OverlapResult compares the synchronous drain baseline against the
// pipelined publish/await protocol on the same workload.
type OverlapResult struct {
	Policy     core.PolicyKind
	FASELength int
	Sync       OverlapRow
	Pipe       OverlapRow
	// BatchHist is the pipelined run's batch-size histogram in log2
	// buckets (1, 2, 3–4, 5–8, ..., ≥128 lines).
	BatchHist []int64
	// LockSaving is the flush-batching win the acceptance criterion
	// demands: 1 - Pipe.StripeAcquired/Sync.StripeAcquired, strictly
	// positive when batches take fewer stripe locks than per-line drains.
	LockSaving float64
}

// FlushOverlap runs the overlap experiment: one atlas thread storing one
// line per store in FASEs of opt.FASELength, first with synchronous
// FASE-end drains, then with the flush pipeline enabled and the workload
// overlapping FASE N+1's stores with FASE N's drain (FASEPublish with an
// await lag of one). It reports wall-clock throughput, stripe-lock
// acquisitions, the pipeline's batch-size distribution and the flush/compute
// overlap fraction.
func FlushOverlap(opt OverlapOptions) (*OverlapResult, error) {
	opt = opt.withDefaults()
	res := &OverlapResult{Policy: opt.Policy, FASELength: opt.FASELength}
	var err error
	if res.Sync, _, err = overlapOnce(opt, false); err != nil {
		return nil, err
	}
	if res.Pipe, res.BatchHist, err = overlapOnce(opt, true); err != nil {
		return nil, err
	}
	if res.Sync.StripeAcquired > 0 {
		res.LockSaving = 1 - float64(res.Pipe.StripeAcquired)/float64(res.Sync.StripeAcquired)
	}
	return res, nil
}

// overlapOnce runs the workload once. The address stream strides one cache
// line per store over a region of regionLines lines, so both runs issue the
// identical store and flush sets; only the drain mechanism differs.
func overlapOnce(opt OverlapOptions, pipelined bool) (OverlapRow, []int64, error) {
	const regionLines = 1 << 12
	heapSize := regionLines * 64 * 4
	if heapSize < 1<<22 {
		heapSize = 1 << 22
	}
	h := pmem.New(heapSize)
	aopts := atlas.DefaultOptions()
	aopts.Policy = opt.Policy
	aopts.DisableTrace = true
	if pipelined {
		aopts.Pipeline = core.PipelineConfig{Enabled: true, Depth: opt.Depth, BatchSize: opt.BatchSize}
	}
	rt := atlas.NewRuntime(h, aopts)
	th, err := rt.NewThread()
	if err != nil {
		return OverlapRow{}, nil, err
	}
	base, err := h.AllocLines(regionLines * 64)
	if err != nil {
		return OverlapRow{}, nil, err
	}
	before := pmem.SummarizeStripes(h.StripeStats())
	var prev atlas.FASETicket
	havePrev := false
	start := time.Now()
	for n := 0; n < opt.Stores; n++ {
		if n%opt.FASELength == 0 {
			th.FASEBegin()
		}
		addr := base + uint64(n%regionLines)*64
		th.Store64(addr, uint64(n)+1)
		if n%opt.FASELength == opt.FASELength-1 {
			if pipelined {
				// Publish this FASE's epoch and await only the previous
				// one: FASE N+1's stores overlap FASE N's drain.
				tk := th.FASEPublish()
				if havePrev {
					th.FASEAwait(prev)
				}
				prev, havePrev = tk, true
			} else {
				th.FASEEnd()
			}
		}
	}
	if th.InFASE() {
		th.FASEEnd()
	}
	if havePrev {
		th.FASEAwait(prev)
	}
	elapsed := time.Since(start)
	stats := th.FlushStats()
	rt.Close()
	after := pmem.SummarizeStripes(h.StripeStats())
	row := OverlapRow{
		Mode:           "sync",
		Stores:         int64(opt.Stores),
		Elapsed:        elapsed,
		StripeAcquired: after.Acquired - before.Acquired,
		Flushed:        stats.Total(),
		Stalls:         stats.PipeStalls,
		Blocked:        time.Duration(stats.PipeStallNanos + stats.PipeAwaitNanos),
	}
	if s := elapsed.Seconds(); s > 0 {
		row.StoresPerS = float64(row.Stores) / s
	}
	var hist []int64
	if p := th.Pipeline(); p != nil {
		row.Mode = "pipeline"
		row.Batches = stats.PipeBatches
		row.MaxBatch = stats.PipeBatchMax
		if stats.PipeBatches > 0 {
			row.AvgBatch = float64(stats.PipeBatchLines) / float64(stats.PipeBatches)
		}
		if row.Elapsed > 0 {
			row.Overlap = 1 - float64(row.Blocked)/float64(row.Elapsed)
			if row.Overlap < 0 {
				row.Overlap = 0
			}
		}
		b := p.BatchSizes()
		hist = b[:]
	}
	return row, hist, nil
}

// Table renders the comparison.
func (r *OverlapResult) Table() *Table {
	histS := ""
	for i, n := range r.BatchHist {
		if i > 0 {
			histS += " "
		}
		histS += fmt.Sprintf("%d", n)
	}
	t := &Table{
		Title: fmt.Sprintf("Flush/compute overlap: sync drain vs pipelined publish/await (policy %v, FASE=%d lines)",
			r.Policy, r.FASELength),
		Headers: []string{"mode", "stores", "elapsed", "stores/sec", "stripe acq.", "flushed", "batches", "avg batch", "stalls", "blocked", "overlap"},
		Notes: []string{
			"overlap = fraction of mutator wall clock not blocked on epoch awaits or ring backpressure",
			"stripe acq. = dirty-stripe lock acquisitions; the pipeline takes each stripe lock once per batch where sync drains lock per line",
			fmt.Sprintf("per-batch locking saved %.1f%% of stripe acquisitions vs the per-line baseline", 100*r.LockSaving),
			fmt.Sprintf("batch-size histogram (log2 buckets: 1, 2, ≤4, ≤8, ..., ≥128 lines): %s", histS),
		},
	}
	for _, row := range []OverlapRow{r.Sync, r.Pipe} {
		overlap := "-"
		if row.Mode == "pipeline" {
			overlap = f5(row.Overlap)
		}
		t.AddRow(
			row.Mode,
			fmt.Sprintf("%d", row.Stores),
			row.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", row.StoresPerS),
			fmt.Sprintf("%d", row.StripeAcquired),
			fmt.Sprintf("%d", row.Flushed),
			fmt.Sprintf("%d", row.Batches),
			fmt.Sprintf("%.1f", row.AvgBatch),
			fmt.Sprintf("%d", row.Stalls),
			row.Blocked.Round(time.Microsecond).String(),
			overlap,
		)
	}
	return t
}
