package harness

import "testing"

// TestAbsorbSweepSmoke runs the absorption comparison at a tiny scale and
// checks the properties the nvbench artifact asserts: both runs complete
// cleanly, the absorbing run's committed-op count lands strictly below
// its issued logical writes (with a nonzero ratio), the non-absorbing run
// folds nothing, and the table renders.
func TestAbsorbSweepSmoke(t *testing.T) {
	opt := DefaultAbsorbOptions()
	opt.Ops = 4000
	opt.Keys = 32
	r, err := AbsorbSweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []*AbsorbRun{&r.Off, &r.On} {
		if run.Report.Completed == 0 || run.Report.Errors > 0 || run.Report.Timeouts > 0 {
			t.Fatalf("%s: completed=%d errors=%d timeouts=%d",
				run.Name, run.Report.Completed, run.Report.Errors, run.Report.Timeouts)
		}
		if run.Issued == 0 {
			t.Fatalf("%s: no logical writes reached the server (%v)", run.Name, run.Report.ServerDelta)
		}
	}
	if r.Off.Absorbed != 0 || r.Off.Ratio() != 0 {
		t.Errorf("absorb-off run folded %v ops (ratio %.3f)", r.Off.Absorbed, r.Off.Ratio())
	}
	if r.On.Committed >= r.On.Issued {
		t.Errorf("absorb-on run committed %v of %v issued writes — nothing absorbed",
			r.On.Committed, r.On.Issued)
	}
	if r.On.Absorbed == 0 || r.On.Ratio() <= 0 {
		t.Errorf("absorb-on run reports absorbed=%v ratio=%.3f", r.On.Absorbed, r.On.Ratio())
	}
	if r.On.ThresholdCommits+r.On.DeadlineCommits == 0 {
		t.Error("absorb-on run recorded no accumulator commits (neither trigger fired)")
	}
	if tb := r.Table(); len(tb.Rows) != 2 {
		t.Errorf("table has %d rows, want 2", len(tb.Rows))
	}
}
