package harness

import "testing"

// TestProtoAB is the A/B smoke: both dialects complete the identical
// schedule error-free, and the binary side's allocation cost per op is
// strictly lower — the refactor's headline claim, here at test scale.
func TestProtoAB(t *testing.T) {
	opt := DefaultProtoOptions()
	opt.Ops = 2000
	opt.Preload = 512
	r, err := ProtoAB(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []*ProtoRun{&r.Text, &r.Binary} {
		rep := run.Report
		if rep.Sent != int64(opt.Ops) || rep.Completed != rep.Sent {
			t.Fatalf("%s: sent=%d completed=%d of %d", run.Proto, rep.Sent, rep.Completed, opt.Ops)
		}
		if rep.Errors != 0 || rep.Timeouts != 0 {
			t.Fatalf("%s: errors=%d timeouts=%d", run.Proto, rep.Errors, rep.Timeouts)
		}
		if run.AllocsPerOp <= 0 {
			t.Fatalf("%s: allocs/op = %.2f, want positive (driver bookkeeping exists)", run.Proto, run.AllocsPerOp)
		}
	}
	if r.Binary.AllocsPerOp >= r.Text.AllocsPerOp {
		t.Fatalf("binary allocs/op %.2f not below text %.2f",
			r.Binary.AllocsPerOp, r.Text.AllocsPerOp)
	}
	tb := r.Table()
	if len(tb.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tb.Rows))
	}
}
