package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the textual analogue of one of
// the paper's tables or figures.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f5(v float64) string { return fmt.Sprintf("%.5f", v) }
func fx(v float64) string { return fmt.Sprintf("%.2fx", v) }
func pc(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
