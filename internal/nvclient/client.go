// Package nvclient is the reusable Go client for the nvserver line
// protocol, extracted from the ad-hoc connection handling that used to
// live in cmd/nvserver's self-test. It offers two calling styles:
//
//   - Blocking: Do sends one request and waits for its one-line reply
//     (DoMulti for STATS-style multi-line replies).
//   - Pipelined: Send buffers requests without waiting, Flush pushes the
//     window to the server in one write, Recv reads replies in order.
//     Replies are strictly FIFO (the server handles a connection's
//     requests sequentially), so no request ids are needed.
//
// The open-loop load driver (internal/loadgen) is built on the pipelined
// style: its sender goroutine Sends on schedule while a reader goroutine
// Recvs, so a slow reply never delays the next scheduled request.
package nvclient

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"
)

// Client is one protocol connection. The blocking calls (Do, DoMulti,
// Stats) must not be interleaved with pipelined calls on other goroutines;
// in pipelined style, one goroutine may Send/Flush while another Recvs.
type Client struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

// Dial connects to an nvserver at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bound on connection establishment.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return &Client{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

// Close tears the connection down. In-flight pipelined requests are lost.
func (cl *Client) Close() error { return cl.c.Close() }

// Do sends one request line and waits for its one-line reply, trimmed.
func (cl *Client) Do(cmd string) (string, error) {
	if err := cl.Send(cmd); err != nil {
		return "", err
	}
	if err := cl.Flush(); err != nil {
		return "", err
	}
	return cl.Recv()
}

// DoMulti sends one request and reads reply lines until the terminator
// (exclusive).
func (cl *Client) DoMulti(cmd, end string) ([]string, error) {
	if err := cl.Send(cmd); err != nil {
		return nil, err
	}
	if err := cl.Flush(); err != nil {
		return nil, err
	}
	var out []string
	for {
		line, err := cl.Recv()
		if err != nil {
			return nil, err
		}
		if line == end {
			return out, nil
		}
		out = append(out, line)
	}
}

// Send buffers one request line without flushing; pair with Flush and
// Recv. A request buffered but never flushed is never seen by the server.
func (cl *Client) Send(cmd string) error {
	_, err := fmt.Fprintln(cl.w, cmd)
	return err
}

// Flush pushes every buffered request to the server in one write.
func (cl *Client) Flush() error { return cl.w.Flush() }

// Recv reads the next reply line (FIFO order), trimmed of whitespace.
func (cl *Client) Recv() (string, error) {
	line, err := cl.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// SetReadDeadline bounds every subsequent Recv; the zero time clears it.
// A deadline error poisons the connection's buffered reader state, so
// treat a timed-out client as dead.
func (cl *Client) SetReadDeadline(t time.Time) error { return cl.c.SetReadDeadline(t) }

// Put stores k→v, returning an error for anything but an OK ack.
func (cl *Client) Put(k, v uint64) error {
	reply, err := cl.Do(fmt.Sprintf("PUT %d %d", k, v))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("nvclient: PUT %d: %s", k, reply)
	}
	return nil
}

// Get reads k, reporting presence.
func (cl *Client) Get(k uint64) (uint64, bool, error) {
	reply, err := cl.Do(fmt.Sprintf("GET %d", k))
	if err != nil {
		return 0, false, err
	}
	switch {
	case reply == "NIL":
		return 0, false, nil
	case strings.HasPrefix(reply, "VAL "):
		var v uint64
		if _, err := fmt.Sscanf(reply, "VAL %d", &v); err != nil {
			return 0, false, fmt.Errorf("nvclient: GET %d: bad reply %q", k, reply)
		}
		return v, true, nil
	}
	return 0, false, fmt.Errorf("nvclient: GET %d: %s", k, reply)
}

// Incr adds d to k (wrapping uint64; a missing key counts from zero) and
// returns the post-increment value. The VAL reply is an ack-after-flush:
// with server-side absorption the reply may wait for the accumulator's
// net-delta commit, but a returned Incr is durable.
func (cl *Client) Incr(k, d uint64) (uint64, error) { return cl.counter("INCR", k, d) }

// Decr subtracts d from k with Incr's semantics.
func (cl *Client) Decr(k, d uint64) (uint64, error) { return cl.counter("DECR", k, d) }

func (cl *Client) counter(verb string, k, d uint64) (uint64, error) {
	reply, err := cl.Do(fmt.Sprintf("%s %d %d", verb, k, d))
	if err != nil {
		return 0, err
	}
	var v uint64
	if _, err := fmt.Sscanf(reply, "VAL %d", &v); err != nil {
		return 0, fmt.Errorf("nvclient: %s %d: %s", verb, k, reply)
	}
	return v, nil
}

// Stats fetches and parses one STATS snapshot.
func (cl *Client) Stats() (*Stats, error) {
	lines, err := cl.DoMulti("STATS", "END")
	if err != nil {
		return nil, err
	}
	return ParseStats(lines)
}
