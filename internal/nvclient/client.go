// Package nvclient is the reusable Go client for the nvserver wire
// protocols, extracted from the ad-hoc connection handling that used to
// live in cmd/nvserver's self-test. A client speaks one of the server's
// two dialects, fixed at dial time:
//
//   - Text (Dial): the line protocol. Do sends one request and waits for
//     its one-line reply (DoMulti for STATS-style multi-line replies);
//     Send/Flush/Recv pipeline request lines.
//   - Binary (DialBinary): the length-prefixed framed protocol of
//     internal/proto. Requests encode into a reused buffer with zero
//     allocations per op, replies decode zero-copy from the connection's
//     read buffer — the hot path for loadgen and latency-sensitive
//     callers. The server sniffs the dialect from the first byte, so both
//     kinds of client share a port.
//
// The typed calls (Put, Get, Incr, Decr, MGet, MPut, Stats) work in both
// modes. Both dialects pipeline the same way: the typed Send* calls
// buffer requests without waiting, Flush pushes the window in one write,
// and RecvResult (or the mode-specific Recv/RecvReply) reads replies in
// strict FIFO order, so no request ids are needed. The open-loop load
// driver (internal/loadgen) is built on that style: its sender goroutine
// Sends on schedule while a reader goroutine Recvs, so a slow reply never
// delays the next scheduled request.
package nvclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"nvmcache/internal/proto"
)

// ErrTextOnly reports a raw line-protocol call (Do, DoMulti, Send, Recv)
// on a binary-mode client; use the typed calls instead.
var ErrTextOnly = errors.New("nvclient: line-protocol call on a binary-mode client")

// Client is one protocol connection. The blocking calls (Do, DoMulti,
// Put, Get, ..., Stats) must not be interleaved with pipelined calls on
// other goroutines; in pipelined style, one goroutine may Send/Flush
// while another Recvs.
type Client struct {
	c   net.Conn
	r   *bufio.Reader
	w   *bufio.Writer
	bin bool

	// Reused binary-mode buffers: ebuf backs one request's encoding,
	// scratch backs oversized reply payloads (proto.ReadFrame), rvals and
	// rfound back MGet replies in text mode.
	ebuf    []byte
	scratch []byte
	rvals   []uint64
	rfound  []bool
}

// Dial connects to an nvserver at addr, speaking the text line protocol.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a bound on connection establishment.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	return dial(addr, d, false)
}

// DialBinary connects to an nvserver at addr, speaking the binary framed
// protocol (internal/proto).
func DialBinary(addr string) (*Client, error) {
	return DialBinaryTimeout(addr, 10*time.Second)
}

// DialBinaryTimeout is DialBinary with a bound on connection
// establishment.
func DialBinaryTimeout(addr string, d time.Duration) (*Client, error) {
	return dial(addr, d, true)
}

func dial(addr string, d time.Duration, bin bool) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	cl := &Client{c: c, r: bufio.NewReaderSize(c, 64<<10), w: bufio.NewWriter(c), bin: bin}
	if bin {
		cl.ebuf = make([]byte, 0, 4096)
	}
	return cl, nil
}

// Binary reports the client's dialect.
func (cl *Client) Binary() bool { return cl.bin }

// Close tears the connection down. In-flight pipelined requests are lost.
func (cl *Client) Close() error { return cl.c.Close() }

// Do sends one request line and waits for its one-line reply, trimmed.
// Text mode only.
func (cl *Client) Do(cmd string) (string, error) {
	if cl.bin {
		return "", ErrTextOnly
	}
	if err := cl.Send(cmd); err != nil {
		return "", err
	}
	if err := cl.Flush(); err != nil {
		return "", err
	}
	return cl.Recv()
}

// DoMulti sends one request and reads reply lines until the terminator
// (exclusive). Text mode only.
func (cl *Client) DoMulti(cmd, end string) ([]string, error) {
	if cl.bin {
		return nil, ErrTextOnly
	}
	if err := cl.Send(cmd); err != nil {
		return nil, err
	}
	if err := cl.Flush(); err != nil {
		return nil, err
	}
	var out []string
	for {
		line, err := cl.Recv()
		if err != nil {
			return nil, err
		}
		if line == end {
			return out, nil
		}
		out = append(out, line)
	}
}

// Send buffers one request line without flushing; pair with Flush and
// Recv. A request buffered but never flushed is never seen by the server.
// Text mode only.
func (cl *Client) Send(cmd string) error {
	if cl.bin {
		return ErrTextOnly
	}
	_, err := fmt.Fprintln(cl.w, cmd)
	return err
}

// Flush pushes every buffered request to the server in one write.
func (cl *Client) Flush() error { return cl.w.Flush() }

// Recv reads the next reply line (FIFO order), trimmed of whitespace.
// Text mode only.
func (cl *Client) Recv() (string, error) {
	if cl.bin {
		return "", ErrTextOnly
	}
	line, err := cl.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// RecvReply reads the next binary reply frame (FIFO order). The payload
// aliases the client's internal buffers and is valid only until the next
// read. Binary mode only.
func (cl *Client) RecvReply() (op byte, payload []byte, err error) {
	if !cl.bin {
		return 0, nil, errors.New("nvclient: RecvReply on a text-mode client")
	}
	return proto.ReadFrame(cl.r, &cl.scratch)
}

// RecvResult reads and discards the next reply in either mode, reporting
// only whether the server answered with an application error (ERR line /
// error frame). It is the load driver's reader primitive: op generators
// know what they sent, so FIFO order pins each result to its request.
func (cl *Client) RecvResult() (appErr bool, err error) {
	if cl.bin {
		op, _, err := cl.RecvReply()
		if err != nil {
			return false, err
		}
		return op == proto.RepErr, nil
	}
	reply, err := cl.Recv()
	if err != nil {
		return false, err
	}
	return strings.HasPrefix(reply, "ERR"), nil
}

// SetReadDeadline bounds every subsequent receive; the zero time clears
// it. A deadline error poisons the connection's buffered reader state, so
// treat a timed-out client as dead.
func (cl *Client) SetReadDeadline(t time.Time) error { return cl.c.SetReadDeadline(t) }

// --- Pipelined typed sends -------------------------------------------
//
// Each buffers one request in the client's dialect without flushing. In
// binary mode they are allocation-free (the frame encodes into a reused
// buffer and copies into the write buffer).

// send stages cl.ebuf (one encoded frame) into the write buffer.
func (cl *Client) send() error {
	_, err := cl.w.Write(cl.ebuf)
	return err
}

// SendPut buffers a PUT.
func (cl *Client) SendPut(k, v uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendPut(cl.ebuf[:0], k, v)
		return cl.send()
	}
	return cl.Send(formatKV("PUT", k, v))
}

// SendGet buffers a GET.
func (cl *Client) SendGet(k uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendGet(cl.ebuf[:0], k)
		return cl.send()
	}
	return cl.Send(formatK("GET", k))
}

// SendDel buffers a DEL.
func (cl *Client) SendDel(k uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendDel(cl.ebuf[:0], k)
		return cl.send()
	}
	return cl.Send(formatK("DEL", k))
}

// SendIncr buffers an INCR.
func (cl *Client) SendIncr(k, d uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendIncr(cl.ebuf[:0], k, d)
		return cl.send()
	}
	return cl.Send(formatKV("INCR", k, d))
}

// SendDecr buffers a DECR.
func (cl *Client) SendDecr(k, d uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendDecr(cl.ebuf[:0], k, d)
		return cl.send()
	}
	return cl.Send(formatKV("DECR", k, d))
}

// SendScan buffers a SCAN.
func (cl *Client) SendScan(start uint64, n uint32) error {
	if cl.bin {
		cl.ebuf = proto.AppendScan(cl.ebuf[:0], start, n)
		return cl.send()
	}
	return cl.Send(formatKV("SCAN", start, uint64(n)))
}

// SendMGet buffers an MGET for keys (at most proto.MaxOps).
func (cl *Client) SendMGet(keys []uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendMGet(cl.ebuf[:0], keys)
		return cl.send()
	}
	return cl.Send(formatMulti("MGET", keys, nil))
}

// SendMPut buffers an MPUT for the parallel keys/vals slices (len(vals)
// must equal len(keys); at most proto.MaxOps pairs).
func (cl *Client) SendMPut(keys, vals []uint64) error {
	if cl.bin {
		cl.ebuf = proto.AppendMPut(cl.ebuf[:0], keys, vals)
		return cl.send()
	}
	return cl.Send(formatMulti("MPUT", keys, vals))
}

// SendStats buffers a STATS request.
func (cl *Client) SendStats() error {
	if cl.bin {
		cl.ebuf = proto.AppendStats(cl.ebuf[:0])
		return cl.send()
	}
	return cl.Send("STATS")
}

// SendQuit buffers a QUIT request.
func (cl *Client) SendQuit() error {
	if cl.bin {
		cl.ebuf = proto.AppendQuit(cl.ebuf[:0])
		return cl.send()
	}
	return cl.Send("QUIT")
}

func formatK(verb string, k uint64) string {
	return verb + " " + strconv.FormatUint(k, 10)
}

func formatKV(verb string, k, v uint64) string {
	return verb + " " + strconv.FormatUint(k, 10) + " " + strconv.FormatUint(v, 10)
}

func formatMulti(verb string, keys, vals []uint64) string {
	var b strings.Builder
	b.WriteString(verb)
	for i, k := range keys {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(k, 10))
		if vals != nil {
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(vals[i], 10))
		}
	}
	return b.String()
}

// --- Blocking typed calls ---------------------------------------------

// errFrame converts an error-frame payload into an error (copying the
// message out of the transient read buffer).
func errFrame(verb string, payload []byte) error {
	return fmt.Errorf("nvclient: %s: ERR %s", verb, payload)
}

// Put stores k→v, returning an error for anything but an OK ack.
func (cl *Client) Put(k, v uint64) error {
	if cl.bin {
		if err := cl.SendPut(k, v); err != nil {
			return err
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		op, p, err := cl.RecvReply()
		switch {
		case err != nil:
			return err
		case op == proto.RepOK:
			return nil
		case op == proto.RepErr:
			return errFrame("PUT", p)
		}
		return fmt.Errorf("nvclient: PUT %d: unexpected reply op %d", k, op)
	}
	reply, err := cl.Do(formatKV("PUT", k, v))
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("nvclient: PUT %d: %s", k, reply)
	}
	return nil
}

// Get reads k, reporting presence.
func (cl *Client) Get(k uint64) (uint64, bool, error) {
	if cl.bin {
		if err := cl.SendGet(k); err != nil {
			return 0, false, err
		}
		if err := cl.Flush(); err != nil {
			return 0, false, err
		}
		op, p, err := cl.RecvReply()
		switch {
		case err != nil:
			return 0, false, err
		case op == proto.RepVal:
			v, err := proto.DecodeVal(p)
			return v, err == nil, err
		case op == proto.RepNil:
			return 0, false, nil
		case op == proto.RepErr:
			return 0, false, errFrame("GET", p)
		}
		return 0, false, fmt.Errorf("nvclient: GET %d: unexpected reply op %d", k, op)
	}
	reply, err := cl.Do(formatK("GET", k))
	if err != nil {
		return 0, false, err
	}
	if reply == "NIL" {
		return 0, false, nil
	}
	v, err := parseVal(reply)
	if err != nil {
		return 0, false, fmt.Errorf("nvclient: GET %d: bad reply %q", k, reply)
	}
	return v, true, nil
}

// Incr adds d to k (wrapping uint64; a missing key counts from zero) and
// returns the post-increment value. The reply is an ack-after-flush: with
// server-side absorption it may wait for the accumulator's net-delta
// commit, but a returned Incr is durable.
func (cl *Client) Incr(k, d uint64) (uint64, error) { return cl.counter("INCR", k, d) }

// Decr subtracts d from k with Incr's semantics.
func (cl *Client) Decr(k, d uint64) (uint64, error) { return cl.counter("DECR", k, d) }

func (cl *Client) counter(verb string, k, d uint64) (uint64, error) {
	if cl.bin {
		var err error
		if verb == "INCR" {
			err = cl.SendIncr(k, d)
		} else {
			err = cl.SendDecr(k, d)
		}
		if err != nil {
			return 0, err
		}
		if err := cl.Flush(); err != nil {
			return 0, err
		}
		op, p, err := cl.RecvReply()
		switch {
		case err != nil:
			return 0, err
		case op == proto.RepVal:
			return proto.DecodeVal(p)
		case op == proto.RepErr:
			return 0, errFrame(verb, p)
		}
		return 0, fmt.Errorf("nvclient: %s %d: unexpected reply op %d", verb, k, op)
	}
	reply, err := cl.Do(formatKV(verb, k, d))
	if err != nil {
		return 0, err
	}
	v, err := parseVal(reply)
	if err != nil {
		return 0, fmt.Errorf("nvclient: %s %d: %s", verb, k, reply)
	}
	return v, nil
}

// parseVal parses a strict `VAL <decimal>` reply: trailing garbage after
// the number (`VAL 12garbage`) is rejected, unlike the fmt.Sscanf parsing
// this replaces, which silently accepted it.
func parseVal(reply string) (uint64, error) {
	rest, ok := strings.CutPrefix(reply, "VAL ")
	if !ok {
		return 0, fmt.Errorf("no VAL prefix in %q", reply)
	}
	return strconv.ParseUint(rest, 10, 64)
}

// MGet reads every key in one round trip, filling vals[i]/found[i] in
// key order. vals and found are reused when they have capacity (pass nil
// to let the client allocate); the re-sliced results are returned. At
// most proto.MaxOps keys.
func (cl *Client) MGet(keys []uint64, vals []uint64, found []bool) ([]uint64, []bool, error) {
	if len(keys) == 0 {
		return vals[:0], found[:0], nil
	}
	if err := cl.SendMGet(keys); err != nil {
		return vals, found, err
	}
	if err := cl.Flush(); err != nil {
		return vals, found, err
	}
	if cl.bin {
		op, p, err := cl.RecvReply()
		switch {
		case err != nil:
			return vals, found, err
		case op == proto.RepVals:
			vals, found, err = proto.DecodeVals(p, vals, found)
			if err == nil && len(vals) != len(keys) {
				err = fmt.Errorf("nvclient: MGET: %d entries for %d keys", len(vals), len(keys))
			}
			return vals, found, err
		case op == proto.RepErr:
			return vals, found, errFrame("MGET", p)
		}
		return vals, found, fmt.Errorf("nvclient: MGET: unexpected reply op %d", op)
	}
	reply, err := cl.Recv()
	if err != nil {
		return vals, found, err
	}
	return parseVals(reply, len(keys), vals, found)
}

// parseVals parses a text `VALS <n> <v|NIL>...` reply into the reused
// slices.
func parseVals(reply string, want int, vals []uint64, found []bool) ([]uint64, []bool, error) {
	f := strings.Fields(reply)
	if len(f) < 2 || f[0] != "VALS" {
		return vals, found, fmt.Errorf("nvclient: MGET: bad reply %q", reply)
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n != want || len(f) != 2+n {
		return vals, found, fmt.Errorf("nvclient: MGET: bad reply %q for %d keys", reply, want)
	}
	vals, found = vals[:0], found[:0]
	for _, tok := range f[2:] {
		if tok == "NIL" {
			vals = append(vals, 0)
			found = append(found, false)
			continue
		}
		v, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return vals, found, fmt.Errorf("nvclient: MGET: bad value %q", tok)
		}
		vals = append(vals, v)
		found = append(found, true)
	}
	return vals, found, nil
}

// MPut durably stores every keys[i]→vals[i] pair in one round trip and
// one group-commit enqueue per server shard. len(vals) must equal
// len(keys); at most proto.MaxOps pairs. An MPut that returns nil
// survives any crash in full.
func (cl *Client) MPut(keys, vals []uint64) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("nvclient: MPUT: %d keys, %d vals", len(keys), len(vals))
	}
	if len(keys) == 0 {
		return nil
	}
	if err := cl.SendMPut(keys, vals); err != nil {
		return err
	}
	if err := cl.Flush(); err != nil {
		return err
	}
	if cl.bin {
		op, p, err := cl.RecvReply()
		switch {
		case err != nil:
			return err
		case op == proto.RepOK:
			return nil
		case op == proto.RepErr:
			return errFrame("MPUT", p)
		}
		return fmt.Errorf("nvclient: MPUT: unexpected reply op %d", op)
	}
	reply, err := cl.Recv()
	if err != nil {
		return err
	}
	if reply != "OK" {
		return fmt.Errorf("nvclient: MPUT: %s", reply)
	}
	return nil
}

// Stats fetches and parses one STATS snapshot (both modes; the binary
// reply carries the text rendering, so the schema is identical).
func (cl *Client) Stats() (*Stats, error) {
	if cl.bin {
		if err := cl.SendStats(); err != nil {
			return nil, err
		}
		if err := cl.Flush(); err != nil {
			return nil, err
		}
		op, p, err := cl.RecvReply()
		switch {
		case err != nil:
			return nil, err
		case op == proto.RepErr:
			return nil, errFrame("STATS", p)
		case op != proto.RepStats:
			return nil, fmt.Errorf("nvclient: STATS: unexpected reply op %d", op)
		}
		lines := strings.Split(strings.TrimSpace(string(p)), "\n")
		return ParseStats(lines)
	}
	lines, err := cl.DoMulti("STATS", "END")
	if err != nil {
		return nil, err
	}
	return ParseStats(lines)
}
