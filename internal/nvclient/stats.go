package nvclient

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Stats is one parsed STATS reply: the server emits one line per shard, an
// aggregate `total` line and a `stripes` line, every field a `key=value`
// token with keys in sorted, stable order (kv.ShardStats.Pairs), so two
// snapshots taken around a load run diff reliably.
type Stats struct {
	// Shards holds each shard line's fields, indexed by shard id.
	Shards []map[string]float64
	// Total holds the aggregate line's fields.
	Total map[string]float64
	// Stripes holds the heap's stripe-lock summary (contention counters).
	Stripes map[string]float64
}

// ParseStats parses the lines of one STATS reply (terminator excluded).
func ParseStats(lines []string) (*Stats, error) {
	st := &Stats{}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case strings.HasPrefix(fields[0], "shard="):
			id, err := strconv.Atoi(strings.TrimPrefix(fields[0], "shard="))
			if err != nil || id < 0 {
				return nil, fmt.Errorf("nvclient: bad shard line %q", line)
			}
			m, err := parsePairs(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("nvclient: shard %d: %w", id, err)
			}
			for len(st.Shards) <= id {
				st.Shards = append(st.Shards, nil)
			}
			st.Shards[id] = m
		case fields[0] == "total":
			m, err := parsePairs(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("nvclient: total line: %w", err)
			}
			st.Total = m
		case strings.HasPrefix(fields[0], "stripes="):
			// The stripe count is itself a key=value token, so the whole
			// line parses uniformly.
			m, err := parsePairs(fields)
			if err != nil {
				return nil, fmt.Errorf("nvclient: stripes line: %w", err)
			}
			st.Stripes = m
		default:
			return nil, fmt.Errorf("nvclient: unrecognized STATS line %q", line)
		}
	}
	if st.Total == nil {
		return nil, fmt.Errorf("nvclient: STATS reply has no total line")
	}
	return st, nil
}

func parsePairs(tokens []string) (map[string]float64, error) {
	m := make(map[string]float64, len(tokens))
	for _, tok := range tokens {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("token %q is not key=value", tok)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("token %q: %w", tok, err)
		}
		m[k] = f
	}
	return m, nil
}

// Diff returns cur−prev for every key of the total and stripes lines,
// prefixed "total." and "stripes.". The subtraction is meaningful for the
// monotone counters (ops, puts, gets, flushes, pipe_stalls, acquired,
// contended, …); gauge keys (percentiles, ratios, maxima) are included for
// completeness but should be read from the final snapshot instead.
func (s *Stats) Diff(prev *Stats) map[string]float64 {
	out := make(map[string]float64, len(s.Total)+len(s.Stripes))
	sub := func(prefix string, cur, old map[string]float64) {
		for k, v := range cur {
			p := 0.0
			if old != nil {
				p = old[k]
			}
			out[prefix+k] = v - p
		}
	}
	var pt, ps map[string]float64
	if prev != nil {
		pt, ps = prev.Total, prev.Stripes
	}
	sub("total.", s.Total, pt)
	sub("stripes.", s.Stripes, ps)
	return out
}

// Keys returns a map's keys sorted (stable iteration for rendering/tests).
func Keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
