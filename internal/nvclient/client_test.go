package nvclient

import (
	"bufio"
	"io"
	"net"
	"strings"
	"testing"
)

// fakeTextServer pairs a client with a scripted line-protocol peer: each
// request line (whatever it says) is answered with the next canned reply.
func fakeTextServer(t *testing.T, replies ...string) *Client {
	t.Helper()
	here, there := net.Pipe()
	t.Cleanup(func() { here.Close(); there.Close() })
	go func() {
		r := bufio.NewReader(there)
		for _, reply := range replies {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			if _, err := io.WriteString(there, reply+"\n"); err != nil {
				return
			}
		}
	}()
	return &Client{c: here, r: bufio.NewReader(here), w: bufio.NewWriter(here)}
}

func TestParseValStrict(t *testing.T) {
	if v, err := parseVal("VAL 12"); err != nil || v != 12 {
		t.Fatalf("parseVal(VAL 12) = %d,%v", v, err)
	}
	if v, err := parseVal("VAL 18446744073709551615"); err != nil || v != 1<<64-1 {
		t.Fatalf("parseVal(max) = %d,%v", v, err)
	}
	for _, bad := range []string{
		"VAL 12garbage", // the fmt.Sscanf bug this replaces accepted this
		"VAL",
		"VAL ",
		"VAL -1",
		"VAL 1 2",
		"VALUE 1",
		"OK",
	} {
		if _, err := parseVal(bad); err == nil {
			t.Fatalf("parseVal(%q) accepted a malformed reply", bad)
		}
	}
}

func TestGetRejectsMalformedReply(t *testing.T) {
	cl := fakeTextServer(t, "VAL 12garbage")
	if v, ok, err := cl.Get(1); err == nil {
		t.Fatalf("Get accepted %q: %d,%v", "VAL 12garbage", v, ok)
	}
}

func TestCounterRejectsMalformedReply(t *testing.T) {
	cl := fakeTextServer(t, "VAL 7x", "VAL 9 trailing")
	if v, err := cl.Incr(1, 1); err == nil {
		t.Fatalf("Incr accepted %q: %d", "VAL 7x", v)
	}
	if v, err := cl.Decr(1, 1); err == nil {
		t.Fatalf("Decr accepted %q: %d", "VAL 9 trailing", v)
	}
}

func TestParseValsText(t *testing.T) {
	vals, found, err := parseVals("VALS 3 7 NIL 9", 3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 7 || found[1] || vals[2] != 9 || !found[2] {
		t.Fatalf("parseVals = %v %v", vals, found)
	}
	for _, bad := range []string{
		"VALS 2 7",       // count/entry mismatch
		"VALS 3 7 8 9",   // wrong count for want=2 below
		"VALS x 7 8",     // bad count
		"RANGE 1 2 3",    // wrong verb
		"VALS 2 7 8 9",   // extra entry
		"VALS 2 7 8bad",  // malformed value
		"ERR store down", // error line
	} {
		if _, _, err := parseVals(bad, 2, nil, nil); err == nil {
			t.Fatalf("parseVals(%q) accepted a malformed reply", bad)
		}
	}
}

// TestBinarySendAllocs pins the binary client's encode path — typed
// Send* into the reused frame buffer plus the write-buffer copy — at
// zero allocations per op.
func TestBinarySendAllocs(t *testing.T) {
	cl := &Client{bin: true, w: bufio.NewWriter(io.Discard), ebuf: make([]byte, 0, 4096)}
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	vals := []uint64{8, 7, 6, 5, 4, 3, 2, 1}
	if n := testing.AllocsPerRun(200, func() {
		if err := cl.SendPut(1, 2); err != nil {
			panic(err)
		}
		if err := cl.SendGet(3); err != nil {
			panic(err)
		}
		if err := cl.SendIncr(4, 1); err != nil {
			panic(err)
		}
		if err := cl.SendMGet(keys); err != nil {
			panic(err)
		}
		if err := cl.SendMPut(keys, vals); err != nil {
			panic(err)
		}
		if err := cl.Flush(); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("binary send allocs/op = %v, want 0", n)
	}
}

func TestTextOnlyGuards(t *testing.T) {
	cl := &Client{bin: true, w: bufio.NewWriter(io.Discard)}
	if _, err := cl.Do("GET 1"); err != ErrTextOnly {
		t.Fatalf("Do on binary client: %v", err)
	}
	if _, err := cl.DoMulti("STATS", "END"); err != ErrTextOnly {
		t.Fatalf("DoMulti on binary client: %v", err)
	}
	if err := cl.Send("GET 1"); err != ErrTextOnly {
		t.Fatalf("Send on binary client: %v", err)
	}
	if _, err := cl.Recv(); err != ErrTextOnly {
		t.Fatalf("Recv on binary client: %v", err)
	}
	txt := &Client{}
	if _, _, err := txt.RecvReply(); err == nil ||
		!strings.Contains(err.Error(), "text-mode") {
		t.Fatalf("RecvReply on text client: %v", err)
	}
}
