package nvclient

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"nvmcache/internal/kv"
)

// statsLines renders a STATS reply body the way the server does: shard
// lines, a total line, a stripes line.
func statsLines(stats []kv.ShardStats, stripes string) []string {
	var out []string
	for _, st := range stats {
		out = append(out, st.String())
	}
	out = append(out, kv.Totals(stats).String(), stripes)
	return out
}

func TestParseStatsRoundTrip(t *testing.T) {
	a := kv.ShardStats{Shard: 0, Puts: 10, Deletes: 2, Gets: 30, Scans: 4,
		Batches: 5, BatchedOps: 12, AsyncFlushes: 7, DrainedFlushes: 9,
		CommitP50: 100, CommitP99: 900, PipeEpochs: 3, PipeStalls: 1}
	b := kv.ShardStats{Shard: 1, Puts: 1, Gets: 2, Batches: 1, BatchedOps: 1}
	lines := statsLines([]kv.ShardStats{a, b},
		"stripes=64 acquired=100 contended=3 contention=0.0300 hot_stripe=5 hot_acquired=40")

	st, err := ParseStats(lines)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("parsed %d shards, want 2", len(st.Shards))
	}
	checks := map[string]float64{
		"puts": 10, "dels": 2, "gets": 30, "scans": 4, "batches": 5,
		"ops": 12, "flush_async": 7, "flush_drained": 9, "flushes": 16,
		"commit_p50_cyc": 100, "commit_p99_cyc": 900, "pipe_epochs": 3, "pipe_stalls": 1,
	}
	for k, want := range checks {
		if got := st.Shards[0][k]; got != want {
			t.Errorf("shard 0 %s = %v, want %v", k, got, want)
		}
	}
	if st.Total["puts"] != 11 || st.Total["ops"] != 13 {
		t.Fatalf("total puts=%v ops=%v, want 11/13", st.Total["puts"], st.Total["ops"])
	}
	if st.Stripes["contended"] != 3 || st.Stripes["stripes"] != 64 {
		t.Fatalf("stripes parsed %v", st.Stripes)
	}
}

// TestStatsKeysSortedStable asserts the wire schema loadgen diffs against:
// every rendered line's key=value tokens appear in sorted key order, and
// the key set is identical across shard and total lines (so a diff never
// misses a counter because the schema shifted).
func TestStatsKeysSortedStable(t *testing.T) {
	with := kv.ShardStats{Shard: 0, Puts: 1, PipeEpochs: 9, PipeStalls: 2}
	without := kv.ShardStats{Shard: 1}
	keysOf := func(line string) []string {
		fields := strings.Fields(line)[1:] // drop the row id
		keys := make([]string, len(fields))
		for i, f := range fields {
			k, _, ok := strings.Cut(f, "=")
			if !ok {
				t.Fatalf("token %q in %q is not key=value", f, line)
			}
			keys[i] = k
		}
		return keys
	}
	kw, kwo := keysOf(with.String()), keysOf(without.String())
	if !sort.StringsAreSorted(kw) {
		t.Fatalf("keys not sorted: %v", kw)
	}
	if strings.Join(kw, " ") != strings.Join(kwo, " ") {
		t.Fatalf("key set depends on counter values:\n%v\n%v", kw, kwo)
	}
	tot := keysOf(kv.Totals([]kv.ShardStats{with, without}).String())
	if strings.Join(kw, " ") != strings.Join(tot, " ") {
		t.Fatalf("total line key set differs from shard lines:\n%v\n%v", kw, tot)
	}
}

func TestStatsDiff(t *testing.T) {
	mk := func(puts, gets uint64, contended float64) *Stats {
		st, err := ParseStats(statsLines(
			[]kv.ShardStats{{Shard: 0, Puts: puts, Gets: gets}},
			"stripes=64 acquired=0 contended="+trimFloat(contended)))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	before := mk(10, 100, 5)
	after := mk(25, 160, 9)
	d := after.Diff(before)
	if d["total.puts"] != 15 || d["total.gets"] != 60 || d["stripes.contended"] != 4 {
		t.Fatalf("diff = %v", d)
	}
	// A nil prev diffs against zero.
	d0 := before.Diff(nil)
	if d0["total.puts"] != 10 {
		t.Fatalf("diff vs nil = %v", d0)
	}
}

func TestParseStatsRejectsGarbage(t *testing.T) {
	for _, lines := range [][]string{
		{"shard=0 puts=1"},                 // no total line
		{"total puts=notanumber"},          // bad value
		{"total puts=1", "who knows what"}, // unknown line
		{"shard=x puts=1", "total puts=1"}, // bad shard id
		{"shard=0 puts", "total puts=1"},   // token without =
	} {
		if _, err := ParseStats(lines); err == nil {
			t.Errorf("ParseStats(%q) accepted garbage", lines)
		}
	}
}

func trimFloat(f float64) string { return strconv.FormatFloat(f, 'f', -1, 64) }
