package adaptive

import (
	"testing"
	"time"

	"nvmcache/internal/locality"
	"nvmcache/internal/trace"
)

// fakeShard is an in-memory Shard for controller tests.
type fakeShard struct {
	cap      int
	maxBatch int
	maxDelay time.Duration
	depth    int
	absorbDl time.Duration
	cnt      Counters
	resizes  int
}

func (f *fakeShard) CacheCapacity() int                { return f.cap }
func (f *fakeShard) SetCacheCapacity(c int)            { f.cap = c; f.resizes++ }
func (f *fakeShard) BatchBounds() (int, time.Duration) { return f.maxBatch, f.maxDelay }
func (f *fakeShard) SetBatchBounds(mb int, md time.Duration) {
	f.maxBatch, f.maxDelay = mb, md
}
func (f *fakeShard) PipeDepth() int                    { return f.depth }
func (f *fakeShard) SetPipeDepth(d int)                { f.depth = d }
func (f *fakeShard) AbsorbDeadline() time.Duration     { return f.absorbDl }
func (f *fakeShard) SetAbsorbDeadline(d time.Duration) { f.absorbDl = d }
func (f *fakeShard) Counters() Counters                { return f.cnt }

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BurstLength = 64
	cfg.Hibernation = 64
	return cfg
}

// feed runs writes lines through the tap as one FASE per line (worst-case
// renaming: every line distinct per FASE).
func feed(t *Tap, lines []uint64) {
	for _, l := range lines {
		t.TapStore(trace.LineAddr(l))
	}
	t.TapFASEEnd()
}

// hotLines emits n writes cycling over k distinct lines within one FASE,
// so reuse is high and the knee sits near k.
func hotLines(n, k int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i % k)
	}
	return out
}

func TestTapPublishesBursts(t *testing.T) {
	tap := NewTap(8, 8)
	if b := tap.TakeBurst(); b != nil {
		t.Fatalf("fresh tap returned burst %v", b)
	}
	feed(tap, hotLines(8, 4))
	b := tap.TakeBurst()
	if len(b) != 8 {
		t.Fatalf("burst length %d, want 8", len(b))
	}
	if tap.TakeBurst() != nil {
		t.Fatal("TakeBurst did not clear the slot")
	}
	if tap.SampledLines() != 8 || tap.Bursts() != 1 {
		t.Fatalf("gauges %d/%d, want 8/1", tap.SampledLines(), tap.Bursts())
	}
	// Hibernation: the next 8 writes are skipped, the 8 after recorded.
	feed(tap, hotLines(8, 4))
	if tap.TakeBurst() != nil {
		t.Fatal("burst completed during hibernation")
	}
	feed(tap, hotLines(8, 4))
	if b := tap.TakeBurst(); len(b) != 8 {
		t.Fatalf("re-sampled burst length %d, want 8", len(b))
	}
	if tap.Bursts() != 2 {
		t.Fatalf("bursts = %d, want 2", tap.Bursts())
	}
}

func TestControllerCapacityAndBudget(t *testing.T) {
	cfg := testConfig()
	cfg.MemBudget = 0
	taps := []*Tap{NewTap(cfg.BurstLength, cfg.Hibernation), NewTap(cfg.BurstLength, cfg.Hibernation)}
	shards := []Shard{
		&fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond},
		&fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond},
	}
	c := NewController(cfg, taps, shards)

	// Feed both taps a hot burst over 24 lines inside one FASE.
	for _, tap := range taps {
		feed(tap, hotLines(cfg.BurstLength, 24))
	}
	c.Tick()
	want := kneeOf(hotLines(cfg.BurstLength, 24), cfg)
	for i, sh := range shards {
		if got := sh.(*fakeShard).cap; got != want {
			t.Errorf("shard %d capacity = %d, want knee %d", i, got, want)
		}
	}
	if len(c.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}
	last := c.Decisions()[len(c.Decisions())-1]
	if !last.Resized || last.Capacity != want {
		t.Errorf("last decision %+v, want resize to %d", last, want)
	}

	// Same locality under a tight budget: targets scale down ~proportionally.
	cfg2 := testConfig()
	cfg2.MemBudget = want // both shards share what one knee asks for
	taps2 := []*Tap{NewTap(cfg2.BurstLength, cfg2.Hibernation), NewTap(cfg2.BurstLength, cfg2.Hibernation)}
	shards2 := []Shard{
		&fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond},
		&fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond},
	}
	c2 := NewController(cfg2, taps2, shards2)
	for _, tap := range taps2 {
		feed(tap, hotLines(cfg2.BurstLength, 24))
	}
	c2.Tick()
	total := 0
	for _, sh := range shards2 {
		got := sh.(*fakeShard).cap
		if got > want/2+1 || got < 1 {
			t.Errorf("budgeted capacity = %d, want ≈%d", got, want/2)
		}
		total += got
	}
	if total > cfg2.MemBudget {
		t.Errorf("total capacity %d exceeds budget %d", total, cfg2.MemBudget)
	}
}

// kneeOf computes the expected knee for a renamed one-FASE burst.
func kneeOf(lines []uint64, cfg Config) int {
	ids := make(map[uint64]uint64, len(lines))
	renamed := make([]uint64, len(lines))
	next := uint64(0)
	for i, l := range lines {
		id, ok := ids[l]
		if !ok {
			id = next
			next++
			ids[l] = id
		}
		renamed[i] = id
	}
	return locality.SelectSize(locality.ProfileBurst(renamed, cfg.Knee.MaxSize).MRC, cfg.Knee)
}

func TestControllerHysteresisHoldsSmallChanges(t *testing.T) {
	cfg := testConfig()
	cfg.Hysteresis = 0.5
	tap := NewTap(cfg.BurstLength, cfg.Hibernation)
	sh := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond}
	c := NewController(cfg, []*Tap{tap}, []Shard{sh})
	feed(tap, hotLines(cfg.BurstLength, 24))
	c.Tick()
	first := sh.cap
	if first == 8 {
		t.Fatalf("no initial resize (cap still 8)")
	}
	// A slightly different burst whose knee moves < 50%: no new resize.
	feed(tap, hotLines(cfg.BurstLength, 26))
	c.Tick()
	if sh.resizes != 1 {
		t.Errorf("resizes = %d after sub-hysteresis change, want 1 (cap %d→%d)", sh.resizes, first, sh.cap)
	}
}

func TestControllerBatchAdaptation(t *testing.T) {
	cfg := testConfig()
	sh := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond}
	tap := NewTap(cfg.BurstLength, cfg.Hibernation)
	c := NewController(cfg, []*Tap{tap}, []Shard{sh})

	// Full batches: the window is clipping → bounds double.
	sh.cnt.Batches += 10
	sh.cnt.BatchedOps += 10 * 64
	c.Tick()
	if sh.maxBatch != 128 || sh.maxDelay != 4*time.Millisecond {
		t.Errorf("after full batches: bounds %d/%v, want 128/4ms", sh.maxBatch, sh.maxDelay)
	}
	// Near-empty batches: halve, bounded below.
	for i := 0; i < 10; i++ {
		sh.cnt.Batches += 100
		sh.cnt.BatchedOps += 100 // mean 1 op/batch
		c.Tick()
	}
	if sh.maxBatch != cfg.MinBatch || sh.maxDelay != cfg.MinDelay {
		t.Errorf("after empty batches: bounds %d/%v, want %d/%v",
			sh.maxBatch, sh.maxDelay, cfg.MinBatch, cfg.MinDelay)
	}
}

func TestControllerDepthAdaptation(t *testing.T) {
	cfg := testConfig()
	sh := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond, depth: 256}
	tap := NewTap(cfg.BurstLength, cfg.Hibernation)
	c := NewController(cfg, []*Tap{tap}, []Shard{sh})

	sh.cnt.PipeStalls = 3
	c.Tick()
	if sh.depth != 512 {
		t.Errorf("depth after stalls = %d, want 512", sh.depth)
	}
	// Four quiet ticks decay the depth by a quarter.
	for i := 0; i < 4; i++ {
		c.Tick()
	}
	if sh.depth != 384 {
		t.Errorf("depth after quiet streak = %d, want 384", sh.depth)
	}
	// A shard without a pipeline is untouched.
	sh2 := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond, depth: 0}
	c2 := NewController(cfg, []*Tap{NewTap(cfg.BurstLength, cfg.Hibernation)}, []Shard{sh2})
	c2.Tick()
	if sh2.depth != 0 {
		t.Errorf("pipeline-less shard got depth %d", sh2.depth)
	}
}

func TestControllerAbsorbAdaptation(t *testing.T) {
	cfg := testConfig()
	sh := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond, absorbDl: time.Millisecond}
	tap := NewTap(cfg.BurstLength, cfg.Hibernation)
	c := NewController(cfg, []*Tap{tap}, []Shard{sh})

	// Counter traffic that commits almost entirely unabsorbed: the
	// accumulator flushes before coalescing pays → the deadline doubles.
	sh.cnt.CounterOps += 100
	sh.cnt.Committed += 99
	sh.cnt.Absorbed += 1
	c.Tick()
	if sh.absorbDl != 2*time.Millisecond {
		t.Errorf("deadline after unabsorbed counters = %v, want 2ms", sh.absorbDl)
	}
	// Repeated low-ratio ticks saturate at MaxAbsorbDeadline.
	for i := 0; i < 6; i++ {
		sh.cnt.CounterOps += 100
		sh.cnt.Committed += 100
		c.Tick()
	}
	if sh.absorbDl != cfg.MaxAbsorbDeadline {
		t.Errorf("deadline after low-ratio streak = %v, want cap %v", sh.absorbDl, cfg.MaxAbsorbDeadline)
	}
	// Saturated absorption: most acked ops folded away → the deadline walks
	// back down to MinAbsorbDeadline.
	for i := 0; i < 8; i++ {
		sh.cnt.CounterOps += 100
		sh.cnt.Absorbed += 90
		sh.cnt.Committed += 10
		c.Tick()
	}
	if sh.absorbDl != cfg.MinAbsorbDeadline {
		t.Errorf("deadline after saturated absorption = %v, want floor %v", sh.absorbDl, cfg.MinAbsorbDeadline)
	}
	last := c.Decisions()[len(c.Decisions())-1]
	if last.AbsorbDeadline != cfg.MinAbsorbDeadline {
		t.Errorf("decision AbsorbDeadline = %v, want %v", last.AbsorbDeadline, cfg.MinAbsorbDeadline)
	}

	// Without counter traffic a low ratio must not lengthen the deadline
	// (pure PUT/DEL load gains nothing from parking time).
	sh2 := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond, absorbDl: time.Millisecond}
	c2 := NewController(cfg, []*Tap{NewTap(cfg.BurstLength, cfg.Hibernation)}, []Shard{sh2})
	sh2.cnt.Committed += 100
	c2.Tick()
	if sh2.absorbDl != time.Millisecond {
		t.Errorf("counter-free shard's deadline moved to %v", sh2.absorbDl)
	}
	// An absorption-off shard (deadline 0) is untouched.
	sh3 := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond}
	c3 := NewController(cfg, []*Tap{NewTap(cfg.BurstLength, cfg.Hibernation)}, []Shard{sh3})
	sh3.cnt.CounterOps += 100
	sh3.cnt.Committed += 100
	c3.Tick()
	if sh3.absorbDl != 0 {
		t.Errorf("absorption-off shard got deadline %v", sh3.absorbDl)
	}
}

func TestControllerStartStopIdempotent(t *testing.T) {
	cfg := testConfig()
	cfg.Interval = time.Millisecond
	sh := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond}
	c := NewController(cfg, []*Tap{NewTap(64, 64)}, []Shard{sh})
	c.Start()
	c.Start()
	time.Sleep(5 * time.Millisecond)
	c.Stop()
	c.Stop()
}

func TestGauges(t *testing.T) {
	cfg := testConfig()
	tap := NewTap(cfg.BurstLength, cfg.Hibernation)
	sh := &fakeShard{cap: 8, maxBatch: 64, maxDelay: 2 * time.Millisecond}
	c := NewController(cfg, []*Tap{tap}, []Shard{sh})
	feed(tap, hotLines(cfg.BurstLength, 24))
	c.Tick()
	g := c.Gauges(0)
	if g.Capacity != int64(sh.cap) {
		t.Errorf("gauge capacity %d, want %d", g.Capacity, sh.cap)
	}
	if g.Resizes != 1 || g.Sampled != int64(cfg.BurstLength) || g.LastSeq == 0 {
		t.Errorf("gauges %+v unexpected", g)
	}
}

// TestTapStoreAllocs extends the zero-alloc assertion pattern from
// wcache_test.go to the sampling tap: while the sampler hibernates the
// hot-path TapStore must not allocate at all, and while collecting it must
// not allocate beyond the amortized burst buffer/rename map (asserted over
// lines already renamed, where the per-store cost is an append within
// capacity).
func TestTapStoreAllocs(t *testing.T) {
	tap := NewTap(1<<20, 1<<30)
	// Warm the rename map and burst buffer.
	for i := 0; i < 1024; i++ {
		tap.TapStore(trace.LineAddr(i % 64))
	}
	if avg := testing.AllocsPerRun(1000, func() {
		tap.TapStore(trace.LineAddr(7))
	}); avg != 0 {
		t.Errorf("collecting TapStore allocates %.1f/op over warm lines, want 0", avg)
	}

	// A hibernating tap: complete the burst, then measure the sleep path.
	tap2 := NewTap(8, 1<<30)
	for i := 0; i < 8; i++ {
		tap2.TapStore(trace.LineAddr(i))
	}
	tap2.TakeBurst()
	if avg := testing.AllocsPerRun(1000, func() {
		tap2.TapStore(trace.LineAddr(3))
	}); avg != 0 {
		t.Errorf("hibernating TapStore allocates %.1f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		tap2.TapFASEEnd()
	}); avg != 0 {
		t.Errorf("hibernating TapFASEEnd allocates %.1f/op, want 0", avg)
	}
}

// BenchmarkTapStoreSleeping measures the near-zero-cost fast path a
// hibernating tap adds to the store hot path.
func BenchmarkTapStoreSleeping(b *testing.B) {
	tap := NewTap(8, 1<<40)
	for i := 0; i < 8; i++ {
		tap.TapStore(trace.LineAddr(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tap.TapStore(trace.LineAddr(i))
	}
}
