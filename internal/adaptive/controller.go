package adaptive

import (
	"sync"
	"time"

	"nvmcache/internal/locality"
)

// Config tunes the control plane. The zero value is disabled; use
// DefaultConfig as the base and WithDefaults to fill unset fields.
type Config struct {
	// Enabled turns the controller (and the per-shard sampling taps) on.
	Enabled bool
	// Interval is the decision period.
	Interval time.Duration
	// MemBudget caps the *sum* of write-cache capacities across shards, in
	// lines; when the per-shard knee targets exceed it they are scaled down
	// proportionally. 0 leaves each shard at its own knee (each still
	// bounded by Knee.MaxSize).
	MemBudget int
	// Knee configures the per-shard capacity pick from the MRC.
	Knee locality.KneeConfig
	// BurstLength is the sampler burst per shard, in line writes.
	BurstLength int
	// Hibernation is how many line writes each sampler skips between
	// bursts — the periodic re-sampling that lets the loop track phase
	// changes (the paper's one-shot setting is the offline special case).
	Hibernation int64
	// Alpha is the EWMA weight of the newest burst when blending profiles
	// (hysteresis input; 0.5 reacts within ~2 bursts).
	Alpha float64
	// Hysteresis is the minimum relative capacity change worth a resize:
	// |target−current| ≥ Hysteresis·current, so the cache is not churned
	// by sampling noise.
	Hysteresis float64

	// MinBatch/MaxBatch/MinDelay/MaxDelay bound the group-commit window
	// adaptation: near-full batches double the bounds (absorption — the
	// window is clipping), near-empty ones halve them (latency for no
	// amortization win). MaxBatch 0 disables batch adaptation.
	MinBatch, MaxBatch int
	MinDelay, MaxDelay time.Duration
	// MinDepth/MaxDepth bound the flush-pipeline depth adaptation:
	// backpressure stalls double the depth, a stall-free streak decays it.
	// The pipeline additionally clamps to its ring capacity. MaxDepth 0
	// disables depth adaptation. Shards without a pipeline are unaffected.
	MinDepth, MaxDepth int
	// MinAbsorbDeadline/MaxAbsorbDeadline bound the absorption-deadline
	// adaptation, the controller's fourth actuator: a low absorbed/committed
	// ratio under counter traffic means parked ops commit before enough
	// coalescing accrues (double the deadline, admitting more ack latency
	// for more absorption); a high ratio means absorption saturates and the
	// deadline is shortened back toward MinAbsorbDeadline to cut deferred-ack
	// latency. MaxAbsorbDeadline 0 disables the rule. Shards with absorption
	// off are unaffected.
	MinAbsorbDeadline, MaxAbsorbDeadline time.Duration
}

// DefaultConfig returns an enabled configuration with serving-scale
// constants: 100ms decisions, 4Ki-write bursts re-sampled after 16Ki
// skipped writes, the paper's knee rule, 25% resize hysteresis.
func DefaultConfig() Config {
	return Config{
		Enabled:     true,
		Interval:    100 * time.Millisecond,
		Knee:        locality.DefaultKneeConfig(),
		BurstLength: 4096,
		Hibernation: 16384,
		Alpha:       0.5,
		Hysteresis:  0.25,
		MinBatch:    8,
		MaxBatch:    512,
		MinDelay:    500 * time.Microsecond,
		MaxDelay:    8 * time.Millisecond,
		MinDepth:    64,
		MaxDepth:    1024,

		MinAbsorbDeadline: 500 * time.Microsecond,
		MaxAbsorbDeadline: 8 * time.Millisecond,
	}
}

// WithDefaults fills unset fields from DefaultConfig, preserving Enabled
// and any explicitly set value.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.Knee.MaxSize <= 0 {
		c.Knee = d.Knee
	}
	if c.BurstLength <= 0 {
		c.BurstLength = d.BurstLength
	}
	if c.Hibernation == 0 {
		c.Hibernation = d.Hibernation
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = d.Alpha
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.MinBatch <= 0 {
		c.MinBatch = d.MinBatch
	}
	if c.MinDelay <= 0 {
		c.MinDelay = d.MinDelay
	}
	if c.MinDepth <= 0 {
		c.MinDepth = d.MinDepth
	}
	if c.MinAbsorbDeadline <= 0 {
		c.MinAbsorbDeadline = d.MinAbsorbDeadline
	}
	return c
}

// Shard is the control surface one engine shard exposes to the controller.
// All methods must be safe to call from the controller goroutine while the
// shard keeps serving: setters publish targets the shard applies at its
// next safe point (the capacity at the next FASE end, the batch bounds at
// the next gather), so getters may briefly lag a setter.
type Shard interface {
	CacheCapacity() int
	SetCacheCapacity(capacity int)
	BatchBounds() (maxBatch int, maxDelay time.Duration)
	SetBatchBounds(maxBatch int, maxDelay time.Duration)
	// PipeDepth returns the flush-pipeline backpressure bound, or 0 when
	// the shard has no pipeline (SetPipeDepth is then a no-op).
	PipeDepth() int
	SetPipeDepth(depth int)
	// AbsorbDeadline returns how long a counter op may park in the shard's
	// absorption accumulator before its net delta commits, or 0 when
	// absorption is off (SetAbsorbDeadline is then a no-op).
	AbsorbDeadline() time.Duration
	SetAbsorbDeadline(d time.Duration)
	Counters() Counters
}

// Counters are the monotone observables the batch and depth rules diff
// between ticks.
type Counters struct {
	// Batches/BatchedOps describe group-commit absorption: their ratio is
	// the mean batch size over the tick.
	Batches, BatchedOps uint64
	// PipeStalls counts flush-pipeline backpressure events (mutator blocked
	// on a full ring).
	PipeStalls int64
	// Absorbed/Committed split the acked mutations by whether a physical
	// write of their own reached the FASE; their ratio over a tick is the
	// absorption rule's input. CounterOps (incrs + decrs) gates the rule's
	// lengthening side: without counter traffic a longer park deadline
	// cannot buy anything.
	Absorbed, Committed, CounterOps uint64
}

// Decision is one per-shard control action, recorded for the capacity
// trajectory the adaptive experiment reports.
type Decision struct {
	Seq   uint64
	Shard int
	// Capacity is the capacity requested by this decision (or confirmed,
	// when no resize was worth it); Target is the raw knee pick before the
	// memory budget and hysteresis.
	Capacity, Target int
	// Miss is the blended profile's predicted miss ratio at Capacity;
	// WorkingSet and Hotness are the profile scalars.
	Miss, WorkingSet, Hotness float64
	MaxBatch                  int
	MaxDelay                  time.Duration
	PipeDepth                 int
	AbsorbDeadline            time.Duration
	// Resized reports whether the decision actually requested a resize.
	Resized bool
}

// ShardGauges is one shard's control-plane instrumentation, surfaced as
// the adaptive_* STATS keys.
type ShardGauges struct {
	// Capacity is the cache capacity currently in effect.
	Capacity int64
	// Resizes counts capacity retargets requested so far.
	Resizes int64
	// Sampled is the total line writes recorded into completed bursts.
	Sampled int64
	// LastSeq is the sequence number of the shard's newest decision.
	LastSeq int64
}

// maxDecisions bounds the retained trajectory (FIFO).
const maxDecisions = 4096

// Controller drives the loop: every Interval it collects each tap's
// completed burst (if any), folds it into the shard's EWMA profile, picks
// a capacity (knee rule → memory budget → hysteresis) and retunes the
// shard's batch bounds and pipeline depth from the counter deltas.
type Controller struct {
	cfg    Config
	taps   []*Tap
	shards []Shard

	accums []*locality.Accumulator
	want   []int // last requested capacity (the shard may lag one FASE)
	prev   []Counters
	quiet  []int // consecutive stall-free ticks, for depth decay

	mu        sync.Mutex
	running   bool
	stop      chan struct{}
	done      chan struct{}
	seq       uint64
	resizes   []int64
	lastSeq   []int64
	decisions []Decision
}

// NewController wires taps and shards (index-aligned; one tap per shard).
// cfg is normalized with WithDefaults.
func NewController(cfg Config, taps []*Tap, shards []Shard) *Controller {
	cfg = cfg.WithDefaults()
	n := len(shards)
	c := &Controller{
		cfg:     cfg,
		taps:    taps,
		shards:  shards,
		accums:  make([]*locality.Accumulator, n),
		want:    make([]int, n),
		prev:    make([]Counters, n),
		quiet:   make([]int, n),
		resizes: make([]int64, n),
		lastSeq: make([]int64, n),
	}
	for i := range c.accums {
		c.accums[i] = locality.NewAccumulator(cfg.Alpha, cfg.Knee.MaxSize)
		c.want[i] = shards[i].CacheCapacity()
		c.prev[i] = shards[i].Counters()
	}
	return c
}

// Start launches the periodic loop. Idempotent.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.running {
		return
	}
	c.running = true
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.loop(c.stop, c.done)
}

// Stop halts the loop and waits for it to exit. Idempotent; the shards are
// left at their last requested configuration.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.running = false
	stop, done := c.stop, c.done
	c.mu.Unlock()
	close(stop)
	<-done
}

func (c *Controller) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tk := time.NewTicker(c.cfg.Interval)
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tk.C:
			c.Tick()
		}
	}
}

// Tick runs one decision pass. Exported so tests and deterministic
// experiments can step the controller without the timer.
func (c *Controller) Tick() {
	n := len(c.shards)
	targets := make([]int, n)
	profiles := make([]*locality.Profile, n)
	fresh := make([]bool, n)
	for i, tap := range c.taps {
		if b := tap.TakeBurst(); len(b) > 0 {
			profiles[i] = c.accums[i].Add(b)
			fresh[i] = true
		} else {
			profiles[i] = c.accums[i].Profile()
		}
		if profiles[i] != nil {
			targets[i] = locality.SelectSize(profiles[i].MRC, c.cfg.Knee)
		} else {
			targets[i] = c.want[i] // no evidence yet: hold
		}
	}
	raw := append([]int(nil), targets...)
	// Global memory budget: when the knees ask for more than the budget,
	// every shard gives up proportionally (waterfilling would starve cold
	// shards entirely, which forfeits their combinable writes).
	if b := c.cfg.MemBudget; b > 0 {
		sum := 0
		for _, t := range targets {
			sum += t
		}
		if sum > b {
			for i := range targets {
				if t := targets[i] * b / sum; t >= 1 {
					targets[i] = t
				} else {
					targets[i] = 1
				}
			}
		}
	}
	for i, sh := range c.shards {
		resized := false
		if profiles[i] != nil {
			delta := targets[i] - c.want[i]
			if delta < 0 {
				delta = -delta
			}
			if delta > 0 && float64(delta) >= c.cfg.Hysteresis*float64(c.want[i]) {
				c.want[i] = targets[i]
				sh.SetCacheCapacity(targets[i])
				resized = true
			}
		}
		batchChanged := c.adaptBatch(i, sh)
		depthChanged := c.adaptDepth(i, sh)
		absorbChanged := c.adaptAbsorb(i, sh)
		if fresh[i] || resized || batchChanged || depthChanged || absorbChanged {
			c.record(i, sh, profiles[i], raw[i], resized)
		}
	}
}

// adaptBatch widens or tightens shard i's group-commit window from the
// tick's absorption: a mean batch near the bound means the window is
// clipping (double it, up to MaxBatch/MaxDelay); a near-empty mean means
// the window only adds latency (halve it, down to MinBatch/MinDelay).
func (c *Controller) adaptBatch(i int, sh Shard) bool {
	if c.cfg.MaxBatch <= 0 {
		return false
	}
	cnt := sh.Counters()
	dBatches := cnt.Batches - c.prev[i].Batches
	dOps := cnt.BatchedOps - c.prev[i].BatchedOps
	c.prev[i].Batches, c.prev[i].BatchedOps = cnt.Batches, cnt.BatchedOps
	if dBatches == 0 {
		return false
	}
	mb, md := sh.BatchBounds()
	if mb <= 0 {
		return false
	}
	fill := float64(dOps) / float64(dBatches) / float64(mb)
	nmb, nmd := mb, md
	switch {
	case fill > 0.5:
		nmb, nmd = mb*2, md*2
		if nmb > c.cfg.MaxBatch {
			nmb = c.cfg.MaxBatch
		}
		if c.cfg.MaxDelay > 0 && nmd > c.cfg.MaxDelay {
			nmd = c.cfg.MaxDelay
		}
	case fill < 0.125:
		nmb, nmd = mb/2, md/2
		if nmb < c.cfg.MinBatch {
			nmb = c.cfg.MinBatch
		}
		if nmd < c.cfg.MinDelay {
			nmd = c.cfg.MinDelay
		}
	}
	if nmb == mb && nmd == md {
		return false
	}
	sh.SetBatchBounds(nmb, nmd)
	return true
}

// adaptDepth raises shard i's pipeline depth on backpressure and decays it
// after a stall-free streak, keeping the ring (and so the crash-loss
// window of unacked work) as small as the load allows.
func (c *Controller) adaptDepth(i int, sh Shard) bool {
	if c.cfg.MaxDepth <= 0 {
		return false
	}
	dep := sh.PipeDepth()
	if dep <= 0 {
		return false
	}
	cnt := sh.Counters()
	dStalls := cnt.PipeStalls - c.prev[i].PipeStalls
	c.prev[i].PipeStalls = cnt.PipeStalls
	nd := dep
	if dStalls > 0 {
		c.quiet[i] = 0
		if nd = dep * 2; nd > c.cfg.MaxDepth {
			nd = c.cfg.MaxDepth
		}
	} else if c.quiet[i]++; c.quiet[i] >= 4 {
		c.quiet[i] = 0
		if nd = dep * 3 / 4; nd < c.cfg.MinDepth {
			nd = c.cfg.MinDepth
		}
	}
	if nd == dep {
		return false
	}
	sh.SetPipeDepth(nd)
	return true
}

// adaptAbsorb retargets shard i's absorption deadline from the tick's
// absorbed/committed split: counter traffic that commits mostly
// unabsorbed means the accumulator is flushed before coalescing pays —
// double the park deadline, trading bounded ack latency for fewer FASEs —
// while a saturated absorption ratio walks the deadline back down so
// deferred acks stay as fresh as the load allows.
func (c *Controller) adaptAbsorb(i int, sh Shard) bool {
	if c.cfg.MaxAbsorbDeadline <= 0 {
		return false
	}
	dl := sh.AbsorbDeadline()
	if dl <= 0 {
		return false
	}
	cnt := sh.Counters()
	dAbs := cnt.Absorbed - c.prev[i].Absorbed
	dCom := cnt.Committed - c.prev[i].Committed
	dCtr := cnt.CounterOps - c.prev[i].CounterOps
	c.prev[i].Absorbed, c.prev[i].Committed, c.prev[i].CounterOps =
		cnt.Absorbed, cnt.Committed, cnt.CounterOps
	total := dAbs + dCom
	if total == 0 {
		return false
	}
	ratio := float64(dAbs) / float64(total)
	nd := dl
	switch {
	case ratio < 0.125 && dCtr > 0:
		if nd = dl * 2; nd > c.cfg.MaxAbsorbDeadline {
			nd = c.cfg.MaxAbsorbDeadline
		}
	case ratio > 0.5:
		if nd = dl / 2; nd < c.cfg.MinAbsorbDeadline {
			nd = c.cfg.MinAbsorbDeadline
		}
	}
	if nd == dl {
		return false
	}
	sh.SetAbsorbDeadline(nd)
	return true
}

// record appends one trajectory entry and updates the gauges.
func (c *Controller) record(i int, sh Shard, p *locality.Profile, rawTarget int, resized bool) {
	mb, md := sh.BatchBounds()
	d := Decision{
		Shard:          i,
		Capacity:       c.want[i],
		Target:         rawTarget,
		MaxBatch:       mb,
		MaxDelay:       md,
		PipeDepth:      sh.PipeDepth(),
		AbsorbDeadline: sh.AbsorbDeadline(),
		Resized:        resized,
	}
	if p != nil {
		d.Miss = p.MRC.At(c.want[i])
		d.WorkingSet = p.WorkingSet
		d.Hotness = p.Hotness
	}
	c.mu.Lock()
	c.seq++
	d.Seq = c.seq
	c.lastSeq[i] = int64(c.seq)
	if resized {
		c.resizes[i]++
	}
	c.decisions = append(c.decisions, d)
	if len(c.decisions) > maxDecisions {
		c.decisions = c.decisions[len(c.decisions)-maxDecisions:]
	}
	c.mu.Unlock()
}

// Gauges snapshots shard i's control-plane instrumentation.
func (c *Controller) Gauges(i int) ShardGauges {
	c.mu.Lock()
	g := ShardGauges{Resizes: c.resizes[i], LastSeq: c.lastSeq[i]}
	c.mu.Unlock()
	g.Capacity = int64(c.shards[i].CacheCapacity())
	g.Sampled = c.taps[i].SampledLines()
	return g
}

// Decisions returns a copy of the retained decision trajectory, oldest
// first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}
