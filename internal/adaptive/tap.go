// Package adaptive closes the paper's loop at serving time: per-shard
// samplers tap the live store stream (core.StoreTap), completed bursts
// become locality profiles (MRC, working set, hotness via
// locality.ProfileBurst), and a periodic controller retargets each shard's
// write-cache capacity — the Section III-C knee rule under hysteresis and
// a global memory budget — plus its group-commit bounds and flush-pipeline
// depth from observed absorption and stall counters.
//
// The package deliberately sits below the engine: it imports only core,
// locality, sampling and trace, and talks to shards through the Shard
// control surface, so internal/kv can adapt its shards without a cycle.
package adaptive

import (
	"sync/atomic"

	"nvmcache/internal/sampling"
	"nvmcache/internal/trace"
)

// Tap is the hot-path end of the control loop: a core.StoreTap that feeds
// one shard thread's line stream into a bursty sampler and publishes each
// completed burst for the controller to collect. TapStore/TapFASEEnd run
// on the owning mutator only (they are not concurrency-safe, matching the
// StoreTap contract); TakeBurst and the gauges are safe from any
// goroutine. While the sampler hibernates, TapStore is a counter bump —
// no allocation, no shared-state write.
type Tap struct {
	smp *sampling.Sampler

	// burst is the newest completed burst, handed off by pointer swap; if
	// the controller polls slower than bursts complete, older bursts are
	// superseded (the newest locality evidence wins).
	burst   atomic.Pointer[[]uint64]
	sampled atomic.Int64
	bursts  atomic.Int64
}

// NewTap builds a tap whose sampler records bursts of burstLen writes and
// hibernates for hibernation writes between them. A non-positive
// hibernation means sampling.Infinite (one burst ever) — the controller
// wants periodic re-sampling, so callers normally pass a positive value.
func NewTap(burstLen int, hibernation int64) *Tap {
	if hibernation <= 0 {
		hibernation = sampling.Infinite
	}
	return &Tap{smp: sampling.New(sampling.Config{BurstLength: burstLen, Hibernation: hibernation})}
}

// TapStore implements core.StoreTap. On burst completion the burst is
// copied out of the sampler (which immediately becomes reusable) and
// published.
func (t *Tap) TapStore(line trace.LineAddr) {
	if t.smp.RecordStore(line) {
		b := append([]uint64(nil), t.smp.Burst()...)
		t.sampled.Add(int64(len(b)))
		t.bursts.Add(1)
		t.burst.Store(&b)
	}
}

// TapFASEEnd implements core.StoreTap: the FASE renaming boundary.
func (t *Tap) TapFASEEnd() { t.smp.FASEEnd() }

// TakeBurst returns the most recently completed burst and clears the slot,
// or nil when no burst completed since the last call.
func (t *Tap) TakeBurst() []uint64 {
	if p := t.burst.Swap(nil); p != nil {
		return *p
	}
	return nil
}

// SampledLines returns the total lines recorded into completed bursts.
func (t *Tap) SampledLines() int64 { return t.sampled.Load() }

// Bursts returns how many bursts have completed.
func (t *Tap) Bursts() int64 { return t.bursts.Load() }
