package hwsim

import (
	"math/rand"

	"nvmcache/internal/trace"
)

// L1Cache is a set-associative, LRU, write-allocate hardware cache
// simulator used to measure L1 miss ratios (Table IV). It tracks line tags
// only. clflush both writes back and invalidates, so the policies'
// Invalidate calls create the extra misses the paper attributes to
// flushing.
type L1Cache struct {
	ways     int
	setMask  uint64
	sets     [][]trace.LineAddr // per set, MRU first
	accesses int64
	misses   int64
}

// NewL1Cache builds a cache with the given total capacity in lines and
// associativity. Capacity must be a power-of-two multiple of ways.
func NewL1Cache(lines, ways int) *L1Cache {
	if ways < 1 {
		ways = 1
	}
	numSets := lines / ways
	if numSets < 1 {
		numSets = 1
	}
	// Round down to a power of two for masking.
	for numSets&(numSets-1) != 0 {
		numSets &= numSets - 1
	}
	sets := make([][]trace.LineAddr, numSets)
	for i := range sets {
		sets[i] = make([]trace.LineAddr, 0, ways)
	}
	return &L1Cache{ways: ways, setMask: uint64(numSets - 1), sets: sets}
}

// Access touches a line, returning true on a miss (the line is then
// allocated, evicting the set's LRU entry if needed).
func (c *L1Cache) Access(line trace.LineAddr) (miss bool) {
	c.accesses++
	set := c.sets[uint64(line)&c.setMask]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return false
		}
	}
	c.misses++
	if len(set) < c.ways {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line
	c.sets[uint64(line)&c.setMask] = set
	return true
}

// Invalidate drops a line (clflush semantics). Unknown lines are ignored.
func (c *L1Cache) Invalidate(line trace.LineAddr) {
	set := c.sets[uint64(line)&c.setMask]
	for i, tag := range set {
		if tag == line {
			c.sets[uint64(line)&c.setMask] = append(set[:i], set[i+1:]...)
			return
		}
	}
}

// InvalidateRandom drops one random resident line, modelling cross-thread
// cache contention (coherence traffic, scheduler interference): the paper's
// explanation for BEST's rising L1 miss ratio at higher thread counts
// (Section IV-F). Returns false if the cache is empty.
func (c *L1Cache) InvalidateRandom(rng *rand.Rand) bool {
	for attempts := 0; attempts < 8; attempts++ {
		set := c.sets[rng.Intn(len(c.sets))]
		if len(set) == 0 {
			continue
		}
		i := rng.Intn(len(set))
		line := set[i]
		c.Invalidate(line)
		return true
	}
	return false
}

// Accesses returns the number of accesses so far.
func (c *L1Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of misses so far.
func (c *L1Cache) Misses() int64 { return c.misses }

// MissRatio returns misses/accesses (0 when idle).
func (c *L1Cache) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Resident reports whether the line is currently cached (for tests).
func (c *L1Cache) Resident(line trace.LineAddr) bool {
	for _, tag := range c.sets[uint64(line)&c.setMask] {
		if tag == line {
			return true
		}
	}
	return false
}
