package hwsim

import (
	"testing"

	"nvmcache/internal/trace"
)

// TestL1LRUPromotionOrder pins the full replacement order of one set: a
// hit moves the line to MRU, so the victim under conflict pressure is
// always the least-recently *touched* line, not the least-recently
// *filled* one.
func TestL1LRUPromotionOrder(t *testing.T) {
	c := NewL1Cache(16, 4) // 4 sets × 4 ways; lines 0,4,8,12,16 all map to set 0
	for _, l := range []trace.LineAddr{0, 4, 8, 12} {
		if !c.Access(l) {
			t.Fatalf("cold access to %d hit", l)
		}
	}
	// Recency is now 12,8,4,0. Touch 0 and 4: recency becomes 4,0,12,8.
	if c.Access(0) || c.Access(4) {
		t.Fatal("warm re-touch missed")
	}
	// Two conflicting fills evict in LRU order: first 8, then 12.
	c.Access(16)
	if c.Resident(8) {
		t.Fatal("victim was not the LRU line (8 survived)")
	}
	if !c.Resident(12) {
		t.Fatal("12 evicted before 8")
	}
	c.Access(20)
	if c.Resident(12) {
		t.Fatal("second victim was not the LRU line (12 survived)")
	}
	for _, l := range []trace.LineAddr{0, 4, 16, 20} {
		if !c.Resident(l) {
			t.Fatalf("recently touched line %d evicted", l)
		}
	}
}

// TestL1ClflushVersusRetain pins the distinction the cost model is built
// on: clflush (Invalidate) forces the next access to miss, while a
// write-back that retains the line (clwb — no Invalidate call) leaves it
// hitting. This is the L1-side counterpart of the engine's NoInvalidate
// penalty accounting.
func TestL1ClflushVersusRetain(t *testing.T) {
	clflush := NewL1Cache(8, 2)
	clwb := NewL1Cache(8, 2)
	for pass := 0; pass < 4; pass++ {
		for l := trace.LineAddr(0); l < 4; l++ {
			clflush.Access(l)
			clflush.Invalidate(l) // clflush: write back and drop
			clwb.Access(l)        // clwb: write back, line stays valid
		}
	}
	if got := clflush.MissRatio(); got != 1 {
		t.Fatalf("clflush-after-every-store miss ratio %v, want 1", got)
	}
	// clwb only pays the 4 compulsory misses out of 16 accesses.
	if got, want := clwb.MissRatio(), 0.25; got != want {
		t.Fatalf("clwb miss ratio %v, want %v", got, want)
	}
}

// TestEngineBoundedAsynchronyOrder pins the flush-slot scheduler: with
// MaxOutstanding slots, the (K+1)-th in-flight flush waits for the
// *earliest* completion, not the latest, and computation between flushes
// retires slots so the wait shrinks by exactly the overlapped amount.
func TestEngineBoundedAsynchronyOrder(t *testing.T) {
	e := NewEngine(testModel(), 1) // issue 5, latency 100, 2 slots
	e.FlushAsync(1)                // issued at 5, completes 105
	// 6 stores × 10 cycles of compute overlap with the transfer.
	for i := 0; i < 6; i++ {
		e.OnStore(trace.LineAddr(100+i), NoInstrument)
	}
	e.FlushAsync(2) // issued at 70, completes 170
	if e.Now() != 70 {
		t.Fatalf("second flush issued at %v, want 70", e.Now())
	}
	e.FlushAsync(3) // issue at 75; both slots busy → wait for earliest (105)
	if e.Now() != 105 {
		t.Fatalf("queue-full flush resumed at %v, want 105 (earliest slot)", e.Now())
	}
	if got := e.Stats().QueueStall; got != 30 {
		t.Fatalf("queue stall %v, want 30", got)
	}
	// Drain now waits for the later of the two live transfers:
	// flush 2 done at 170, flush 3 done at 205.
	e.FlushDrain(nil)
	if e.Now() != 205 {
		t.Fatalf("drain finished at %v, want 205 (latest in-flight)", e.Now())
	}
}

// TestSinkSeam pins the Sink adapter: FlushLine maps to one async flush,
// Drain(lines) to synchronous flushes plus the barrier wait, Drain(nil)
// to a pure barrier — and the policy-visible FlushStats mirror exactly
// what the engine was charged for.
func TestSinkSeam(t *testing.T) {
	e := NewEngine(testModel(), 1)
	s := NewSink(e)
	s.FlushLine(1)
	s.FlushLine(2)
	s.Drain([]trace.LineAddr{3, 4})
	s.Drain(nil)
	st := s.Stats()
	if st.Async != 2 || st.Drained != 2 || st.Barriers != 1 {
		t.Fatalf("sink stats %+v, want Async=2 Drained=2 Barriers=1", st)
	}
	es := e.Stats()
	if es.AsyncFlushes != st.Async || es.DrainFlushes != st.Drained {
		t.Fatalf("engine charged %d/%d flushes, sink reported %d/%d",
			es.AsyncFlushes, es.DrainFlushes, st.Async, st.Drained)
	}
	if s.Engine() != e {
		t.Fatal("Engine() accessor broken")
	}
	if es.DrainStall <= 0 {
		t.Fatal("drain barrier charged no stall")
	}
}
