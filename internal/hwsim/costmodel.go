// Package hwsim models the hardware half of the paper's emulation platform:
// the cost of persistent stores, cache-line flushes (issue cost, write-back
// latency, bounded asynchrony), the re-miss penalty clflush causes by
// invalidating the line, the FASE-end drain stall, and a set-associative L1
// cache simulator for miss-ratio measurements (Table IV).
//
// The paper measures wall-clock seconds on a 60-core Xeon emulator; this
// package measures simulated cycles. The five mechanisms above are exactly
// the ones the paper uses to explain every performance difference between
// ER, LA, AT, SC and BEST (Sections I, II-A, IV-E/F), so the cycle totals
// reproduce the paper's comparisons even though absolute numbers differ.
package hwsim

import "math"

// CostModel holds the calibrated cycle costs. One calibration (the
// defaults below) is used for every policy and every experiment; only
// ComputePerStore varies per workload, because it stands for the real
// computation each program performs between persistent stores.
type CostModel struct {
	// ComputePerStore is the program's own work per persistent store, in
	// cycles. Workload-specific (see internal/harness); it is what flush
	// transfer time can overlap with.
	ComputePerStore float64
	// TableOpPerStore is the software bookkeeping cost per store for
	// instrumented policies (Atlas table probe, software cache LRU update,
	// lazy set insert).
	TableOpPerStore float64
	// FlushIssue is the synchronous pipeline cost of executing one clflush.
	FlushIssue float64
	// FlushLatency is the cache-line write-back latency to NVRAM. Up to
	// MaxOutstanding transfers proceed concurrently; mid-FASE flushes
	// overlap with computation, FASE-end drains do not.
	FlushLatency float64
	// MaxOutstanding is the depth of the flush queue (write-combining
	// buffer slots).
	MaxOutstanding int
	// InvalidateMissPenalty is the extra latency of the first store to a
	// line after clflush invalidated it (Section II-A: "since Atlas uses
	// clflush and invalidates the cache line, the next access will be a
	// cache miss").
	InvalidateMissPenalty float64
	// AnalysisPerWrite is the online MRC sampling + analysis cost per
	// sampled write (Section IV-G overhead).
	AnalysisPerWrite float64
	// FASEOverhead is the fixed begin/end cost of a failure-atomic section
	// (logging setup, fences).
	FASEOverhead float64
	// BaseInstrPerStore and TableInstrPerStore translate the same events
	// into instruction counts for Table IV's "inst." rows.
	BaseInstrPerStore  float64
	TableInstrPerStore float64
	// MemContention scales FlushLatency with thread count: latency is
	// multiplied by 1 + MemContention·log2(threads), modelling shared
	// memory bandwidth.
	MemContention float64
	// NoInvalidate models clwb instead of clflush: the write-back leaves
	// the line valid in the hardware cache, so re-stores pay no miss
	// penalty (Section II-A — Atlas uses clflush because clwb can expose
	// stale values to other threads; the ablation benchmarks quantify the
	// difference).
	NoInvalidate bool
}

// DefaultCostModel returns the calibration used across the repository.
// Rationale: with ComputePerStore ≈ 16 and a flush pipeline that sustains
// one flush per FlushLatency/MaxOutstanding = 150 cycles plus 60 cycles of
// issue cost plus a 140-cycle re-miss on every store, the eager policy
// lands at the ~20× slowdown of Table I, while a policy that flushes a few
// percent of stores pays a few cycles per store on average, matching the
// paper's AT/SC spreads.
func DefaultCostModel() CostModel {
	return CostModel{
		ComputePerStore:       16,
		TableOpPerStore:       4,
		FlushIssue:            60,
		FlushLatency:          600,
		MaxOutstanding:        4,
		InvalidateMissPenalty: 140,
		AnalysisPerWrite:      12,
		FASEOverhead:          30,
		BaseInstrPerStore:     40,
		TableInstrPerStore:    13,
		MemContention:         0.18,
	}
}

// Contention returns the flush-latency multiplier at the given thread
// count.
func (cm CostModel) Contention(threads int) float64 {
	if threads <= 1 {
		return 1
	}
	return 1 + cm.MemContention*math.Log2(float64(threads))
}
