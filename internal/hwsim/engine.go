package hwsim

import "nvmcache/internal/trace"

// Engine is one thread's cycle-accounting machine model. It implements
// core.Flusher, so a persistence policy plugged into it is charged for
// every flush it issues; the surrounding driver additionally reports each
// persistent store and each FASE boundary.
//
// Asynchrony model: the engine owns MaxOutstanding flush slots. Issuing a
// flush costs FlushIssue cycles; the transfer then occupies a slot for
// FlushLatency·contention cycles. If all slots are busy the issuer stalls
// until one frees — that is how the eager policy's flood of flushes
// throttles execution even though each flush is "asynchronous". FlushDrain
// additionally waits for every slot to empty, modelling the FASE-end stall
// the lazy policy suffers and the software cache bounds.
type Engine struct {
	cm         CostModel
	contention float64
	now        float64
	slots      []float64 // completion times of in-flight flushes
	// invalidated tracks lines evicted from the hardware cache by clflush;
	// the next store to such a line pays the re-miss penalty.
	invalidated map[trace.LineAddr]struct{}
	stats       EngineStats
}

// EngineStats aggregates one thread's simulated execution.
type EngineStats struct {
	Cycles         float64 // total simulated time
	ComputeCycles  float64 // program work (all policies pay this equally)
	TableCycles    float64 // persistence bookkeeping
	IssueCycles    float64 // clflush issue cost
	QueueStall     float64 // waits for a free flush slot (mid-FASE)
	DrainStall     float64 // FASE-end waits for the queue to empty
	MissPenalty    float64 // re-misses on invalidated lines
	AnalysisCycles float64 // online MRC sampling/selection
	FASECycles     float64 // section begin/end overhead
	Stores         int64
	AsyncFlushes   int64
	DrainFlushes   int64
	InvalidationRe int64 // stores that paid the re-miss penalty
	Instructions   float64
	FASEs          int64
}

// NewEngine returns an engine for one thread of a threads-wide run.
func NewEngine(cm CostModel, threads int) *Engine {
	if cm.MaxOutstanding < 1 {
		cm.MaxOutstanding = 1
	}
	return &Engine{
		cm:          cm,
		contention:  cm.Contention(threads),
		slots:       make([]float64, 0, cm.MaxOutstanding),
		invalidated: make(map[trace.LineAddr]struct{}, 1024),
	}
}

// Instrumentation grades the per-store bookkeeping a policy performs.
type Instrumentation int

// Instrumentation levels: none (eager, BEST), a table probe (Atlas, lazy),
// or a full LRU cache update (software cache — the paper's Table IV shows
// SC executing ~6%% more instructions than AT).
const (
	NoInstrument Instrumentation = iota
	TableInstrument
	CacheInstrument
)

// OnStore charges one persistent store: the program's own work, the
// policy's bookkeeping (per its instrumentation level), and the re-miss
// penalty if the line was invalidated by an earlier clflush.
func (e *Engine) OnStore(line trace.LineAddr, instr Instrumentation) {
	e.now += e.cm.ComputePerStore
	e.stats.ComputeCycles += e.cm.ComputePerStore
	e.stats.Instructions += e.cm.BaseInstrPerStore
	e.stats.Stores++
	switch instr {
	case TableInstrument:
		e.now += e.cm.TableOpPerStore
		e.stats.TableCycles += e.cm.TableOpPerStore
		e.stats.Instructions += e.cm.TableInstrPerStore
	case CacheInstrument:
		e.now += 1.5 * e.cm.TableOpPerStore
		e.stats.TableCycles += 1.5 * e.cm.TableOpPerStore
		e.stats.Instructions += 1.5 * e.cm.TableInstrPerStore
	}
	if _, ok := e.invalidated[line]; ok {
		delete(e.invalidated, line)
		e.now += e.cm.InvalidateMissPenalty
		e.stats.MissPenalty += e.cm.InvalidateMissPenalty
		e.stats.InvalidationRe++
	}
}

// OnFASEBoundary charges the fixed cost of entering or leaving a section.
func (e *Engine) OnFASEBoundary() {
	e.now += e.cm.FASEOverhead
	e.stats.FASECycles += e.cm.FASEOverhead
	e.stats.Instructions += 10
	e.stats.FASEs++
}

// ChargeAnalysis adds the online MRC analysis cost for n sampled writes.
func (e *Engine) ChargeAnalysis(n int64) {
	c := e.cm.AnalysisPerWrite * float64(n)
	e.now += c
	e.stats.AnalysisCycles += c
	e.stats.Instructions += 6 * float64(n)
}

// FlushAsync implements core.Flusher: issue a clflush whose transfer
// overlaps with subsequent computation.
func (e *Engine) FlushAsync(line trace.LineAddr) {
	e.issue(line, &e.stats.QueueStall)
	e.stats.AsyncFlushes++
}

// FlushBatch implements core.BatchFlusher: retire a whole batch through the
// flush engine in one scheduling pass — completed transfers are purged once
// at batch start instead of before every issue. Cycle accounting is
// provably identical to len(lines) FlushAsync calls: a slot left stale by
// the single purge can only be picked by the full-queue branch with
// wait ≤ 0, i.e. it is removed for free exactly as the per-issue purge
// would have removed it (see TestFlushBatchEquivalence).
func (e *Engine) FlushBatch(lines []trace.LineAddr) {
	e.retire()
	for _, line := range lines {
		e.now += e.cm.FlushIssue
		e.stats.IssueCycles += e.cm.FlushIssue
		e.stats.Instructions++
		e.schedule(line, &e.stats.QueueStall)
		e.stats.AsyncFlushes++
	}
}

// FlushDrain implements core.Flusher: issue the lines, then wait until the
// flush queue is completely empty.
func (e *Engine) FlushDrain(lines []trace.LineAddr) {
	for _, l := range lines {
		e.issue(l, &e.stats.DrainStall)
		e.stats.DrainFlushes++
	}
	var max float64
	for _, t := range e.slots {
		if t > max {
			max = t
		}
	}
	if max > e.now {
		e.stats.DrainStall += max - e.now
		e.now = max
	}
	e.slots = e.slots[:0]
}

func (e *Engine) issue(line trace.LineAddr, stall *float64) {
	e.now += e.cm.FlushIssue
	e.stats.IssueCycles += e.cm.FlushIssue
	e.stats.Instructions++
	e.retire()
	e.schedule(line, stall)
}

// retire drops completed transfers from the slot list.
func (e *Engine) retire() {
	live := e.slots[:0]
	for _, t := range e.slots {
		if t > e.now {
			live = append(live, t)
		}
	}
	e.slots = live
}

// schedule claims a slot for line's transfer, stalling on a full queue.
func (e *Engine) schedule(line trace.LineAddr, stall *float64) {
	if len(e.slots) >= e.cm.MaxOutstanding {
		// Wait for the earliest slot.
		minIdx := 0
		for i, t := range e.slots {
			if t < e.slots[minIdx] {
				minIdx = i
			}
		}
		wait := e.slots[minIdx] - e.now
		if wait > 0 {
			*stall += wait
			e.now = e.slots[minIdx]
		}
		e.slots = append(e.slots[:minIdx], e.slots[minIdx+1:]...)
	}
	e.slots = append(e.slots, e.now+e.cm.FlushLatency*e.contention)
	if !e.cm.NoInvalidate {
		e.invalidated[line] = struct{}{} // clflush semantics
	}
}

// Now returns the thread's simulated clock.
func (e *Engine) Now() float64 { return e.now }

// Stats returns the accumulated statistics with Cycles filled in.
func (e *Engine) Stats() EngineStats {
	s := e.stats
	s.Cycles = e.now
	return s
}
