package hwsim

import (
	"sync/atomic"

	"nvmcache/internal/core"
	"nvmcache/internal/trace"
)

// Sink adapts an Engine to core.FlushSink: flushes are replayed through
// the cycle-level flush-slot model (Engine.FlushAsync/FlushDrain) while
// the sink keeps the policy-visible flush counts. The Engine is
// single-threaded by design — one Sink per Engine per replayed thread —
// but Stats uses atomic counters so a monitor may sample it while the
// replay is running.
type Sink struct {
	e        *Engine
	async    atomic.Int64
	drained  atomic.Int64
	barriers atomic.Int64
}

// NewSink returns a flush sink that replays through e.
func NewSink(e *Engine) *Sink { return &Sink{e: e} }

// Engine returns the backing engine.
func (s *Sink) Engine() *Engine { return s.e }

// FlushLine implements core.FlushSink.
func (s *Sink) FlushLine(line trace.LineAddr) {
	s.e.FlushAsync(line)
	s.async.Add(1)
}

// FlushBatch implements core.BatchSink: the batch retires through the
// flush engine in one scheduling pass (Engine.FlushBatch).
func (s *Sink) FlushBatch(lines []trace.LineAddr) {
	s.e.FlushBatch(lines)
	s.async.Add(int64(len(lines)))
}

// Drain implements core.FlushSink.
func (s *Sink) Drain(lines []trace.LineAddr) {
	s.e.FlushDrain(lines)
	s.drained.Add(int64(len(lines)))
	if len(lines) == 0 {
		s.barriers.Add(1)
	}
}

// Stats implements core.FlushSink.
func (s *Sink) Stats() core.FlushStats {
	return core.FlushStats{
		Async:    s.async.Load(),
		Drained:  s.drained.Load(),
		Barriers: s.barriers.Load(),
	}
}
