package hwsim

import (
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"

	"nvmcache/internal/trace"
)

func testModel() CostModel {
	cm := DefaultCostModel()
	cm.ComputePerStore = 10
	cm.FlushIssue = 5
	cm.FlushLatency = 100
	cm.MaxOutstanding = 2
	cm.InvalidateMissPenalty = 50
	cm.FASEOverhead = 0
	return cm
}

func TestEngineStoreCosts(t *testing.T) {
	e := NewEngine(testModel(), 1)
	e.OnStore(1, NoInstrument)
	if e.Now() != 10 {
		t.Fatalf("plain store cost %v, want 10", e.Now())
	}
	e.OnStore(2, TableInstrument)
	if e.Now() != 10+10+4 {
		t.Fatalf("instrumented store total %v, want 24", e.Now())
	}
	st := e.Stats()
	if st.Stores != 2 || st.TableCycles != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEngineAsyncOverlap(t *testing.T) {
	// Two slots: two back-to-back flushes only pay issue cost; a third
	// must wait for the first transfer to finish.
	e := NewEngine(testModel(), 1)
	e.FlushAsync(1) // issued at 5, completes 105
	e.FlushAsync(2) // issued at 10, completes 110
	if e.Now() != 10 {
		t.Fatalf("after 2 async: now=%v, want 10 (fully overlapped)", e.Now())
	}
	e.FlushAsync(3) // issue at 15, then queue full: waits until 105
	if e.Now() != 105 {
		t.Fatalf("after queue-full flush: now=%v, want 105", e.Now())
	}
	if e.Stats().QueueStall <= 0 {
		t.Fatal("queue stall not recorded")
	}
}

func TestEngineAsyncRetiresCompleted(t *testing.T) {
	e := NewEngine(testModel(), 1)
	e.FlushAsync(1)
	// Long computation lets the transfer finish.
	for i := 0; i < 30; i++ {
		e.OnStore(trace.LineAddr(100+i), NoInstrument)
	}
	before := e.Now()
	e.FlushAsync(2)
	if e.Now() != before+5 {
		t.Fatalf("flush after idle queue stalled: %v -> %v", before, e.Now())
	}
	if e.Stats().QueueStall != 0 {
		t.Fatal("unexpected stall")
	}
}

func TestEngineDrainWaitsForAll(t *testing.T) {
	e := NewEngine(testModel(), 1)
	e.FlushAsync(1) // completes at 105
	e.FlushDrain(nil)
	if e.Now() != 105 {
		t.Fatalf("drain barrier: now=%v, want 105", e.Now())
	}
	if e.Stats().DrainStall != 100 {
		t.Fatalf("drain stall %v, want 100", e.Stats().DrainStall)
	}
}

func TestEngineDrainLines(t *testing.T) {
	e := NewEngine(testModel(), 1)
	e.FlushDrain([]trace.LineAddr{1, 2, 3})
	// Issues at 5 (done 105) and 10 (done 110); the third finds the
	// 2-deep queue full, waits until 105 and completes at 205; the drain
	// then waits for max(110, 205).
	if e.Now() != 205 {
		t.Fatalf("drain of 3: now=%v, want 205", e.Now())
	}
	st := e.Stats()
	if st.DrainFlushes != 3 || st.AsyncFlushes != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEngineInvalidationPenalty(t *testing.T) {
	e := NewEngine(testModel(), 1)
	e.OnStore(7, NoInstrument)
	e.FlushAsync(7)
	base := e.Now()
	e.OnStore(7, NoInstrument) // line was invalidated: +50
	if e.Now() != base+10+50 {
		t.Fatalf("re-store after clflush: %v, want %v", e.Now(), base+60)
	}
	// The penalty applies once: the store re-fetched the line.
	base = e.Now()
	e.OnStore(7, NoInstrument)
	if e.Now() != base+10 {
		t.Fatalf("second re-store: %v, want %v", e.Now(), base+10)
	}
	if e.Stats().InvalidationRe != 1 {
		t.Fatalf("InvalidationRe = %d", e.Stats().InvalidationRe)
	}
}

func TestEngineContentionScalesLatency(t *testing.T) {
	cm := testModel()
	e1 := NewEngine(cm, 1)
	e8 := NewEngine(cm, 8)
	e1.FlushDrain([]trace.LineAddr{1})
	e8.FlushDrain([]trace.LineAddr{1})
	if e8.Now() <= e1.Now() {
		t.Fatalf("8-thread drain (%v) not slower than 1-thread (%v)", e8.Now(), e1.Now())
	}
}

func TestContentionMonotone(t *testing.T) {
	cm := DefaultCostModel()
	prev := 0.0
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		f := cm.Contention(th)
		if f < 1 || f <= prev && th > 1 {
			t.Fatalf("contention(%d) = %v (prev %v)", th, f, prev)
		}
		prev = f
	}
	if cm.Contention(1) != 1 {
		t.Fatal("contention(1) != 1")
	}
}

func TestChargeAnalysis(t *testing.T) {
	e := NewEngine(testModel(), 1)
	e.ChargeAnalysis(1000)
	if e.Stats().AnalysisCycles != 1000*DefaultCostModel().AnalysisPerWrite {
		t.Fatalf("analysis cycles %v", e.Stats().AnalysisCycles)
	}
}

func TestEagerSlowdownShape(t *testing.T) {
	// The defining Table I behaviour: flushing every store must cost an
	// order of magnitude more than not flushing at all, because issue cost,
	// queue stalls and invalidation re-misses dominate ComputePerStore.
	cm := DefaultCostModel()
	n := 20000
	best := NewEngine(cm, 1)
	eager := NewEngine(cm, 1)
	for i := 0; i < n; i++ {
		line := trace.LineAddr(i % 64)
		best.OnStore(line, NoInstrument)
		eager.OnStore(line, NoInstrument)
		eager.FlushAsync(line)
	}
	eager.FlushDrain(nil)
	slowdown := eager.Now() / best.Now()
	if slowdown < 10 || slowdown > 40 {
		t.Fatalf("eager slowdown %.1f×, want within Table I's order (10–40×)", slowdown)
	}
}

func TestL1CacheBasic(t *testing.T) {
	c := NewL1Cache(8, 2) // 4 sets × 2 ways
	if miss := c.Access(0); !miss {
		t.Fatal("cold access hit")
	}
	if miss := c.Access(0); miss {
		t.Fatal("warm access missed")
	}
	// Lines 0, 4, 8 map to set 0 (4 sets): third distinct evicts LRU (0).
	c.Access(4)
	c.Access(8)
	if c.Resident(0) {
		t.Fatal("LRU line survived conflict evictions")
	}
	if !c.Resident(8) || !c.Resident(4) {
		t.Fatal("MRU lines evicted")
	}
}

func TestL1CacheInvalidate(t *testing.T) {
	c := NewL1Cache(8, 2)
	c.Access(1)
	c.Invalidate(1)
	if c.Resident(1) {
		t.Fatal("line resident after invalidate")
	}
	if miss := c.Access(1); !miss {
		t.Fatal("access after invalidate hit")
	}
	c.Invalidate(99) // unknown line: no-op
}

func TestL1MissRatio(t *testing.T) {
	c := NewL1Cache(64, 8)
	for pass := 0; pass < 10; pass++ {
		for l := 0; l < 16; l++ {
			c.Access(trace.LineAddr(l))
		}
	}
	// 16 compulsory misses out of 160 accesses.
	if got, want := c.MissRatio(), 0.1; got != want {
		t.Fatalf("miss ratio %v, want %v", got, want)
	}
}

func TestL1InvalidateRandom(t *testing.T) {
	c := NewL1Cache(16, 2)
	rng := testutil.Rand(t, 9)
	if c.InvalidateRandom(rng) {
		t.Fatal("invalidated from empty cache")
	}
	for l := 0; l < 16; l++ {
		c.Access(trace.LineAddr(l))
	}
	if !c.InvalidateRandom(rng) {
		t.Fatal("failed to invalidate from full cache")
	}
}

func TestL1NonPowerOfTwoRounded(t *testing.T) {
	c := NewL1Cache(24, 2) // 12 sets → rounded down to 8
	if len(c.sets) != 8 {
		t.Fatalf("sets = %d, want 8", len(c.sets))
	}
}

// Property: the engine clock never goes backwards, and flushing more lines
// never makes a drain finish earlier.
func TestQuickEngineMonotoneClock(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		e := NewEngine(testModel(), 1+rng.Intn(8))
		prev := 0.0
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0:
				e.OnStore(trace.LineAddr(rng.Intn(32)), Instrumentation(rng.Intn(3)))
			case 1:
				e.FlushAsync(trace.LineAddr(rng.Intn(32)))
			case 2:
				lines := make([]trace.LineAddr, rng.Intn(5))
				for i := range lines {
					lines[i] = trace.LineAddr(rng.Intn(32))
				}
				e.FlushDrain(lines)
			case 3:
				e.OnFASEBoundary()
			}
			if e.Now() < prev {
				return false
			}
			prev = e.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: L1 occupancy never exceeds ways per set, and hit/miss counts
// always sum to accesses.
func TestQuickL1Invariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		c := NewL1Cache(32, 1+rng.Intn(4))
		for op := 0; op < 500; op++ {
			switch rng.Intn(3) {
			case 0, 1:
				c.Access(trace.LineAddr(rng.Intn(128)))
			case 2:
				c.Invalidate(trace.LineAddr(rng.Intn(128)))
			}
		}
		for _, set := range c.sets {
			if len(set) > c.ways {
				return false
			}
			seen := map[trace.LineAddr]bool{}
			for _, l := range set {
				if seen[l] {
					return false // duplicate tag
				}
				seen[l] = true
			}
		}
		return c.Misses() <= c.Accesses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCLWBSkipsInvalidation(t *testing.T) {
	cm := testModel()
	cm.NoInvalidate = true // clwb semantics
	e := NewEngine(cm, 1)
	e.OnStore(7, NoInstrument)
	e.FlushAsync(7)
	base := e.Now()
	e.OnStore(7, NoInstrument) // line still valid: no re-miss penalty
	if e.Now() != base+10 {
		t.Fatalf("clwb re-store cost %v, want %v", e.Now()-base, 10.0)
	}
	if e.Stats().InvalidationRe != 0 {
		t.Fatalf("clwb recorded %d invalidation re-misses", e.Stats().InvalidationRe)
	}
}

func TestCLWBCheaperThanCLFLUSHOnRewrites(t *testing.T) {
	run := func(noInval bool) float64 {
		cm := DefaultCostModel()
		cm.NoInvalidate = noInval
		e := NewEngine(cm, 1)
		for i := 0; i < 5000; i++ {
			line := trace.LineAddr(i % 8)
			e.OnStore(line, NoInstrument)
			e.FlushAsync(line)
		}
		e.FlushDrain(nil)
		return e.Now()
	}
	clflush, clwb := run(false), run(true)
	if clflush <= clwb {
		t.Fatalf("clflush (%v) not more expensive than clwb (%v) on a rewriting workload", clflush, clwb)
	}
}

// TestFlushBatchEquivalence pins the claim in FlushBatch's comment: retiring
// a batch with one purge at batch start charges exactly the same cycles,
// stalls and stats as issuing the lines one FlushAsync at a time, across
// randomized interleavings of stores, flushes and drains.
func TestFlushBatchEquivalence(t *testing.T) {
	rng := testutil.Rand(t, 7)
	for trial := 0; trial < 200; trial++ {
		a := NewEngine(testModel(), 1) // per-line
		b := NewEngine(testModel(), 1) // batched
		for step := 0; step < 30; step++ {
			switch rng.Intn(3) {
			case 0: // computation between flushes
				n := rng.Intn(5)
				for i := 0; i < n; i++ {
					line := trace.LineAddr(rng.Intn(16))
					a.OnStore(line, NoInstrument)
					b.OnStore(line, NoInstrument)
				}
			case 1: // an async batch, 1..8 lines
				lines := make([]trace.LineAddr, 1+rng.Intn(8))
				for i := range lines {
					lines[i] = trace.LineAddr(rng.Intn(16))
				}
				for _, l := range lines {
					a.FlushAsync(l)
				}
				b.FlushBatch(lines)
			case 2: // FASE-end drain
				lines := make([]trace.LineAddr, rng.Intn(3))
				for i := range lines {
					lines[i] = trace.LineAddr(rng.Intn(16))
				}
				a.FlushDrain(lines)
				b.FlushDrain(lines)
			}
			if a.Now() != b.Now() {
				t.Fatalf("trial %d step %d: clocks diverge: per-line %v, batched %v", trial, step, a.Now(), b.Now())
			}
		}
		sa, sb := a.Stats(), b.Stats()
		if sa != sb {
			t.Fatalf("trial %d: stats diverge:\nper-line %+v\nbatched  %+v", trial, sa, sb)
		}
	}
}
