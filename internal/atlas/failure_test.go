package atlas

import (
	"strings"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

// Failure-injection tests: exhaust the undo log, the registry and the
// heap, and check the runtime degrades the way its documentation promises.

func TestUndoLogOverflowDropsButKeepsRunning(t *testing.T) {
	h := pmem.New(1 << 20)
	opts := DefaultOptions()
	opts.Policy = core.Lazy
	opts.LogEntries = 8 // tiny log: overflow quickly
	rt := NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := h.AllocLines(64 * 64)
	th.FASEBegin()
	for i := uint64(0); i < 64; i++ { // 64 distinct words > 8 entries
		th.Store64(base+i*8, i)
	}
	th.FASEEnd()
	// Data still written and durable despite the truncated log.
	for i := uint64(0); i < 64; i++ {
		if th.Load64(base+i*8) != i {
			t.Fatalf("word %d lost", i)
		}
	}
	if th.curLog().dropped != 64-8 {
		t.Fatalf("dropped = %d, want %d", th.curLog().dropped, 64-8)
	}
	// Within-capacity rollback still works on the next FASE.
	th.FASEBegin()
	th.Store64(base, 999)
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(base); got != 0 {
		t.Fatalf("rollback after overflow FASE: %d", got)
	}
}

func TestUndoLogCapacityBoundary(t *testing.T) {
	h := pmem.New(1 << 20)
	opts := DefaultOptions()
	opts.LogEntries = 4
	rt := NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := h.AllocLines(64 * 8)
	th.FASEBegin()
	for i := uint64(0); i < 4; i++ { // exactly at capacity
		th.Store64(base+i*8, i+1)
	}
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if got := h.ReadUint64(base + i*8); got != 0 {
			t.Fatalf("word %d not rolled back: %d", i, got)
		}
	}
}

func TestHeapExhaustionSurfacesError(t *testing.T) {
	h := pmem.New(1 << 16) // tiny heap
	rt := NewRuntime(h, DefaultOptions())
	if _, err := rt.NewThread(); err == nil {
		// The 4096-entry default log does not fit a 64 KiB heap.
		t.Fatal("NewThread succeeded on an exhausted heap")
	} else if !strings.Contains(err.Error(), "out of memory") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestManyThreadsRegistryGrowth(t *testing.T) {
	h := pmem.New(1 << 24)
	opts := DefaultOptions()
	opts.LogEntries = 16
	rt := NewRuntime(h, opts)
	for i := 0; i < 64; i++ {
		if _, err := rt.NewThread(); err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
	}
	// All 64 logs recoverable.
	rep, err := Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LogsScanned != 64 {
		t.Fatalf("scanned %d logs", rep.LogsScanned)
	}
}

func TestRecoverCorruptRegistryCount(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	if _, err := rt.NewThread(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the registry count beyond its capacity.
	reg := h.Meta()
	h.WriteUint64(reg, 1<<40)
	h.Persist(reg, 8)
	if _, err := Recover(h); err == nil {
		t.Fatal("Recover accepted a corrupt registry")
	}
}

func TestDoubleCrashDoubleRecovery(t *testing.T) {
	h := pmem.New(1 << 20)
	opts := DefaultOptions()
	opts.Policy = core.Lazy
	rt := NewRuntime(h, opts)
	th, _ := rt.NewThread()
	a, _ := h.Alloc(8)

	th.FASEBegin()
	th.Store64(a, 1)
	th.FASEEnd()

	th.FASEBegin()
	th.Store64(a, 2)
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	// Crash again immediately (during "restart"): state must be stable.
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(a); got != 1 {
		t.Fatalf("value after double crash: %d", got)
	}
}

func TestRecoverAfterCleanShutdownIsNoop(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	th, _ := rt.NewThread()
	a, _ := h.Alloc(8)
	th.FASEBegin()
	th.Store64(a, 5)
	th.FASEEnd()
	rt.Close()
	rep, err := Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 0 || rep.WordsRestored != 0 {
		t.Fatalf("clean shutdown rolled back: %+v", rep)
	}
}

func TestSetRecordingGuards(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	th, _ := rt.NewThread()
	a, _ := h.Alloc(8)
	th.FASEBegin()
	th.SetRecording(false) // inside a FASE: must be refused
	th.Store64(a, 1)
	th.FASEEnd()
	th.SetRecording(false)
	th.Store64(a, 2) // not recorded
	th.SetRecording(true)
	th.Store64(a, 3)
	rt.Close()
	tr := rt.Trace()
	if got := tr.Threads[0].NumWrites(); got != 2 {
		t.Fatalf("recorded %d writes, want 2 (pause honored, in-FASE toggle refused)", got)
	}
}

func TestDisableTraceThreads(t *testing.T) {
	h := pmem.New(1 << 20)
	opts := DefaultOptions()
	opts.DisableTrace = true
	rt := NewRuntime(h, opts)
	th, _ := rt.NewThread()
	a, _ := h.Alloc(8)
	th.Store64(a, 1)
	th.SetRecording(true) // no-op without a builder
	th.Store64(a, 2)
	rt.Close()
	if got := len(rt.Trace().Threads); got != 0 {
		t.Fatalf("untraced runtime produced %d sequences", got)
	}
}

func TestFASEAbortRollsBack(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	base, _ := h.AllocLines(64 * 8)
	th.FASEBegin()
	for i := uint64(0); i < 16; i++ {
		th.Store64(base+i*8, i+1)
	}
	th.FASEEnd()

	th.FASEBegin()
	for i := uint64(0); i < 16; i++ {
		th.Store64(base+i*8, 1000+i)
	}
	if err := th.FASEAbort(); err != nil {
		t.Fatalf("abort: %v", err)
	}
	if th.InFASE() {
		t.Fatal("still in FASE after abort")
	}
	for i := uint64(0); i < 16; i++ {
		if got := th.Load64(base + i*8); got != i+1 {
			t.Fatalf("word %d = %d after abort, want %d", i, got, i+1)
		}
		// The rollback is durable too: a crash right after the abort must
		// also expose the pre-FASE values.
		if got := h.PersistedUint64(base + i*8); got != i+1 {
			t.Fatalf("persisted word %d = %d after abort, want %d", i, got, i+1)
		}
	}
	// The thread remains usable: the next FASE commits normally.
	th.FASEBegin()
	th.Store64(base, 77)
	th.FASEEnd()
	if got := th.Load64(base); got != 77 {
		t.Fatalf("post-abort FASE lost: %d", got)
	}
	// And recovery after the abort has nothing to roll back.
	h.Crash()
	rep, err := Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 0 {
		t.Fatalf("abort left an active log: %+v", rep)
	}
	if got := h.ReadUint64(base); got != 77 {
		t.Fatalf("value after crash: %d", got)
	}
}

func TestFASEAbortOverflowedLogReportsError(t *testing.T) {
	h := pmem.New(1 << 20)
	opts := DefaultOptions()
	opts.LogEntries = 4
	rt := NewRuntime(h, opts)
	th, _ := rt.NewThread()
	base, _ := h.AllocLines(64 * 8)
	th.FASEBegin()
	for i := uint64(0); i < 16; i++ { // 16 words > 4 entries
		th.Store64(base+i*8, i+1)
	}
	if err := th.FASEAbort(); err == nil {
		t.Fatal("abort of an overflowed FASE must report incompleteness")
	}
	// A fresh within-capacity FASE aborts cleanly again.
	th.FASEBegin()
	th.Store64(base, 42)
	if err := th.FASEAbort(); err != nil {
		t.Fatalf("abort after overflow FASE: %v", err)
	}
}

func TestFASEAbortOutsideFASEIsNoop(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	th, _ := rt.NewThread()
	if err := th.FASEAbort(); err != nil {
		t.Fatalf("abort outside FASE: %v", err)
	}
}
