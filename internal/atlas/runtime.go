// Package atlas is a Go reimplementation of the runtime half of Atlas
// (Chakrabarti, Boehm, Bhandari, OOPSLA'14), the system the paper's
// software cache plugs into: failure-atomic sections (FASEs) with nesting,
// word-granularity undo logging for failure atomicity, crash recovery, and
// per-thread persistence policies that decide when dirty cache lines are
// written back to NVRAM.
//
// The paper instruments stores with an LLVM pass; here workloads call the
// Thread API explicitly (Store64/StoreBytes inside FASEBegin/FASEEnd),
// which delivers the identical event stream to the policy. Each Thread
// also records its events as a trace.ThreadSeq so a workload executed once
// can be replayed under every policy and cost model.
package atlas

import (
	"fmt"
	"sync"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// Options configures a Runtime.
type Options struct {
	// Policy selects the persistence technique for every thread.
	Policy core.PolicyKind
	// Config tunes the policies (cache sizes, burst length, ...).
	Config core.Config
	// LogEntries is the per-thread undo log capacity in entries; it bounds
	// the number of distinct words written per FASE. Default 4096 (64 KiB
	// of log per thread).
	LogEntries int
	// RecordTrace enables per-thread trace recording (default on).
	DisableTrace bool
}

// DefaultOptions uses the adaptive software cache with paper constants.
func DefaultOptions() Options {
	return Options{Policy: core.SoftCacheOnline, Config: core.DefaultConfig(), LogEntries: 1 << 12}
}

// Runtime owns a persistent heap and its threads.
type Runtime struct {
	heap *pmem.Heap
	opts Options

	mu      sync.Mutex
	threads []*Thread
	nextID  int32
}

// NewRuntime wraps an existing heap. Call Recover first when reattaching to
// a heap that may have crashed mid-FASE.
func NewRuntime(heap *pmem.Heap, opts Options) *Runtime {
	if opts.LogEntries <= 0 {
		opts.LogEntries = 1 << 12
	}
	return &Runtime{heap: heap, opts: opts}
}

// Heap returns the underlying persistent heap.
func (rt *Runtime) Heap() *pmem.Heap { return rt.heap }

// NewThread registers a new mutator thread with its own software cache,
// undo log and trace recorder. Threads are independent (no shared policy
// state), mirroring the paper's per-thread, lock-free cache design.
func (rt *Runtime) NewThread() (*Thread, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id := rt.nextID
	rt.nextID++
	log, err := newUndoLog(rt.heap, rt.opts.LogEntries)
	if err != nil {
		return nil, fmt.Errorf("atlas: creating undo log for thread %d: %w", id, err)
	}
	t := &Thread{
		id:       id,
		rt:       rt,
		log:      log,
		counting: core.NewCountingFlusher(pmem.Flusher{H: rt.heap}),
	}
	t.policy = core.NewPolicy(rt.opts.Policy, rt.opts.Config, t.counting)
	if !rt.opts.DisableTrace {
		t.builder = trace.NewBuilder(id)
		t.recording = true
	}
	rt.threads = append(rt.threads, t)
	return t, nil
}

// Close finishes every thread: residual dirty state is drained so a clean
// shutdown is durable.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.threads {
		t.finish()
	}
}

// Trace returns the recorded multi-thread trace (nil sequences are skipped
// for threads created after DisableTrace).
func (rt *Runtime) Trace() *trace.Trace {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	seqs := make([]*trace.ThreadSeq, 0, len(rt.threads))
	for _, t := range rt.threads {
		if t.builder != nil {
			seqs = append(seqs, t.builder.Finish())
		}
	}
	return trace.NewTrace(seqs...)
}

// FlushStats sums the flush counters of all threads.
func (rt *Runtime) FlushStats() core.FlushStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var total core.FlushStats
	for _, t := range rt.threads {
		s := t.counting.Stats()
		total.Async += s.Async
		total.Drained += s.Drained
		total.Barriers += s.Barriers
	}
	return total
}

// Thread is one mutator's handle: all persistent stores of one goroutine
// go through exactly one Thread. A Thread is not safe for concurrent use.
type Thread struct {
	id        int32
	rt        *Runtime
	policy    core.Policy
	counting  *core.CountingFlusher
	builder   *trace.Builder
	recording bool
	log       *undoLog
	depth     int
	stores    int64
	finished  bool
}

// ID returns the thread id.
func (t *Thread) ID() int32 { return t.id }

// Heap returns the runtime's persistent heap.
func (t *Thread) Heap() *pmem.Heap { return t.rt.heap }

// FASEBegin enters a failure-atomic section. Sections nest; only the
// outermost pair delimits the atomicity and flush boundary, as in Atlas.
func (t *Thread) FASEBegin() {
	t.depth++
	if t.depth == 1 {
		t.log.begin()
		t.policy.FASEBegin()
		if t.recording {
			t.builder.Begin()
		}
	}
}

// FASEEnd leaves a section. Closing the outermost level drains the policy
// (persisting every line written in the FASE) and then commits and clears
// the undo log, making the FASE durable.
func (t *Thread) FASEEnd() {
	if t.depth == 0 {
		return
	}
	t.depth--
	if t.depth > 0 {
		return
	}
	t.policy.FASEEnd()
	t.log.commit()
	if t.recording {
		t.builder.End()
	}
}

// FASEAbort abandons the current FASE (all nesting levels) and rolls the
// heap back to its state at the outermost FASEBegin, using the same undo
// entries crash recovery would apply. The persistence policy is drained
// first so the rollback's persists land last and the durable view also
// reflects the pre-FASE state. It returns an error when the undo log
// overflowed during the FASE, in which case the rollback is incomplete
// (exactly as it would be after a crash; see LogEntries).
func (t *Thread) FASEAbort() error {
	if t.depth == 0 {
		return nil
	}
	t.depth = 0
	t.policy.FASEEnd()
	dropped := t.log.rollback()
	if t.recording {
		t.builder.End()
	}
	if dropped > 0 {
		return fmt.Errorf("atlas: abort rollback incomplete: %d undo entries were dropped", dropped)
	}
	return nil
}

// InFASE reports whether the thread is inside a section.
func (t *Thread) InFASE() bool { return t.depth > 0 }

// FlushStats returns this thread's flush counters (async, drained,
// barriers). Only the owning goroutine may call it while the thread is
// mutating; concurrent observers should snapshot it at FASE boundaries.
func (t *Thread) FlushStats() core.FlushStats { return t.counting.Stats() }

// Stores returns the number of persistent stores issued.
func (t *Thread) Stores() int64 { return t.stores }

// Store64 performs a persistent store of one 64-bit word: undo-log the old
// value (write-ahead), apply the write to the volatile view, and hand the
// line to the persistence policy. A store outside any FASE is treated as a
// singleton FASE (Atlas flushes such "durable by next barrier" stores
// promptly).
func (t *Thread) Store64(addr uint64, v uint64) {
	implicit := t.depth == 0
	if implicit {
		t.FASEBegin()
	}
	t.log.record(addr, t.rt.heap.ReadUint64(addr))
	t.rt.heap.WriteUint64(addr, v)
	t.noteStore(addr, 8)
	if implicit {
		t.FASEEnd()
	}
}

// StoreBytes performs a persistent store of an arbitrary byte range,
// logging old contents word by word.
func (t *Thread) StoreBytes(addr uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	implicit := t.depth == 0
	if implicit {
		t.FASEBegin()
	}
	// Log the covered words (8-byte granules aligned down).
	start := addr &^ 7
	end := addr + uint64(len(b))
	for w := start; w < end; w += 8 {
		t.log.record(w, t.rt.heap.ReadUint64(w))
	}
	t.rt.heap.WriteBytes(addr, b)
	t.noteStore(addr, uint64(len(b)))
	if implicit {
		t.FASEEnd()
	}
}

// Load64 reads a word (reads are not instrumented; the write-combining
// cache considers only writes, Section III-A).
func (t *Thread) Load64(addr uint64) uint64 { return t.rt.heap.ReadUint64(addr) }

// LoadBytes reads a byte range.
func (t *Thread) LoadBytes(addr, n uint64) []byte { return t.rt.heap.ReadBytes(addr, n) }

func (t *Thread) noteStore(addr, size uint64) {
	first := addr >> trace.LineShift
	last := (addr + size - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		t.stores++
		t.policy.Store(trace.LineAddr(l))
		if t.recording {
			t.builder.Store(trace.LineAddr(l))
		}
	}
}

func (t *Thread) finish() {
	if t.finished {
		return
	}
	for t.depth > 0 {
		t.FASEEnd()
	}
	t.policy.Finish()
	t.finished = true
}

// Policy exposes the thread's policy (for AdaptReport inspection).
func (t *Thread) Policy() core.Policy { return t.policy }

// SetRecording toggles trace recording mid-run, outside any FASE. Workload
// warm-up phases (for example pre-populating a store before the measured
// run) switch recording off so the trace reflects steady-state behaviour.
// It has no effect on threads created with DisableTrace.
func (t *Thread) SetRecording(on bool) {
	if t.builder == nil || t.depth > 0 {
		return
	}
	t.recording = on
}
