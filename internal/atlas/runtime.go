// Package atlas is a Go reimplementation of the runtime half of Atlas
// (Chakrabarti, Boehm, Bhandari, OOPSLA'14), the system the paper's
// software cache plugs into: failure-atomic sections (FASEs) with nesting,
// word-granularity undo logging for failure atomicity, crash recovery, and
// per-thread persistence policies that decide when dirty cache lines are
// written back to NVRAM.
//
// The paper instruments stores with an LLVM pass; here workloads call the
// Thread API explicitly (Store64/StoreBytes inside FASEBegin/FASEEnd),
// which delivers the identical event stream to the policy. Each Thread
// also records its events as a trace.ThreadSeq so a workload executed once
// can be replayed under every policy and cost model.
//
// Concurrency: each Thread owns its heap lines (single-writer-per-line;
// see the pmem package comment), its undo log, its policy and its flush
// sink, so the store hot path touches only thread-local state plus at most
// one of the heap's dirty-state stripes. Runtime keeps its thread registry
// in a copy-on-write slice behind an atomic pointer: FlushStats and Trace
// walk a snapshot and never take a lock a mutator could be holding.
package atlas

import (
	"fmt"
	"sync"
	"sync/atomic"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// Options configures a Runtime.
type Options struct {
	// Policy selects the persistence technique for every thread.
	Policy core.PolicyKind
	// Config tunes the policies (cache sizes, burst length, ...).
	Config core.Config
	// LogEntries is the per-thread undo log capacity in entries; it bounds
	// the number of distinct words written per FASE. Default 4096 (64 KiB
	// of log per thread).
	LogEntries int
	// RecordTrace enables per-thread trace recording (default on).
	DisableTrace bool
	// WrapSink, when non-nil, wraps each new thread's flush sink before the
	// persistence policy is attached. internal/faultinject interposes its
	// numbered crash points here; the wrapped sink must preserve FlushSink
	// semantics (a drain durably persists its lines before returning).
	WrapSink func(thread int32, sink core.FlushSink) core.FlushSink
	// StoreTap, when non-nil, builds a per-thread observer of the
	// persistent-store line stream (the adaptive control plane's sampling
	// tap). The runtime calls TapStore for every line the thread stores and
	// TapFASEEnd at every outermost FASE close; a nil return leaves the
	// thread untapped. Taps see the same event stream as the policy but
	// cannot affect it.
	StoreTap func(thread int32) core.StoreTap
	// UndoHook, when non-nil, is called at each undo-log persistence point
	// (see UndoOp) on the mutating goroutine, before the corresponding
	// durable write. A hook may panic to simulate a power failure at that
	// exact boundary; internal/faultinject drives crash-point exploration
	// through it.
	UndoHook func(op UndoOp)
	// Pipeline, when Enabled, wraps every thread's flush sink in a
	// core.FlushPipeline: evictions become background write-backs and
	// FASE-end drains become epoch publish/await. Each thread additionally
	// gets a second undo log so FASEPublish/FASEAwait can overlap one
	// FASE's drain with the next FASE's stores. The pipeline wraps *above*
	// WrapSink, so fault-injection middleware observes the batched calls
	// the worker makes against the real sink.
	Pipeline core.PipelineConfig
}

// DefaultOptions uses the adaptive software cache with paper constants.
func DefaultOptions() Options {
	return Options{Policy: core.SoftCacheOnline, Config: core.DefaultConfig(), LogEntries: 1 << 12}
}

// Runtime owns a persistent heap and its threads.
type Runtime struct {
	heap *pmem.Heap
	opts Options

	// threads is a copy-on-write registry: readers (FlushStats, Trace,
	// Close) load the pointer and walk an immutable slice; NewThread copies
	// under mu and swaps the pointer. Mutator threads never touch it.
	threads atomic.Pointer[[]*Thread]
	mu      sync.Mutex // serializes NewThread and Close
	nextID  int32
}

// NewRuntime wraps an existing heap. Call Recover first when reattaching to
// a heap that may have crashed mid-FASE.
func NewRuntime(heap *pmem.Heap, opts Options) *Runtime {
	if opts.LogEntries <= 0 {
		opts.LogEntries = 1 << 12
	}
	rt := &Runtime{heap: heap, opts: opts}
	rt.threads.Store(&[]*Thread{})
	return rt
}

// Heap returns the underlying persistent heap.
func (rt *Runtime) Heap() *pmem.Heap { return rt.heap }

// snapshot returns the current immutable thread slice.
func (rt *Runtime) snapshot() []*Thread { return *rt.threads.Load() }

// NewThread registers a new mutator thread with its own software cache,
// undo log, flush sink and trace recorder. Threads are independent (no
// shared policy state), mirroring the paper's per-thread, lock-free cache
// design.
func (rt *Runtime) NewThread() (*Thread, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id := rt.nextID
	rt.nextID++
	log, err := newUndoLog(rt.heap, rt.opts.LogEntries, rt.opts.UndoHook)
	if err != nil {
		return nil, fmt.Errorf("atlas: creating undo log for thread %d: %w", id, err)
	}
	logs := []*undoLog{log}
	if rt.opts.Pipeline.Enabled {
		// A second log lets FASEPublish leave one FASE draining while the
		// next FASE records into the other log.
		log2, err := newUndoLog(rt.heap, rt.opts.LogEntries, rt.opts.UndoHook)
		if err != nil {
			return nil, fmt.Errorf("atlas: creating overlap undo log for thread %d: %w", id, err)
		}
		logs = append(logs, log2)
	}
	var sink core.FlushSink = pmem.NewSink(rt.heap)
	if rt.opts.WrapSink != nil {
		sink = rt.opts.WrapSink(id, sink)
	}
	t := &Thread{
		id:   id,
		rt:   rt,
		heap: rt.heap,
		logs: logs,
		sink: sink,
	}
	if rt.opts.Pipeline.Enabled {
		t.pipeline = core.NewFlushPipeline(sink, rt.opts.Pipeline)
		t.sink = t.pipeline
	}
	t.policy = core.NewPolicy(rt.opts.Policy, rt.opts.Config, t.sink)
	if rt.opts.StoreTap != nil {
		t.tap = rt.opts.StoreTap(id)
	}
	if !rt.opts.DisableTrace {
		t.builder = trace.NewBuilder(id)
		t.recording = true
	}
	old := rt.snapshot()
	next := make([]*Thread, len(old)+1)
	copy(next, old)
	next[len(old)] = t
	rt.threads.Store(&next)
	return t, nil
}

// Close finishes every thread: residual dirty state is drained so a clean
// shutdown is durable. The threads themselves must have stopped mutating.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, t := range rt.snapshot() {
		t.finish()
	}
}

// CrashAbort stops every thread's flush pipeline, discarding queued
// flushes and releasing any goroutine blocked on backpressure or an epoch
// await: the crash path. Mutators must have stopped issuing stores. Call
// this *before* pmem.Heap.Crash so no pipeline worker writes the durable
// view after the simulated power cut; afterwards the runtime accepts no
// more work (Close becomes a no-op on pipelined threads).
func (rt *Runtime) CrashAbort() {
	for _, t := range rt.snapshot() {
		if t.pipeline != nil {
			t.pipeline.Abort()
		}
	}
}

// Trace returns the recorded multi-thread trace (nil sequences are skipped
// for threads created after DisableTrace). Each call returns an
// independent snapshot of everything recorded so far — a FASE still open
// at the call is included as a sealed section of the snapshot — and
// recording continues unaffected, so Trace may be called repeatedly
// (mid-session or after Close). The threads must be quiescent (between
// stores) during the call; Trace itself takes no lock a mutator could
// contend on.
func (rt *Runtime) Trace() *trace.Trace {
	threads := rt.snapshot()
	seqs := make([]*trace.ThreadSeq, 0, len(threads))
	for _, t := range threads {
		if t.builder != nil {
			seqs = append(seqs, t.builder.Snapshot())
		}
	}
	return trace.NewTrace(seqs...)
}

// FlushStats sums the flush counters of all threads. Safe to call at any
// time, including while mutators are storing: sink counters are atomic and
// the registry walk is lock-free.
func (rt *Runtime) FlushStats() core.FlushStats {
	var total core.FlushStats
	for _, t := range rt.snapshot() {
		total = total.Add(t.sink.Stats())
	}
	return total
}

// Thread is one mutator's handle: all persistent stores of one goroutine
// go through exactly one Thread. A Thread is not safe for concurrent use,
// and distinct Threads must write disjoint cache lines (the
// single-writer-per-line discipline pmem's lock-free data plane relies
// on).
type Thread struct {
	id        int32
	rt        *Runtime
	heap      *pmem.Heap
	policy    core.Policy
	tap       core.StoreTap  // optional store-stream observer; may be nil
	sink      core.FlushSink // the policy's sink; the pipeline when enabled
	pipeline  *core.FlushPipeline
	builder   *trace.Builder
	recording bool
	logs      []*undoLog // one log, or two when the pipeline overlaps FASEs
	cur       int        // index of the log recording the current FASE
	depth     int
	stores    int64
	finished  bool

	// outstanding tracks FASEs published but not yet awaited, oldest
	// first. Their logs stay active until FASEAwait commits them in FIFO
	// order (committing out of order would let recovery's rollback of an
	// older FASE clobber a newer committed one).
	outstanding []pendingFASE
	pubSeq      uint64
}

// pendingFASE is one published-but-not-durable FASE.
type pendingFASE struct {
	id    uint64
	log   *undoLog
	epoch core.Epoch
}

// FASETicket identifies a FASE closed with FASEPublish, to be passed to
// FASEAwait. The zero ticket (from a nested or non-overlapping publish) is
// already durable and awaits as a no-op.
type FASETicket struct {
	id      uint64
	pending bool
}

// Durable reports whether the ticket's FASE was already durable when the
// ticket was issued (no await needed).
func (tk FASETicket) Durable() bool { return !tk.pending }

// ID returns the thread id.
func (t *Thread) ID() int32 { return t.id }

// Heap returns the runtime's persistent heap.
func (t *Thread) Heap() *pmem.Heap { return t.heap }

// curLog returns the undo log recording the current FASE.
func (t *Thread) curLog() *undoLog { return t.logs[t.cur] }

// canOverlap reports whether this thread can leave a published FASE
// draining in the background (pipeline plus a spare undo log).
func (t *Thread) canOverlap() bool { return t.pipeline != nil && len(t.logs) > 1 }

// FASEBegin enters a failure-atomic section. Sections nest; only the
// outermost pair delimits the atomicity and flush boundary, as in Atlas.
// If the log about to record this FASE still guards a published FASE, that
// FASE is awaited first (the overlap depth is bounded by the spare logs).
func (t *Thread) FASEBegin() {
	t.depth++
	if t.depth == 1 {
		for _, p := range t.outstanding {
			if p.log == t.curLog() {
				t.FASEAwait(FASETicket{id: p.id, pending: true})
				break
			}
		}
		t.curLog().begin()
		t.policy.FASEBegin()
		if t.recording {
			t.builder.Begin()
		}
	}
}

// FASEEnd leaves a section. Closing the outermost level drains the policy
// (persisting every line written in the FASE) and then commits and clears
// the undo log, making the FASE durable. With the pipeline enabled this is
// exactly FASEAwait(FASEPublish()): publish the epoch, wait for it.
func (t *Thread) FASEEnd() {
	if t.depth == 0 {
		return
	}
	if t.depth == 1 && t.canOverlap() {
		t.FASEAwait(t.FASEPublish())
		return
	}
	t.depth--
	if t.depth > 0 {
		return
	}
	t.policy.FASEEnd()
	if t.tap != nil {
		t.tap.TapFASEEnd()
	}
	t.curLog().commit()
	if t.recording {
		t.builder.End()
	}
}

// FASEPublish closes the current section like FASEEnd but, for the
// outermost level with overlap available, does not wait for the FASE's
// writes to persist: the policy's FASE-end drain is routed into an epoch
// publication, the undo log stays active, and the thread switches to its
// spare log so the next FASE can begin immediately. The returned ticket
// must eventually be passed to FASEAwait, which makes the FASE durable
// (commits its log) — until then a crash rolls the published FASE back, so
// its effects must not be acknowledged externally. Without overlap
// capability (or for a nested level) it behaves exactly like FASEEnd and
// returns an already-durable ticket.
func (t *Thread) FASEPublish() FASETicket {
	if t.depth == 0 {
		return FASETicket{}
	}
	if t.depth > 1 || !t.canOverlap() {
		t.FASEEnd()
		return FASETicket{}
	}
	t.depth--
	t.pipeline.DeferNextDrain()
	t.policy.FASEEnd()
	if t.tap != nil {
		t.tap.TapFASEEnd()
	}
	epoch := t.pipeline.TakeDeferred()
	t.pubSeq++
	t.outstanding = append(t.outstanding, pendingFASE{id: t.pubSeq, log: t.curLog(), epoch: epoch})
	t.cur = (t.cur + 1) % len(t.logs)
	if t.recording {
		t.builder.End()
	}
	return FASETicket{id: t.pubSeq, pending: true}
}

// FASEAwait blocks until the published FASE identified by tk is durable,
// then commits its undo log. Outstanding FASEs older than tk are awaited
// and committed first — commits are strictly FIFO, because recovery rolls
// back *active* logs and an out-of-order commit would let an older FASE's
// rollback clobber a newer committed FASE's writes.
func (t *Thread) FASEAwait(tk FASETicket) {
	if !tk.pending {
		return
	}
	for len(t.outstanding) > 0 && t.outstanding[0].id <= tk.id {
		p := t.outstanding[0]
		t.outstanding = t.outstanding[1:]
		t.pipeline.Await(p.epoch)
		if !t.pipeline.Aborted() {
			p.log.commit()
		}
	}
}

// awaitOutstanding awaits and commits every published FASE.
func (t *Thread) awaitOutstanding() {
	if n := len(t.outstanding); n > 0 {
		t.FASEAwait(FASETicket{id: t.outstanding[n-1].id, pending: true})
	}
}

// FASEAbort abandons the current FASE (all nesting levels) and rolls the
// heap back to its state at the outermost FASEBegin, using the same undo
// entries crash recovery would apply. The persistence policy is drained
// first so the rollback's persists land last and the durable view also
// reflects the pre-FASE state. It returns an error when the undo log
// overflowed during the FASE, in which case the rollback is incomplete
// (exactly as it would be after a crash; see LogEntries).
func (t *Thread) FASEAbort() error {
	if t.depth == 0 {
		return nil
	}
	t.depth = 0
	// Older published FASEs must become durable before this one's rollback
	// writes land (the rollback persists directly, bypassing the pipeline).
	t.awaitOutstanding()
	t.policy.FASEEnd()
	if t.tap != nil {
		t.tap.TapFASEEnd()
	}
	dropped := t.curLog().rollback()
	if t.recording {
		t.builder.End()
	}
	if dropped > 0 {
		return fmt.Errorf("atlas: abort rollback incomplete: %d undo entries were dropped", dropped)
	}
	return nil
}

// InFASE reports whether the thread is inside a section.
func (t *Thread) InFASE() bool { return t.depth > 0 }

// FlushStats returns this thread's flush counters (async, drained,
// barriers). The counters are atomic, so concurrent observers may read
// them while the thread is mutating.
func (t *Thread) FlushStats() core.FlushStats { return t.sink.Stats() }

// Stores returns the number of persistent stores issued.
func (t *Thread) Stores() int64 { return t.stores }

// Store64 performs a persistent store of one 64-bit word as a single-entry
// protocol: one bounds check, the volatile write (returning the old value
// in the same heap access), the undo record, and the policy notify — at
// most one striped heap lock on the whole path, and no lock is ever
// re-acquired between steps.
//
// Ordering note: the volatile write lands before the undo record is
// durable, which is safe in this model because the new value can only
// reach the durable view through a line flush, and every flush of this
// line is issued by this thread's policy at or after the notify below —
// by which point the undo record (written through by record) is already
// durable. A store outside any FASE is treated as a singleton FASE (Atlas
// flushes such "durable by next barrier" stores promptly).
func (t *Thread) Store64(addr uint64, v uint64) {
	implicit := t.depth == 0
	if implicit {
		t.FASEBegin()
	}
	old := t.heap.Store64(addr, v)
	t.curLog().record(addr, old)
	t.noteStore(addr, 8)
	if implicit {
		t.FASEEnd()
	}
}

// StoreBytes performs a persistent store of an arbitrary byte range:
// bounds-checked once up front, old contents write-ahead-logged word by
// word, then the byte write and the policy notify. The logged word range
// is clamped to the heap (ReadWordClamped), so a store ending in the
// heap's final bytes does not read past the end.
func (t *Thread) StoreBytes(addr uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	t.heap.CheckRange(addr, uint64(len(b)))
	implicit := t.depth == 0
	if implicit {
		t.FASEBegin()
	}
	// Log the covered words (8-byte granules aligned down; the final word
	// may overhang the stored range but never the heap).
	start := addr &^ 7
	end := addr + uint64(len(b))
	for w := start; w < end; w += 8 {
		t.curLog().record(w, t.heap.ReadWordClamped(w))
	}
	t.heap.WriteBytes(addr, b)
	t.noteStore(addr, uint64(len(b)))
	if implicit {
		t.FASEEnd()
	}
}

// Load64 reads a word (reads are not instrumented; the write-combining
// cache considers only writes, Section III-A).
func (t *Thread) Load64(addr uint64) uint64 { return t.heap.ReadUint64(addr) }

// LoadBytes reads a byte range.
func (t *Thread) LoadBytes(addr, n uint64) []byte { return t.heap.ReadBytes(addr, n) }

func (t *Thread) noteStore(addr, size uint64) {
	first := addr >> trace.LineShift
	last := (addr + size - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		t.stores++
		t.policy.Store(trace.LineAddr(l))
		if t.tap != nil {
			t.tap.TapStore(trace.LineAddr(l))
		}
		if t.recording {
			t.builder.Store(trace.LineAddr(l))
		}
	}
}

func (t *Thread) finish() {
	if t.finished {
		return
	}
	if t.pipeline != nil && t.pipeline.Aborted() {
		// Crash path: the heap took a simulated power cut after CrashAbort;
		// write nothing more to it.
		t.finished = true
		return
	}
	for t.depth > 0 {
		t.FASEEnd()
	}
	t.awaitOutstanding()
	t.policy.Finish()
	if t.pipeline != nil {
		t.pipeline.Close()
	}
	t.finished = true
}

// Policy exposes the thread's policy (for AdaptReport inspection).
func (t *Thread) Policy() core.Policy { return t.policy }

// Pipeline returns the thread's flush pipeline, or nil when
// Options.Pipeline is disabled (for batch-size histogram inspection).
func (t *Thread) Pipeline() *core.FlushPipeline { return t.pipeline }

// SetRecording toggles trace recording mid-run, outside any FASE. Workload
// warm-up phases (for example pre-populating a store before the measured
// run) switch recording off so the trace reflects steady-state behaviour.
// It has no effect on threads created with DisableTrace.
func (t *Thread) SetRecording(on bool) {
	if t.builder == nil || t.depth > 0 {
		return
	}
	t.recording = on
}
