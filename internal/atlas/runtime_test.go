package atlas

import (
	"nvmcache/internal/testutil"
	"sync"
	"testing"
	"testing/quick"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

func newTestRuntime(t *testing.T, kind core.PolicyKind) (*Runtime, *Thread) {
	t.Helper()
	h := pmem.New(1 << 20)
	opts := DefaultOptions()
	opts.Policy = kind
	rt := NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return rt, th
}

func TestStoreLoadRoundTrip(t *testing.T) {
	rt, th := newTestRuntime(t, core.SoftCacheOnline)
	a, _ := rt.Heap().Alloc(16)
	th.FASEBegin()
	th.Store64(a, 123)
	th.StoreBytes(a+8, []byte{1, 2, 3})
	th.FASEEnd()
	if th.Load64(a) != 123 {
		t.Fatal("Store64 lost")
	}
	if b := th.LoadBytes(a+8, 3); b[0] != 1 || b[2] != 3 {
		t.Fatalf("StoreBytes lost: %v", b)
	}
}

func TestCommittedFASESurvivesCrash(t *testing.T) {
	for _, kind := range []core.PolicyKind{core.Eager, core.Lazy, core.AtlasTable, core.SoftCacheOnline, core.SoftCacheOffline} {
		rt, th := newTestRuntime(t, kind)
		h := rt.Heap()
		a, _ := h.Alloc(8)
		th.FASEBegin()
		th.Store64(a, 77)
		th.FASEEnd()
		h.Crash()
		if _, err := Recover(h); err != nil {
			t.Fatalf("%v: recover: %v", kind, err)
		}
		if got := h.ReadUint64(a); got != 77 {
			t.Errorf("%v: committed FASE lost in crash: %d", kind, got)
		}
	}
}

func TestBestPolicyIsUnsound(t *testing.T) {
	// BEST never flushes: a crash after FASE end must lose the write.
	// This is the negative control for the soundness tests above.
	rt, th := newTestRuntime(t, core.Best)
	h := rt.Heap()
	a, _ := h.Alloc(8)
	th.FASEBegin()
	th.Store64(a, 77)
	th.FASEEnd()
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(a); got == 77 {
		t.Fatal("BEST persisted data — it should not have")
	}
}

func TestCrashMidFASERollsBack(t *testing.T) {
	rt, th := newTestRuntime(t, core.SoftCacheOnline)
	h := rt.Heap()
	a, _ := h.Alloc(24)
	// Establish a committed baseline.
	th.FASEBegin()
	th.Store64(a, 1)
	th.Store64(a+8, 2)
	th.FASEEnd()
	// Crash mid-FASE.
	th.FASEBegin()
	th.Store64(a, 100)
	th.Store64(a+16, 300)
	h.Crash()
	rep, err := Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 1 {
		t.Fatalf("rolled back %d FASEs, want 1", rep.FASEsRolledBack)
	}
	if got := h.ReadUint64(a); got != 1 {
		t.Errorf("a = %d, want pre-FASE 1", got)
	}
	if got := h.ReadUint64(a + 8); got != 2 {
		t.Errorf("a+8 = %d, want 2", got)
	}
	if got := h.ReadUint64(a + 16); got != 0 {
		t.Errorf("a+16 = %d, want rolled back to 0", got)
	}
}

func TestCrashMidFASEWithPartialFlushes(t *testing.T) {
	// Eager flushes data immediately, so at the crash the new values ARE
	// in NVRAM — recovery must still roll them back.
	rt, th := newTestRuntime(t, core.Eager)
	h := rt.Heap()
	a, _ := h.Alloc(8)
	th.FASEBegin()
	th.Store64(a, 5)
	th.FASEEnd()
	th.FASEBegin()
	th.Store64(a, 99) // eagerly flushed
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(a); got != 5 {
		t.Fatalf("a = %d, want rollback to 5 despite eager flush", got)
	}
}

func TestRecoverIdempotent(t *testing.T) {
	rt, th := newTestRuntime(t, core.Lazy)
	h := rt.Heap()
	a, _ := h.Alloc(8)
	th.FASEBegin()
	th.Store64(a, 9)
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	rep, err := Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 0 {
		t.Fatal("second recovery rolled back again")
	}
}

func TestRecoverFreshHeapNoop(t *testing.T) {
	rep, err := Recover(pmem.New(4096))
	if err != nil || rep.LogsScanned != 0 {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
}

func TestNestedFASEIsOneSection(t *testing.T) {
	rt, th := newTestRuntime(t, core.Lazy)
	h := rt.Heap()
	a, _ := h.Alloc(8)
	th.FASEBegin()
	th.Store64(a, 1)
	th.FASEBegin() // nested
	th.Store64(a, 2)
	th.FASEEnd() // inner end: must NOT commit
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(a); got != 0 {
		t.Fatalf("nested inner end committed early: a=%d, want 0", got)
	}
}

func TestStoreOutsideFASEIsSingleton(t *testing.T) {
	rt, th := newTestRuntime(t, core.SoftCacheOnline)
	h := rt.Heap()
	a, _ := h.Alloc(8)
	th.Store64(a, 42) // implicit FASE: immediately durable
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(a); got != 42 {
		t.Fatalf("out-of-FASE store not durable: %d", got)
	}
}

func TestTraceRecording(t *testing.T) {
	rt, th := newTestRuntime(t, core.SoftCacheOnline)
	h := rt.Heap()
	a, _ := h.AllocLines(128)
	th.FASEBegin()
	th.Store64(a, 1)
	th.Store64(a+64, 2)
	th.FASEEnd()
	th.Store64(a, 3)
	rt.Close()
	tr := rt.Trace()
	if len(tr.Threads) != 1 {
		t.Fatalf("threads: %d", len(tr.Threads))
	}
	s := tr.Threads[0]
	if s.NumFASEs() != 2 || s.NumWrites() != 3 {
		t.Fatalf("FASEs=%d writes=%d", s.NumFASEs(), s.NumWrites())
	}
	if th.Stores() != 3 {
		t.Errorf("Stores = %d", th.Stores())
	}
}

func TestStoreBytesSpanningLines(t *testing.T) {
	rt, th := newTestRuntime(t, core.Lazy)
	h := rt.Heap()
	a, _ := h.AllocLines(192)
	th.FASEBegin()
	th.StoreBytes(a+60, make([]byte, 8)) // spans two lines
	th.FASEEnd()
	rt.Close()
	if got := rt.Trace().Threads[0].NumWrites(); got != 2 {
		t.Fatalf("line-spanning store recorded %d writes, want 2", got)
	}
}

func TestFlushStatsEagerRatio(t *testing.T) {
	rt, th := newTestRuntime(t, core.Eager)
	h := rt.Heap()
	a, _ := h.AllocLines(64)
	th.FASEBegin()
	for i := 0; i < 10; i++ {
		th.Store64(a, uint64(i))
	}
	th.FASEEnd()
	st := rt.FlushStats()
	if st.Async != 10 {
		t.Fatalf("eager async flushes = %d, want 10", st.Async)
	}
}

func TestConcurrentThreads(t *testing.T) {
	h := pmem.New(1 << 23)
	rt := NewRuntime(h, DefaultOptions())
	const nThreads = 4
	addrs := make([]uint64, nThreads)
	for i := range addrs {
		addrs[i], _ = h.AllocLines(256)
	}
	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread, base uint64) {
			defer wg.Done()
			for f := 0; f < 50; f++ {
				th.FASEBegin()
				for w := 0; w < 4; w++ {
					th.Store64(base+uint64(w)*8, uint64(f*w))
				}
				th.FASEEnd()
			}
		}(th, addrs[i])
	}
	wg.Wait()
	rt.Close()
	tr := rt.Trace()
	if len(tr.Threads) != nThreads {
		t.Fatalf("trace threads = %d", len(tr.Threads))
	}
	for _, s := range tr.Threads {
		if s.NumFASEs() != 50 {
			t.Errorf("thread %d: %d FASEs", s.Thread, s.NumFASEs())
		}
	}
}

// Crash consistency (DESIGN.md invariant 6): at any crash point, recovery
// restores exactly the state as of the last completed FASE. A shadow model
// tracks the expected committed state.
func TestQuickCrashConsistency(t *testing.T) {
	kinds := []core.PolicyKind{core.Eager, core.Lazy, core.AtlasTable, core.SoftCacheOnline}
	f := func(seed int64, kindIdx uint8) bool {
		rng := testutil.Rand(t, seed)
		kind := kinds[int(kindIdx)%len(kinds)]
		h := pmem.New(1 << 20)
		opts := DefaultOptions()
		opts.Policy = kind
		opts.Config.BurstLength = 32
		rt := NewRuntime(h, opts)
		th, err := rt.NewThread()
		if err != nil {
			return false
		}
		const words = 32
		base, _ := h.AllocLines(words * 8)
		committed := make([]uint64, words) // shadow of last committed state
		pending := make([]uint64, words)
		copy(pending, committed)

		crashAfter := rng.Intn(60)
		step := 0
		crashed := false
	outer:
		for f := 0; f < 10 && !crashed; f++ {
			th.FASEBegin()
			nw := 1 + rng.Intn(8)
			for w := 0; w < nw; w++ {
				idx := rng.Intn(words)
				val := rng.Uint64()
				th.Store64(base+uint64(idx)*8, val)
				pending[idx] = val
				step++
				if step >= crashAfter {
					crashed = true
					h.Crash()
					break outer
				}
			}
			th.FASEEnd()
			copy(committed, pending)
		}
		if !crashed {
			h.Crash() // crash after a clean boundary
		}
		if _, err := Recover(h); err != nil {
			return false
		}
		for i := 0; i < words; i++ {
			if h.ReadUint64(base+uint64(i)*8) != committed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
