package atlas

import "sync"

// Mutex is Atlas's actual programming model: failure-atomic sections are
// not annotated explicitly but inferred from critical sections ("Atlas:
// leveraging locks for non-volatile memory consistency"). Acquiring a
// Mutex on a thread that holds no other Atlas locks opens a FASE; the
// FASE closes when the thread releases its last Atlas lock. Nested and
// overlapping critical sections therefore merge into one outermost
// section, exactly the semantics the paper's Section II-A describes
// (nesting "permits more parallelism as well as updates to persistent
// memory outside an atomic section").
//
// A Mutex provides mutual exclusion between runtime threads as an
// ordinary sync.Mutex does; the Atlas semantics rides on top.
type Mutex struct {
	mu sync.Mutex
}

// Lock acquires the mutex on behalf of th, opening a FASE if th holds no
// other Atlas lock.
func (m *Mutex) Lock(th *Thread) {
	m.mu.Lock()
	th.FASEBegin()
}

// Unlock releases the mutex; releasing the thread's last Atlas lock closes
// the FASE (draining the software cache and committing the undo log).
func (m *Mutex) Unlock(th *Thread) {
	th.FASEEnd()
	m.mu.Unlock()
}

// LockedSections reports the thread's current Atlas lock nesting depth
// (the FASE is open while it is positive).
func (th *Thread) LockedSections() int { return th.depth }
