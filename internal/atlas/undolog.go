package atlas

import (
	"fmt"
	"sort"
	"sync/atomic"

	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// Undo logging gives FASEs their all-or-nothing guarantee: before a word
// of persistent data is overwritten inside a FASE, its old value is
// appended to a write-ahead log and persisted; at FASE end, after the
// persistence policy has drained the data writes, the log is truncated
// (commit). Recovery finds logs whose status is still active — the crash
// hit mid-FASE — and applies their entries backwards, restoring the
// pre-FASE state.
//
// Log layout in the persistent heap (all words little-endian):
//
//	base+0:  status (1 = active FASE, 0 = committed)
//	base+8:  entry count
//	base+16: begin sequence (global order of FASE begins; see below)
//	base+64: entries, 16 bytes each: data address, old value
//
// Logs are registered in a registry block pointed to by the heap's Meta
// slot, so recovery can find them without any volatile state:
//
//	reg+0:  number of registered logs
//	reg+8:  log base addresses, 8 bytes each
//
// The begin sequence exists for the flush pipeline's FASE overlap: a
// thread alternating between two logs can crash with both active, and a
// word touched by both FASEs must be rolled back newest-first to restore
// the oldest pre-image. Recover therefore applies active logs in
// descending begin order (logs from heaps predating this word read
// sequence 0 and keep their registry order).
const (
	logHeaderSize = trace.LineSize
	logEntrySize  = 16
	registryCap   = 1024
	registrySize  = 8 + 8*registryCap
	logStatusOff  = 0
	logCountOff   = 8
	logSeqOff     = 16
)

// undoSeq numbers FASE begins globally (content only matters relative to
// other logs of the same heap; a process-wide counter is the simplest
// source that is still strictly monotonic per thread).
var undoSeq atomic.Uint64

// CurrentSeq returns the current FASE begin-sequence high-water mark — the
// heap's log epoch. A checkpoint published at epoch E is ordered after
// every FASE that began at sequence ≤ E on the shard that took it (the
// shard checkpoints only at settled points), which is what lets recovery
// treat the checkpoint plus the post-E journal suffix as the whole truth.
func CurrentSeq() uint64 { return undoSeq.Load() }

// UndoOp names an undo-log persistence point for Options.UndoHook. Each is
// a boundary at which a crash leaves the log in a distinct intermediate
// state, which is why fault injection enumerates them separately.
type UndoOp uint8

const (
	// UndoBegin fires before the log is marked active at the outermost
	// FASEBegin (a crash here leaves the previous, committed log state).
	UndoBegin UndoOp = iota
	// UndoRecord fires before an entry's address/old-value words are
	// written (a crash here loses the entry entirely; the data write it
	// would guard has not reached NVRAM either).
	UndoRecord
	// UndoPublish fires after an entry's words are durable but before the
	// count that makes it visible to recovery (a crash here must be
	// tolerated by write-ahead ordering: the entry is durable, invisible).
	UndoPublish
	// UndoCommit fires before the log's status word is cleared at FASE end
	// (a crash here finds data fully drained but the FASE still active, so
	// recovery rolls it back).
	UndoCommit
)

// String names the op.
func (op UndoOp) String() string {
	switch op {
	case UndoBegin:
		return "undo-begin"
	case UndoRecord:
		return "undo-record"
	case UndoPublish:
		return "undo-publish"
	case UndoCommit:
		return "undo-commit"
	default:
		return fmt.Sprintf("undo-op(%d)", uint8(op))
	}
}

type undoLog struct {
	heap        *pmem.Heap
	base        uint64
	cap         int
	count       int
	dedup       map[uint64]struct{} // words already logged in this FASE
	dropped     int64               // records beyond capacity (reported, not fatal)
	droppedFASE int                 // records dropped since the last begin
	hook        func(UndoOp)        // fault-injection instrumentation (may be nil)
}

// at invokes the instrumentation hook, if any.
func (l *undoLog) at(op UndoOp) {
	if l.hook != nil {
		l.hook(op)
	}
}

// ensureRegistry finds or creates the heap's log registry.
func ensureRegistry(h *pmem.Heap) (uint64, error) {
	if m := h.Meta(); m != 0 {
		return m, nil
	}
	reg, err := h.AllocLines(registrySize)
	if err != nil {
		return 0, fmt.Errorf("atlas: allocating log registry: %w", err)
	}
	h.WriteUint64(reg, 0)
	h.Persist(reg, 8)
	h.SetMeta(reg)
	return reg, nil
}

func newUndoLog(h *pmem.Heap, entries int, hook func(UndoOp)) (*undoLog, error) {
	reg, err := ensureRegistry(h)
	if err != nil {
		return nil, err
	}
	n := h.ReadUint64(reg)
	if n >= registryCap {
		return nil, fmt.Errorf("atlas: log registry full (%d logs)", n)
	}
	base, err := h.AllocLines(uint64(logHeaderSize + entries*logEntrySize))
	if err != nil {
		return nil, fmt.Errorf("atlas: allocating undo log: %w", err)
	}
	h.WriteUint64(base+logStatusOff, 0)
	h.WriteUint64(base+logCountOff, 0)
	h.Persist(base, logHeaderSize)
	h.WriteUint64(reg+8+8*n, base)
	h.WriteUint64(reg, n+1)
	h.Persist(reg, 8+8*(n+1))
	return &undoLog{
		heap:  h,
		base:  base,
		cap:   entries,
		dedup: make(map[uint64]struct{}, 256),
		hook:  hook,
	}, nil
}

// begin opens a FASE: mark the log active before any data write. Log
// writes are write-through (Write64Through): the log's lines belong to
// this thread alone, the words are durable the instant they are written,
// and the store hot path acquires no heap stripe for logging.
func (l *undoLog) begin() {
	l.at(UndoBegin)
	l.count = 0
	l.droppedFASE = 0
	clear(l.dedup)
	l.heap.Write64Through(l.base+logCountOff, 0)
	l.heap.Write64Through(l.base+logSeqOff, undoSeq.Add(1))
	l.heap.Write64Through(l.base+logStatusOff, 1)
}

// record write-ahead-logs one word's old value. Each word is logged once
// per FASE (the first old value is the one recovery must restore). The
// entry is written through before the count that makes it visible to
// recovery, preserving write-ahead ordering.
func (l *undoLog) record(addr uint64, old uint64) {
	word := addr &^ 7
	if _, ok := l.dedup[word]; ok {
		return
	}
	l.dedup[word] = struct{}{}
	if l.count >= l.cap {
		l.dropped++
		l.droppedFASE++
		return
	}
	l.at(UndoRecord)
	e := l.base + logHeaderSize + uint64(l.count)*logEntrySize
	l.heap.Write64Through(e, word)
	l.heap.Write64Through(e+8, old)
	l.at(UndoPublish)
	l.count++
	l.heap.Write64Through(l.base+logCountOff, uint64(l.count))
}

// commit closes the FASE after the policy drained the data writes.
func (l *undoLog) commit() {
	l.at(UndoCommit)
	l.heap.Write64Through(l.base+logStatusOff, 0)
	l.heap.Write64Through(l.base+logCountOff, 0)
	l.count = 0
	clear(l.dedup)
}

// rollback undoes the current FASE in place: entries are applied backwards
// (exactly what Recover would do after a crash) and the log is then
// committed empty. It reports how many entries were dropped beyond the log's
// capacity — a non-zero count means the rollback is incomplete.
func (l *undoLog) rollback() int {
	for j := l.count - 1; j >= 0; j-- {
		e := l.base + logHeaderSize + uint64(j)*logEntrySize
		addr := l.heap.ReadUint64(e)
		old := l.heap.ReadUint64(e + 8)
		l.heap.WriteUint64(addr, old)
		l.heap.Persist(addr, 8)
	}
	dropped := l.droppedFASE
	l.commit()
	return dropped
}

// RecoverOp names a recovery persistence point for RecoverOptions.Hook.
// Crash-during-recovery exploration arms these: recovery must be
// idempotent, so a crash at either point followed by a second Recover has
// to converge to the same state.
type RecoverOp uint8

const (
	// RecoverReplay fires before a unit of restoration work is applied —
	// in atlas, before an active log's entries are rolled back; in layers
	// above (the kv checkpoint rebuild), before a replay batch.
	RecoverReplay RecoverOp = iota
	// RecoverInstall fires before the restoration is made authoritative —
	// in atlas, before an active log's status word is cleared; above,
	// before a rebuilt root is installed.
	RecoverInstall
)

// String names the op.
func (op RecoverOp) String() string {
	switch op {
	case RecoverReplay:
		return "recover-replay"
	case RecoverInstall:
		return "recover-install"
	default:
		return fmt.Sprintf("recover-op(%d)", uint8(op))
	}
}

// RecoverOptions instrument Recover; the zero value recovers silently.
type RecoverOptions struct {
	// Hook fires at each recovery persistence point (fault injection). A
	// panic out of it abandons recovery mid-flight; rerunning Recover is
	// always safe because every restore is durable word-by-word and the
	// log stays active until RecoverInstall completes.
	Hook func(RecoverOp)
}

// RecoveryReport summarises what Recover did.
type RecoveryReport struct {
	// LogsScanned is the number of registered undo logs.
	LogsScanned int
	// FASEsRolledBack counts logs that were active at the crash.
	FASEsRolledBack int
	// WordsRestored counts undo entries applied.
	WordsRestored int
	// MaxSeq is the highest FASE begin sequence found across all logs,
	// active or committed — the heap's log epoch at the crash. Recover
	// advances the process-wide sequence to at least this value so epochs
	// recorded by later checkpoints stay comparable across restarts.
	MaxSeq uint64
}

// Recover must be called after reattaching to a heap that may have crashed.
// It rolls back every FASE that was in flight, restoring the heap to a
// state in which every FASE is either completely applied (it committed
// before the crash and its policy drained its writes) or completely absent.
func Recover(h *pmem.Heap) (RecoveryReport, error) {
	return RecoverWith(h, RecoverOptions{})
}

// RecoverWith is Recover with instrumentation options.
func RecoverWith(h *pmem.Heap, opts RecoverOptions) (RecoveryReport, error) {
	var rep RecoveryReport
	reg := h.Meta()
	if reg == 0 {
		return rep, nil // never ran: nothing to recover
	}
	n := h.ReadUint64(reg)
	if n > registryCap {
		return rep, fmt.Errorf("atlas: corrupt registry count %d", n)
	}
	at := func(op RecoverOp) {
		if opts.Hook != nil {
			opts.Hook(op)
		}
	}
	// Collect active logs, then roll them back newest-begin-first: with
	// pipelined FASE overlap the same thread can leave two active logs, and
	// a word both touched must end at the older FASE's pre-image.
	type activeLog struct {
		base uint64
		seq  uint64
	}
	var active []activeLog
	for i := uint64(0); i < n; i++ {
		base := h.ReadUint64(reg + 8 + 8*i)
		rep.LogsScanned++
		if seq := h.ReadUint64(base + logSeqOff); seq > rep.MaxSeq {
			rep.MaxSeq = seq
		}
		if h.ReadUint64(base+logStatusOff) == 0 {
			continue
		}
		active = append(active, activeLog{base: base, seq: h.ReadUint64(base + logSeqOff)})
	}
	sort.SliceStable(active, func(i, j int) bool { return active[i].seq > active[j].seq })
	for _, al := range active {
		base := al.base
		count := h.ReadUint64(base + logCountOff)
		rep.FASEsRolledBack++
		at(RecoverReplay)
		for j := int64(count) - 1; j >= 0; j-- {
			e := base + logHeaderSize + uint64(j)*logEntrySize
			addr := h.ReadUint64(e)
			old := h.ReadUint64(e + 8)
			h.WriteUint64(addr, old)
			h.Persist(addr, 8)
			rep.WordsRestored++
		}
		at(RecoverInstall)
		h.WriteUint64(base+logStatusOff, 0)
		h.WriteUint64(base+logCountOff, 0)
		h.Persist(base, logHeaderSize)
	}
	// Epoch floor: keep begin sequences monotone across in-process restarts
	// of the same heap, so a checkpoint's recorded epoch never compares
	// against a recycled (smaller) sequence.
	for {
		cur := undoSeq.Load()
		if cur >= rep.MaxSeq || undoSeq.CompareAndSwap(cur, rep.MaxSeq) {
			break
		}
	}
	return rep, nil
}
