package atlas

import (
	"fmt"
	"sync"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

// Regression test for undo logging at the heap boundary: a store into the
// heap's final bytes must not read a full word past the end while logging
// old contents.
func TestStoreBytesAtHeapEnd(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	end := h.Size()
	th.FASEBegin()
	th.StoreBytes(end-3, []byte{0x11, 0x22, 0x33}) // last 3 bytes of the heap
	th.FASEEnd()
	if got := th.LoadBytes(end-3, 3); got[0] != 0x11 || got[2] != 0x33 {
		t.Fatalf("tail store lost: %v", got)
	}
	// The logged old values must roll back correctly too.
	th.FASEBegin()
	th.StoreBytes(end-3, []byte{0xaa, 0xbb, 0xcc})
	if err := th.FASEAbort(); err != nil {
		t.Fatal(err)
	}
	if got := th.LoadBytes(end-3, 3); got[0] != 0x11 || got[2] != 0x33 {
		t.Fatalf("tail store rollback wrong: %v", got)
	}
}

func TestStoreBytesPastHeapEndPanics(t *testing.T) {
	h := pmem.New(1 << 20)
	rt := NewRuntime(h, DefaultOptions())
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range StoreBytes did not panic")
		}
	}()
	th.StoreBytes(h.Size()-3, []byte{1, 2, 3, 4})
}

// Pins Trace's multi-call semantics: every call is an independent snapshot
// of everything recorded so far, an open FASE appears as a sealed tail
// section of the snapshot only, and recording continues unaffected.
func TestTraceCalledRepeatedly(t *testing.T) {
	rt, th := newTestRuntime(t, core.Lazy)
	h := rt.Heap()
	a, _ := h.AllocLines(256)

	th.FASEBegin()
	th.Store64(a, 1)
	th.Store64(a+64, 2)
	th.FASEEnd()

	tr1 := rt.Trace()
	tr2 := rt.Trace()
	for i, tr := range []interface {
		NumFASEs() int
		NumWrites() int
	}{tr1.Threads[0], tr2.Threads[0]} {
		if tr.NumFASEs() != 1 || tr.NumWrites() != 2 {
			t.Fatalf("call %d: FASEs=%d writes=%d, want 1/2", i+1, tr.NumFASEs(), tr.NumWrites())
		}
	}

	// Mid-FASE snapshot: the open section is sealed in the copy...
	th.FASEBegin()
	th.Store64(a+128, 3)
	mid := rt.Trace().Threads[0]
	if mid.NumFASEs() != 2 || mid.NumWrites() != 3 {
		t.Fatalf("mid-FASE snapshot FASEs=%d writes=%d, want 2/3", mid.NumFASEs(), mid.NumWrites())
	}
	// ...and recording continues: the FASE keeps accumulating stores.
	th.Store64(a+192, 4)
	th.FASEEnd()
	rt.Close()
	final := rt.Trace().Threads[0]
	if final.NumFASEs() != 2 || final.NumWrites() != 4 {
		t.Fatalf("final FASEs=%d writes=%d, want 2/4", final.NumFASEs(), final.NumWrites())
	}
	if got := len(final.FASE(1)); got != 2 {
		t.Fatalf("second FASE has %d writes, want 2 (snapshot split the open FASE)", got)
	}
}

// Threads crash mid-FASE while other threads have committed: recovery must
// roll back exactly the in-flight FASEs. The mutators run concurrently so
// -race exercises the lock-free store path against Crash's all-stripe
// acquisition (after quiescence).
func TestConcurrentCrashRecovery(t *testing.T) {
	h := pmem.New(1 << 22)
	opts := DefaultOptions()
	opts.Policy = core.SoftCacheOnline
	rt := NewRuntime(h, opts)
	const nThreads = 4
	const words = 16
	bases := make([]uint64, nThreads)
	threads := make([]*Thread, nThreads)
	for i := range threads {
		var err error
		if threads[i], err = rt.NewThread(); err != nil {
			t.Fatal(err)
		}
		bases[i], _ = h.AllocLines(words * 8)
	}
	var wg sync.WaitGroup
	for i := 0; i < nThreads; i++ {
		wg.Add(1)
		go func(th *Thread, base uint64, id uint64) {
			defer wg.Done()
			// Commit a baseline, then leave a FASE in flight.
			th.FASEBegin()
			for w := uint64(0); w < words; w++ {
				th.Store64(base+w*8, id*100+w)
			}
			th.FASEEnd()
			th.FASEBegin()
			for w := uint64(0); w < words; w++ {
				th.Store64(base+w*8, 0xdead0000+w)
			}
			// Park mid-FASE (the goroutine simply returns; its FASE stays
			// open in the persistent log).
		}(threads[i], bases[i], uint64(i+1))
	}
	wg.Wait() // quiesce before the whole-heap crash
	h.Crash()
	rep, err := Recover(h)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != nThreads {
		t.Fatalf("rolled back %d FASEs, want %d", rep.FASEsRolledBack, nThreads)
	}
	for i := 0; i < nThreads; i++ {
		for w := uint64(0); w < words; w++ {
			if got := h.ReadUint64(bases[i] + w*8); got != uint64(i+1)*100+w {
				t.Fatalf("thread %d word %d = %d after recovery", i, w, got)
			}
		}
	}
	if err := h.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// FlushStats and Trace must be callable while mutators are storing — the
// read-mostly registry means they take no lock a mutator holds. Run with
// -race: FlushStats reads only atomic counters; Trace is exercised against
// quiesced threads elsewhere (TestTraceCalledRepeatedly).
func TestFlushStatsDuringMutation(t *testing.T) {
	h := pmem.New(1 << 22)
	opts := DefaultOptions()
	opts.DisableTrace = true
	rt := NewRuntime(h, opts)
	const nThreads = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < nThreads; i++ {
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		base, _ := h.AllocLines(4096)
		wg.Add(1)
		go func(th *Thread, base uint64) {
			defer wg.Done()
			for f := 0; f < 200; f++ {
				th.FASEBegin()
				for w := uint64(0); w < 32; w++ {
					th.Store64(base+(w%512)*8, w)
				}
				th.FASEEnd()
			}
		}(th, base)
	}
	var observed core.FlushStats
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				observed = rt.FlushStats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	_ = observed
	if rt.FlushStats().Total() == 0 {
		t.Fatal("no flushes counted")
	}
}

// BenchmarkParallelStores measures store-throughput scaling: g goroutines,
// one Thread each (policy SC), disjoint heap regions, FASEs of 64 stores.
// Under the old global heap mutex this flatlined at ~1× regardless of g;
// the sharded path must scale. The pipeline variants run the same workload
// with FASE-end drains handed to each thread's background flush worker.
func BenchmarkParallelStores(b *testing.B) {
	for _, mode := range []string{"sync", "pipeline"} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode, g), func(b *testing.B) {
				h := pmem.New(1 << 26)
				opts := DefaultOptions()
				opts.Policy = core.SoftCacheOnline
				opts.DisableTrace = true
				if mode == "pipeline" {
					opts.Pipeline = core.PipelineConfig{Enabled: true}
				}
				rt := NewRuntime(h, opts)
				const regionWords = 1 << 13
				threads := make([]*Thread, g)
				bases := make([]uint64, g)
				for i := range threads {
					th, err := rt.NewThread()
					if err != nil {
						b.Fatal(err)
					}
					threads[i] = th
					if bases[i], err = h.AllocLines(regionWords * 8); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				for i := 0; i < g; i++ {
					wg.Add(1)
					go func(th *Thread, base uint64) {
						defer wg.Done()
						for n := 0; n < b.N; n++ {
							if n%64 == 0 {
								th.FASEBegin()
							}
							off := uint64(n%regionWords) * 8
							th.Store64(base+off, uint64(n))
							if n%64 == 63 {
								th.FASEEnd()
							}
						}
						if th.InFASE() {
							th.FASEEnd()
						}
					}(threads[i], bases[i])
				}
				wg.Wait()
				b.StopTimer()
				rt.Close()
				b.ReportMetric(float64(b.N)*float64(g)/b.Elapsed().Seconds(), "stores/sec")
			})
		}
	}
}
