package atlas

import (
	"bytes"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

// pipelineHeapWorkload runs a deterministic single-thread FASE workload and
// returns the heap after a clean shutdown plus a simulated power cut: only
// state the runtime actually persisted survives.
func pipelineHeapWorkload(t *testing.T, cfg core.PipelineConfig, overlapped bool) (*pmem.Heap, uint64) {
	t.Helper()
	h := pmem.New(1 << 22)
	opts := DefaultOptions()
	opts.Policy = core.SoftCacheOnline
	opts.DisableTrace = true
	opts.Pipeline = cfg
	rt := NewRuntime(h, opts)
	// Allocate the data region before the thread: the pipelined runtime
	// allocates an extra undo log per thread, which would shift the bump
	// allocator and make the images incomparable.
	const words = 1000
	base, err := h.AllocLines(words * 8)
	if err != nil {
		t.Fatal(err)
	}
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	var prev FASETicket
	havePrev := false
	for f := 0; f < 30; f++ {
		th.FASEBegin()
		for w := 0; w < 50; w++ {
			addr := base + uint64((f*13+w*7)%words)*8
			th.Store64(addr, uint64(f*1000+w+1))
		}
		if overlapped {
			tk := th.FASEPublish()
			if havePrev {
				th.FASEAwait(prev)
			}
			prev, havePrev = tk, true
		} else {
			th.FASEEnd()
		}
	}
	if havePrev {
		th.FASEAwait(prev)
	}
	rt.Close()
	if n := h.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty lines after clean close", n)
	}
	h.Crash() // keep only the durable view; a clean close must lose nothing
	return h, base
}

// TestPipelinePersistedEquivalence is the end-to-end equivalence property:
// the identical workload run synchronously, through the async pipeline with
// plain FASEEnd, and through the overlapped publish/await protocol must
// leave byte-identical durable heap images after a clean close.
func TestPipelinePersistedEquivalence(t *testing.T) {
	hSync, base := pipelineHeapWorkload(t, core.PipelineConfig{}, false)
	want := hSync.ReadBytes(base, 1000*8)
	nonzero := false
	for _, b := range want {
		if b != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("sync run persisted nothing")
	}
	variants := []struct {
		name       string
		cfg        core.PipelineConfig
		overlapped bool
	}{
		{"pipeline-fase-end", core.PipelineConfig{Enabled: true, Depth: 64, BatchSize: 8}, false},
		{"pipeline-overlapped", core.PipelineConfig{Enabled: true, Depth: 64, BatchSize: 8}, true},
		{"pipeline-synchronous", core.PipelineConfig{Enabled: true, Synchronous: true, Depth: 64, BatchSize: 8}, false},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			h, b2 := pipelineHeapWorkload(t, v.cfg, v.overlapped)
			if b2 != base {
				t.Fatalf("allocator diverged: base %#x vs %#x", b2, base)
			}
			if got := h.ReadBytes(b2, 1000*8); !bytes.Equal(got, want) {
				t.Fatalf("durable image diverges from the synchronous baseline")
			}
		})
	}
}

// TestPipelineOverlapStats checks the overlapped protocol actually routes
// drains through epochs: publishes outnumber zero, batches form, and the
// awaited time is accounted.
func TestPipelineOverlapStats(t *testing.T) {
	h := pmem.New(1 << 22)
	opts := DefaultOptions()
	opts.Policy = core.SoftCacheOnline
	opts.DisableTrace = true
	opts.Pipeline = core.PipelineConfig{Enabled: true, Depth: 64, BatchSize: 8}
	rt := NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	base, err := h.AllocLines(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	var prev FASETicket
	havePrev := false
	for f := 0; f < 20; f++ {
		th.FASEBegin()
		for w := 0; w < 64; w++ {
			th.Store64(base+uint64((f*64+w)%1024)*64, uint64(f+w+1))
		}
		tk := th.FASEPublish()
		if havePrev {
			th.FASEAwait(prev)
		}
		prev, havePrev = tk, true
	}
	th.FASEAwait(prev)
	s := th.FlushStats()
	if s.PipeEpochs < 20 {
		t.Fatalf("epochs %d, want >= 20 (one per published FASE)", s.PipeEpochs)
	}
	if s.PipeBatches == 0 || s.PipeBatchLines == 0 {
		t.Fatalf("no batches formed: %+v", s)
	}
	if th.Pipeline() == nil {
		t.Fatal("Pipeline() accessor returned nil with pipeline enabled")
	}
	rt.Close()
}
