package atlas

import (
	"sync"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

func TestMutexInfersFASE(t *testing.T) {
	rt, th := newTestRuntime(t, core.Lazy)
	h := rt.Heap()
	a, _ := h.Alloc(8)
	var m Mutex
	m.Lock(th)
	if !th.InFASE() {
		t.Fatal("lock did not open a FASE")
	}
	th.Store64(a, 7)
	m.Unlock(th)
	if th.InFASE() {
		t.Fatal("unlock did not close the FASE")
	}
	// The critical section's write is durable.
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(a); got != 7 {
		t.Fatalf("critical-section write lost: %d", got)
	}
}

func TestNestedLocksMergeIntoOneSection(t *testing.T) {
	rt, th := newTestRuntime(t, core.Lazy)
	h := rt.Heap()
	a, _ := h.Alloc(16)
	var m1, m2 Mutex
	m1.Lock(th)
	th.Store64(a, 1)
	m2.Lock(th) // nested: still one outermost FASE
	th.Store64(a+8, 2)
	m2.Unlock(th)
	if !th.InFASE() {
		t.Fatal("inner unlock closed the outer section")
	}
	if th.LockedSections() != 1 {
		t.Fatalf("depth = %d", th.LockedSections())
	}
	// Crash before the outermost unlock: everything rolls back together.
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if h.ReadUint64(a) != 0 || h.ReadUint64(a+8) != 0 {
		t.Fatal("nested section not atomic with outer")
	}
	rt.Close()
}

func TestMutexProvidesMutualExclusion(t *testing.T) {
	h := pmem.New(1 << 23)
	opts := DefaultOptions()
	opts.Policy = core.Lazy
	rt := NewRuntime(h, opts)
	counter, _ := h.Alloc(8)
	var m Mutex
	const workers, incs = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				m.Lock(th)
				th.Store64(counter, th.Load64(counter)+1)
				m.Unlock(th)
			}
		}(th)
	}
	wg.Wait()
	if got := h.ReadUint64(counter); got != workers*incs {
		t.Fatalf("counter = %d, want %d (lost updates)", got, workers*incs)
	}
	// Every increment was a durable critical section.
	h.Crash()
	if _, err := Recover(h); err != nil {
		t.Fatal(err)
	}
	if got := h.ReadUint64(counter); got != workers*incs {
		t.Fatalf("counter after crash = %d", got)
	}
}
