package core

import (
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"nvmcache/internal/trace"
)

// pipelineWorkload drives a deterministic single-thread store stream with
// cross-FASE line reuse through a policy: enough distinct lines to force
// evictions (async flushes) and enough FASEs to exercise many drains.
func pipelineWorkload(p Policy) {
	for f := 0; f < 50; f++ {
		p.FASEBegin()
		for i := 0; i < 40; i++ {
			p.Store(trace.LineAddr((f*7 + i*3) % 96))
		}
		p.FASEEnd()
	}
	p.Finish()
}

func sortedLines(ls []trace.LineAddr) []trace.LineAddr {
	out := append([]trace.LineAddr{}, ls...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestPipelineEquivalence is the sync/async equivalence property: the same
// workload run against a bare sink, a synchronous pipeline and a real
// (background-worker) pipeline must produce identical Async/Drained/Barriers
// totals and the identical multiset of persisted lines. The pipeline
// reorders nothing it is allowed to keep and drops nothing.
func TestPipelineEquivalence(t *testing.T) {
	for _, kind := range []PolicyKind{Eager, Lazy, AtlasTable, SoftCacheOnline} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(mode string) (FlushStats, []trace.LineAddr) {
				inner := &RecordingSink{}
				var sink FlushSink = inner
				var pipe *FlushPipeline
				switch mode {
				case "sync-pipe":
					pipe = NewFlushPipeline(inner, PipelineConfig{Enabled: true, Synchronous: true, Depth: 32, BatchSize: 8})
					sink = pipe
				case "async-pipe":
					pipe = NewFlushPipeline(inner, PipelineConfig{Enabled: true, Depth: 32, BatchSize: 8})
					sink = pipe
				}
				pipelineWorkload(NewPolicy(kind, DefaultConfig(), sink))
				if pipe != nil {
					pipe.Close()
				}
				return inner.Stats(), sortedLines(inner.AllLines())
			}
			baseStats, baseLines := run("bare")
			if baseStats.Total() == 0 {
				t.Fatalf("workload produced no flushes under %v", kind)
			}
			for _, mode := range []string{"sync-pipe", "async-pipe"} {
				s, lines := run(mode)
				if s.Async != baseStats.Async || s.Drained != baseStats.Drained || s.Barriers != baseStats.Barriers {
					t.Errorf("%s counts diverge: async/drained/barriers %d/%d/%d, bare %d/%d/%d",
						mode, s.Async, s.Drained, s.Barriers,
						baseStats.Async, baseStats.Drained, baseStats.Barriers)
				}
				if !reflect.DeepEqual(lines, baseLines) {
					t.Errorf("%s persisted-line multiset diverges: %d lines vs bare %d",
						mode, len(lines), len(baseLines))
				}
			}
		})
	}
}

// TestPipelineConcurrentAwait exercises the cross-goroutine await contract
// under the race detector: several goroutines block on a future epoch while
// the owner keeps enqueueing and publishing; all must be released once that
// epoch persists.
func TestPipelineConcurrentAwait(t *testing.T) {
	inner := NewCountingSink(nil)
	p := NewFlushPipeline(inner, PipelineConfig{Enabled: true, Depth: 16, BatchSize: 4})
	const epochs = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Await(Epoch(epochs))
		}()
	}
	var last Epoch
	for i := 0; i < epochs; i++ {
		p.FlushLine(trace.LineAddr(i % 32))
		last = p.Publish([]trace.LineAddr{trace.LineAddr(i % 7)})
	}
	wg.Wait()
	if got := p.Persisted(); got < last {
		t.Fatalf("awaiters released at persisted epoch %d < published %d", got, last)
	}
	p.Close()
	s := p.Stats()
	if s.PipeEpochs != epochs {
		t.Fatalf("epochs %d, want %d", s.PipeEpochs, epochs)
	}
	// One async line and one non-empty drain per iteration (a barrier is
	// only counted for an empty drain).
	if s.Async != epochs || s.Drained != epochs || s.Barriers != 0 {
		t.Fatalf("counts async=%d drained=%d barriers=%d, want %d/%d/0", s.Async, s.Drained, s.Barriers, epochs, epochs)
	}
}

// slowSink delays every inner-sink call so a small ring reliably fills.
type slowSink struct {
	CountingSink
	delay time.Duration
}

func (s *slowSink) FlushBatch(lines []trace.LineAddr) {
	time.Sleep(s.delay)
	s.CountingSink.FlushBatch(lines)
}

func (s *slowSink) Drain(lines []trace.LineAddr) {
	time.Sleep(s.delay)
	s.CountingSink.Drain(lines)
}

// TestPipelineBackpressure pins the bounded-stall property: with a slow
// inner sink and a tiny ring, enqueues must block (never drop), the stall
// is accounted, and every line still reaches the sink.
func TestPipelineBackpressure(t *testing.T) {
	inner := &slowSink{delay: 500 * time.Microsecond}
	p := NewFlushPipeline(inner, PipelineConfig{Enabled: true, Depth: 8, BatchSize: 4})
	const lines = 64
	for i := 0; i < lines; i++ {
		p.FlushLine(trace.LineAddr(i))
	}
	p.Drain(nil)
	p.Close()
	s := p.Stats()
	if s.Async != lines {
		t.Fatalf("async flushes %d, want %d (backpressure must not drop lines)", s.Async, lines)
	}
	if s.PipeStalls == 0 || s.PipeStallNanos == 0 {
		t.Fatalf("no backpressure stalls recorded: %+v", s)
	}
	if s.PipeDepthMax == 0 || s.PipeDepthMax > 8 {
		t.Fatalf("depth watermark %d out of (0, 8]", s.PipeDepthMax)
	}
}

// gateSink parks the worker inside a drain until the gate opens.
type gateSink struct {
	CountingSink
	gate chan struct{}
}

func (s *gateSink) Drain(lines []trace.LineAddr) {
	<-s.gate
	s.CountingSink.Drain(lines)
}

// TestPipelineAbortReleasesAwaiters is the crash path: Abort must release a
// goroutine awaiting an epoch that will now never persist, and the epoch
// must indeed not be reported persisted afterwards.
func TestPipelineAbortReleasesAwaiters(t *testing.T) {
	gate := make(chan struct{})
	inner := &gateSink{gate: gate}
	p := NewFlushPipeline(inner, PipelineConfig{Enabled: true})
	e := p.Publish([]trace.LineAddr{1, 2, 3})
	awaitDone := make(chan struct{})
	go func() {
		p.Await(e)
		close(awaitDone)
	}()
	select {
	case <-awaitDone:
		t.Fatal("await returned while the drain was still gated")
	case <-time.After(20 * time.Millisecond):
	}
	abortDone := make(chan struct{})
	go func() {
		p.Abort()
		close(abortDone)
	}()
	select {
	case <-awaitDone: // released by the abort, not by persistence
	case <-time.After(5 * time.Second):
		t.Fatal("await not released by Abort")
	}
	close(gate) // let the parked worker finish so Abort can join it
	<-abortDone
	if !p.Aborted() {
		t.Fatal("pipeline not marked aborted")
	}
	if p.Persisted() != 0 {
		t.Fatalf("epoch %d reported persisted after abort", p.Persisted())
	}
}

// TestPipelineDeferredPublish covers the DeferNextDrain/TakeDeferred pair
// atlas routes FASEPublish through: the deferred drain publishes without
// awaiting, and a defer window with no drain still yields a usable epoch.
func TestPipelineDeferredPublish(t *testing.T) {
	inner := &RecordingSink{}
	p := NewFlushPipeline(inner, PipelineConfig{Enabled: true})
	p.DeferNextDrain()
	p.Drain([]trace.LineAddr{10, 11})
	e := p.TakeDeferred()
	if e == 0 {
		t.Fatal("deferred drain published no epoch")
	}
	p.Await(e)
	if got := sortedLines(inner.DrainLines); !reflect.DeepEqual(got, []trace.LineAddr{10, 11}) {
		t.Fatalf("drained %v, want [10 11]", got)
	}
	p.DeferNextDrain()
	e2 := p.TakeDeferred() // nothing drained while armed: bare epoch
	if e2 <= e {
		t.Fatalf("bare epoch %d not after %d", e2, e)
	}
	p.Await(e2)
	p.Close()
}
