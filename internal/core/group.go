package core

import (
	"sync"

	"nvmcache/internal/trace"
)

// Thread-grouped adaptation implements the extension Section III-C leaves
// as future work: "we could group threads with similar write locality and
// calculate one MRC for each group". One leader thread samples its burst,
// computes the MRC and selects the capacity; every follower in the group
// picks the published size up at its next FASE boundary. The group pays
// one analysis instead of N, at the cost of assuming the members share
// write locality (true for SPMD programs like SPLASH2, where every thread
// executes the same slice shape).

// GroupSize is the shared size channel between a leader and its followers.
// The zero value is ready to use.
type GroupSize struct {
	mu     sync.Mutex
	size   int
	round  int // bumped on every leader adaptation
	leader AdaptReport
}

// publish records the leader's selection.
func (g *GroupSize) publish(size int, rep AdaptReport) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.size = size
	g.round++
	g.leader = rep
}

// current returns the latest selection and its round (0 = none yet).
func (g *GroupSize) current() (size, round int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.size, g.round
}

// LeaderReport returns the leader's adaptation report.
func (g *GroupSize) LeaderReport() AdaptReport {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// groupLeaderPolicy is an online software cache that publishes every
// adaptation to the group.
type groupLeaderPolicy struct {
	*softCachePolicy
	group *GroupSize
}

func (p *groupLeaderPolicy) Store(line trace.LineAddr) {
	before := p.report.Adaptations
	p.softCachePolicy.Store(line)
	if p.report.Adaptations != before {
		p.group.publish(p.report.ChosenSize, p.report)
	}
}

func (p *groupLeaderPolicy) Finish() {
	before := p.report.Adaptations
	p.softCachePolicy.Finish()
	if p.report.Adaptations != before {
		p.group.publish(p.report.ChosenSize, p.report)
	}
}

// groupFollowerPolicy is a software cache without a sampler; it adopts the
// group's published size at FASE boundaries (resizing mid-FASE would
// interleave extra evictions into the section for no benefit).
type groupFollowerPolicy struct {
	sink    FlushSink
	cache   *WriteCache
	group   *GroupSize
	seen    int // last adopted round
	initial int
}

func (p *groupFollowerPolicy) Kind() PolicyKind { return SoftCacheOnline }

func (p *groupFollowerPolicy) Store(line trace.LineAddr) {
	if _, evicted, has := p.cache.Access(line); has {
		p.sink.FlushLine(evicted)
	}
}

func (p *groupFollowerPolicy) FASEBegin() {
	if size, round := p.group.current(); round != p.seen {
		p.seen = round
		for _, line := range p.cache.Resize(size) {
			p.sink.FlushLine(line)
		}
	}
}

func (p *groupFollowerPolicy) FASEEnd() {
	if lines := p.cache.Drain(); len(lines) > 0 {
		p.sink.Drain(lines)
	}
}

func (p *groupFollowerPolicy) Finish() { p.FASEEnd() }

// AdaptReport implements SizeReporter: a follower reports the size it
// adopted and no analysis cost of its own.
func (p *groupFollowerPolicy) AdaptReport() AdaptReport {
	return AdaptReport{
		Online:      true,
		Adapted:     p.seen > 0,
		InitialSize: p.initial,
		ChosenSize:  p.cache.Capacity(),
	}
}

// NewGroupedPolicies builds one leader plus n-1 follower policies sharing
// a single MRC analysis, one per thread of a locality-homogeneous group.
// sinks[i] is thread i's flush sink (thread 0 is the leader).
func NewGroupedPolicies(cfg Config, sinks []FlushSink) []Policy {
	group := &GroupSize{}
	out := make([]Policy, len(sinks))
	for i, f := range sinks {
		if i == 0 {
			out[i] = &groupLeaderPolicy{
				softCachePolicy: newSoftCachePolicy(cfg, f, true),
				group:           group,
			}
			continue
		}
		size := cfg.Knee.DefaultSize
		if size <= 0 {
			size = 8
		}
		out[i] = &groupFollowerPolicy{
			sink:    f,
			cache:   NewWriteCache(size),
			group:   group,
			initial: size,
		}
	}
	return out
}
