package core

import (
	"fmt"

	"nvmcache/internal/locality"
	"nvmcache/internal/sampling"
	"nvmcache/internal/trace"
)

// Flusher is the raw flush device: implementations decide what a flush
// costs (internal/hwsim charges cycles and models overlap). Policies do
// not use it directly — they talk to a FlushSink; CountingSink bridges a
// sink onto a device.
type Flusher interface {
	// FlushAsync writes one line back without waiting; the transfer may
	// overlap with subsequent computation (a mid-FASE eviction).
	FlushAsync(line trace.LineAddr)
	// FlushDrain writes the given lines back and then waits until they and
	// every previously issued asynchronous flush are durable (the FASE-end
	// drain). lines may be empty, in which case it acts as a barrier.
	FlushDrain(lines []trace.LineAddr)
}

// BatchFlusher is the batched extension of Flusher: issue a whole batch of
// asynchronous write-backs in one call (hwsim retires it in one scheduling
// pass). Semantics equal len(lines) FlushAsync calls.
type BatchFlusher interface {
	FlushBatch(lines []trace.LineAddr)
}

// FlushSink is what a persistence policy is wired to: the seam between
// policy logic (what to flush, when) and flush execution (what it costs,
// where the bytes go). Implementations: CountingSink (pure counting, or
// counting in front of a Flusher device), pmem.Sink (actually persists
// line contents), hwsim.Sink (replays flushes through the cycle-level
// cache model). A sink belongs to one thread's policy; only Stats must
// tolerate concurrent readers.
type FlushSink interface {
	// FlushLine writes one line back without waiting; the transfer may
	// overlap with subsequent computation (a mid-FASE eviction).
	FlushLine(line trace.LineAddr)
	// Drain writes the given lines back and then waits until they and every
	// previously issued asynchronous flush are durable (the FASE-end
	// drain). lines may be empty, in which case it acts as a barrier.
	Drain(lines []trace.LineAddr)
	// Stats reports cumulative flush counts. It may be called from other
	// goroutines while the owning thread is storing.
	Stats() FlushStats
}

// StoreTap observes one thread's persistent-store line stream from outside
// the policy: the seam the adaptive control plane's burst sampler hangs
// off. The runtime calls TapStore for every line a thread stores — on the
// store hot path, so implementations must be allocation-free and near-free
// while their sampler hibernates — and TapFASEEnd at every outermost FASE
// close (the renaming boundary of Section III-B). A tap belongs to one
// thread; the runtime never calls it concurrently.
type StoreTap interface {
	TapStore(line trace.LineAddr)
	TapFASEEnd()
}

// CapacityControlled is implemented by policies whose software-cache
// capacity an external controller can retarget while the owning thread
// keeps running. RequestCapacity is safe from any goroutine: the request
// is a single atomic publication, and the resize itself runs on the owning
// thread at its next outermost FASE end, just before the drain — so the
// lines a shrink evicts flow through the normal FlushLine path and remain
// covered by the FASE's persistence guarantee (and by fault-injection
// sites). CacheSize reports the capacity currently in effect and is safe
// for concurrent readers; it lags a pending request by at most one FASE.
type CapacityControlled interface {
	RequestCapacity(capacity int)
	CacheSize() int
}

// PolicyKind names the six persistence techniques of Section IV-A.
type PolicyKind int

const (
	// Eager (ER) flushes every persistent store immediately.
	Eager PolicyKind = iota
	// Lazy (LA) flushes each FASE's distinct dirty lines only at FASE end.
	Lazy
	// AtlasTable (AT) is the state of the art: Atlas's fixed-size
	// direct-mapped address table (8 entries).
	AtlasTable
	// SoftCacheOnline (SC) is the adaptive software cache: default size 8,
	// one sampled burst, MRC analysis, knee-based resize at run time.
	SoftCacheOnline
	// SoftCacheOffline (SC-offline) is the software cache with the best
	// fixed size chosen from a whole-trace MRC before the run.
	SoftCacheOffline
	// Best (BEST) performs no flushes at all: the (invalid) upper bound on
	// any caching scheme.
	Best
)

// String returns the paper's abbreviation for the policy.
func (k PolicyKind) String() string {
	switch k {
	case Eager:
		return "ER"
	case Lazy:
		return "LA"
	case AtlasTable:
		return "AT"
	case SoftCacheOnline:
		return "SC"
	case SoftCacheOffline:
		return "SC-offline"
	case Best:
		return "BEST"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// AllPolicyKinds lists every policy in the paper's presentation order.
func AllPolicyKinds() []PolicyKind {
	return []PolicyKind{Eager, Lazy, AtlasTable, SoftCacheOnline, SoftCacheOffline, Best}
}

// Policy is one thread's persistence engine. Exactly one Policy exists per
// thread (the software cache is per thread and lock-free by design,
// Section II-B); none of the implementations are safe for concurrent use.
type Policy interface {
	// Kind identifies the technique.
	Kind() PolicyKind
	// Store records a persistent store to the line (inside a FASE).
	Store(line trace.LineAddr)
	// FASEBegin marks the start of an outermost failure-atomic section.
	FASEBegin()
	// FASEEnd marks the end of an outermost section. On return, every line
	// stored during the FASE must have been handed to the FlushSink and
	// drained — the persistence guarantee — except for Best, which is
	// deliberately unsound.
	FASEEnd()
	// Finish releases resources at thread exit and drains any residue.
	Finish()
}

// Config carries the tuning constants shared by the policies.
type Config struct {
	// Knee configures adaptive size selection; DefaultSize doubles as the
	// initial software cache capacity (paper: 8, max 50).
	Knee locality.KneeConfig
	// AtlasTableSize is AT's direct-mapped table size (paper: 8).
	AtlasTableSize int
	// BurstLength is the online sampler's burst, in writes (paper: 64M at
	// full scale; callers pass a value proportional to their trace size).
	BurstLength int
	// Hibernation is the number of writes skipped between sampling bursts.
	// The paper sets it to infinite ("it is sufficient to analyze MRC just
	// once"), the default here (sampling.Infinite = -1); a positive value
	// re-samples periodically, letting the cache re-size when the
	// program's write locality shifts between phases.
	Hibernation int64
	// PresetSize, when positive, fixes the software cache capacity and
	// disables adaptation: the SC-offline configuration, and also the
	// "preset" runs used to measure online-selection overhead (Fig. 8).
	PresetSize int
}

// DefaultConfig returns the paper's constants with a burst length suitable
// for this repository's default workload scale.
func DefaultConfig() Config {
	return Config{
		Knee:           locality.DefaultKneeConfig(),
		AtlasTableSize: 8,
		BurstLength:    1 << 18,
		Hibernation:    sampling.Infinite,
	}
}

// NewPolicy constructs a policy of the given kind over the flush sink.
func NewPolicy(kind PolicyKind, cfg Config, sink FlushSink) Policy {
	switch kind {
	case Eager:
		return &eagerPolicy{sink: sink}
	case Lazy:
		return newLazyPolicy(sink)
	case AtlasTable:
		return newAtlasPolicy(cfg, sink)
	case SoftCacheOnline:
		return newSoftCachePolicy(cfg, sink, true)
	case SoftCacheOffline:
		return newSoftCachePolicy(cfg, sink, false)
	case Best:
		return &bestPolicy{}
	default:
		panic(fmt.Sprintf("core: unknown policy kind %d", kind))
	}
}

// eagerPolicy flushes at every store. Cheap per event, catastrophic in
// aggregate: Table I's 22× average slowdown.
type eagerPolicy struct {
	sink FlushSink
}

func (p *eagerPolicy) Kind() PolicyKind { return Eager }

func (p *eagerPolicy) Store(line trace.LineAddr) { p.sink.FlushLine(line) }

func (p *eagerPolicy) FASEBegin() {}

// FASEEnd waits for outstanding asynchronous flushes so the FASE's
// persistence guarantee holds.
func (p *eagerPolicy) FASEEnd() { p.sink.Drain(nil) }

func (p *eagerPolicy) Finish() { p.sink.Drain(nil) }

// lazyPolicy records each FASE's distinct dirty lines and drains them all
// at FASE end: minimal flushes, maximal stall.
type lazyPolicy struct {
	sink  FlushSink
	seen  map[trace.LineAddr]struct{}
	order []trace.LineAddr
}

func newLazyPolicy(sink FlushSink) *lazyPolicy {
	return &lazyPolicy{sink: sink, seen: make(map[trace.LineAddr]struct{}, 256)}
}

func (p *lazyPolicy) Kind() PolicyKind { return Lazy }

func (p *lazyPolicy) Store(line trace.LineAddr) {
	if _, ok := p.seen[line]; ok {
		return
	}
	p.seen[line] = struct{}{}
	p.order = append(p.order, line)
}

func (p *lazyPolicy) FASEBegin() {}

func (p *lazyPolicy) FASEEnd() {
	if len(p.order) == 0 {
		return
	}
	p.sink.Drain(p.order)
	p.order = p.order[:0]
	clear(p.seen)
}

func (p *lazyPolicy) Finish() { p.FASEEnd() }

// bestPolicy never flushes: the upper bound of Section IV-A. It is not a
// valid persistence technique (a crash loses data); it exists to bound the
// attainable performance.
type bestPolicy struct{}

func (*bestPolicy) Kind() PolicyKind       { return Best }
func (*bestPolicy) Store(_ trace.LineAddr) {}
func (*bestPolicy) FASEBegin()             {}
func (*bestPolicy) FASEEnd()               {}
func (*bestPolicy) Finish()                {}

// RunSeq replays one thread's recorded sequence through a policy. It is the
// bridge between trace-based workloads (internal/splash) and the policy
// engines.
func RunSeq(p Policy, s *trace.ThreadSeq) {
	for i := 0; i < s.NumFASEs(); i++ {
		p.FASEBegin()
		for _, line := range s.FASE(i) {
			p.Store(line)
		}
		p.FASEEnd()
	}
	p.Finish()
}
