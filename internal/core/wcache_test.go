package core

import (
	"nvmcache/internal/testutil"
	"reflect"
	"testing"
	"testing/quick"

	"nvmcache/internal/trace"
)

func TestWriteCacheHitMissEvict(t *testing.T) {
	c := NewWriteCache(2)
	hit, _, ev := c.Access(1)
	if hit || ev {
		t.Fatalf("first access: hit=%v ev=%v", hit, ev)
	}
	hit, _, ev = c.Access(2)
	if hit || ev {
		t.Fatalf("second access: hit=%v ev=%v", hit, ev)
	}
	hit, _, _ = c.Access(1)
	if !hit {
		t.Fatal("reaccess of buffered line missed")
	}
	// 1 is now MRU; inserting 3 must evict 2 (LRU).
	hit, evicted, ev := c.Access(3)
	if hit || !ev || evicted != 2 {
		t.Fatalf("expected eviction of 2, got hit=%v evicted=%v has=%v", hit, evicted, ev)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestWriteCacheFigure1Scenario(t *testing.T) {
	// Figure 1: cache of two blocks holding {0x500, 0x400} with 0x500 more
	// recent; accessing 0x600 evicts 0x400.
	c := NewWriteCache(2)
	c.Access(0x400)
	c.Access(0x500)
	_, evicted, has := c.Access(0x600)
	if !has || evicted != 0x400 {
		t.Fatalf("evicted %v (has=%v), want 0x400", evicted, has)
	}
}

func TestWriteCacheDrainOrder(t *testing.T) {
	c := NewWriteCache(4)
	for _, l := range []trace.LineAddr{10, 20, 30} {
		c.Access(l)
	}
	c.Access(10) // 10 becomes MRU
	got := c.Drain()
	want := []trace.LineAddr{20, 30, 10} // LRU first
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Drain = %v, want %v", got, want)
	}
	if c.Len() != 0 {
		t.Errorf("cache not empty after drain")
	}
	if got := c.Drain(); got != nil {
		t.Errorf("second drain = %v", got)
	}
}

func TestWriteCacheResizeShrinkEvictsLRU(t *testing.T) {
	c := NewWriteCache(4)
	for _, l := range []trace.LineAddr{1, 2, 3, 4} {
		c.Access(l)
	}
	evicted := c.Resize(2)
	want := []trace.LineAddr{1, 2}
	if !reflect.DeepEqual(evicted, want) {
		t.Fatalf("Resize evicted %v, want %v", evicted, want)
	}
	if c.Capacity() != 2 || c.Len() != 2 {
		t.Errorf("capacity %d len %d", c.Capacity(), c.Len())
	}
	if !c.Contains(3) || !c.Contains(4) {
		t.Errorf("wrong survivors: %v", c.Lines())
	}
}

func TestWriteCacheResizeGrow(t *testing.T) {
	c := NewWriteCache(1)
	c.Access(1)
	if ev := c.Resize(3); ev != nil {
		t.Fatalf("grow evicted %v", ev)
	}
	c.Access(2)
	if _, _, has := c.Access(3); has {
		t.Fatal("eviction before reaching new capacity")
	}
}

func TestWriteCacheCapacityClamp(t *testing.T) {
	c := NewWriteCache(0)
	if c.Capacity() != 1 {
		t.Errorf("capacity %d, want clamp to 1", c.Capacity())
	}
	c.Resize(-5)
	if c.Capacity() != 1 {
		t.Errorf("resize clamp failed: %d", c.Capacity())
	}
}

func TestWriteCacheClear(t *testing.T) {
	c := NewWriteCache(3)
	c.Access(1)
	c.Access(2)
	c.Clear()
	if c.Len() != 0 || c.Contains(1) {
		t.Fatal("Clear left entries")
	}
	// Freelist reuse must not corrupt state.
	c.Access(5)
	c.Access(6)
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// modelLRU is a trivially correct reference: a slice ordered MRU-first.
type modelLRU struct {
	cap   int
	lines []trace.LineAddr
}

func (m *modelLRU) access(l trace.LineAddr) (hit bool, evicted trace.LineAddr, has bool) {
	for i, x := range m.lines {
		if x == l {
			copy(m.lines[1:i+1], m.lines[:i])
			m.lines[0] = l
			return true, 0, false
		}
	}
	if len(m.lines) == m.cap {
		evicted = m.lines[len(m.lines)-1]
		m.lines = m.lines[:len(m.lines)-1]
		has = true
	}
	m.lines = append([]trace.LineAddr{l}, m.lines...)
	return false, evicted, has
}

// Property: the O(1) cache behaves exactly like the reference LRU under
// random access/resize/drain sequences, and its internal invariants hold.
func TestQuickWriteCacheMatchesModel(t *testing.T) {
	f := func(seed int64, cap8 uint8) bool {
		rng := testutil.Rand(t, seed)
		capacity := 1 + int(cap8)%12
		c := NewWriteCache(capacity)
		m := &modelLRU{cap: capacity}
		for op := 0; op < 300; op++ {
			switch rng.Intn(10) {
			case 8: // resize
				newCap := 1 + rng.Intn(12)
				got := c.Resize(newCap)
				var want []trace.LineAddr
				for len(m.lines) > newCap {
					want = append(want, m.lines[len(m.lines)-1])
					m.lines = m.lines[:len(m.lines)-1]
				}
				m.cap = newCap
				if !reflect.DeepEqual(got, want) {
					return false
				}
			case 9: // drain
				got := c.Drain()
				var want []trace.LineAddr
				for i := len(m.lines) - 1; i >= 0; i-- {
					want = append(want, m.lines[i])
				}
				m.lines = nil
				if !reflect.DeepEqual(got, want) {
					return false
				}
			default:
				l := trace.LineAddr(rng.Intn(20))
				hit, ev, has := c.Access(l)
				whit, wev, whas := m.access(l)
				if hit != whit || has != whas || (has && ev != wev) {
					return false
				}
			}
			if err := c.checkInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Stack inclusion: hit count is monotonically non-decreasing in capacity
// (DESIGN.md invariant 3).
func TestQuickStackInclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		n := 50 + rng.Intn(400)
		seq := make([]trace.LineAddr, n)
		for i := range seq {
			seq[i] = trace.LineAddr(rng.Intn(25))
		}
		prevHits := -1
		for capacity := 1; capacity <= 30; capacity += 3 {
			c := NewWriteCache(capacity)
			hits := 0
			for _, l := range seq {
				if h, _, _ := c.Access(l); h {
					hits++
				}
			}
			if hits < prevHits {
				return false
			}
			prevHits = hits
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteCacheAccess(b *testing.B) {
	c := NewWriteCache(50)
	rng := testutil.Rand(b, 1)
	lines := make([]trace.LineAddr, 4096)
	for i := range lines {
		lines[i] = trace.LineAddr(rng.Intn(64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(lines[i%len(lines)])
	}
}

// TestWriteCacheDrainAllocs pins the scratch-buffer reuse on the FASE hot
// path: once warm, a fill + Drain cycle (and a shrinking Resize) must not
// allocate — the drain slice is cache-owned scratch and the nodes come from
// the freelist.
func TestWriteCacheDrainAllocs(t *testing.T) {
	const capacity = 50
	c := NewWriteCache(capacity)
	fill := func() {
		for i := 0; i < capacity; i++ {
			c.Access(trace.LineAddr(i))
		}
	}
	fill()
	c.Drain() // warm the scratch buffer and freelist
	if n := testing.AllocsPerRun(100, func() {
		fill()
		if got := c.Drain(); len(got) != capacity {
			t.Fatalf("drained %d lines, want %d", len(got), capacity)
		}
	}); n != 0 {
		t.Fatalf("fill+Drain allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		fill()
		if got := c.Resize(capacity / 2); len(got) != capacity/2 {
			t.Fatalf("resize evicted %d lines, want %d", len(got), capacity/2)
		}
		c.Resize(capacity)
		c.Clear()
	}); n != 0 {
		t.Fatalf("fill+Resize allocates %v per op, want 0", n)
	}
}

// BenchmarkWriteCacheDrain measures the FASE-end drain cycle; allocs/op is
// the scratch-reuse regression metric (must report 0).
func BenchmarkWriteCacheDrain(b *testing.B) {
	const capacity = 50
	c := NewWriteCache(capacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < capacity; j++ {
			c.Access(trace.LineAddr(j))
		}
		c.Drain()
	}
}
