package core

import (
	"sync/atomic"

	"nvmcache/internal/locality"
	"nvmcache/internal/sampling"
	"nvmcache/internal/trace"
)

// softCachePolicy is the paper's contribution: the fully associative LRU
// write-combining software cache (SC / SC-offline). Stores are buffered at
// line-address granularity; an eviction triggers an asynchronous flush that
// overlaps with computation; FASE end drains the whole cache, which bounds
// the stall by the cache capacity (hence the 50-line maximum).
//
// In the online configuration the policy starts at the default capacity
// (8), samples one burst of writes, computes the MRC with the linear-time
// reuse algorithm, and resizes to the knee (Section III-C). In the offline
// configuration the capacity is fixed to cfg.PresetSize (or the default
// when unset) and no sampling happens.
type softCachePolicy struct {
	sink   FlushSink
	cache  *WriteCache
	cfg    Config
	online bool

	sampler *sampling.Sampler
	report  AdaptReport

	// capacity mirrors cache.Capacity() for concurrent readers; pending is
	// an externally requested capacity (0 = none), published by any
	// goroutine via RequestCapacity and consumed by the owning thread at
	// FASE end.
	capacity atomic.Int64
	pending  atomic.Int64
}

// AdaptReport describes what the adaptive controller did during a run; the
// harness uses it for the Section IV-G analyses (chosen sizes, online
// overhead).
type AdaptReport struct {
	// Online is true for SC, false for SC-offline / preset runs.
	Online bool
	// Adapted is true once the burst completed and the capacity was reset.
	Adapted bool
	// InitialSize is the capacity at thread start.
	InitialSize int
	// ChosenSize is the capacity selected from the MRC (equals InitialSize
	// until adaptation happens).
	ChosenSize int
	// AnalyzedWrites counts the sampled writes; cost models charge online
	// MRC analysis time proportional to it.
	AnalyzedWrites int64
	// Adaptations counts completed burst → resize cycles (1 with the
	// paper's infinite hibernation; more under periodic re-sampling).
	Adaptations int
}

// SizeReporter is implemented by policies that choose a cache capacity at
// run time or carry one chosen offline.
type SizeReporter interface {
	AdaptReport() AdaptReport
}

func newSoftCachePolicy(cfg Config, sink FlushSink, online bool) *softCachePolicy {
	size := cfg.Knee.DefaultSize
	if size <= 0 {
		size = locality.DefaultKneeConfig().DefaultSize
	}
	if !online && cfg.PresetSize > 0 {
		size = cfg.PresetSize
	}
	p := &softCachePolicy{
		sink:   sink,
		cache:  NewWriteCache(size),
		cfg:    cfg,
		online: online,
		report: AdaptReport{Online: online, InitialSize: size, ChosenSize: size},
	}
	p.capacity.Store(int64(size))
	if online {
		scfg := sampling.DefaultConfig(cfg.BurstLength)
		if cfg.Hibernation != 0 {
			scfg.Hibernation = cfg.Hibernation
		}
		p.sampler = sampling.New(scfg)
	}
	return p
}

func (p *softCachePolicy) Kind() PolicyKind {
	if p.online {
		return SoftCacheOnline
	}
	return SoftCacheOffline
}

func (p *softCachePolicy) Store(line trace.LineAddr) {
	if p.sampler != nil {
		if done := p.sampler.RecordStore(line); done {
			p.adapt()
		}
	}
	if _, evicted, has := p.cache.Access(line); has {
		p.sink.FlushLine(evicted)
	}
}

func (p *softCachePolicy) FASEBegin() {}

func (p *softCachePolicy) FASEEnd() {
	// Apply an externally requested resize first, while the cache still
	// holds the FASE's lines: a shrink genuinely evicts here, and the
	// evicted lines' FlushLine write-backs are covered by the Drain barrier
	// below, so the persistence guarantee is unchanged. Load-then-swap
	// keeps the common case (no request) a read-only atomic.
	if p.pending.Load() != 0 {
		if c := p.pending.Swap(0); c != 0 {
			p.applyCapacity(int(c))
		}
	}
	if p.sampler != nil {
		p.sampler.FASEEnd()
	}
	lines := p.cache.Drain()
	if len(lines) == 0 {
		return
	}
	p.sink.Drain(lines)
}

func (p *softCachePolicy) Finish() {
	p.FASEEnd()
	// With infinite hibernation the paper analyzes one burst; if the trace
	// was shorter than the burst, adapt on what was collected so short
	// runs still pick a size (and tests can observe the selection).
	if p.sampler != nil && !p.report.Adapted && p.sampler.Analyzed() > 0 {
		p.adapt()
	}
}

// adapt computes the MRC from the sampled burst and resizes the cache to
// the selected knee. Evictions forced by a shrink are flushed
// asynchronously, exactly like capacity evictions.
func (p *softCachePolicy) adapt() {
	burst := p.sampler.Burst()
	p.report.AnalyzedWrites += int64(len(burst))
	if len(burst) == 0 {
		return
	}
	mrc := locality.ProfileBurst(burst, p.cfg.Knee.MaxSize).MRC
	size := locality.SelectSize(mrc, p.cfg.Knee)
	p.applyCapacity(size)
	p.report.Adapted = true
	p.report.Adaptations++
	p.report.ChosenSize = size
}

// applyCapacity resizes on the owning thread, flushing shrink evictions
// like capacity evictions. Runs only on the mutator.
func (p *softCachePolicy) applyCapacity(c int) {
	if c < 1 {
		c = 1
	}
	if c == p.cache.Capacity() {
		return
	}
	for _, line := range p.cache.Resize(c) {
		p.sink.FlushLine(line)
	}
	p.capacity.Store(int64(c))
}

// AdaptReport implements SizeReporter.
func (p *softCachePolicy) AdaptReport() AdaptReport { return p.report }

// RequestCapacity implements CapacityControlled: publish a capacity target
// the owning thread applies at its next outermost FASE end. Safe from any
// goroutine. Requests coalesce — only the newest unapplied one wins.
func (p *softCachePolicy) RequestCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	p.pending.Store(int64(capacity))
}

// CacheSize implements CapacityControlled: the capacity currently in
// effect. Safe for concurrent readers.
func (p *softCachePolicy) CacheSize() int { return int(p.capacity.Load()) }
