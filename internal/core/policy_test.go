package core

import (
	"math/rand"
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"

	"nvmcache/internal/trace"
)

// buildTrace makes a single-thread trace from per-FASE line lists.
func buildTrace(fases ...[]trace.LineAddr) *trace.Trace {
	b := trace.NewBuilder(0)
	for _, f := range fases {
		b.Begin()
		for _, l := range f {
			b.Store(l)
		}
		b.End()
	}
	return trace.NewTrace(b.Finish())
}

// randomFASETrace builds a random trace for property tests.
func randomFASETrace(rng *rand.Rand, fases, maxWrites, vocab int) *trace.Trace {
	b := trace.NewBuilder(0)
	for f := 0; f < fases; f++ {
		b.Begin()
		n := 1 + rng.Intn(maxWrites)
		for w := 0; w < n; w++ {
			b.Store(trace.LineAddr(rng.Intn(vocab)))
		}
		b.End()
	}
	return trace.NewTrace(b.Finish())
}

func TestEagerFlushesEveryStore(t *testing.T) {
	tr := buildTrace([]trace.LineAddr{1, 1, 2}, []trace.LineAddr{1})
	if got := FlushRatio(Eager, DefaultConfig(), tr); got != 1.0 {
		t.Fatalf("ER flush ratio = %v, want 1", got)
	}
}

func TestLazyFlushesDistinctPerFASE(t *testing.T) {
	tr := buildTrace(
		[]trace.LineAddr{1, 1, 2, 1}, // 2 distinct
		[]trace.LineAddr{1, 3},       // 2 distinct
	)
	st := trace.ComputeStats(tr)
	want := float64(st.LAFlushes) / float64(st.TotalWrites)
	if got := FlushRatio(Lazy, DefaultConfig(), tr); got != want {
		t.Fatalf("LA flush ratio = %v, want %v", got, want)
	}
	if st.LAFlushes != 4 {
		t.Fatalf("LAFlushes = %d", st.LAFlushes)
	}
}

func TestLazyDrainsOnlyAtFASEEnd(t *testing.T) {
	rf := &RecordingSink{}
	p := NewPolicy(Lazy, DefaultConfig(), rf)
	p.FASEBegin()
	p.Store(1)
	p.Store(2)
	if len(rf.AsyncLines) != 0 || len(rf.DrainLines) != 0 {
		t.Fatal("lazy flushed mid-FASE")
	}
	p.FASEEnd()
	if len(rf.DrainLines) != 2 || len(rf.AsyncLines) != 0 {
		t.Fatalf("drain=%v async=%v", rf.DrainLines, rf.AsyncLines)
	}
}

func TestBestNeverFlushes(t *testing.T) {
	rng := testutil.Rand(t, 2)
	tr := randomFASETrace(rng, 10, 20, 8)
	if got := FlushRatio(Best, DefaultConfig(), tr); got != 0 {
		t.Fatalf("BEST flush ratio = %v", got)
	}
}

func TestAtlasCombinesWithinSlot(t *testing.T) {
	rf := &RecordingSink{}
	p := NewPolicy(AtlasTable, DefaultConfig(), rf)
	p.FASEBegin()
	p.Store(1)
	p.Store(1) // combined: same slot, same line
	p.Store(9) // 9 % 8 == 1: conflict, flushes 1
	p.FASEEnd()
	if len(rf.AsyncLines) != 1 || rf.AsyncLines[0] != 1 {
		t.Fatalf("async = %v, want [1]", rf.AsyncLines)
	}
	if len(rf.DrainLines) != 1 || rf.DrainLines[0] != 9 {
		t.Fatalf("drain = %v, want [9]", rf.DrainLines)
	}
}

func TestAtlasPersistentArrayRatio(t *testing.T) {
	// Section IV-B: a working set of W sequential lines cycled P times in
	// one FASE. Atlas's direct-mapped 8-entry table combines stores within
	// a line (16 stores per line at 4-byte ints) but conflicts across
	// passes, giving flush ratio ~1/16. The pattern below writes 16 stores
	// per line over 25 lines, 100 passes.
	b := trace.NewBuilder(0)
	b.Begin()
	const lines, passes, perLine = 25, 100, 16
	for p := 0; p < passes; p++ {
		for l := 0; l < lines; l++ {
			for s := 0; s < perLine; s++ {
				b.Store(trace.LineAddr(l))
			}
		}
	}
	b.End()
	tr := trace.NewTrace(b.Finish())
	got := FlushRatio(AtlasTable, DefaultConfig(), tr)
	want := 1.0 / 16.0
	if got < want*0.95 || got > want*1.1 {
		t.Fatalf("AT ratio on persistent-array pattern = %v, want ≈ %v", got, want)
	}
	// The software cache at capacity ≥ 25 combines across passes too:
	// 25 flushes out of 40000 stores.
	cfg := DefaultConfig()
	cfg.PresetSize = 26
	sc := FlushRatio(SoftCacheOffline, cfg, tr)
	scWant := float64(lines) / float64(lines*passes*perLine)
	if sc != scWant {
		t.Fatalf("SC ratio = %v, want %v", sc, scWant)
	}
}

func TestSoftCacheEvictionFlushesLRU(t *testing.T) {
	rf := &RecordingSink{}
	cfg := DefaultConfig()
	cfg.PresetSize = 2
	p := NewPolicy(SoftCacheOffline, cfg, rf)
	p.FASEBegin()
	p.Store(1)
	p.Store(2)
	p.Store(3) // evicts 1
	p.FASEEnd()
	if len(rf.AsyncLines) != 1 || rf.AsyncLines[0] != 1 {
		t.Fatalf("async = %v, want [1]", rf.AsyncLines)
	}
	if len(rf.DrainLines) != 2 {
		t.Fatalf("drain = %v", rf.DrainLines)
	}
}

func TestSoftCacheOnlineAdaptsToWorkingSet(t *testing.T) {
	// A cyclic working set of 26 lines. The default capacity 8 thrashes;
	// after the burst the controller must pick a capacity ≥ 26, after
	// which each pass costs zero evictions.
	b := trace.NewBuilder(0)
	b.Begin()
	for pass := 0; pass < 400; pass++ {
		for l := 0; l < 26; l++ {
			b.Store(trace.LineAddr(l))
		}
	}
	b.End()
	tr := trace.NewTrace(b.Finish())

	cfg := DefaultConfig()
	cfg.BurstLength = 26 * 40 // adapt early in the run
	cf := NewCountingSink(nil)
	p := NewPolicy(SoftCacheOnline, cfg, cf)
	RunSeq(p, tr.Threads[0])

	rep := p.(SizeReporter).AdaptReport()
	if !rep.Adapted {
		t.Fatal("controller did not adapt")
	}
	if rep.ChosenSize < 26 || rep.ChosenSize > 50 {
		t.Fatalf("chosen size %d, want within [26,50]", rep.ChosenSize)
	}
	if rep.InitialSize != 8 {
		t.Errorf("initial size %d, want default 8", rep.InitialSize)
	}
	// With the adapted size the total flush count must be far below the
	// thrashing baseline (which would be ~1 flush per store).
	total := cf.Stats().Total()
	stores := int64(tr.Threads[0].NumWrites())
	if total > stores/4 {
		t.Fatalf("flushes %d of %d stores: adaptation ineffective", total, stores)
	}
}

func TestSoftCacheOnlineShortTraceAdaptsAtFinish(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstLength = 1 << 20 // longer than the trace
	tr := buildTrace([]trace.LineAddr{1, 2, 1, 2, 1, 2})
	cf := NewCountingSink(nil)
	p := NewPolicy(SoftCacheOnline, cfg, cf)
	RunSeq(p, tr.Threads[0])
	rep := p.(SizeReporter).AdaptReport()
	if !rep.Adapted {
		t.Fatal("Finish did not trigger adaptation on short trace")
	}
	if rep.AnalyzedWrites != 6 {
		t.Errorf("AnalyzedWrites = %d", rep.AnalyzedWrites)
	}
}

func TestSoftCacheOfflinePresetSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PresetSize = 23
	p := NewPolicy(SoftCacheOffline, cfg, NewCountingSink(nil))
	rep := p.(SizeReporter).AdaptReport()
	if rep.ChosenSize != 23 || rep.Online {
		t.Fatalf("report = %+v", rep)
	}
	if p.(*softCachePolicy).CacheSize() != 23 {
		t.Fatal("preset size not applied")
	}
}

func TestPolicyKindStrings(t *testing.T) {
	want := map[PolicyKind]string{
		Eager: "ER", Lazy: "LA", AtlasTable: "AT",
		SoftCacheOnline: "SC", SoftCacheOffline: "SC-offline", Best: "BEST",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if len(AllPolicyKinds()) != 6 {
		t.Errorf("AllPolicyKinds: %v", AllPolicyKinds())
	}
}

// Write-back completeness (DESIGN.md invariant 5): for every sound policy,
// by the end of each FASE every line stored in that FASE has been flushed
// at least once since the FASE began.
func TestQuickWriteBackCompleteness(t *testing.T) {
	kinds := []PolicyKind{Eager, Lazy, AtlasTable, SoftCacheOnline, SoftCacheOffline}
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		tr := randomFASETrace(rng, 1+rng.Intn(8), 30, 12)
		s := tr.Threads[0]
		for _, kind := range kinds {
			cfg := DefaultConfig()
			cfg.BurstLength = 16
			cfg.PresetSize = 1 + rng.Intn(6)
			rf := &RecordingSink{}
			p := NewPolicy(kind, cfg, rf)
			for i := 0; i < s.NumFASEs(); i++ {
				asyncMark, drainMark := len(rf.AsyncLines), len(rf.DrainLines)
				p.FASEBegin()
				stored := make(map[trace.LineAddr]struct{})
				for _, l := range s.FASE(i) {
					p.Store(l)
					stored[l] = struct{}{}
				}
				p.FASEEnd()
				flushed := make(map[trace.LineAddr]struct{})
				for _, l := range rf.AsyncLines[asyncMark:] {
					flushed[l] = struct{}{}
				}
				for _, l := range rf.DrainLines[drainMark:] {
					flushed[l] = struct{}{}
				}
				for l := range stored {
					if _, ok := flushed[l]; !ok {
						return false
					}
				}
			}
			p.Finish()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Flush-count ordering (DESIGN.md invariant 4): LA is the lower bound for
// every sound policy; ER is the upper bound.
func TestQuickPolicyFlushOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		tr := randomFASETrace(rng, 1+rng.Intn(10), 40, 15)
		cfg := DefaultConfig()
		cfg.BurstLength = 64
		la := FlushRatio(Lazy, cfg, tr)
		er := FlushRatio(Eager, cfg, tr)
		at := FlushRatio(AtlasTable, cfg, tr)
		sc := FlushRatio(SoftCacheOnline, cfg, tr)
		sco := FlushRatio(SoftCacheOffline, cfg, tr)
		if er != 1 {
			return false
		}
		const eps = 1e-12
		for _, r := range []float64{at, sc, sco} {
			if r < la-eps || r > er+eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The LA lower bound equals the trace's per-FASE distinct-line count.
func TestQuickLazyEqualsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		tr := randomFASETrace(rng, 1+rng.Intn(10), 40, 15)
		st := trace.ComputeStats(tr)
		want := float64(st.LAFlushes) / float64(st.TotalWrites)
		return FlushRatio(Lazy, DefaultConfig(), tr) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// recordingDevice is a minimal Flusher device capturing forwarded calls.
type recordingDevice struct {
	async []trace.LineAddr
	drain []trace.LineAddr
}

func (d *recordingDevice) FlushAsync(line trace.LineAddr) { d.async = append(d.async, line) }
func (d *recordingDevice) FlushDrain(lines []trace.LineAddr) {
	d.drain = append(d.drain, lines...)
}

func TestCountingSinkForwarding(t *testing.T) {
	inner := &recordingDevice{}
	outer := NewCountingSink(inner)
	outer.FlushLine(4)
	outer.Drain([]trace.LineAddr{5, 6})
	outer.Drain(nil)
	st := outer.Stats()
	if st.Async != 1 || st.Drained != 2 || st.Barriers != 1 || st.Total() != 3 {
		t.Fatalf("stats %+v", st)
	}
	if len(inner.async) != 1 || len(inner.drain) != 2 {
		t.Fatal("forwarding broken")
	}
	outer.Reset()
	if outer.Stats().Total() != 0 {
		t.Fatal("Reset failed")
	}
}
