package core

import (
	"sync"
	"time"

	"nvmcache/internal/trace"
)

// This file is the asynchronous batched flush pipeline: the seam that turns
// "FlushLine runs on the mutator" into "FlushLine enqueues; a background
// worker persists in batches". The paper's premise is that eviction
// write-backs overlap with computation while only FASE-end drains stall the
// mutator; FlushPipeline realizes that overlap in wall-clock time instead of
// only in the hwsim cycle model.

// BatchSink is the batched extension of FlushSink: FlushBatch persists a
// group of lines in one call, letting the sink amortize per-call costs
// (pmem takes each stripe lock once per batch; hwsim retires the batch in
// one scheduling pass). Counting semantics match len(lines) FlushLine calls.
type BatchSink interface {
	FlushSink
	FlushBatch(lines []trace.LineAddr)
}

// CaptureSink is the capture extension of FlushSink, required for a sink to
// be drained from a goroutine other than the mutator. CaptureLine snapshots
// a line's current volatile contents into dst (len ≥ trace.LineSize) on the
// mutator; ApplyBatch and DrainCaptured later persist those snapshots from
// any goroutine without reading the volatile plane. data holds len(lines)
// consecutive trace.LineSize-byte images. DrainCaptured additionally counts
// the FASE-end barrier (like Drain, a barrier only when lines is empty).
type CaptureSink interface {
	FlushSink
	CaptureLine(line trace.LineAddr, dst []byte)
	ApplyBatch(lines []trace.LineAddr, data []byte)
	DrainCaptured(lines []trace.LineAddr, data []byte)
}

// Epoch identifies one published drain point of a FlushPipeline. Epoch e is
// persisted once every flush enqueued before its publication has reached
// the inner sink and the inner sink's drain barrier has completed.
type Epoch uint64

// PipelineConfig configures a FlushPipeline.
type PipelineConfig struct {
	// Enabled turns the pipeline on. The zero value keeps the historical
	// synchronous sink behavior (no pipeline is constructed at all).
	Enabled bool
	// Depth is the ring capacity in pending line flushes. A full ring
	// applies backpressure: the mutator blocks until the worker frees a
	// slot (the paper's bounded-stall property, made explicit). Default 256.
	Depth int
	// BatchSize caps how many async lines the worker hands to the inner
	// sink per FlushBatch/ApplyBatch call. Default 64.
	BatchSize int
	// Synchronous runs the pipeline without a background worker: entries
	// are processed inline on the mutator with identical batching. The
	// fault-injection explorer uses this mode so site numbering stays
	// deterministic; it is also the degenerate mode for single-goroutine
	// equivalence tests.
	Synchronous bool
	// OnEnqueue, if set, runs on the mutator for every line handed to the
	// pipeline (async and drain entries alike) before it is enqueued. The
	// fault injector numbers pipeline hand-off sites here. The hook runs
	// outside the pipeline lock and may panic (injected crashes).
	OnEnqueue func(line trace.LineAddr)
}

func (c PipelineConfig) withDefaults() PipelineConfig {
	if c.Depth <= 0 {
		c.Depth = 256
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BatchSize > c.Depth {
		c.BatchSize = c.Depth
	}
	return c
}

// pipeline entry kinds.
const (
	peAsync = iota // a mid-FASE flush (eviction / eager store)
	peDrain        // a FASE-end drain line
	peEpoch        // epoch marker: everything before it must persist
)

type pipeEntry struct {
	line trace.LineAddr
	kind uint8
	data [trace.LineSize]byte // volatile snapshot (capture sinks only)
}

// pipeBatchBuckets is the number of power-of-two batch-size histogram
// buckets: bucket i counts batches of 2^i .. 2^(i+1)-1 lines.
const pipeBatchBuckets = 8

// FlushPipeline is a bounded ring of pending line flushes drained by a
// background worker, with monotonically increasing epochs. It implements
// FlushSink so it slots between a policy and any inner sink:
//
//	policy → FlushPipeline → pmem.Sink / hwsim.Sink / CountingSink
//
// FlushLine enqueues (blocking only on a full ring); Drain publishes an
// epoch and awaits its persistence. When the inner sink implements
// CaptureSink the line's volatile contents are snapshotted at enqueue time
// on the mutator, so the worker never races mutator stores; otherwise the
// worker forwards addresses only (counting/device sinks).
//
// One pipeline serves one mutator goroutine (the single-writer-per-line
// discipline of the runtime); Stats and Await may be called from others.
type FlushPipeline struct {
	inner FlushSink
	capt  CaptureSink // non-nil iff inner captures
	batch BatchSink   // non-nil iff inner batches (and capt is nil)
	cfg   PipelineConfig

	mu        sync.Mutex
	notFull   sync.Cond
	notEmpty  sync.Cond
	epochCond sync.Cond
	ring      []pipeEntry
	effDepth  int // backpressure bound ≤ len(ring); see SetDepth
	head      int // index of oldest entry
	count     int
	published uint64
	persisted uint64
	closed    bool
	aborted   bool

	// deferMode redirects the next Drain into publish-without-await; only
	// the owning mutator touches these (see DeferNextDrain).
	deferMode  bool
	deferEpoch Epoch
	deferSet   bool

	// instrumentation, guarded by mu.
	pstats    pipeStats
	batchHist [pipeBatchBuckets]int64

	// worker scratch, reused across batches (worker-only).
	batchLines []trace.LineAddr
	batchData  []byte
	drainLines []trace.LineAddr
	drainData  []byte

	workerDone chan struct{}
}

type pipeStats struct {
	batches    int64
	batchLines int64
	batchMax   int64
	epochs     int64
	depthMax   int64
	stalls     int64
	stallNanos int64
	awaitNanos int64
}

// NewFlushPipeline wraps inner in a pipeline. Unless cfg.Synchronous, a
// background worker goroutine starts immediately; Close (or Abort) stops it.
func NewFlushPipeline(inner FlushSink, cfg PipelineConfig) *FlushPipeline {
	cfg = cfg.withDefaults()
	p := &FlushPipeline{
		inner:    inner,
		cfg:      cfg,
		ring:     make([]pipeEntry, cfg.Depth),
		effDepth: cfg.Depth,
	}
	if cs, ok := inner.(CaptureSink); ok {
		p.capt = cs
	} else if bs, ok := inner.(BatchSink); ok {
		p.batch = bs
	}
	p.notFull.L = &p.mu
	p.notEmpty.L = &p.mu
	p.epochCond.L = &p.mu
	p.batchLines = make([]trace.LineAddr, 0, cfg.BatchSize)
	if p.capt != nil {
		p.batchData = make([]byte, 0, cfg.BatchSize*trace.LineSize)
	}
	if !cfg.Synchronous {
		p.workerDone = make(chan struct{})
		go p.worker()
	}
	return p
}

// FlushLine implements FlushSink: enqueue an async write-back. Blocks only
// when the ring is full (backpressure).
func (p *FlushPipeline) FlushLine(line trace.LineAddr) {
	if p.cfg.OnEnqueue != nil {
		p.cfg.OnEnqueue(line)
	}
	p.mu.Lock()
	p.enqueueLocked(line, peAsync)
	p.mu.Unlock()
}

// Drain implements FlushSink: publish an epoch covering lines and every
// previously enqueued flush, then await its persistence. Under
// DeferNextDrain the await is skipped and the epoch recorded instead.
func (p *FlushPipeline) Drain(lines []trace.LineAddr) {
	e := p.Publish(lines)
	if p.deferMode {
		p.deferEpoch, p.deferSet = e, true
		return
	}
	p.Await(e)
}

// Publish enqueues lines as drain entries followed by an epoch marker and
// returns the new epoch without waiting. The marker orders after every
// entry enqueued so far: awaiting the epoch guarantees all of them reached
// the inner sink and its drain barrier completed.
func (p *FlushPipeline) Publish(lines []trace.LineAddr) Epoch {
	if p.cfg.OnEnqueue != nil {
		for _, l := range lines {
			p.cfg.OnEnqueue(l)
		}
	}
	p.mu.Lock()
	for _, l := range lines {
		p.enqueueLocked(l, peDrain)
	}
	p.published++
	e := Epoch(p.published)
	p.enqueueLocked(0, peEpoch)
	p.pstats.epochs++
	if p.cfg.Synchronous {
		p.processAllLocked()
	}
	p.mu.Unlock()
	return e
}

// Await blocks until epoch e is persisted (or the pipeline is aborted).
func (p *FlushPipeline) Await(e Epoch) {
	p.mu.Lock()
	if p.persisted < uint64(e) && !p.aborted {
		start := time.Now()
		for p.persisted < uint64(e) && !p.aborted {
			p.epochCond.Wait()
		}
		p.pstats.awaitNanos += time.Since(start).Nanoseconds()
	}
	p.mu.Unlock()
}

// Persisted returns the newest persisted epoch.
func (p *FlushPipeline) Persisted() Epoch {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Epoch(p.persisted)
}

// Aborted reports whether the pipeline was torn down by Abort (the crash
// path): pending epochs will never persist and enqueues are dropped.
func (p *FlushPipeline) Aborted() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.aborted
}

// DeferNextDrain arms defer mode: the next Drain publishes its epoch but
// does not await it. TakeDeferred disarms and returns that epoch. The pair
// lets a caller (atlas FASEPublish) route a policy's FASE-end Drain into an
// overlap-friendly publish without changing the policy interface. Owner
// goroutine only.
func (p *FlushPipeline) DeferNextDrain() {
	p.deferMode = true
	p.deferSet = false
}

// TakeDeferred disarms defer mode. If no Drain happened while armed (a
// policy with nothing to drain), it publishes a bare epoch so the caller
// still gets a persistence point covering all earlier flushes.
func (p *FlushPipeline) TakeDeferred() Epoch {
	p.deferMode = false
	if p.deferSet {
		p.deferSet = false
		return p.deferEpoch
	}
	return p.Publish(nil)
}

// Stats implements FlushSink: the inner sink's counts plus pipeline
// instrumentation.
func (p *FlushPipeline) Stats() FlushStats {
	s := p.inner.Stats()
	p.mu.Lock()
	s.PipeBatches += p.pstats.batches
	s.PipeBatchLines += p.pstats.batchLines
	if p.pstats.batchMax > s.PipeBatchMax {
		s.PipeBatchMax = p.pstats.batchMax
	}
	s.PipeEpochs += p.pstats.epochs
	if p.pstats.depthMax > s.PipeDepthMax {
		s.PipeDepthMax = p.pstats.depthMax
	}
	s.PipeStalls += p.pstats.stalls
	s.PipeStallNanos += p.pstats.stallNanos
	s.PipeAwaitNanos += p.pstats.awaitNanos
	p.mu.Unlock()
	return s
}

// SetDepth retargets the backpressure bound: enqueues block once d entries
// are pending. The ring's storage stays at its construction capacity, so d
// is clamped to [1, cfg.Depth]; raising the bound releases any mutator
// blocked on backpressure. Safe from any goroutine — the adaptive
// controller calls it while the owning mutator is storing.
func (p *FlushPipeline) SetDepth(d int) {
	if d < 1 {
		d = 1
	}
	p.mu.Lock()
	if d > len(p.ring) {
		d = len(p.ring)
	}
	p.effDepth = d
	p.notFull.Broadcast()
	p.mu.Unlock()
}

// Depth returns the backpressure bound currently in effect.
func (p *FlushPipeline) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.effDepth
}

// BatchSizes returns the batch-size histogram: bucket i counts worker
// batches of 2^i ≤ lines < 2^(i+1) (last bucket open-ended).
func (p *FlushPipeline) BatchSizes() [pipeBatchBuckets]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batchHist
}

// Close drains every pending entry through the inner sink, then stops the
// worker. The pipeline must not be used afterwards.
func (p *FlushPipeline) Close() {
	p.mu.Lock()
	if p.closed || p.aborted {
		p.mu.Unlock()
		p.waitWorker()
		return
	}
	p.closed = true
	if p.cfg.Synchronous {
		p.processAllLocked()
		p.mu.Unlock()
		return
	}
	p.notEmpty.Broadcast()
	p.mu.Unlock()
	p.waitWorker()
}

// Abort discards every pending entry and stops the worker without flushing:
// the crash path. Blocked enqueuers and awaiters are released. Safe to call
// from any goroutine once the mutator has stopped issuing flushes.
func (p *FlushPipeline) Abort() {
	p.mu.Lock()
	if p.aborted {
		p.mu.Unlock()
		p.waitWorker()
		return
	}
	p.aborted = true
	p.head, p.count = 0, 0
	p.notEmpty.Broadcast()
	p.notFull.Broadcast()
	p.epochCond.Broadcast()
	p.mu.Unlock()
	p.waitWorker()
}

func (p *FlushPipeline) waitWorker() {
	if p.workerDone != nil {
		<-p.workerDone
	}
}

// enqueueLocked appends one entry, capturing the line image when the inner
// sink supports it. Blocks while the ring is full (async mode) or processes
// inline to make room (synchronous mode).
func (p *FlushPipeline) enqueueLocked(line trace.LineAddr, kind uint8) {
	if p.aborted {
		return // crash path: flushes after abort are dropped
	}
	if p.count >= p.effDepth {
		if p.cfg.Synchronous {
			for p.count >= p.effDepth {
				p.processChunkLocked()
			}
		} else {
			p.pstats.stalls++
			start := time.Now()
			for p.count >= p.effDepth && !p.aborted {
				p.notFull.Wait()
			}
			p.pstats.stallNanos += time.Since(start).Nanoseconds()
			if p.aborted {
				return
			}
		}
	}
	slot := (p.head + p.count) % len(p.ring)
	e := &p.ring[slot]
	e.line, e.kind = line, kind
	if p.capt != nil && kind != peEpoch {
		p.capt.CaptureLine(line, e.data[:])
	}
	p.count++
	if int64(p.count) > p.pstats.depthMax {
		p.pstats.depthMax = int64(p.count)
	}
	if !p.cfg.Synchronous {
		p.notEmpty.Signal()
	}
}

// worker is the background drain loop.
func (p *FlushPipeline) worker() {
	defer close(p.workerDone)
	p.mu.Lock()
	for {
		for p.count == 0 && !p.closed && !p.aborted {
			p.notEmpty.Wait()
		}
		if p.aborted || (p.closed && p.count == 0) {
			p.mu.Unlock()
			return
		}
		p.processChunkLocked()
	}
}

// processChunkLocked pops and applies one contiguous run from the ring
// head: either an async batch (≤ BatchSize lines → one FlushBatch /
// ApplyBatch), or a drain group ending in its epoch marker (→ one Drain /
// DrainCaptured + epoch advance). The inner sink runs with mu released;
// freed slots are signalled before the flush so a backpressured mutator
// overlaps with it. Returns with mu held.
func (p *FlushPipeline) processChunkLocked() {
	// Async run first.
	for p.count > 0 && p.ring[p.head].kind == peAsync && len(p.batchLines) < p.cfg.BatchSize {
		p.popLocked(&p.batchLines, &p.batchData)
	}
	if n := len(p.batchLines); n > 0 {
		p.pstats.batches++
		p.pstats.batchLines += int64(n)
		if int64(n) > p.pstats.batchMax {
			p.pstats.batchMax = int64(n)
		}
		p.batchHist[batchBucket(n)]++
		p.notFull.Broadcast()
		p.mu.Unlock()
		p.applyAsync()
		p.mu.Lock()
		p.batchLines = p.batchLines[:0]
		p.batchData = p.batchData[:0]
		return
	}
	// Drain group: accumulate lines until the epoch marker arrives (the
	// publisher enqueues lines and marker atomically, but the ring may be
	// smaller than the group, in which case we pop what is here, free the
	// space, and come back for the rest).
	popped := false
	for p.count > 0 && p.ring[p.head].kind == peDrain {
		p.popLocked(&p.drainLines, &p.drainData)
		popped = true
	}
	if p.count > 0 && p.ring[p.head].kind == peEpoch {
		p.head = (p.head + 1) % len(p.ring)
		p.count--
		p.notFull.Broadcast()
		p.mu.Unlock()
		p.applyDrain()
		p.mu.Lock()
		p.drainLines = p.drainLines[:0]
		p.drainData = p.drainData[:0]
		if !p.aborted {
			p.persisted++
			p.epochCond.Broadcast()
		}
		return
	}
	if popped {
		p.notFull.Broadcast()
	}
}

// popLocked moves the head entry's line (and captured image) into the
// worker scratch.
func (p *FlushPipeline) popLocked(lines *[]trace.LineAddr, data *[]byte) {
	e := &p.ring[p.head]
	*lines = append(*lines, e.line)
	if p.capt != nil {
		*data = append(*data, e.data[:]...)
	}
	p.head = (p.head + 1) % len(p.ring)
	p.count--
}

func (p *FlushPipeline) applyAsync() {
	switch {
	case p.capt != nil:
		p.capt.ApplyBatch(p.batchLines, p.batchData)
	case p.batch != nil:
		p.batch.FlushBatch(p.batchLines)
	default:
		for _, l := range p.batchLines {
			p.inner.FlushLine(l)
		}
	}
}

func (p *FlushPipeline) applyDrain() {
	if p.capt != nil {
		p.capt.DrainCaptured(p.drainLines, p.drainData)
		return
	}
	p.inner.Drain(p.drainLines)
}

// processAllLocked (synchronous mode) runs the ring dry.
func (p *FlushPipeline) processAllLocked() {
	for p.count > 0 {
		p.processChunkLocked()
	}
}

func batchBucket(n int) int {
	b := 0
	for n > 1 && b < pipeBatchBuckets-1 {
		n >>= 1
		b++
	}
	return b
}
