package core

import "nvmcache/internal/trace"

// atlasPolicy reimplements the persistence table of Atlas (Chakrabarti et
// al., OOPSLA'14), the paper's state-of-the-art baseline (Section II-A):
// a small fixed-size table recording the addresses of modified cache
// blocks. The paper characterizes it as "equivalent to a direct-mapped,
// fixed size cache": upon a write, if the line's address already occupies
// its slot nothing happens (the write combines); if the slot holds a
// different address, that address is flushed and replaced; the whole table
// is flushed at the end of a FASE.
type atlasPolicy struct {
	sink     FlushSink
	slots    []trace.LineAddr
	occupied []bool
}

func newAtlasPolicy(cfg Config, sink FlushSink) *atlasPolicy {
	n := cfg.AtlasTableSize
	if n < 1 {
		n = 8
	}
	return &atlasPolicy{
		sink:     sink,
		slots:    make([]trace.LineAddr, n),
		occupied: make([]bool, n),
	}
}

func (p *atlasPolicy) Kind() PolicyKind { return AtlasTable }

// slotOf maps a line to its direct-mapped slot. Atlas indexes by the
// low-order bits of the cache-line address; sequential lines therefore
// occupy distinct slots, which is what gives AT its 15/16 write combining
// on streaming workloads (Section IV-B, persistent-array).
func (p *atlasPolicy) slotOf(line trace.LineAddr) int {
	return int(uint64(line) % uint64(len(p.slots)))
}

func (p *atlasPolicy) Store(line trace.LineAddr) {
	i := p.slotOf(line)
	if p.occupied[i] {
		if p.slots[i] == line {
			return // combined
		}
		p.sink.FlushLine(p.slots[i]) // conflict eviction
	}
	p.slots[i] = line
	p.occupied[i] = true
}

func (p *atlasPolicy) FASEBegin() {}

func (p *atlasPolicy) FASEEnd() {
	var lines []trace.LineAddr
	for i, occ := range p.occupied {
		if occ {
			lines = append(lines, p.slots[i])
			p.occupied[i] = false
		}
	}
	p.sink.Drain(lines)
}

func (p *atlasPolicy) Finish() { p.FASEEnd() }
