package core

import (
	"sync/atomic"

	"nvmcache/internal/trace"
)

// FlushStats aggregates write-back counts: the data of Table III. The Pipe*
// fields are populated only when flushes route through a FlushPipeline;
// they stay zero under the synchronous sinks.
type FlushStats struct {
	// Async counts mid-FASE flushes (evictions, eager stores), which can
	// overlap with computation.
	Async int64
	// Drained counts FASE-end flushes, which stall the CPU.
	Drained int64
	// Barriers counts empty drains (pure waits).
	Barriers int64

	// PipeBatches counts batches the pipeline worker handed to the inner
	// sink; PipeBatchLines is the total lines across them (avg batch size =
	// PipeBatchLines / PipeBatches) and PipeBatchMax the largest batch.
	PipeBatches    int64
	PipeBatchLines int64
	PipeBatchMax   int64
	// PipeEpochs counts published epochs (one per pipelined drain).
	PipeEpochs int64
	// PipeDepthMax is the deepest ring occupancy observed.
	PipeDepthMax int64
	// PipeStalls counts enqueues that blocked on a full ring
	// (backpressure); PipeStallNanos is the mutator time spent blocked.
	PipeStalls     int64
	PipeStallNanos int64
	// PipeAwaitNanos is the mutator time spent awaiting epoch persistence
	// (the pipelined analogue of the drain stall).
	PipeAwaitNanos int64
}

// Total returns all line flushes (excluding pure barriers).
func (s FlushStats) Total() int64 { return s.Async + s.Drained }

// Add returns the element-wise sum (maxima for the PipeBatchMax and
// PipeDepthMax watermarks).
func (s FlushStats) Add(o FlushStats) FlushStats {
	out := FlushStats{
		Async:          s.Async + o.Async,
		Drained:        s.Drained + o.Drained,
		Barriers:       s.Barriers + o.Barriers,
		PipeBatches:    s.PipeBatches + o.PipeBatches,
		PipeBatchLines: s.PipeBatchLines + o.PipeBatchLines,
		PipeBatchMax:   s.PipeBatchMax,
		PipeEpochs:     s.PipeEpochs + o.PipeEpochs,
		PipeDepthMax:   s.PipeDepthMax,
		PipeStalls:     s.PipeStalls + o.PipeStalls,
		PipeStallNanos: s.PipeStallNanos + o.PipeStallNanos,
		PipeAwaitNanos: s.PipeAwaitNanos + o.PipeAwaitNanos,
	}
	if o.PipeBatchMax > out.PipeBatchMax {
		out.PipeBatchMax = o.PipeBatchMax
	}
	if o.PipeDepthMax > out.PipeDepthMax {
		out.PipeDepthMax = o.PipeDepthMax
	}
	return out
}

// CountingSink counts flushes and nothing else: the flush-ratio instrument
// behind Table III. It optionally forwards to a Flusher device, which is
// how policies are bridged onto internal/hwsim's cycle model. Counters are
// atomic so Stats can be read while the owning thread is storing; the
// forwarded device calls stay single-threaded (one sink per policy per
// thread).
type CountingSink struct {
	async    atomic.Int64
	drained  atomic.Int64
	barriers atomic.Int64
	next     Flusher
}

// NewCountingSink returns a sink that only counts. Pass a non-nil next to
// also forward every operation to a flush device.
func NewCountingSink(next Flusher) *CountingSink {
	return &CountingSink{next: next}
}

// FlushLine implements FlushSink.
func (c *CountingSink) FlushLine(line trace.LineAddr) {
	c.async.Add(1)
	if c.next != nil {
		c.next.FlushAsync(line)
	}
}

// FlushBatch implements BatchSink: counts len(lines) async flushes and
// forwards the batch to the device in one call when it supports batching.
func (c *CountingSink) FlushBatch(lines []trace.LineAddr) {
	c.async.Add(int64(len(lines)))
	if c.next == nil {
		return
	}
	if bf, ok := c.next.(BatchFlusher); ok {
		bf.FlushBatch(lines)
		return
	}
	for _, l := range lines {
		c.next.FlushAsync(l)
	}
}

// Drain implements FlushSink.
func (c *CountingSink) Drain(lines []trace.LineAddr) {
	if len(lines) == 0 {
		c.barriers.Add(1)
	}
	c.drained.Add(int64(len(lines)))
	if c.next != nil {
		c.next.FlushDrain(lines)
	}
}

// Stats implements FlushSink. Safe to call concurrently with FlushLine and
// Drain from the owning thread.
func (c *CountingSink) Stats() FlushStats {
	return FlushStats{Async: c.async.Load(), Drained: c.drained.Load(), Barriers: c.barriers.Load()}
}

// Reset zeroes the counters.
func (c *CountingSink) Reset() {
	c.async.Store(0)
	c.drained.Store(0)
	c.barriers.Store(0)
}

// RecordingSink additionally records the flushed line addresses in order;
// tests use it to assert exactly which lines were written back. Unlike the
// embedded CountingSink's counters, the line slices are not synchronized —
// single-goroutine use only.
type RecordingSink struct {
	CountingSink
	AsyncLines []trace.LineAddr
	DrainLines []trace.LineAddr
}

// FlushLine implements FlushSink.
func (r *RecordingSink) FlushLine(line trace.LineAddr) {
	r.CountingSink.FlushLine(line)
	r.AsyncLines = append(r.AsyncLines, line)
}

// FlushBatch implements BatchSink.
func (r *RecordingSink) FlushBatch(lines []trace.LineAddr) {
	r.CountingSink.FlushBatch(lines)
	r.AsyncLines = append(r.AsyncLines, lines...)
}

// Drain implements FlushSink.
func (r *RecordingSink) Drain(lines []trace.LineAddr) {
	r.CountingSink.Drain(lines)
	r.DrainLines = append(r.DrainLines, lines...)
}

// AllLines returns every flushed line in a single slice (async first).
func (r *RecordingSink) AllLines() []trace.LineAddr {
	out := make([]trace.LineAddr, 0, len(r.AsyncLines)+len(r.DrainLines))
	out = append(out, r.AsyncLines...)
	out = append(out, r.DrainLines...)
	return out
}

// FlushRatio runs a policy kind over a trace with a counting sink and
// returns flushes / stores: one cell of Table III. Each thread gets its own
// policy instance, as in the paper's per-thread design.
func FlushRatio(kind PolicyKind, cfg Config, t *trace.Trace) float64 {
	var stores, flushes int64
	for _, s := range t.Threads {
		cs := NewCountingSink(nil)
		RunSeq(NewPolicy(kind, cfg, cs), s)
		stores += int64(s.NumWrites())
		flushes += cs.Stats().Total()
	}
	if stores == 0 {
		return 0
	}
	return float64(flushes) / float64(stores)
}
