package core

import "nvmcache/internal/trace"

// FlushStats aggregates write-back counts: the data of Table III.
type FlushStats struct {
	// Async counts mid-FASE flushes (evictions, eager stores), which can
	// overlap with computation.
	Async int64
	// Drained counts FASE-end flushes, which stall the CPU.
	Drained int64
	// Barriers counts empty drains (pure waits).
	Barriers int64
}

// Total returns all line flushes (excluding pure barriers).
func (s FlushStats) Total() int64 { return s.Async + s.Drained }

// CountingFlusher counts flushes and nothing else: the flush-ratio
// instrument behind Table III. It optionally forwards to another Flusher.
type CountingFlusher struct {
	stats FlushStats
	next  Flusher
}

// NewCountingFlusher returns a flusher that only counts. Pass a non-nil
// next to also forward every operation (e.g. to a pmem heap).
func NewCountingFlusher(next Flusher) *CountingFlusher {
	return &CountingFlusher{next: next}
}

// FlushAsync implements Flusher.
func (c *CountingFlusher) FlushAsync(line trace.LineAddr) {
	c.stats.Async++
	if c.next != nil {
		c.next.FlushAsync(line)
	}
}

// FlushDrain implements Flusher.
func (c *CountingFlusher) FlushDrain(lines []trace.LineAddr) {
	if len(lines) == 0 {
		c.stats.Barriers++
	}
	c.stats.Drained += int64(len(lines))
	if c.next != nil {
		c.next.FlushDrain(lines)
	}
}

// Stats returns the counts so far.
func (c *CountingFlusher) Stats() FlushStats { return c.stats }

// Reset zeroes the counters.
func (c *CountingFlusher) Reset() { c.stats = FlushStats{} }

// RecordingFlusher additionally records the flushed line addresses in
// order; tests use it to assert exactly which lines were written back.
type RecordingFlusher struct {
	CountingFlusher
	AsyncLines []trace.LineAddr
	DrainLines []trace.LineAddr
}

// FlushAsync implements Flusher.
func (r *RecordingFlusher) FlushAsync(line trace.LineAddr) {
	r.CountingFlusher.FlushAsync(line)
	r.AsyncLines = append(r.AsyncLines, line)
}

// FlushDrain implements Flusher.
func (r *RecordingFlusher) FlushDrain(lines []trace.LineAddr) {
	r.CountingFlusher.FlushDrain(lines)
	r.DrainLines = append(r.DrainLines, lines...)
}

// AllLines returns every flushed line in a single slice (async first).
func (r *RecordingFlusher) AllLines() []trace.LineAddr {
	out := make([]trace.LineAddr, 0, len(r.AsyncLines)+len(r.DrainLines))
	out = append(out, r.AsyncLines...)
	out = append(out, r.DrainLines...)
	return out
}

// FlushRatio runs a policy kind over a trace with a counting flusher and
// returns flushes / stores: one cell of Table III. Each thread gets its own
// policy instance, as in the paper's per-thread design.
func FlushRatio(kind PolicyKind, cfg Config, t *trace.Trace) float64 {
	var stores, flushes int64
	for _, s := range t.Threads {
		cf := NewCountingFlusher(nil)
		RunSeq(NewPolicy(kind, cfg, cf), s)
		stores += int64(s.NumWrites())
		flushes += cf.Stats().Total()
	}
	if stores == 0 {
		return 0
	}
	return float64(flushes) / float64(stores)
}
