// Package core implements the paper's primary contribution: the per-thread,
// fully associative, LRU, resizable write-combining software cache
// (Section II-B), the six persistence policies evaluated in Section IV
// (eager, lazy, Atlas table, software cache online and offline, and the
// no-flush upper bound), and the adaptive capacity controller that couples
// the cache to the bursty MRC sampler and knee selection of Section III.
//
// Policies communicate with the outside world only through the Flusher
// interface, so the same policy code runs under the cycle-accurate flush
// engine of internal/hwsim, the real persistent heap of internal/pmem, or
// the plain counting flusher used for flush-ratio experiments.
package core

import (
	"fmt"

	"nvmcache/internal/trace"
)

// node is one entry of the write cache: an intrusive doubly linked list
// node owned by the cache's freelist-backed arena.
type node struct {
	line       trace.LineAddr
	prev, next *node
}

// WriteCache is the software cache of Section II-B: a hash map plus a
// doubly linked list storing cache-line *addresses* (never data — the data
// itself stays in the hardware cache; the software cache only defers and
// combines flushes). All operations are O(1). The zero value is not usable;
// call NewWriteCache.
type WriteCache struct {
	capacity int
	entries  map[trace.LineAddr]*node
	head     *node            // most recently used
	tail     *node            // least recently used
	free     *node            // freelist of recycled nodes
	scratch  []trace.LineAddr // reused by Drain/Resize (hot path, one per FASE)
}

// NewWriteCache returns an empty cache with the given capacity (minimum 1).
func NewWriteCache(capacity int) *WriteCache {
	if capacity < 1 {
		capacity = 1
	}
	return &WriteCache{
		capacity: capacity,
		entries:  make(map[trace.LineAddr]*node, capacity*2),
	}
}

// Len returns the number of buffered line addresses.
func (c *WriteCache) Len() int { return len(c.entries) }

// Capacity returns the current capacity.
func (c *WriteCache) Capacity() int { return c.capacity }

// Contains reports whether the line is buffered, without touching LRU order.
func (c *WriteCache) Contains(line trace.LineAddr) bool {
	_, ok := c.entries[line]
	return ok
}

// Access records a write to line. If the line is already buffered the write
// is combined (hit: the flush it would have caused is saved) and the line
// becomes most recently used. Otherwise the line is inserted; if the cache
// was full the least recently used line is evicted and returned for
// flushing.
func (c *WriteCache) Access(line trace.LineAddr) (hit bool, evicted trace.LineAddr, hasEvict bool) {
	if n, ok := c.entries[line]; ok {
		c.moveToFront(n)
		return true, 0, false
	}
	if len(c.entries) >= c.capacity {
		evicted = c.evictLRU()
		hasEvict = true
	}
	n := c.alloc(line)
	c.entries[line] = n
	c.pushFront(n)
	return false, evicted, hasEvict
}

// Drain removes and returns all buffered lines in LRU-to-MRU order,
// emptying the cache. Called at the end of a FASE — the hot path — so the
// returned slice is a cache-owned scratch buffer, valid only until the next
// Drain or Resize call. Returns nil when the cache is empty.
func (c *WriteCache) Drain() []trace.LineAddr {
	if len(c.entries) == 0 {
		return nil
	}
	out := c.scratch[:0]
	for n := c.tail; n != nil; n = n.prev {
		out = append(out, n.line)
	}
	c.scratch = out
	c.Clear()
	return out
}

// Clear empties the cache without reporting the entries (used when the
// lines are known to be persisted already).
func (c *WriteCache) Clear() {
	for n := c.head; n != nil; {
		next := n.next
		c.release(n)
		n = next
	}
	c.head, c.tail = nil, nil
	clear(c.entries)
}

// Resize changes the capacity. Shrinking below the current occupancy evicts
// least recently used lines, which are returned for flushing. Like Drain,
// the returned slice is the cache-owned scratch buffer, valid only until
// the next Drain or Resize call; nil when nothing is evicted.
func (c *WriteCache) Resize(capacity int) []trace.LineAddr {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	if len(c.entries) <= c.capacity {
		return nil
	}
	out := c.scratch[:0]
	for len(c.entries) > c.capacity {
		out = append(out, c.evictLRU())
	}
	c.scratch = out
	return out
}

// Lines returns the buffered lines MRU-first, for diagnostics and tests.
func (c *WriteCache) Lines() []trace.LineAddr {
	out := make([]trace.LineAddr, 0, len(c.entries))
	for n := c.head; n != nil; n = n.next {
		out = append(out, n.line)
	}
	return out
}

// checkInvariants validates internal consistency; tests call it after
// randomized operation sequences.
func (c *WriteCache) checkInvariants() error {
	count := 0
	var prev *node
	for n := c.head; n != nil; n = n.next {
		if n.prev != prev {
			return fmt.Errorf("wcache: broken prev link at %v", n.line)
		}
		if m, ok := c.entries[n.line]; !ok || m != n {
			return fmt.Errorf("wcache: list node %v missing from map", n.line)
		}
		prev = n
		count++
	}
	if c.tail != prev {
		return fmt.Errorf("wcache: tail mismatch")
	}
	if count != len(c.entries) {
		return fmt.Errorf("wcache: list has %d nodes, map has %d", count, len(c.entries))
	}
	if count > c.capacity {
		return fmt.Errorf("wcache: occupancy %d exceeds capacity %d", count, c.capacity)
	}
	return nil
}

func (c *WriteCache) alloc(line trace.LineAddr) *node {
	n := c.free
	if n != nil {
		c.free = n.next
		n.next = nil
	} else {
		n = &node{}
	}
	n.line = line
	return n
}

func (c *WriteCache) release(n *node) {
	n.prev = nil
	n.next = c.free
	c.free = n
}

func (c *WriteCache) pushFront(n *node) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *WriteCache) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *WriteCache) moveToFront(n *node) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *WriteCache) evictLRU() trace.LineAddr {
	n := c.tail
	c.unlink(n)
	line := n.line
	delete(c.entries, line)
	c.release(n)
	return line
}
