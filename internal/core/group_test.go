package core

import (
	"sync"
	"testing"

	"nvmcache/internal/trace"
)

// cyclicSeq builds one thread's trace: fases sections, each sweeping a
// ws-line working set passes times.
func cyclicSeq(thread int32, ws, passes, fases int) *trace.ThreadSeq {
	b := trace.NewBuilder(thread)
	for f := 0; f < fases; f++ {
		b.Begin()
		for p := 0; p < passes; p++ {
			for l := 0; l < ws; l++ {
				b.Store(trace.LineAddr(l))
			}
		}
		b.End()
	}
	return b.Finish()
}

func TestGroupedAdaptationPropagates(t *testing.T) {
	const threads, ws = 4, 20
	cfg := DefaultConfig()
	cfg.BurstLength = ws * 30
	flushers := make([]FlushSink, threads)
	counters := make([]*CountingSink, threads)
	for i := range flushers {
		counters[i] = NewCountingSink(nil)
		flushers[i] = counters[i]
	}
	policies := NewGroupedPolicies(cfg, flushers)
	if len(policies) != threads {
		t.Fatalf("policies: %d", len(policies))
	}

	// Many moderate FASEs so followers hit adoption points early.
	seqs := make([]*trace.ThreadSeq, threads)
	for i := range seqs {
		seqs[i] = cyclicSeq(int32(i), ws, 30, 40)
	}

	// The leader finishes first (deterministic publication); the followers
	// then run concurrently with each other, adopting the published size
	// at their FASE boundaries.
	RunSeq(policies[0], seqs[0])
	var wg sync.WaitGroup
	for i := 1; i < len(policies); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			RunSeq(policies[i], seqs[i])
		}(i)
	}
	wg.Wait()

	leader := policies[0].(SizeReporter).AdaptReport()
	if !leader.Adapted || leader.ChosenSize < ws || leader.ChosenSize > 50 {
		t.Fatalf("leader report %+v", leader)
	}
	if leader.AnalyzedWrites == 0 {
		t.Fatal("leader did no analysis")
	}
	for i := 1; i < threads; i++ {
		rep := policies[i].(SizeReporter).AdaptReport()
		if rep.AnalyzedWrites != 0 {
			t.Errorf("follower %d analyzed %d writes; grouping should cost one analysis", i, rep.AnalyzedWrites)
		}
		// Followers adopt the size at the first FASE boundary after the
		// leader publishes; from then on they combine within FASEs, so
		// their flush counts must land well below thrashing (1 per store)
		// even counting the pre-adoption prefix.
		stores := int64(seqs[i].NumWrites())
		if fl := counters[i].Stats().Total(); fl > stores/2 {
			t.Errorf("follower %d flushed %d of %d stores", i, fl, stores)
		}
		if rep.ChosenSize < ws {
			t.Errorf("follower %d never adopted the group size (capacity %d)", i, rep.ChosenSize)
		}
	}
}

func TestGroupedFollowerAdoptsAtFASEBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BurstLength = 64
	lead := NewCountingSink(nil)
	foll := &RecordingSink{}
	policies := NewGroupedPolicies(cfg, []FlushSink{lead, foll})

	// Leader runs first (sequential here): samples a 20-line working set
	// and publishes its choice.
	RunSeq(policies[0], cyclicSeq(0, 20, 50, 1))
	leaderRep := policies[0].(SizeReporter).AdaptReport()
	if !leaderRep.Adapted {
		t.Fatal("leader did not adapt")
	}

	// Follower with many small FASEs: before its first FASE it still has
	// the default capacity; at FASEBegin it must adopt the group size.
	f := policies[1].(*groupFollowerPolicy)
	if f.cache.Capacity() != 8 {
		t.Fatalf("follower capacity %d before any FASE", f.cache.Capacity())
	}
	f.FASEBegin()
	if f.cache.Capacity() != leaderRep.ChosenSize {
		t.Fatalf("follower capacity %d, want leader's %d", f.cache.Capacity(), leaderRep.ChosenSize)
	}
	rep := f.AdaptReport()
	if !rep.Adapted || rep.ChosenSize != leaderRep.ChosenSize {
		t.Fatalf("follower report %+v", rep)
	}
}

func TestGroupedShrinkFlushesEvictions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Knee.DefaultSize = 10
	rf := &RecordingSink{}
	policies := NewGroupedPolicies(cfg, []FlushSink{NewCountingSink(nil), rf})
	f := policies[1].(*groupFollowerPolicy)
	f.FASEBegin()
	for l := trace.LineAddr(0); l < 10; l++ {
		f.Store(l)
	}
	// Simulate the leader publishing a smaller size mid-run.
	f.group.publish(3, AdaptReport{})
	f.FASEEnd() // drain
	f.FASEBegin()
	if f.cache.Capacity() != 3 {
		t.Fatalf("capacity %d after shrink", f.cache.Capacity())
	}
	for l := trace.LineAddr(0); l < 10; l++ {
		f.Store(l)
	}
	f.FASEEnd()
	f.Finish()
	// 10 lines through a 3-entry cache: evictions must have been flushed
	// asynchronously and the rest drained — completeness preserved.
	seen := map[trace.LineAddr]bool{}
	for _, l := range rf.AllLines() {
		seen[l] = true
	}
	for l := trace.LineAddr(0); l < 10; l++ {
		if !seen[l] {
			t.Fatalf("line %d never flushed after shrink", l)
		}
	}
}
