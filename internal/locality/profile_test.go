package locality

import (
	"math"
	"testing"
)

func TestProfileBurstMatchesGlue(t *testing.T) {
	burst := []uint64{1, 2, 3, 1, 2, 3, 4, 5, 1, 1}
	const maxSize = 10
	p := ProfileBurst(burst, maxSize)
	want := MRCFromReuse(ReuseAll(burst), maxSize)
	if len(p.MRC.Miss) != len(want.Miss) {
		t.Fatalf("curve length %d, want %d", len(p.MRC.Miss), len(want.Miss))
	}
	for c := range want.Miss {
		if p.MRC.Miss[c] != want.Miss[c] {
			t.Fatalf("Miss[%d] = %v, want %v", c, p.MRC.Miss[c], want.Miss[c])
		}
	}
	// 5 distinct lines, 5 reuses out of 10 writes.
	if p.WorkingSet != 5 {
		t.Errorf("WorkingSet = %v, want 5", p.WorkingSet)
	}
	if p.Hotness != 0.5 {
		t.Errorf("Hotness = %v, want 0.5", p.Hotness)
	}
	if p.Writes != 10 || p.Bursts != 1 {
		t.Errorf("Writes/Bursts = %d/%d, want 10/1", p.Writes, p.Bursts)
	}
}

func TestProfileBurstEmpty(t *testing.T) {
	p := ProfileBurst(nil, 4)
	if p.WorkingSet != 0 || p.Hotness != 0 || p.Writes != 0 {
		t.Fatalf("empty burst profile = %+v", p)
	}
	for c, m := range p.MRC.Miss {
		if m != 1 {
			t.Fatalf("Miss[%d] = %v, want 1", c, m)
		}
	}
}

func TestAccumulatorFirstAddIsUnblended(t *testing.T) {
	a := NewAccumulator(0.5, 8)
	if a.Profile() != nil {
		t.Fatal("fresh accumulator has a profile")
	}
	burst := []uint64{1, 1, 2, 2}
	got := a.Add(burst)
	want := ProfileBurst(burst, 8)
	for c := range want.MRC.Miss {
		if got.MRC.Miss[c] != want.MRC.Miss[c] {
			t.Fatalf("Miss[%d] = %v, want %v", c, got.MRC.Miss[c], want.MRC.Miss[c])
		}
	}
	if got.WorkingSet != want.WorkingSet || got.Hotness != want.Hotness {
		t.Fatalf("scalars %v/%v, want %v/%v", got.WorkingSet, got.Hotness, want.WorkingSet, want.Hotness)
	}
}

func TestAccumulatorBlends(t *testing.T) {
	const maxSize = 6
	hot := []uint64{1, 1, 1, 1, 1, 1, 1, 1}  // working set 1, hotness 7/8
	cold := []uint64{1, 2, 3, 4, 5, 6, 7, 8} // working set 8, hotness 0
	p1 := ProfileBurst(hot, maxSize)
	p2 := ProfileBurst(cold, maxSize)

	a := NewAccumulator(0.5, maxSize)
	a.Add(hot)
	got := a.Add(cold)
	for c := range got.MRC.Miss {
		want := 0.5*p1.MRC.Miss[c] + 0.5*p2.MRC.Miss[c]
		if math.Abs(got.MRC.Miss[c]-want) > 1e-12 {
			t.Fatalf("Miss[%d] = %v, want %v", c, got.MRC.Miss[c], want)
		}
	}
	if want := 0.5*p1.WorkingSet + 0.5*p2.WorkingSet; math.Abs(got.WorkingSet-want) > 1e-12 {
		t.Errorf("WorkingSet = %v, want %v", got.WorkingSet, want)
	}
	if want := 0.5*p1.Hotness + 0.5*p2.Hotness; math.Abs(got.Hotness-want) > 1e-12 {
		t.Errorf("Hotness = %v, want %v", got.Hotness, want)
	}
	if got.Writes != 16 || got.Bursts != 2 {
		t.Errorf("Writes/Bursts = %d/%d, want 16/2", got.Writes, got.Bursts)
	}
	// A convex combination of non-increasing curves stays non-increasing.
	for c := 1; c < len(got.MRC.Miss); c++ {
		if got.MRC.Miss[c] > got.MRC.Miss[c-1]+1e-12 {
			t.Fatalf("blended curve not monotone at %d", c)
		}
	}
}

func TestAccumulatorTracksPhaseChange(t *testing.T) {
	// Repeatedly feeding the cold burst must converge the blend toward the
	// cold profile (geometric decay of the hot history).
	const maxSize = 6
	hot := []uint64{1, 1, 1, 1, 1, 1, 1, 1}
	cold := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	pc := ProfileBurst(cold, maxSize)
	a := NewAccumulator(0.5, maxSize)
	a.Add(hot)
	var got *Profile
	for i := 0; i < 20; i++ {
		got = a.Add(cold)
	}
	if math.Abs(got.Hotness-pc.Hotness) > 1e-4 {
		t.Errorf("Hotness = %v did not converge to %v", got.Hotness, pc.Hotness)
	}
	if math.Abs(got.WorkingSet-pc.WorkingSet) > 1e-3 {
		t.Errorf("WorkingSet = %v did not converge to %v", got.WorkingSet, pc.WorkingSet)
	}
}
