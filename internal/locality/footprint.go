package locality

// Footprint implements Xiang et al.'s average working-set size fp(k)
// (HOTL, ASPLOS'13), Eq. 4 in the paper:
//
//	fp(k) = m - 1/(n-k+1) · [ Σ_i (f_i − k) I(f_i > k)
//	                        + Σ_i ((n − l_i + 1) − k) I(n − l_i + 1 > k)
//	                        + Σ_{t>k} (t − k) · cnt(rt = t) ]
//
// where m is the number of distinct data, f_i / l_i the first / last access
// times of datum i, and cnt(rt = t) the number of accesses whose reuse time
// (gap to the previous access of the same datum) equals t.
//
// The paper's central identity (Eq. 5) is reuse(k) + fp(k) = k; the test
// suite checks it exactly on arbitrary traces, which cross-validates the
// two completely different computations.

// FootprintCurve holds fp(k) for every k = 0..n of one sequence.
type FootprintCurve struct {
	N  int
	M  int // number of distinct data
	Fp []float64
}

// FootprintAll computes fp(k) for all k in O(n + m) using histograms of
// first-access times, reversed last-access times, and reuse times, each
// reduced with suffix sums.
func FootprintAll(seq []uint64) *FootprintCurve {
	n := len(seq)
	fc := &FootprintCurve{N: n, Fp: make([]float64, n+1)}
	if n == 0 {
		return fc
	}
	first := make(map[uint64]int, 1024)
	last := make(map[uint64]int, 1024)
	// histF[v] counts data with first access time v; histL[v] counts data
	// with reversed last time n-l+1 = v; histR[t] counts reuse time t.
	histF := make([]int64, n+2)
	histL := make([]int64, n+2)
	histR := make([]int64, n+2)
	for i, a := range seq {
		t := i + 1
		if p, ok := last[a]; ok {
			histR[t-p]++
		} else {
			first[a] = t
		}
		last[a] = t
	}
	for _, f := range first {
		histF[f]++
	}
	for _, l := range last {
		histL[n-l+1]++
	}
	fc.M = len(first)

	// For each histogram h, term(k) = Σ_{v>k} (v-k)·h[v] = S(k) − k·C(k)
	// with suffix count C(k) = Σ_{v>k} h[v] and sum S(k) = Σ_{v>k} v·h[v],
	// both built by one reverse scan.
	termOf := func(h []int64) []float64 {
		out := make([]float64, n+1)
		var c, s int64
		for k := n; k >= 0; k-- {
			// extend suffix to include v = k+1
			if k+1 <= n+1 {
				c += h[k+1]
				s += int64(k+1) * h[k+1]
			}
			out[k] = float64(s) - float64(k)*float64(c)
		}
		return out
	}
	tF := termOf(histF)
	tL := termOf(histL)
	tR := termOf(histR)
	for k := 1; k <= n; k++ {
		fc.Fp[k] = float64(fc.M) - (tF[k]+tL[k]+tR[k])/float64(n-k+1)
	}
	return fc
}

// footprintBrute computes fp(k) by enumerating all windows — the defining
// formula, used only in tests.
func footprintBrute(seq []uint64, k int) float64 {
	n := len(seq)
	if k < 1 || k > n {
		return 0
	}
	var total int64
	seen := make(map[uint64]struct{}, k)
	for w := 0; w+k <= n; w++ {
		clear(seen)
		for _, a := range seq[w : w+k] {
			seen[a] = struct{}{}
		}
		total += int64(len(seen))
	}
	return float64(total) / float64(n-k+1)
}
