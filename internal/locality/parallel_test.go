package locality

import (
	"nvmcache/internal/testutil"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParallelMatchesSequentialSmall(t *testing.T) {
	for _, s := range [][]uint64{
		nil,
		{1},
		{1, 1, 1},
		seqOf("abb"),
		seqOf("abcabcabc"),
	} {
		for _, workers := range []int{1, 2, 3, 8} {
			a := ReuseAll(s)
			b := ReuseAllParallel(s, workers)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d trace=%v: parallel differs", workers, s)
			}
		}
	}
}

// Property: the parallel analysis is bit-exact with the sequential one on
// arbitrary traces and worker counts, including cross-chunk reuse.
func TestQuickParallelBitExact(t *testing.T) {
	f := func(seed int64, w8 uint8) bool {
		rng := testutil.Rand(t, seed)
		n := 1 + rng.Intn(500)
		vocab := 1 + rng.Intn(12)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(vocab))
		}
		workers := 1 + int(w8)%7
		return reflect.DeepEqual(ReuseAll(s), ReuseAllParallel(s, workers))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCrossChunkIntervals(t *testing.T) {
	// A trace whose only reuse spans nearly its whole length: the interval
	// must be found by the boundary reconciliation, not any chunk.
	s := make([]uint64, 100)
	for i := range s {
		s[i] = uint64(1000 + i)
	}
	s[0], s[99] = 7, 7
	for _, workers := range []int{2, 4, 7} {
		if !reflect.DeepEqual(ReuseAll(s), ReuseAllParallel(s, workers)) {
			t.Fatalf("workers=%d: cross-chunk interval mishandled", workers)
		}
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	s := seqOf("abababab")
	if !reflect.DeepEqual(ReuseAll(s), ReuseAllParallel(s, 0)) {
		t.Fatal("default worker count differs")
	}
	// More workers than elements must clamp, not crash.
	if !reflect.DeepEqual(ReuseAll(s[:2]), ReuseAllParallel(s[:2], 64)) {
		t.Fatal("worker clamp broken")
	}
}

// On multi-core hosts the parallel version approaches a per-core speedup
// (the hash probes dominate and shard perfectly); on a single-core host it
// only exposes the interval-materialization overhead. The benchmark exists
// to measure that trade-off wherever it runs.
func BenchmarkReuseAllParallel(b *testing.B) {
	rng := testutil.Rand(b, 3)
	s := make([]uint64, 1<<21)
	for i := range s {
		s[i] = uint64(rng.Intn(1 << 13))
	}
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(8 * len(s)))
		for i := 0; i < b.N; i++ {
			ReuseAll(s)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.SetBytes(int64(8 * len(s)))
		for i := 0; i < b.N; i++ {
			ReuseAllParallel(s, 0)
		}
	})
}
