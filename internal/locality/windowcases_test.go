package locality

import "testing"

// Figure 3 of the paper enumerates four cases for counting the k-length
// windows that enclose a reuse interval [s, e] in a trace of n accesses:
// the internal case and three boundary cases. These tests pin each case
// against a hand-counted value, independent of the brute-force comparison
// (which exercises them in aggregate).

// countWindows counts k-windows enclosing [s, e] in a length-n trace by
// enumeration: the defining quantity of Eq. 2.
func countWindows(n, k, s, e int) int {
	count := 0
	for w := 1; w+k-1 <= n; w++ {
		if w <= s && w+k-1 >= e {
			count++
		}
	}
	return count
}

// traceWithInterval builds a length-n trace whose only reuse interval is
// [s, e] (same datum at positions s and e, all others distinct).
func traceWithInterval(n, s, e int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(1000 + i)
	}
	out[s-1] = 7
	out[e-1] = 7
	return out
}

func checkInterval(t *testing.T, name string, n, s, e int) {
	t.Helper()
	seq := traceWithInterval(n, s, e)
	rc := ReuseAll(seq)
	for k := 1; k <= n; k++ {
		want := int64(countWindows(n, k, s, e))
		if rc.Totals[k] != want {
			t.Errorf("%s: n=%d [s=%d,e=%d] k=%d: total %d, want %d",
				name, n, s, e, k, rc.Totals[k], want)
		}
	}
}

func TestWindowCountingCase1Internal(t *testing.T) {
	// Case 1: s ≥ k and e ≤ n−k+1 for mid-range k: the interval sits far
	// from both trace ends. Count = k − (e−s) + 1.
	checkInterval(t, "internal", 40, 15, 20)
	// Spot-check the closed form in its validity region: with window
	// starts w ∈ [e−k+1, s], the count is k − (e−s). (The paper's Figure 3
	// writes k − (e−s) + 1 under its convention that a window of "length
	// k" spans k+1 accesses; this repository counts k accesses per
	// window, as Eq. 1's n−k+1 window count implies.)
	rc := ReuseAll(traceWithInterval(40, 15, 20))
	for k := 6; k <= 15; k++ { // k ≥ L=6, unclipped while k ≤ s and e ≤ n−k+1
		want := int64(k - (20 - 15))
		if rc.Totals[k] != want {
			t.Errorf("closed form: k=%d total %d want %d", k, rc.Totals[k], want)
		}
	}
}

func TestWindowCountingCase2LeftBoundary(t *testing.T) {
	// Interval near the start: window starts are clipped at 1.
	checkInterval(t, "left", 40, 2, 6)
}

func TestWindowCountingCase3RightBoundary(t *testing.T) {
	// Interval near the end: window starts are clipped at n−k+1.
	checkInterval(t, "right", 40, 35, 39)
}

func TestWindowCountingCase4BothBoundaries(t *testing.T) {
	// Short trace, wide interval: both clippings bind.
	checkInterval(t, "both", 10, 2, 9)
	checkInterval(t, "whole", 6, 1, 6)
}

func TestWindowCountingAdjacentAndExtremes(t *testing.T) {
	checkInterval(t, "adjacent", 12, 5, 6)   // shortest possible interval
	checkInterval(t, "first-two", 12, 1, 2)  // at the very start
	checkInterval(t, "last-two", 12, 11, 12) // at the very end
	checkInterval(t, "span-all", 12, 1, 12)  // only the full window counts
}
