package locality

import (
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"
)

func TestReuseDistanceSmall(t *testing.T) {
	// "abab": third access (a) has distance 1, fourth (b) distance 1.
	h := ReuseDistance(seqOf("abab"))
	if h.Cold != 2 {
		t.Fatalf("Cold = %d", h.Cold)
	}
	if len(h.Counts) != 2 || h.Counts[0] != 0 || h.Counts[1] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if h.MaxDistance() != 1 {
		t.Fatalf("MaxDistance = %d", h.MaxDistance())
	}
}

func TestReuseDistanceAllSame(t *testing.T) {
	h := ReuseDistance(seqOf("aaaa"))
	if h.Cold != 1 || h.Counts[0] != 3 {
		t.Fatalf("hist %+v", h)
	}
}

func TestReuseDistanceNoReuse(t *testing.T) {
	h := ReuseDistance(seqOf("abcdef"))
	if h.Cold != 6 || len(h.Counts) != 0 {
		t.Fatalf("hist %+v", h)
	}
	if h.MaxDistance() != -1 {
		t.Fatalf("MaxDistance = %d", h.MaxDistance())
	}
	if h.Hits(100) != 0 {
		t.Fatal("phantom hits")
	}
}

func TestReuseDistanceEmpty(t *testing.T) {
	h := ReuseDistance(nil)
	if h.N != 0 || h.Cold != 0 {
		t.Fatalf("hist %+v", h)
	}
	if mr := h.MRC(4); mr.At(4) != 1 {
		t.Fatal("empty MRC not all-miss")
	}
}

// The exact-histogram MRC must agree with the bounded-stack simulation on
// every capacity both cover.
func TestQuickReuseDistanceMatchesStackSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		n := 1 + rng.Intn(400)
		s := make([]uint64, n)
		vocab := 1 + rng.Intn(30)
		for i := range s {
			s[i] = uint64(rng.Intn(vocab))
		}
		const maxSize = 24
		a := ReuseDistance(s).MRC(maxSize)
		b := StackDistanceMRC(s, maxSize)
		for c := 0; c <= maxSize; c++ {
			if diff := a.At(c) - b.At(c); diff > 1e-12 || diff < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cold count equals the number of distinct data; total counts plus cold
// equals N; hits are monotone in capacity.
func TestQuickReuseDistanceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		n := 1 + rng.Intn(300)
		s := make([]uint64, n)
		distinct := map[uint64]bool{}
		for i := range s {
			s[i] = uint64(rng.Intn(20))
			distinct[s[i]] = true
		}
		h := ReuseDistance(s)
		if h.Cold != int64(len(distinct)) {
			return false
		}
		var total int64
		for _, c := range h.Counts {
			total += c
		}
		if total+h.Cold != h.N {
			return false
		}
		prev := int64(-1)
		for c := 0; c <= 25; c++ {
			hits := h.Hits(c)
			if hits < prev {
				return false
			}
			prev = hits
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The exact reuse-distance MRC and the timescale-converted MRC must agree
// on cyclic workloads (the reuse-window hypothesis regime).
func TestReuseDistanceVsTimescaleConversion(t *testing.T) {
	s := make([]uint64, 0, 4000)
	for pass := 0; pass < 200; pass++ {
		for l := 0; l < 20; l++ {
			s = append(s, uint64(l))
		}
	}
	exact := ReuseDistance(s).MRC(50)
	conv := MRCFromReuse(ReuseAll(s), 50)
	for _, c := range []int{1, 10, 19, 21, 50} {
		diff := exact.At(c) - conv.At(c)
		if diff > 0.08 || diff < -0.08 {
			t.Errorf("capacity %d: exact %v conv %v", c, exact.At(c), conv.At(c))
		}
	}
	// Both select the working-set knee.
	cfg := DefaultKneeConfig()
	if a, b := SelectSize(exact, cfg), SelectSize(conv, cfg); a != b {
		t.Errorf("selection disagrees: exact %d, converted %d", a, b)
	}
}

func BenchmarkReuseDistanceExact(b *testing.B) {
	rng := testutil.Rand(b, 3)
	s := make([]uint64, 1<<20)
	for i := range s {
		s[i] = uint64(rng.Intn(4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReuseDistance(s)
	}
	b.SetBytes(int64(len(s) * 8))
}
