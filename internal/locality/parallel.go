package locality

import (
	"runtime"
	"sync"
)

// Parallel all-window reuse analysis, in the spirit of PARDA (Niu et al.,
// IPDPS'12 — the paper's Section V cites parallelization as the way to
// scale locality measurement). The sequential ReuseAll is linear, but the
// paper's full-scale bursts are 64M writes; this version splits the trace
// into chunks, extracts chunk-local reuse intervals and per-datum
// first/last occurrences in parallel, reconciles cross-chunk intervals
// with one sequential sweep over the (much smaller) per-chunk summaries,
// and reduces the per-worker difference arrays. The result is bit-exact
// with ReuseAll.

// chunkSummary is one worker's output: the chunk's internal reuse
// intervals (cheap to apply sequentially — three array updates each) plus
// per-datum first/last occurrences for boundary reconciliation. The
// expensive part of the analysis — one hash probe per access — happens in
// the workers.
type chunkSummary struct {
	intervals []Interval
	// first/last occurrence (1-based global times) of each datum in the
	// chunk, in first-occurrence order for determinism.
	order []uint64
	first map[uint64]int
	last  map[uint64]int
}

// ReuseAllParallel computes the same curve as ReuseAll using up to
// workers goroutines (≤ 0 means GOMAXPROCS).
func ReuseAllParallel(seq []uint64, workers int) *ReuseCurve {
	n := len(seq)
	rc := &ReuseCurve{N: n, Reuse: make([]float64, n+1), Totals: make([]int64, n+1)}
	if n == 0 {
		return rc
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// addInterval applies the Figure 3 case analysis to a difference
	// array (identical to the accumulation in ReuseAll).
	addInterval := func(d2 []int64, s, e int) {
		p1 := e - s + 1
		lo, hi := e, n-s+1
		if lo > hi {
			lo, hi = hi, lo
		}
		d2[p1]++
		if lo+1 <= n+1 {
			d2[lo+1]--
		}
		if hi+1 <= n+1 {
			d2[hi+1]--
		}
	}

	chunks := make([]chunkSummary, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			cs := chunkSummary{
				first: make(map[uint64]int, hi-lo),
				last:  make(map[uint64]int, hi-lo),
			}
			for i := lo; i < hi; i++ {
				a := seq[i]
				t := i + 1
				if prev, ok := cs.last[a]; ok {
					cs.intervals = append(cs.intervals, Interval{prev, t})
				} else {
					cs.first[a] = t
					cs.order = append(cs.order, a)
				}
				cs.last[a] = t
			}
			chunks[w] = cs
		}(w)
	}
	wg.Wait()

	// Sequential epilogue. First the boundary reconciliation: intervals
	// that cross chunk boundaries connect a datum's last occurrence in an
	// earlier chunk to its first occurrence in a later one — this touches
	// only per-chunk summaries (O(distinct) per chunk), not the trace.
	// Then every interval is applied to the difference array: three array
	// updates per interval, cheap next to the hashing the workers did.
	d2 := make([]int64, n+2)
	globalLast := make(map[uint64]int, len(chunks[0].last))
	for w := range chunks {
		cs := &chunks[w]
		for _, a := range cs.order {
			if prev, ok := globalLast[a]; ok {
				addInterval(d2, prev, cs.first[a])
			}
		}
		for a, t := range cs.last {
			globalLast[a] = t
		}
		for _, iv := range cs.intervals {
			addInterval(d2, iv.S, iv.E)
		}
	}

	var slope, total int64
	for k := 1; k <= n; k++ {
		slope += d2[k]
		total += slope
		rc.Totals[k] = total
		rc.Reuse[k] = float64(total) / float64(n-k+1)
	}
	return rc
}
