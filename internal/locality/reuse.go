// Package locality implements the paper's reuse-based timescale locality
// theory (Section III): the all-window reuse metric reuse(k) computed in
// linear time, Xiang et al.'s footprint fp(k), the duality
// reuse(k) + fp(k) = k, the HOTL conversion from reuse to cache hit/miss
// ratio, miss-ratio-curve construction, and the knee-based cache size
// selection the adaptive software cache uses at run time.
//
// All functions operate on renamed write sequences (see
// internal/trace.RenameFASEs): plain []uint64 address streams in which the
// FASE semantics has already been applied, so a reuse in the stream is
// exactly a combinable write in the write-combining cache.
package locality

// Interval is a reuse interval [S, E]: a write at time S (1-based) and the
// next write to the same datum at time E. Definition 1 in the paper.
type Interval struct {
	S, E int
}

// Intervals extracts all reuse intervals from a write sequence. Times are
// 1-based, matching the paper's window arithmetic.
func Intervals(seq []uint64) []Interval {
	last := make(map[uint64]int, 1024)
	var out []Interval
	for i, a := range seq {
		t := i + 1
		if s, ok := last[a]; ok {
			out = append(out, Interval{S: s, E: t})
		}
		last[a] = t
	}
	return out
}

// ReuseCurve holds reuse(k) for every timescale k = 0..n of one sequence.
type ReuseCurve struct {
	N int
	// Reuse[k] is reuse(k): the average number of intra-window reuses
	// over all windows of length k. Reuse[0] = 0.
	Reuse []float64
	// Totals[k] is the numerator of Eq. 1: the total number of
	// (window, enclosed interval) pairs at window length k.
	Totals []int64
}

// ReuseAll computes reuse(k) for all k in O(n + r) time using the
// window-counting case analysis of Figure 3. For one interval [s, e] with
// length L = e-s+1, the number of enclosing windows of length k is
//
//	count(k) = max(0, min(s, n-k+1) - max(1, e-k+1) + 1)
//
// which is 0 for k < L, rises with slope +1 on [L, min(e, n-s+1)], is flat
// on [min(e, n-s+1), max(e, n-s+1)], and falls with slope -1 until k = n
// (count 1). Each interval therefore contributes three slope changes to a
// second-difference array; two prefix sums then yield all totals at once.
func ReuseAll(seq []uint64) *ReuseCurve {
	n := len(seq)
	rc := &ReuseCurve{N: n, Reuse: make([]float64, n+1), Totals: make([]int64, n+1)}
	if n == 0 {
		return rc
	}
	// d2[k] holds slope changes entering window length k.
	d2 := make([]int64, n+2)
	last := make(map[uint64]int, 1024)
	for i, a := range seq {
		t := i + 1
		if s, ok := last[a]; ok {
			e := t
			p1 := e - s + 1 // slope +1 begins
			lo, hi := e, n-s+1
			if lo > hi {
				lo, hi = hi, lo
			}
			d2[p1]++ // count(p1) = 1, rising
			if lo+1 <= n+1 {
				d2[lo+1]-- // plateau
			}
			if hi+1 <= n+1 {
				d2[hi+1]-- // descent
			}
		}
		last[a] = t
	}
	var slope, total int64
	for k := 1; k <= n; k++ {
		slope += d2[k]
		total += slope
		rc.Totals[k] = total
		rc.Reuse[k] = float64(total) / float64(n-k+1)
	}
	return rc
}

// reuseBrute computes reuse(k) by enumerating every window of length k —
// the defining formula, O(n·k). Exported to tests via export_test.go.
func reuseBrute(seq []uint64, k int) float64 {
	n := len(seq)
	if k < 1 || k > n {
		return 0
	}
	intervals := Intervals(seq)
	var total int64
	for w := 1; w <= n-k+1; w++ {
		lo, hi := w, w+k-1
		for _, iv := range intervals {
			if iv.S >= lo && iv.E <= hi {
				total++
			}
		}
	}
	return float64(total) / float64(n-k+1)
}

// HitRatioCurve converts a reuse curve into (capacity, hit ratio) samples
// using Eq. 3: hr(c) = reuse(k+1) - reuse(k) at c = k - reuse(k). The
// capacities are real-valued and non-decreasing in k (they equal fp(k) by
// the duality of Eq. 5).
type HitRatioPoint struct {
	K        int     // timescale
	Capacity float64 // c = k - reuse(k) = fp(k)
	HitRatio float64 // reuse(k+1) - reuse(k)
}

// HitRatioPoints derives the hit ratio at every timescale k = 1..n-1.
func (rc *ReuseCurve) HitRatioPoints() []HitRatioPoint {
	if rc.N < 2 {
		return nil
	}
	pts := make([]HitRatioPoint, 0, rc.N-1)
	for k := 1; k < rc.N; k++ {
		hr := rc.Reuse[k+1] - rc.Reuse[k]
		if hr < 0 {
			hr = 0 // boundary-window noise at very large k
		}
		if hr > 1 {
			hr = 1
		}
		pts = append(pts, HitRatioPoint{
			K:        k,
			Capacity: float64(k) - rc.Reuse[k],
			HitRatio: hr,
		})
	}
	return pts
}
