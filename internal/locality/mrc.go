package locality

import (
	"fmt"
	"sort"
	"strings"
)

// MRC is a miss ratio curve over integer software-cache capacities:
// Miss[c] is the predicted (or measured) miss ratio of a fully associative
// LRU write-combining cache with capacity c lines, for c = 0..MaxSize().
// Miss[0] is always 1.
type MRC struct {
	Miss []float64
}

// MaxSize returns the largest capacity the curve covers.
func (m *MRC) MaxSize() int { return len(m.Miss) - 1 }

// At returns the miss ratio at capacity c, clamping to the curve's range.
func (m *MRC) At(c int) float64 {
	if c < 0 {
		c = 0
	}
	if c >= len(m.Miss) {
		c = len(m.Miss) - 1
	}
	return m.Miss[c]
}

// String renders the curve compactly for logs and the mrc command.
func (m *MRC) String() string {
	var b strings.Builder
	for c, mr := range m.Miss {
		fmt.Fprintf(&b, "%d\t%.6f\n", c, mr)
	}
	return b.String()
}

// MRCFromReuse converts a reuse curve to a miss ratio curve over integer
// capacities 0..maxSize using Eq. 3/6: the hit ratio at capacity
// c = k − reuse(k) is reuse(k+1) − reuse(k). Capacities between successive
// timescale samples inherit the hit ratio of the enclosing step; capacities
// beyond the largest observed footprint keep the final miss ratio.
func MRCFromReuse(rc *ReuseCurve, maxSize int) *MRC {
	mrc := &MRC{Miss: make([]float64, maxSize+1)}
	for i := range mrc.Miss {
		mrc.Miss[i] = 1
	}
	pts := rc.HitRatioPoints()
	if len(pts) == 0 {
		return mrc
	}
	// Capacity is non-decreasing in k. For each integer capacity pick the
	// first timescale whose capacity reaches it.
	c := 1
	best := make([]float64, maxSize+1)
	filled := make([]bool, maxSize+1)
	for _, p := range pts {
		for c <= maxSize && float64(c) <= p.Capacity {
			best[c] = p.HitRatio
			filled[c] = true
			c++
		}
		if c > maxSize {
			break
		}
	}
	lastHR := 0.0
	for i := 1; i <= maxSize; i++ {
		if filled[i] {
			lastHR = best[i]
		} else {
			// Capacity larger than any observed footprint: the cache never
			// fills, so every reuse hits; approximate with the last step.
			best[i] = lastHR
		}
		mrc.Miss[i] = 1 - best[i]
		// An MRC is non-increasing for LRU (stack inclusion); enforce it to
		// remove derivative noise from boundary windows.
		if mrc.Miss[i] > mrc.Miss[i-1] {
			mrc.Miss[i] = mrc.Miss[i-1]
		}
	}
	return mrc
}

// StackDistanceMRC measures the exact miss ratio curve of a fully
// associative LRU cache on a renamed sequence, for capacities 0..maxSize,
// by Mattson's stack algorithm. Because renamed addresses are unique per
// FASE, this equals the true software-cache behaviour including the
// FASE-end drain. Distances are only needed up to maxSize, so the stack is
// a bounded slice and each access costs O(maxSize).
func StackDistanceMRC(seq []uint64, maxSize int) *MRC {
	n := len(seq)
	mrc := &MRC{Miss: make([]float64, maxSize+1)}
	for i := range mrc.Miss {
		mrc.Miss[i] = 1
	}
	if n == 0 {
		return mrc
	}
	// hist[d] counts accesses with stack distance d (0-based: d existing
	// elements above it); hist[maxSize] aggregates "deeper or cold".
	hist := make([]int64, maxSize+1)
	stack := make([]uint64, 0, maxSize)
	for _, a := range seq {
		d := -1
		for i, x := range stack {
			if x == a {
				d = i
				break
			}
		}
		if d >= 0 {
			hist[d]++
			copy(stack[1:d+1], stack[:d]) // lift a to the top
		} else {
			hist[maxSize]++ // deeper than maxSize or cold: miss at all sizes
			if len(stack) < maxSize {
				stack = append(stack, 0)
			}
			copy(stack[1:], stack[:len(stack)-1])
		}
		if len(stack) == 0 {
			stack = append(stack, 0)
		}
		stack[0] = a
	}
	// A hit at capacity c occurs when stack distance < c.
	var hits int64
	for c := 1; c <= maxSize; c++ {
		hits += hist[c-1]
		mrc.Miss[c] = 1 - float64(hits)/float64(n)
	}
	return mrc
}

// KneeConfig controls cache size selection (Section III-C, "Cache Size
// Optimization").
type KneeConfig struct {
	// MaxSize bounds the capacity to limit the FASE-end drain stall. The
	// paper uses 50.
	MaxSize int
	// TopK is how many of the largest miss-ratio drops become knee
	// candidates. The paper picks "the top few"; 5 matches Figure 2's five
	// inflection points.
	TopK int
	// MinDrop is the smallest per-line miss-ratio decrease that counts as
	// an inflection; below it the curve is considered knee-free and
	// MaxSize is chosen.
	MinDrop float64
	// RelDrop additionally requires a candidate's decrease to be at least
	// this fraction of the curve's largest decrease, so that derivative
	// smear from reuse far beyond MaxSize (which the HOTL conversion
	// spreads over mid-range capacities) does not masquerade as a knee.
	RelDrop float64
	// DefaultSize is the capacity used before any MRC is available. The
	// paper uses 8.
	DefaultSize int
}

// DefaultKneeConfig returns the paper's constants: default size 8, maximum
// 50, five knee candidates.
func DefaultKneeConfig() KneeConfig {
	return KneeConfig{MaxSize: 50, TopK: 5, MinDrop: 1e-4, RelDrop: 0.02, DefaultSize: 8}
}

// Knees returns the candidate knee capacities of the curve: the TopK
// capacities with the largest miss-ratio decrease over the previous
// capacity, in increasing capacity order.
func Knees(m *MRC, cfg KneeConfig) []int {
	max := cfg.MaxSize
	if max > m.MaxSize() {
		max = m.MaxSize()
	}
	type drop struct {
		c int
		d float64
	}
	var maxDrop float64
	for c := 1; c <= max; c++ {
		if d := m.Miss[c-1] - m.Miss[c]; d > maxDrop {
			maxDrop = d
		}
	}
	floor := cfg.MinDrop
	if rel := cfg.RelDrop * maxDrop; rel > floor {
		floor = rel
	}
	drops := make([]drop, 0, max)
	for c := 1; c <= max; c++ {
		d := m.Miss[c-1] - m.Miss[c]
		if d >= floor {
			drops = append(drops, drop{c, d})
		}
	}
	sort.Slice(drops, func(i, j int) bool {
		if drops[i].d != drops[j].d {
			return drops[i].d > drops[j].d
		}
		return drops[i].c < drops[j].c
	})
	if len(drops) > cfg.TopK {
		drops = drops[:cfg.TopK]
	}
	out := make([]int, len(drops))
	for i, d := range drops {
		out[i] = d.c
	}
	sort.Ints(out)
	return out
}

// SelectSize picks the software-cache capacity from an MRC, implementing
// Section III-C / Figure 2's rule: "the knee that has the smallest cache
// miss ratio and is not overly large". Operationally that is the smallest
// capacity whose miss ratio comes within a small slack of the curve's
// terminal (best attainable) miss ratio — larger capacities only add
// FASE-end drain stall for no benefit, smaller ones leave combinable
// writes on the table. A curve with no drop of at least MinDrop anywhere
// is considered knee-free and selects the maximal size, as the paper
// specifies.
func SelectSize(m *MRC, cfg KneeConfig) int {
	max := cfg.MaxSize
	if max > m.MaxSize() {
		max = m.MaxSize()
	}
	var maxDrop float64
	for c := 1; c <= max; c++ {
		if d := m.Miss[c-1] - m.Miss[c]; d > maxDrop {
			maxDrop = d
		}
	}
	if maxDrop < cfg.MinDrop {
		return max // no obvious inflection point
	}
	knees := Knees(m, cfg)
	if len(knees) == 0 {
		return max
	}
	c := knees[len(knees)-1]
	tail := m.Miss[max]
	span := m.Miss[0] - tail
	// Beyond the last sharp knee the curve may keep a gradual but real
	// decline (MDB's page-reuse tail); extend only when the remaining
	// benefit is a substantial share of the whole curve, so that the HOTL
	// conversion's smear of out-of-range reuse is never chased.
	if m.Miss[c]-tail < 0.12*span {
		return c
	}
	slack := 0.1 * tail
	if s := 0.015 * span; s > slack {
		slack = s
	}
	if slack < cfg.MinDrop {
		slack = cfg.MinDrop
	}
	for ; c <= max; c++ {
		if m.Miss[c] <= tail+slack {
			return c
		}
	}
	return max
}
