package locality

import (
	"math"
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"
)

func seqOf(s string) []uint64 {
	out := make([]uint64, len(s))
	for i, c := range s {
		out[i] = uint64(c)
	}
	return out
}

func TestIntervals(t *testing.T) {
	iv := Intervals(seqOf("abab"))
	want := []Interval{{1, 3}, {2, 4}}
	if len(iv) != len(want) {
		t.Fatalf("got %v", iv)
	}
	for i := range want {
		if iv[i] != want[i] {
			t.Errorf("interval %d = %v, want %v", i, iv[i], want[i])
		}
	}
	if got := Intervals(seqOf("abc")); len(got) != 0 {
		t.Errorf("no-reuse trace produced intervals %v", got)
	}
	if got := Intervals(seqOf("aaa")); len(got) != 2 {
		t.Errorf("aaa: got %v", got)
	}
}

func TestReusePaperExampleABB(t *testing.T) {
	// Paper: trace "abb" has two windows of length 2 with 0 and 1 reuses:
	// reuse(2) = 1/2.
	rc := ReuseAll(seqOf("abb"))
	if got := rc.Reuse[2]; got != 0.5 {
		t.Errorf("reuse(2) = %v, want 0.5", got)
	}
	if got := rc.Reuse[1]; got != 0 {
		t.Errorf("reuse(1) = %v, want 0", got)
	}
	if got := rc.Reuse[3]; got != 1 {
		t.Errorf("reuse(3) = %v, want 1", got)
	}
}

func TestReuseABABPattern(t *testing.T) {
	// Paper Section III-B table for "abab...": reuse(2)=0, reuse(3)=1,
	// reuse(4)=2. These are exact for the infinite pattern and for any
	// finite repetition of it.
	s := make([]uint64, 0, 400)
	for i := 0; i < 200; i++ {
		s = append(s, 'a', 'b')
	}
	rc := ReuseAll(s)
	for _, c := range []struct {
		k    int
		want float64
	}{{1, 0}, {2, 0}, {3, 1}, {4, 2}} {
		if got := rc.Reuse[c.k]; math.Abs(got-c.want) > 1e-12 {
			t.Errorf("reuse(%d) = %v, want %v", c.k, got, c.want)
		}
	}
	// Eq. 3 example: hit ratio of cache size 2 is 1 (at k=3, c=3-1=2).
	pts := rc.HitRatioPoints()
	var found bool
	for _, p := range pts {
		if p.K == 3 {
			found = true
			if math.Abs(p.Capacity-2) > 1e-12 || math.Abs(p.HitRatio-1) > 1e-12 {
				t.Errorf("at k=3: capacity %v hr %v, want 2, 1", p.Capacity, p.HitRatio)
			}
		}
	}
	if !found {
		t.Fatal("no hit ratio point at k=3")
	}
}

func TestReuseAllMatchesBruteForce(t *testing.T) {
	rng := testutil.Rand(t, 7)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(40)
		vocab := 1 + rng.Intn(8)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(vocab))
		}
		rc := ReuseAll(s)
		for k := 1; k <= n; k++ {
			want := reuseBrute(s, k)
			if math.Abs(rc.Reuse[k]-want) > 1e-9 {
				t.Fatalf("trial %d, trace %v: reuse(%d) = %v, brute %v", trial, s, k, rc.Reuse[k], want)
			}
		}
	}
}

func TestReuseAllEdgeCases(t *testing.T) {
	rc := ReuseAll(nil)
	if rc.N != 0 || len(rc.Reuse) != 1 {
		t.Fatalf("empty: %+v", rc)
	}
	rc = ReuseAll([]uint64{5})
	if rc.Reuse[1] != 0 {
		t.Errorf("single access reuse(1) = %v", rc.Reuse[1])
	}
	// All-same trace "aaaa": reuse(k) = (k-1) exactly for any k: every
	// window of length k has k-1 reuses.
	rc = ReuseAll(seqOf("aaaaaaaa"))
	for k := 1; k <= 8; k++ {
		if got := rc.Reuse[k]; math.Abs(got-float64(k-1)) > 1e-12 {
			t.Errorf("aaaa...: reuse(%d) = %v, want %d", k, got, k-1)
		}
	}
}

func TestFootprintMatchesBruteForce(t *testing.T) {
	rng := testutil.Rand(t, 11)
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(40)
		vocab := 1 + rng.Intn(8)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(vocab))
		}
		fc := FootprintAll(s)
		for k := 1; k <= n; k++ {
			want := footprintBrute(s, k)
			if math.Abs(fc.Fp[k]-want) > 1e-9 {
				t.Fatalf("trial %d, trace %v: fp(%d) = %v, brute %v", trial, s, k, fc.Fp[k], want)
			}
		}
	}
}

// Property (Eq. 5): reuse(k) + fp(k) = k on arbitrary traces, for all k.
// The two sides are computed by entirely different linear-time algorithms
// (interval window counting vs first/last/reuse-time histograms), so this
// is a strong cross-validation of both.
func TestQuickDualityReusePlusFootprint(t *testing.T) {
	f := func(seed int64, vocab8 uint8) bool {
		rng := testutil.Rand(t, seed)
		n := 1 + rng.Intn(200)
		vocab := 1 + int(vocab8)%16
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(vocab))
		}
		rc := ReuseAll(s)
		fc := FootprintAll(s)
		for k := 1; k <= n; k++ {
			if math.Abs(rc.Reuse[k]+fc.Fp[k]-float64(k)) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: reuse(k) is non-decreasing in k (since reuse = k − fp and
// footprint grows by at most one per extra access) and reuse(k) ≤ k−1.
func TestQuickReuseMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		n := 2 + rng.Intn(150)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(6))
		}
		rc := ReuseAll(s)
		for k := 1; k <= n; k++ {
			if rc.Reuse[k]+1e-9 < rc.Reuse[k-1] {
				return false
			}
			if rc.Reuse[k] > float64(k-1)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkReuseAll(b *testing.B) {
	rng := testutil.Rand(b, 3)
	s := make([]uint64, 1<<20)
	for i := range s {
		s[i] = uint64(rng.Intn(4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReuseAll(s)
	}
	b.SetBytes(int64(len(s) * 8))
}

func BenchmarkFootprintAll(b *testing.B) {
	rng := testutil.Rand(b, 3)
	s := make([]uint64, 1<<20)
	for i := range s {
		s[i] = uint64(rng.Intn(4096))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FootprintAll(s)
	}
	b.SetBytes(int64(len(s) * 8))
}
