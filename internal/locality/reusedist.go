package locality

// Reuse distance (LRU stack distance, Mattson et al. 1970) is the paper's
// "access locality" alternative to timescale locality (Section III-A): it
// yields the exact miss ratio at every capacity, but costs more than
// linear time to measure — the asymptotic gap that motivates the paper's
// reuse(k) formulation. This file provides the classic O(n log n)
// Fenwick-tree (Bennett–Kruskal/Olken) measurement so the repository can
// (a) cross-check the timescale MRC against exact ground truth at every
// capacity, not just the bounded-stack range, and (b) benchmark the cost
// gap the paper argues from (BenchmarkAblationReuseVsStackDistance).

// RDHistogram is the distribution of exact stack distances of a sequence.
type RDHistogram struct {
	// Counts[d] is the number of accesses with stack distance d (d
	// distinct other data accessed since the previous access to the same
	// datum).
	Counts []int64
	// Cold counts first accesses (infinite distance).
	Cold int64
	// N is the total number of accesses.
	N int64
}

// fenwick is a 1-based binary indexed tree over time positions.
type fenwick struct{ tree []int64 }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int64, n+1)} }

func (f *fenwick) add(i int, v int64) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

// sum returns the prefix sum over [1, i].
func (f *fenwick) sum(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// ReuseDistance measures the exact stack distance of every access in
// O(n log n) time and O(n) space.
func ReuseDistance(seq []uint64) *RDHistogram {
	n := len(seq)
	h := &RDHistogram{N: int64(n)}
	if n == 0 {
		return h
	}
	// The tree marks, for each currently-seen datum, the position of its
	// most recent access. The number of marks after a datum's previous
	// access position is exactly its stack distance.
	bit := newFenwick(n)
	last := make(map[uint64]int, 1024)
	maxD := 0
	counts := make([]int64, 16)
	for i, a := range seq {
		t := i + 1
		if prev, ok := last[a]; ok {
			d := int(bit.sum(n) - bit.sum(prev))
			for d >= len(counts) {
				counts = append(counts, make([]int64, len(counts))...)
			}
			counts[d]++
			if d > maxD {
				maxD = d
			}
			bit.add(prev, -1)
		} else {
			h.Cold++
		}
		bit.add(t, 1)
		last[a] = t
	}
	h.Counts = counts[:maxD+1]
	if maxD == 0 && counts[0] == 0 {
		h.Counts = counts[:0]
	}
	return h
}

// MRC converts the histogram into the exact miss ratio curve for
// capacities 0..maxSize: an access hits at capacity c iff its stack
// distance is < c.
func (h *RDHistogram) MRC(maxSize int) *MRC {
	mrc := &MRC{Miss: make([]float64, maxSize+1)}
	for i := range mrc.Miss {
		mrc.Miss[i] = 1
	}
	if h.N == 0 {
		return mrc
	}
	var hits int64
	for c := 1; c <= maxSize; c++ {
		if c-1 < len(h.Counts) {
			hits += h.Counts[c-1]
		}
		mrc.Miss[c] = 1 - float64(hits)/float64(h.N)
	}
	return mrc
}

// Hits returns the number of accesses that hit in a fully associative LRU
// cache of the given capacity.
func (h *RDHistogram) Hits(capacity int) int64 {
	var hits int64
	for d := 0; d < capacity && d < len(h.Counts); d++ {
		hits += h.Counts[d]
	}
	return hits
}

// MaxDistance returns the largest finite stack distance observed (-1 when
// every access was cold).
func (h *RDHistogram) MaxDistance() int { return len(h.Counts) - 1 }
