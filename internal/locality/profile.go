package locality

// Profile is the compact per-shard locality summary the adaptive control
// plane consumes: the miss-ratio curve over capacities 0..maxSize plus
// scalar descriptors of the sampled burst. WorkingSet is the footprint at
// the burst timescale (distinct renamed lines, fp(n) = n − reuse(n));
// Hotness is the fraction of sampled writes that reuse an already-written
// line — exactly the write-combining opportunity a software cache can
// exploit, so a hot burst argues for capacity and a cold one against it.
type Profile struct {
	MRC        *MRC
	WorkingSet float64
	Hotness    float64
	// Writes is the number of sampled writes folded into the profile and
	// Bursts how many bursts they arrived in (1 for a one-shot profile).
	Writes int64
	Bursts int
}

// ProfileBurst evaluates one renamed burst: the linear-time reuse curve
// (ReuseAll), its HOTL conversion to a miss-ratio curve (MRCFromReuse),
// and the scalar summaries, in one call. It is the single entry point for
// both the offline tool (cmd/mrc) and the online controller, which used to
// duplicate the ReuseAll→MRCFromReuse glue.
func ProfileBurst(burst []uint64, maxSize int) *Profile {
	rc := ReuseAll(burst)
	p := &Profile{MRC: MRCFromReuse(rc, maxSize), Writes: int64(len(burst)), Bursts: 1}
	if n := len(burst); n > 0 {
		// reuse(n) averages over the single window of length n: the total
		// reuse count of the burst.
		reuses := rc.Reuse[n]
		p.WorkingSet = float64(n) - reuses
		p.Hotness = reuses / float64(n)
	}
	return p
}

// Accumulator folds successive burst profiles into one smoothed profile
// with exponential decay: the newest burst enters with weight Alpha,
// history keeps 1−Alpha. The blend gives the controller hysteresis against
// a single unrepresentative burst while still tracking phase changes
// within a few bursts. The zero Accumulator is not ready; use
// NewAccumulator.
type Accumulator struct {
	alpha   float64
	maxSize int
	cur     *Profile
}

// NewAccumulator returns an empty accumulator blending curves over
// capacities 0..maxSize. alpha outside (0,1] falls back to 0.5.
func NewAccumulator(alpha float64, maxSize int) *Accumulator {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &Accumulator{alpha: alpha, maxSize: maxSize}
}

// Add folds one burst and returns the blended profile. The first burst
// becomes the profile unblended. The returned profile is owned by the
// accumulator and is overwritten by the next Add.
func (a *Accumulator) Add(burst []uint64) *Profile {
	p := ProfileBurst(burst, a.maxSize)
	if a.cur == nil {
		a.cur = p
		return a.cur
	}
	al := a.alpha
	for i := range a.cur.MRC.Miss {
		a.cur.MRC.Miss[i] = (1-al)*a.cur.MRC.Miss[i] + al*p.MRC.Miss[i]
	}
	a.cur.WorkingSet = (1-al)*a.cur.WorkingSet + al*p.WorkingSet
	a.cur.Hotness = (1-al)*a.cur.Hotness + al*p.Hotness
	a.cur.Writes += p.Writes
	a.cur.Bursts++
	return a.cur
}

// Profile returns the current blended profile, or nil before the first Add.
func (a *Accumulator) Profile() *Profile { return a.cur }
