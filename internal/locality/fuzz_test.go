package locality

import (
	"math"
	"testing"
)

// bytesToSeq maps fuzz bytes onto a renamed write sequence. The low bits
// pick the datum, so even random inputs have plenty of reuse; length is
// capped to keep the O(n·k) oracle affordable.
func bytesToSeq(data []byte) []uint64 {
	const maxLen = 192
	if len(data) > maxLen {
		data = data[:maxLen]
	}
	seq := make([]uint64, len(data))
	for i, b := range data {
		seq[i] = uint64(b % 13)
	}
	return seq
}

// FuzzReuseDuality differentially checks the linear-time all-window
// analysis against the defining O(n·k)-per-k window enumeration, and pins
// the paper's duality reuse(k) + fp(k) = k at every timescale: each of a
// window's k writes is either a reuse of something earlier in the window
// or part of its footprint, never both. Seed corpus in
// testdata/fuzz/FuzzReuseDuality.
func FuzzReuseDuality(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 2, 1, 2, 1, 2, 9, 9})
	f.Add([]byte("the same address stream, written twicethe same address stream, written twice"))
	f.Fuzz(func(t *testing.T, data []byte) {
		seq := bytesToSeq(data)
		n := len(seq)
		rc := ReuseAll(seq)
		fc := FootprintAll(seq)
		if len(rc.Reuse) != n+1 || len(fc.Fp) != n+1 {
			t.Fatalf("curve lengths %d/%d for n=%d", len(rc.Reuse), len(fc.Fp), n)
		}
		const eps = 1e-9
		for k := 1; k <= n; k++ {
			if got, want := rc.Reuse[k], reuseBrute(seq, k); math.Abs(got-want) > eps {
				t.Fatalf("reuse(%d) = %v, oracle %v (seq %v)", k, got, want, seq)
			}
			if got, want := fc.Fp[k], footprintBrute(seq, k); math.Abs(got-want) > eps {
				t.Fatalf("fp(%d) = %v, oracle %v (seq %v)", k, got, want, seq)
			}
			if got := rc.Reuse[k] + fc.Fp[k]; math.Abs(got-float64(k)) > eps {
				t.Fatalf("duality broken: reuse(%d)+fp(%d) = %v, want %d (seq %v)", k, k, got, k, seq)
			}
		}
	})
}
