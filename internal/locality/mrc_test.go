package locality

import (
	"math"
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"
)

func TestStackDistanceMRCExact(t *testing.T) {
	// Trace "abab": accesses 3 and 4 have stack distance 1 (one distinct
	// line in between), so a cache of size 2 hits both: miss ratio 0.5.
	// Size 1 misses everything.
	m := StackDistanceMRC(seqOf("abab"), 4)
	if m.Miss[0] != 1 {
		t.Errorf("Miss[0] = %v", m.Miss[0])
	}
	if m.Miss[1] != 1 {
		t.Errorf("Miss[1] = %v, want 1", m.Miss[1])
	}
	if math.Abs(m.Miss[2]-0.5) > 1e-12 {
		t.Errorf("Miss[2] = %v, want 0.5", m.Miss[2])
	}
	if math.Abs(m.Miss[4]-0.5) > 1e-12 {
		t.Errorf("Miss[4] = %v, want 0.5 (compulsory misses only)", m.Miss[4])
	}
}

func TestStackDistanceMRCAllSame(t *testing.T) {
	m := StackDistanceMRC(seqOf("aaaaa"), 3)
	if math.Abs(m.Miss[1]-0.2) > 1e-12 {
		t.Errorf("Miss[1] = %v, want 0.2", m.Miss[1])
	}
}

func TestStackDistanceMRCDeeperThanMax(t *testing.T) {
	// Working set of 4 cycled twice, maxSize 2: everything misses at ≤2.
	m := StackDistanceMRC(seqOf("abcdabcd"), 2)
	if m.Miss[2] != 1 {
		t.Errorf("Miss[2] = %v, want 1", m.Miss[2])
	}
}

// Property: the stack-distance miss ratio curve is non-increasing in
// capacity (LRU inclusion).
func TestQuickStackDistanceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		n := 1 + rng.Intn(300)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(12))
		}
		m := StackDistanceMRC(s, 20)
		for c := 1; c <= 20; c++ {
			if m.Miss[c] > m.Miss[c-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The HOTL-converted MRC must agree with direct LRU simulation on cyclic
// workloads (which satisfy the reuse-window hypothesis well). This is
// invariant 7 of DESIGN.md.
func TestMRCFromReuseMatchesSimulationCyclic(t *testing.T) {
	for _, ws := range []int{4, 10, 25} {
		s := make([]uint64, 0, 4000)
		for r := 0; r < 4000/ws; r++ {
			for d := 0; d < ws; d++ {
				s = append(s, uint64(d))
			}
		}
		pred := MRCFromReuse(ReuseAll(s), 50)
		actual := StackDistanceMRC(s, 50)
		// Below the working set everything misses; at/above it everything
		// but compulsory hits. Check both regimes at a safe margin from
		// the knee.
		for _, c := range []int{1, ws - 2, ws + 2, 50} {
			if c < 1 {
				continue
			}
			if diff := math.Abs(pred.At(c) - actual.At(c)); diff > 0.1 {
				t.Errorf("ws=%d c=%d: predicted %v actual %v (diff %v)",
					ws, c, pred.At(c), actual.At(c), diff)
			}
		}
	}
}

func TestMRCFromReuseMonotone(t *testing.T) {
	rng := testutil.Rand(t, 5)
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(500)
		s := make([]uint64, n)
		for i := range s {
			s[i] = uint64(rng.Intn(30))
		}
		m := MRCFromReuse(ReuseAll(s), 50)
		for c := 1; c <= 50; c++ {
			if m.Miss[c] > m.Miss[c-1]+1e-12 {
				t.Fatalf("trial %d: MRC increases at c=%d", trial, c)
			}
		}
	}
}

func TestMRCAtClamps(t *testing.T) {
	m := &MRC{Miss: []float64{1, 0.5, 0.25}}
	if m.At(-3) != 1 || m.At(0) != 1 || m.At(2) != 0.25 || m.At(99) != 0.25 {
		t.Errorf("At clamping broken: %v %v %v %v", m.At(-3), m.At(0), m.At(2), m.At(99))
	}
	if m.MaxSize() != 2 {
		t.Errorf("MaxSize = %d", m.MaxSize())
	}
}

// stepMRC builds a synthetic curve with knees at the given sizes, each
// dropping the miss ratio by the paired amount.
func stepMRC(max int, knees map[int]float64) *MRC {
	m := &MRC{Miss: make([]float64, max+1)}
	cur := 1.0
	for c := 0; c <= max; c++ {
		if d, ok := knees[c]; ok {
			cur -= d
		}
		m.Miss[c] = cur
	}
	return m
}

func TestKneesFindInflections(t *testing.T) {
	m := stepMRC(50, map[int]float64{3: 0.2, 10: 0.3, 23: 0.4})
	knees := Knees(m, DefaultKneeConfig())
	want := map[int]bool{3: true, 10: true, 23: true}
	if len(knees) != 3 {
		t.Fatalf("knees = %v", knees)
	}
	for _, k := range knees {
		if !want[k] {
			t.Errorf("unexpected knee %d", k)
		}
	}
}

func TestSelectSizePicksLargestKnee(t *testing.T) {
	// Figure 2's story: several knees; pick the one with the largest
	// capacity (water-spatial chooses 23).
	m := stepMRC(50, map[int]float64{2: 0.3, 7: 0.2, 15: 0.1, 23: 0.25})
	if got := SelectSize(m, DefaultKneeConfig()); got != 23 {
		t.Errorf("SelectSize = %d, want 23", got)
	}
}

func TestSelectSizeNoKneeFallsBackToMax(t *testing.T) {
	// Flat curve: no drop anywhere.
	m := stepMRC(50, nil)
	if got := SelectSize(m, DefaultKneeConfig()); got != 50 {
		t.Errorf("SelectSize = %d, want max 50", got)
	}
	// Gentle linear decline below MinDrop threshold.
	cfg := DefaultKneeConfig()
	cfg.MinDrop = 0.05
	lin := &MRC{Miss: make([]float64, 51)}
	for c := range lin.Miss {
		lin.Miss[c] = 1 - 0.001*float64(c)
	}
	if got := SelectSize(lin, cfg); got != 50 {
		t.Errorf("SelectSize = %d, want 50", got)
	}
}

func TestSelectSizeRespectsTopK(t *testing.T) {
	// Six knees; only the five largest drops are candidates. The largest
	// capacity among them wins.
	m := stepMRC(50, map[int]float64{2: 0.3, 5: 0.25, 9: 0.2, 14: 0.15, 20: 0.1, 40: 0.001})
	cfg := DefaultKneeConfig()
	if got := SelectSize(m, cfg); got != 20 {
		t.Errorf("SelectSize = %d, want 20 (40's drop ranks 6th)", got)
	}
}

func TestSelectSizeBoundedByCurve(t *testing.T) {
	m := stepMRC(10, nil)
	if got := SelectSize(m, DefaultKneeConfig()); got != 10 {
		t.Errorf("SelectSize = %d, want curve max 10", got)
	}
}

func TestMRCString(t *testing.T) {
	m := &MRC{Miss: []float64{1, 0.5}}
	if s := m.String(); s == "" {
		t.Fatal("empty render")
	}
}
