package proto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// readOne frames buf through a bufio.Reader sized like the server's and
// decodes one frame.
func readOne(t *testing.T, frame []byte) (byte, []byte) {
	t.Helper()
	r := bufio.NewReaderSize(bytes.NewReader(frame), 4096)
	var scratch []byte
	op, payload, err := ReadFrame(r, &scratch)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return op, payload
}

func TestRequestRoundTrips(t *testing.T) {
	op, p := readOne(t, AppendPut(nil, 7, 11))
	if op != OpPut {
		t.Fatalf("op = %d, want OpPut", op)
	}
	if k, v, err := DecodeKV(p); err != nil || k != 7 || v != 11 {
		t.Fatalf("DecodeKV = (%d,%d,%v), want (7,11,nil)", k, v, err)
	}

	op, p = readOne(t, AppendGet(nil, 42))
	if op != OpGet {
		t.Fatalf("op = %d, want OpGet", op)
	}
	if k, err := DecodeKey(p); err != nil || k != 42 {
		t.Fatalf("DecodeKey = (%d,%v), want (42,nil)", k, err)
	}

	op, p = readOne(t, AppendDel(nil, 9))
	if op != OpDel {
		t.Fatalf("op = %d, want OpDel", op)
	}
	if k, err := DecodeKey(p); err != nil || k != 9 {
		t.Fatalf("DecodeKey = (%d,%v), want (9,nil)", k, err)
	}

	op, p = readOne(t, AppendIncr(nil, 3, 5))
	if op != OpIncr {
		t.Fatalf("op = %d, want OpIncr", op)
	}
	if k, d, err := DecodeKV(p); err != nil || k != 3 || d != 5 {
		t.Fatalf("DecodeKV = (%d,%d,%v), want (3,5,nil)", k, d, err)
	}

	op, p = readOne(t, AppendDecr(nil, 3, 2))
	if op != OpDecr {
		t.Fatalf("op = %d, want OpDecr", op)
	}
	if k, d, err := DecodeKV(p); err != nil || k != 3 || d != 2 {
		t.Fatalf("DecodeKV = (%d,%d,%v), want (3,2,nil)", k, d, err)
	}

	op, p = readOne(t, AppendScan(nil, 100, 32))
	if op != OpScan {
		t.Fatalf("op = %d, want OpScan", op)
	}
	if start, n, err := DecodeScan(p); err != nil || start != 100 || n != 32 {
		t.Fatalf("DecodeScan = (%d,%d,%v), want (100,32,nil)", start, n, err)
	}

	keys := []uint64{1, 2, 3}
	op, p = readOne(t, AppendMGet(nil, keys))
	if op != OpMGet {
		t.Fatalf("op = %d, want OpMGet", op)
	}
	got, err := DecodeMGet(p, nil)
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("DecodeMGet = (%v,%v), want ([1 2 3],nil)", got, err)
	}

	vals := []uint64{10, 20, 30}
	op, p = readOne(t, AppendMPut(nil, keys, vals))
	if op != OpMPut {
		t.Fatalf("op = %d, want OpMPut", op)
	}
	gk, gv, err := DecodeMPut(p, nil, nil)
	if err != nil || len(gk) != 3 || gk[2] != 3 || gv[0] != 10 || gv[2] != 30 {
		t.Fatalf("DecodeMPut = (%v,%v,%v)", gk, gv, err)
	}

	if op, p = readOne(t, AppendStats(nil)); op != OpStats || len(p) != 0 {
		t.Fatalf("stats frame = (%d,%d bytes)", op, len(p))
	}
	if op, p = readOne(t, AppendQuit(nil)); op != OpQuit || len(p) != 0 {
		t.Fatalf("quit frame = (%d,%d bytes)", op, len(p))
	}
}

func TestReplyRoundTrips(t *testing.T) {
	if op, p := readOne(t, AppendOK(nil)); op != RepOK || len(p) != 0 {
		t.Fatalf("OK frame = (%d,%d bytes)", op, len(p))
	}
	if op, p := readOne(t, AppendNil(nil)); op != RepNil || len(p) != 0 {
		t.Fatalf("NIL frame = (%d,%d bytes)", op, len(p))
	}
	if op, p := readOne(t, AppendBye(nil)); op != RepBye || len(p) != 0 {
		t.Fatalf("BYE frame = (%d,%d bytes)", op, len(p))
	}

	op, p := readOne(t, AppendVal(nil, 123))
	if op != RepVal {
		t.Fatalf("op = %d, want RepVal", op)
	}
	if v, err := DecodeVal(p); err != nil || v != 123 {
		t.Fatalf("DecodeVal = (%d,%v), want (123,nil)", v, err)
	}

	op, p = readOne(t, AppendErr(nil, "bad verb"))
	if op != RepErr || string(p) != "bad verb" {
		t.Fatalf("err frame = (%d,%q)", op, p)
	}

	buf := AppendRangeHeader(nil, 2)
	buf = AppendU64(buf, 1)
	buf = AppendU64(buf, 10)
	buf = AppendU64(buf, 2)
	buf = AppendU64(buf, 20)
	op, p = readOne(t, buf)
	if op != RepRange {
		t.Fatalf("op = %d, want RepRange", op)
	}
	rk, rv, err := DecodeRange(p)
	if err != nil || len(rk) != 2 || rk[1] != 2 || rv[0] != 10 || rv[1] != 20 {
		t.Fatalf("DecodeRange = (%v,%v,%v)", rk, rv, err)
	}

	buf = AppendValsHeader(nil, 2)
	buf = AppendValsEntry(buf, 77, true)
	buf = AppendValsEntry(buf, 0, false)
	op, p = readOne(t, buf)
	if op != RepVals {
		t.Fatalf("op = %d, want RepVals", op)
	}
	vv, ff, err := DecodeVals(p, nil, nil)
	if err != nil || len(vv) != 2 || vv[0] != 77 || !ff[0] || ff[1] {
		t.Fatalf("DecodeVals = (%v,%v,%v)", vv, ff, err)
	}

	op, p = readOne(t, AppendStatsReply(nil, []byte("total puts=1\n")))
	if op != RepStats || string(p) != "total puts=1\n" {
		t.Fatalf("stats reply = (%d,%q)", op, p)
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	frame := AppendGet(nil, 1)
	frame[0] = 'G' // looks like a text verb
	r := bufio.NewReader(bytes.NewReader(frame))
	var scratch []byte
	_, _, err := ReadFrame(r, &scratch)
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *proto.Error", err)
	}
}

func TestReadFrameOversizedPayload(t *testing.T) {
	frame := appendHeader(nil, OpPut, MaxPayload+1)
	r := bufio.NewReader(bytes.NewReader(frame))
	var scratch []byte
	_, _, err := ReadFrame(r, &scratch)
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *proto.Error", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := AppendPut(nil, 1, 2)
	for cut := 0; cut < len(full); cut++ {
		r := bufio.NewReader(bytes.NewReader(full[:cut]))
		var scratch []byte
		_, _, err := ReadFrame(r, &scratch)
		if err == nil {
			t.Fatalf("cut=%d: no error for truncated frame", cut)
		}
		var pe *Error
		if errors.As(err, &pe) {
			t.Fatalf("cut=%d: protocol error %v for clean truncation, want io error", cut, err)
		}
	}
}

// TestReadFrameScratchFallback forces the payload past the reader's
// buffer so ReadFrame must copy into scratch.
func TestReadFrameScratchFallback(t *testing.T) {
	n := 64 // keys in a frame larger than the 16-byte reader below
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	frame := AppendMGet(nil, keys)
	r := bufio.NewReaderSize(bytes.NewReader(frame), 16)
	var scratch []byte
	op, payload, err := ReadFrame(r, &scratch)
	if err != nil || op != OpMGet {
		t.Fatalf("ReadFrame = (%d,%v)", op, err)
	}
	got, err := DecodeMGet(payload, nil)
	if err != nil || len(got) != n || got[n-1] != uint64(n-1) {
		t.Fatalf("DecodeMGet = (%d keys, %v)", len(got), err)
	}
	if cap(scratch) < len(payload) {
		t.Fatalf("scratch not grown: cap %d < payload %d", cap(scratch), len(payload))
	}
}

func TestDecodeCountLimits(t *testing.T) {
	// Count beyond MaxOps.
	p := binary.LittleEndian.AppendUint32(nil, MaxOps+1)
	if _, err := DecodeMGet(p, nil); err == nil {
		t.Fatal("DecodeMGet accepted count > MaxOps")
	}
	// Count/payload length mismatch.
	p = binary.LittleEndian.AppendUint32(nil, 2)
	p = AppendU64(p, 1) // only one key present
	if _, err := DecodeMGet(p, nil); err == nil {
		t.Fatal("DecodeMGet accepted short payload")
	}
	// Truncated count prefix.
	if _, _, err := DecodeMPut([]byte{1, 0}, nil, nil); err == nil {
		t.Fatal("DecodeMPut accepted truncated count")
	}
}

func TestSniff(t *testing.T) {
	if !Sniff(Version) {
		t.Fatal("Sniff rejected the version byte")
	}
	for _, b := range []byte{'P', 'G', 'S', 'Q', ' ', '\n'} {
		if Sniff(b) {
			t.Fatalf("Sniff accepted text byte %q", b)
		}
	}
}

func TestVerbName(t *testing.T) {
	want := map[byte]string{
		OpPut: "PUT", OpGet: "GET", OpDel: "DEL", OpIncr: "INCR",
		OpDecr: "DECR", OpScan: "SCAN", OpMGet: "MGET", OpMPut: "MPUT",
		OpStats: "STATS", OpQuit: "QUIT", 0xFF: "?",
	}
	for op, name := range want {
		if got := VerbName(op); got != name {
			t.Fatalf("VerbName(%d) = %q, want %q", op, got, name)
		}
	}
}

// TestEncodeAllocs pins the client-side encode path at zero allocations
// per op once the buffer has grown.
func TestEncodeAllocs(t *testing.T) {
	buf := make([]byte, 0, 4096)
	keys := []uint64{1, 2, 3, 4}
	vals := []uint64{5, 6, 7, 8}
	if n := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		buf = AppendPut(buf, 1, 2)
		buf = AppendGet(buf, 3)
		buf = AppendIncr(buf, 4, 1)
		buf = AppendScan(buf, 0, 16)
		buf = AppendMGet(buf, keys)
		buf = AppendMPut(buf, keys, vals)
	}); n != 0 {
		t.Fatalf("encode allocs/op = %v, want 0", n)
	}
}

// TestDecodeAllocs pins ReadFrame + request decode at zero allocations
// per op when frames fit the reader's buffer (the server's steady state).
func TestDecodeAllocs(t *testing.T) {
	frames := AppendPut(nil, 1, 2)
	frames = AppendGet(frames, 3)
	frames = AppendMGet(frames, []uint64{4, 5, 6})
	rd := bytes.NewReader(frames)
	r := bufio.NewReaderSize(rd, 4096)
	var scratch []byte
	keys := make([]uint64, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		rd.Seek(0, io.SeekStart)
		r.Reset(rd)
		for {
			op, p, err := ReadFrame(r, &scratch)
			if err != nil {
				if err != io.EOF {
					panic(err)
				}
				return
			}
			switch op {
			case OpPut:
				if _, _, err := DecodeKV(p); err != nil {
					panic(err)
				}
			case OpGet:
				if _, err := DecodeKey(p); err != nil {
					panic(err)
				}
			case OpMGet:
				keys, err = DecodeMGet(p, keys)
				if err != nil {
					panic(err)
				}
			}
		}
	}); n != 0 {
		t.Fatalf("decode allocs/op = %v, want 0", n)
	}
}
