// Package proto is the length-prefixed binary wire protocol shared by
// internal/server, internal/nvclient and internal/loadgen — the one seam
// every layer of the serving stack speaks. It exists because the text
// line protocol spends its budget in the network layer (strings.Fields,
// strconv, fmt per request) precisely where the persistence stack no
// longer does: with software caching driving per-op persistence cost
// toward the hardware floor, the wire path must not reintroduce per-op
// allocation and parsing overhead.
//
// # Frame layout
//
// Every frame — request or reply — is a 6-byte header followed by an
// opcode-specific payload, all integers little-endian:
//
//	byte 0      Version (0xB1)
//	byte 1      opcode (Op* for requests, Rep* for replies)
//	bytes 2..5  uint32 payload length (≤ MaxPayload)
//	bytes 6..   payload
//
// The version byte has the high bit set, which no text-protocol request
// can start with (text requests begin with an ASCII verb), so a server
// sniffs the first byte of a connection to pick the protocol: both
// dialects are served on the same port and existing text tooling keeps
// working unchanged. The byte is repeated on every frame, so framing
// errors are detected immediately instead of silently resynchronizing.
//
// # Request payloads
//
//	OpPut    key u64, val u64                 (16 bytes)
//	OpGet    key u64                          (8)
//	OpDel    key u64                          (8)
//	OpIncr   key u64, delta u64               (16)
//	OpDecr   key u64, delta u64               (16)
//	OpScan   start u64, count u32             (12)
//	OpMGet   count u32, count × key u64
//	OpMPut   count u32, count × (key u64, val u64)
//	OpStats  (empty)
//	OpQuit   (empty)
//
// # Reply payloads
//
//	RepOK    (empty)                          PUT, MPUT ack-after-flush
//	RepVal   val u64                          GET hit, INCR/DECR post-op value
//	RepNil   (empty)                          GET/DEL miss
//	RepErr   utf-8 message
//	RepRange count u32, count × (key u64, val u64)
//	RepVals  count u32, count × (found u8, val u64)   MGET, input order
//	RepStats utf-8 STATS text (the line-protocol rendering, END excluded)
//	RepBye   (empty)                          QUIT; the server closes
//
// # Zero allocation
//
// Encoding is append-style over caller-owned buffers (Append*), decoding
// returns values or fills caller-owned slices (Decode*), and ReadFrame
// hands back a payload that aliases the bufio.Reader's internal buffer
// (bufio.Peek) whenever the frame fits — zero-copy, zero-alloc on the
// steady-state hot path. The testing.AllocsPerRun gates in proto_test.go,
// internal/server and internal/nvclient pin this down.
package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	// Version is the frame-leading protocol byte. The high bit is set so
	// no binary frame can be confused with a text-protocol request, whose
	// first byte is always an ASCII verb character.
	Version = 0xB1
	// HeaderSize is the fixed frame header: version, opcode, payload len.
	HeaderSize = 6
	// MaxPayload bounds one frame's payload; a larger length prefix is a
	// framing error (the connection is torn down rather than trusted to
	// resynchronize).
	MaxPayload = 1 << 20
	// MaxOps bounds the entries one MGET/MPUT frame may carry, mirroring
	// the text protocol's SCAN cap: a batch must fit one group commit's
	// undo-log budget, and an unbounded count prefix would let one frame
	// demand arbitrary memory.
	MaxOps = 512
)

// Request opcodes.
const (
	OpPut byte = iota + 1
	OpGet
	OpDel
	OpIncr
	OpDecr
	OpScan
	OpMGet
	OpMPut
	OpStats
	OpQuit
)

// Reply opcodes.
const (
	RepOK byte = iota + 1
	RepVal
	RepNil
	RepErr
	RepRange
	RepVals
	RepStats
	RepBye
)

// Error is a protocol violation: bad version byte, oversized or
// truncated payload, or an op-count prefix beyond MaxOps. A server
// answers one with an error frame and closes the connection (framing
// cannot be trusted past it); a client treats the connection as dead.
type Error struct{ Msg string }

func (e *Error) Error() string { return "proto: " + e.Msg }

func protoErrf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}

// appendHeader appends a frame header for payload length n.
func appendHeader(buf []byte, op byte, n int) []byte {
	return append(buf, Version, op,
		byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
}

// AppendU64 appends one little-endian uint64 (RepRange pair halves and
// any other trailing operand).
func AppendU64(buf []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(buf, v)
}

// U64 decodes the little-endian uint64 at p[0:8]; the caller has
// validated the length.
func U64(p []byte) uint64 { return binary.LittleEndian.Uint64(p) }

// --- Request encoders -------------------------------------------------

// AppendPut appends a PUT request frame.
func AppendPut(buf []byte, k, v uint64) []byte {
	buf = appendHeader(buf, OpPut, 16)
	buf = AppendU64(buf, k)
	return AppendU64(buf, v)
}

// AppendGet appends a GET request frame.
func AppendGet(buf []byte, k uint64) []byte {
	return AppendU64(appendHeader(buf, OpGet, 8), k)
}

// AppendDel appends a DEL request frame.
func AppendDel(buf []byte, k uint64) []byte {
	return AppendU64(appendHeader(buf, OpDel, 8), k)
}

// AppendIncr appends an INCR request frame.
func AppendIncr(buf []byte, k, d uint64) []byte {
	buf = appendHeader(buf, OpIncr, 16)
	buf = AppendU64(buf, k)
	return AppendU64(buf, d)
}

// AppendDecr appends a DECR request frame.
func AppendDecr(buf []byte, k, d uint64) []byte {
	buf = appendHeader(buf, OpDecr, 16)
	buf = AppendU64(buf, k)
	return AppendU64(buf, d)
}

// AppendScan appends a SCAN request frame.
func AppendScan(buf []byte, start uint64, n uint32) []byte {
	buf = appendHeader(buf, OpScan, 12)
	buf = AppendU64(buf, start)
	return binary.LittleEndian.AppendUint32(buf, n)
}

// AppendMGet appends an MGET request frame for keys.
func AppendMGet(buf []byte, keys []uint64) []byte {
	buf = appendHeader(buf, OpMGet, 4+8*len(keys))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = AppendU64(buf, k)
	}
	return buf
}

// AppendMPut appends an MPUT request frame for the parallel keys/vals
// slices (len(vals) must equal len(keys)).
func AppendMPut(buf []byte, keys, vals []uint64) []byte {
	buf = appendHeader(buf, OpMPut, 4+16*len(keys))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for i, k := range keys {
		buf = AppendU64(buf, k)
		buf = AppendU64(buf, vals[i])
	}
	return buf
}

// AppendStats appends a STATS request frame.
func AppendStats(buf []byte) []byte { return appendHeader(buf, OpStats, 0) }

// AppendQuit appends a QUIT request frame.
func AppendQuit(buf []byte) []byte { return appendHeader(buf, OpQuit, 0) }

// --- Reply encoders ---------------------------------------------------

// AppendOK appends an OK reply frame.
func AppendOK(buf []byte) []byte { return appendHeader(buf, RepOK, 0) }

// AppendVal appends a VAL reply frame.
func AppendVal(buf []byte, v uint64) []byte {
	return AppendU64(appendHeader(buf, RepVal, 8), v)
}

// AppendNil appends a NIL reply frame.
func AppendNil(buf []byte) []byte { return appendHeader(buf, RepNil, 0) }

// AppendErr appends an error reply frame carrying msg.
func AppendErr(buf []byte, msg string) []byte {
	return append(appendHeader(buf, RepErr, len(msg)), msg...)
}

// AppendBye appends a BYE reply frame.
func AppendBye(buf []byte) []byte { return appendHeader(buf, RepBye, 0) }

// AppendRangeHeader appends a RANGE reply header for count pairs; the
// caller appends 2×count AppendU64 operands (key, val alternating).
func AppendRangeHeader(buf []byte, count int) []byte {
	buf = appendHeader(buf, RepRange, 4+16*count)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendValsHeader appends a VALS reply header for count entries; the
// caller appends count AppendValsEntry results in key order.
func AppendValsHeader(buf []byte, count int) []byte {
	buf = appendHeader(buf, RepVals, 4+9*count)
	return binary.LittleEndian.AppendUint32(buf, uint32(count))
}

// AppendValsEntry appends one VALS entry: a presence byte and the value.
func AppendValsEntry(buf []byte, v uint64, found bool) []byte {
	f := byte(0)
	if found {
		f = 1
	}
	return AppendU64(append(buf, f), v)
}

// AppendStatsReply appends a STATS reply frame whose payload is the
// text-protocol rendering (allocation is fine here: STATS is tooling, not
// the hot path).
func AppendStatsReply(buf []byte, text []byte) []byte {
	return append(appendHeader(buf, RepStats, len(text)), text...)
}

// --- Request decoders -------------------------------------------------

// DecodeKey decodes a GET/DEL payload.
func DecodeKey(p []byte) (k uint64, err error) {
	if len(p) != 8 {
		return 0, protoErrf("key payload is %d bytes, want 8", len(p))
	}
	return U64(p), nil
}

// DecodeKV decodes a PUT/INCR/DECR payload (key, value-or-delta).
func DecodeKV(p []byte) (k, v uint64, err error) {
	if len(p) != 16 {
		return 0, 0, protoErrf("key/value payload is %d bytes, want 16", len(p))
	}
	return U64(p), U64(p[8:]), nil
}

// DecodeScan decodes a SCAN payload.
func DecodeScan(p []byte) (start uint64, n uint32, err error) {
	if len(p) != 12 {
		return 0, 0, protoErrf("scan payload is %d bytes, want 12", len(p))
	}
	return U64(p), binary.LittleEndian.Uint32(p[8:]), nil
}

// decodeCount validates a count-prefixed payload: count ≤ MaxOps and the
// remaining payload is exactly count×stride bytes.
func decodeCount(p []byte, stride int) (int, []byte, error) {
	if len(p) < 4 {
		return 0, nil, protoErrf("count prefix truncated (%d bytes)", len(p))
	}
	n := int(binary.LittleEndian.Uint32(p))
	if n > MaxOps {
		return 0, nil, protoErrf("count %d exceeds MaxOps %d", n, MaxOps)
	}
	rest := p[4:]
	if len(rest) != n*stride {
		return 0, nil, protoErrf("count %d wants %d payload bytes, got %d", n, n*stride, len(rest))
	}
	return n, rest, nil
}

// DecodeMGet appends the payload's keys to keys (pass a reused slice,
// truncated by the callee) and returns the extended slice: zero-alloc
// once the buffer has grown to the working batch size.
func DecodeMGet(p []byte, keys []uint64) ([]uint64, error) {
	n, rest, err := decodeCount(p, 8)
	if err != nil {
		return keys[:0], err
	}
	keys = keys[:0]
	for i := 0; i < n; i++ {
		keys = append(keys, U64(rest[8*i:]))
	}
	return keys, nil
}

// DecodeMPut appends the payload's pairs to the parallel keys/vals
// slices (reused like DecodeMGet's).
func DecodeMPut(p []byte, keys, vals []uint64) ([]uint64, []uint64, error) {
	n, rest, err := decodeCount(p, 16)
	if err != nil {
		return keys[:0], vals[:0], err
	}
	keys, vals = keys[:0], vals[:0]
	for i := 0; i < n; i++ {
		keys = append(keys, U64(rest[16*i:]))
		vals = append(vals, U64(rest[16*i+8:]))
	}
	return keys, vals, nil
}

// --- Reply decoders ---------------------------------------------------

// DecodeVal decodes a VAL reply payload.
func DecodeVal(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, protoErrf("val payload is %d bytes, want 8", len(p))
	}
	return U64(p), nil
}

// DecodeRange decodes a RANGE reply payload into the parallel keys/vals
// slices (reused like DecodeMPut's).
func DecodeRange(p []byte) (keys, vals []uint64, err error) {
	return decodePairs(p, nil, nil)
}

// DecodeRangeInto is DecodeRange over caller-reused slices.
func DecodeRangeInto(p []byte, keys, vals []uint64) ([]uint64, []uint64, error) {
	return decodePairs(p, keys, vals)
}

func decodePairs(p []byte, keys, vals []uint64) ([]uint64, []uint64, error) {
	n, rest, err := decodeCount(p, 16)
	if err != nil {
		return keys[:0], vals[:0], err
	}
	keys, vals = keys[:0], vals[:0]
	for i := 0; i < n; i++ {
		keys = append(keys, U64(rest[16*i:]))
		vals = append(vals, U64(rest[16*i+8:]))
	}
	return keys, vals, nil
}

// DecodeVals decodes a VALS reply payload into the caller's vals/found
// slices (reused; returned re-sliced to the entry count).
func DecodeVals(p []byte, vals []uint64, found []bool) ([]uint64, []bool, error) {
	n, rest, err := decodeCount(p, 9)
	if err != nil {
		return vals[:0], found[:0], err
	}
	vals, found = vals[:0], found[:0]
	for i := 0; i < n; i++ {
		found = append(found, rest[9*i] != 0)
		vals = append(vals, U64(rest[9*i+1:]))
	}
	return vals, found, nil
}

// --- Frame reading ----------------------------------------------------

// ReadFrame reads one frame from r. The returned payload aliases the
// reader's internal buffer when the frame fits it (zero-copy) and
// *scratch otherwise (grown as needed, reused across calls); either way
// it is valid only until the next read on r. A *proto.Error return means
// the stream violated the protocol (bad version, oversized length) and
// the connection cannot be resynchronized; io errors pass through
// unchanged.
func ReadFrame(r *bufio.Reader, scratch *[]byte) (op byte, payload []byte, err error) {
	hdr, err := r.Peek(HeaderSize)
	if err != nil {
		return 0, nil, err
	}
	if hdr[0] != Version {
		return 0, nil, protoErrf("bad version byte 0x%02x", hdr[0])
	}
	op = hdr[1]
	n := int(binary.LittleEndian.Uint32(hdr[2:]))
	if n > MaxPayload {
		return 0, nil, protoErrf("payload length %d exceeds MaxPayload %d", n, MaxPayload)
	}
	if _, err := r.Discard(HeaderSize); err != nil {
		return 0, nil, err
	}
	if n == 0 {
		return op, nil, nil
	}
	if n <= r.Size() {
		payload, err = r.Peek(n)
		if err != nil {
			return 0, nil, err
		}
		if _, err := r.Discard(n); err != nil {
			return 0, nil, err
		}
		return op, payload, nil
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	payload = (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return op, payload, nil
}

// Sniff reports whether the first byte of a connection opens a binary
// frame (versus a text-protocol request line).
func Sniff(first byte) bool { return first == Version }

// VerbName returns the text-protocol verb for a request opcode (constant
// strings — no allocation), or "?" for an unknown opcode. Server stall
// hooks and error messages share the text protocol's vocabulary through
// it.
func VerbName(op byte) string {
	switch op {
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpIncr:
		return "INCR"
	case OpDecr:
		return "DECR"
	case OpScan:
		return "SCAN"
	case OpMGet:
		return "MGET"
	case OpMPut:
		return "MPUT"
	case OpStats:
		return "STATS"
	case OpQuit:
		return "QUIT"
	}
	return "?"
}
