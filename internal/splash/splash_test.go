package splash

import (
	"math"
	"reflect"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/locality"
	"nvmcache/internal/trace"
)

// burstFor mirrors the harness default: a burst around 0.1% of the trace,
// at least 1024 writes (the paper's 64M burst is ~0.1% of its billions of
// stores).
func burstFor(stores int64) int {
	b := int(stores / 1000)
	if b < 1024 {
		b = 1024
	}
	return b
}

func within(got, want, relTol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/want <= relTol
}

// The headline calibration: every program's generated LA/AT/SC flush
// ratios stay near Table III and the controller picks the Section IV-G
// cache size. Tolerances are deliberately tight enough to preserve the
// paper's factors (who wins, by roughly how much) and loose enough to
// survive seed changes.
func TestCalibrationAgainstTableIII(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tr := p.Generate(DefaultScale, 1, 42)
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			st := trace.ComputeStats(tr)
			cfg := core.DefaultConfig()
			cfg.BurstLength = burstFor(st.TotalWrites)
			la := core.FlushRatio(core.Lazy, cfg, tr)
			at := core.FlushRatio(core.AtlasTable, cfg, tr)
			sc := core.FlushRatio(core.SoftCacheOnline, cfg, tr)
			er := core.FlushRatio(core.Eager, cfg, tr)
			if er != 1 {
				t.Errorf("ER ratio %v, want 1", er)
			}
			if !within(la, p.PaperLA, 0.25) {
				t.Errorf("LA ratio %v, paper %v", la, p.PaperLA)
			}
			if !within(at, p.PaperAT, 0.25) {
				t.Errorf("AT ratio %v, paper %v", at, p.PaperAT)
			}
			if !within(sc, p.PaperSC, 0.60) {
				t.Errorf("SC ratio %v, paper %v", sc, p.PaperSC)
			}
			// Ordering: LA ≤ SC ≤ AT for every SPLASH2 program in Table III.
			if !(la <= sc+1e-12 && sc <= at+1e-12) {
				t.Errorf("ordering violated: LA %v SC %v AT %v", la, sc, at)
			}
		})
	}
}

func TestSelectedCacheSizesMatchSectionIVG(t *testing.T) {
	for _, p := range Programs() {
		tr := p.Generate(DefaultScale, 1, 42)
		renamed := trace.RenameFASEs(tr.Threads[0])
		mrc := locality.MRCFromReuse(locality.ReuseAll(renamed), 50)
		chosen := locality.SelectSize(mrc, locality.DefaultKneeConfig())
		if chosen != p.PaperChosen {
			t.Errorf("%s: chosen %d, paper %d", p.Name, chosen, p.PaperChosen)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, err := ProgramByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	a := p.Generate(1.0/1024, 2, 7)
	b := p.Generate(1.0/1024, 2, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := p.Generate(1.0/1024, 2, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestProgramByNameUnknown(t *testing.T) {
	if _, err := ProgramByName("nope"); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestStrongScaling(t *testing.T) {
	p, _ := ProgramByName("water-spatial")
	base := trace.ComputeStats(p.Generate(DefaultScale, 1, 42))
	for _, threads := range []int{2, 8, 32} {
		tr := p.Generate(DefaultScale, threads, 42)
		st := trace.ComputeStats(tr)
		if st.Threads != threads {
			t.Fatalf("threads=%d: trace has %d threads", threads, st.Threads)
		}
		// Strong scaling: total stores nearly constant (halo exchange adds
		// a little boundary traffic, as in the real programs; Table IV
		// shows instructions growing ~20% from 1 to 32 threads).
		growth := float64(st.TotalWrites) / float64(base.TotalWrites)
		if growth < 1 || growth > 1.5 {
			t.Errorf("threads=%d: store growth %.2fx outside [1, 1.5]", threads, growth)
		}
		// FASE count grows with the thread count (Section IV-F): exactly
		// threads-fold while every thread can own phase lines.
		if threads <= 8 {
			want := base.TotalFASEs * int64(threads)
			if st.TotalFASEs != want {
				t.Errorf("threads=%d: FASEs %d, want %d", threads, st.TotalFASEs, want)
			}
		} else if st.TotalFASEs <= base.TotalFASEs {
			t.Errorf("threads=%d: FASE count did not grow (%d)", threads, st.TotalFASEs)
		}
	}
}

// Section IV-F: "the data flush ratio slightly increases with the number
// of threads" because splitting FASEs creates extra compulsory misses.
func TestFlushRatioGrowsWithThreads(t *testing.T) {
	p, _ := ProgramByName("water-spatial")
	cfg := core.DefaultConfig()
	cfg.PresetSize = p.PaperChosen
	r1 := core.FlushRatio(core.SoftCacheOffline, cfg, p.Generate(DefaultScale, 1, 42))
	r32 := core.FlushRatio(core.SoftCacheOffline, cfg, p.Generate(DefaultScale, 32, 42))
	if r32 <= r1 {
		t.Errorf("flush ratio did not grow with threads: 1T %v, 32T %v", r1, r32)
	}
	// ... but only modestly (the paper's Table IV shows 0.43% -> 1.00%).
	if r32 > 6*r1 {
		t.Errorf("flush ratio exploded with threads: 1T %v, 32T %v", r1, r32)
	}
}

func TestScaleInvarianceOfRatios(t *testing.T) {
	// Halving the scale must not materially change the flush ratios — the
	// guarantee that lets the repository run at 1/256 of paper size.
	p, _ := ProgramByName("barnes")
	cfg := core.DefaultConfig()
	cfg.PresetSize = p.PaperChosen
	a := core.FlushRatio(core.SoftCacheOffline, cfg, p.Generate(DefaultScale, 1, 42))
	b := core.FlushRatio(core.SoftCacheOffline, cfg, p.Generate(DefaultScale/2, 1, 42))
	if !within(b, a, 0.3) {
		t.Errorf("ratio not scale invariant: %v at 1/256, %v at 1/512", a, b)
	}
}

func TestBigWarmupKeepsBurstClean(t *testing.T) {
	// The first bigWarmup stores contain no big phase, so an online burst
	// of up to that many writes sees only regular sweeps.
	p, _ := ProgramByName("ocean")
	tr := p.Generate(DefaultScale, 1, 42)
	s := tr.Threads[0]
	distinctRuns := map[trace.LineAddr]int{}
	for _, w := range s.Writes[:min(bigWarmup, len(s.Writes))] {
		distinctRuns[w]++
	}
	// A big phase would contribute ≥ BigW distinct lines in one region;
	// normal ocean phases have W=2. Check no window of the warmup has a
	// huge per-phase working set by bounding total distinct lines:
	// warmup/(P·V) phases × W lines each, plus slack.
	maxDistinct := bigWarmup/(p.P*p.V)*p.W + 4*p.W
	if len(distinctRuns) > maxDistinct {
		t.Errorf("warmup has %d distinct lines, want ≤ %d (big phase leaked in)", len(distinctRuns), maxDistinct)
	}
}

func TestTableIIIAverageReduction(t *testing.T) {
	// Headline claim: SC reduces write-backs ~12× vs AT on average
	// (excluding persistent-array/linked-list/queue). Check the SPLASH2
	// part of that average is in the right regime (paper: AT/SC over the
	// seven programs ≈ 14.7× arithmetic mean).
	var sum float64
	var n int
	for _, p := range Programs() {
		tr := p.Generate(DefaultScale, 1, 42)
		cfg := core.DefaultConfig()
		cfg.BurstLength = burstFor(int64(tr.Threads[0].NumWrites()))
		at := core.FlushRatio(core.AtlasTable, cfg, tr)
		sc := core.FlushRatio(core.SoftCacheOnline, cfg, tr)
		sum += at / sc
		n++
	}
	avg := sum / float64(n)
	if avg < 7 || avg > 25 {
		t.Errorf("average AT/SC factor %.1f, want within the paper's regime (~15×)", avg)
	}
}
