// Package splash provides persistent-write generators standing in for the
// seven SPLASH2 programs the paper evaluates (barnes, fmm, ocean, raytrace,
// volrend, water-nsquared, water-spatial). Running the original programs
// requires their inputs, pthreads and an instrumenting compiler; what the
// persistence layer actually sees, however, is only each program's
// *persistent-write locality*: how many cache lines a computation phase
// touches (the working set W), how many consecutive stores land in one
// line before moving on (V), how often the phase sweeps its lines (P), how
// phase lines collide in a direct-mapped table (stride), how often a sweep
// is too large for any bounded cache (big phases), and how stores divide
// into FASEs.
//
// Each program is modelled by those parameters, calibrated once against
// the paper's published per-program data (Table III flush ratios, Section
// IV-G selected cache sizes, Table I eager slowdowns) and then frozen. The
// calibration identities, for a phase of W lines visited cyclically with V
// consecutive stores per visit and P passes:
//
//	LA ≈ 1/(P·V)                       (one flush per distinct line per FASE)
//	AT ≈ conflicts/(W·V)               (direct-mapped evictions per pass,
//	                                    conflicts = visits whose 8-slot
//	                                    table entry holds another line)
//	SC ≈ LA + bigFrac·(1/V − 1/(P·V))  (sweeps wider than the 50-line
//	                                    cache bound defeat any capacity)
//
// The test suite asserts the generated ratios stay within tolerance of
// Table III and that the adaptive controller selects a capacity near the
// paper's per-program choice.
package splash

import (
	"fmt"
	"math/rand"

	"nvmcache/internal/trace"
)

// BigW is the working-set width of "big" phases: wider than the paper's
// 50-line maximum cache size, so no admissible capacity captures their
// cross-pass reuse.
const BigW = 64

// bigWarmup delays the first big phase until this many stores have been
// generated: program start-up does regular initialization sweeps. The
// window is sized so a single-thread sampling burst (1024 writes) sees
// only the normal working set, while the per-thread bursts of multi-thread
// runs extend past it and observe the occasional big sweeps their cache
// must also absorb.
const bigWarmup = 2048

// Params defines one program's write-locality model plus the paper's
// published reference numbers.
type Params struct {
	Name string
	// Paper-published reference data (Table III, Table I, Section IV-G).
	PaperStores   int64   // "Total Flushes" column = stores (ER flushes all)
	PaperFASEs    int64   // "Total FASEs"
	PaperLA       float64 // lazy flush ratio
	PaperAT       float64 // Atlas flush ratio
	PaperSC       float64 // software cache flush ratio
	PaperChosen   int     // selected cache size (Section IV-G)
	PaperSlowdown float64 // Table I eager slowdown (0 if not listed)

	// Generator model.
	W            int     // phase working-set lines
	V            int     // consecutive stores per line visit
	P            int     // passes over the phase per phase instance
	Stride       int     // line stride for conflicting phases (8 = same AT slot)
	ConflictFrac float64 // fraction of normal phases laid out with Stride
	BigFrac      float64 // fraction of stores spent in BigW-wide phases
	PBig         int     // passes per big phase (small, to keep the quantum fine-grained)

	// Cost model knob: the program's computation per persistent store in
	// cycles, calibrated to Table I's eager slowdown.
	ComputePerStore float64
}

// Programs returns the seven calibrated program models in the paper's
// presentation order.
func Programs() []Params {
	return []Params{
		{
			Name: "barnes", PaperStores: 270762562, PaperFASEs: 69000,
			PaperLA: 0.00295, PaperAT: 0.08206, PaperSC: 0.00391,
			PaperChosen: 15, PaperSlowdown: 22,
			// W=15: seven AT slots hold 2 lines, one holds 1 -> 14
			// conflict evictions per pass: AT = 14/(15·V).
			W: 15, V: 11, P: 34, Stride: 1, ConflictFrac: 1,
			BigFrac: 0.0120, PBig: 4,
			ComputePerStore: 9.5,
		},
		{
			Name: "fmm", PaperStores: 87711754, PaperFASEs: 43000,
			PaperLA: 0.00246, PaperAT: 0.01683, PaperSC: 0.00328,
			PaperChosen: 10, PaperSlowdown: 24,
			// W=10: two slots hold 2 lines -> 4 conflicts/pass.
			W: 10, V: 24, P: 19, Stride: 1, ConflictFrac: 1,
			BigFrac: 0.0220, PBig: 4,
			ComputePerStore: 8.7,
		},
		{
			Name: "ocean", PaperStores: 25242763, PaperFASEs: 648,
			PaperLA: 0.09203, PaperAT: 0.40290, PaperSC: 0.16467,
			PaperChosen: 2, PaperSlowdown: 17,
			// Grid sweeps: row pairs one grid-stride apart share an AT
			// slot (conflict every visit); frequent whole-grid sweeps are
			// far wider than any bounded cache.
			W: 2, V: 2, P: 5, Stride: 8, ConflictFrac: 0.70,
			BigFrac: 0.182, PBig: 5,
			ComputePerStore: 11.6,
		},
		{
			Name: "raytrace", PaperStores: 65509589, PaperFASEs: 346000,
			PaperLA: 0.07140, PaperAT: 0.13952, PaperSC: 0.07918,
			PaperChosen: 8, PaperSlowdown: 6,
			W: 8, V: 2, P: 7, Stride: 8, ConflictFrac: 0.143,
			BigFrac: 0.0182, PBig: 7,
			ComputePerStore: 38,
		},
		{
			Name: "volrend", PaperStores: 391692398, PaperFASEs: 45,
			PaperLA: 0.00219, PaperAT: 0.03189, PaperSC: 0.00219,
			PaperChosen: 3, PaperSlowdown: 26,
			// Tiny working set but octree-strided: all three lines share
			// an AT slot, so AT thrashes while SC(3) reaches the LA bound
			// exactly (Table III shows SC = LA for volrend).
			W: 3, V: 31, P: 15, Stride: 8, ConflictFrac: 1,
			BigFrac: 0, PBig: 0,
			ComputePerStore: 8.0,
		},
		{
			Name: "water-nsquared", PaperStores: 45338822, PaperFASEs: 2100,
			PaperLA: 0.00107, PaperAT: 0.05334, PaperSC: 0.00411,
			PaperChosen: 28, PaperSlowdown: 24,
			// W=28: every slot holds >=3 lines -> conflict every visit:
			// AT = 1/V.
			W: 28, V: 19, P: 106, Stride: 1, ConflictFrac: 1,
			BigFrac: 0.0580, PBig: 6,
			ComputePerStore: 8.7,
		},
		{
			Name: "water-spatial", PaperStores: 40981496, PaperFASEs: 77,
			PaperLA: 0.00103, PaperAT: 0.07122, PaperSC: 0.00157,
			PaperChosen: 23, PaperSlowdown: 33,
			// No big phases: water-spatial's small SC-LA gap (1.5x) is
			// fully accounted for by the online burst transient (the
			// cache runs at the default size 8 < W until adaptation).
			W: 23, V: 14, P: 74, Stride: 1, ConflictFrac: 1,
			BigFrac: 0, PBig: 0,
			ComputePerStore: 6.2,
		},
	}
}

// ProgramByName finds a program model.
func ProgramByName(name string) (Params, error) {
	for _, p := range Programs() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("splash: unknown program %q", name)
}

// DefaultScale shrinks paper-size traces (tens to hundreds of millions of
// stores) to test-friendly sizes while preserving every per-FASE and
// per-phase structure that the flush ratios depend on.
const DefaultScale = 1.0 / 256

// Generate produces the program's multi-thread write trace. SPLASH2 is
// strong-scaling: the same total work is partitioned among threads, so the
// store count stays (nearly) fixed while the FASE count grows with the
// thread count — each original FASE becomes one FASE per thread covering a
// 1/threads slice of its stores (Section IV-F explains the resulting
// slight flush-ratio increase).
func (p Params) Generate(scale float64, threads int, seed int64) *trace.Trace {
	if threads < 1 {
		threads = 1
	}
	rng := rand.New(rand.NewSource(seed))

	totalStores := float64(p.PaperStores) * scale
	fases := int(float64(p.PaperFASEs) * scale)
	if fases < 1 {
		fases = 1
	}
	// A program with few huge FASEs (volrend, water-spatial) keeps its
	// FASE count and shrinks the FASEs instead.
	if p.PaperFASEs < 1000 {
		fases = int(p.PaperFASEs)
		if maxF := int(totalStores / float64(p.P*p.W*p.V)); fases > maxF && maxF >= 1 {
			fases = maxF
		}
	}
	storesPerFASE := totalStores / float64(fases)
	phasesPerFASE := int(storesPerFASE/float64(p.P*p.W*p.V) + 0.5)
	if phasesPerFASE < 1 {
		phasesPerFASE = 1
	}

	builders := make([]*trace.Builder, threads)
	for i := range builders {
		builders[i] = trace.NewBuilder(int32(i))
	}

	// Deterministic feedback control keeps the big-phase store fraction
	// near BigFrac, independent of scale. The very first phase is never
	// big, so the sampling burst always observes the program's normal
	// working set first.
	var bigStores, allStores int64

	for f := 0; f < fases; f++ {
		for t := range builders {
			builders[t].Begin()
		}
		for ph := 0; ph < phasesPerFASE; ph++ {
			w, passes := p.W, p.P
			stride := trace.LineAddr(1)
			big := p.BigFrac > 0 && allStores >= bigWarmup && float64(bigStores) < p.BigFrac*float64(allStores)
			switch {
			case big:
				// Wider than any admissible capacity. The width varies so
				// that the HOTL conversion's smear of this unreachable
				// reuse spreads thinly over mid-range capacities instead
				// of faking a knee (the flush-ratio identities are
				// width-independent).
				w, passes = BigW+rng.Intn(3*BigW), p.PBig
			case p.Stride > 1 && rng.Float64() < p.ConflictFrac:
				stride = trace.LineAddr(p.Stride)
			}
			base := trace.LineAddr(rng.Int63n(1<<30) * 64) // fresh region per phase
			// Data decomposition: each thread owns a contiguous slice of
			// the phase's lines and sweeps it for all passes; a one-line
			// halo at each slice boundary is written once per pass
			// (boundary exchange). This is how the real programs scale:
			// total stores grow only by the halo traffic, while the FASE
			// count grows with the thread count and each thread's FASE
			// flushes its own slice — the paper's mild per-thread
			// flush-ratio increase (Table IV's 0.43% -> 1.00%).
			n := int64(0)
			// SPLASH2 programs decompose onto power-of-two processor
			// grids; the largest power of two not exceeding the phase
			// width bounds how many threads share one phase. Keeping the
			// ownership stride a power of two also keeps per-thread lines
			// colliding in the 8-slot Atlas table at high thread counts
			// (Table IV's AT flush ratio stays high at 32 threads).
			pow2 := 1
			for pow2*2 <= w {
				pow2 *= 2
			}
			participants := threads
			if participants > pow2 {
				participants = pow2
			}
			if big {
				// A big sweep is one thread's global pass (e.g. a
				// reduction); it is not decomposed, so its working set
				// stays beyond every admissible cache capacity at every
				// thread count, exactly as in the single-thread runs.
				participants = 1
			}
			// Interleaved (round-robin) data decomposition: thread j owns
			// the phase lines congruent to j modulo the participant
			// count, the way particle codes deal molecules to threads.
			// Per-thread working sets shrink with the thread count while
			// staying *strided*, so Atlas-table conflicts persist (and
			// worsen when the thread count is a multiple of the table
			// size) — Table IV's growing AT flush ratio — while the
			// adaptive cache sizes itself to the slice and stays low.
			// One halo store per pass models boundary exchange.
			for j := 0; j < participants; j++ {
				owner := j
				if participants < threads {
					owner = (j + f + ph) % threads // rotate idle threads
				}
				b := builders[owner]
				// Exactly ⌈w/participants⌉ lines per thread (wrapping),
				// so every slice has the same shape and a thread's
				// sampled working set matches its steady-state one.
				per := (w + participants - 1) / participants
				for pass := 0; pass < passes; pass++ {
					for k := 0; k < per; k++ {
						line := base + trace.LineAddr((j+k*participants)%w)*stride
						for v := 0; v < p.V; v++ {
							b.Store(line)
							n++
						}
					}
					if threads > 1 {
						b.Store(base + trace.LineAddr((j+1)%w)*stride)
						n++
					}
				}
			}
			allStores += n
			if big {
				bigStores += n
			}
		}
		for t := range builders {
			builders[t].End()
		}
	}

	seqs := make([]*trace.ThreadSeq, 0, threads)
	for _, b := range builders {
		seqs = append(seqs, b.Finish())
	}
	return trace.NewTrace(seqs...)
}
