package pmem

import (
	"errors"
	"fmt"

	"nvmcache/internal/trace"
)

// ErrPoolExhausted is returned by Pool.Alloc when neither the free list nor
// the arena has a block left. Callers that can shed load (abort a
// transaction, reject a request) test for it with errors.Is and degrade
// instead of treating the condition as corruption.
var ErrPoolExhausted = errors.New("pool exhausted")

// Pool is a crash-consistent fixed-size block allocator over a Heap — a
// miniature of Makalu (Bhandari et al., OOPSLA'16), the recoverable
// allocator the Atlas system pairs with. The paper's workloads allocate
// persistent nodes and pages constantly; the bump allocator in Heap never
// reclaims, so long-running stores (the MDB case study recycles COW pages)
// need a free list that itself survives crashes.
//
// Layout (all in persistent memory):
//
//	pool+0:  block size
//	pool+8:  free-list head (block address, 0 = empty)
//	pool+16: arena cursor
//	pool+24: arena end
//
// A free block's first word links to the next free block. Every metadata
// update is persisted before the operation returns, and the update order
// (link first, then head) keeps the list consistent at any crash point:
// the worst outcome of a crash inside Alloc/Free is a leaked block, never
// a corrupt or doubly-owned one.
type Pool struct {
	heap *Heap
	base uint64
}

const (
	poolBlockOff  = 0
	poolHeadOff   = 8
	poolCursorOff = 16
	poolEndOff    = 24
	poolHdr       = trace.LineSize
)

// NewPool carves a pool of capacity blocks of blockSize bytes (rounded up
// to 8-byte multiples, minimum one word) out of the heap.
func NewPool(h *Heap, blockSize uint64, capacity int) (*Pool, error) {
	if blockSize < 8 {
		blockSize = 8
	}
	if r := blockSize % 8; r != 0 {
		blockSize += 8 - r
	}
	base, err := h.AllocLines(poolHdr + blockSize*uint64(capacity))
	if err != nil {
		return nil, fmt.Errorf("pmem: pool: %w", err)
	}
	arena := base + poolHdr
	h.WriteUint64(base+poolBlockOff, blockSize)
	h.WriteUint64(base+poolHeadOff, 0)
	h.WriteUint64(base+poolCursorOff, arena)
	h.WriteUint64(base+poolEndOff, arena+blockSize*uint64(capacity))
	h.Persist(base, poolHdr)
	return &Pool{heap: h, base: base}, nil
}

// OpenPool reattaches to a pool previously created at base (after a crash
// and heap recovery).
func OpenPool(h *Heap, base uint64) (*Pool, error) {
	p := &Pool{heap: h, base: base}
	if p.BlockSize() == 0 || p.BlockSize()%8 != 0 {
		return nil, fmt.Errorf("pmem: %d does not look like a pool", base)
	}
	return p, nil
}

// Base returns the pool's persistent address (store it in a root object to
// reattach after restart).
func (p *Pool) Base() uint64 { return p.base }

// BlockSize returns the block size in bytes.
func (p *Pool) BlockSize() uint64 { return p.heap.ReadUint64(p.base + poolBlockOff) }

// Alloc returns a free block, preferring the free list over fresh arena
// space. The returned block's contents are unspecified (callers initialize
// it before publishing, as with any allocator).
func (p *Pool) Alloc() (uint64, error) {
	if head := p.heap.ReadUint64(p.base + poolHeadOff); head != 0 {
		next := p.heap.ReadUint64(head)
		p.heap.WriteUint64(p.base+poolHeadOff, next)
		p.heap.Persist(p.base+poolHeadOff, 8)
		return head, nil
	}
	cur := p.heap.ReadUint64(p.base + poolCursorOff)
	end := p.heap.ReadUint64(p.base + poolEndOff)
	if cur+p.BlockSize() > end {
		return 0, fmt.Errorf("pmem: %w (%d-byte blocks)", ErrPoolExhausted, p.BlockSize())
	}
	p.heap.WriteUint64(p.base+poolCursorOff, cur+p.BlockSize())
	p.heap.Persist(p.base+poolCursorOff, 8)
	return cur, nil
}

// Free returns a block to the pool. The block must have come from Alloc on
// this pool; freeing foreign or already-free blocks corrupts the list (as
// with any allocator).
func (p *Pool) Free(block uint64) {
	head := p.heap.ReadUint64(p.base + poolHeadOff)
	// Link first, persist, then swing the head: a crash between the two
	// leaks the block but never breaks the list.
	p.heap.WriteUint64(block, head)
	p.heap.Persist(block, 8)
	p.heap.WriteUint64(p.base+poolHeadOff, block)
	p.heap.Persist(p.base+poolHeadOff, 8)
}

// Reset discards every allocation at once: the free list empties and the
// arena cursor rewinds to the start, as if the pool were fresh. Checkpointed
// recovery uses it to rebuild a store's pages from scratch without leaking
// the crashed tree's blocks. Reset is not atomic across its two words, but
// any crash ordering is safe: head is cleared first, so the worst a crash
// can leave is an empty free list with the old cursor — a valid (leaky)
// pool — and the rebuild that follows a crash re-runs Reset anyway.
func (p *Pool) Reset() {
	arena := p.base + poolHdr
	p.heap.WriteUint64(p.base+poolHeadOff, 0)
	p.heap.Persist(p.base+poolHeadOff, 8)
	p.heap.WriteUint64(p.base+poolCursorOff, arena)
	p.heap.Persist(p.base+poolCursorOff, 8)
}

// FreeCount walks the free list (diagnostics; O(free blocks)).
func (p *Pool) FreeCount() int {
	n := 0
	for b := p.heap.ReadUint64(p.base + poolHeadOff); b != 0; b = p.heap.ReadUint64(b) {
		n++
	}
	return n
}

// Capacity returns the total number of blocks the pool can hold.
func (p *Pool) Capacity() int {
	arena := p.base + poolHdr
	end := p.heap.ReadUint64(p.base + poolEndOff)
	return int((end - arena) / p.BlockSize())
}

// Remaining returns how many blocks are still allocatable (fresh arena
// plus free list).
func (p *Pool) Remaining() int {
	cur := p.heap.ReadUint64(p.base + poolCursorOff)
	end := p.heap.ReadUint64(p.base + poolEndOff)
	return int((end-cur)/p.BlockSize()) + p.FreeCount()
}
