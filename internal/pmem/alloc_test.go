package pmem

import (
	"errors"
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"
)

func TestPoolAllocFreeReuse(t *testing.T) {
	h := New(1 << 16)
	p, err := NewPool(h, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 8 || p.Remaining() != 8 {
		t.Fatalf("capacity %d remaining %d", p.Capacity(), p.Remaining())
	}
	a, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("double allocation")
	}
	p.Free(a)
	if p.FreeCount() != 1 {
		t.Fatalf("FreeCount = %d", p.FreeCount())
	}
	c, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("free list not reused: got %d, want %d", c, a)
	}
}

func TestPoolExhaustion(t *testing.T) {
	h := New(1 << 16)
	p, err := NewPool(h, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]uint64, 0, 4)
	for i := 0; i < 4; i++ {
		b, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	if _, err := p.Alloc(); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
	p.Free(blocks[2])
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestPoolBlockSizeRounding(t *testing.T) {
	h := New(1 << 16)
	p, err := NewPool(h, 3, 4) // rounds to 8
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockSize() != 8 {
		t.Fatalf("block size %d", p.BlockSize())
	}
}

func TestPoolSurvivesCrash(t *testing.T) {
	h := New(1 << 16)
	p, err := NewPool(h, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	h.SetRoot(p.Base())
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Free(a)
	_ = b
	h.Crash()
	p2, err := OpenPool(h, h.Root())
	if err != nil {
		t.Fatal(err)
	}
	// Metadata is persisted on every operation: the free list and cursor
	// survive.
	if p2.FreeCount() != 1 {
		t.Fatalf("FreeCount after crash = %d", p2.FreeCount())
	}
	c, err := p2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("recovered free list handed out %d, want %d", c, a)
	}
}

func TestOpenPoolRejectsGarbage(t *testing.T) {
	h := New(1 << 16)
	addr, _ := h.Alloc(64)
	h.WriteUint64(addr, 13) // not a multiple of 8
	if _, err := OpenPool(h, addr); err == nil {
		t.Fatal("OpenPool accepted garbage")
	}
}

// Property: under random alloc/free/crash sequences the pool never hands
// out a block twice, never loses capacity permanently (outstanding +
// remaining ≤ capacity, with equality unless a crash leaked), and block
// addresses stay inside the arena.
func TestQuickPoolConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		h := New(1 << 18)
		p, err := NewPool(h, 64, 32)
		if err != nil {
			return false
		}
		arenaLo := p.Base() + poolHdr
		arenaHi := arenaLo + 64*32
		owned := map[uint64]bool{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0, 1, 2:
				b, err := p.Alloc()
				if err != nil {
					continue // exhausted is fine
				}
				if owned[b] || b < arenaLo || b+64 > arenaHi {
					return false
				}
				owned[b] = true
			case 3:
				for b := range owned {
					p.Free(b)
					delete(owned, b)
					break
				}
			case 4:
				h.Crash() // metadata is persisted per-op: state survives
			}
		}
		return len(owned)+p.Remaining() <= p.Capacity()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolExhaustionSentinel(t *testing.T) {
	h := New(1 << 16)
	p, err := NewPool(h, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 4; i++ {
		if last, err = p.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	_, err = p.Alloc()
	if err == nil {
		t.Fatal("Alloc succeeded past capacity")
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("error %v does not wrap ErrPoolExhausted", err)
	}
	// Freeing makes the pool allocatable again: exhaustion is load, not
	// corruption.
	p.Free(last)
	if _, err := p.Alloc(); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}
