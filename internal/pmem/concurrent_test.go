package pmem

import (
	"nvmcache/internal/testutil"
	"sync"
	"testing"
	"testing/quick"

	"nvmcache/internal/trace"
)

func TestStore64ReturnsOldValue(t *testing.T) {
	h := New(1024)
	a, _ := h.Alloc(8)
	h.WriteUint64(a, 11)
	if old := h.Store64(a, 22); old != 11 {
		t.Fatalf("Store64 old = %d, want 11", old)
	}
	if h.ReadUint64(a) != 22 {
		t.Fatal("Store64 did not write")
	}
	if !h.isDirty(trace.LineOf(a)) {
		t.Fatal("Store64 did not mark the line dirty")
	}
}

func TestWrite64ThroughIsDurableAndClean(t *testing.T) {
	h := New(1024)
	a, _ := h.AllocLines(8)
	h.Write64Through(a, 77)
	if h.PersistedUint64(a) != 77 {
		t.Fatal("write-through not durable")
	}
	if h.isDirty(trace.LineOf(a)) {
		t.Fatal("write-through marked the line dirty")
	}
	h.Crash()
	if h.ReadUint64(a) != 77 {
		t.Fatal("write-through lost in crash")
	}
}

func TestReadWordClamped(t *testing.T) {
	h := New(128)
	end := h.Size()
	h.WriteBytes(end-3, []byte{0xaa, 0xbb, 0xcc})
	// Aligned word fully inside: same as ReadUint64.
	if h.ReadWordClamped(end-8) != h.ReadUint64(end-8) {
		t.Fatal("in-bounds clamped read differs from ReadUint64")
	}
	// Word overhanging the end: missing bytes read as zero.
	got := h.ReadWordClamped(end - 3)
	want := uint64(0xaa) | uint64(0xbb)<<8 | uint64(0xcc)<<16
	if got != want {
		t.Fatalf("clamped read = %#x, want %#x", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("clamped read at heap end did not panic")
		}
	}()
	h.ReadWordClamped(end)
}

func TestCheckConsistency(t *testing.T) {
	h := New(1024)
	a, _ := h.AllocLines(16)
	h.WriteUint64(a, 5)
	if err := h.CheckConsistency(); err != nil {
		t.Fatalf("dirty divergence reported as inconsistency: %v", err)
	}
	h.PersistAll()
	if err := h.CheckConsistency(); err != nil {
		t.Fatalf("clean heap inconsistent: %v", err)
	}
	// Corrupt the durable view behind the heap's back: a clean line that
	// diverges must be caught.
	h.persisted[a] ^= 0xff
	if err := h.CheckConsistency(); err == nil {
		t.Fatal("corrupted clean line not detected")
	}
}

func TestStripeStatsCountAcquisitions(t *testing.T) {
	h := New(64 * 1024)
	a, _ := h.AllocLines(trace.LineSize)
	before := SummarizeStripes(h.StripeStats()).Acquired
	const stores = 100
	for i := 0; i < stores; i++ {
		h.Store64(a, uint64(i))
	}
	sum := SummarizeStripes(h.StripeStats())
	if sum.Acquired < before+stores {
		t.Fatalf("acquired %d, want ≥ %d", sum.Acquired, before+stores)
	}
	if sum.Stripes != NumStripes {
		t.Fatalf("stripes %d", sum.Stripes)
	}
	if s := sum.String(); s == "" {
		t.Fatal("empty summary")
	}
}

// TestParallelDisjointLines exercises the lock-free data plane under the
// race detector: goroutines own disjoint line ranges and store/flush
// concurrently, the single-writer-per-line discipline. Run with -race.
func TestParallelDisjointLines(t *testing.T) {
	h := New(1 << 20)
	const workers = 8
	const linesPer = 64
	bases := make([]uint64, workers)
	for i := range bases {
		a, err := h.AllocLines(linesPer * trace.LineSize)
		if err != nil {
			t.Fatal(err)
		}
		bases[i] = a
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := bases[w]
			for i := 0; i < 2000; i++ {
				off := uint64(i%(linesPer*8)) * 8
				h.Store64(base+off, uint64(w)<<32|uint64(i))
				if i%7 == 0 {
					h.FlushLine(trace.LineOf(base + off))
				}
				if i%31 == 0 {
					_ = h.PersistedUint64(base + off)
				}
			}
		}(w)
	}
	wg.Wait()
	h.PersistAll()
	if err := h.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		got := h.ReadUint64(bases[w])
		if got>>32 != uint64(w) {
			t.Fatalf("worker %d data corrupted: %#x", w, got)
		}
	}
}

// TestDifferentialSerialOracle drives the sharded Heap and the coarse-mutex
// SerialHeap with one random operation sequence and demands byte-identical
// volatile and durable views at every crash and at the end.
func TestDifferentialSerialOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		h := New(2048)
		s := NewSerial(2048)
		ha, _ := h.AllocLines(1024)
		sa, _ := s.AllocLines(1024)
		if ha != sa {
			return false
		}
		for op := 0; op < 300; op++ {
			switch rng.Intn(8) {
			case 0, 1, 2:
				off := uint64(rng.Intn(127)) * 8
				v := rng.Uint64()
				if h.Store64(ha+off, v) != s.Store64(sa+off, v) {
					return false
				}
			case 3:
				off := uint64(rng.Intn(1016))
				b := make([]byte, 1+rng.Intn(8))
				rng.Read(b)
				h.WriteBytes(ha+off, b)
				s.WriteBytes(sa+off, b)
			case 4:
				l := trace.LineOf(ha + uint64(rng.Intn(16))*trace.LineSize)
				h.FlushLine(l)
				s.FlushLine(l)
			case 5:
				off := uint64(rng.Intn(127)) * 8
				v := rng.Uint64()
				h.Write64Through(ha+off, v)
				s.Write64Through(sa+off, v)
			case 6:
				h.Crash()
				s.Crash()
			case 7:
				off := uint64(rng.Intn(127)) * 8
				if h.PersistedUint64(ha+off) != s.PersistedUint64(sa+off) {
					return false
				}
			}
		}
		h.PersistAll()
		s.PersistAll()
		if h.CheckConsistency() != nil || s.CheckConsistency() != nil {
			return false
		}
		for off := uint64(0); off < 1024; off += 8 {
			if h.ReadUint64(ha+off) != s.ReadUint64(sa+off) {
				return false
			}
			if h.PersistedUint64(ha+off) != s.PersistedUint64(sa+off) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
