package pmem

import (
	"sync/atomic"

	"nvmcache/internal/core"
	"nvmcache/internal/trace"
)

// Sink adapts a Heap to core.FlushSink so persistence policies drive real
// data movement: FlushLine and Drain both copy lines to the durable view
// (timing is hwsim's concern, not pmem's). Counters are atomic so
// FlushStats can be read while other threads' sinks are flushing.
type Sink struct {
	h        *Heap
	async    atomic.Int64
	drained  atomic.Int64
	barriers atomic.Int64
}

// NewSink returns a flush sink backed by h.
func NewSink(h *Heap) *Sink { return &Sink{h: h} }

// Heap returns the backing heap.
func (s *Sink) Heap() *Heap { return s.h }

// FlushLine implements core.FlushSink: an asynchronous line write-back.
func (s *Sink) FlushLine(line trace.LineAddr) {
	s.h.FlushLine(line)
	s.async.Add(1)
}

// FlushBatch implements core.BatchSink: the whole batch is persisted with
// one stripe-lock acquisition per involved stripe instead of one per line.
func (s *Sink) FlushBatch(lines []trace.LineAddr) {
	s.h.FlushLines(lines)
	s.async.Add(int64(len(lines)))
}

// Drain implements core.FlushSink: flush the given lines, then a
// persistence barrier.
func (s *Sink) Drain(lines []trace.LineAddr) {
	for _, l := range lines {
		s.h.FlushLine(l)
	}
	s.drained.Add(int64(len(lines)))
	if len(lines) == 0 {
		s.barriers.Add(1)
	}
}

// CaptureLine implements core.CaptureSink: snapshot the line's volatile
// contents on the owning mutator, for a later ApplyBatch/DrainCaptured from
// the pipeline worker.
func (s *Sink) CaptureLine(line trace.LineAddr, dst []byte) {
	s.h.CaptureLine(line, dst)
}

// ApplyBatch implements core.CaptureSink: persist captured images as
// asynchronous write-backs, stripe-grouped (one lock take per stripe per
// batch).
func (s *Sink) ApplyBatch(lines []trace.LineAddr, data []byte) {
	s.h.ApplyCaptured(lines, data)
	s.async.Add(int64(len(lines)))
}

// DrainCaptured implements core.CaptureSink: persist captured drain lines
// and count the FASE-end barrier, mirroring Drain's accounting.
func (s *Sink) DrainCaptured(lines []trace.LineAddr, data []byte) {
	s.h.ApplyCaptured(lines, data)
	s.drained.Add(int64(len(lines)))
	if len(lines) == 0 {
		s.barriers.Add(1)
	}
}

// Stats implements core.FlushSink.
func (s *Sink) Stats() core.FlushStats {
	return core.FlushStats{
		Async:    s.async.Load(),
		Drained:  s.drained.Load(),
		Barriers: s.barriers.Load(),
	}
}
