package pmem

import (
	"sync/atomic"

	"nvmcache/internal/core"
	"nvmcache/internal/trace"
)

// Sink adapts a Heap to core.FlushSink so persistence policies drive real
// data movement: FlushLine and Drain both copy lines to the durable view
// (timing is hwsim's concern, not pmem's). Counters are atomic so
// FlushStats can be read while other threads' sinks are flushing.
type Sink struct {
	h        *Heap
	async    atomic.Int64
	drained  atomic.Int64
	barriers atomic.Int64
}

// NewSink returns a flush sink backed by h.
func NewSink(h *Heap) *Sink { return &Sink{h: h} }

// Heap returns the backing heap.
func (s *Sink) Heap() *Heap { return s.h }

// FlushLine implements core.FlushSink: an asynchronous line write-back.
func (s *Sink) FlushLine(line trace.LineAddr) {
	s.h.FlushLine(line)
	s.async.Add(1)
}

// Drain implements core.FlushSink: flush the given lines, then a
// persistence barrier.
func (s *Sink) Drain(lines []trace.LineAddr) {
	for _, l := range lines {
		s.h.FlushLine(l)
	}
	s.drained.Add(int64(len(lines)))
	if len(lines) == 0 {
		s.barriers.Add(1)
	}
}

// Stats implements core.FlushSink.
func (s *Sink) Stats() core.FlushStats {
	return core.FlushStats{
		Async:    s.async.Load(),
		Drained:  s.drained.Load(),
		Barriers: s.barriers.Load(),
	}
}
