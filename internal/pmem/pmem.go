// Package pmem emulates byte-addressable non-volatile memory. The paper
// emulates NVRAM with DRAM-backed tmpfs; this package goes one step
// further and models the *volatility boundary* explicitly: every heap has a
// volatile view (the CPU-cache-resident state the program reads and
// writes) and a persisted view (what NVRAM would hold after a power
// failure). A cache-line flush copies one line from the volatile view to
// the persisted view; Crash discards the volatile view. That makes crash
// consistency directly testable, which tmpfs alone cannot do.
//
// Addresses are offsets into the heap. Offset 0 holds a 64-byte header
// (root pointer, allocator cursor, runtime-metadata pointer), so valid
// object addresses start at HeaderSize.
//
// # Concurrency architecture
//
// Heap is split into a lock-free data plane and a lock-striped control
// plane, so the store→flush hot path never serializes on a global mutex:
//
//   - Data plane: the volatile and persisted byte arrays. Reads and writes
//     go straight to memory with a bounds check and no lock. Correctness
//     rests on the single-writer-per-line discipline: every cache line
//     above the header is owned by at most one goroutine at a time (an
//     atlas.Thread or a kv shard writer), and only the owner writes or
//     flushes it. Stable (committed, unowned) lines may be read by anyone —
//     that is how kv snapshot readers work.
//   - Control plane: per-line dirty state, sharded over NumStripes
//     lock-striped maps keyed by line address. A store acquires exactly one
//     stripe (to mark its line dirty); stores to different lines hit
//     different stripes with probability (NumStripes-1)/NumStripes.
//   - Header plane: the root/alloc/meta words of line 0 are guarded by a
//     dedicated mutex and written through to the persisted view (they are
//     never dirty).
//
// Whole-heap operations — Crash, PersistAll, CheckConsistency — require
// the data plane to be externally quiesced (no goroutine mid-store); they
// then take every stripe in index order, so they are mutually exclusive
// with any straggling dirty-marking or flushing.
//
// SerialHeap (serial.go) is the original coarse-mutex implementation, kept
// as a strictly-serialized oracle for differential tests.
package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"nvmcache/internal/trace"
)

// HeaderSize is the reserved heap header: root pointer at offset 0,
// allocation cursor at offset 8, runtime metadata pointer at offset 16,
// auxiliary subsystem pointer at offset 24.
const HeaderSize = trace.LineSize

const (
	rootOff  = 0
	allocOff = 8
	metaOff  = 16
	auxOff   = 24
)

// NumStripes is the number of dirty-state lock stripes. Lines are spread
// over stripes by a multiplicative (Fibonacci) hash rather than line mod
// NumStripes: threads typically own contiguous, identically-sized regions,
// and a modulo mapping would send every thread's k-th line to the same
// stripe — lockstep mutators would then convoy on one stripe after
// another. The hash decorrelates equal offsets in different regions.
const (
	NumStripes  = 64
	stripeShift = 58 // 64 - log2(NumStripes)
	fibMix      = 0x9e3779b97f4a7c15
)

// stripe is one shard of the dirty-line control plane.
type stripe struct {
	mu    sync.Mutex
	dirty map[trace.LineAddr]struct{}
	// acquired counts lock acquisitions; it is mutated only under mu.
	acquired int64
	// contended counts acquisitions that found the lock held (updated
	// before blocking, hence atomic).
	contended atomic.Int64

	_ [32]byte // pad to 64 bytes: keep stripes off each other's cache lines
}

// lock acquires the stripe, counting contention.
func (st *stripe) lock() {
	if !st.mu.TryLock() {
		st.contended.Add(1)
		st.mu.Lock()
	}
	st.acquired++
}

// Heap is one emulated NVRAM region. Data-plane methods (reads, writes,
// line flushes) are lock-free over the byte arrays and safe for concurrent
// use under the single-writer-per-line discipline documented above;
// whole-heap methods additionally require quiescence.
type Heap struct {
	mem       []byte // volatile view: program reads and writes land here
	persisted []byte // durable view: updated only by line flushes
	hdr       sync.Mutex
	stripes   [NumStripes]stripe
	crashes   atomic.Int64
}

// New creates a heap of the given size (rounded up to a whole number of
// cache lines, minimum one line for the header).
func New(size int) *Heap {
	if size < HeaderSize {
		size = HeaderSize
	}
	if r := size % trace.LineSize; r != 0 {
		size += trace.LineSize - r
	}
	h := &Heap{
		mem:       make([]byte, size),
		persisted: make([]byte, size),
	}
	for i := range h.stripes {
		h.stripes[i].dirty = make(map[trace.LineAddr]struct{}, 16)
	}
	binary.LittleEndian.PutUint64(h.mem[allocOff:], HeaderSize)
	copy(h.persisted[:HeaderSize], h.mem[:HeaderSize])
	return h
}

// Size returns the heap size in bytes.
func (h *Heap) Size() uint64 { return uint64(len(h.mem)) }

func (h *Heap) check(addr, n uint64) {
	if addr+n > uint64(len(h.mem)) || addr+n < addr {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside heap of %d bytes", addr, addr+n, len(h.mem)))
	}
}

// CheckRange panics if [addr, addr+n) is not inside the heap; callers use
// it to validate a composite operation once up front.
func (h *Heap) CheckRange(addr, n uint64) { h.check(addr, n) }

func (h *Heap) stripeOf(line trace.LineAddr) *stripe {
	return &h.stripes[(uint64(line)*fibMix)>>stripeShift]
}

// markDirty records the lines covering [addr, addr+n) as dirty, one stripe
// acquisition per line (one total for any store within a single line).
func (h *Heap) markDirty(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr >> trace.LineShift
	last := (addr + n - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		line := trace.LineAddr(l)
		st := h.stripeOf(line)
		st.lock()
		st.dirty[line] = struct{}{}
		st.mu.Unlock()
	}
}

// flushLine copies one line to the durable view and clears its dirty mark,
// holding only that line's stripe.
func (h *Heap) flushLine(line trace.LineAddr) {
	start := line.ByteAddr()
	h.check(start, trace.LineSize)
	st := h.stripeOf(line)
	st.lock()
	copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
	delete(st.dirty, line)
	st.mu.Unlock()
}

// FlushLines persists a batch of lines grouped by stripe: each involved
// stripe lock is taken once per batch instead of once per line, which is
// the pmem side of the batched flush-pipeline seam. Semantically identical
// to calling flushLine on each element in order (later duplicates win —
// they copy the same volatile contents anyway).
func (h *Heap) FlushLines(lines []trace.LineAddr) {
	for _, line := range lines {
		h.check(line.ByteAddr(), trace.LineSize)
	}
	var done [NumStripes]bool
	for i, line := range lines {
		si := (uint64(line) * fibMix) >> stripeShift
		if done[si] {
			continue
		}
		done[si] = true
		st := &h.stripes[si]
		st.lock()
		for _, l := range lines[i:] {
			if (uint64(l)*fibMix)>>stripeShift != si {
				continue
			}
			start := l.ByteAddr()
			copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
			delete(st.dirty, l)
		}
		st.mu.Unlock()
	}
}

// CaptureLine snapshots a line's current volatile contents into dst
// (len ≥ trace.LineSize) with no locking: the caller must be the line's
// single writer. The snapshot can later be persisted from any goroutine
// with ApplyCaptured, which never touches the volatile plane.
func (h *Heap) CaptureLine(line trace.LineAddr, dst []byte) {
	start := line.ByteAddr()
	h.check(start, trace.LineSize)
	copy(dst[:trace.LineSize], h.mem[start:start+trace.LineSize])
}

// ApplyCaptured persists previously captured line images: data holds
// len(lines) consecutive trace.LineSize-byte snapshots taken by
// CaptureLine. Like FlushLines, each involved stripe lock is taken once per
// batch; each line's dirty mark is cleared. Applying a stale snapshot is
// safe under the runtime's write-cache protocol: any store newer than the
// snapshot re-inserted the line into its thread's write cache, so a fresher
// capture of the same line is guaranteed to follow before the owning FASE's
// epoch persists.
func (h *Heap) ApplyCaptured(lines []trace.LineAddr, data []byte) {
	if len(data) < len(lines)*trace.LineSize {
		panic(fmt.Sprintf("pmem: ApplyCaptured with %d lines but %d data bytes", len(lines), len(data)))
	}
	for _, line := range lines {
		h.check(line.ByteAddr(), trace.LineSize)
	}
	var done [NumStripes]bool
	for i, line := range lines {
		si := (uint64(line) * fibMix) >> stripeShift
		if done[si] {
			continue
		}
		done[si] = true
		st := &h.stripes[si]
		st.lock()
		for j := i; j < len(lines); j++ {
			l := lines[j]
			if (uint64(l)*fibMix)>>stripeShift != si {
				continue
			}
			start := l.ByteAddr()
			copy(h.persisted[start:start+trace.LineSize], data[j*trace.LineSize:(j+1)*trace.LineSize])
			delete(st.dirty, l)
		}
		st.mu.Unlock()
	}
}

// persistHeaderLocked writes line 0 through to the durable view. Caller
// holds hdr.
func (h *Heap) persistHeaderLocked() {
	copy(h.persisted[:HeaderSize], h.mem[:HeaderSize])
}

func (h *Heap) allocLocked(n uint64) (uint64, error) {
	cur := binary.LittleEndian.Uint64(h.mem[allocOff:])
	if r := cur % 8; r != 0 {
		cur += 8 - r
	}
	if cur+n > uint64(len(h.mem)) || cur+n < cur {
		return 0, fmt.Errorf("pmem: out of memory allocating %d bytes (cursor %d, heap %d)", n, cur, len(h.mem))
	}
	binary.LittleEndian.PutUint64(h.mem[allocOff:], cur+n)
	h.persistHeaderLocked()
	return cur, nil
}

// Alloc carves n bytes (8-byte aligned) out of the heap with a bump
// allocator and returns the address. The allocator cursor is persisted
// immediately so allocations survive crashes (recoverable allocation à la
// Makalu is out of scope; see DESIGN.md). Alloc fails when the heap is
// exhausted.
func (h *Heap) Alloc(n uint64) (uint64, error) {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	return h.allocLocked(n)
}

// AllocLines allocates n bytes aligned to a cache-line boundary, so the
// object's lines are not shared with neighbours.
func (h *Heap) AllocLines(n uint64) (uint64, error) {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	aligned := (binary.LittleEndian.Uint64(h.mem[allocOff:]) + 7) &^ 7
	if r := aligned % trace.LineSize; r != 0 {
		if _, err := h.allocLocked(trace.LineSize - r); err != nil { // pad
			return 0, err
		}
	}
	return h.allocLocked(n)
}

// SetRoot stores and persists the root object pointer the program uses to
// find its data after a restart.
func (h *Heap) SetRoot(addr uint64) {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	binary.LittleEndian.PutUint64(h.mem[rootOff:], addr)
	h.persistHeaderLocked()
}

// Root returns the persistent root pointer.
func (h *Heap) Root() uint64 {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	return binary.LittleEndian.Uint64(h.mem[rootOff:])
}

// SetMeta stores and persists the runtime-metadata pointer (the Atlas
// runtime keeps its crash-recovery log registry there, separate from the
// application's root object).
func (h *Heap) SetMeta(addr uint64) {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	binary.LittleEndian.PutUint64(h.mem[metaOff:], addr)
	h.persistHeaderLocked()
}

// Meta returns the runtime-metadata pointer (0 when unset).
func (h *Heap) Meta() uint64 {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	return binary.LittleEndian.Uint64(h.mem[metaOff:])
}

// SetAux stores and persists the auxiliary subsystem pointer: a fourth
// header word for optional durable structures layered on a heap (the kv
// checkpoint directory lives there). Heaps created before the word existed
// read it as 0, which every consumer must treat as "subsystem absent".
func (h *Heap) SetAux(addr uint64) {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	binary.LittleEndian.PutUint64(h.mem[auxOff:], addr)
	h.persistHeaderLocked()
}

// Aux returns the auxiliary subsystem pointer (0 when unset).
func (h *Heap) Aux() uint64 {
	h.hdr.Lock()
	defer h.hdr.Unlock()
	return binary.LittleEndian.Uint64(h.mem[auxOff:])
}

// WriteUint64 writes v at addr in the volatile view (lock-free data plane;
// one stripe acquisition to mark the line dirty).
func (h *Heap) WriteUint64(addr uint64, v uint64) {
	h.check(addr, 8)
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	h.markDirty(addr, 8)
}

// ReadUint64 reads from the volatile view. Lock-free: the caller must own
// the line or know it is stable (committed and unowned).
func (h *Heap) ReadUint64(addr uint64) uint64 {
	h.check(addr, 8)
	return binary.LittleEndian.Uint64(h.mem[addr:])
}

// ReadWordClamped reads the 64-bit word at addr, tolerating a word that
// overhangs the end of the heap: the missing high bytes read as zero. The
// undo log uses it to record the old value of the heap's final word when
// an unaligned store ends there.
func (h *Heap) ReadWordClamped(addr uint64) uint64 {
	if addr+8 <= uint64(len(h.mem)) {
		return binary.LittleEndian.Uint64(h.mem[addr:])
	}
	h.check(addr, 1)
	var buf [8]byte
	copy(buf[:], h.mem[addr:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Store64 is the hot-path persistent store primitive: one bounds check,
// read the old value, apply the volatile write, mark the line dirty (a
// single stripe acquisition for an aligned store). It returns the
// overwritten value so the caller can undo-log it.
func (h *Heap) Store64(addr uint64, v uint64) (old uint64) {
	h.check(addr, 8)
	old = binary.LittleEndian.Uint64(h.mem[addr:])
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	h.markDirty(addr, 8)
	return old
}

// Write64Through writes v to both the volatile and durable views without
// touching dirty state: a write-through store. The undo log uses it so
// that write-ahead records are durable the instant they are written, with
// zero stripe traffic on the store hot path. The caller must own the
// line.
func (h *Heap) Write64Through(addr uint64, v uint64) {
	h.check(addr, 8)
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	binary.LittleEndian.PutUint64(h.persisted[addr:], v)
}

// WriteBytes copies b into the volatile view at addr.
func (h *Heap) WriteBytes(addr uint64, b []byte) {
	h.check(addr, uint64(len(b)))
	copy(h.mem[addr:], b)
	h.markDirty(addr, uint64(len(b)))
}

// ReadBytes copies n bytes from the volatile view into a fresh slice.
func (h *Heap) ReadBytes(addr, n uint64) []byte {
	h.check(addr, n)
	out := make([]byte, n)
	copy(out, h.mem[addr:addr+n])
	return out
}

// PersistedUint64 reads the durable view (what a crash would preserve);
// recovery and tests use it. It takes the line's stripe so it cannot race
// the owner's concurrent flush of the same line.
func (h *Heap) PersistedUint64(addr uint64) uint64 {
	h.check(addr, 8)
	st := h.stripeOf(trace.LineOf(addr))
	st.lock()
	defer st.mu.Unlock()
	return binary.LittleEndian.Uint64(h.persisted[addr:])
}

// FlushLine copies one cache line from the volatile to the durable view:
// the clwb/clflush data movement. (Whether the flush also invalidates the
// hardware cache is a *cost* question handled by internal/hwsim; the data
// movement is the same.) Only the line's owner may flush it.
func (h *Heap) FlushLine(line trace.LineAddr) {
	h.flushLine(line)
}

// Persist flushes every line covering [addr, addr+n).
func (h *Heap) Persist(addr, n uint64) {
	if n == 0 {
		return
	}
	h.check(addr, n)
	first := addr >> trace.LineShift
	last := (addr + n - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		h.flushLine(trace.LineAddr(l))
	}
}

// lockAll acquires the header mutex and every stripe in index order (the
// whole-heap lock ordering; Crash, PersistAll and CheckConsistency use it).
func (h *Heap) lockAll() {
	h.hdr.Lock()
	for i := range h.stripes {
		h.stripes[i].lock()
	}
}

func (h *Heap) unlockAll() {
	for i := range h.stripes {
		h.stripes[i].mu.Unlock()
	}
	h.hdr.Unlock()
}

// DirtyLines returns the lines written since their last flush, in
// unspecified order.
func (h *Heap) DirtyLines() []trace.LineAddr {
	h.lockAll()
	defer h.unlockAll()
	var out []trace.LineAddr
	for i := range h.stripes {
		for l := range h.stripes[i].dirty {
			out = append(out, l)
		}
	}
	return out
}

// DirtyCount returns the number of unflushed lines.
func (h *Heap) DirtyCount() int {
	h.lockAll()
	defer h.unlockAll()
	n := 0
	for i := range h.stripes {
		n += len(h.stripes[i].dirty)
	}
	return n
}

// isDirty reports whether the line is awaiting a flush (test helper).
func (h *Heap) isDirty(line trace.LineAddr) bool {
	st := h.stripeOf(line)
	st.lock()
	defer st.mu.Unlock()
	_, ok := st.dirty[line]
	return ok
}

// Crash simulates a power failure: the volatile view is replaced by the
// durable view, losing every write that was never flushed. Mutators must
// be quiesced; Crash takes every stripe in order so it cannot interleave
// with a straggling dirty mark or flush.
func (h *Heap) Crash() {
	h.lockAll()
	defer h.unlockAll()
	copy(h.mem, h.persisted)
	for i := range h.stripes {
		clear(h.stripes[i].dirty)
	}
	h.crashes.Add(1)
}

// Crashes reports how many simulated failures the heap has survived.
func (h *Heap) Crashes() int { return int(h.crashes.Load()) }

// PersistAll flushes every dirty line (used by tests and by clean
// shutdown).
func (h *Heap) PersistAll() {
	h.lockAll()
	defer h.unlockAll()
	for i := range h.stripes {
		for l := range h.stripes[i].dirty {
			start := l.ByteAddr()
			copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
		}
		clear(h.stripes[i].dirty)
	}
}

// CheckConsistency verifies the cross-view invariant on a quiesced heap:
// every line that is not dirty must read identically in the volatile and
// durable views (dirty lines are exactly the divergence the flush queue
// still owes NVRAM).
func (h *Heap) CheckConsistency() error {
	h.lockAll()
	defer h.unlockAll()
	lines := uint64(len(h.mem)) >> trace.LineShift
	for l := uint64(0); l < lines; l++ {
		line := trace.LineAddr(l)
		if _, dirty := h.stripeOf(line).dirty[line]; dirty {
			continue
		}
		start := line.ByteAddr()
		for i := uint64(0); i < trace.LineSize; i++ {
			if h.mem[start+i] != h.persisted[start+i] {
				return fmt.Errorf("pmem: clean line %d diverges at byte %d (volatile %#x, durable %#x)",
					l, start+i, h.mem[start+i], h.persisted[start+i])
			}
		}
	}
	return nil
}

// StripeStat is one stripe's lock counters.
type StripeStat struct {
	// Acquired counts lock acquisitions (dirty marks, flushes, durable
	// reads).
	Acquired int64
	// Contended counts acquisitions that found the lock already held — the
	// cross-goroutine serialization the striping is meant to minimize.
	Contended int64
}

// StripeStats snapshots every stripe's counters, indexed by stripe.
func (h *Heap) StripeStats() []StripeStat {
	out := make([]StripeStat, NumStripes)
	for i := range h.stripes {
		st := &h.stripes[i]
		st.lock()
		out[i] = StripeStat{Acquired: st.acquired, Contended: st.contended.Load()}
		// Exclude this snapshot's own acquisition from the counters.
		out[i].Acquired--
		st.mu.Unlock()
	}
	return out
}

// StripeSummary aggregates StripeStats for reporting (the nvserver STATS
// line).
type StripeSummary struct {
	Stripes     int
	Acquired    int64
	Contended   int64
	HotStripe   int   // stripe with the most acquisitions
	HotAcquired int64 // its acquisition count
}

// SummarizeStripes aggregates per-stripe counters.
func SummarizeStripes(stats []StripeStat) StripeSummary {
	s := StripeSummary{Stripes: len(stats)}
	for i, st := range stats {
		s.Acquired += st.Acquired
		s.Contended += st.Contended
		if st.Acquired > s.HotAcquired {
			s.HotAcquired = st.Acquired
			s.HotStripe = i
		}
	}
	return s
}

// ContentionRatio returns contended/acquired (0 when idle).
func (s StripeSummary) ContentionRatio() float64 {
	if s.Acquired == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquired)
}

// String renders one STATS line.
func (s StripeSummary) String() string {
	return fmt.Sprintf("stripes=%d acquired=%d contended=%d contention=%.4f hot_stripe=%d hot_acquired=%d",
		s.Stripes, s.Acquired, s.Contended, s.ContentionRatio(), s.HotStripe, s.HotAcquired)
}
