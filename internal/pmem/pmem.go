// Package pmem emulates byte-addressable non-volatile memory. The paper
// emulates NVRAM with DRAM-backed tmpfs; this package goes one step
// further and models the *volatility boundary* explicitly: every heap has a
// volatile view (the CPU-cache-resident state the program reads and
// writes) and a persisted view (what NVRAM would hold after a power
// failure). A cache-line flush copies one line from the volatile view to
// the persisted view; Crash discards the volatile view. That makes crash
// consistency directly testable, which tmpfs alone cannot do.
//
// Addresses are offsets into the heap. Offset 0 holds a 64-byte header
// (root pointer, allocator cursor, runtime-metadata pointer), so valid
// object addresses start at HeaderSize.
package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"

	"nvmcache/internal/trace"
)

// HeaderSize is the reserved heap header: root pointer at offset 0,
// allocation cursor at offset 8, runtime metadata pointer at offset 16.
const HeaderSize = trace.LineSize

const (
	rootOff  = 0
	allocOff = 8
	metaOff  = 16
)

// Heap is one emulated NVRAM region. All methods are safe for concurrent
// use (one coarse mutex — the heap is the functional substrate; timing is
// measured by trace replay through internal/hwsim, never through here).
type Heap struct {
	mu        sync.Mutex
	mem       []byte // volatile view: program reads and writes land here
	persisted []byte // durable view: updated only by line flushes
	dirty     map[trace.LineAddr]struct{}
	crashes   int
}

// New creates a heap of the given size (rounded up to a whole number of
// cache lines, minimum one line for the header).
func New(size int) *Heap {
	if size < HeaderSize {
		size = HeaderSize
	}
	if r := size % trace.LineSize; r != 0 {
		size += trace.LineSize - r
	}
	h := &Heap{
		mem:       make([]byte, size),
		persisted: make([]byte, size),
		dirty:     make(map[trace.LineAddr]struct{}, 1024),
	}
	binary.LittleEndian.PutUint64(h.mem[allocOff:], HeaderSize)
	h.persistLocked(0, HeaderSize)
	return h
}

// Size returns the heap size in bytes.
func (h *Heap) Size() uint64 { return uint64(len(h.mem)) }

func (h *Heap) check(addr, n uint64) {
	if addr+n > uint64(len(h.mem)) || addr+n < addr {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside heap of %d bytes", addr, addr+n, len(h.mem)))
	}
}

func (h *Heap) markDirty(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr >> trace.LineShift
	last := (addr + n - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		h.dirty[trace.LineAddr(l)] = struct{}{}
	}
}

// flushLineLocked copies one line to the durable view. Caller holds mu.
func (h *Heap) flushLineLocked(line trace.LineAddr) {
	start := line.ByteAddr()
	h.check(start, trace.LineSize)
	copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
	delete(h.dirty, line)
}

// persistLocked flushes every line covering [addr, addr+n). Caller holds mu.
func (h *Heap) persistLocked(addr, n uint64) {
	if n == 0 {
		return
	}
	h.check(addr, n)
	first := addr >> trace.LineShift
	last := (addr + n - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		h.flushLineLocked(trace.LineAddr(l))
	}
}

func (h *Heap) allocLocked(n uint64) (uint64, error) {
	cur := binary.LittleEndian.Uint64(h.mem[allocOff:])
	if r := cur % 8; r != 0 {
		cur += 8 - r
	}
	if cur+n > uint64(len(h.mem)) || cur+n < cur {
		return 0, fmt.Errorf("pmem: out of memory allocating %d bytes (cursor %d, heap %d)", n, cur, len(h.mem))
	}
	binary.LittleEndian.PutUint64(h.mem[allocOff:], cur+n)
	h.markDirty(allocOff, 8)
	h.persistLocked(0, HeaderSize)
	return cur, nil
}

// Alloc carves n bytes (8-byte aligned) out of the heap with a bump
// allocator and returns the address. The allocator cursor is persisted
// immediately so allocations survive crashes (recoverable allocation à la
// Makalu is out of scope; see DESIGN.md). Alloc fails when the heap is
// exhausted.
func (h *Heap) Alloc(n uint64) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocLocked(n)
}

// AllocLines allocates n bytes aligned to a cache-line boundary, so the
// object's lines are not shared with neighbours.
func (h *Heap) AllocLines(n uint64) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	aligned := (binary.LittleEndian.Uint64(h.mem[allocOff:]) + 7) &^ 7
	if r := aligned % trace.LineSize; r != 0 {
		if _, err := h.allocLocked(trace.LineSize - r); err != nil { // pad
			return 0, err
		}
	}
	return h.allocLocked(n)
}

// SetRoot stores and persists the root object pointer the program uses to
// find its data after a restart.
func (h *Heap) SetRoot(addr uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	binary.LittleEndian.PutUint64(h.mem[rootOff:], addr)
	h.persistLocked(0, HeaderSize)
}

// Root returns the persistent root pointer.
func (h *Heap) Root() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return binary.LittleEndian.Uint64(h.mem[rootOff:])
}

// SetMeta stores and persists the runtime-metadata pointer (the Atlas
// runtime keeps its crash-recovery log registry there, separate from the
// application's root object).
func (h *Heap) SetMeta(addr uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	binary.LittleEndian.PutUint64(h.mem[metaOff:], addr)
	h.persistLocked(0, HeaderSize)
}

// Meta returns the runtime-metadata pointer (0 when unset).
func (h *Heap) Meta() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return binary.LittleEndian.Uint64(h.mem[metaOff:])
}

// WriteUint64 writes v at addr in the volatile view.
func (h *Heap) WriteUint64(addr uint64, v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	h.markDirty(addr, 8)
}

// ReadUint64 reads from the volatile view.
func (h *Heap) ReadUint64(addr uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	return binary.LittleEndian.Uint64(h.mem[addr:])
}

// WriteBytes copies b into the volatile view at addr.
func (h *Heap) WriteBytes(addr uint64, b []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, uint64(len(b)))
	copy(h.mem[addr:], b)
	h.markDirty(addr, uint64(len(b)))
}

// ReadBytes copies n bytes from the volatile view into a fresh slice.
func (h *Heap) ReadBytes(addr, n uint64) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, n)
	out := make([]byte, n)
	copy(out, h.mem[addr:addr+n])
	return out
}

// PersistedUint64 reads the durable view (what a crash would preserve);
// recovery and tests use it.
func (h *Heap) PersistedUint64(addr uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	return binary.LittleEndian.Uint64(h.persisted[addr:])
}

// FlushLine copies one cache line from the volatile to the durable view:
// the clwb/clflush data movement. (Whether the flush also invalidates the
// hardware cache is a *cost* question handled by internal/hwsim; the data
// movement is the same.)
func (h *Heap) FlushLine(line trace.LineAddr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLineLocked(line)
}

// Persist flushes every line covering [addr, addr+n).
func (h *Heap) Persist(addr, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.persistLocked(addr, n)
}

// DirtyLines returns the lines written since their last flush, in
// unspecified order.
func (h *Heap) DirtyLines() []trace.LineAddr {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]trace.LineAddr, 0, len(h.dirty))
	for l := range h.dirty {
		out = append(out, l)
	}
	return out
}

// DirtyCount returns the number of unflushed lines.
func (h *Heap) DirtyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.dirty)
}

// Crash simulates a power failure: the volatile view is replaced by the
// durable view, losing every write that was never flushed.
func (h *Heap) Crash() {
	h.mu.Lock()
	defer h.mu.Unlock()
	copy(h.mem, h.persisted)
	clear(h.dirty)
	h.crashes++
}

// Crashes reports how many simulated failures the heap has survived.
func (h *Heap) Crashes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crashes
}

// PersistAll flushes every dirty line (used by tests and by clean
// shutdown).
func (h *Heap) PersistAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for l := range h.dirty {
		start := l.ByteAddr()
		copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
	}
	clear(h.dirty)
}

// Flusher adapts the heap to core.Flusher so persistence policies can
// drive real data movement: FlushAsync and FlushDrain both copy lines to
// the durable view (timing is hwsim's concern, not pmem's).
type Flusher struct{ H *Heap }

// FlushAsync implements core.Flusher.
func (f Flusher) FlushAsync(line trace.LineAddr) { f.H.FlushLine(line) }

// FlushDrain implements core.Flusher.
func (f Flusher) FlushDrain(lines []trace.LineAddr) {
	for _, l := range lines {
		f.H.FlushLine(l)
	}
}
