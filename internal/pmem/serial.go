package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"

	"nvmcache/internal/trace"
)

// SerialHeap is the original coarse-mutex heap: every operation takes one
// global lock, so all accesses are strictly serialized. It is kept (no
// build tag needed) for tests that want a fully serialized oracle — the
// differential test in pmem_test.go drives Heap and SerialHeap with the
// same operation sequence and demands identical views — and for callers
// that cannot promise the single-writer-per-line discipline the sharded
// Heap's lock-free data plane requires.
type SerialHeap struct {
	mu        sync.Mutex
	mem       []byte
	persisted []byte
	dirty     map[trace.LineAddr]struct{}
	crashes   int
}

// NewSerial creates a strictly serialized heap of the given size (rounded
// up to a whole number of cache lines, minimum one line for the header).
func NewSerial(size int) *SerialHeap {
	if size < HeaderSize {
		size = HeaderSize
	}
	if r := size % trace.LineSize; r != 0 {
		size += trace.LineSize - r
	}
	h := &SerialHeap{
		mem:       make([]byte, size),
		persisted: make([]byte, size),
		dirty:     make(map[trace.LineAddr]struct{}, 1024),
	}
	binary.LittleEndian.PutUint64(h.mem[allocOff:], HeaderSize)
	h.persistLocked(0, HeaderSize)
	return h
}

// Size returns the heap size in bytes.
func (h *SerialHeap) Size() uint64 { return uint64(len(h.mem)) }

func (h *SerialHeap) check(addr, n uint64) {
	if addr+n > uint64(len(h.mem)) || addr+n < addr {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside heap of %d bytes", addr, addr+n, len(h.mem)))
	}
}

func (h *SerialHeap) markDirty(addr, n uint64) {
	if n == 0 {
		return
	}
	first := addr >> trace.LineShift
	last := (addr + n - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		h.dirty[trace.LineAddr(l)] = struct{}{}
	}
}

func (h *SerialHeap) flushLineLocked(line trace.LineAddr) {
	start := line.ByteAddr()
	h.check(start, trace.LineSize)
	copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
	delete(h.dirty, line)
}

func (h *SerialHeap) persistLocked(addr, n uint64) {
	if n == 0 {
		return
	}
	h.check(addr, n)
	first := addr >> trace.LineShift
	last := (addr + n - 1) >> trace.LineShift
	for l := first; l <= last; l++ {
		h.flushLineLocked(trace.LineAddr(l))
	}
}

func (h *SerialHeap) allocLocked(n uint64) (uint64, error) {
	cur := binary.LittleEndian.Uint64(h.mem[allocOff:])
	if r := cur % 8; r != 0 {
		cur += 8 - r
	}
	if cur+n > uint64(len(h.mem)) || cur+n < cur {
		return 0, fmt.Errorf("pmem: out of memory allocating %d bytes (cursor %d, heap %d)", n, cur, len(h.mem))
	}
	binary.LittleEndian.PutUint64(h.mem[allocOff:], cur+n)
	h.persistLocked(0, HeaderSize)
	return cur, nil
}

// Alloc carves n bytes (8-byte aligned) out of the heap.
func (h *SerialHeap) Alloc(n uint64) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.allocLocked(n)
}

// AllocLines allocates n bytes aligned to a cache-line boundary.
func (h *SerialHeap) AllocLines(n uint64) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	aligned := (binary.LittleEndian.Uint64(h.mem[allocOff:]) + 7) &^ 7
	if r := aligned % trace.LineSize; r != 0 {
		if _, err := h.allocLocked(trace.LineSize - r); err != nil { // pad
			return 0, err
		}
	}
	return h.allocLocked(n)
}

// SetRoot stores and persists the root object pointer.
func (h *SerialHeap) SetRoot(addr uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	binary.LittleEndian.PutUint64(h.mem[rootOff:], addr)
	h.persistLocked(0, HeaderSize)
}

// Root returns the persistent root pointer.
func (h *SerialHeap) Root() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return binary.LittleEndian.Uint64(h.mem[rootOff:])
}

// SetMeta stores and persists the runtime-metadata pointer.
func (h *SerialHeap) SetMeta(addr uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	binary.LittleEndian.PutUint64(h.mem[metaOff:], addr)
	h.persistLocked(0, HeaderSize)
}

// Meta returns the runtime-metadata pointer (0 when unset).
func (h *SerialHeap) Meta() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return binary.LittleEndian.Uint64(h.mem[metaOff:])
}

// WriteUint64 writes v at addr in the volatile view.
func (h *SerialHeap) WriteUint64(addr uint64, v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	h.markDirty(addr, 8)
}

// ReadUint64 reads from the volatile view.
func (h *SerialHeap) ReadUint64(addr uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	return binary.LittleEndian.Uint64(h.mem[addr:])
}

// Store64 writes v at addr and returns the overwritten value, matching
// Heap.Store64's single-entry store primitive.
func (h *SerialHeap) Store64(addr uint64, v uint64) (old uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	old = binary.LittleEndian.Uint64(h.mem[addr:])
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	h.markDirty(addr, 8)
	return old
}

// Write64Through writes v to both views without marking the line dirty,
// matching Heap.Write64Through.
func (h *SerialHeap) Write64Through(addr uint64, v uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	binary.LittleEndian.PutUint64(h.mem[addr:], v)
	binary.LittleEndian.PutUint64(h.persisted[addr:], v)
}

// WriteBytes copies b into the volatile view at addr.
func (h *SerialHeap) WriteBytes(addr uint64, b []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, uint64(len(b)))
	copy(h.mem[addr:], b)
	h.markDirty(addr, uint64(len(b)))
}

// ReadBytes copies n bytes from the volatile view into a fresh slice.
func (h *SerialHeap) ReadBytes(addr, n uint64) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, n)
	out := make([]byte, n)
	copy(out, h.mem[addr:addr+n])
	return out
}

// PersistedUint64 reads the durable view.
func (h *SerialHeap) PersistedUint64(addr uint64) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.check(addr, 8)
	return binary.LittleEndian.Uint64(h.persisted[addr:])
}

// FlushLine copies one cache line from the volatile to the durable view.
func (h *SerialHeap) FlushLine(line trace.LineAddr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.flushLineLocked(line)
}

// Persist flushes every line covering [addr, addr+n).
func (h *SerialHeap) Persist(addr, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.persistLocked(addr, n)
}

// DirtyLines returns the unflushed lines in unspecified order.
func (h *SerialHeap) DirtyLines() []trace.LineAddr {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]trace.LineAddr, 0, len(h.dirty))
	for l := range h.dirty {
		out = append(out, l)
	}
	return out
}

// DirtyCount returns the number of unflushed lines.
func (h *SerialHeap) DirtyCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.dirty)
}

// Crash simulates a power failure.
func (h *SerialHeap) Crash() {
	h.mu.Lock()
	defer h.mu.Unlock()
	copy(h.mem, h.persisted)
	clear(h.dirty)
	h.crashes++
}

// Crashes reports how many simulated failures the heap has survived.
func (h *SerialHeap) Crashes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.crashes
}

// PersistAll flushes every dirty line.
func (h *SerialHeap) PersistAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for l := range h.dirty {
		start := l.ByteAddr()
		copy(h.persisted[start:start+trace.LineSize], h.mem[start:start+trace.LineSize])
	}
	clear(h.dirty)
}

// CheckConsistency verifies that every clean line reads identically in the
// volatile and durable views, matching Heap.CheckConsistency.
func (h *SerialHeap) CheckConsistency() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	lines := uint64(len(h.mem)) >> trace.LineShift
	for l := uint64(0); l < lines; l++ {
		line := trace.LineAddr(l)
		if _, dirty := h.dirty[line]; dirty {
			continue
		}
		start := line.ByteAddr()
		for i := uint64(0); i < trace.LineSize; i++ {
			if h.mem[start+i] != h.persisted[start+i] {
				return fmt.Errorf("pmem: clean line %d diverges at byte %d (volatile %#x, durable %#x)",
					l, start+i, h.mem[start+i], h.persisted[start+i])
			}
		}
	}
	return nil
}
