package pmem

import (
	"testing"

	"nvmcache/internal/trace"
)

func totalAcquired(h *Heap) int64 {
	var n int64
	for _, s := range h.StripeStats() {
		n += s.Acquired
	}
	return n
}

// TestFlushLinesBatchedLocking pins the batched flush path's two contracts:
// it persists exactly what per-line FlushLine calls would, and it takes each
// involved stripe lock once per batch instead of once per line. Both
// measurements carry the identical StripeStats snapshot bias, so the
// comparison is exact.
func TestFlushLinesBatchedLocking(t *testing.T) {
	const lines = 128
	mk := func() (*Heap, []trace.LineAddr) {
		h := New(1 << 20)
		base, err := h.AllocLines(lines * trace.LineSize)
		if err != nil {
			t.Fatal(err)
		}
		ls := make([]trace.LineAddr, lines)
		for i := range ls {
			addr := base + uint64(i)*trace.LineSize
			h.Store64(addr, uint64(i)+1)
			ls[i] = trace.LineOf(addr)
		}
		return h, ls
	}
	h1, ls1 := mk()
	before1 := totalAcquired(h1)
	for _, l := range ls1 {
		h1.FlushLine(l)
	}
	perLine := totalAcquired(h1) - before1

	h2, ls2 := mk()
	before2 := totalAcquired(h2)
	h2.FlushLines(ls2)
	batched := totalAcquired(h2) - before2

	if batched >= perLine {
		t.Fatalf("batched flush acquired %d stripe locks, per-line %d: batching saved nothing", batched, perLine)
	}
	for _, h := range []*Heap{h1, h2} {
		if n := h.DirtyCount(); n != 0 {
			t.Fatalf("%d dirty lines after flush", n)
		}
		if err := h.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range ls2 {
		if got := h2.PersistedUint64(l.ByteAddr()); got != uint64(i)+1 {
			t.Fatalf("line %d persisted %d, want %d", i, got, i+1)
		}
	}
}

// TestApplyCapturedSnapshots covers the capture seam the pipeline worker
// uses: ApplyBatch persists the snapshot taken at enqueue time, not the
// volatile contents at apply time — and the write-cache protocol's promise
// (a fresher capture follows any newer store) restores convergence.
func TestApplyCapturedSnapshots(t *testing.T) {
	h := New(1 << 20)
	base, err := h.AllocLines(trace.LineSize)
	if err != nil {
		t.Fatal(err)
	}
	line := trace.LineOf(base)
	snap := make([]byte, trace.LineSize)

	h.Store64(base, 111)
	h.CaptureLine(line, snap)
	h.Store64(base, 222) // newer store, not in the snapshot
	h.ApplyCaptured([]trace.LineAddr{line}, snap)
	if got := h.PersistedUint64(base); got != 111 {
		t.Fatalf("persisted %d, want the captured snapshot 111", got)
	}
	// The fresher capture that the runtime guarantees will follow:
	h.CaptureLine(line, snap)
	h.ApplyCaptured([]trace.LineAddr{line}, snap)
	if got := h.PersistedUint64(base); got != 222 {
		t.Fatalf("persisted %d after fresh capture, want 222", got)
	}
	if n := h.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty lines after apply", n)
	}
	if err := h.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
