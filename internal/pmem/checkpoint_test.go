package pmem

import (
	"bytes"
	"fmt"
	"testing"
)

func testRegion(t *testing.T, payloadCap uint64) (*Heap, *CheckpointRegion) {
	t.Helper()
	h := New(1 << 16)
	r, err := NewCheckpointRegion(h, payloadCap)
	if err != nil {
		t.Fatalf("NewCheckpointRegion: %v", err)
	}
	return h, r
}

func TestCheckpointPublishAlternates(t *testing.T) {
	h, r := testRegion(t, 4096)
	if _, _, ok := r.Newest(); ok {
		t.Fatalf("fresh region reports a valid checkpoint")
	}
	var lastSlot = -1
	for i := 1; i <= 5; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, 100*i)
		meta := [3]uint64{uint64(i), uint64(i * 10), uint64(i * 100)}
		seq, err := r.Publish(payload, meta, nil)
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("publish %d sealed seq %d", i, seq)
		}
		img, skipped, ok := r.Newest()
		if !ok || skipped != 0 {
			t.Fatalf("publish %d: newest ok=%v skipped=%d", i, ok, skipped)
		}
		if img.Seq != seq || img.Meta != meta || !bytes.Equal(img.Payload, payload) {
			t.Fatalf("publish %d: image mismatch (seq %d meta %v, %d payload bytes)",
				i, img.Seq, img.Meta, len(img.Payload))
		}
		if img.Slot == lastSlot {
			t.Fatalf("publish %d reused slot %d", i, img.Slot)
		}
		lastSlot = img.Slot
	}
	if err := h.CheckConsistency(); err != nil {
		t.Fatalf("consistency after publishes: %v", err)
	}
	if n := h.DirtyCount(); n != 0 {
		t.Fatalf("%d dirty lines after publishes", n)
	}
}

func TestCheckpointPayloadTooLarge(t *testing.T) {
	_, r := testRegion(t, 128)
	if _, err := r.Publish(make([]byte, 129), [3]uint64{}, nil); err == nil {
		t.Fatalf("oversized payload accepted")
	}
}

// A crash at any publish stage must leave the previous checkpoint as the
// newest valid image: the torn target slot is invalidated up front and only
// the final seq write seals it.
func TestCheckpointTornPublishFallsBack(t *testing.T) {
	type boom struct{ stage PublishStage }
	prev := []byte("previous checkpoint payload, definitely longer than one chunk? no - one chunk")
	for _, crashAt := range []PublishStage{StagePage, StageSeal} {
		h, r := testRegion(t, 4096)
		if _, err := r.Publish(prev, [3]uint64{7, 8, 9}, nil); err != nil {
			t.Fatalf("publish prev: %v", err)
		}
		func() {
			defer func() {
				if v := recover(); v == nil {
					t.Fatalf("stage %d: hook did not fire", crashAt)
				}
			}()
			_, _ = r.Publish(bytes.Repeat([]byte{0xAB}, 3000), [3]uint64{1, 2, 3},
				func(stage PublishStage, chunk int) {
					if stage == crashAt {
						panic(boom{stage})
					}
				})
		}()
		h.Crash()
		img, _, ok := r.Newest()
		if !ok {
			t.Fatalf("stage %d: no valid checkpoint after torn publish", crashAt)
		}
		if img.Seq != 1 || !bytes.Equal(img.Payload, prev) || img.Meta != [3]uint64{7, 8, 9} {
			t.Fatalf("stage %d: recovered wrong image (seq %d)", crashAt, img.Seq)
		}
		// The torn slot is reusable: the next publish seals seq 2.
		if seq, err := r.Publish([]byte("again"), [3]uint64{}, nil); err != nil || seq != 2 {
			t.Fatalf("stage %d: republish after torn publish: seq %d err %v", crashAt, seq, err)
		}
	}
}

// Byte rot in the newest slot's payload must fail its CRC and fall back to
// the older slot, reporting the skip.
func TestCheckpointCorruptionFallsBack(t *testing.T) {
	h, r := testRegion(t, 4096)
	older := []byte("older but intact")
	if _, err := r.Publish(older, [3]uint64{1, 0, 0}, nil); err != nil {
		t.Fatalf("publish older: %v", err)
	}
	if _, err := r.Publish(bytes.Repeat([]byte{0x55}, 2048), [3]uint64{2, 0, 0}, nil); err != nil {
		t.Fatalf("publish newer: %v", err)
	}
	img, _, _ := r.Newest()
	newerSlot := img.Slot
	r.FlipPayloadByte(newerSlot, 1027)
	if err := h.CheckConsistency(); err != nil {
		t.Fatalf("FlipPayloadByte broke view consistency: %v", err)
	}
	img, skipped, ok := r.Newest()
	if !ok || skipped != 1 {
		t.Fatalf("after corruption: ok=%v skipped=%d", ok, skipped)
	}
	if img.Seq != 1 || !bytes.Equal(img.Payload, older) {
		t.Fatalf("after corruption: recovered seq %d, want the older image", img.Seq)
	}
	// Corrupt the survivor too: no valid checkpoint remains.
	r.FlipPayloadByte(img.Slot, 3)
	if _, skipped, ok := r.Newest(); ok || skipped != 2 {
		t.Fatalf("after double corruption: ok=%v skipped=%d", ok, skipped)
	}
}

func TestCheckpointReattach(t *testing.T) {
	h, r := testRegion(t, 512)
	want := []byte("survives reopen")
	if _, err := r.Publish(want, [3]uint64{4, 5, 6}, nil); err != nil {
		t.Fatalf("publish: %v", err)
	}
	h.Crash()
	r2, err := OpenCheckpointRegion(h, r.Base())
	if err != nil {
		t.Fatalf("OpenCheckpointRegion: %v", err)
	}
	if r2.PayloadCap() != 512 {
		t.Fatalf("reopened payload cap %d", r2.PayloadCap())
	}
	img, _, ok := r2.Newest()
	if !ok || !bytes.Equal(img.Payload, want) || img.Meta != [3]uint64{4, 5, 6} {
		t.Fatalf("reopened image wrong (ok=%v)", ok)
	}
	if _, err := OpenCheckpointRegion(h, 0); err == nil {
		t.Fatalf("OpenCheckpointRegion(0) succeeded")
	}
}

func TestCheckpointPageHookPerChunk(t *testing.T) {
	_, r := testRegion(t, 8192)
	var stages []string
	payload := make([]byte, 2*ckptChunk+1) // 3 chunks
	if _, err := r.Publish(payload, [3]uint64{}, func(stage PublishStage, chunk int) {
		stages = append(stages, fmt.Sprintf("%d/%d", stage, chunk))
	}); err != nil {
		t.Fatalf("publish: %v", err)
	}
	want := []string{"0/0", "0/1", "0/2", "1/0"}
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Fatalf("hook stages %v, want %v", stages, want)
	}
}
