package pmem

import (
	"bytes"
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"

	"nvmcache/internal/trace"
)

func TestNewRoundsToLines(t *testing.T) {
	h := New(100)
	if h.Size()%trace.LineSize != 0 {
		t.Fatalf("size %d not line-aligned", h.Size())
	}
	if h.Size() < 128 {
		t.Fatalf("size %d too small for 100 bytes", h.Size())
	}
}

func TestAllocBumpAndAlign(t *testing.T) {
	h := New(4096)
	a, err := h.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if a != HeaderSize {
		t.Fatalf("first alloc at %d, want %d", a, HeaderSize)
	}
	b, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if b%8 != 0 || b < a+10 {
		t.Fatalf("second alloc at %d", b)
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := New(256)
	if _, err := h.Alloc(1 << 20); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
	if _, err := h.Alloc(100); err != nil {
		t.Fatalf("reasonable alloc failed after failed alloc: %v", err)
	}
}

func TestAllocLinesAligned(t *testing.T) {
	h := New(4096)
	if _, err := h.Alloc(13); err != nil { // misalign the cursor
		t.Fatal(err)
	}
	a, err := h.AllocLines(128)
	if err != nil {
		t.Fatal(err)
	}
	if a%trace.LineSize != 0 {
		t.Fatalf("AllocLines returned %d, not line-aligned", a)
	}
}

func TestAllocSurvivesCrash(t *testing.T) {
	h := New(4096)
	a, _ := h.Alloc(64)
	h.Crash()
	b, _ := h.Alloc(64)
	if b <= a {
		t.Fatalf("allocator cursor lost in crash: %d then %d", a, b)
	}
}

func TestWriteReadUint64(t *testing.T) {
	h := New(1024)
	a, _ := h.Alloc(8)
	h.WriteUint64(a, 0xdeadbeefcafe)
	if got := h.ReadUint64(a); got != 0xdeadbeefcafe {
		t.Fatalf("read back %x", got)
	}
}

func TestWriteReadBytes(t *testing.T) {
	h := New(1024)
	a, _ := h.Alloc(16)
	h.WriteBytes(a, []byte("hello pmem"))
	if got := h.ReadBytes(a, 10); !bytes.Equal(got, []byte("hello pmem")) {
		t.Fatalf("read back %q", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	h := New(128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds write did not panic")
		}
	}()
	h.WriteUint64(h.Size()-4, 1)
}

func TestCrashLosesUnflushedWrites(t *testing.T) {
	h := New(1024)
	a, _ := h.Alloc(8)
	h.WriteUint64(a, 42)
	h.Crash()
	if got := h.ReadUint64(a); got != 0 {
		t.Fatalf("unflushed write survived crash: %d", got)
	}
	if h.Crashes() != 1 {
		t.Errorf("Crashes = %d", h.Crashes())
	}
}

func TestFlushLineMakesWriteDurable(t *testing.T) {
	h := New(1024)
	a, _ := h.AllocLines(8)
	h.WriteUint64(a, 42)
	h.FlushLine(trace.LineOf(a))
	h.Crash()
	if got := h.ReadUint64(a); got != 42 {
		t.Fatalf("flushed write lost in crash: %d", got)
	}
}

func TestPersistRange(t *testing.T) {
	h := New(4096)
	a, _ := h.AllocLines(200) // spans 4 lines
	data := make([]byte, 200)
	for i := range data {
		data[i] = byte(i)
	}
	h.WriteBytes(a, data)
	h.Persist(a, 200)
	h.Crash()
	if got := h.ReadBytes(a, 200); !bytes.Equal(got, data) {
		t.Fatal("persisted range corrupted by crash")
	}
}

func TestDirtyTracking(t *testing.T) {
	h := New(4096)
	a, _ := h.AllocLines(128) // 2 lines
	before := h.DirtyCount()
	h.WriteBytes(a, make([]byte, 128))
	if h.DirtyCount() != before+2 {
		t.Fatalf("dirty count %d, want %d", h.DirtyCount(), before+2)
	}
	h.FlushLine(trace.LineOf(a))
	if h.DirtyCount() != before+1 {
		t.Fatalf("dirty count after flush %d", h.DirtyCount())
	}
	h.PersistAll()
	if h.DirtyCount() != 0 {
		t.Fatal("PersistAll left dirty lines")
	}
}

func TestSetRootPersists(t *testing.T) {
	h := New(1024)
	a, _ := h.Alloc(8)
	h.SetRoot(a)
	h.Crash()
	if h.Root() != a {
		t.Fatalf("root lost in crash: %d", h.Root())
	}
}

func TestPersistedUint64ReadsDurableView(t *testing.T) {
	h := New(1024)
	a, _ := h.AllocLines(8)
	h.WriteUint64(a, 7)
	if h.PersistedUint64(a) != 0 {
		t.Fatal("durable view saw unflushed write")
	}
	h.FlushLine(trace.LineOf(a))
	if h.PersistedUint64(a) != 7 {
		t.Fatal("durable view missed flushed write")
	}
}

func TestSinkAdapter(t *testing.T) {
	h := New(1024)
	a, _ := h.AllocLines(8)
	s := NewSink(h)
	h.WriteUint64(a, 9)
	s.FlushLine(trace.LineOf(a))
	h.Crash()
	if h.ReadUint64(a) != 9 {
		t.Fatal("FlushLine did not persist")
	}
	h.WriteUint64(a, 10)
	s.Drain([]trace.LineAddr{trace.LineOf(a)})
	h.Crash()
	if h.ReadUint64(a) != 10 {
		t.Fatal("Drain did not persist")
	}
	st := s.Stats()
	if st.Async != 1 || st.Drained != 1 || st.Barriers != 0 || st.Total() != 2 {
		t.Fatalf("stats %+v", st)
	}
	s.Drain(nil)
	if s.Stats().Barriers != 1 {
		t.Fatal("empty drain not counted as barrier")
	}
}

// Property: after any sequence of writes, flushes and crashes, the volatile
// view of a line equals the durable view if the line is not dirty; and a
// crash always makes every line clean and equal across views.
func TestQuickCrashSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		h := New(2048)
		base, _ := h.AllocLines(1024) // 16 lines
		for op := 0; op < 200; op++ {
			switch rng.Intn(5) {
			case 0, 1, 2:
				off := uint64(rng.Intn(127)) * 8
				h.WriteUint64(base+off, rng.Uint64())
			case 3:
				l := trace.LineOf(base + uint64(rng.Intn(16))*trace.LineSize)
				h.FlushLine(l)
			case 4:
				h.Crash()
				if h.DirtyCount() != 0 {
					return false
				}
				for i := 0; i < 16; i++ {
					addr := base + uint64(i)*trace.LineSize
					if h.ReadUint64(addr) != h.PersistedUint64(addr) {
						return false
					}
				}
			}
		}
		// Clean lines always agree across views.
		for i := 0; i < 16; i++ {
			addr := base + uint64(i)*trace.LineSize
			if !h.isDirty(trace.LineOf(addr)) {
				if h.ReadUint64(addr) != h.PersistedUint64(addr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
