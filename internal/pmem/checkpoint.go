package pmem

import (
	"fmt"
	"hash/crc64"

	"nvmcache/internal/trace"
)

// CheckpointRegion is a crash-safe double-buffered publication area: a
// writer repeatedly publishes a payload (a serialized snapshot) and a
// reader after a crash recovers the newest payload that was *completely*
// published. Torn publishes are detected, never silently consumed.
//
// The design is the classic A/B slot scheme (LMDB's double meta page,
// ZFS's uberblock ring at depth 2): two slots alternate as publish
// targets, each sealed by a monotonically increasing sequence number that
// is written — durably, via write-through — only after the payload and
// the rest of the header are durable. A crash mid-publish leaves the
// target slot with seq 0 (it is explicitly invalidated before the payload
// is touched), so the previous slot is still intact; a crash that tears
// the payload without reaching the seal leaves a CRC mismatch. Validation
// therefore accepts a slot only when its seq is nonzero, its length is in
// bounds, and the CRC-64 (ECMA) of the payload matches the sealed header.
//
// Layout (all line-aligned so slots never share lines with neighbours):
//
//	base+0:   magic
//	base+8:   payload capacity in bytes
//	base+64:  slot 0
//	base+64+slotSize: slot 1
//
// and each slot:
//
//	slot+0:   seq   (0 = empty or mid-publish)
//	slot+8:   payload length in bytes
//	slot+16:  CRC-64/ECMA of the payload
//	slot+24:  meta[0]   } three opaque words the publisher threads
//	slot+32:  meta[1]   } through to recovery (the kv layer stores
//	slot+40:  meta[2]   } generation, journal position, undo epoch)
//	slot+64:  payload
//
// Single-writer: only one goroutine may Publish at a time (the kv shard
// writer, or the recovery worker re-establishing the invariant). Newest
// may run on any goroutine once the heap is quiesced (post-crash).
type CheckpointRegion struct {
	heap       *Heap
	base       uint64
	payloadCap uint64
}

const (
	ckptMagic = 0x4e564d434b505431 // "NVMCKPT1"

	ckptSeqOff  = 0
	ckptLenOff  = 8
	ckptCRCOff  = 16
	ckptMetaOff = 24
	ckptHdr     = trace.LineSize

	// ckptChunk is the publish granularity: the payload is written and
	// persisted in chunks this large, with the page hook fired before each
	// one, so crash exploration gets one numbered site per chunk.
	ckptChunk = 1024
)

var ckptTable = crc64.MakeTable(crc64.ECMA)

func ckptAlignLines(n uint64) uint64 {
	if r := n % trace.LineSize; r != 0 {
		n += trace.LineSize - r
	}
	return n
}

func ckptSlotSize(payloadCap uint64) uint64 { return ckptHdr + ckptAlignLines(payloadCap) }

// CheckpointRegionSize returns the heap footprint of a region with the
// given payload capacity (for heap-sizing arithmetic).
func CheckpointRegionSize(payloadCap uint64) uint64 {
	return ckptHdr + 2*ckptSlotSize(payloadCap)
}

// NewCheckpointRegion carves a fresh region (both slots empty) out of the
// heap.
func NewCheckpointRegion(h *Heap, payloadCap uint64) (*CheckpointRegion, error) {
	if payloadCap == 0 {
		return nil, fmt.Errorf("pmem: checkpoint region needs a nonzero payload capacity")
	}
	base, err := h.AllocLines(CheckpointRegionSize(payloadCap))
	if err != nil {
		return nil, fmt.Errorf("pmem: checkpoint region: %w", err)
	}
	r := &CheckpointRegion{heap: h, base: base, payloadCap: payloadCap}
	h.Write64Through(base, ckptMagic)
	h.Write64Through(base+8, payloadCap)
	h.Write64Through(r.slot(0)+ckptSeqOff, 0)
	h.Write64Through(r.slot(1)+ckptSeqOff, 0)
	return r, nil
}

// OpenCheckpointRegion reattaches to a region previously created at base.
func OpenCheckpointRegion(h *Heap, base uint64) (*CheckpointRegion, error) {
	if base == 0 || h.ReadUint64(base) != ckptMagic {
		return nil, fmt.Errorf("pmem: %d does not hold a checkpoint region", base)
	}
	return &CheckpointRegion{heap: h, base: base, payloadCap: h.ReadUint64(base + 8)}, nil
}

// Base returns the region's persistent address.
func (r *CheckpointRegion) Base() uint64 { return r.base }

// PayloadCap returns the per-slot payload capacity in bytes.
func (r *CheckpointRegion) PayloadCap() uint64 { return r.payloadCap }

func (r *CheckpointRegion) slot(i int) uint64 {
	return r.base + ckptHdr + uint64(i)*ckptSlotSize(r.payloadCap)
}

// PublishStage tells the Publish hook which durability boundary is about
// to be crossed.
type PublishStage uint8

const (
	// StagePage fires before each payload chunk is persisted.
	StagePage PublishStage = iota
	// StageSeal fires after the payload and header fields are durable,
	// immediately before the seq word that makes the slot valid.
	StageSeal
)

// Publish writes payload and meta into the stale slot and seals it with
// the next sequence number, returning that number. The hook (nil ok) fires
// at each durability boundary; a panic out of it (an injected crash)
// leaves the previous checkpoint untouched and the target slot invalid.
func (r *CheckpointRegion) Publish(payload []byte, meta [3]uint64, at func(stage PublishStage, chunk int)) (uint64, error) {
	if uint64(len(payload)) > r.payloadCap {
		return 0, fmt.Errorf("pmem: checkpoint payload %d bytes exceeds capacity %d", len(payload), r.payloadCap)
	}
	seq0, seq1 := r.heap.ReadUint64(r.slot(0)+ckptSeqOff), r.heap.ReadUint64(r.slot(1)+ckptSeqOff)
	// Overwrite the stale slot, seal one past the newer seq.
	target, newSeq := 1, seq0+1
	if seq0 < seq1 {
		target, newSeq = 0, seq1+1
	}
	s := r.slot(target)
	// Invalidate first: from here until the seal, a crash recovers from the
	// other slot (or from whatever deeper fallback the caller keeps).
	r.heap.Write64Through(s+ckptSeqOff, 0)
	for off, chunk := 0, 0; off < len(payload); off, chunk = off+ckptChunk, chunk+1 {
		end := off + ckptChunk
		if end > len(payload) {
			end = len(payload)
		}
		if at != nil {
			at(StagePage, chunk)
		}
		r.heap.WriteBytes(s+ckptHdr+uint64(off), payload[off:end])
		r.heap.Persist(s+ckptHdr+uint64(off), uint64(end-off))
	}
	r.heap.Write64Through(s+ckptLenOff, uint64(len(payload)))
	r.heap.Write64Through(s+ckptCRCOff, crc64.Checksum(payload, ckptTable))
	for i, m := range meta {
		r.heap.Write64Through(s+ckptMetaOff+uint64(8*i), m)
	}
	if at != nil {
		at(StageSeal, 0)
	}
	r.heap.Write64Through(s+ckptSeqOff, newSeq)
	return newSeq, nil
}

// CheckpointImage is one recovered checkpoint.
type CheckpointImage struct {
	Seq     uint64
	Meta    [3]uint64
	Payload []byte
	Slot    int
}

// validate re-derives a slot's CRC and returns its image if intact.
func (r *CheckpointRegion) validate(i int) (CheckpointImage, bool) {
	s := r.slot(i)
	seq := r.heap.ReadUint64(s + ckptSeqOff)
	n := r.heap.ReadUint64(s + ckptLenOff)
	if seq == 0 || n > r.payloadCap {
		return CheckpointImage{}, false
	}
	payload := r.heap.ReadBytes(s+ckptHdr, n)
	if crc64.Checksum(payload, ckptTable) != r.heap.ReadUint64(s+ckptCRCOff) {
		return CheckpointImage{}, false
	}
	img := CheckpointImage{Seq: seq, Payload: payload, Slot: i}
	for j := range img.Meta {
		img.Meta[j] = r.heap.ReadUint64(s + ckptMetaOff + uint64(8*j))
	}
	return img, true
}

// Newest returns the highest-sequence valid checkpoint, along with how
// many newer-but-torn slots were skipped to reach it (the torn-checkpoint
// fallback count). ok is false when neither slot holds a valid image.
func (r *CheckpointRegion) Newest() (img CheckpointImage, skipped int, ok bool) {
	a, okA := r.validate(0)
	b, okB := r.validate(1)
	switch {
	case okA && okB:
		if a.Seq >= b.Seq {
			return a, 0, true
		}
		return b, 0, true
	case okA || okB:
		if okB {
			a = b
		}
		// If the invalid slot was sealed with a newer seq its payload or
		// header must be corrupt (a seal can only follow a durable payload,
		// so this is byte-rot, not a torn publish); count it as a skip.
		other := r.heap.ReadUint64(r.slot(1-a.Slot) + ckptSeqOff)
		if other > a.Seq {
			skipped = 1
		}
		return a, skipped, true
	default:
		skipped = 0
		if r.heap.ReadUint64(r.slot(0)+ckptSeqOff) != 0 {
			skipped++
		}
		if r.heap.ReadUint64(r.slot(1)+ckptSeqOff) != 0 {
			skipped++
		}
		return CheckpointImage{}, skipped, false
	}
}

// SlotSeq returns slot i's sealed sequence number (0 = invalid), for tests
// and diagnostics.
func (r *CheckpointRegion) SlotSeq(i int) uint64 { return r.heap.ReadUint64(r.slot(i) + ckptSeqOff) }

// Invalidate durably clears slot i's seal, making it a torn slot. The kv
// layer uses it when the journal overflows: images that pair with a
// truncated journal prefix must never be consumed, so both are revoked.
func (r *CheckpointRegion) Invalidate(i int) {
	r.heap.Write64Through(r.slot(i)+ckptSeqOff, 0)
}

// Images returns the valid images in both slots, newest first.
func (r *CheckpointRegion) Images() []CheckpointImage {
	var out []CheckpointImage
	for i := 0; i < 2; i++ {
		if img, ok := r.validate(i); ok {
			out = append(out, img)
		}
	}
	if len(out) == 2 && out[0].Seq < out[1].Seq {
		out[0], out[1] = out[1], out[0]
	}
	return out
}

// FlipPayloadByte flips one payload byte of slot i in both views (a
// byte-rot model for torn-checkpoint tests: the views stay consistent so
// heap invariants hold, but the slot's CRC no longer matches).
func (r *CheckpointRegion) FlipPayloadByte(i int, off uint64) {
	if off >= r.payloadCap {
		panic(fmt.Sprintf("pmem: FlipPayloadByte offset %d outside payload capacity %d", off, r.payloadCap))
	}
	addr := r.slot(i) + ckptHdr + off
	word := addr &^ 7
	shift := (addr - word) * 8
	r.heap.Write64Through(word, r.heap.ReadUint64(word)^(0xff<<shift))
}
