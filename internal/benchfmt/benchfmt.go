// Package benchfmt defines the envelope every persisted benchmark
// artifact (`BENCH_<experiment>.json`) shares: a schema tag, the
// experiment id, the wall-clock time, and git metadata, so the perf
// trajectory of the repository is machine-diffable across PRs — compare
// two artifacts from two commits and the envelope tells you exactly which
// code produced which numbers. internal/loadgen embeds Meta in its result
// schema and cmd/nvbench wraps any experiment's tables with it (-out).
//
// It is a leaf package (stdlib only) so both the load generator and the
// experiment harness can use it without import cycles.
package benchfmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// Schema tags every artifact this repository emits; bump the suffix on
// breaking changes so trajectory tooling can refuse to diff across them.
// v1.1 added the optional per-phase latency breakdown (`phases`) to the
// loadgen artifact — a pure addition, so v1 artifacts stay readable.
const Schema = "nvmcache-bench/v1.1"

// acceptedSchemas are the envelope versions Validate admits: the current
// one plus older versions the current schema is a superset of.
var acceptedSchemas = []string{Schema, "nvmcache-bench/v1"}

// GitInfo pins an artifact to the code that produced it.
type GitInfo struct {
	// Commit is the full HEAD hash, or "unknown" outside a git checkout.
	Commit string `json:"commit"`
	// Dirty reports uncommitted changes at run time — a dirty artifact is
	// not attributable to its commit.
	Dirty bool `json:"dirty"`
}

// Meta is the artifact envelope. Embed it (inline) in result schemas.
type Meta struct {
	Schema     string  `json:"schema"`
	Experiment string  `json:"experiment"`
	UnixTime   int64   `json:"unix_time"`
	Git        GitInfo `json:"git"`
}

// NewMeta stamps an envelope for experiment now, capturing git state from
// the current directory (degrading to "unknown" outside a checkout).
func NewMeta(experiment string) Meta {
	return Meta{
		Schema:     Schema,
		Experiment: experiment,
		UnixTime:   time.Now().Unix(),
		Git:        CaptureGit(""),
	}
}

// CaptureGit reads HEAD and the dirty bit from the repository containing
// dir ("" = current directory). It never fails: without git or a checkout
// the commit is "unknown".
func CaptureGit(dir string) GitInfo {
	g := GitInfo{Commit: "unknown"}
	rev := exec.Command("git", "rev-parse", "HEAD")
	rev.Dir = dir
	if out, err := rev.Output(); err == nil {
		g.Commit = strings.TrimSpace(string(out))
	}
	st := exec.Command("git", "status", "--porcelain")
	st.Dir = dir
	if out, err := st.Output(); err == nil {
		g.Dirty = len(strings.TrimSpace(string(out))) > 0
	}
	return g
}

// Validate checks the envelope fields every artifact must carry.
func (m Meta) Validate() error {
	accepted := false
	for _, s := range acceptedSchemas {
		if m.Schema == s {
			accepted = true
			break
		}
	}
	if !accepted {
		return fmt.Errorf("benchfmt: schema %q, want one of %v", m.Schema, acceptedSchemas)
	}
	if m.Experiment == "" {
		return errors.New("benchfmt: empty experiment id")
	}
	if m.UnixTime <= 0 {
		return errors.New("benchfmt: missing unix_time")
	}
	if m.Git.Commit == "" {
		return errors.New("benchfmt: empty git.commit (use \"unknown\")")
	}
	return nil
}

// WriteFile marshals v (indented, trailing newline) to path.
func WriteFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile unmarshals path into v.
func ReadFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
