package bench

import (
	"testing"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

func newThread(t *testing.T) (*atlas.Runtime, *atlas.Thread) {
	t.Helper()
	h := pmem.New(1 << 22)
	opts := atlas.DefaultOptions()
	opts.Policy = core.Lazy
	rt := atlas.NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	return rt, th
}

func TestPersistentArrayTraceShape(t *testing.T) {
	c := PersistentArrayConfig{Inner: 400, Outer: 50}
	res, err := RunPersistentArray(c)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.ComputeStats(res.Trace)
	if st.TotalFASEs != 1 {
		t.Fatalf("FASEs = %d, want 1", st.TotalFASEs)
	}
	if st.TotalWrites != c.Stores() {
		t.Fatalf("stores = %d, want %d", st.TotalWrites, c.Stores())
	}
	// 400 4-byte ints, line-aligned: exactly 25 array lines + 1 flag line.
	if st.DistinctLine != 26 {
		t.Fatalf("distinct lines = %d, want 26", st.DistinctLine)
	}
	// Paper Table III: AT removes 15/16 (ratio 1/16); SC at ≥26 hits the
	// LA bound.
	cfg := core.DefaultConfig()
	at := core.FlushRatio(core.AtlasTable, cfg, res.Trace)
	if at < 0.055 || at > 0.07 {
		t.Errorf("AT ratio %v, want ≈ 0.0625", at)
	}
	cfg.PresetSize = 26
	sc := core.FlushRatio(core.SoftCacheOffline, cfg, res.Trace)
	la := core.FlushRatio(core.Lazy, cfg, res.Trace)
	if sc != la {
		t.Errorf("SC %v != LA %v on persistent-array", sc, la)
	}
}

func TestPersistentArrayScale(t *testing.T) {
	c := DefaultPersistentArray().Scale(0.01)
	if c.Outer != 25 || c.Inner != 400 {
		t.Fatalf("scaled config %+v", c)
	}
}

func TestMSQueueFIFO(t *testing.T) {
	_, th := newThread(t)
	q, err := NewMSQueue(th)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Dequeue(th); ok {
		t.Fatal("dequeue from empty queue succeeded")
	}
	for i := uint64(1); i <= 5; i++ {
		if err := q.Enqueue(th, i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len(th) != 5 {
		t.Fatalf("Len = %d", q.Len(th))
	}
	for i := uint64(1); i <= 5; i++ {
		v, ok := q.Dequeue(th)
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d ok=%v", i, v, ok)
		}
	}
}

func TestMSQueueCrashRecovery(t *testing.T) {
	rt, th := newThread(t)
	h := rt.Heap()
	q, err := NewMSQueue(th)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(th, 11)
	q.Enqueue(th, 22)
	h.Crash()
	if _, err := atlas.Recover(h); err != nil {
		t.Fatal(err)
	}
	// Lazy policy drains at FASE end: both enqueues are durable.
	v, ok := q.Dequeue(th)
	if !ok || v != 11 {
		t.Fatalf("after crash: got %d ok=%v, want 11", v, ok)
	}
}

func TestRunMSQueueTrace(t *testing.T) {
	res, err := RunMSQueue(MSQueueConfig{Ops: 600, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.ComputeStats(res.Trace)
	if st.Threads != 2 {
		t.Fatalf("threads = %d", st.Threads)
	}
	// Each op is its own FASE; tiny FASEs ⇒ no combining headroom: the
	// paper's LA = AT = SC regime.
	cfg := core.DefaultConfig()
	cfg.BurstLength = 256
	la := core.FlushRatio(core.Lazy, cfg, res.Trace)
	at := core.FlushRatio(core.AtlasTable, cfg, res.Trace)
	sc := core.FlushRatio(core.SoftCacheOnline, cfg, res.Trace)
	if at != la || sc != la {
		t.Errorf("queue: LA=%v AT=%v SC=%v, want all equal", la, at, sc)
	}
	if la < 0.3 || la > 0.9 {
		t.Errorf("LA ratio %v outside the micro-benchmark regime", la)
	}
}

func TestChainInsertAndWalk(t *testing.T) {
	_, th := newThread(t)
	ch, err := NewChain(th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ch.InsertAt(th, 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Len(th) != 10 {
		t.Fatalf("Len = %d", ch.Len(th))
	}
	vals := ch.Values(th)
	if len(vals) != 10 || vals[0] != 9 || vals[9] != 0 {
		t.Fatalf("values = %v", vals)
	}
	// Middle insertion.
	if err := ch.InsertAt(th, 5, 777); err != nil {
		t.Fatal(err)
	}
	if got := ch.Values(th)[5]; got != 777 {
		t.Fatalf("middle insert landed at %v", ch.Values(th))
	}
}

func TestRunChainTrace(t *testing.T) {
	res, err := RunChain(ChainConfig{Elements: 400, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := trace.ComputeStats(res.Trace)
	// One FASE per insertion (plus the two header-init FASEs).
	if st.TotalFASEs < 400 || st.TotalFASEs > 404 {
		t.Fatalf("FASEs = %d, want ≈ 400", st.TotalFASEs)
	}
	// Small FASEs: ratio near the paper's 0.6, equal across policies.
	cfg := core.DefaultConfig()
	cfg.BurstLength = 256
	la := core.FlushRatio(core.Lazy, cfg, res.Trace)
	sc := core.FlushRatio(core.SoftCacheOnline, cfg, res.Trace)
	if sc != la {
		t.Errorf("chain: SC=%v LA=%v, want equal", sc, la)
	}
	if la < 0.4 || la > 0.8 {
		t.Errorf("chain LA ratio %v, want ≈ 0.6", la)
	}
}

func TestHTablePutGetDelete(t *testing.T) {
	_, th := newThread(t)
	ht, err := NewHTable(th, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := ht.Put(th, i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	if ht.Count(th) != 100 {
		t.Fatalf("Count = %d", ht.Count(th))
	}
	for i := uint64(0); i < 100; i++ {
		v, ok := ht.Get(th, i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d, %v", i, v, ok)
		}
	}
	// Update.
	ht.Put(th, 7, 999)
	if v, _ := ht.Get(th, 7); v != 999 {
		t.Fatal("update lost")
	}
	// Delete.
	if !ht.Delete(th, 7) {
		t.Fatal("delete failed")
	}
	if _, ok := ht.Get(th, 7); ok {
		t.Fatal("deleted key still present")
	}
	if ht.Delete(th, 7) {
		t.Fatal("double delete succeeded")
	}
	if ht.Count(th) != 99 {
		t.Fatalf("Count after delete = %d", ht.Count(th))
	}
}

func TestHTableGrowthPreservesEntries(t *testing.T) {
	_, th := newThread(t)
	ht, err := NewHTable(th, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(500) // forces several growth rehashes
	for i := uint64(0); i < n; i++ {
		if err := ht.Put(th, i*7919, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := ht.Get(th, i*7919); !ok || v != i {
			t.Fatalf("key %d lost after growth (ok=%v v=%d)", i, ok, v)
		}
	}
	if ht.nb <= 4 {
		t.Fatal("table never grew")
	}
}

func TestRunHTableTrace(t *testing.T) {
	res, err := RunHTable(HTableConfig{Keys: 400})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.BurstLength = 1024
	la := core.FlushRatio(core.Lazy, cfg, res.Trace)
	at := core.FlushRatio(core.AtlasTable, cfg, res.Trace)
	sc := core.FlushRatio(core.SoftCacheOnline, cfg, res.Trace)
	// Paper Table III ordering for hash: LA < SC ≤ AT < 1.
	if !(la <= sc && sc <= at && at < 1) {
		t.Errorf("hash ratios LA=%v SC=%v AT=%v violate paper ordering", la, sc, at)
	}
}

func TestRunFunctionsProduceValidTraces(t *testing.T) {
	pa, err := RunPersistentArray(PersistentArrayConfig{Inner: 64, Outer: 4})
	if err != nil {
		t.Fatal(err)
	}
	q, err := RunMSQueue(MSQueueConfig{Ops: 60, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunChain(ChainConfig{Elements: 50, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	ht, err := RunHTable(HTableConfig{Keys: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range []*Result{pa, q, c, ht} {
		if err := res.Trace.Validate(); err != nil {
			t.Errorf("trace %d invalid: %v", i, err)
		}
	}
}
