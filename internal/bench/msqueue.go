package bench

import (
	"fmt"
	"sync"

	"nvmcache/internal/atlas"
	"nvmcache/internal/pmem"
)

// MSQueue is a persistent concurrent FIFO queue after the two-lock
// (blocking) algorithm of Michael and Scott (PODC'96), the paper's queue
// micro-benchmark: head and tail each protected by their own lock, a dummy
// node, nodes linked through persistent pointers. Every enqueue and
// dequeue is one FASE ("a given number of elements added atomically at
// each step"), so the queue exercises the many-small-FASEs regime where
// write combining has little room (the paper's LA = AT = SC = 0.625).
//
// Node layout (line-aligned, 64 bytes): value at +0, next at +8.
type MSQueue struct {
	heap *pmem.Heap
	base uint64 // queue header: head ptr at +0, tail ptr at +8
	hMu  sync.Mutex
	tMu  sync.Mutex
}

const (
	qHeadOff = 0
	qTailOff = 8
	nValOff  = 0
	nNextOff = 8
	nodeSize = 64
)

// NewMSQueue allocates the queue header and dummy node. The enqueueing
// thread persists the initial state in one FASE.
func NewMSQueue(t *atlas.Thread) (*MSQueue, error) {
	h := t.Heap()
	base, err := h.AllocLines(64)
	if err != nil {
		return nil, fmt.Errorf("msqueue: %w", err)
	}
	dummy, err := h.AllocLines(nodeSize)
	if err != nil {
		return nil, fmt.Errorf("msqueue: %w", err)
	}
	t.FASEBegin()
	t.Store64(dummy+nNextOff, 0)
	t.Store64(base+qHeadOff, dummy)
	t.Store64(base+qTailOff, dummy)
	t.FASEEnd()
	return &MSQueue{heap: h, base: base}, nil
}

// Enqueue appends v. The node allocation, its initialization, the tail
// link and the tail pointer update form one FASE under the tail lock.
func (q *MSQueue) Enqueue(t *atlas.Thread, v uint64) error {
	node, err := q.heap.AllocLines(nodeSize)
	if err != nil {
		return err
	}
	q.tMu.Lock()
	defer q.tMu.Unlock()
	t.FASEBegin()
	t.Store64(node+nValOff, v)
	t.Store64(node+nNextOff, 0)
	tail := t.Load64(q.base + qTailOff)
	t.Store64(tail+nNextOff, node)
	t.Store64(q.base+qTailOff, node)
	t.FASEEnd()
	return nil
}

// Dequeue removes the oldest element. ok is false when the queue is empty.
func (q *MSQueue) Dequeue(t *atlas.Thread) (v uint64, ok bool) {
	q.hMu.Lock()
	defer q.hMu.Unlock()
	head := t.Load64(q.base + qHeadOff)
	next := t.Load64(head + nNextOff)
	if next == 0 {
		return 0, false
	}
	v = t.Load64(next + nValOff)
	t.FASEBegin()
	t.Store64(q.base+qHeadOff, next)
	t.FASEEnd()
	return v, true
}

// Len counts elements (diagnostic; takes no locks).
func (q *MSQueue) Len(t *atlas.Thread) int {
	n := 0
	for p := t.Load64(t.Load64(q.base+qHeadOff) + nNextOff); p != 0; p = t.Load64(p + nNextOff) {
		n++
	}
	return n
}

// MSQueueConfig sizes the queue micro-benchmark run.
type MSQueueConfig struct {
	Ops     int // total enqueue+dequeue operations (paper: 400000 stores over 300K FASEs)
	Threads int
}

// DefaultMSQueue approximates the paper's run shape at full scale.
func DefaultMSQueue() MSQueueConfig { return MSQueueConfig{Ops: 300000, Threads: 2} }

// Scale shrinks the operation count by factor s.
func (c MSQueueConfig) Scale(s float64) MSQueueConfig {
	c.Ops = int(float64(c.Ops) * s)
	if c.Ops < 4 {
		c.Ops = 4
	}
	return c
}

// RunMSQueue executes the benchmark: each thread alternates enqueues and
// (every third op) dequeues, mimicking a producer-heavy concurrent queue.
func RunMSQueue(c MSQueueConfig) (*Result, error) {
	if c.Threads < 1 {
		c.Threads = 1
	}
	heap := 64 * (c.Ops + 1024)
	return run(heap, c.Threads, func(rt *atlas.Runtime, ths []*atlas.Thread) error {
		q, err := NewMSQueue(ths[0])
		if err != nil {
			return err
		}
		perThread := c.Ops / len(ths)
		var wg sync.WaitGroup
		errs := make([]error, len(ths))
		for ti, th := range ths {
			wg.Add(1)
			go func(ti int, th *atlas.Thread) {
				defer wg.Done()
				for i := 0; i < perThread; i++ {
					if i%3 == 2 {
						q.Dequeue(th)
						continue
					}
					if err := q.Enqueue(th, uint64(ti*perThread+i)); err != nil {
						errs[ti] = err
						return
					}
				}
			}(ti, th)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
}
