// Package bench implements the paper's four micro-benchmarks (Section
// IV-B) as real persistent data structures on the Atlas runtime:
// persistent-array, a Michael–Scott two-lock queue, a singly linked list
// with perfect-shuffle insertion, and an open hash table. Each benchmark
// runs its mutations through atlas.Thread, so the recorded trace is the
// genuine store stream of the data structure, and the same run is also
// crash-recoverable.
package bench

import (
	"fmt"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// Result bundles a micro-benchmark run.
type Result struct {
	Trace *trace.Trace
	Heap  *pmem.Heap
}

// run sets up a heap + runtime with the no-op BEST policy (the trace is
// policy-independent; policies are evaluated later by replay) and executes
// body with the requested number of threads.
func run(heapBytes int, threads int, body func(rt *atlas.Runtime, ths []*atlas.Thread) error) (*Result, error) {
	opts := atlas.DefaultOptions()
	opts.Policy = core.Best                    // cheapest: recording only
	opts.LogEntries = 1 << 15                  // big FASEs (table growth, array sweeps)
	heapBytes += threads * (16*(1<<15) + 4096) // per-thread undo logs
	h := pmem.New(heapBytes)
	rt := atlas.NewRuntime(h, opts)
	ths := make([]*atlas.Thread, threads)
	for i := range ths {
		t, err := rt.NewThread()
		if err != nil {
			return nil, fmt.Errorf("bench: %w", err)
		}
		ths[i] = t
	}
	if err := body(rt, ths); err != nil {
		return nil, err
	}
	rt.Close()
	return &Result{Trace: rt.Trace(), Heap: h}, nil
}
