package bench

import (
	"fmt"

	"nvmcache/internal/atlas"
	"nvmcache/internal/pmem"
)

// HTable is the paper's hash micro-benchmark: a single-threaded, separately
// chained open hash table (after Clark's C hashtable, the version in the
// Atlas repository). Inserts, lookups and deletes each run in their own
// FASE; occasional growth rehashes the whole table inside one big FASE,
// which is the phase where write combining pays off and where AT and SC
// diverge slightly (paper: AT 0.621 vs SC 0.595 vs LA 0.501).
//
// Bucket array: one pointer per bucket. Entry node (one line): key at +0,
// value at +8, next at +16.
type HTable struct {
	heap    *pmem.Heap
	base    uint64 // header: buckets ptr +0, nbuckets +8, count +16
	buckets uint64
	nb      uint64
	count   uint64
}

const (
	eKeyOff  = 0
	eValOff  = 8
	eNextOff = 16
)

// NewHTable creates a table with the given initial bucket count (rounded
// up to at least 4).
func NewHTable(t *atlas.Thread, nbuckets int) (*HTable, error) {
	if nbuckets < 4 {
		nbuckets = 4
	}
	h := t.Heap()
	base, err := h.AllocLines(64)
	if err != nil {
		return nil, fmt.Errorf("htable: %w", err)
	}
	buckets, err := h.AllocLines(uint64(8 * nbuckets))
	if err != nil {
		return nil, fmt.Errorf("htable: %w", err)
	}
	t.FASEBegin()
	for i := 0; i < nbuckets; i++ {
		t.Store64(buckets+uint64(8*i), 0)
	}
	t.Store64(base, buckets)
	t.Store64(base+8, uint64(nbuckets))
	t.Store64(base+16, 0)
	t.FASEEnd()
	return &HTable{heap: h, base: base, buckets: buckets, nb: uint64(nbuckets)}, nil
}

func hashKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// Put inserts or updates a key, growing the table at load factor 0.75.
func (ht *HTable) Put(t *atlas.Thread, key, val uint64) error {
	t.FASEBegin()
	defer t.FASEEnd()
	slot := ht.buckets + 8*(hashKey(key)%ht.nb)
	for p := t.Load64(slot); p != 0; p = t.Load64(p + eNextOff) {
		if t.Load64(p+eKeyOff) == key {
			t.Store64(p+eValOff, val)
			return nil
		}
	}
	node, err := ht.heap.AllocLines(64)
	if err != nil {
		return err
	}
	t.Store64(node+eKeyOff, key)
	t.Store64(node+eValOff, val)
	t.Store64(node+eNextOff, t.Load64(slot))
	t.Store64(slot, node)
	ht.count++
	t.Store64(ht.base+16, ht.count)
	if ht.count*4 > ht.nb*3 {
		return ht.grow(t)
	}
	return nil
}

// grow doubles the bucket array and rehashes every entry (inside the
// caller's FASE: growth is atomic with the triggering insert).
func (ht *HTable) grow(t *atlas.Thread) error {
	newNB := ht.nb * 2
	newBuckets, err := ht.heap.AllocLines(8 * newNB)
	if err != nil {
		return err
	}
	for i := uint64(0); i < newNB; i++ {
		t.Store64(newBuckets+8*i, 0)
	}
	for i := uint64(0); i < ht.nb; i++ {
		p := t.Load64(ht.buckets + 8*i)
		for p != 0 {
			next := t.Load64(p + eNextOff)
			slot := newBuckets + 8*(hashKey(t.Load64(p+eKeyOff))%newNB)
			t.Store64(p+eNextOff, t.Load64(slot))
			t.Store64(slot, p)
			p = next
		}
	}
	t.Store64(ht.base, newBuckets)
	t.Store64(ht.base+8, newNB)
	ht.buckets, ht.nb = newBuckets, newNB
	return nil
}

// Get looks a key up.
func (ht *HTable) Get(t *atlas.Thread, key uint64) (uint64, bool) {
	slot := ht.buckets + 8*(hashKey(key)%ht.nb)
	for p := t.Load64(slot); p != 0; p = t.Load64(p + eNextOff) {
		if t.Load64(p+eKeyOff) == key {
			return t.Load64(p + eValOff), true
		}
	}
	return 0, false
}

// Delete removes a key; it reports whether the key existed.
func (ht *HTable) Delete(t *atlas.Thread, key uint64) bool {
	slot := ht.buckets + 8*(hashKey(key)%ht.nb)
	prev := uint64(0)
	for p := t.Load64(slot); p != 0; p = t.Load64(p + eNextOff) {
		if t.Load64(p+eKeyOff) == key {
			t.FASEBegin()
			next := t.Load64(p + eNextOff)
			if prev == 0 {
				t.Store64(slot, next)
			} else {
				t.Store64(prev+eNextOff, next)
			}
			ht.count--
			t.Store64(ht.base+16, ht.count)
			t.FASEEnd()
			return true
		}
		prev = p
	}
	return false
}

// Count returns the persistent element count.
func (ht *HTable) Count(t *atlas.Thread) uint64 { return t.Load64(ht.base + 16) }

// HTableConfig sizes the hash benchmark.
type HTableConfig struct {
	Keys int // paper problem size: 4000
}

// DefaultHTable matches the paper's problem size.
func DefaultHTable() HTableConfig { return HTableConfig{Keys: 4000} }

// Scale shrinks the key count by factor s.
func (c HTableConfig) Scale(s float64) HTableConfig {
	c.Keys = int(float64(c.Keys) * s)
	if c.Keys < 8 {
		c.Keys = 8
	}
	return c
}

// RunHTable inserts Keys keys, re-puts a third of them, deletes a quarter
// — the insert/update/delete mix of the Atlas repository benchmark.
func RunHTable(c HTableConfig) (*Result, error) {
	heap := 64*(2*c.Keys+1024) + 64*8*c.Keys
	return run(heap, 1, func(rt *atlas.Runtime, ths []*atlas.Thread) error {
		t := ths[0]
		ht, err := NewHTable(t, 16)
		if err != nil {
			return err
		}
		for i := 0; i < c.Keys; i++ {
			if err := ht.Put(t, uint64(i)*2654435761, uint64(i)); err != nil {
				return err
			}
		}
		for i := 0; i < c.Keys/3; i++ {
			if err := ht.Put(t, uint64(i)*2654435761, uint64(i)+1); err != nil {
				return err
			}
		}
		for i := 0; i < c.Keys/4; i++ {
			ht.Delete(t, uint64(i)*2654435761)
		}
		return nil
	})
}
