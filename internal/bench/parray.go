package bench

import "nvmcache/internal/atlas"

// PersistentArray reproduces the paper's persistent-array micro-benchmark
// (Section IV-B): a single FASE containing a two-level nested loop whose
// inner loop writes 4-byte integers to consecutive elements of an array,
// and whose outer loop repeats the sweep. On a 64-byte-line machine the
// inner array spans ⌈4·inner/64⌉ cache lines (25 for the paper's 400
// ints when aligned), which is the working set the adaptive cache must
// discover: Atlas's 8-entry table removes only the 15/16 within-line
// combining (flush ratio 1/16 = 0.0625), while a software cache of ≥ 26
// lines reaches the lazy lower bound of ~0.00003.
type PersistentArrayConfig struct {
	Inner int // elements written per pass (paper: 400)
	Outer int // passes (paper: 2500)
}

// DefaultPersistentArray matches the paper's parameters (1,000,000 stores).
func DefaultPersistentArray() PersistentArrayConfig {
	return PersistentArrayConfig{Inner: 400, Outer: 2500}
}

// Scale shrinks the outer loop by factor s (minimum one pass), preserving
// the working set and therefore every flush ratio.
func (c PersistentArrayConfig) Scale(s float64) PersistentArrayConfig {
	c.Outer = int(float64(c.Outer) * s)
	if c.Outer < 1 {
		c.Outer = 1
	}
	return c
}

// Stores returns the number of persistent stores the run will issue.
func (c PersistentArrayConfig) Stores() int64 { return int64(c.Inner)*int64(c.Outer) + 1 }

// RunPersistentArray executes the benchmark and returns its trace.
func RunPersistentArray(c PersistentArrayConfig) (*Result, error) {
	heap := 1 << 20
	return run(heap, 1, func(rt *atlas.Runtime, ths []*atlas.Thread) error {
		t := ths[0]
		arr, err := rt.Heap().AllocLines(uint64(4 * c.Inner))
		if err != nil {
			return err
		}
		done, err := rt.Heap().Alloc(8)
		if err != nil {
			return err
		}
		var buf [4]byte
		t.FASEBegin()
		for o := 0; o < c.Outer; o++ {
			for i := 0; i < c.Inner; i++ {
				v := uint32(o + i)
				buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
				t.StoreBytes(arr+uint64(4*i), buf[:])
			}
		}
		t.Store64(done, 1) // completion flag: the paper's +1 store
		t.FASEEnd()
		return nil
	})
}
