package bench

import (
	"fmt"
	"sync"

	"nvmcache/internal/atlas"
	"nvmcache/internal/pmem"
)

// Chain is the paper's singly linked list micro-benchmark: N elements are
// inserted "in a perfect shuffle pattern", each insertion failure-atomic.
// An insertion writes the new node (value and next share the node's single
// cache line), the predecessor's next pointer, and the list's element
// counter — about five stores to three distinct lines per FASE, which is
// where the paper's 0.6 flush ratio for every combining policy comes from
// (tiny FASEs leave nothing to combine).
type Chain struct {
	heap *pmem.Heap
	base uint64 // header: head ptr at +0, count at +8
	mu   sync.Mutex
}

// NewChain allocates an empty list.
func NewChain(t *atlas.Thread) (*Chain, error) {
	base, err := t.Heap().AllocLines(64)
	if err != nil {
		return nil, fmt.Errorf("chain: %w", err)
	}
	t.FASEBegin()
	t.Store64(base, 0)
	t.Store64(base+8, 0)
	t.FASEEnd()
	return &Chain{heap: t.Heap(), base: base}, nil
}

// InsertAt inserts v after the pos-th node (0 = at head), atomically.
func (c *Chain) InsertAt(t *atlas.Thread, pos int, v uint64) error {
	node, err := c.heap.AllocLines(nodeSize)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t.FASEBegin()
	defer t.FASEEnd()
	t.Store64(node+nValOff, v)
	// Walk to the predecessor.
	pred := uint64(0)
	cur := t.Load64(c.base)
	for i := 0; i < pos && cur != 0; i++ {
		pred = cur
		cur = t.Load64(cur + nNextOff)
	}
	t.Store64(node+nNextOff, cur)
	if pred == 0 {
		t.Store64(c.base, node)
	} else {
		t.Store64(pred+nNextOff, node)
	}
	t.Store64(c.base+8, t.Load64(c.base+8)+1)
	return nil
}

// Len returns the persistent element counter.
func (c *Chain) Len(t *atlas.Thread) uint64 { return t.Load64(c.base + 8) }

// Values walks the list front to back.
func (c *Chain) Values(t *atlas.Thread) []uint64 {
	var out []uint64
	for p := t.Load64(c.base); p != 0; p = t.Load64(p + nNextOff) {
		out = append(out, t.Load64(p+nValOff))
	}
	return out
}

// ChainConfig sizes the linked-list benchmark.
type ChainConfig struct {
	Elements int // paper: 10000
	Threads  int
}

// DefaultChain matches the paper's problem size.
func DefaultChain() ChainConfig { return ChainConfig{Elements: 10000, Threads: 2} }

// Scale shrinks the element count by factor s.
func (c ChainConfig) Scale(s float64) ChainConfig {
	c.Elements = int(float64(c.Elements) * s)
	if c.Elements < 4 {
		c.Elements = 4
	}
	return c
}

// RunChain executes the benchmark: threads share the insertion stream;
// element k is inserted at position given by a perfect shuffle (bit-reversal
// of k within the current size), spreading insertions across the list.
func RunChain(c ChainConfig) (*Result, error) {
	if c.Threads < 1 {
		c.Threads = 1
	}
	heap := 64 * (c.Elements + 1024)
	return run(heap, c.Threads, func(rt *atlas.Runtime, ths []*atlas.Thread) error {
		ch, err := NewChain(ths[0])
		if err != nil {
			return err
		}
		perThread := c.Elements / len(ths)
		var wg sync.WaitGroup
		errs := make([]error, len(ths))
		for ti, th := range ths {
			wg.Add(1)
			go func(ti int, th *atlas.Thread) {
				defer wg.Done()
				for i := 0; i < perThread; i++ {
					// Perfect shuffle: interleave front/middle positions.
					pos := 0
					if i%2 == 1 {
						pos = i / 2
					}
					if err := ch.InsertAt(th, pos, uint64(ti<<32|i)); err != nil {
						errs[ti] = err
						return
					}
				}
			}(ti, th)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
}
