package mdb

import (
	"errors"
	"nvmcache/internal/testutil"
	"testing"
	"testing/quick"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

func newDB(t *testing.T, kind core.PolicyKind) (*atlas.Runtime, *DB) {
	t.Helper()
	h := pmem.New(1 << 24)
	opts := atlas.DefaultOptions()
	opts.Policy = kind
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(th)
	if err != nil {
		t.Fatal(err)
	}
	return rt, db
}

func put(t *testing.T, db *DB, k, v uint64) {
	t.Helper()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put(k, v); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetSingle(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	put(t, db, 42, 4200)
	v, ok := db.Get(42)
	if !ok || v != 4200 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if _, ok := db.Get(43); ok {
		t.Fatal("phantom key")
	}
}

func TestPutUpdate(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	put(t, db, 1, 10)
	put(t, db, 1, 20)
	if v, _ := db.Get(1); v != 20 {
		t.Fatalf("update lost: %d", v)
	}
	if db.Count() != 1 {
		t.Fatalf("Count = %d", db.Count())
	}
}

func TestManyInsertsOrderedScan(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	const n = 500
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := uint64((i * 7919) % 10007) // scattered insert order
		if err := db.Put(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != n {
		t.Fatalf("Count = %d, want %d", db.Count(), n)
	}
	prev := uint64(0)
	first := true
	db.Scan(func(k, _ uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		return true
	})
}

func TestDelete(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := db.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i += 2 {
		found, err := db.Delete(i)
		if err != nil || !found {
			t.Fatalf("Delete(%d): %v %v", i, found, err)
		}
	}
	if found, _ := db.Delete(1000); found {
		t.Fatal("deleted nonexistent key")
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 50 {
		t.Fatalf("Count = %d", db.Count())
	}
	for i := uint64(0); i < 100; i++ {
		_, ok := db.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d) present=%v want %v", i, ok, want)
		}
	}
}

func TestDeleteAllThenReinsert(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		db.Put(i, i)
	}
	for i := uint64(0); i < 40; i++ {
		db.Delete(i)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.Count() != 0 {
		t.Fatalf("Count = %d after deleting all", db.Count())
	}
	put(t, db, 5, 50)
	if v, ok := db.Get(5); !ok || v != 50 {
		t.Fatal("reinsert after empty failed")
	}
}

func TestTxnDiscipline(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	if err := db.Put(1, 1); err == nil {
		t.Fatal("Put outside txn succeeded")
	}
	if _, err := db.Delete(1); err == nil {
		t.Fatal("Delete outside txn succeeded")
	}
	if err := db.Commit(); err == nil {
		t.Fatal("Commit outside txn succeeded")
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err == nil {
		t.Fatal("nested Begin succeeded")
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerationIncrements(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	if db.Generation() != 0 {
		t.Fatal("fresh generation != 0")
	}
	put(t, db, 1, 1)
	put(t, db, 2, 2)
	if db.Generation() != 2 {
		t.Fatalf("generation = %d", db.Generation())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	db.DisableRecycling() // keep old page versions alive
	put(t, db, 1, 100)
	snap := db.Snapshot()
	put(t, db, 1, 200)
	put(t, db, 2, 300)
	if v, ok := db.GetSnapshot(snap, 1); !ok || v != 100 {
		t.Fatalf("snapshot read = %d, %v; want 100", v, ok)
	}
	if _, ok := db.GetSnapshot(snap, 2); ok {
		t.Fatal("snapshot sees later insert")
	}
	if v, _ := db.Get(1); v != 200 {
		t.Fatal("current root stale")
	}
}

func TestCrashAtomicity(t *testing.T) {
	rt, db := newDB(t, core.Lazy)
	h := rt.Heap()
	put(t, db, 1, 10)
	put(t, db, 2, 20)
	// Crash mid-transaction: the whole txn must vanish.
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	db.Put(3, 30)
	db.Put(1, 999)
	h.Crash()
	if _, err := atlas.Recover(h); err != nil {
		t.Fatal(err)
	}
	// Reattach.
	rt2 := atlas.NewRuntime(h, atlas.Options{Policy: core.Lazy, Config: core.DefaultConfig()})
	th2, err := rt2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Reopen(th2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := db2.Get(1); !ok || v != 10 {
		t.Fatalf("key 1 = %d, %v; want committed 10", v, ok)
	}
	if v, ok := db2.Get(2); !ok || v != 20 {
		t.Fatalf("key 2 = %d, %v; want 20", v, ok)
	}
	if _, ok := db2.Get(3); ok {
		t.Fatal("uncommitted insert survived crash")
	}
}

func TestCommittedTxnsSurviveCrash(t *testing.T) {
	rt, db := newDB(t, core.SoftCacheOnline)
	h := rt.Heap()
	const n = 200
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		db.Put(i, i*3)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	h.Crash()
	if _, err := atlas.Recover(h); err != nil {
		t.Fatal(err)
	}
	rt2 := atlas.NewRuntime(h, atlas.DefaultOptions())
	th2, _ := rt2.NewThread()
	db2, err := Reopen(th2)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := db2.Get(i); !ok || v != i*3 {
			t.Fatalf("key %d lost or wrong after crash: %d %v", i, v, ok)
		}
	}
}

// Property: the tree matches a reference map under random interleaved
// puts, deletes and commits, and invariants hold throughout.
func TestQuickTreeMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		h := pmem.New(1 << 24)
		opts := atlas.DefaultOptions()
		opts.Policy = core.Lazy
		opts.LogEntries = 1 << 15
		rt := atlas.NewRuntime(h, opts)
		th, err := rt.NewThread()
		if err != nil {
			return false
		}
		db, err := Open(th)
		if err != nil {
			return false
		}
		ref := map[uint64]uint64{}
		for txn := 0; txn < 10; txn++ {
			if err := db.Begin(); err != nil {
				return false
			}
			for op := 0; op < 30; op++ {
				k := uint64(rng.Intn(60))
				if rng.Intn(4) == 0 {
					found, err := db.Delete(k)
					if err != nil {
						return false
					}
					_, inRef := ref[k]
					if found != inRef {
						return false
					}
					delete(ref, k)
				} else {
					v := rng.Uint64()
					if err := db.Put(k, v); err != nil {
						return false
					}
					ref[k] = v
				}
			}
			if err := db.Commit(); err != nil {
				return false
			}
			if err := db.CheckInvariants(); err != nil {
				return false
			}
		}
		if db.Count() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := db.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMtestRuns(t *testing.T) {
	res, err := RunMtest(MtestConfig{Inserts: 2000, OpsPerTxn: 10, ScanEvery: 20, DeleteFrac: 10, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Threads != 2 {
		t.Fatalf("threads = %d", res.Stats.Threads)
	}
	if res.Stats.TotalFASEs < 100 {
		t.Fatalf("FASEs = %d, too few", res.Stats.TotalFASEs)
	}
	// The paper's regime: hundreds of stores per FASE (COW page copies).
	perFASE := float64(res.Stats.TotalWrites) / float64(res.Stats.TotalFASEs)
	if perFASE < 50 || perFASE > 3000 {
		t.Fatalf("stores/FASE = %.0f, outside the MDB regime", perFASE)
	}
	// Flush ratio ordering must match Table III: LA < SC < AT ≪ ER.
	cfg := core.DefaultConfig()
	cfg.BurstLength = 4096
	la := core.FlushRatio(core.Lazy, cfg, res.Trace)
	sc := core.FlushRatio(core.SoftCacheOnline, cfg, res.Trace)
	at := core.FlushRatio(core.AtlasTable, cfg, res.Trace)
	if !(la < sc && sc < at) {
		t.Fatalf("mdb ratios LA=%v SC=%v AT=%v: want LA < SC < AT", la, sc, at)
	}
}

func TestPageLines(t *testing.T) {
	if PageLines() != 3 {
		t.Fatalf("PageLines = %d, want 3", PageLines())
	}
}

func TestPageRecyclingSurvivesRestart(t *testing.T) {
	rt, db := newDB(t, core.Lazy)
	h := rt.Heap()
	// Generate garbage pages: updates COW the path and free old versions.
	put(t, db, 1, 1)
	for i := 0; i < 20; i++ {
		put(t, db, 1, uint64(i))
	}
	h.Crash()
	if _, err := atlas.Recover(h); err != nil {
		t.Fatal(err)
	}
	rt2 := atlas.NewRuntime(h, atlas.DefaultOptions())
	th2, _ := rt2.NewThread()
	db2, err := Reopen(th2)
	if err != nil {
		t.Fatal(err)
	}
	// The persistent free list survived: the pool hands back recycled
	// pages instead of fresh arena space.
	before := db2.pool.FreeCount()
	if before == 0 {
		t.Fatal("no recycled pages survived the crash")
	}
	if err := db2.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Put(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := db2.Commit(); err != nil {
		t.Fatal(err)
	}
	if db2.pool.FreeCount() >= before+2 {
		t.Fatalf("pool did not reuse recycled pages: %d -> %d", before, db2.pool.FreeCount())
	}
	if v, ok := db2.Get(1); !ok || v != 19 {
		t.Fatalf("data wrong after restart: %d %v", v, ok)
	}
}

func TestOpenSizedExhaustionSurfaces(t *testing.T) {
	h := pmem.New(1 << 22)
	opts := atlas.DefaultOptions()
	opts.Policy = core.Lazy
	opts.LogEntries = 1 << 14
	rt := atlas.NewRuntime(h, opts)
	th, _ := rt.NewThread()
	db, err := OpenSized(th, 4) // absurdly small pool
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	var putErr error
	for i := uint64(0); i < 100 && putErr == nil; i++ {
		putErr = db.Put(i, i)
	}
	if putErr == nil {
		t.Fatal("pool exhaustion never surfaced")
	}
}

func TestPoolExhaustionSentinelAndAbort(t *testing.T) {
	h := pmem.New(1 << 22)
	opts := atlas.DefaultOptions()
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	db, err := OpenSized(th, 24) // tiny pool: exhausts quickly
	if err != nil {
		t.Fatal(err)
	}
	// Fill until Put surfaces the sentinel.
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	var putErr error
	n := uint64(0)
	for ; n < 10000; n++ {
		if putErr = db.Put(n, n); putErr != nil {
			break
		}
	}
	if putErr == nil {
		t.Fatal("tiny pool never exhausted")
	}
	if !errors.Is(putErr, ErrPoolExhausted) {
		t.Fatalf("Put error %v does not wrap ErrPoolExhausted", putErr)
	}
	remainBefore := db.PoolRemaining()
	if err := db.Abort(); err != nil {
		t.Fatalf("abort after exhaustion: %v", err)
	}
	if db.PoolRemaining() <= remainBefore {
		t.Fatalf("abort did not return txn pages: %d -> %d", remainBefore, db.PoolRemaining())
	}
	// The aborted transaction left no trace and the store still works.
	if got := db.Count(); got != 0 {
		t.Fatalf("%d keys visible after aborted txn", got)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	put(t, db, 7, 70)
	if v, ok := db.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = %d,%v after abort", v, ok)
	}
	// Delete surfaces the sentinel too once the pool is truly dry (COW of
	// the descent path needs a page).
	for db.PoolRemaining() > 0 {
		if _, err := db.pool.Alloc(); err != nil {
			break
		}
	}
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete(7); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Delete on dry pool: %v", err)
	}
	if err := db.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRestoresCommittedState(t *testing.T) {
	_, db := newDB(t, core.SoftCacheOnline)
	for k := uint64(0); k < 64; k++ {
		put(t, db, k, k*10)
	}
	genBefore := db.Generation()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 32; k++ {
		if err := db.Put(k, 9999); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Delete(40); err != nil {
		t.Fatal(err)
	}
	if err := db.Abort(); err != nil {
		t.Fatal(err)
	}
	if db.Generation() != genBefore {
		t.Fatalf("generation %d after abort, want %d", db.Generation(), genBefore)
	}
	for k := uint64(0); k < 64; k++ {
		if v, ok := db.Get(k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = %d,%v after abort", k, v, ok)
		}
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateAttachMultipleStoresOneHeap(t *testing.T) {
	h := pmem.New(1 << 24)
	opts := atlas.DefaultOptions()
	opts.LogEntries = 1 << 14
	rt := atlas.NewRuntime(h, opts)
	metas := make([]uint64, 3)
	for i := range metas {
		th, err := rt.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		db, err := Create(th, 256)
		if err != nil {
			t.Fatal(err)
		}
		metas[i] = db.MetaAddr()
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 20; k++ {
			if err := db.Put(k, uint64(i)*1000+k); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if h.Root() != 0 {
		t.Fatal("Create must not install a heap root")
	}
	rt.Close()
	// "Restart": recover and attach each store by its meta address.
	if _, err := atlas.Recover(h); err != nil {
		t.Fatal(err)
	}
	rt2 := atlas.NewRuntime(h, opts)
	for i, meta := range metas {
		th, err := rt2.NewThread()
		if err != nil {
			t.Fatal(err)
		}
		db, err := Attach(th, meta)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 20; k++ {
			if v, ok := db.Get(k); !ok || v != uint64(i)*1000+k {
				t.Fatalf("store %d Get(%d) = %d,%v", i, k, v, ok)
			}
		}
		if err := db.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFreeHookDefersRecycling(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	var hookGen uint64
	var held []uint64
	db.SetFreeHook(func(gen uint64, pages []uint64) {
		hookGen = gen
		held = append(held, pages...)
	})
	put(t, db, 1, 10)
	snapRoot := db.Snapshot()
	remain := db.PoolRemaining()
	put(t, db, 1, 20) // supersedes the old leaf
	if len(held) == 0 {
		t.Fatal("free hook never called")
	}
	if hookGen != db.Generation() {
		t.Fatalf("hook gen %d, want %d", hookGen, db.Generation())
	}
	// Pages were not recycled: the snapshot still reads the old version.
	if v, ok := db.GetSnapshot(snapRoot, 1); !ok || v != 10 {
		t.Fatalf("snapshot read %d,%v, want 10", v, ok)
	}
	if db.PoolRemaining() >= remain {
		t.Fatalf("pool grew without recycling: %d -> %d", remain, db.PoolRemaining())
	}
	// Returning the pages makes them allocatable again.
	db.RecyclePages(held)
	if db.PoolRemaining() <= remain-2 {
		t.Fatalf("RecyclePages had no effect: %d", db.PoolRemaining())
	}
}
