package mdb

import (
	"nvmcache/internal/testutil"
	"sort"
	"testing"
	"testing/quick"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
)

func fill(t *testing.T, db *DB, keys []uint64) {
	t.Helper()
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := db.Put(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCursorFullScan(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	keys := []uint64{50, 10, 30, 70, 20, 60, 40}
	fill(t, db, keys)
	var got []uint64
	for c := db.First(db.Snapshot()); c.Valid(); c.Next() {
		got = append(got, c.Key())
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan order %v, want %v", got, want)
		}
	}
}

func TestCursorSeek(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	fill(t, db, []uint64{10, 20, 30, 40})
	c := db.Seek(db.Snapshot(), 25)
	if !c.Valid() || c.Key() != 30 {
		t.Fatalf("Seek(25): valid=%v key=%v", c.Valid(), c.Key())
	}
	c = db.Seek(db.Snapshot(), 40)
	if !c.Valid() || c.Key() != 40 {
		t.Fatalf("Seek(40): valid=%v", c.Valid())
	}
	if c = db.Seek(db.Snapshot(), 41); c.Valid() {
		t.Fatalf("Seek past the end valid at key %d", c.Key())
	}
}

func TestCursorEmptyTree(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	if c := db.First(db.Snapshot()); c.Valid() {
		t.Fatal("cursor valid on empty tree")
	}
	db.Range(db.Snapshot(), 0, 100, func(_, _ uint64) bool {
		t.Fatal("range visited something in an empty tree")
		return false
	})
}

func TestRangeBounds(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	fill(t, db, []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	var got []uint64
	db.Range(db.Snapshot(), 3, 7, func(k, _ uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 4 || got[0] != 3 || got[3] != 6 {
		t.Fatalf("range [3,7) = %v", got)
	}
	// Early stop.
	n := 0
	db.Range(db.Snapshot(), 0, 100, func(_, _ uint64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCursorOnSnapshotIgnoresLaterWrites(t *testing.T) {
	_, db := newDB(t, core.Lazy)
	db.DisableRecycling()
	fill(t, db, []uint64{1, 2, 3})
	snap := db.Snapshot()
	fill(t, db, []uint64{4, 5})
	n := 0
	for c := db.First(snap); c.Valid(); c.Next() {
		n++
	}
	if n != 3 {
		t.Fatalf("snapshot cursor saw %d keys, want 3", n)
	}
}

// Property: the cursor enumerates exactly the reference map's keys in
// sorted order, across random tree shapes with deletions.
func TestQuickCursorMatchesSortedKeys(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		rt, db := quickDB(seed)
		_ = rt
		ref := map[uint64]uint64{}
		if err := db.Begin(); err != nil {
			return false
		}
		for op := 0; op < 120; op++ {
			k := uint64(rng.Intn(200))
			if rng.Intn(5) == 0 {
				if _, err := db.Delete(k); err != nil {
					return false
				}
				delete(ref, k)
			} else {
				if err := db.Put(k, k*3); err != nil {
					return false
				}
				ref[k] = k * 3
			}
		}
		if err := db.Commit(); err != nil {
			return false
		}
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		i := 0
		for c := db.First(db.Snapshot()); c.Valid(); c.Next() {
			if i >= len(want) || c.Key() != want[i] || c.Value() != ref[c.Key()] {
				return false
			}
			i++
		}
		return i == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// quickDB builds a store without a *testing.T, for quick.Check properties.
func quickDB(_ int64) (*atlas.Runtime, *DB) {
	h := pmem.New(1 << 24)
	opts := atlas.DefaultOptions()
	opts.Policy = core.Lazy
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		panic(err)
	}
	db, err := Open(th)
	if err != nil {
		panic(err)
	}
	return rt, db
}
