package mdb

// Range queries, LMDB-style: MDB is "read-optimized" and the paper's
// Mtest interleaves "many traversals" with its updates; a cursor makes
// those traversals incremental and bounded instead of whole-tree walks.

// Cursor iterates keys in ascending order over one root (the current tree
// or a snapshot). It holds the descent stack, so Next is amortized O(1)
// plus O(depth) at page boundaries.
type Cursor struct {
	db    *DB
	stack []cursorFrame
	valid bool
}

type cursorFrame struct {
	page uint64
	idx  int
}

// Seek positions the cursor at the smallest key ≥ k in the given root
// (pass db.Snapshot() for the current tree). It returns the cursor for
// chaining; check Valid before reading.
func (db *DB) Seek(root uint64, k uint64) *Cursor {
	c := &Cursor{db: db}
	p := root
	for p != 0 {
		if db.ptype(p) == pageLeaf {
			n := db.nkeys(p)
			i := 0
			for i < n && db.key(p, i) < k {
				i++
			}
			c.stack = append(c.stack, cursorFrame{p, i})
			if i < n {
				c.valid = true
			} else {
				c.valid = c.advance() // key beyond this leaf: step right
			}
			return c
		}
		i := db.childIndex(p, k)
		c.stack = append(c.stack, cursorFrame{p, i})
		p = db.val(p, i)
	}
	return c
}

// First positions the cursor at the smallest key in the root.
func (db *DB) First(root uint64) *Cursor { return db.Seek(root, 0) }

// Valid reports whether the cursor points at a key/value pair.
func (c *Cursor) Valid() bool { return c.valid }

// Key returns the current key (only when Valid).
func (c *Cursor) Key() uint64 {
	f := c.stack[len(c.stack)-1]
	return c.db.key(f.page, f.idx)
}

// Value returns the current value (only when Valid).
func (c *Cursor) Value() uint64 {
	f := c.stack[len(c.stack)-1]
	return c.db.val(f.page, f.idx)
}

// Next advances to the next key in order; it reports whether the cursor
// remains valid.
func (c *Cursor) Next() bool {
	if !c.valid {
		return false
	}
	top := &c.stack[len(c.stack)-1]
	top.idx++
	if top.idx < c.db.nkeys(top.page) {
		return true
	}
	c.valid = c.advance()
	return c.valid
}

// advance pops exhausted frames and descends into the next subtree.
func (c *Cursor) advance() bool {
	// Pop the exhausted leaf.
	c.stack = c.stack[:len(c.stack)-1]
	for len(c.stack) > 0 {
		top := &c.stack[len(c.stack)-1]
		top.idx++
		if top.idx < c.db.nkeys(top.page) {
			// Descend into the leftmost path of the next subtree.
			p := c.db.val(top.page, top.idx)
			for {
				c.stack = append(c.stack, cursorFrame{p, 0})
				if c.db.ptype(p) == pageLeaf {
					return c.db.nkeys(p) > 0
				}
				p = c.db.val(p, 0)
			}
		}
		c.stack = c.stack[:len(c.stack)-1]
	}
	return false
}

// Range visits all pairs with lo ≤ key < hi in ascending order; fn
// returning false stops early.
func (db *DB) Range(root uint64, lo, hi uint64, fn func(k, v uint64) bool) {
	for c := db.Seek(root, lo); c.Valid(); c.Next() {
		if c.Key() >= hi {
			return
		}
		if !fn(c.Key(), c.Value()) {
			return
		}
	}
}
