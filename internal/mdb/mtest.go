package mdb

import (
	"fmt"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// MtestConfig shapes the paper's Mtest workload (Section IV-C): insert a
// stream of key/value pairs "along with many traversals and deletions",
// batching operations into durable transactions. At the paper's full scale
// (1M insertions, 100K FASEs) each FASE carries ~652 persistent stores.
type MtestConfig struct {
	Inserts int // keys inserted (paper: 1,000,000)
	// Prepopulate inserts this many keys before tracing starts, so the
	// measured phase runs on a mature tree. At paper scale the tree depth
	// saturates within the first ~1% of Mtest; scaled-down runs need the
	// warm-up to reproduce the same steady-state write locality.
	Prepopulate int
	OpsPerTxn   int // operations per durable transaction (≈ 10 matches the paper's stores/FASE)
	ScanEvery   int // run a full traversal after every N transactions
	DeleteFrac  int // delete one key per this many inserts (paper mixes deletions in)
	Threads     int // writer threads, each with a private tree (paper runs 8)
}

// DefaultMtest matches the paper's proportions at full scale.
func DefaultMtest() MtestConfig {
	return MtestConfig{Inserts: 1000000, Prepopulate: 1000000, OpsPerTxn: 20, ScanEvery: 500, DeleteFrac: 10, Threads: 8}
}

// Scale shrinks the insert count by factor s.
func (c MtestConfig) Scale(s float64) MtestConfig {
	c.Inserts = int(float64(c.Inserts) * s)
	if c.Inserts < 64 {
		c.Inserts = 64
	}
	c.Prepopulate = int(float64(c.Prepopulate) * s)
	return c
}

// MtestResult carries the workload's trace and end-state for validation.
type MtestResult struct {
	Trace     *trace.Trace
	Stats     trace.Stats
	FinalKeys int
}

// RunMtest executes the workload. Each thread owns a private DB (LMDB is
// single-writer; the paper's 8-thread run shards work), so threads are
// independent exactly like the paper's per-thread software caches.
func RunMtest(c MtestConfig) (*MtestResult, error) {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.OpsPerTxn < 1 {
		c.OpsPerTxn = 1
	}
	perThread := c.Inserts / c.Threads
	// Heap: pages are recycled, so live pages ≈ keys/4 plus txn churn.
	heapBytes := 64*1024*1024 + 256*c.Inserts
	h := pmem.New(heapBytes)
	opts := atlas.DefaultOptions()
	opts.Policy = core.Best // trace recording only; policies replay later
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(h, opts)

	finalKeys := 0
	for ti := 0; ti < c.Threads; ti++ {
		th, err := rt.NewThread()
		if err != nil {
			return nil, err
		}
		// Pool sizing: live pages stay near keys/4 with recycling; churn
		// and splits need headroom.
		pages := (perThread + c.Prepopulate/c.Threads) + 4096
		db, err := OpenSized(th, pages)
		if err != nil {
			return nil, err
		}
		if c.Prepopulate > 0 {
			th.SetRecording(false)
			if err := prepopulate(db, ti, c.Prepopulate/c.Threads, c); err != nil {
				return nil, fmt.Errorf("mdb: thread %d warmup: %w", ti, err)
			}
			th.SetRecording(true)
		}
		if err := runThread(db, ti, perThread, c); err != nil {
			return nil, fmt.Errorf("mdb: thread %d: %w", ti, err)
		}
		finalKeys += db.Count()
	}
	rt.Close()
	tr := rt.Trace()
	return &MtestResult{Trace: tr, Stats: trace.ComputeStats(tr), FinalKeys: finalKeys}, nil
}

// prepopulate fills the tree before measurement (untraced warm-up).
func prepopulate(db *DB, ti, inserts int, c MtestConfig) error {
	x := uint64(ti)*0x517cc1b727220a95 + 0x9e3779b97f4a7c15
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for done := 0; done < inserts; {
		if err := db.Begin(); err != nil {
			return err
		}
		for op := 0; op < c.OpsPerTxn && done < inserts; op++ {
			if err := db.Put(next(), uint64(done)); err != nil {
				return err
			}
			done++
		}
		if err := db.Commit(); err != nil {
			return err
		}
	}
	return nil
}

func runThread(db *DB, ti, inserts int, c MtestConfig) error {
	// Pseudo-random but deterministic key stream (xorshift), thread-salted.
	x := uint64(ti)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	done := 0
	txns := 0
	var pendingDeletes []uint64
	for done < inserts {
		if err := db.Begin(); err != nil {
			return err
		}
		for op := 0; op < c.OpsPerTxn && done < inserts; op++ {
			k := next()
			if err := db.Put(k, uint64(done)); err != nil {
				return err
			}
			if c.DeleteFrac > 0 && done%c.DeleteFrac == c.DeleteFrac-1 {
				pendingDeletes = append(pendingDeletes, k)
			}
			done++
		}
		// Deletions ride along in the same transaction stream.
		for len(pendingDeletes) > 0 && txns%3 == 2 {
			k := pendingDeletes[len(pendingDeletes)-1]
			pendingDeletes = pendingDeletes[:len(pendingDeletes)-1]
			if _, err := db.Delete(k); err != nil {
				return err
			}
		}
		if err := db.Commit(); err != nil {
			return err
		}
		txns++
		if c.ScanEvery > 0 && txns%c.ScanEvery == 0 {
			db.Count() // read-only traversal
		}
	}
	return nil
}
