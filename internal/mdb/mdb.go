// Package mdb is a memory-mapped-database stand-in for the paper's MDB
// (LMDB) case study (Section IV-C): a copy-on-write B+-tree key-value
// store with single-writer transactions and snapshot readers, persisted
// through the Atlas runtime. A write transaction copies every page on the
// root-to-leaf path of each update (the COW policy the paper describes),
// mutates the copies, and installs a new root — all inside one FASE, so a
// crash either exposes the old tree or the new one, never a mix.
//
// The store reproduces the write-pattern class the paper measures: bursts
// of page-copy stores with heavy intra-transaction page reuse (upper-level
// pages are copied once per transaction but touched by every operation),
// which is exactly the locality the adaptive software cache discovers
// (MDB's selected cache size is 20 in Section IV-G).
package mdb

import (
	"errors"
	"fmt"

	"nvmcache/internal/atlas"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// ErrPoolExhausted is returned (wrapped) by Put and Delete when the page
// pool has no pages left for the transaction's COW copies. It is a load
// condition, not corruption: the caller should Abort the transaction and
// shed work (or reopen with a larger pool). Test with errors.Is.
var ErrPoolExhausted = errors.New("mdb: page pool exhausted")

// Tree geometry: order-8 nodes, one page = header + 8 keys + 8 values (or
// child pointers) = 136 bytes, padded to 3 cache lines so pages never
// share a line (block size 192 in the page pool).
const (
	order     = 8
	hdrOff    = 0
	keysOff   = 8
	valsOff   = keysOff + 8*order
	pageBytes = valsOff + 8*order
	pageBlock = 3 * trace.LineSize
)

// DefaultPoolPages sizes the page pool when Open is not given an explicit
// capacity.
const DefaultPoolPages = 1 << 15

const (
	pageLeaf   = 0
	pageBranch = 1
)

// DB is the key-value store. One DB has a single writer at a time (callers
// serialize write transactions, as in LMDB); snapshot readers may read any
// committed root.
type DB struct {
	t    *atlas.Thread
	meta uint64 // meta page: root ptr at +0, generation at +8, pool at +16
	// pool recycles pages persistently (its free list survives crashes,
	// like LMDB's freelist); recycle=false keeps old page versions alive
	// for long-lived snapshots.
	pool    *pmem.Pool
	recycle bool
	// txn state
	inTxn  bool
	copied map[uint64]uint64 // old page -> txn-local copy
	fresh  map[uint64]bool   // pages allocated in this txn (mutable in place)
	freed  []uint64          // pages to recycle at commit
	// freeHook, when set, receives the superseded pages of each commit
	// instead of them being recycled immediately (see SetFreeHook).
	freeHook func(gen uint64, pages []uint64)
}

// Open creates an empty store with the default page-pool capacity (or
// reattaches to one via root discovery; see Reopen).
func Open(t *atlas.Thread) (*DB, error) { return OpenSized(t, DefaultPoolPages) }

// OpenSized creates an empty store whose page pool holds up to pages
// pages and installs it as the heap's root object.
func OpenSized(t *atlas.Thread, pages int) (*DB, error) {
	db, err := Create(t, pages)
	if err != nil {
		return nil, err
	}
	t.Heap().SetRoot(db.meta)
	return db, nil
}

// Create builds an empty store without touching the heap's root pointer,
// so several stores can share one heap (a sharded service keeps each
// shard's MetaAddr in its own directory object). Use Attach to reopen.
func Create(t *atlas.Thread, pages int) (*DB, error) {
	meta, err := t.Heap().AllocLines(64)
	if err != nil {
		return nil, fmt.Errorf("mdb: %w", err)
	}
	pool, err := pmem.NewPool(t.Heap(), pageBlock, pages)
	if err != nil {
		return nil, fmt.Errorf("mdb: %w", err)
	}
	db := &DB{t: t, meta: meta, pool: pool, recycle: true}
	t.FASEBegin()
	t.Store64(meta, 0)              // empty tree
	t.Store64(meta+8, 0)            // generation
	t.Store64(meta+16, pool.Base()) // page pool
	t.FASEEnd()
	return db, nil
}

// Reopen attaches to the store previously created in the heap (after a
// restart and atlas.Recover).
func Reopen(t *atlas.Thread) (*DB, error) {
	meta := t.Heap().Root()
	if meta == 0 {
		return nil, fmt.Errorf("mdb: heap has no root; use Open")
	}
	return Attach(t, meta)
}

// Attach reopens the store whose meta page lives at meta (obtained from
// MetaAddr before the restart), for heaps holding more than one store.
func Attach(t *atlas.Thread, meta uint64) (*DB, error) {
	if meta == 0 {
		return nil, fmt.Errorf("mdb: zero meta address")
	}
	pool, err := pmem.OpenPool(t.Heap(), t.Heap().ReadUint64(meta+16))
	if err != nil {
		return nil, fmt.Errorf("mdb: reopening page pool: %w", err)
	}
	return &DB{t: t, meta: meta, pool: pool, recycle: true}, nil
}

// MetaAddr returns the persistent address of the store's meta page; store
// it in a root/directory object to Attach after a restart.
func (db *DB) MetaAddr() uint64 { return db.meta }

// Generation returns the committed transaction count.
func (db *DB) Generation() uint64 { return db.t.Load64(db.meta + 8) }

func (db *DB) alloc() (uint64, error) {
	p, err := db.pool.Alloc()
	if err != nil {
		if errors.Is(err, pmem.ErrPoolExhausted) {
			return 0, fmt.Errorf("%w (%d pages)", ErrPoolExhausted, db.pool.Capacity())
		}
		return 0, err
	}
	return p, nil
}

// page accessors (p is a page address).
func (db *DB) ptype(p uint64) uint64      { return db.t.Load64(p+hdrOff) >> 32 }
func (db *DB) nkeys(p uint64) int         { return int(uint32(db.t.Load64(p + hdrOff))) }
func (db *DB) key(p uint64, i int) uint64 { return db.t.Load64(p + keysOff + uint64(8*i)) }
func (db *DB) val(p uint64, i int) uint64 { return db.t.Load64(p + valsOff + uint64(8*i)) }

func (db *DB) setHdr(p uint64, typ uint64, n int) {
	db.t.Store64(p+hdrOff, typ<<32|uint64(uint32(n)))
}
func (db *DB) setKey(p uint64, i int, k uint64) { db.t.Store64(p+keysOff+uint64(8*i), k) }
func (db *DB) setVal(p uint64, i int, v uint64) { db.t.Store64(p+valsOff+uint64(8*i), v) }

// Begin opens a write transaction (one FASE).
func (db *DB) Begin() error {
	if db.inTxn {
		return fmt.Errorf("mdb: nested write transaction")
	}
	db.inTxn = true
	db.copied = make(map[uint64]uint64, 16)
	db.fresh = make(map[uint64]bool, 16)
	db.freed = db.freed[:0]
	db.t.FASEBegin()
	return nil
}

// Commit installs the new root (done by the ops as they run), bumps the
// generation and closes the FASE; old page versions become recyclable.
func (db *DB) Commit() error {
	if !db.inTxn {
		return fmt.Errorf("mdb: commit outside transaction")
	}
	db.t.Store64(db.meta+8, db.Generation()+1)
	db.t.FASEEnd()
	if db.recycle {
		if db.freeHook != nil {
			if len(db.freed) > 0 {
				pages := make([]uint64, len(db.freed))
				copy(pages, db.freed)
				db.freeHook(db.Generation(), pages)
			}
		} else {
			// The superseded page versions return to the persistent pool only
			// after the transaction is durable, so a crash can at worst leak
			// pages, never hand a live page out twice.
			for _, p := range db.freed {
				db.pool.Free(p)
			}
		}
	}
	db.inTxn = false
	db.copied, db.fresh = nil, nil
	return nil
}

// PendingCommit is a transaction published but not yet durable: the root
// and generation are installed and the FASE's epoch is in flight through
// the flush pipeline. Await makes it durable (and only then releases the
// superseded pages). Until Await returns, a crash rolls the transaction
// back, so its effects must not be acknowledged externally.
type PendingCommit struct {
	db     *DB
	ticket atlas.FASETicket
	gen    uint64
	freed  []uint64
}

// CommitPublish is the overlap-friendly half of Commit: it installs the new
// root, bumps the generation and publishes the FASE without waiting for
// persistence, so the caller can start the next transaction (whose stores
// and undo logging overlap this one's background drain) before calling
// Await. Without a pipelined runtime the publish degenerates to a
// synchronous FASE end and Await is a cheap no-op, so callers may use the
// split pair unconditionally.
func (db *DB) CommitPublish() (*PendingCommit, error) {
	if !db.inTxn {
		return nil, fmt.Errorf("mdb: commit outside transaction")
	}
	db.t.Store64(db.meta+8, db.Generation()+1)
	tk := db.t.FASEPublish()
	pc := &PendingCommit{db: db, ticket: tk, gen: db.Generation()}
	if db.recycle && len(db.freed) > 0 {
		pc.freed = append([]uint64(nil), db.freed...)
	}
	db.inTxn = false
	db.copied, db.fresh = nil, nil
	db.freed = db.freed[:0]
	return pc, nil
}

// Await blocks until the published transaction is durable, then recycles
// (or hands to the free hook) the page versions it superseded. Must be
// called from the store's single writer, before any later transaction's
// Await.
func (pc *PendingCommit) Await() {
	db := pc.db
	db.t.FASEAwait(pc.ticket)
	if db.recycle && len(pc.freed) > 0 {
		if db.freeHook != nil {
			db.freeHook(pc.gen, pc.freed)
		} else {
			for _, p := range pc.freed {
				db.pool.Free(p)
			}
		}
	}
	pc.freed = nil
}

// Generation returns pc's committed generation.
func (pc *PendingCommit) Generation() uint64 { return pc.gen }

// Abort rolls the current transaction back: the FASE's undo entries are
// applied in reverse (restoring root, generation, and every touched page)
// and the pages allocated by the transaction are returned to the pool. The
// committed tree is untouched — exactly the state a crash mid-transaction
// plus recovery would yield, minus the page leak. Abort fails (with the
// store left as recovery would leave it) only when the undo log overflowed.
func (db *DB) Abort() error {
	if !db.inTxn {
		return fmt.Errorf("mdb: abort outside transaction")
	}
	err := db.t.FASEAbort()
	if err == nil {
		// All pages allocated in this txn (copies and fresh nodes) are
		// unreferenced by the restored tree; recycle them.
		for p := range db.fresh {
			db.pool.Free(p)
		}
	}
	db.inTxn = false
	db.copied, db.fresh = nil, nil
	db.freed = db.freed[:0]
	return err
}

// SetFreeHook redirects the superseded pages of every commit to fn instead
// of recycling them immediately. A service layer serving lock-free snapshot
// readers uses this to defer reuse until no snapshot older than gen is
// live, then returns the pages with RecyclePages. fn runs on the committing
// goroutine, after the transaction is durable. Passing nil restores
// immediate recycling.
func (db *DB) SetFreeHook(fn func(gen uint64, pages []uint64)) { db.freeHook = fn }

// RecyclePages returns pages previously handed to the free hook to the
// pool. Like all mutating methods it must be called from the store's single
// writer (the pool's free list is not safe for concurrent update).
func (db *DB) RecyclePages(pages []uint64) {
	for _, p := range pages {
		db.pool.Free(p)
	}
}

// PoolRemaining reports how many pages the store can still allocate.
func (db *DB) PoolRemaining() int { return db.pool.Remaining() }

// ResetForRebuild discards the whole tree: the page pool rewinds to empty
// and the root is cleared, leaving a fresh store at the same meta address.
// Checkpointed recovery uses it before reconstructing the tree from a
// checkpoint image, so it never has to trust (or leak) the crashed tree's
// pages. The reset is deliberately not transactional across the pool and
// the root — a crash mid-reset is recovered by the caller re-running the
// whole rebuild, which starts with another ResetForRebuild.
func (db *DB) ResetForRebuild() error {
	if db.inTxn {
		return fmt.Errorf("mdb: ResetForRebuild inside transaction")
	}
	db.pool.Reset()
	db.t.FASEBegin()
	db.t.Store64(db.meta, 0)
	db.t.FASEEnd()
	return nil
}

// ForceGeneration overwrites the committed generation (one tiny FASE).
// Rebuild-from-checkpoint uses it to stamp the reconstructed tree with the
// generation the journal proves was durable at the crash, instead of the
// incidental count of rebuild transactions.
func (db *DB) ForceGeneration(gen uint64) error {
	if db.inTxn {
		return fmt.Errorf("mdb: ForceGeneration inside transaction")
	}
	db.t.FASEBegin()
	db.t.Store64(db.meta+8, gen)
	db.t.FASEEnd()
	return nil
}

// touch returns a mutable version of page p within the current
// transaction, copying it on first touch (copy-on-write).
func (db *DB) touch(p uint64) (uint64, error) {
	if db.fresh[p] {
		return p, nil
	}
	if c, ok := db.copied[p]; ok {
		return c, nil
	}
	c, err := db.alloc()
	if err != nil {
		return 0, err
	}
	// Copy the whole page word by word: the COW write burst the paper's
	// MDB exhibits.
	for off := uint64(0); off < pageBytes; off += 8 {
		db.t.Store64(c+off, db.t.Load64(p+off))
	}
	db.copied[p] = c
	db.fresh[c] = true
	db.freed = append(db.freed, p)
	return c, nil
}

func (db *DB) newPage(typ uint64) (uint64, error) {
	p, err := db.alloc()
	if err != nil {
		return 0, err
	}
	db.fresh[p] = true
	db.setHdr(p, typ, 0)
	return p, nil
}

// childIndex returns the branch slot whose subtree covers k: the largest i
// with key(i) ≤ k, or 0 when k precedes every separator.
func (db *DB) childIndex(p uint64, k uint64) int {
	n := db.nkeys(p)
	i := n - 1
	for i > 0 && db.key(p, i) > k {
		i--
	}
	return i
}

// Put inserts or updates a key inside the current transaction.
func (db *DB) Put(k, v uint64) error {
	if !db.inTxn {
		return fmt.Errorf("mdb: Put outside transaction")
	}
	root := db.t.Load64(db.meta)
	if root == 0 {
		leaf, err := db.newPage(pageLeaf)
		if err != nil {
			return err
		}
		db.setHdr(leaf, pageLeaf, 1)
		db.setKey(leaf, 0, k)
		db.setVal(leaf, 0, v)
		db.t.Store64(db.meta, leaf)
		return nil
	}
	newRoot, split, err := db.insert(root, k, v)
	if err != nil {
		return err
	}
	if split != 0 {
		// Root split: new branch with the two subtrees.
		nr, err := db.newPage(pageBranch)
		if err != nil {
			return err
		}
		db.setHdr(nr, pageBranch, 2)
		db.setKey(nr, 0, db.key(newRoot, 0))
		db.setVal(nr, 0, newRoot)
		db.setKey(nr, 1, db.key(split, 0))
		db.setVal(nr, 1, split)
		newRoot = nr
	}
	db.t.Store64(db.meta, newRoot)
	return nil
}

// insert adds k:v under page p, returning p's mutable replacement and, if
// p split, the new right sibling.
func (db *DB) insert(p uint64, k, v uint64) (replacement, split uint64, err error) {
	c, err := db.touch(p)
	if err != nil {
		return 0, 0, err
	}
	if db.ptype(c) == pageLeaf {
		return db.insertLeaf(c, k, v)
	}
	i := db.childIndex(c, k)
	childNew, childSplit, err := db.insert(db.val(c, i), k, v)
	if err != nil {
		return 0, 0, err
	}
	db.setVal(c, i, childNew)
	db.setKey(c, i, db.key(childNew, 0)) // min-key may have decreased
	if childSplit != 0 {
		return db.insertEntry(c, i+1, db.key(childSplit, 0), childSplit)
	}
	return c, 0, nil
}

func (db *DB) insertLeaf(c uint64, k, v uint64) (uint64, uint64, error) {
	n := db.nkeys(c)
	pos := 0
	for pos < n && db.key(c, pos) < k {
		pos++
	}
	if pos < n && db.key(c, pos) == k {
		db.setVal(c, pos, v) // update in place (page is a txn copy)
		return c, 0, nil
	}
	return db.insertEntry(c, pos, k, v)
}

// insertEntry inserts (k, v) at slot pos of page c, splitting if full.
func (db *DB) insertEntry(c uint64, pos int, k, v uint64) (uint64, uint64, error) {
	n := db.nkeys(c)
	typ := db.ptype(c)
	if n < order {
		for j := n; j > pos; j-- {
			db.setKey(c, j, db.key(c, j-1))
			db.setVal(c, j, db.val(c, j-1))
		}
		db.setKey(c, pos, k)
		db.setVal(c, pos, v)
		db.setHdr(c, typ, n+1)
		return c, 0, nil
	}
	// Split: left keeps the lower half, right gets the upper half; then
	// insert into the proper side.
	right, err := db.newPage(typ)
	if err != nil {
		return 0, 0, err
	}
	half := order / 2
	for j := half; j < order; j++ {
		db.setKey(right, j-half, db.key(c, j))
		db.setVal(right, j-half, db.val(c, j))
	}
	db.setHdr(right, typ, order-half)
	db.setHdr(c, typ, half)
	if pos <= half {
		if _, _, err := db.insertEntry(c, pos, k, v); err != nil {
			return 0, 0, err
		}
	} else {
		if _, _, err := db.insertEntry(right, pos-half, k, v); err != nil {
			return 0, 0, err
		}
	}
	return c, right, nil
}

// Get looks up a key against the current committed (or in-transaction)
// root.
func (db *DB) Get(k uint64) (uint64, bool) {
	p := db.t.Load64(db.meta)
	return db.getFrom(p, k)
}

// GetSnapshot looks up k in an explicit snapshot root (see Snapshot).
func (db *DB) GetSnapshot(root, k uint64) (uint64, bool) { return db.getFrom(root, k) }

// Snapshot returns the current root for later snapshot reads. Snapshots
// stay valid until a later transaction recycles their pages; concurrent
// long-lived readers should disable recycling (see DisableRecycling).
func (db *DB) Snapshot() uint64 { return db.t.Load64(db.meta) }

// DisableRecycling stops page reuse, giving persistent snapshot validity
// at the cost of pool growth.
func (db *DB) DisableRecycling() { db.recycle = false }

func (db *DB) getFrom(p uint64, k uint64) (uint64, bool) {
	for p != 0 {
		if db.ptype(p) == pageLeaf {
			n := db.nkeys(p)
			for i := 0; i < n; i++ {
				if db.key(p, i) == k {
					return db.val(p, i), true
				}
			}
			return 0, false
		}
		p = db.val(p, db.childIndex(p, k))
	}
	return 0, false
}

// Delete removes a key inside the current transaction; it reports whether
// the key was present.
func (db *DB) Delete(k uint64) (bool, error) {
	if !db.inTxn {
		return false, fmt.Errorf("mdb: Delete outside transaction")
	}
	root := db.t.Load64(db.meta)
	if root == 0 {
		return false, nil
	}
	// remove COW-copies the descent path even when the key is absent, so
	// the new root must be installed unconditionally: the old path pages
	// are already queued for recycling.
	newRoot, found, err := db.remove(root, k)
	if err != nil {
		return false, err
	}
	db.t.Store64(db.meta, newRoot)
	return found, nil
}

// remove deletes k under p; returns the mutable replacement (0 when the
// subtree became empty).
func (db *DB) remove(p uint64, k uint64) (uint64, bool, error) {
	c, err := db.touch(p)
	if err != nil {
		return 0, false, err
	}
	if db.ptype(c) == pageLeaf {
		n := db.nkeys(c)
		for i := 0; i < n; i++ {
			if db.key(c, i) == k {
				for j := i; j < n-1; j++ {
					db.setKey(c, j, db.key(c, j+1))
					db.setVal(c, j, db.val(c, j+1))
				}
				db.setHdr(c, pageLeaf, n-1)
				if n-1 == 0 {
					return 0, true, nil
				}
				return c, true, nil
			}
		}
		return c, false, nil
	}
	i := db.childIndex(c, k)
	childNew, found, err := db.remove(db.val(c, i), k)
	if err != nil {
		return 0, false, err
	}
	// The child was copied whether or not the key was found; it must be
	// re-linked either way, or this page would keep pointing at a page
	// already queued for recycling.
	if childNew == 0 {
		// Drop the emptied child entry.
		n := db.nkeys(c)
		for j := i; j < n-1; j++ {
			db.setKey(c, j, db.key(c, j+1))
			db.setVal(c, j, db.val(c, j+1))
		}
		db.setHdr(c, pageBranch, n-1)
		if n-1 == 0 {
			return 0, true, nil
		}
		return c, true, nil
	}
	db.setVal(c, i, childNew)
	db.setKey(c, i, db.key(childNew, 0))
	return c, found, nil
}

// Scan visits all key/value pairs in ascending key order from the current
// root (a read-only traversal; the paper's Mtest interleaves these with
// inserts and deletes).
func (db *DB) Scan(fn func(k, v uint64) bool) {
	db.scanFrom(db.t.Load64(db.meta), fn)
}

func (db *DB) scanFrom(p uint64, fn func(k, v uint64) bool) bool {
	if p == 0 {
		return true
	}
	n := db.nkeys(p)
	if db.ptype(p) == pageLeaf {
		for i := 0; i < n; i++ {
			if !fn(db.key(p, i), db.val(p, i)) {
				return false
			}
		}
		return true
	}
	for i := 0; i < n; i++ {
		if !db.scanFrom(db.val(p, i), fn) {
			return false
		}
	}
	return true
}

// Count returns the number of keys (full traversal).
func (db *DB) Count() int {
	n := 0
	db.Scan(func(_, _ uint64) bool { n++; return true })
	return n
}

// CheckInvariants validates tree structure: key ordering within pages,
// min-key separators matching child minima, and leaf depth uniformity.
func (db *DB) CheckInvariants() error {
	root := db.t.Load64(db.meta)
	if root == 0 {
		return nil
	}
	_, err := db.checkPage(root, 0)
	return err
}

func (db *DB) checkPage(p uint64, depth int) (leafDepth int, err error) {
	n := db.nkeys(p)
	if n <= 0 || n > order {
		return 0, fmt.Errorf("mdb: page %d has %d keys", p, n)
	}
	for i := 1; i < n; i++ {
		if db.key(p, i-1) >= db.key(p, i) {
			return 0, fmt.Errorf("mdb: page %d keys out of order at %d", p, i)
		}
	}
	if db.ptype(p) == pageLeaf {
		return depth, nil
	}
	want := -1
	for i := 0; i < n; i++ {
		child := db.val(p, i)
		if db.key(child, 0) != db.key(p, i) {
			return 0, fmt.Errorf("mdb: separator %d of page %d (key %d) != child min %d",
				i, p, db.key(p, i), db.key(child, 0))
		}
		d, err := db.checkPage(child, depth+1)
		if err != nil {
			return 0, err
		}
		if want == -1 {
			want = d
		} else if d != want {
			return 0, fmt.Errorf("mdb: uneven leaf depth under page %d", p)
		}
	}
	return want, nil
}

// PageLines returns the number of cache lines per page (for locality
// reasoning in tests and docs).
func PageLines() int { return (pageBytes + trace.LineSize - 1) / trace.LineSize }
