package loadgen

import (
	"testing"

	"nvmcache/internal/server"
)

// TestRunBinaryProtocol drives the same accounting invariants as the text
// runs, but over the binary wire protocol with the batched verbs in the
// mix: every scheduled frame must complete, error-free, and the server's
// per-verb deltas must cover the logical (per-key) operation count.
func TestRunBinaryProtocol(t *testing.T) {
	srv := selfHost(t, server.Options{})
	for _, mode := range []string{"text", "binary"} {
		t.Run(mode, func(t *testing.T) {
			cfg := testConfig(srv.Addr().String())
			cfg.Proto = mode
			cfg.Ops = 1000
			base := DefaultSpec()
			base.Keys = 256
			base.BatchLen = 4
			spec, err := ParseMix("get:2,put:1,mget:1,mput:1,incr:1,scan:1", base)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Dist = spec
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Sent != int64(cfg.Ops) {
				t.Fatalf("sent %d of %d", rep.Sent, cfg.Ops)
			}
			if rep.Completed != rep.Sent || rep.Errors != 0 || rep.Timeouts != 0 {
				t.Fatalf("completed=%d errors=%d timeouts=%d of sent=%d",
					rep.Completed, rep.Errors, rep.Timeouts, rep.Sent)
			}
			// An MGET/MPUT frame is one wire op but BatchLen logical ops, so
			// the verb deltas must exceed the frame count for this mix.
			d := rep.ServerDelta
			verbs := d["total.puts"] + d["total.dels"] + d["total.gets"] +
				d["total.scans"] + d["total.incrs"] + d["total.decrs"]
			if verbs < float64(rep.Sent) {
				t.Fatalf("server verb deltas %.0f < sent %d (%v)", verbs, rep.Sent, d)
			}
			// The artifact must record which dialect produced it.
			b := rep.Bench("loadgen_proto_test")
			if b.Config.Proto != mode {
				t.Fatalf("artifact proto = %q, want %q", b.Config.Proto, mode)
			}
			if err := b.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConfigProtoValidation(t *testing.T) {
	cfg := Config{Addr: "x", Rate: 1, Duration: 1, Proto: "carrier-pigeon"}
	if _, err := cfg.withDefaults(); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg.Proto = ""
	got, err := cfg.withDefaults()
	if err != nil || got.Proto != "text" {
		t.Fatalf("default proto = %q, %v, want text", got.Proto, err)
	}
}

func TestOpLineBatchedVerbs(t *testing.T) {
	op := Op{Kind: OpMGet, Keys: []uint64{1, 2, 3}}
	if got := op.Line(); got != "MGET 1 2 3" {
		t.Fatalf("MGET line = %q", got)
	}
	op = Op{Kind: OpMPut, Keys: []uint64{1, 2}, Vals: []uint64{10, 20}}
	if got := op.Line(); got != "MPUT 1 10 2 20" {
		t.Fatalf("MPUT line = %q", got)
	}
}

func TestMixGeneratesBatchedOps(t *testing.T) {
	spec, err := ParseMix("mget:1,mput:1", Spec{Keys: 64, BatchLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := spec.Generator(0, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	sawGet, sawPut := false, false
	for i := 0; i < 100; i++ {
		op := gen.Next()
		switch op.Kind {
		case OpMGet:
			sawGet = true
			if len(op.Keys) != 4 {
				t.Fatalf("MGET batch len = %d, want 4", len(op.Keys))
			}
		case OpMPut:
			sawPut = true
			if len(op.Keys) != 4 || len(op.Vals) != 4 {
				t.Fatalf("MPUT batch lens = %d/%d, want 4/4", len(op.Keys), len(op.Vals))
			}
		default:
			t.Fatalf("unexpected op kind %v in mget/mput mix", op.Kind)
		}
	}
	if !sawGet || !sawPut {
		t.Fatalf("mix drew mget=%v mput=%v, want both", sawGet, sawPut)
	}
}
