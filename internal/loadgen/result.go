package loadgen

import (
	"errors"
	"fmt"
	"time"

	"nvmcache/internal/benchfmt"
)

// Bench is the persisted BENCH_<experiment>.json artifact: the full
// workload configuration, the latency distribution (percentiles for
// humans, raw buckets for tooling that wants to re-aggregate or merge
// runs), the server's STATS delta over exactly the measured window, and
// the benchfmt envelope tying it all to a commit. Checked-in artifacts
// form the repository's perf trajectory.
type Bench struct {
	benchfmt.Meta
	Config  BenchConfig  `json:"config"`
	Metrics BenchMetrics `json:"metrics"`
	Buckets []HistBucket `json:"histogram"`
	// Phases is the per-phase latency breakdown of phased schedules
	// (schema v1.1; absent for single-phase runs and in v1 artifacts): the
	// aggregate histogram split by the phase each operation was issued in,
	// so a distribution shift's transient — the thing adaptive sizing is
	// judged on — is not averaged away.
	Phases []PhaseMetrics     `json:"phases,omitempty"`
	SLO    *SLOResult         `json:"slo,omitempty"`
	Server map[string]float64 `json:"server_delta,omitempty"`
}

// PhaseMetrics is one schedule phase's share of the run.
type PhaseMetrics struct {
	Name      string  `json:"name"`
	Completed int64   `json:"completed"`
	MeanUS    float64 `json:"mean_us"`
	P50US     float64 `json:"p50_us"`
	P90US     float64 `json:"p90_us"`
	P99US     float64 `json:"p99_us"`
	MaxUS     float64 `json:"max_us"`
}

// BenchConfig is the workload as JSON, with units in the field names.
type BenchConfig struct {
	Addr      string  `json:"addr"`
	RateOps   float64 `json:"rate_ops"`
	Conns     int     `json:"conns"`
	DurationS float64 `json:"duration_s"`
	Ops       int     `json:"ops,omitempty"`
	Dist      Spec    `json:"dist"`
	DistName  string  `json:"dist_name"`
	Seed      int64   `json:"seed"`
	Proto     string  `json:"proto,omitempty"`
	Preload   uint64  `json:"preload,omitempty"`
	TimeoutMS float64 `json:"timeout_ms"`
}

// BenchMetrics is the headline numbers.
type BenchMetrics struct {
	Sent          int64   `json:"sent"`
	Completed     int64   `json:"completed"`
	Errors        int64   `json:"errors"`
	Timeouts      int64   `json:"timeouts"`
	ElapsedS      float64 `json:"elapsed_s"`
	ThroughputOps float64 `json:"throughput_ops"`
	MinUS         float64 `json:"min_us"`
	MeanUS        float64 `json:"mean_us"`
	P50US         float64 `json:"p50_us"`
	P90US         float64 `json:"p90_us"`
	P99US         float64 `json:"p99_us"`
	P999US        float64 `json:"p999_us"`
	MaxUS         float64 `json:"max_us"`
}

func us(d time.Duration) float64 { return float64(d) / 1e3 }

// Bench converts a report into its persisted artifact, stamping the
// benchfmt envelope (schema, time, git state) for experiment id exp.
func (r *Report) Bench(exp string) *Bench {
	var phases []PhaseMetrics
	for i, h := range r.PhaseHists {
		phases = append(phases, PhaseMetrics{
			Name:      r.PhaseNames[i],
			Completed: h.Count(),
			MeanUS:    us(h.Mean()),
			P50US:     us(h.Quantile(0.50)),
			P90US:     us(h.Quantile(0.90)),
			P99US:     us(h.Quantile(0.99)),
			MaxUS:     us(h.Max()),
		})
	}
	return &Bench{
		Meta: benchfmt.NewMeta(exp),
		Config: BenchConfig{
			Addr:      r.Config.Addr,
			RateOps:   r.Config.Rate,
			Conns:     r.Config.Conns,
			DurationS: r.Config.Duration.Seconds(),
			Ops:       r.Config.Ops,
			Dist:      r.Config.Dist,
			DistName:  r.Config.Dist.Name(),
			Seed:      r.Config.Seed,
			Proto:     r.Config.Proto,
			Preload:   r.Config.Preload,
			TimeoutMS: float64(r.Config.Timeout) / 1e6,
		},
		Metrics: BenchMetrics{
			Sent:          r.Sent,
			Completed:     r.Completed,
			Errors:        r.Errors,
			Timeouts:      r.Timeouts,
			ElapsedS:      r.Elapsed.Seconds(),
			ThroughputOps: r.Throughput(),
			MinUS:         us(r.Hist.Min()),
			MeanUS:        us(r.Hist.Mean()),
			P50US:         us(r.Hist.Quantile(0.50)),
			P90US:         us(r.Hist.Quantile(0.90)),
			P99US:         us(r.Hist.Quantile(0.99)),
			P999US:        us(r.Hist.Quantile(0.999)),
			MaxUS:         us(r.Hist.Max()),
		},
		Buckets: r.Hist.Buckets(),
		Phases:  phases,
		SLO:     r.SLO,
		Server:  r.ServerDelta,
	}
}

// Validate checks the artifact's internal consistency — the schema
// contract CI's bench-smoke step enforces on every emitted file.
func (b *Bench) Validate() error {
	if err := b.Meta.Validate(); err != nil {
		return err
	}
	if b.Config.RateOps <= 0 {
		return errors.New("bench: config.rate_ops must be positive")
	}
	if b.Config.Conns <= 0 {
		return errors.New("bench: config.conns must be positive")
	}
	if b.Config.DistName == "" {
		return errors.New("bench: config.dist_name empty")
	}
	m := b.Metrics
	if m.Completed > m.Sent {
		return fmt.Errorf("bench: completed %d > sent %d", m.Completed, m.Sent)
	}
	if m.Sent > 0 && m.ElapsedS <= 0 {
		return errors.New("bench: sent ops but elapsed_s is zero")
	}
	var inBuckets int64
	for i, bk := range b.Buckets {
		if bk.Count <= 0 {
			return fmt.Errorf("bench: histogram[%d] count %d", i, bk.Count)
		}
		if bk.HiNanos < bk.LoNanos {
			return fmt.Errorf("bench: histogram[%d] hi %d < lo %d", i, bk.HiNanos, bk.LoNanos)
		}
		if i > 0 && bk.LoNanos <= b.Buckets[i-1].LoNanos {
			return fmt.Errorf("bench: histogram[%d] not ascending", i)
		}
		inBuckets += bk.Count
	}
	if inBuckets != m.Completed {
		return fmt.Errorf("bench: histogram holds %d observations, completed=%d",
			inBuckets, m.Completed)
	}
	if len(b.Phases) > 0 {
		var inPhases int64
		for i, p := range b.Phases {
			if p.Name == "" {
				return fmt.Errorf("bench: phases[%d] has no name", i)
			}
			if p.Completed < 0 {
				return fmt.Errorf("bench: phases[%d] completed %d", i, p.Completed)
			}
			if p.Completed > 0 && !(p.P50US <= p.P90US && p.P90US <= p.P99US && p.P99US <= p.MaxUS) {
				return fmt.Errorf("bench: phases[%d] percentiles not monotone: p50=%.1f p90=%.1f p99=%.1f max=%.1f",
					i, p.P50US, p.P90US, p.P99US, p.MaxUS)
			}
			inPhases += p.Completed
		}
		if inPhases != m.Completed {
			return fmt.Errorf("bench: phases hold %d observations, completed=%d",
				inPhases, m.Completed)
		}
	}
	if m.Completed > 0 {
		if !(m.P50US <= m.P90US && m.P90US <= m.P99US && m.P99US <= m.P999US && m.P999US <= m.MaxUS) {
			return fmt.Errorf("bench: percentiles not monotone: p50=%.1f p90=%.1f p99=%.1f p999=%.1f max=%.1f",
				m.P50US, m.P90US, m.P99US, m.P999US, m.MaxUS)
		}
	}
	return nil
}

// WriteBench persists the artifact (indented JSON, trailing newline),
// validating first so a malformed artifact is never written.
func WriteBench(path string, b *Bench) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return benchfmt.WriteFile(path, b)
}

// ReadBench loads and validates a persisted artifact.
func ReadBench(path string) (*Bench, error) {
	var b Bench
	if err := benchfmt.ReadFile(path, &b); err != nil {
		return nil, err
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}
