package loadgen

import (
	"strings"
	"testing"
)

func TestOpLine(t *testing.T) {
	cases := map[string]Op{
		"GET 7":                    {Kind: OpGet, Key: 7},
		"PUT 7 9":                  {Kind: OpPut, Key: 7, Val: 9},
		"DEL 7":                    {Kind: OpDel, Key: 7},
		"SCAN 7 16":                {Kind: OpScan, Key: 7, N: 16},
		"INCR 7 3":                 {Kind: OpIncr, Key: 7, Val: 3},
		"DECR 7 3":                 {Kind: OpDecr, Key: 7, Val: 3},
		"GET 18446744073709551615": {Kind: OpGet, Key: ^uint64(0)},
	}
	for want, op := range cases {
		if got := op.Line(); got != want {
			t.Errorf("Line(%+v) = %q, want %q", op, got, want)
		}
	}
}

func TestParseDistKinds(t *testing.T) {
	base := DefaultSpec()
	for _, kind := range DistNames {
		s, err := ParseDist(kind, base)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", kind, err)
		}
		if s.Kind != kind || len(s.Phases) != 0 {
			t.Fatalf("ParseDist(%q) = %+v", kind, s)
		}
		if _, err := s.Generator(0, 100, 1); err != nil {
			t.Fatalf("Generator(%q): %v", kind, err)
		}
	}
	if _, err := ParseDist("pareto", base); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestParseDistPhases(t *testing.T) {
	s, err := ParseDist("zipf@3,uniform@1", DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "phased" || len(s.Phases) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Phases[0].Frac != 0.75 || s.Phases[1].Frac != 0.25 {
		t.Fatalf("fractions not normalized: %+v", s.Phases)
	}
	if !strings.Contains(s.Name(), "zipf") || !strings.Contains(s.Name(), "uniform") {
		t.Fatalf("Name() = %q", s.Name())
	}
	if _, err := ParseDist("zipf@-1,uniform@2", DefaultSpec()); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

// TestParseMix: the weighted verb mix parses, normalizes, draws only its
// verbs in roughly the declared proportions, and rejects junk.
func TestParseMix(t *testing.T) {
	spec, err := ParseMix("put:1,get:1,incr:2", DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "mix" || spec.Mix != "put:1,get:1,incr:2" {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.Name() != "mix(put:1,get:1,incr:2)" {
		t.Fatalf("Name() = %q", spec.Name())
	}
	g, err := spec.Generator(0, 0, 17)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[OpKind]int{}
	const n = 20_000
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		switch op.Kind {
		case OpIncr:
			if op.Val < 1 || op.Val > 16 {
				t.Fatalf("INCR delta %d outside [1,16]", op.Val)
			}
		case OpPut, OpGet:
		default:
			t.Fatalf("mix emitted %v, not in the mix", op.Kind)
		}
	}
	if f := float64(counts[OpIncr]) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("incr share %.3f, want ≈0.5", f)
	}
	if f := float64(counts[OpPut]) / n; f < 0.20 || f > 0.30 {
		t.Fatalf("put share %.3f, want ≈0.25", f)
	}
	for _, bad := range []string{"", "frob:1", "put:-1", "put:x", "incr:0"} {
		if _, err := ParseMix(bad, DefaultSpec()); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	// A bare verb weighs 1.
	even, err := ParseMix("incr,decr", DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	ge, _ := even.Generator(1, 0, 3)
	c := map[OpKind]int{}
	for i := 0; i < n; i++ {
		c[ge.Next().Kind]++
	}
	if f := float64(c[OpDecr]) / n; f < 0.45 || f > 0.55 {
		t.Fatalf("decr share %.3f, want ≈0.5", f)
	}
}

// TestIncrDist: the counter distribution emits only INCRs (plus its
// ReadFrac share of GETs) over the keyspace, and composes into phased
// schedules (`incr@…`).
func TestIncrDist(t *testing.T) {
	spec, err := ParseDist("incr", DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := spec.Generator(0, 0, 23)
	saw := map[OpKind]int{}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		saw[op.Kind]++
		if op.Kind != OpIncr && op.Kind != OpGet {
			t.Fatalf("incr dist emitted %v", op.Kind)
		}
		if op.Kind == OpIncr && (op.Val < 1 || op.Val > 16) {
			t.Fatalf("INCR delta %d outside [1,16]", op.Val)
		}
		if op.Key >= spec.Keys {
			t.Fatalf("key %d outside keyspace %d", op.Key, spec.Keys)
		}
	}
	if saw[OpIncr] == 0 || saw[OpGet] == 0 {
		t.Fatalf("mix not exercised: %v", saw)
	}

	phased, err := ParseDist("incr@1,uniform@1", DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	const planned = 1000
	pg, _ := phased.Generator(0, planned, 29)
	for i := 0; i < planned; i++ {
		op := pg.Next()
		if i < planned/2 && op.Kind != OpIncr && op.Kind != OpGet {
			t.Fatalf("op %d (%v) outside the incr phase's verbs", i, op.Kind)
		}
		if i >= planned/2 && op.Kind == OpIncr {
			t.Fatalf("INCR emitted in uniform phase at op %d", i)
		}
	}
}

// TestGeneratorsDeterministic: the same (spec, conn, seed) triple yields
// the same stream — reproducibility is what makes a BENCH artifact's
// config section sufficient to re-run the workload.
func TestGeneratorsDeterministic(t *testing.T) {
	specs := map[string]Spec{}
	for _, kind := range DistNames {
		s, _ := ParseDist(kind, DefaultSpec())
		specs[kind] = s
	}
	if m, err := ParseMix("put:1,get:1,incr:2,decr:1", DefaultSpec()); err == nil {
		specs["mix"] = m
	} else {
		t.Fatal(err)
	}
	if m, err := ParseMix("mget:1,mput:1,get:1", DefaultSpec()); err == nil {
		specs["mix-batched"] = m
	} else {
		t.Fatal(err)
	}
	for kind, spec := range specs {
		a, _ := spec.Generator(3, 1000, 99)
		b, _ := spec.Generator(3, 1000, 99)
		for i := 0; i < 1000; i++ {
			if !opEqual(a.Next(), b.Next()) {
				t.Fatalf("%s: streams diverge at op %d", kind, i)
			}
		}
		c, _ := spec.Generator(4, 1000, 99)
		same := true
		a2, _ := spec.Generator(3, 1000, 99)
		for i := 0; i < 100; i++ {
			if !opEqual(a2.Next(), c.Next()) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: conns 3 and 4 generated identical streams", kind)
		}
	}
}

// opEqual compares two generated ops by value; Op is not comparable with
// == since the batched verbs carry key/value slices.
func opEqual(a, b Op) bool {
	if a.Kind != b.Kind || a.Key != b.Key || a.Val != b.Val || a.N != b.N ||
		len(a.Keys) != len(b.Keys) || len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	return true
}

// TestZipfSkew: the hot key must take a large share of zipf traffic and a
// tiny share of uniform traffic over the same keyspace size.
func TestZipfSkew(t *testing.T) {
	spec := DefaultSpec()
	spec.Kind = "zipf"
	spec.ReadFrac = 1.0
	g, _ := spec.Generator(0, 0, 5)
	counts := map[uint64]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	if frac := float64(top) / n; frac < 0.05 {
		t.Fatalf("hottest key got %.4f of zipf traffic, want ≥0.05", frac)
	}
	if len(counts) < 100 {
		t.Fatalf("zipf only touched %d distinct keys", len(counts))
	}
}

// TestChurnTurnover: churn must generate each key's PUT before its DEL,
// keep the live set near the window size, and eventually delete keys it
// inserted.
func TestChurnTurnover(t *testing.T) {
	spec := DefaultSpec()
	spec.Kind = "churn"
	spec.Keys = 64 // window
	spec.ReadFrac = 0.25
	g, _ := spec.Generator(2, 0, 7)
	live := map[uint64]bool{}
	dels := 0
	for i := 0; i < 10_000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpPut:
			if live[op.Key] {
				t.Fatalf("op %d: PUT of live key %d", i, op.Key)
			}
			live[op.Key] = true
		case OpDel:
			if !live[op.Key] {
				t.Fatalf("op %d: DEL of dead key %d", i, op.Key)
			}
			delete(live, op.Key)
			dels++
		case OpGet:
			if !live[op.Key] {
				t.Fatalf("op %d: GET outside live window, key %d", i, op.Key)
			}
		}
		if uint64(len(live)) > spec.Keys+1 {
			t.Fatalf("op %d: live set %d exceeds window %d", i, len(live), spec.Keys)
		}
	}
	if dels < 1000 {
		t.Fatalf("only %d deletes in 10k churn ops", dels)
	}
}

// TestPhasedSwitchesMidRun: a two-phase schedule must emit phase-0 ops
// first, then switch — observable because scan and churn emit different
// op kinds.
func TestPhasedSwitchesMidRun(t *testing.T) {
	base := DefaultSpec()
	base.Keys = 100 // small churn window so deletes start within the phase
	spec, err := ParseDist("scan@1,churn@1", base)
	if err != nil {
		t.Fatal(err)
	}
	const planned = 2000
	g, err := spec.Generator(0, planned, 11)
	if err != nil {
		t.Fatal(err)
	}
	pg := g.(*phasedGen)
	sawScan, sawChurnDel := false, false
	for i := 0; i < planned; i++ {
		op := g.Next()
		phase := pg.Phase()
		if i < planned/2 && phase != 0 {
			t.Fatalf("op %d in phase %d, want 0", i, phase)
		}
		if i >= planned/2 && phase != 1 {
			t.Fatalf("op %d in phase %d, want 1", i, phase)
		}
		if op.Kind == OpScan {
			if phase != 0 {
				t.Fatalf("SCAN emitted in churn phase at op %d", i)
			}
			sawScan = true
		}
		if op.Kind == OpDel {
			sawChurnDel = true
		}
	}
	if !sawScan || !sawChurnDel {
		t.Fatalf("phases not exercised: scan=%v churnDel=%v", sawScan, sawChurnDel)
	}
}
