package loadgen

import (
	"math/bits"
	"time"
)

// Histogram is an HDR-style log-linear latency histogram: values (latency
// in nanoseconds) land in buckets whose width grows with magnitude — each
// power-of-two range ("octave") is split into 2^histSubBits equal
// sub-buckets, so the worst-case relative quantization error is
// 2^-histSubBits (≈3.1%) at every scale from nanoseconds to minutes, with
// a fixed-size count array and O(1) recording. This is the standard shape
// for coordinated-omission-aware load generators (HdrHistogram, wrk2):
// recording is constant-time even while the driver is catching up a
// backlog, and histograms from independent connections merge by addition.
//
// A Histogram is not safe for concurrent use; give each connection its own
// and Merge them when the run ends.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
	min    int64
	max    int64
	sum    float64
}

const (
	// histSubBits sets resolution: 32 sub-buckets per octave.
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histBuckets covers every non-negative int64: values below histSub
	// get exact unit buckets, then 32 sub-buckets per octave up to 2^63.
	histBuckets = (64 - histSubBits) * histSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v)) // position of the MSB, ≥ histSubBits
	shift := uint(e - histSubBits)
	return (e-histSubBits+1)<<histSubBits + int((uint64(v)>>shift)&(histSub-1))
}

// bucketBounds returns a bucket's inclusive value range.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	block := i >> histSubBits // e - histSubBits + 1
	off := int64(i & (histSub - 1))
	e := uint(block + histSubBits - 1)
	shift := e - histSubBits
	lo = int64(1)<<e + off<<shift
	return lo, lo + int64(1)<<shift - 1
}

// Record adds one latency observation. Negative durations (clock
// anomalies) clamp to zero rather than corrupting the distribution.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	h.sum += float64(v)
}

// Merge adds another histogram's counts into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Mean returns the arithmetic mean (exact, tracked outside the buckets).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Quantile returns the q-quantile (q in [0,1]) by nearest rank: the upper
// bound of the bucket holding the rank-⌈q·n⌉ observation, clamped to the
// recorded maximum so an almost-empty top bucket cannot over-report.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := int64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			_, hi := bucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.max)
}

// HistBucket is one non-empty bucket, for the BENCH_*.json artifact.
type HistBucket struct {
	LoNanos int64 `json:"lo_ns"`
	HiNanos int64 `json:"hi_ns"`
	Count   int64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, HistBucket{LoNanos: lo, HiNanos: hi, Count: c})
	}
	return out
}

// FromBuckets rebuilds a histogram from a persisted bucket list (the
// inverse of Buckets, up to quantization: each bucket's count lands at its
// lower bound). Round-tripped quantiles stay within one bucket width.
func FromBuckets(bs []HistBucket) *Histogram {
	h := &Histogram{}
	for _, b := range bs {
		i := bucketIndex(b.LoNanos)
		h.counts[i] += b.Count
		if h.total == 0 || b.LoNanos < h.min {
			h.min = b.LoNanos
		}
		if b.HiNanos > h.max {
			h.max = b.HiNanos
		}
		h.total += b.Count
		h.sum += float64(b.LoNanos) * float64(b.Count)
	}
	return h
}
