package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// maxRelErr is the histogram's quantization bound: one part in 2^histSubBits,
// plus a little slack for the bucket-upper-bound convention.
const maxRelErr = 2.0 / histSub

func relClose(got, want time.Duration) bool {
	if want == 0 {
		return got == 0
	}
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d <= maxRelErr*float64(want)+1
}

// TestBucketIndexBounds checks the index/bounds pair is a consistent
// partition: every value lands in a bucket whose range contains it, and
// bucket ranges tile without gaps or overlaps.
func TestBucketIndexBounds(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20,
		(1 << 20) + 12345, 1 << 40, 1<<62 + 999}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d]", v, i, lo, hi)
		}
	}
	prevHi := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted [%d,%d]", i, lo, hi)
		}
		prevHi = hi
	}
}

// TestQuantileAgainstOracle compares histogram percentiles with the exact
// sorted-sample answer on several distributions; they must agree within
// the quantization bound.
func TestQuantileAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() int64{
		"uniform": func() int64 { return rng.Int63n(10_000_000) },
		"exp":     func() int64 { return int64(rng.ExpFloat64() * 2e6) },
		"bimodal": func() int64 {
			if rng.Intn(100) < 95 {
				return 50_000 + rng.Int63n(10_000)
			}
			return 40_000_000 + rng.Int63n(5_000_000)
		},
	}
	for name, draw := range dists {
		h := &Histogram{}
		samples := make([]int64, 0, 50_000)
		for i := 0; i < 50_000; i++ {
			v := draw()
			samples = append(samples, v)
			h.Record(time.Duration(v))
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
			rank := int(q*float64(len(samples)) + 0.5)
			if rank < 1 {
				rank = 1
			}
			if rank > len(samples) {
				rank = len(samples)
			}
			want := time.Duration(samples[rank-1])
			got := h.Quantile(q)
			if !relClose(got, want) {
				t.Errorf("%s q%.3f: hist %v, oracle %v (rel err > %.3f)",
					name, q, got, want, maxRelErr)
			}
		}
		if got, want := h.Max(), time.Duration(samples[len(samples)-1]); got != want {
			t.Errorf("%s max: %v != %v", name, got, want)
		}
		if got, want := h.Min(), time.Duration(samples[0]); got != want {
			t.Errorf("%s min: %v != %v", name, got, want)
		}
	}
}

// TestMergeMatchesCombined: recording a stream into K per-connection
// histograms and merging must equal recording everything into one.
func TestMergeMatchesCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const conns = 8
	parts := make([]*Histogram, conns)
	for i := range parts {
		parts[i] = &Histogram{}
	}
	whole := &Histogram{}
	for i := 0; i < 40_000; i++ {
		v := time.Duration(rng.Int63n(100_000_000))
		whole.Record(v)
		parts[i%conns].Record(v)
	}
	merged := &Histogram{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Min() != whole.Min() ||
		merged.Max() != whole.Max() || merged.Mean() != whole.Mean() {
		t.Fatalf("merged summary differs: count %d/%d min %v/%v max %v/%v mean %v/%v",
			merged.Count(), whole.Count(), merged.Min(), whole.Min(),
			merged.Max(), whole.Max(), merged.Mean(), whole.Mean())
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q%.3f: merged %v, whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestCoordinatedOmissionAdjustment is the property the whole subsystem
// exists for: a latency stream measured from *intended* send times must
// surface a stall in the tail. We simulate 10s of 1ms-spaced arrivals
// where the server stops for 500ms: every arrival scheduled during the
// stall waits for its end. A closed-loop measurement (service time only,
// one blocked request) would report a p99 of ~service time; the
// intended-time stream must push p99 into the hundreds of milliseconds.
func TestCoordinatedOmissionAdjustment(t *testing.T) {
	const (
		interval = time.Millisecond
		n        = 10_000
		stallAt  = 5_000 // arrival index where the server stalls
		stall    = 500 * time.Millisecond
		service  = 100 * time.Microsecond
	)
	open := &Histogram{}   // measured from intended send time
	closed := &Histogram{} // measured from actual send time (the lie)
	for i := 0; i < n; i++ {
		intended := time.Duration(i) * interval
		stallEnd := time.Duration(stallAt)*interval + stall
		actualStart := intended
		if intended >= time.Duration(stallAt)*interval && intended < stallEnd {
			actualStart = stallEnd
		}
		done := actualStart + service
		open.Record(done - intended)
		closed.Record(service)
	}
	if p99 := closed.Quantile(0.99); p99 > time.Millisecond {
		t.Fatalf("closed-loop control p99 %v unexpectedly high", p99)
	}
	// 500 of 10000 arrivals (5%) land in the stall, so p99 must see it.
	if p99 := open.Quantile(0.99); p99 < 100*time.Millisecond {
		t.Fatalf("open-loop p99 %v does not surface the %v stall", p99, stall)
	}
	if max := open.Max(); !relClose(max, stall+service) {
		t.Fatalf("open-loop max %v, want ≈%v", max, stall+service)
	}
}

// TestBucketsRoundTrip: Buckets → FromBuckets preserves count exactly and
// quantiles within one bucket width.
func TestBucketsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := &Histogram{}
	for i := 0; i < 20_000; i++ {
		h.Record(time.Duration(rng.Int63n(50_000_000)))
	}
	bs := h.Buckets()
	for i := 1; i < len(bs); i++ {
		if bs[i].LoNanos <= bs[i-1].HiNanos {
			t.Fatalf("buckets overlap or misordered at %d", i)
		}
	}
	h2 := FromBuckets(bs)
	if h2.Count() != h.Count() {
		t.Fatalf("round-trip count %d != %d", h2.Count(), h.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if !relClose(h2.Quantile(q), h.Quantile(q)) {
			t.Fatalf("q%.3f drifted: %v vs %v", q, h2.Quantile(q), h.Quantile(q))
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if bs := h.Buckets(); len(bs) != 0 {
		t.Fatalf("empty histogram has %d buckets", len(bs))
	}
}
