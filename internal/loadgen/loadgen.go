// Package loadgen is the open-loop load-generation subsystem for
// nvserver: the measurement substrate the roadmap's adaptive-sizing and
// absorption work is judged against.
//
// Open-loop means arrival-rate driven, not closed-loop: operations are
// sent on a fixed schedule (the intended send times), independent of how
// fast the server answers. A closed-loop client — send, wait, send — slows
// down exactly when the server does, so a stall silently thins the request
// stream and the measured percentiles miss the worst moments entirely
// (coordinated omission). Here every operation's latency is measured from
// its *intended* send time: if the server stalls 200ms, every operation
// scheduled during the stall reports the queueing delay it actually
// imposed on its (virtual) user, and the tail percentiles inflate the way
// a production SLO dashboard would. wrk2 and HdrHistogram established this
// discipline; FliT's bar — persistence overhead of a few instructions per
// op — is only demonstrable under a driver that cannot be gaslit by the
// server it measures.
//
// The driver fans the aggregate rate across N pipelined connections (one
// sender + one reader goroutine each, FIFO replies), draws operations from
// pluggable key/op distributions (uniform, zipf, churn, scan, and
// phase-changing schedules — see dist.go), records service time in an
// HDR-style log-bucketed histogram (hist.go), evaluates declared latency
// SLOs (slo.go), and emits a machine-readable BENCH_*.json artifact with
// server-side STATS deltas and git metadata (result.go).
package loadgen

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nvmcache/internal/nvclient"
	"nvmcache/internal/proto"
)

// Config declares one load run.
type Config struct {
	// Addr is the nvserver to drive.
	Addr string `json:"addr"`
	// Rate is the aggregate intended arrival rate, operations per second.
	Rate float64 `json:"rate_ops"`
	// Conns is the connection count the rate is spread across.
	Conns int `json:"conns"`
	// Duration is the length of the arrival schedule. The run ends when
	// every scheduled operation has been answered (or errored), so a
	// stalling server extends wall time, never thins the schedule.
	Duration time.Duration `json:"duration_ns"`
	// Ops, when >0, fixes the total operation count instead of Duration.
	Ops int `json:"ops,omitempty"`
	// Dist is the key/op distribution.
	Dist Spec `json:"dist"`
	// Seed derives every connection's private RNG.
	Seed int64 `json:"seed"`
	// Timeout bounds each reply; a reply slower than this kills its
	// connection and counts the remaining in-flight operations as errors.
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// Proto selects the wire protocol: "text" (default) or "binary". The
	// binary dialect pipelines length-prefixed frames over the same port
	// and is what the allocation-free hot path is measured through.
	Proto string `json:"proto,omitempty"`
	// Preload PUTs keys [0,Preload) before the measured window, so
	// read/scan mixes hit populated trees.
	Preload uint64 `json:"preload,omitempty"`
	// SLO, when non-nil, is evaluated into the report.
	SLO *SLO `json:"slo,omitempty"`
}

func (c Config) withDefaults() (Config, error) {
	if c.Addr == "" {
		return c, fmt.Errorf("loadgen: no server address")
	}
	if c.Rate <= 0 {
		return c, fmt.Errorf("loadgen: rate must be positive (open loop needs an arrival rate)")
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Duration <= 0 && c.Ops <= 0 {
		return c, fmt.Errorf("loadgen: need -duration or -ops")
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	switch c.Proto {
	case "":
		c.Proto = "text"
	case "text", "binary":
	default:
		return c, fmt.Errorf("loadgen: unknown protocol %q (want text or binary)", c.Proto)
	}
	if c.Dist.Kind == "" && len(c.Dist.Phases) == 0 {
		c.Dist = DefaultSpec()
	}
	c.Dist = c.Dist.withDefaults()
	return c, nil
}

// PhaseReporter is implemented by generators that switch distribution
// mid-run (the phased schedules): Phase reports the index of the phase the
// most recent Next drew from, letting the driver attribute each operation's
// latency to the phase that issued it.
type PhaseReporter interface {
	Phase() int
}

// Report is one finished run.
type Report struct {
	Config    Config
	Hist      *Histogram
	Sent      int64
	Completed int64
	Errors    int64
	Timeouts  int64
	// PhaseHists split Hist by schedule phase for phased distributions
	// (nil otherwise); PhaseNames aligns with it. The per-phase tails are
	// what the adaptive experiments compare: an aggregate p99 averages the
	// phases together and hides exactly the transition the controller is
	// supposed to win.
	PhaseHists []*Histogram
	PhaseNames []string
	// Elapsed is wall time from the schedule's start to the last reply —
	// under a stall it exceeds the scheduled Duration (the backlog drains
	// late rather than being forgotten).
	Elapsed time.Duration
	// StatsBefore/StatsAfter bracket the run; ServerDelta is
	// after−before for the server's total and stripe counters
	// (nvclient.Stats.Diff), the server-side cost of exactly this run.
	StatsBefore, StatsAfter *nvclient.Stats
	ServerDelta             map[string]float64
	// SLO is the verdict on Config.SLO (nil when none was declared).
	SLO *SLOResult
}

// Throughput returns completed operations per wall-clock second.
func (r *Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// ErrorFrac returns the failed share of sent operations.
func (r *Report) ErrorFrac() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Errors+r.Timeouts) / float64(r.Sent)
}

// connState is one connection's tally; the sender and reader goroutines
// share it (reader owns hist/completed/errors, sender owns sent).
type connState struct {
	hist       Histogram
	phaseHists []Histogram // per-phase split, empty for single-phase runs
	sent       int64
	completed  int64
	errors     int64
	timeouts   int64
	failed     atomic.Bool // reader died; sender stops scheduling
}

// pendingOp is what the sender hands the reader per scheduled operation:
// the intended send time the latency is measured from, and the schedule
// phase the operation belongs to (-1 outside phased runs).
type pendingOp struct {
	intended time.Time
	phase    int
}

// startGrace is how far in the future the common schedule origin is
// placed, so every connection is dialed and parked before arrival 0.
const startGrace = 100 * time.Millisecond

// flushEvery bounds how many requests may sit in the client's write
// buffer while the sender catches up a backlog.
const flushEvery = 64

// Run executes the configured load against a live server and returns the
// merged report. The control connection (STATS snapshots, preload) is
// separate from the measured connections.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	dial := nvclient.Dial
	if cfg.Proto == "binary" {
		dial = nvclient.DialBinary
	}
	ctrl, err := dial(cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("loadgen: control connection: %w", err)
	}
	defer ctrl.Close()
	if err := preload(ctrl, cfg.Preload); err != nil {
		return nil, fmt.Errorf("loadgen: preload: %w", err)
	}
	before, err := ctrl.Stats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: STATS before: %w", err)
	}

	// Per-connection schedule: the aggregate rate splits evenly, and
	// connection c's arrivals are offset by c global periods so the merged
	// stream stays evenly spaced.
	interval := time.Duration(float64(cfg.Conns) / cfg.Rate * 1e9)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	perConn := cfg.Ops / cfg.Conns
	if cfg.Ops <= 0 {
		perConn = int(cfg.Duration / interval)
	}
	if perConn <= 0 {
		perConn = 1
	}
	origin := time.Now().Add(startGrace)

	nphases := len(cfg.Dist.Phases)
	states := make([]*connState, cfg.Conns)
	var wg sync.WaitGroup
	dialErrs := make(chan error, cfg.Conns)
	for c := 0; c < cfg.Conns; c++ {
		st := &connState{phaseHists: make([]Histogram, nphases)}
		states[c] = st
		gen, err := cfg.Dist.Generator(c, perConn, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cl, err := dial(cfg.Addr)
		if err != nil {
			dialErrs <- fmt.Errorf("loadgen: conn %d: %w", c, err)
			continue
		}
		wg.Add(1)
		go func(c int, cl *nvclient.Client) {
			defer wg.Done()
			defer cl.Close()
			start := origin.Add(time.Duration(c) * time.Duration(float64(time.Second)/cfg.Rate))
			runConn(cl, gen, st, start, interval, perConn, cfg.Timeout)
		}(c, cl)
	}
	wg.Wait()
	select {
	case err := <-dialErrs:
		return nil, err
	default:
	}
	elapsed := time.Since(origin)

	after, err := ctrl.Stats()
	if err != nil {
		return nil, fmt.Errorf("loadgen: STATS after: %w", err)
	}
	rep := &Report{
		Config:      cfg,
		Hist:        &Histogram{},
		Elapsed:     elapsed,
		StatsBefore: before,
		StatsAfter:  after,
		ServerDelta: after.Diff(before),
	}
	if nphases > 0 {
		rep.PhaseHists = make([]*Histogram, nphases)
		rep.PhaseNames = make([]string, nphases)
		for i, p := range cfg.Dist.Phases {
			rep.PhaseHists[i] = &Histogram{}
			rep.PhaseNames[i] = p.Spec.Kind
		}
	}
	for _, st := range states {
		rep.Hist.Merge(&st.hist)
		for i := range st.phaseHists {
			rep.PhaseHists[i].Merge(&st.phaseHists[i])
		}
		rep.Sent += st.sent
		rep.Completed += st.completed
		rep.Errors += st.errors
		rep.Timeouts += st.timeouts
	}
	if cfg.SLO != nil {
		rep.SLO = cfg.SLO.Evaluate(rep)
	}
	return rep, nil
}

// runConn drives one connection: the sender issues requests at their
// intended times (never waiting for replies — the pipeline is the open
// loop), the reader matches FIFO replies to intended times and records
// latency from the *intended* send, which is what charges a server stall
// to every operation scheduled during it.
func runConn(cl *nvclient.Client, gen Generator, st *connState,
	start time.Time, interval time.Duration, n int, timeout time.Duration) {
	inflight := make(chan pendingOp, 1<<15)
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for p := range inflight {
			cl.SetReadDeadline(time.Now().Add(timeout))
			appErr, err := cl.RecvResult()
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					st.timeouts++
				} else {
					st.errors++
				}
				st.failed.Store(true)
				// Drain what the sender already scheduled: those
				// operations were sent (or about to be) and will never be
				// answered — they are errors, not omissions.
				for range inflight {
					st.errors++
				}
				return
			}
			if appErr {
				st.errors++
				continue
			}
			lat := time.Since(p.intended)
			st.hist.Record(lat)
			if p.phase >= 0 && p.phase < len(st.phaseHists) {
				st.phaseHists[p.phase].Record(lat)
			}
			st.completed++
		}
	}()

	pr, _ := gen.(PhaseReporter)
	unflushed := 0
	for i := 0; i < n && !st.failed.Load(); i++ {
		intended := start.Add(time.Duration(i) * interval)
		// On schedule: sleep to the intended time. Behind schedule (the
		// server stalled or the sender overslept): send immediately — the
		// backlog is real load, and intended stays the schedule time so
		// the latency measurement includes the delay.
		if d := time.Until(intended); d > 0 {
			time.Sleep(d)
		}
		op := gen.Next()
		phase := -1
		if pr != nil {
			phase = pr.Phase() // the phase Next just drew from
		}
		if err := sendOp(cl, op); err != nil {
			st.errors++
			break
		}
		st.sent++
		unflushed++
		// Flush when the next arrival is not yet due (the buffer would
		// otherwise just sit) or the catch-up batch has grown enough.
		if unflushed >= flushEvery || i == n-1 ||
			time.Until(start.Add(time.Duration(i+1)*interval)) > 0 {
			if err := cl.Flush(); err != nil {
				st.errors++
				break
			}
			unflushed = 0
		}
		inflight <- pendingOp{intended: intended, phase: phase}
	}
	cl.Flush()
	close(inflight)
	reader.Wait()
}

// sendOp stages one operation on the client's write buffer, rendering
// the line protocol or encoding a binary frame depending on the
// connection's dialect.
func sendOp(cl *nvclient.Client, op Op) error {
	if !cl.Binary() {
		return cl.Send(op.Line())
	}
	switch op.Kind {
	case OpGet:
		return cl.SendGet(op.Key)
	case OpPut:
		return cl.SendPut(op.Key, op.Val)
	case OpDel:
		return cl.SendDel(op.Key)
	case OpScan:
		return cl.SendScan(op.Key, uint32(op.N))
	case OpIncr:
		return cl.SendIncr(op.Key, op.Val)
	case OpDecr:
		return cl.SendDecr(op.Key, op.Val)
	case OpMGet:
		return cl.SendMGet(op.Keys)
	case OpMPut:
		return cl.SendMPut(op.Keys, op.Vals)
	}
	return fmt.Errorf("loadgen: no encoding for op kind %d", op.Kind)
}

// preload PUTs keys [0,n) before the measured run, batched through MPUT
// windows so population rides the store's group commit one shard-visit
// per window instead of one per key.
func preload(cl *nvclient.Client, n uint64) error {
	const window = proto.MaxOps
	keys := make([]uint64, 0, window)
	vals := make([]uint64, 0, window)
	for base := uint64(0); base < n; base += window {
		end := base + window
		if end > n {
			end = n
		}
		keys, vals = keys[:0], vals[:0]
		for k := base; k < end; k++ {
			keys = append(keys, k)
			vals = append(vals, k^0x5bd1e995)
		}
		if err := cl.MPut(keys, vals); err != nil {
			return fmt.Errorf("preload keys [%d,%d): %w", base, end, err)
		}
	}
	return nil
}
