package loadgen

import (
	"fmt"
	"strings"
	"time"
)

// SLO declares latency/throughput targets a run must meet. Zero fields are
// unchecked, so an SLO can be as narrow as "p99 under 5ms". Latency bounds
// apply to the coordinated-omission-aware distribution — measured from
// intended send time — so a server stall that queues requests counts
// against the tail even though each individual service time looked fine.
type SLO struct {
	P50  time.Duration `json:"p50_max_ns,omitempty"`
	P99  time.Duration `json:"p99_max_ns,omitempty"`
	P999 time.Duration `json:"p999_max_ns,omitempty"`
	// MinThroughput is completed operations per second.
	MinThroughput float64 `json:"min_throughput_ops,omitempty"`
	// MaxErrorFrac bounds (errors+timeouts)/sent.
	MaxErrorFrac float64 `json:"max_error_frac,omitempty"`
	// MaxErrors is an absolute bound on errors+timeouts; zero = unchecked.
	MaxErrors int64 `json:"max_errors,omitempty"`
}

// IsZero reports whether no target is declared.
func (s SLO) IsZero() bool { return s == SLO{} }

// SLOResult is the verdict: the declared targets, pass/fail, and one
// human-readable line per violated target.
type SLOResult struct {
	Declared   SLO      `json:"declared"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// Evaluate checks the report against the declared targets.
func (s *SLO) Evaluate(r *Report) *SLOResult {
	res := &SLOResult{Declared: *s}
	check := func(name string, bound time.Duration, q float64) {
		if bound <= 0 {
			return
		}
		got := r.Hist.Quantile(q)
		if got > bound {
			res.Violations = append(res.Violations,
				fmt.Sprintf("%s %v > %v", name, got, bound))
		}
	}
	check("p50", s.P50, 0.50)
	check("p99", s.P99, 0.99)
	check("p999", s.P999, 0.999)
	if s.MinThroughput > 0 {
		if got := r.Throughput(); got < s.MinThroughput {
			res.Violations = append(res.Violations,
				fmt.Sprintf("throughput %.0f ops/s < %.0f", got, s.MinThroughput))
		}
	}
	if s.MaxErrorFrac > 0 {
		if got := r.ErrorFrac(); got > s.MaxErrorFrac {
			res.Violations = append(res.Violations,
				fmt.Sprintf("error fraction %.4f > %.4f", got, s.MaxErrorFrac))
		}
	}
	if s.MaxErrors > 0 {
		if got := r.Errors + r.Timeouts; got > s.MaxErrors {
			res.Violations = append(res.Violations,
				fmt.Sprintf("errors %d > %d", got, s.MaxErrors))
		}
	}
	res.Pass = len(res.Violations) == 0
	return res
}

// String renders the verdict on one line.
func (r *SLOResult) String() string {
	if r.Pass {
		return "SLO PASS"
	}
	return "SLO FAIL: " + strings.Join(r.Violations, "; ")
}
