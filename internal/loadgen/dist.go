package loadgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"nvmcache/internal/proto"
)

// OpKind is one protocol operation class.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpPut
	OpDel
	OpScan
	OpIncr
	OpDecr
	OpMGet
	OpMPut
)

// String returns the protocol verb.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpIncr:
		return "INCR"
	case OpDecr:
		return "DECR"
	case OpMGet:
		return "MGET"
	case OpMPut:
		return "MPUT"
	}
	return "?"
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  uint64
	Val  uint64 // PUT: value; INCR/DECR: delta
	N    int    // SCAN only: pair count
	// Keys/Vals carry MGET's key batch and MPUT's pair batch. Generators
	// reuse the backing arrays across Next calls: an Op is only valid until
	// the next draw, which the driver respects by sending before drawing.
	Keys []uint64
	Vals []uint64
}

// Line renders the protocol request.
func (o Op) Line() string {
	switch o.Kind {
	case OpGet:
		return "GET " + strconv.FormatUint(o.Key, 10)
	case OpPut:
		return "PUT " + strconv.FormatUint(o.Key, 10) + " " + strconv.FormatUint(o.Val, 10)
	case OpDel:
		return "DEL " + strconv.FormatUint(o.Key, 10)
	case OpScan:
		return "SCAN " + strconv.FormatUint(o.Key, 10) + " " + strconv.Itoa(o.N)
	case OpIncr:
		return "INCR " + strconv.FormatUint(o.Key, 10) + " " + strconv.FormatUint(o.Val, 10)
	case OpDecr:
		return "DECR " + strconv.FormatUint(o.Key, 10) + " " + strconv.FormatUint(o.Val, 10)
	case OpMGet:
		var sb strings.Builder
		sb.WriteString("MGET")
		for _, k := range o.Keys {
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(k, 10))
		}
		return sb.String()
	case OpMPut:
		var sb strings.Builder
		sb.WriteString("MPUT")
		for i, k := range o.Keys {
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(k, 10))
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatUint(o.Vals[i], 10))
		}
		return sb.String()
	}
	return ""
}

// Generator produces one connection's operation stream. Generators are
// stateful (churn tracks its live window, phased counts ops) and not
// concurrency-safe: the driver builds one per connection from the Spec.
type Generator interface {
	Name() string
	Next() Op
}

// Spec declares a key/op distribution; it is pure configuration (flag- and
// JSON-friendly), turned into per-connection Generators by the driver.
type Spec struct {
	// Kind is uniform, zipf, churn, scan — or phased, driven by Phases.
	Kind string `json:"kind"`
	// Keys is the keyspace size (uniform/zipf/scan) or the churn window.
	Keys uint64 `json:"keys,omitempty"`
	// Skew is the Zipf s parameter (>1; larger = hotter hot keys).
	Skew float64 `json:"skew,omitempty"`
	// ReadFrac is the GET share for uniform/zipf/churn, the SCAN share for
	// scan.
	ReadFrac float64 `json:"read_frac,omitempty"`
	// ScanLen is the pair count each SCAN requests.
	ScanLen int `json:"scan_len,omitempty"`
	// BatchLen is the key count each MGET/MPUT carries (mix verbs mget and
	// mput); capped by the protocol's per-frame op limit.
	BatchLen int `json:"batch_len,omitempty"`
	// Phases, when non-empty, switches distribution mid-run: each phase
	// runs for its fraction of the connection's planned operations, in
	// order. Kind is then reported as "phased".
	Phases []Phase `json:"phases,omitempty"`
	// Mix is the weighted verb mix for Kind "mix" (ParseMix's
	// `verb:weight,…` string, e.g. "put:1,get:1,incr:2"), kept in flag form
	// so the artifact's config section reproduces the workload verbatim.
	Mix string `json:"mix,omitempty"`
}

// Phase is one segment of a phase-changing schedule.
type Phase struct {
	Spec Spec    `json:"spec"`
	Frac float64 `json:"frac"`
}

// DistNames lists the atomic distribution kinds.
var DistNames = []string{"uniform", "zipf", "churn", "scan", "incr"}

// DefaultSpec fills the knobs a flag-less run uses.
func DefaultSpec() Spec {
	return Spec{Kind: "uniform", Keys: 1 << 16, Skew: 1.1, ReadFrac: 0.5, ScanLen: 16, BatchLen: 8}
}

func (s Spec) withDefaults() Spec {
	d := DefaultSpec()
	if s.Keys == 0 {
		s.Keys = d.Keys
	}
	if s.Skew <= 1 {
		s.Skew = d.Skew
	}
	if s.ReadFrac < 0 || s.ReadFrac > 1 {
		s.ReadFrac = d.ReadFrac
	}
	if s.ScanLen <= 0 {
		s.ScanLen = d.ScanLen
	}
	if s.BatchLen <= 0 {
		s.BatchLen = d.BatchLen
	}
	if s.BatchLen > proto.MaxOps {
		s.BatchLen = proto.MaxOps
	}
	return s
}

// Name returns the distribution's reporting name.
func (s Spec) Name() string {
	if s.Kind == "mix" {
		return "mix(" + s.Mix + ")"
	}
	if len(s.Phases) > 0 {
		names := make([]string, len(s.Phases))
		for i, p := range s.Phases {
			names[i] = fmt.Sprintf("%s@%.2f", p.Spec.Kind, p.Frac)
		}
		return "phased(" + strings.Join(names, ",") + ")"
	}
	return s.Kind
}

// ParseDist parses a -dist flag value against base (which carries the
// -keys/-skew/-read-frac/-scan-len knobs): either one kind name, or a
// phase schedule `kind@frac,kind@frac,…` (fractions are normalized, so
// `zipf@1,uniform@1` means half and half).
func ParseDist(s string, base Spec) (Spec, error) {
	base = base.withDefaults()
	parts := strings.Split(s, ",")
	if len(parts) == 1 && !strings.Contains(s, "@") {
		return specOfKind(strings.TrimSpace(s), base)
	}
	out := base
	out.Kind = "phased"
	var sum float64
	for _, part := range parts {
		name, fracStr, hasFrac := strings.Cut(strings.TrimSpace(part), "@")
		frac := 1.0
		if hasFrac {
			f, err := strconv.ParseFloat(fracStr, 64)
			if err != nil || f <= 0 {
				return Spec{}, fmt.Errorf("loadgen: bad phase fraction %q", part)
			}
			frac = f
		}
		ps, err := specOfKind(name, base)
		if err != nil {
			return Spec{}, err
		}
		out.Phases = append(out.Phases, Phase{Spec: ps, Frac: frac})
		sum += frac
	}
	for i := range out.Phases {
		out.Phases[i].Frac /= sum
	}
	return out, nil
}

// ParseMix parses a -mix flag value `verb:weight,…` (for example
// `put:1,get:1,incr:2`) into a weighted-verb Spec over base's
// keys/scan-len knobs. Verbs are get, put, del, incr, decr, scan; a verb
// without a weight counts 1. The raw string is kept on the Spec so the
// artifact reproduces the workload.
func ParseMix(s string, base Spec) (Spec, error) {
	if _, err := parseMixWeights(s); err != nil {
		return Spec{}, err
	}
	out := base.withDefaults()
	out.Kind = "mix"
	out.Mix = s
	out.Phases = nil
	return out, nil
}

// mixEntry is one verb's normalized share of a mix distribution.
type mixEntry struct {
	kind OpKind
	w    float64
}

func parseMixWeights(s string) ([]mixEntry, error) {
	verbs := map[string]OpKind{
		"get": OpGet, "put": OpPut, "del": OpDel,
		"incr": OpIncr, "decr": OpDecr, "scan": OpScan,
		"mget": OpMGet, "mput": OpMPut,
	}
	var out []mixEntry
	sum := 0.0
	for _, part := range strings.Split(s, ",") {
		name, wStr, hasW := strings.Cut(strings.TrimSpace(part), ":")
		w := 1.0
		if hasW {
			f, err := strconv.ParseFloat(wStr, 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("loadgen: bad mix weight %q", part)
			}
			w = f
		}
		kind, ok := verbs[strings.ToLower(name)]
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown mix verb %q (want get, put, del, incr, decr, scan, mget, mput)", name)
		}
		out = append(out, mixEntry{kind: kind, w: w})
		sum += w
	}
	if len(out) == 0 || sum <= 0 {
		return nil, fmt.Errorf("loadgen: empty mix %q", s)
	}
	for i := range out {
		out[i].w /= sum
	}
	return out, nil
}

func specOfKind(kind string, base Spec) (Spec, error) {
	for _, n := range DistNames {
		if n == kind {
			s := base
			s.Kind = kind
			s.Phases = nil
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("loadgen: unknown distribution %q (want %s, or a kind@frac,… schedule)",
		kind, strings.Join(DistNames, ", "))
}

// Generator builds connection conn's generator. planned is the
// connection's scheduled operation count (phase boundaries are fractions
// of it); seed derives the connection's private RNG.
func (s Spec) Generator(conn, planned int, seed int64) (Generator, error) {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(seed ^ int64(uint64(conn+1)*0x9e3779b97f4a7c15)))
	if len(s.Phases) > 0 {
		g := &phasedGen{}
		remaining := planned
		for i, p := range s.Phases {
			n := int(p.Frac * float64(planned))
			if i == len(s.Phases)-1 {
				n = remaining // absorb rounding so the schedule covers the run
			}
			if n < 0 {
				n = 0
			}
			remaining -= n
			sub, err := p.Spec.Generator(conn, n, seed+int64(i+1))
			if err != nil {
				return nil, err
			}
			g.phases = append(g.phases, phaseGen{g: sub, ops: n})
		}
		return g, nil
	}
	switch s.Kind {
	case "uniform":
		return &uniformGen{rng: rng, keys: s.Keys, readFrac: s.ReadFrac}, nil
	case "zipf":
		return &zipfGen{rng: rng, z: rand.NewZipf(rng, s.Skew, 1, s.Keys-1), readFrac: s.ReadFrac}, nil
	case "churn":
		// Each connection churns a private key range (top byte = conn+1,
		// below any uniform/zipf keyspace) so inserts and deletes are its
		// own and the live window genuinely turns over.
		return &churnGen{rng: rng, base: uint64(conn+1) << 48, window: s.Keys, readFrac: s.ReadFrac}, nil
	case "scan":
		return &scanGen{rng: rng, keys: s.Keys, scanFrac: s.ReadFrac, scanLen: s.ScanLen}, nil
	case "incr":
		return &incrGen{rng: rng, keys: s.Keys, readFrac: s.ReadFrac}, nil
	case "mix":
		entries, err := parseMixWeights(s.Mix)
		if err != nil {
			return nil, err
		}
		return &mixGen{rng: rng, keys: s.Keys, scanLen: s.ScanLen, batchLen: s.BatchLen, entries: entries}, nil
	}
	return nil, fmt.Errorf("loadgen: unknown distribution %q", s.Kind)
}

// uniformGen reads and writes keys uniformly over the keyspace.
type uniformGen struct {
	rng      *rand.Rand
	keys     uint64
	readFrac float64
}

func (g *uniformGen) Name() string { return "uniform" }

func (g *uniformGen) Next() Op {
	k := uint64(g.rng.Int63n(int64(g.keys)))
	if g.rng.Float64() < g.readFrac {
		return Op{Kind: OpGet, Key: k}
	}
	return Op{Kind: OpPut, Key: k, Val: g.rng.Uint64()}
}

// zipfGen concentrates traffic on hot keys with Zipf-distributed ranks:
// the adaptive-cache thesis workload, where a small working set should let
// the write cache absorb most flushes.
type zipfGen struct {
	rng      *rand.Rand
	z        *rand.Zipf
	readFrac float64
}

func (g *zipfGen) Name() string { return "zipf" }

func (g *zipfGen) Next() Op {
	// Mix the rank so hot keys spread across shards (rank 0 is hottest);
	// the multiply is a bijection, preserving the popularity distribution.
	k := g.z.Uint64() * 0x9e3779b97f4a7c15
	if g.rng.Float64() < g.readFrac {
		return Op{Kind: OpGet, Key: k}
	}
	return Op{Kind: OpPut, Key: k, Val: g.rng.Uint64()}
}

// churnGen slides a live key window: inserts at the head, deletes at the
// tail once the window is full, reads inside the window. The store's
// contents turn over completely — the B+-tree constantly splits and
// merges, and deferred page reclamation is kept honest.
type churnGen struct {
	rng      *rand.Rand
	base     uint64
	lo, hi   uint64 // live window is [base+lo, base+hi)
	window   uint64
	readFrac float64
	delTurn  bool
}

func (g *churnGen) Name() string { return "churn" }

func (g *churnGen) Next() Op {
	if g.hi > g.lo && g.rng.Float64() < g.readFrac {
		k := g.base + g.lo + uint64(g.rng.Int63n(int64(g.hi-g.lo)))
		return Op{Kind: OpGet, Key: k}
	}
	// Writes alternate insert/delete once the window is full, so the live
	// set stays ~window keys while every key eventually dies.
	if g.delTurn && g.hi-g.lo >= g.window {
		k := g.base + g.lo
		g.lo++
		g.delTurn = false
		return Op{Kind: OpDel, Key: k}
	}
	k := g.base + g.hi
	g.hi++
	g.delTurn = true
	return Op{Kind: OpPut, Key: k, Val: g.rng.Uint64()}
}

// scanGen is range-read heavy: SCANs of scanLen pairs at uniform starting
// points, interleaved with PUTs that keep the trees populated.
type scanGen struct {
	rng      *rand.Rand
	keys     uint64
	scanFrac float64
	scanLen  int
}

func (g *scanGen) Name() string { return "scan" }

func (g *scanGen) Next() Op {
	k := uint64(g.rng.Int63n(int64(g.keys)))
	if g.rng.Float64() < g.scanFrac {
		return Op{Kind: OpScan, Key: k, N: g.scanLen}
	}
	return Op{Kind: OpPut, Key: k, Val: g.rng.Uint64()}
}

// incrGen is the counter workload: INCRs of small deltas over a uniform
// keyspace, interleaved with a ReadFrac share of GETs. Under a server with
// absorption enabled the repeated increments of a bounded key set are
// exactly what the accumulator folds into net deltas; under absorption off
// the same stream measures the per-op read-modify-write baseline.
type incrGen struct {
	rng      *rand.Rand
	keys     uint64
	readFrac float64
}

func (g *incrGen) Name() string { return "incr" }

func (g *incrGen) Next() Op {
	k := uint64(g.rng.Int63n(int64(g.keys)))
	if g.rng.Float64() < g.readFrac {
		return Op{Kind: OpGet, Key: k}
	}
	return Op{Kind: OpIncr, Key: k, Val: 1 + uint64(g.rng.Int63n(16))}
}

// mixGen draws each op's verb from the normalized weight table, with
// uniform keys: the -mix workload (`put:1,get:1,incr:2`-style). The
// batched verbs (mget, mput) reuse kbuf/vbuf across draws, so a mix
// stream allocates nothing per op in steady state.
type mixGen struct {
	rng      *rand.Rand
	keys     uint64
	scanLen  int
	batchLen int
	entries  []mixEntry
	kbuf     []uint64
	vbuf     []uint64
}

func (g *mixGen) Name() string { return "mix" }

func (g *mixGen) Next() Op {
	u := g.rng.Float64()
	kind := g.entries[len(g.entries)-1].kind
	for _, e := range g.entries {
		if u < e.w {
			kind = e.kind
			break
		}
		u -= e.w
	}
	k := uint64(g.rng.Int63n(int64(g.keys)))
	switch kind {
	case OpPut:
		return Op{Kind: OpPut, Key: k, Val: g.rng.Uint64()}
	case OpScan:
		return Op{Kind: OpScan, Key: k, N: g.scanLen}
	case OpIncr, OpDecr:
		return Op{Kind: kind, Key: k, Val: 1 + uint64(g.rng.Int63n(16))}
	case OpDel:
		return Op{Kind: OpDel, Key: k}
	case OpMGet:
		g.fillKeys()
		return Op{Kind: OpMGet, Keys: g.kbuf}
	case OpMPut:
		g.fillKeys()
		if cap(g.vbuf) < g.batchLen {
			g.vbuf = make([]uint64, g.batchLen)
		}
		g.vbuf = g.vbuf[:g.batchLen]
		for i := range g.vbuf {
			g.vbuf[i] = g.rng.Uint64()
		}
		return Op{Kind: OpMPut, Keys: g.kbuf, Vals: g.vbuf}
	}
	return Op{Kind: OpGet, Key: k}
}

func (g *mixGen) fillKeys() {
	if cap(g.kbuf) < g.batchLen {
		g.kbuf = make([]uint64, g.batchLen)
	}
	g.kbuf = g.kbuf[:g.batchLen]
	for i := range g.kbuf {
		g.kbuf[i] = uint64(g.rng.Int63n(int64(g.keys)))
	}
}

// phasedGen runs its sub-generators back to back, switching after each
// one's operation budget — the mid-run distribution shift that adaptive
// sizing must react to.
type phasedGen struct {
	phases []phaseGen
	idx    int
	used   int
}

type phaseGen struct {
	g   Generator
	ops int
}

func (g *phasedGen) Name() string { return "phased" }

// Phase returns the active phase index (for progress reporting/tests).
func (g *phasedGen) Phase() int { return g.idx }

func (g *phasedGen) Next() Op {
	for g.idx < len(g.phases)-1 && g.used >= g.phases[g.idx].ops {
		g.idx++
		g.used = 0
	}
	g.used++
	return g.phases[g.idx].g.Next()
}
