package loadgen

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nvmcache/internal/kv"
	"nvmcache/internal/server"
)

func selfHost(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	kvOpts := kv.DefaultOptions()
	kvOpts.Shards = 2
	srv, err := server.SelfHost(kvOpts, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown() })
	return srv
}

func testConfig(addr string) Config {
	return Config{
		Addr:    addr,
		Rate:    2000,
		Conns:   2,
		Ops:     2000,
		Seed:    1,
		Timeout: 10 * time.Second,
		Preload: 512,
	}
}

// TestRunAllDistributions drives a live self-hosted nvserver at a fixed
// arrival rate under every atomic distribution plus a phase-changing
// schedule, and checks the accounting invariants the BENCH artifact
// relies on.
func TestRunAllDistributions(t *testing.T) {
	srv := selfHost(t, server.Options{})
	dists := append(append([]string{}, DistNames...),
		"zipf@1,churn@1", "mix=put:1,get:2,incr:1,decr:1")
	for _, name := range dists {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(srv.Addr().String())
			base := DefaultSpec()
			base.Keys = 256
			var spec Spec
			var err error
			if mix, ok := strings.CutPrefix(name, "mix="); ok {
				spec, err = ParseMix(mix, base)
			} else {
				spec, err = ParseDist(name, base)
			}
			if err != nil {
				t.Fatal(err)
			}
			cfg.Dist = spec
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Sent != int64(cfg.Ops) {
				t.Fatalf("sent %d of %d scheduled ops", rep.Sent, cfg.Ops)
			}
			if rep.Completed != rep.Sent || rep.Errors != 0 || rep.Timeouts != 0 {
				t.Fatalf("completed=%d errors=%d timeouts=%d of sent=%d",
					rep.Completed, rep.Errors, rep.Timeouts, rep.Sent)
			}
			if rep.Hist.Count() != rep.Completed {
				t.Fatalf("histogram holds %d, completed %d", rep.Hist.Count(), rep.Completed)
			}
			if rep.Throughput() <= 0 {
				t.Fatal("zero throughput")
			}
			// The server must have seen this run: the per-verb deltas must
			// add up to at least what we sent (preload adds more; total.ops
			// alone counts only batched writes).
			d := rep.ServerDelta
			verbs := d["total.puts"] + d["total.dels"] + d["total.gets"] +
				d["total.scans"] + d["total.incrs"] + d["total.decrs"]
			if verbs < float64(rep.Sent) {
				t.Fatalf("server verb deltas %.0f < sent %d (%v)", verbs, rep.Sent, d)
			}
		})
	}
}

// TestRunScanDeltaCounts: a scan-heavy run must move the server's scans
// counter — proving the delta plumbing reports per-run server cost, not
// absolute counters.
func TestRunScanDeltaCounts(t *testing.T) {
	srv := selfHost(t, server.Options{})
	cfg := testConfig(srv.Addr().String())
	cfg.Dist = Spec{Kind: "scan", Keys: 256, ReadFrac: 0.8, ScanLen: 8}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServerDelta["total.scans"] <= 0 {
		t.Fatalf("scan workload produced no scans delta: %v", rep.ServerDelta["total.scans"])
	}
}

// TestStallInflatesTailAndFailsSLO is the subsystem's acceptance test: a
// server stall must inflate the *reported* tail because latency is charged
// from intended send times. The same workload and SLO pass on a healthy
// server and fail when the server freezes for 300ms mid-run — a
// closed-loop driver would have seen one slow op (0.1% of traffic) and
// reported a healthy p99.
func TestStallInflatesTailAndFailsSLO(t *testing.T) {
	slo := &SLO{P99: 50 * time.Millisecond, MaxErrorFrac: 0.01}
	const stall = 300 * time.Millisecond

	run := func(t *testing.T, opts server.Options) *Report {
		srv := selfHost(t, opts)
		cfg := testConfig(srv.Addr().String())
		cfg.Rate = 1000
		cfg.Ops = 3000 // a 3s schedule; the stall shadows ~10% of arrivals
		cfg.SLO = slo
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	t.Run("healthy", func(t *testing.T) {
		rep := run(t, server.Options{})
		if rep.SLO == nil || !rep.SLO.Pass {
			t.Fatalf("healthy run failed SLO: %v", rep.SLO)
		}
	})

	t.Run("stalled", func(t *testing.T) {
		var fired atomic.Bool
		var count atomic.Int64
		opts := server.Options{Stall: func(verb string) {
			// One freeze, mid-run (after the preload and ~1s of traffic).
			if count.Add(1) == 1500 && fired.CompareAndSwap(false, true) {
				time.Sleep(stall)
			}
		}}
		rep := run(t, opts)
		if p99 := rep.Hist.Quantile(0.99); p99 < stall/3 {
			t.Fatalf("p99 %v does not reflect the %v stall — coordinated omission", p99, stall)
		}
		if rep.SLO == nil || rep.SLO.Pass {
			t.Fatalf("stalled run passed its SLO: %+v", rep.SLO)
		}
		if len(rep.SLO.Violations) == 0 {
			t.Fatal("failed SLO reports no violations")
		}
	})
}

// TestSLOEvaluation exercises the target checks directly.
func TestSLOEvaluation(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Record(time.Millisecond)
	}
	h.Record(100 * time.Millisecond) // the tail
	rep := &Report{Hist: h, Sent: 1001, Completed: 1001, Elapsed: time.Second}

	pass := (&SLO{P50: 10 * time.Millisecond, P99: 10 * time.Millisecond}).Evaluate(rep)
	if !pass.Pass {
		t.Fatalf("expected pass: %v", pass.Violations)
	}
	fail := (&SLO{P999: 500 * time.Microsecond, MinThroughput: 5000}).Evaluate(rep)
	if fail.Pass || len(fail.Violations) != 2 {
		t.Fatalf("expected 2 violations: %+v", fail)
	}
	errs := (&SLO{MaxErrorFrac: 0.001}).Evaluate(&Report{
		Hist: h, Sent: 100, Completed: 90, Errors: 10, Elapsed: time.Second})
	if errs.Pass {
		t.Fatal("10% errors passed MaxErrorFrac=0.1%")
	}
}

// TestConfigValidation: rejected configs must error before dialing.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"no-addr": {Rate: 100, Ops: 10},
		"no-rate": {Addr: "127.0.0.1:1", Ops: 10},
		"no-len":  {Addr: "127.0.0.1:1", Rate: 100},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestRunPhasedSplitsHistograms checks the v1.1 per-phase breakdown: a
// phased schedule yields one sub-histogram per phase, they partition the
// aggregate exactly, and the persisted artifact carries (and validates) the
// per-phase percentiles.
func TestRunPhasedSplitsHistograms(t *testing.T) {
	srv := selfHost(t, server.Options{})
	cfg := testConfig(srv.Addr().String())
	base := DefaultSpec()
	base.Keys = 256
	spec, err := ParseDist("zipf@2,uniform@1,scan@1", base)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dist = spec
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhaseHists) != 3 || len(rep.PhaseNames) != 3 {
		t.Fatalf("got %d phase hists / %d names, want 3", len(rep.PhaseHists), len(rep.PhaseNames))
	}
	wantNames := []string{"zipf", "uniform", "scan"}
	var inPhases int64
	for i, h := range rep.PhaseHists {
		if rep.PhaseNames[i] != wantNames[i] {
			t.Errorf("phase %d named %q, want %q", i, rep.PhaseNames[i], wantNames[i])
		}
		if h.Count() == 0 {
			t.Errorf("phase %d (%s) recorded nothing", i, rep.PhaseNames[i])
		}
		inPhases += h.Count()
	}
	if inPhases != rep.Completed {
		t.Fatalf("phase histograms hold %d, completed %d", inPhases, rep.Completed)
	}
	// The first phase owns ~half the schedule (2 of 4 weight units).
	if frac := float64(rep.PhaseHists[0].Count()) / float64(rep.Completed); frac < 0.4 || frac > 0.6 {
		t.Errorf("zipf phase holds %.2f of the run, want ~0.5", frac)
	}

	b := rep.Bench("test_phased")
	if len(b.Phases) != 3 {
		t.Fatalf("artifact carries %d phases, want 3", len(b.Phases))
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("artifact validation: %v", err)
	}
}

// TestRunUnphasedHasNoPhases pins the single-phase artifact shape: no
// phase split, and validation does not demand one.
func TestRunUnphasedHasNoPhases(t *testing.T) {
	srv := selfHost(t, server.Options{})
	cfg := testConfig(srv.Addr().String())
	cfg.Ops = 400
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PhaseHists != nil || rep.PhaseNames != nil {
		t.Fatalf("unphased run grew phase hists: %v", rep.PhaseNames)
	}
	b := rep.Bench("test_unphased")
	if b.Phases != nil {
		t.Fatalf("unphased artifact carries phases: %v", b.Phases)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}
