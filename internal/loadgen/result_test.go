package loadgen

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvmcache/internal/benchfmt"
)

func sampleReport(t *testing.T) *Report {
	t.Helper()
	h := &Histogram{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(20 * time.Millisecond))))
	}
	cfg, err := Config{
		Addr: "127.0.0.1:7070", Rate: 500, Conns: 4, Duration: 10 * time.Second,
		Dist: Spec{Kind: "zipf", Keys: 1 << 16, Skew: 1.2, ReadFrac: 0.9},
		Seed: 42, Preload: 1000,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{
		Config:    cfg,
		Hist:      h,
		Sent:      5000,
		Completed: 5000,
		Elapsed:   10 * time.Second,
		ServerDelta: map[string]float64{
			"total.ops": 5000, "total.puts": 500, "stripes.contended": 12,
		},
	}
	rep.SLO = (&SLO{P99: 100 * time.Millisecond}).Evaluate(rep)
	return rep
}

// TestBenchRoundTrip: write the artifact, read it back, and check the
// pieces trajectory tooling depends on survive: schema, percentiles,
// histogram (re-aggregatable to the same quantiles), server delta, SLO.
func TestBenchRoundTrip(t *testing.T) {
	rep := sampleReport(t)
	b := rep.Bench("loadgen_test")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_loadgen_test.json")
	if err := WriteBench(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != benchfmt.Schema || got.Experiment != "loadgen_test" {
		t.Fatalf("envelope mangled: %+v", got.Meta)
	}
	if got.Metrics != b.Metrics {
		t.Fatalf("metrics changed in round trip:\n%+v\n%+v", got.Metrics, b.Metrics)
	}
	if got.Config.DistName != "zipf" || got.Config.Dist.Skew != 1.2 {
		t.Fatalf("config mangled: %+v", got.Config)
	}
	if got.Server["stripes.contended"] != 12 {
		t.Fatalf("server delta mangled: %v", got.Server)
	}
	if got.SLO == nil || !got.SLO.Pass {
		t.Fatalf("slo mangled: %+v", got.SLO)
	}
	// The persisted buckets must re-aggregate to the same percentiles
	// (within quantization) — that is what makes artifacts mergeable.
	h2 := FromBuckets(got.Buckets)
	if h2.Count() != rep.Hist.Count() {
		t.Fatalf("bucket count %d != %d", h2.Count(), rep.Hist.Count())
	}
	p99a, p99b := rep.Hist.Quantile(0.99), h2.Quantile(0.99)
	if !relClose(p99a, p99b) {
		t.Fatalf("p99 drifted across persistence: %v vs %v", p99a, p99b)
	}
}

// TestBenchValidateRejects enumerates the malformed artifacts CI must
// refuse to upload.
func TestBenchValidateRejects(t *testing.T) {
	mutations := map[string]func(*Bench){
		"bad-schema":      func(b *Bench) { b.Schema = "nvmcache-bench/v0" },
		"no-experiment":   func(b *Bench) { b.Experiment = "" },
		"no-time":         func(b *Bench) { b.UnixTime = 0 },
		"zero-rate":       func(b *Bench) { b.Config.RateOps = 0 },
		"zero-conns":      func(b *Bench) { b.Config.Conns = 0 },
		"no-dist":         func(b *Bench) { b.Config.DistName = "" },
		"over-complete":   func(b *Bench) { b.Metrics.Completed = b.Metrics.Sent + 1 },
		"lost-histogram":  func(b *Bench) { b.Buckets = b.Buckets[:1] },
		"unsorted-hist":   func(b *Bench) { b.Buckets[0], b.Buckets[1] = b.Buckets[1], b.Buckets[0] },
		"inverted-bucket": func(b *Bench) { b.Buckets[0].HiNanos = b.Buckets[0].LoNanos - 1 },
		"bad-percentiles": func(b *Bench) { b.Metrics.P50US = b.Metrics.MaxUS + 1 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			b := sampleReport(t).Bench("x")
			if err := b.Validate(); err != nil {
				t.Fatalf("baseline invalid: %v", err)
			}
			mutate(b)
			err := b.Validate()
			if err == nil {
				t.Fatal("mutated artifact validated")
			}
			if strings.Contains(err.Error(), "%!") {
				t.Fatalf("mangled error message: %v", err)
			}
		})
	}
}

// TestWriteBenchRefusesInvalid: a malformed artifact must never reach disk.
func TestWriteBenchRefusesInvalid(t *testing.T) {
	b := sampleReport(t).Bench("x")
	b.Config.RateOps = -1
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := WriteBench(path, b); err == nil {
		t.Fatal("invalid artifact written")
	}
	if _, err := ReadBench(path); err == nil {
		t.Fatal("file exists after refused write")
	}
}

// TestBenchAcceptsV1Schema pins backward compatibility: artifacts stamped
// with the v1 envelope (no phases field) still read and validate, so -check
// keeps working against checked-in baselines from before the bump.
func TestBenchAcceptsV1Schema(t *testing.T) {
	rep := sampleReport(t)
	b := rep.Bench("compat")
	b.Schema = "nvmcache-bench/v1"
	b.Phases = nil
	if err := b.Validate(); err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	b.Schema = "nvmcache-bench/v0"
	if err := b.Validate(); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
