package trace

// This file implements the trace transformation described in Section III-B,
// "Adaptation to FASE Semantics": the FASE semantics invalidates all data
// reuses across a FASE boundary (the software cache is drained at every
// FASE end), so before locality analysis the write trace is rewritten such
// that the same cache-line address is never used in more than one FASE. In
// the paper's example, ab|ab|ab... becomes abcdef... .

// RenameFASEs rewrites one thread's write sequence so that every (FASE,
// line) pair receives a fresh synthetic address. The result preserves the
// reuse structure *within* each FASE and destroys all cross-FASE reuse,
// which is exactly the reuse visible to the write-combining cache.
func RenameFASEs(s *ThreadSeq) []uint64 {
	out := make([]uint64, 0, len(s.Writes))
	ids := make(map[LineAddr]uint64, 64)
	var next uint64
	start := 0
	for _, end := range s.Bounds {
		clear(ids)
		for _, w := range s.Writes[start:end] {
			id, ok := ids[w]
			if !ok {
				id = next
				next++
				ids[w] = id
			}
			out = append(out, id)
		}
		start = end
	}
	return out
}

// RenameAll applies RenameFASEs to every thread and returns the per-thread
// renamed sequences in Trace order. Threads are analysed independently
// (Section III-C: "we assume that threads have different cache behavior and
// analyze MRC for each thread"), so no cross-thread renaming is needed.
func RenameAll(t *Trace) [][]uint64 {
	out := make([][]uint64, len(t.Threads))
	for i, s := range t.Threads {
		out[i] = RenameFASEs(s)
	}
	return out
}
