// Package trace defines the persistent-write event model shared by the
// whole repository: cache-line addressing, per-thread write sequences with
// failure-atomic-section (FASE) boundaries, trace statistics, the FASE
// address renaming required by the paper's locality analysis (Section
// III-B), and a compact binary encoding.
//
// Every workload in this repository — the micro-benchmarks, the MDB
// key-value store, and the SPLASH2 write-locality generators — ultimately
// produces one Trace. Persistence policies (internal/core) and locality
// analysis (internal/locality) consume traces, never raw data structures,
// which keeps the two halves of the system independently testable.
package trace

import (
	"fmt"
	"sort"
)

// LineShift is log2 of the cache-line size. The paper's test machine uses
// 64-byte lines; so does every model in this repository.
const LineShift = 6

// LineSize is the cache-line size in bytes.
const LineSize = 1 << LineShift

// LineAddr is a cache-line address: a byte address shifted right by
// LineShift. All write combining happens at this granularity, exactly as in
// Atlas and the paper's software cache.
type LineAddr uint64

// LineOf converts a byte address to its cache-line address.
func LineOf(byteAddr uint64) LineAddr { return LineAddr(byteAddr >> LineShift) }

// ByteAddr returns the first byte address covered by the line.
func (l LineAddr) ByteAddr() uint64 { return uint64(l) << LineShift }

// LinesSpanned reports how many cache lines the byte range [addr,
// addr+size) touches. A zero-size write touches no lines.
func LinesSpanned(addr, size uint64) int {
	if size == 0 {
		return 0
	}
	first := addr >> LineShift
	last := (addr + size - 1) >> LineShift
	return int(last - first + 1)
}

// Kind identifies a trace event.
type Kind uint8

// Event kinds. A store carries a line address; FASE begin/end events mark
// outermost failure-atomic section boundaries on one thread.
const (
	KindStore Kind = iota
	KindFASEBegin
	KindFASEEnd
)

func (k Kind) String() string {
	switch k {
	case KindStore:
		return "store"
	case KindFASEBegin:
		return "fase-begin"
	case KindFASEEnd:
		return "fase-end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one element of a global trace.
type Event struct {
	Kind   Kind
	Thread int32
	Line   LineAddr
}

// ThreadSeq is one thread's persistent-write history. Writes are grouped
// into FASEs by Bounds: FASE i covers Writes[start:Bounds[i]] where start is
// Bounds[i-1] (or 0 for i == 0). A well-formed sequence has every write
// inside exactly one FASE; runtimes convert stray out-of-FASE stores into
// singleton FASEs before building a ThreadSeq.
type ThreadSeq struct {
	Thread int32
	Writes []LineAddr
	Bounds []int
}

// NumFASEs returns the number of failure-atomic sections in the sequence.
func (s *ThreadSeq) NumFASEs() int { return len(s.Bounds) }

// NumWrites returns the number of persistent stores in the sequence.
func (s *ThreadSeq) NumWrites() int { return len(s.Writes) }

// FASE returns the i-th section's writes (a sub-slice, not a copy).
func (s *ThreadSeq) FASE(i int) []LineAddr {
	start := 0
	if i > 0 {
		start = s.Bounds[i-1]
	}
	return s.Writes[start:s.Bounds[i]]
}

// Validate checks structural invariants: bounds strictly increasing, final
// bound equal to the write count, and no empty trailing region.
func (s *ThreadSeq) Validate() error {
	prev := 0
	for i, b := range s.Bounds {
		if b < prev {
			return fmt.Errorf("trace: bound %d = %d precedes previous bound %d", i, b, prev)
		}
		if b > len(s.Writes) {
			return fmt.Errorf("trace: bound %d = %d exceeds write count %d", i, b, len(s.Writes))
		}
		prev = b
	}
	if len(s.Bounds) > 0 && s.Bounds[len(s.Bounds)-1] != len(s.Writes) {
		return fmt.Errorf("trace: final bound %d != write count %d", s.Bounds[len(s.Bounds)-1], len(s.Writes))
	}
	if len(s.Bounds) == 0 && len(s.Writes) > 0 {
		return fmt.Errorf("trace: %d writes outside any FASE", len(s.Writes))
	}
	return nil
}

// Builder incrementally constructs a ThreadSeq from runtime events,
// tolerating nested FASEs (only the outermost pair delimits a section, as
// in Atlas) and stores outside any FASE (each becomes a singleton section).
type Builder struct {
	seq   ThreadSeq
	depth int
}

// NewBuilder returns a Builder for the given thread id.
func NewBuilder(thread int32) *Builder {
	return &Builder{seq: ThreadSeq{Thread: thread}}
}

// Begin enters a FASE (possibly nested).
func (b *Builder) Begin() { b.depth++ }

// End leaves a FASE. Leaving the outermost level seals the current section.
// End without a matching Begin is a no-op, mirroring Atlas's tolerance of
// unlock-without-lock in instrumented code.
func (b *Builder) End() {
	if b.depth == 0 {
		return
	}
	b.depth--
	if b.depth == 0 {
		b.seal()
	}
}

// Store records one persistent store to the given line. A store outside any
// FASE is recorded as its own singleton section.
func (b *Builder) Store(line LineAddr) {
	b.seq.Writes = append(b.seq.Writes, line)
	if b.depth == 0 {
		b.seal()
	}
}

// StoreRange records a store of size bytes at byte address addr, emitting
// one event per cache line spanned.
func (b *Builder) StoreRange(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> LineShift
	last := (addr + size - 1) >> LineShift
	for l := first; l <= last; l++ {
		b.Store(LineAddr(l))
	}
}

func (b *Builder) seal() {
	n := len(b.seq.Writes)
	prev := 0
	if len(b.seq.Bounds) > 0 {
		prev = b.seq.Bounds[len(b.seq.Bounds)-1]
	}
	if prev == n {
		return // empty section: skip
	}
	b.seq.Bounds = append(b.seq.Bounds, n)
}

// Depth reports the current FASE nesting depth.
func (b *Builder) Depth() int { return b.depth }

// Finish seals any open section and returns the completed sequence. The
// builder must not be reused afterwards.
func (b *Builder) Finish() *ThreadSeq {
	if b.depth > 0 {
		b.depth = 0
		b.seal()
	}
	s := b.seq
	return &s
}

// Snapshot returns a copy of the sequence built so far without disturbing
// the builder: writes and bounds are copied, and if a FASE is currently
// open its stores so far are sealed into a final section of the copy only.
// Unlike Finish, the builder remains usable, so Snapshot may be taken any
// number of times mid-recording.
func (b *Builder) Snapshot() *ThreadSeq {
	s := &ThreadSeq{
		Thread: b.seq.Thread,
		Writes: append([]LineAddr(nil), b.seq.Writes...),
		Bounds: append([]int(nil), b.seq.Bounds...),
	}
	n := len(s.Writes)
	prev := 0
	if len(s.Bounds) > 0 {
		prev = s.Bounds[len(s.Bounds)-1]
	}
	if prev != n { // seal the open (or implicit) tail section in the copy
		s.Bounds = append(s.Bounds, n)
	}
	return s
}

// Trace is a complete multi-thread persistent-write trace.
type Trace struct {
	Threads []*ThreadSeq
}

// NewTrace bundles per-thread sequences into a Trace, sorted by thread id.
func NewTrace(seqs ...*ThreadSeq) *Trace {
	t := &Trace{Threads: append([]*ThreadSeq(nil), seqs...)}
	sort.Slice(t.Threads, func(i, j int) bool { return t.Threads[i].Thread < t.Threads[j].Thread })
	return t
}

// Validate validates every thread sequence.
func (t *Trace) Validate() error {
	for _, s := range t.Threads {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("thread %d: %w", s.Thread, err)
		}
	}
	return nil
}

// Stats summarises a trace: the "benchmark statistics" columns of the
// paper's Table III.
type Stats struct {
	Threads      int
	TotalWrites  int64 // persistent stores
	TotalFASEs   int64
	DistinctLine int64 // distinct lines across the whole trace
	// LAFlushes is Σ over FASEs of distinct lines written in that FASE:
	// the lazy policy's flush count and the paper's lower bound ("LA
	// reaches the lowest possible").
	LAFlushes int64
}

// ComputeStats scans the trace once and returns its statistics.
func ComputeStats(t *Trace) Stats {
	var st Stats
	st.Threads = len(t.Threads)
	global := make(map[LineAddr]struct{})
	seen := make(map[LineAddr]struct{})
	for _, s := range t.Threads {
		st.TotalWrites += int64(len(s.Writes))
		st.TotalFASEs += int64(s.NumFASEs())
		for i := 0; i < s.NumFASEs(); i++ {
			clear(seen)
			for _, w := range s.FASE(i) {
				global[w] = struct{}{}
				if _, ok := seen[w]; !ok {
					seen[w] = struct{}{}
					st.LAFlushes++
				}
			}
		}
	}
	st.DistinctLine = int64(len(global))
	return st
}

// Events flattens the trace into a single event stream, round-robin
// interleaving threads FASE by FASE. The interleaving is deterministic; it
// exists for encoding and for tests, not to model real scheduling (software
// caches are per thread and never interact, so policy results are
// interleaving-independent).
func (t *Trace) Events() []Event {
	var out []Event
	idx := make([]int, len(t.Threads))
	for {
		progress := false
		for ti, s := range t.Threads {
			if idx[ti] >= s.NumFASEs() {
				continue
			}
			progress = true
			out = append(out, Event{Kind: KindFASEBegin, Thread: s.Thread})
			for _, w := range s.FASE(idx[ti]) {
				out = append(out, Event{Kind: KindStore, Thread: s.Thread, Line: w})
			}
			out = append(out, Event{Kind: KindFASEEnd, Thread: s.Thread})
			idx[ti]++
		}
		if !progress {
			break
		}
	}
	return out
}

// FromEvents reconstructs a Trace from a flat event stream.
func FromEvents(events []Event) *Trace {
	builders := make(map[int32]*Builder)
	var order []int32
	get := func(th int32) *Builder {
		b, ok := builders[th]
		if !ok {
			b = NewBuilder(th)
			builders[th] = b
			order = append(order, th)
		}
		return b
	}
	for _, ev := range events {
		b := get(ev.Thread)
		switch ev.Kind {
		case KindFASEBegin:
			b.Begin()
		case KindFASEEnd:
			b.End()
		case KindStore:
			b.Store(ev.Line)
		}
	}
	seqs := make([]*ThreadSeq, 0, len(order))
	for _, th := range order {
		seqs = append(seqs, builders[th].Finish())
	}
	return NewTrace(seqs...)
}
