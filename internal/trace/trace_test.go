package trace

import (
	"bytes"
	"math/rand"
	"nvmcache/internal/testutil"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr uint64
		want LineAddr
	}{
		{0, 0}, {1, 0}, {63, 0}, {64, 1}, {65, 1}, {127, 1}, {128, 2},
		{1 << 20, 1 << 14},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.addr, got, c.want)
		}
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	for _, a := range []uint64{0, 64, 4096, 1 << 30} {
		if got := LineOf(a).ByteAddr(); got != a {
			t.Errorf("ByteAddr(LineOf(%d)) = %d", a, got)
		}
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		addr, size uint64
		want       int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{63, 1, 1},
		{60, 8, 2},
		{0, 128, 2},
		{10, 128, 3},
	}
	for _, c := range cases {
		if got := LinesSpanned(c.addr, c.size); got != c.want {
			t.Errorf("LinesSpanned(%d,%d) = %d, want %d", c.addr, c.size, got, c.want)
		}
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.Store(1)
	b.Store(2)
	b.End()
	b.Begin()
	b.Store(3)
	b.End()
	s := b.Finish()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumFASEs() != 2 || s.NumWrites() != 3 {
		t.Fatalf("got %d FASEs, %d writes", s.NumFASEs(), s.NumWrites())
	}
	if got := s.FASE(0); !reflect.DeepEqual(got, []LineAddr{1, 2}) {
		t.Errorf("FASE(0) = %v", got)
	}
	if got := s.FASE(1); !reflect.DeepEqual(got, []LineAddr{3}) {
		t.Errorf("FASE(1) = %v", got)
	}
}

func TestBuilderNestedFASE(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.Store(1)
	b.Begin() // nested: must not split the section
	b.Store(2)
	b.End()
	b.Store(3)
	b.End()
	s := b.Finish()
	if s.NumFASEs() != 1 {
		t.Fatalf("nested FASE split the section: %d FASEs", s.NumFASEs())
	}
	if len(s.FASE(0)) != 3 {
		t.Fatalf("FASE(0) has %d writes", len(s.FASE(0)))
	}
}

func TestBuilderOutsideFASESingleton(t *testing.T) {
	b := NewBuilder(0)
	b.Store(7) // outside any FASE
	b.Store(7)
	b.Begin()
	b.Store(1)
	b.End()
	s := b.Finish()
	if s.NumFASEs() != 3 {
		t.Fatalf("want 3 sections (2 singletons + 1 FASE), got %d", s.NumFASEs())
	}
	if len(s.FASE(0)) != 1 || len(s.FASE(1)) != 1 {
		t.Errorf("out-of-FASE stores not singleton sections: %v", s.Bounds)
	}
}

func TestBuilderUnmatchedEnd(t *testing.T) {
	b := NewBuilder(0)
	b.End() // no-op
	b.Begin()
	b.Store(1)
	b.End()
	s := b.Finish()
	if s.NumFASEs() != 1 || s.NumWrites() != 1 {
		t.Fatalf("unexpected: %+v", s)
	}
}

func TestBuilderUnclosedFASESealedByFinish(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.Store(1)
	s := b.Finish()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumFASEs() != 1 {
		t.Fatalf("Finish did not seal open FASE")
	}
}

func TestBuilderEmptyFASESkipped(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.End() // empty
	b.Begin()
	b.Store(1)
	b.End()
	s := b.Finish()
	if s.NumFASEs() != 1 {
		t.Fatalf("empty FASE recorded: bounds %v", s.Bounds)
	}
}

func TestBuilderStoreRange(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.StoreRange(60, 8) // spans lines 0 and 1
	b.StoreRange(128, 64)
	b.StoreRange(0, 0) // no-op
	b.End()
	s := b.Finish()
	want := []LineAddr{0, 1, 2}
	if !reflect.DeepEqual(s.Writes, want) {
		t.Fatalf("Writes = %v, want %v", s.Writes, want)
	}
}

func TestValidateRejectsBadBounds(t *testing.T) {
	bad := []*ThreadSeq{
		{Writes: []LineAddr{1, 2}, Bounds: []int{2, 1}},
		{Writes: []LineAddr{1}, Bounds: []int{5}},
		{Writes: []LineAddr{1, 2}, Bounds: []int{1}},
		{Writes: []LineAddr{1}, Bounds: nil},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid sequence", i)
		}
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.Store(1)
	b.Store(1)
	b.Store(2)
	b.End()
	b.Begin()
	b.Store(1)
	b.End()
	tr := NewTrace(b.Finish())
	st := ComputeStats(tr)
	if st.TotalWrites != 4 || st.TotalFASEs != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.DistinctLine != 2 {
		t.Errorf("DistinctLine = %d, want 2", st.DistinctLine)
	}
	// FASE 1 dirties {1,2}; FASE 2 dirties {1}: LA flush count 3.
	if st.LAFlushes != 3 {
		t.Errorf("LAFlushes = %d, want 3", st.LAFlushes)
	}
}

func TestRenameFASEsPaperExample(t *testing.T) {
	// Trace ab|ab|ab must become abcdef (six distinct ids).
	b := NewBuilder(0)
	for i := 0; i < 3; i++ {
		b.Begin()
		b.Store(0xa)
		b.Store(0xb)
		b.End()
	}
	renamed := RenameFASEs(b.Finish())
	want := []uint64{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(renamed, want) {
		t.Fatalf("renamed = %v, want %v", renamed, want)
	}
}

func TestRenameFASEsPreservesIntraFASEReuse(t *testing.T) {
	b := NewBuilder(0)
	b.Begin()
	b.Store(0xa)
	b.Store(0xb)
	b.Store(0xa) // reuse within FASE must survive renaming
	b.End()
	b.Begin()
	b.Store(0xa) // cross-FASE reuse must be destroyed
	b.End()
	renamed := RenameFASEs(b.Finish())
	want := []uint64{0, 1, 0, 2}
	if !reflect.DeepEqual(renamed, want) {
		t.Fatalf("renamed = %v, want %v", renamed, want)
	}
}

func TestRenameAllThreadIndependence(t *testing.T) {
	b0 := NewBuilder(0)
	b0.Begin()
	b0.Store(5)
	b0.End()
	b1 := NewBuilder(1)
	b1.Begin()
	b1.Store(5)
	b1.End()
	tr := NewTrace(b0.Finish(), b1.Finish())
	renamed := RenameAll(tr)
	if len(renamed) != 2 {
		t.Fatalf("got %d threads", len(renamed))
	}
	// Each thread's namespace starts fresh.
	if renamed[0][0] != 0 || renamed[1][0] != 0 {
		t.Errorf("per-thread renaming not independent: %v", renamed)
	}
}

func TestEventsRoundTrip(t *testing.T) {
	tr := randomTrace(testutil.Rand(t, 1), 3, 20, 50)
	back := FromEvents(tr.Events())
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("event round trip mismatch")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := testutil.Rand(t, 42)
	for trial := 0; trial < 20; trial++ {
		tr := randomTrace(rng, 1+rng.Intn(4), 1+rng.Intn(30), 1+rng.Intn(80))
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatal(err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("Decode accepted garbage")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("Decode accepted empty input")
	}
}

func TestEncodeDecodeEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, NewTrace()); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Threads) != 0 {
		t.Fatalf("expected empty trace, got %d threads", len(back.Threads))
	}
}

// Property: encode/decode is an identity on arbitrary well-formed traces.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64, nThreads, nFASE, nWrites uint8) bool {
		rng := testutil.Rand(t, seed)
		tr := randomTrace(rng, 1+int(nThreads)%4, 1+int(nFASE)%20, 1+int(nWrites)%60)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: renaming never maps two writes in different FASEs to the same
// id, and maps two writes in the same FASE to the same id iff their lines
// are equal.
func TestQuickRenameCorrectness(t *testing.T) {
	f := func(seed int64) bool {
		rng := testutil.Rand(t, seed)
		tr := randomTrace(rng, 1, 1+rng.Intn(10), 1+rng.Intn(60))
		s := tr.Threads[0]
		renamed := RenameFASEs(s)
		if len(renamed) != len(s.Writes) {
			return false
		}
		faseOf := make([]int, len(s.Writes))
		start := 0
		for fi, end := range s.Bounds {
			for i := start; i < end; i++ {
				faseOf[i] = fi
			}
			start = end
		}
		for i := range renamed {
			for j := i + 1; j < len(renamed); j++ {
				sameFASE := faseOf[i] == faseOf[j]
				sameLine := s.Writes[i] == s.Writes[j]
				sameID := renamed[i] == renamed[j]
				if sameID != (sameFASE && sameLine) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// randomTrace builds a random well-formed trace for round-trip tests.
func randomTrace(rng *rand.Rand, threads, fases, writesPerFASE int) *Trace {
	seqs := make([]*ThreadSeq, 0, threads)
	for th := 0; th < threads; th++ {
		b := NewBuilder(int32(th))
		for f := 0; f < fases; f++ {
			b.Begin()
			n := 1 + rng.Intn(writesPerFASE)
			for w := 0; w < n; w++ {
				b.Store(LineAddr(rng.Intn(32)))
			}
			b.End()
		}
		seqs = append(seqs, b.Finish())
	}
	return NewTrace(seqs...)
}

// Decode must reject (not panic on) arbitrary malformed inputs, including
// truncations of valid traces.
func TestDecodeRobustness(t *testing.T) {
	rng := testutil.Rand(t, 99)
	tr := randomTrace(rng, 2, 10, 20)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	// Every truncation either errors or (for a prefix that happens to be
	// a complete encoding) yields a validatable trace.
	for cut := 0; cut < len(valid); cut += 7 {
		got, err := Decode(bytes.NewReader(valid[:cut]))
		if err == nil {
			if verr := got.Validate(); verr != nil {
				t.Fatalf("cut=%d: decoded invalid trace: %v", cut, verr)
			}
		}
	}
	// Random mutations must never panic.
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), valid...)
		for flips := 0; flips < 1+rng.Intn(8); flips++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		if got, err := Decode(bytes.NewReader(mut)); err == nil {
			_ = got.Validate() // may be invalid; must not panic
		}
	}
}
