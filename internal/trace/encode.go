package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format: a small magic header, then one record per thread:
// thread id, write count, FASE count, delta-varint encoded line addresses,
// varint FASE bounds (delta encoded). Traces of tens of millions of writes
// encode at a few bytes per store, which keeps recorded workloads shareable
// between the harness and the offline MRC tools.

const magic = "NVMT1\n"

var errBadMagic = errors.New("trace: bad magic; not a trace file")

// Encode writes the trace in binary form.
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Threads))); err != nil {
		return err
	}
	for _, s := range t.Threads {
		if err := putUvarint(uint64(uint32(s.Thread))); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(s.Writes))); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(s.Bounds))); err != nil {
			return err
		}
		var prev uint64
		for _, wr := range s.Writes {
			if err := putVarint(int64(uint64(wr)) - int64(prev)); err != nil {
				return err
			}
			prev = uint64(wr)
		}
		prevB := 0
		for _, b := range s.Bounds {
			if err := putUvarint(uint64(b - prevB)); err != nil {
				return err
			}
			prevB = b
		}
	}
	return bw.Flush()
}

// Decode reads a trace previously written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, errBadMagic
	}
	nThreads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: thread count: %w", err)
	}
	const maxThreads = 1 << 20
	if nThreads > maxThreads {
		return nil, fmt.Errorf("trace: implausible thread count %d", nThreads)
	}
	seqs := make([]*ThreadSeq, 0, nThreads)
	for ti := uint64(0); ti < nThreads; ti++ {
		th, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread id: %w", err)
		}
		nw, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: write count: %w", err)
		}
		nb, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: bound count: %w", err)
		}
		if nb > nw+1 {
			return nil, fmt.Errorf("trace: %d bounds for %d writes", nb, nw)
		}
		s := &ThreadSeq{
			Thread: int32(uint32(th)),
			Writes: make([]LineAddr, nw),
			Bounds: make([]int, nb),
		}
		var prev uint64
		for i := range s.Writes {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: write %d: %w", i, err)
			}
			prev = uint64(int64(prev) + d)
			s.Writes[i] = LineAddr(prev)
		}
		prevB := 0
		for i := range s.Bounds {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: bound %d: %w", i, err)
			}
			prevB += int(d)
			s.Bounds[i] = prevB
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		seqs = append(seqs, s)
	}
	return NewTrace(seqs...), nil
}
