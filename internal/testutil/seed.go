// Package testutil holds helpers shared by the repository's tests. It
// contains no production code and is imported only from _test files.
package testutil

import (
	"flag"
	"math/rand"
	"testing"
)

// seedFlag is the single knob behind every randomized test in the
// repository. The default keeps runs reproducible; pass a different value
// (go test ./... -args -testutil.seed=7) to explore other schedules. An
// audit (see DESIGN.md, Testing) confirmed no test draws from the global
// rand or from time-derived seeds.
var seedFlag = flag.Int64("testutil.seed", 1, "base seed for randomized tests")

// Seed derives a deterministic per-call-site seed from the -testutil.seed
// flag and salt, and logs it so a failing run's output states exactly how
// to reproduce it (t.Logf only surfaces on failure or -v).
func Seed(tb testing.TB, salt int64) int64 {
	tb.Helper()
	seed := *seedFlag*0x9E3779B9 + salt
	tb.Logf("rng seed %d (salt %d; rerun with -args -testutil.seed=N to vary)", seed, salt)
	return seed
}

// Rand returns a deterministic source seeded via Seed. Each call site
// should pass a distinct salt so tests in one binary do not share
// streams.
func Rand(tb testing.TB, salt int64) *rand.Rand {
	tb.Helper()
	return rand.New(rand.NewSource(Seed(tb, salt)))
}
