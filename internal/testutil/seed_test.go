package testutil

import "testing"

func TestSeedDeterministic(t *testing.T) {
	if Seed(t, 3) != Seed(t, 3) {
		t.Fatal("same salt produced different seeds")
	}
	if Seed(t, 1) == Seed(t, 2) {
		t.Fatal("different salts collided")
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	a, b := Rand(t, 1), Rand(t, 2)
	same := true
	for i := 0; i < 8; i++ {
		if a.Int63() != b.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("distinct salts produced identical streams")
	}
	c, d := Rand(t, 5), Rand(t, 5)
	for i := 0; i < 8; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("equal salts produced different streams")
		}
	}
}
