// Package kernels provides three executable miniature scientific kernels
// in the mold of the paper's SPLASH2 programs — an O(n²) n-body force
// integrator (barnes/fmm's regime), a 2-D Jacobi stencil (ocean's), and a
// cell-list molecular dynamics step (the water programs') — persisting
// their state through the Atlas runtime. Unlike internal/splash's
// calibrated trace generators (which reproduce the paper's exact Table III
// ratios), these kernels compute real results, so their persistent-write
// locality arises from the computation itself; tests verify both the
// numerics and the persistence behaviour.
package kernels

import (
	"fmt"
	"math"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/pmem"
	"nvmcache/internal/trace"
)

// Result bundles a kernel run: its trace for policy analysis plus the
// runtime for further inspection.
type Result struct {
	Trace *trace.Trace
	Heap  *pmem.Heap
}

// f2b / b2f move float64 values through the persistent heap's word
// interface.
func f2b(f float64) uint64 { return math.Float64bits(f) }
func b2f(b uint64) float64 { return math.Float64frombits(b) }

// storeF persists one float64 through the runtime.
func storeF(th *atlas.Thread, addr uint64, v float64) { th.Store64(addr, f2b(v)) }

// loadF reads one float64.
func loadF(th *atlas.Thread, addr uint64) float64 { return b2f(th.Load64(addr)) }

func newRuntime(heapBytes int, kind core.PolicyKind) (*atlas.Runtime, *atlas.Thread, error) {
	h := pmem.New(heapBytes)
	opts := atlas.DefaultOptions()
	opts.Policy = kind
	opts.LogEntries = 1 << 15
	rt := atlas.NewRuntime(h, opts)
	th, err := rt.NewThread()
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: %w", err)
	}
	return rt, th, nil
}
