package kernels

import (
	"math"

	"nvmcache/internal/core"
)

// NBody integrates N gravitating bodies with a leapfrog step and direct
// O(n²) forces — the computational regime of barnes/fmm, with the same
// persistence shape: every timestep updates each body's position and
// velocity in persistent memory inside one failure-atomic section, so a
// crash never exposes a half-advanced system.
//
// Persistent layout per body: x, y, vx, vy, m padded to one cache line
// (eight words), the usual HPC structure padding that also keeps one
// body's update inside one line.
type NBodyConfig struct {
	Bodies int
	Steps  int // failure-atomic checkpoints
	// SubstepsPerFASE integrates this many leapfrog substeps per durable
	// checkpoint: the persistent state is rewritten several times inside
	// one section, the barnes/fmm write-combining opportunity.
	SubstepsPerFASE int
	DT              float64
	Policy          core.PolicyKind
}

// DefaultNBody is a small but non-trivial system.
func DefaultNBody() NBodyConfig {
	return NBodyConfig{Bodies: 40, Steps: 10, SubstepsPerFASE: 4, DT: 1e-3, Policy: core.SoftCacheOnline}
}

const bodyWords = 8 // x, y, vx, vy, m + line padding

// NBodyResult carries the trace plus end-state physics for validation.
type NBodyResult struct {
	Result
	// Momentum of the final state (must be conserved by symmetry).
	Px, Py float64
	// Energy of the final state (drifts only slightly under leapfrog).
	Energy float64
}

// RunNBody executes the kernel.
func RunNBody(c NBodyConfig) (*NBodyResult, error) {
	if c.Bodies < 2 {
		c.Bodies = 2
	}
	rt, th, err := newRuntime(1<<22+64*bodyWords*8*c.Bodies, c.Policy)
	if err != nil {
		return nil, err
	}
	h := rt.Heap()
	base, err := h.AllocLines(uint64(8 * bodyWords * c.Bodies))
	if err != nil {
		return nil, err
	}
	addr := func(i, w int) uint64 { return base + uint64(8*(bodyWords*i+w)) }

	// Initialization FASE: a ring of bodies with tangential velocities
	// (deterministic, momentum-free by symmetry).
	th.FASEBegin()
	for i := 0; i < c.Bodies; i++ {
		ang := 2 * math.Pi * float64(i) / float64(c.Bodies)
		storeF(th, addr(i, 0), math.Cos(ang))      // x
		storeF(th, addr(i, 1), math.Sin(ang))      // y
		storeF(th, addr(i, 2), -math.Sin(ang)*0.3) // vx
		storeF(th, addr(i, 3), math.Cos(ang)*0.3)  // vy
		storeF(th, addr(i, 4), 1.0)                // m
	}
	th.FASEEnd()

	if c.SubstepsPerFASE < 1 {
		c.SubstepsPerFASE = 1
	}
	const soft = 1e-2 // softening avoids singular forces
	fx := make([]float64, c.Bodies)
	fy := make([]float64, c.Bodies)
	for step := 0; step < c.Steps; step++ {
		// One FASE per checkpoint: several substeps advance atomically,
		// rewriting every body's record each substep.
		th.FASEBegin()
		for sub := 0; sub < c.SubstepsPerFASE; sub++ {
			// Forces are computed from the (persistent) positions into
			// volatile scratch; only the state update is persistent.
			for i := range fx {
				fx[i], fy[i] = 0, 0
			}
			for i := 0; i < c.Bodies; i++ {
				xi, yi := loadF(th, addr(i, 0)), loadF(th, addr(i, 1))
				mi := loadF(th, addr(i, 4))
				for j := i + 1; j < c.Bodies; j++ {
					dx := loadF(th, addr(j, 0)) - xi
					dy := loadF(th, addr(j, 1)) - yi
					mj := loadF(th, addr(j, 4))
					inv := 1 / math.Pow(dx*dx+dy*dy+soft, 1.5)
					f := mi * mj * inv
					fx[i] += f * dx
					fy[i] += f * dy
					fx[j] -= f * dx
					fy[j] -= f * dy
				}
			}
			for i := 0; i < c.Bodies; i++ {
				m := loadF(th, addr(i, 4))
				vx := loadF(th, addr(i, 2)) + c.DT*fx[i]/m
				vy := loadF(th, addr(i, 3)) + c.DT*fy[i]/m
				storeF(th, addr(i, 2), vx)
				storeF(th, addr(i, 3), vy)
				storeF(th, addr(i, 0), loadF(th, addr(i, 0))+c.DT*vx)
				storeF(th, addr(i, 1), loadF(th, addr(i, 1))+c.DT*vy)
			}
		}
		th.FASEEnd()
	}
	rt.Close()

	res := &NBodyResult{Result: Result{Trace: rt.Trace(), Heap: h}}
	for i := 0; i < c.Bodies; i++ {
		m := loadF(th, addr(i, 4))
		vx, vy := loadF(th, addr(i, 2)), loadF(th, addr(i, 3))
		res.Px += m * vx
		res.Py += m * vy
		res.Energy += 0.5 * m * (vx*vx + vy*vy)
	}
	for i := 0; i < c.Bodies; i++ {
		xi, yi := loadF(th, addr(i, 0)), loadF(th, addr(i, 1))
		for j := i + 1; j < c.Bodies; j++ {
			dx, dy := loadF(th, addr(j, 0))-xi, loadF(th, addr(j, 1))-yi
			res.Energy -= loadF(th, addr(i, 4)) * loadF(th, addr(j, 4)) /
				math.Sqrt(dx*dx+dy*dy+soft)
		}
	}
	return res, nil
}
