package kernels

import (
	"math"
	"testing"

	"nvmcache/internal/core"
	"nvmcache/internal/trace"
)

// ratios computes LA/AT/SC flush ratios for a kernel's trace.
func ratios(t *testing.T, tr *trace.Trace) (la, at, sc float64) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.BurstLength = 2048
	return core.FlushRatio(core.Lazy, cfg, tr),
		core.FlushRatio(core.AtlasTable, cfg, tr),
		core.FlushRatio(core.SoftCacheOnline, cfg, tr)
}

func TestNBodyPhysicsAndPersistence(t *testing.T) {
	res, err := RunNBody(DefaultNBody())
	if err != nil {
		t.Fatal(err)
	}
	// Momentum conservation (ring initialization sums to zero; pairwise
	// forces cancel exactly in the integrator).
	if math.Abs(res.Px) > 1e-9 || math.Abs(res.Py) > 1e-9 {
		t.Errorf("momentum not conserved: (%g, %g)", res.Px, res.Py)
	}
	st := trace.ComputeStats(res.Trace)
	// One init FASE + one per checkpoint.
	if st.TotalFASEs != 11 {
		t.Errorf("FASEs = %d, want 11", st.TotalFASEs)
	}
	la, at, sc := ratios(t, res.Trace)
	if !(la <= sc+1e-12 && sc <= at+1e-12 && at < 1) {
		t.Errorf("ratio ordering: LA %v SC %v AT %v", la, sc, at)
	}
	// Cross-substep reuse: the 40-line body array is rewritten 4x per
	// FASE. AT's sequential-line stream cycles its 8 slots (lines l and
	// l+8 collide) while a 40+-line LRU cache combines the rewrites: SC
	// must clearly beat AT.
	if at < 2*sc {
		t.Errorf("SC (%v) did not clearly beat AT (%v) on n-body", sc, at)
	}
}

func TestNBodyCrashLeavesConsistentStep(t *testing.T) {
	// Not a crash mid-run (RunNBody owns its runtime); instead verify the
	// whole run is durable: a crash after Close loses nothing.
	res, err := RunNBody(NBodyConfig{Bodies: 16, Steps: 5, SubstepsPerFASE: 2, DT: 1e-3, Policy: core.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	before := res.Heap.ReadUint64(64) // first body word, arbitrary probe
	res.Heap.Crash()
	if got := res.Heap.ReadUint64(64); got != before {
		t.Error("committed state lost at crash")
	}
}

func TestStencilConverges(t *testing.T) {
	res, err := RunStencil(DefaultStencil())
	if err != nil {
		t.Fatal(err)
	}
	// Residual decreases with iteration count.
	short, err := RunStencil(StencilConfig{N: 48, Iters: 3, Policy: core.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual >= short.Residual {
		t.Errorf("residual did not decrease: %g after 30 iters vs %g after 3", res.Residual, short.Residual)
	}
	// Heat flows in from the west boundary: center strictly between 0 and 1.
	if !(res.Center > 0 && res.Center < 1) {
		t.Errorf("center = %g", res.Center)
	}
	// Ocean regime: the sweep working set exceeds every bounded cache, so
	// no policy gets far below LA, and AT thrashes on the row stream.
	la, at, sc := ratios(t, res.Trace)
	if !(la <= sc+1e-12 && sc <= at+1e-12) {
		t.Errorf("ratio ordering: LA %v SC %v AT %v", la, sc, at)
	}
}

func TestMDStaysInBoxAndBounded(t *testing.T) {
	res, err := RunMD(DefaultMD())
	if err != nil {
		t.Fatal(err)
	}
	if !res.InBox {
		t.Error("particle escaped the periodic box")
	}
	if math.IsNaN(res.Kinetic) || res.Kinetic <= 0 || res.Kinetic > 10 {
		t.Errorf("kinetic energy %g implausible", res.Kinetic)
	}
	st := trace.ComputeStats(res.Trace)
	if st.TotalFASEs != int64(DefaultMD().Steps)+1 {
		t.Errorf("FASEs = %d", st.TotalFASEs)
	}
	la, at, sc := ratios(t, res.Trace)
	if !(la <= sc+1e-12 && sc <= at+1e-12) {
		t.Errorf("ratio ordering: LA %v SC %v AT %v", la, sc, at)
	}
}

func TestKernelsDeterministic(t *testing.T) {
	a, err := RunMD(MDConfig{Particles: 32, Cells: 2, Steps: 5, DT: 5e-4, Policy: core.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMD(MDConfig{Particles: 32, Cells: 2, Steps: 5, DT: 5e-4, Policy: core.Lazy})
	if err != nil {
		t.Fatal(err)
	}
	if a.Kinetic != b.Kinetic {
		t.Error("MD not deterministic")
	}
	sa := trace.ComputeStats(a.Trace)
	sb := trace.ComputeStats(b.Trace)
	if sa != sb {
		t.Errorf("traces differ: %+v vs %+v", sa, sb)
	}
}

// The kernels' traces drive the full adaptive pipeline: the controller
// picks a capacity related to each kernel's natural write working set.
func TestKernelAdaptiveSelection(t *testing.T) {
	res, err := RunMD(DefaultMD())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.BurstLength = 1024
	p := core.NewPolicy(core.SoftCacheOnline, cfg, core.NewCountingSink(nil))
	core.RunSeq(p, res.Trace.Threads[0])
	rep := p.(core.SizeReporter).AdaptReport()
	if !rep.Adapted {
		t.Fatal("no adaptation on MD trace")
	}
	// MD's intra-record runs make even capacity 1 combine most writes;
	// the selection must land somewhere admissible and non-defaulted.
	if rep.ChosenSize < 1 || rep.ChosenSize > 50 {
		t.Errorf("chosen size %d out of range", rep.ChosenSize)
	}
}
