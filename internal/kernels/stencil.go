package kernels

import (
	"math"

	"nvmcache/internal/core"
)

// Stencil runs a 2-D Jacobi relaxation over a persistent grid — ocean's
// regime: row-major sweeps over data far larger than any bounded software
// cache, with each iteration a failure-atomic section. The solver relaxes
// the interior of a grid whose boundary is held at fixed values; it
// converges to the discrete harmonic solution.
type StencilConfig struct {
	N      int // grid side (including boundary)
	Iters  int
	Policy core.PolicyKind
}

// DefaultStencil is big enough to exceed the 50-line cache bound per
// sweep (a 48×48 interior writes ~2300 words ≈ 300 lines per iteration).
func DefaultStencil() StencilConfig {
	return StencilConfig{N: 48, Iters: 30, Policy: core.SoftCacheOnline}
}

// StencilResult carries the trace and convergence diagnostics.
type StencilResult struct {
	Result
	// Residual is the max |Δ| of the final iteration.
	Residual float64
	// Center is the final value at the grid center.
	Center float64
}

// RunStencil executes the kernel with double buffering: both grids are
// persistent, and each iteration writes one of them plus a persistent
// "current buffer" flag, all in one FASE.
func RunStencil(c StencilConfig) (*StencilResult, error) {
	if c.N < 4 {
		c.N = 4
	}
	n := c.N
	rt, th, err := newRuntime(1<<22+2*64*(n*n/8+n), c.Policy)
	if err != nil {
		return nil, err
	}
	h := rt.Heap()
	gridBytes := uint64(8 * n * n)
	a, err := h.AllocLines(gridBytes)
	if err != nil {
		return nil, err
	}
	b, err := h.AllocLines(gridBytes)
	if err != nil {
		return nil, err
	}
	flag, err := h.AllocLines(8)
	if err != nil {
		return nil, err
	}
	at := func(base uint64, i, j int) uint64 { return base + uint64(8*(i*n+j)) }

	// Init FASE: zero interior, hot west boundary (value 1).
	th.FASEBegin()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.0
			if j == 0 {
				v = 1.0
			}
			storeF(th, at(a, i, j), v)
			storeF(th, at(b, i, j), v)
		}
	}
	th.Store64(flag, 0)
	th.FASEEnd()

	src, dst := a, b
	var residual float64
	for it := 0; it < c.Iters; it++ {
		residual = 0
		th.FASEBegin()
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				v := 0.25 * (loadF(th, at(src, i-1, j)) + loadF(th, at(src, i+1, j)) +
					loadF(th, at(src, i, j-1)) + loadF(th, at(src, i, j+1)))
				if d := math.Abs(v - loadF(th, at(src, i, j))); d > residual {
					residual = d
				}
				storeF(th, at(dst, i, j), v)
			}
		}
		th.Store64(flag, uint64(it%2)+1) // which buffer is current
		th.FASEEnd()
		src, dst = dst, src
	}
	rt.Close()

	return &StencilResult{
		Result:   Result{Trace: rt.Trace(), Heap: h},
		Residual: residual,
		Center:   loadF(th, at(src, n/2, n/2)),
	}, nil
}
