package kernels

import (
	"math"

	"nvmcache/internal/core"
)

// MD runs a cell-list molecular dynamics step — the water-nsquared /
// water-spatial regime: particles partitioned into spatial cells, each
// timestep sweeping cell by cell with short-range pair forces, persistent
// positions and velocities updated per cell inside one FASE per step. The
// per-cell sweeps produce the small, repeatedly-revisited write working
// sets whose MRC knee the adaptive cache discovers.
type MDConfig struct {
	Particles int
	Cells     int // cells per side (Cells×Cells grid over the unit box)
	Steps     int
	DT        float64
	Policy    core.PolicyKind
}

// DefaultMD is water-sized in miniature.
func DefaultMD() MDConfig {
	return MDConfig{Particles: 128, Cells: 4, Steps: 25, DT: 5e-4, Policy: core.SoftCacheOnline}
}

const partWords = 4 // x, y, vx, vy

// MDResult carries the trace and physics diagnostics.
type MDResult struct {
	Result
	// Kinetic energy of the final state.
	Kinetic float64
	// InBox reports whether every particle stayed inside the periodic box.
	InBox bool
}

// RunMD executes the kernel.
func RunMD(c MDConfig) (*MDResult, error) {
	if c.Particles < 4 {
		c.Particles = 4
	}
	if c.Cells < 1 {
		c.Cells = 1
	}
	rt, th, err := newRuntime(1<<22+64*partWords*c.Particles, c.Policy)
	if err != nil {
		return nil, err
	}
	h := rt.Heap()
	base, err := h.AllocLines(uint64(8 * partWords * c.Particles))
	if err != nil {
		return nil, err
	}
	addr := func(i, w int) uint64 { return base + uint64(8*(partWords*i+w)) }

	// Init FASE: particles on a jittered lattice, small deterministic
	// velocities.
	side := int(math.Ceil(math.Sqrt(float64(c.Particles))))
	th.FASEBegin()
	for i := 0; i < c.Particles; i++ {
		gx, gy := i%side, i/side
		storeF(th, addr(i, 0), (float64(gx)+0.5+0.1*math.Sin(float64(i)))/float64(side))
		storeF(th, addr(i, 1), (float64(gy)+0.5+0.1*math.Cos(float64(i)))/float64(side))
		storeF(th, addr(i, 2), 0.05*math.Sin(float64(3*i)))
		storeF(th, addr(i, 3), 0.05*math.Cos(float64(5*i)))
	}
	th.FASEEnd()

	cutoff := 1.0 / float64(c.Cells)
	cells := make([][]int, c.Cells*c.Cells)
	fx := make([]float64, c.Particles)
	fy := make([]float64, c.Particles)
	cellOf := func(x, y float64) int {
		cx := int(x * float64(c.Cells))
		cy := int(y * float64(c.Cells))
		if cx < 0 {
			cx = 0
		}
		if cx >= c.Cells {
			cx = c.Cells - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= c.Cells {
			cy = c.Cells - 1
		}
		return cy*c.Cells + cx
	}

	for step := 0; step < c.Steps; step++ {
		// Rebuild cell lists from persistent positions (volatile scratch).
		for i := range cells {
			cells[i] = cells[i][:0]
		}
		for i := 0; i < c.Particles; i++ {
			cells[cellOf(loadF(th, addr(i, 0)), loadF(th, addr(i, 1)))] =
				append(cells[cellOf(loadF(th, addr(i, 0)), loadF(th, addr(i, 1)))], i)
		}
		for i := range fx {
			fx[i], fy[i] = 0, 0
		}
		// Short-range repulsive forces within and between adjacent cells.
		for cy := 0; cy < c.Cells; cy++ {
			for cx := 0; cx < c.Cells; cx++ {
				for _, i := range cells[cy*c.Cells+cx] {
					xi, yi := loadF(th, addr(i, 0)), loadF(th, addr(i, 1))
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							nx, ny := cx+dx, cy+dy
							if nx < 0 || ny < 0 || nx >= c.Cells || ny >= c.Cells {
								continue
							}
							for _, j := range cells[ny*c.Cells+nx] {
								if j <= i {
									continue
								}
								ddx := loadF(th, addr(j, 0)) - xi
								ddy := loadF(th, addr(j, 1)) - yi
								r2 := ddx*ddx + ddy*ddy
								if r2 > cutoff*cutoff || r2 == 0 {
									continue
								}
								f := 1e-3 * (cutoff*cutoff - r2) / r2
								fx[i] -= f * ddx
								fy[i] -= f * ddy
								fx[j] += f * ddx
								fy[j] += f * ddy
							}
						}
					}
				}
			}
		}
		// One FASE per step, swept cell by cell (the water write pattern).
		th.FASEBegin()
		for ci := range cells {
			for _, i := range cells[ci] {
				vx := loadF(th, addr(i, 2)) + c.DT*fx[i]
				vy := loadF(th, addr(i, 3)) + c.DT*fy[i]
				x := math.Mod(loadF(th, addr(i, 0))+c.DT*vx+1, 1)
				y := math.Mod(loadF(th, addr(i, 1))+c.DT*vy+1, 1)
				storeF(th, addr(i, 2), vx)
				storeF(th, addr(i, 3), vy)
				storeF(th, addr(i, 0), x)
				storeF(th, addr(i, 1), y)
			}
		}
		th.FASEEnd()
	}
	rt.Close()

	res := &MDResult{Result: Result{Trace: rt.Trace(), Heap: h}, InBox: true}
	for i := 0; i < c.Particles; i++ {
		vx, vy := loadF(th, addr(i, 2)), loadF(th, addr(i, 3))
		res.Kinetic += 0.5 * (vx*vx + vy*vy)
		x, y := loadF(th, addr(i, 0)), loadF(th, addr(i, 1))
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			res.InBox = false
		}
	}
	return res, nil
}
