// Package sampling implements the bursty trace sampling used for online
// MRC analysis (Section III-C, after Arnold–Ryder): execution is divided
// into bursts, during which persistent writes are recorded, and hibernation
// periods, during which monitoring is off. The paper uses one burst of 64M
// writes and an infinite hibernation ("we found it is sufficient to analyze
// MRC just once"), which is the default here too.
//
// The sampler performs FASE renaming on the fly (unique ids per FASE per
// line), so its output feeds internal/locality directly.
package sampling

import "nvmcache/internal/trace"

// Config controls one sampler.
type Config struct {
	// BurstLength is the number of persistent writes recorded per burst.
	BurstLength int
	// Hibernation is the number of writes skipped between bursts;
	// Infinite (the default, matching the paper) means a single burst.
	Hibernation int64
}

// Infinite hibernation: sample exactly one burst.
const Infinite int64 = -1

// DefaultConfig matches the paper's setting scaled to this repository's
// default workload sizes: one burst, infinite hibernation. The burst length
// is chosen by the caller (the paper uses 64M writes at full scale).
func DefaultConfig(burst int) Config {
	return Config{BurstLength: burst, Hibernation: Infinite}
}

// Sampler collects renamed write bursts from one thread's store stream.
type Sampler struct {
	cfg       Config
	burst     []uint64
	ids       map[trace.LineAddr]uint64
	next      uint64
	skipped   int64
	sleeping  bool
	completed int // bursts finished
}

// New returns a sampler in the collecting state.
func New(cfg Config) *Sampler {
	if cfg.BurstLength <= 0 {
		cfg.BurstLength = 1
	}
	return &Sampler{
		cfg:   cfg,
		burst: make([]uint64, 0, cfg.BurstLength),
		ids:   make(map[trace.LineAddr]uint64, 256),
	}
}

// RecordStore feeds one persistent store. It reports true exactly when this
// store completes a burst; the caller then reads Burst, acts on it
// (computes the MRC, adapts the cache) and calls Reset if more bursts are
// wanted.
func (s *Sampler) RecordStore(line trace.LineAddr) (burstDone bool) {
	if s.sleeping {
		s.skipped++
		if s.cfg.Hibernation >= 0 && s.skipped >= s.cfg.Hibernation {
			s.wake()
		}
		return false
	}
	id, ok := s.ids[line]
	if !ok {
		id = s.next
		s.next++
		s.ids[line] = id
	}
	s.burst = append(s.burst, id)
	if len(s.burst) >= s.cfg.BurstLength {
		s.completed++
		s.sleeping = true
		s.skipped = 0
		return true
	}
	return false
}

// FASEEnd marks a failure-atomic section boundary: subsequent writes to the
// same lines are new data for locality purposes (Section III-B renaming).
func (s *Sampler) FASEEnd() {
	if !s.sleeping {
		clear(s.ids)
	}
}

// Burst returns the most recently completed (or in-progress) burst.
func (s *Sampler) Burst() []uint64 { return s.burst }

// Collecting reports whether the sampler is currently recording.
func (s *Sampler) Collecting() bool { return !s.sleeping }

// Completed reports how many bursts have finished.
func (s *Sampler) Completed() int { return s.completed }

// Analyzed returns the total number of writes recorded so far; the cost
// models charge online-analysis cycles proportionally to it.
func (s *Sampler) Analyzed() int64 { return int64(len(s.burst)) }

func (s *Sampler) wake() {
	s.sleeping = false
	s.burst = s.burst[:0]
	clear(s.ids)
	s.next = 0
}

// Reset forces the sampler back to collecting, discarding burst state.
// Exposed for tests and for callers that implement their own hibernation
// policy.
func (s *Sampler) Reset() { s.wake() }
