package sampling

import (
	"reflect"
	"testing"
)

func TestBurstCompletion(t *testing.T) {
	s := New(Config{BurstLength: 3, Hibernation: Infinite})
	if done := s.RecordStore(1); done {
		t.Fatal("burst done after 1 write")
	}
	if done := s.RecordStore(2); done {
		t.Fatal("burst done after 2 writes")
	}
	if done := s.RecordStore(1); !done {
		t.Fatal("burst not done after 3 writes")
	}
	if got := s.Burst(); !reflect.DeepEqual(got, []uint64{0, 1, 0}) {
		t.Errorf("burst = %v", got)
	}
	if s.Completed() != 1 {
		t.Errorf("Completed = %d", s.Completed())
	}
}

func TestInfiniteHibernation(t *testing.T) {
	s := New(Config{BurstLength: 1, Hibernation: Infinite})
	s.RecordStore(1)
	for i := 0; i < 100; i++ {
		if done := s.RecordStore(2); done {
			t.Fatal("sampler woke from infinite hibernation")
		}
	}
	if s.Collecting() {
		t.Fatal("still collecting")
	}
}

func TestFiniteHibernationWakes(t *testing.T) {
	s := New(Config{BurstLength: 2, Hibernation: 3})
	s.RecordStore(1)
	s.RecordStore(2) // burst 1 done
	for i := 0; i < 3; i++ {
		if s.Collecting() {
			t.Fatalf("collecting during hibernation write %d", i)
		}
		s.RecordStore(9)
	}
	if !s.Collecting() {
		t.Fatal("did not wake after hibernation")
	}
	s.RecordStore(5)
	if done := s.RecordStore(5); !done {
		t.Fatal("second burst did not complete")
	}
	if s.Completed() != 2 {
		t.Errorf("Completed = %d", s.Completed())
	}
	// Renaming namespace restarts per burst.
	if got := s.Burst(); !reflect.DeepEqual(got, []uint64{0, 0}) {
		t.Errorf("burst 2 = %v", got)
	}
}

func TestFASEEndRenamesWithinBurst(t *testing.T) {
	s := New(Config{BurstLength: 4, Hibernation: Infinite})
	s.RecordStore(7)
	s.RecordStore(7)
	s.FASEEnd()
	s.RecordStore(7)
	s.RecordStore(7)
	// ab|ab semantics: 7 before and after the boundary are distinct data.
	if got := s.Burst(); !reflect.DeepEqual(got, []uint64{0, 0, 1, 1}) {
		t.Errorf("burst = %v", got)
	}
}

func TestAnalyzedCount(t *testing.T) {
	s := New(Config{BurstLength: 10, Hibernation: Infinite})
	for i := 0; i < 4; i++ {
		s.RecordStore(1)
	}
	if s.Analyzed() != 4 {
		t.Errorf("Analyzed = %d", s.Analyzed())
	}
}

func TestZeroBurstLengthClamped(t *testing.T) {
	s := New(Config{BurstLength: 0})
	if done := s.RecordStore(1); !done {
		t.Fatal("clamped burst length 1 should complete immediately")
	}
}

func TestReset(t *testing.T) {
	s := New(Config{BurstLength: 2, Hibernation: Infinite})
	s.RecordStore(1)
	s.RecordStore(2)
	if s.Collecting() {
		t.Fatal("should hibernate")
	}
	s.Reset()
	if !s.Collecting() || len(s.Burst()) != 0 {
		t.Fatal("Reset did not restart collection")
	}
}
