package kv

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nvmcache/internal/core"
	"nvmcache/internal/hwsim"
	"nvmcache/internal/pmem"
)

// latRingCap bounds the per-shard commit-latency sample buffer: percentiles
// reflect the most recent ~4k commits.
const latRingCap = 4096

// counters is the shard's instrumentation. The writer goroutine updates
// the atomics at batch boundaries (flush counters are snapshots of the
// thread's totals, published after each commit so observers never race the
// mutating thread); gets is bumped by reader goroutines directly.
type counters struct {
	puts, dels   atomic.Uint64
	incrs, decrs atomic.Uint64
	gets         atomic.Uint64
	scans        atomic.Uint64
	batches      atomic.Uint64
	batchedOps   atomic.Uint64
	aborts       atomic.Uint64

	// Absorption accounting over acked mutations: committed is the
	// physical op count the FASEs executed, absorbed the logical ops folded
	// away before reaching one; absorbed+committed == acked mutations.
	// The *C counters tally accumulator commits by trigger.
	absorbed, committed               atomic.Uint64
	absorbThresholdC, absorbDeadlineC atomic.Uint64
	flushAsync                        atomic.Int64
	flushDrained                      atomic.Int64
	flushBarriers                     atomic.Int64

	// Checkpoint/journal accounting (all zero while checkpointing is off).
	// ckpts/ckptSkipped count publish attempts by outcome; ckptPairs and
	// ckptLastGen are gauges describing the newest image; jrnOps counts
	// sealed redo entries, jrnTruncated entries released by truncation, and
	// jrnOverflows trips of the overflow protocol.
	ckpts, ckptSkipped     atomic.Uint64
	ckptPairs, ckptLastGen atomic.Uint64
	jrnOps, jrnTruncated   atomic.Uint64
	jrnOverflows           atomic.Uint64

	// Recovery gauges, set once when the store is built by Recover: the
	// mode the shard recovered by (RecoveryMode*), images skipped to reach
	// a usable source, pairs restored from the image, and journal entries
	// replayed behind it.
	recMode, recFallbacks    atomic.Uint64
	recReplayed, recRestored atomic.Uint64

	// Flush-pipeline snapshots (zero while the pipeline is disabled),
	// published like the flush counters above. The snapshot is taken at the
	// batch's publish, so gauges lag the live pipeline by at most one batch.
	pipeBatches  atomic.Int64
	pipeLines    atomic.Int64
	pipeBatchMax atomic.Int64
	pipeEpochs   atomic.Int64
	pipeDepthMax atomic.Int64
	pipeStalls   atomic.Int64
	pipeStallNs  atomic.Int64
	pipeAwaitNs  atomic.Int64

	latMu   sync.Mutex
	lats    []float64 // ring of recent commit latencies, simulated cycles
	latNext int
}

// note records one committed batch: operation mix, absorption accounting
// (applied is the physical op count the FASE executed; the remainder of
// the batch was absorbed), flush-counter snapshot, and the commit's drain
// latency in simulated cycles.
func (sh *shard) note(batch []request, applied int, pre, post core.FlushStats) {
	sh.noteOps(batch)
	sh.batches.Add(1)
	sh.batchesSince++
	logical := logicalOps(batch)
	sh.batchedOps.Add(uint64(logical))
	sh.committed.Add(uint64(applied))
	if n := logical - applied; n > 0 {
		sh.absorbed.Add(uint64(n))
	}
	sh.flushAsync.Store(post.Async)
	sh.flushDrained.Store(post.Drained)
	sh.flushBarriers.Store(post.Barriers)
	sh.pipeBatches.Store(post.PipeBatches)
	sh.pipeLines.Store(post.PipeBatchLines)
	sh.pipeBatchMax.Store(post.PipeBatchMax)
	sh.pipeEpochs.Store(post.PipeEpochs)
	sh.pipeDepthMax.Store(post.PipeDepthMax)
	sh.pipeStalls.Store(post.PipeStalls)
	sh.pipeStallNs.Store(post.PipeStallNanos)
	sh.pipeAwaitNs.Store(post.PipeAwaitNanos)
	sh.recordLatency(commitCycles(post.Drained - pre.Drained))
}

// noteOps counts acked operations by kind (shared by the FASE and the
// net-null no-FASE ack paths).
func (sh *shard) noteOps(batch []request) {
	var nput, ndel, nincr, ndecr uint64
	for i := range batch {
		switch batch[i].op {
		case opPut:
			nput++
		case opPuts:
			nput += uint64(len(batch[i].pairs))
		case opDel:
			ndel++
		case opIncr:
			nincr++
		case opDecr:
			ndecr++
		}
	}
	sh.puts.Add(nput)
	sh.dels.Add(ndel)
	sh.incrs.Add(nincr)
	sh.decrs.Add(ndecr)
}

func (sh *shard) recordLatency(cycles float64) {
	sh.latMu.Lock()
	if len(sh.lats) < latRingCap {
		sh.lats = append(sh.lats, cycles)
	} else {
		sh.lats[sh.latNext] = cycles
		sh.latNext = (sh.latNext + 1) % latRingCap
	}
	sh.latMu.Unlock()
}

// commitCycles converts a commit's FASE-end drain into simulated cycles
// using the repository's calibrated cost model: every drained line pays
// its issue cost, and write-back waves of MaxOutstanding lines proceed in
// parallel but cannot overlap with computation (the drain is the stall the
// paper's Section II-A describes).
func commitCycles(drained int64) float64 {
	if drained < 0 {
		drained = 0
	}
	cm := hwsim.DefaultCostModel()
	waves := math.Ceil(float64(drained) / float64(cm.MaxOutstanding))
	return cm.FASEOverhead + float64(drained)*cm.FlushIssue + waves*cm.FlushLatency
}

// ShardStats is one shard's instrumentation snapshot.
type ShardStats struct {
	Shard int
	// Operation counts (committed mutations and served reads/scans).
	Puts, Deletes, Gets, Scans uint64
	// Counter mutations (acked Incr/Decr).
	Incrs, Decrs uint64
	// Group-commit shape.
	Batches, BatchedOps uint64
	// Absorption accounting: Committed physical ops executed by FASEs vs
	// Absorbed logical ops folded away before reaching one
	// (Absorbed+Committed == acked mutations), plus accumulator commits by
	// trigger. All zero-ratio when Options.Absorb is disabled (Committed
	// then equals the acked mutation count).
	Absorbed, Committed                           uint64
	AbsorbThresholdCommits, AbsorbDeadlineCommits uint64
	// Aborted batches (shed load, e.g. pool exhaustion).
	Aborts uint64
	// Flush counters of the shard's persistence policy: async (overlapped,
	// mid-FASE evictions), drained (FASE-end stalls), barriers (empty
	// drains).
	AsyncFlushes, DrainedFlushes, Barriers int64
	// Commit drain latency percentiles over recent batches, in simulated
	// cycles.
	CommitP50, CommitP99 float64
	// Flush-pipeline instrumentation (all zero when Options.Pipeline is
	// disabled): worker batches handed to the inner sink and their total /
	// largest line count, epochs published, the ring-depth high-water mark,
	// backpressure stall events with their cumulative wall time, and the
	// wall time the writer spent awaiting epoch persistence at settle.
	PipeBatches, PipeBatchLines, PipeBatchMax int64
	PipeEpochs, PipeDepthMax                  int64
	PipeStalls, PipeStallNanos                int64
	PipeAwaitNanos                            int64
	// Adaptive control-plane gauges (all zero when Options.Adaptive is
	// disabled): the write-cache capacity currently in effect, the sequence
	// number of the shard's newest control decision, capacity retargets
	// requested so far, and total line writes recorded into completed
	// sampling bursts.
	AdaptiveCap, AdaptiveLast       int64
	AdaptiveResizes, AdaptiveSample int64
	// Checkpoint/journal instrumentation (all zero when
	// Options.Checkpoint is disabled): images published and attempts
	// skipped, the newest image's pair count and generation, redo-journal
	// entries sealed / released by truncation, and overflow-protocol trips.
	Checkpoints, CheckpointSkipped     uint64
	CheckpointPairs, CheckpointLastGen uint64
	JournalOps, JournalTruncated       uint64
	JournalOverflows                   uint64
	// Recovery gauges, set by Recover and constant for the store's life:
	// the mode the shard recovered by (RecoveryMode*), images skipped to
	// reach a usable one, pairs restored from it, and journal entries
	// replayed behind it.
	RecoveryMode, RecoveryFallbacks    uint64
	RecoveryRestored, RecoveryReplayed uint64
}

// AvgBatch returns the mean committed batch size.
func (st ShardStats) AvgBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedOps) / float64(st.Batches)
}

// AbsorbRatio returns the fraction of acked mutations absorbed before
// reaching a FASE (0 with absorption off or no mutations yet).
func (st ShardStats) AbsorbRatio() float64 {
	if st.Absorbed+st.Committed == 0 {
		return 0
	}
	return float64(st.Absorbed) / float64(st.Absorbed+st.Committed)
}

// Flushes returns all line flushes (async + drained).
func (st ShardStats) Flushes() int64 { return st.AsyncFlushes + st.DrainedFlushes }

// FlushRatio returns line flushes per committed mutation — the service-
// level analogue of the paper's Table III flush ratio; group commit lowers
// it by amortizing page copies and the FASE-end drain across the batch.
func (st ShardStats) FlushRatio() float64 {
	if st.BatchedOps == 0 {
		return 0
	}
	return float64(st.Flushes()) / float64(st.BatchedOps)
}

// Pairs returns every field as a `key=value` token with the keys in
// sorted order. The key set is fixed (pipeline gauges are present even when
// the pipeline is off), so STATS output is a stable, machine-diffable
// schema: internal/nvclient parses these tokens and internal/loadgen diffs
// two snapshots to report per-run server-side deltas in BENCH_*.json.
// Values are plain decimals; units live in the key name (_cyc, _ms).
func (st ShardStats) Pairs() []string {
	pairs := []string{
		fmt.Sprintf("aborts=%d", st.Aborts),
		fmt.Sprintf("absorb_commits_deadline=%d", st.AbsorbDeadlineCommits),
		fmt.Sprintf("absorb_commits_threshold=%d", st.AbsorbThresholdCommits),
		fmt.Sprintf("absorb_ratio=%.3f", st.AbsorbRatio()),
		fmt.Sprintf("absorbed_ops=%d", st.Absorbed),
		fmt.Sprintf("committed_ops=%d", st.Committed),
		fmt.Sprintf("decrs=%d", st.Decrs),
		fmt.Sprintf("incrs=%d", st.Incrs),
		fmt.Sprintf("adaptive_cap=%d", st.AdaptiveCap),
		fmt.Sprintf("adaptive_last=%d", st.AdaptiveLast),
		fmt.Sprintf("adaptive_resizes=%d", st.AdaptiveResizes),
		fmt.Sprintf("adaptive_sampled=%d", st.AdaptiveSample),
		fmt.Sprintf("avg_batch=%.2f", st.AvgBatch()),
		fmt.Sprintf("batches=%d", st.Batches),
		fmt.Sprintf("checkpoint_last_gen=%d", st.CheckpointLastGen),
		fmt.Sprintf("checkpoint_pairs=%d", st.CheckpointPairs),
		fmt.Sprintf("checkpoint_skipped=%d", st.CheckpointSkipped),
		fmt.Sprintf("checkpoints=%d", st.Checkpoints),
		fmt.Sprintf("commit_p50_cyc=%.0f", st.CommitP50),
		fmt.Sprintf("commit_p99_cyc=%.0f", st.CommitP99),
		fmt.Sprintf("dels=%d", st.Deletes),
		fmt.Sprintf("flush_async=%d", st.AsyncFlushes),
		fmt.Sprintf("flush_barriers=%d", st.Barriers),
		fmt.Sprintf("flush_drained=%d", st.DrainedFlushes),
		fmt.Sprintf("flush_ratio=%.3f", st.FlushRatio()),
		fmt.Sprintf("flushes=%d", st.Flushes()),
		fmt.Sprintf("gets=%d", st.Gets),
		fmt.Sprintf("journal_ops=%d", st.JournalOps),
		fmt.Sprintf("journal_overflows=%d", st.JournalOverflows),
		fmt.Sprintf("journal_truncated=%d", st.JournalTruncated),
		fmt.Sprintf("ops=%d", st.BatchedOps),
		fmt.Sprintf("pipe_await_ms=%.3f", float64(st.PipeAwaitNanos)/1e6),
		fmt.Sprintf("pipe_batch_max=%d", st.PipeBatchMax),
		fmt.Sprintf("pipe_batches=%d", st.PipeBatches),
		fmt.Sprintf("pipe_depth_max=%d", st.PipeDepthMax),
		fmt.Sprintf("pipe_epochs=%d", st.PipeEpochs),
		fmt.Sprintf("pipe_lines=%d", st.PipeBatchLines),
		fmt.Sprintf("pipe_stall_ms=%.3f", float64(st.PipeStallNanos)/1e6),
		fmt.Sprintf("pipe_stalls=%d", st.PipeStalls),
		fmt.Sprintf("puts=%d", st.Puts),
		fmt.Sprintf("recovery_fallbacks=%d", st.RecoveryFallbacks),
		fmt.Sprintf("recovery_mode=%d", st.RecoveryMode),
		fmt.Sprintf("recovery_replayed=%d", st.RecoveryReplayed),
		fmt.Sprintf("recovery_restored=%d", st.RecoveryRestored),
		fmt.Sprintf("scans=%d", st.Scans),
	}
	sort.Strings(pairs) // belt and braces: keys above are already sorted
	return pairs
}

// String renders one STATS line: the row identifier (shard=N, or `total`
// for the aggregate) followed by the sorted Pairs.
func (st ShardStats) String() string {
	id := fmt.Sprintf("shard=%d", st.Shard)
	if st.Shard < 0 {
		id = "total"
	}
	return id + " " + strings.Join(st.Pairs(), " ")
}

func (sh *shard) stats() ShardStats {
	st := ShardStats{
		Shard:      sh.id,
		Puts:       sh.puts.Load(),
		Deletes:    sh.dels.Load(),
		Incrs:      sh.incrs.Load(),
		Decrs:      sh.decrs.Load(),
		Gets:       sh.gets.Load(),
		Scans:      sh.scans.Load(),
		Batches:    sh.batches.Load(),
		BatchedOps: sh.batchedOps.Load(),
		Aborts:     sh.aborts.Load(),
		Absorbed:   sh.absorbed.Load(),
		Committed:  sh.committed.Load(),

		AbsorbThresholdCommits: sh.absorbThresholdC.Load(),
		AbsorbDeadlineCommits:  sh.absorbDeadlineC.Load(),
		AsyncFlushes:           sh.flushAsync.Load(),
		DrainedFlushes:         sh.flushDrained.Load(),
		Barriers:               sh.flushBarriers.Load(),
		PipeBatches:            sh.pipeBatches.Load(),
		PipeBatchLines:         sh.pipeLines.Load(),
		PipeBatchMax:           sh.pipeBatchMax.Load(),
		PipeEpochs:             sh.pipeEpochs.Load(),
		PipeDepthMax:           sh.pipeDepthMax.Load(),
		PipeStalls:             sh.pipeStalls.Load(),
		PipeStallNanos:         sh.pipeStallNs.Load(),
		PipeAwaitNanos:         sh.pipeAwaitNs.Load(),

		Checkpoints:       sh.ckpts.Load(),
		CheckpointSkipped: sh.ckptSkipped.Load(),
		CheckpointPairs:   sh.ckptPairs.Load(),
		CheckpointLastGen: sh.ckptLastGen.Load(),
		JournalOps:        sh.jrnOps.Load(),
		JournalTruncated:  sh.jrnTruncated.Load(),
		JournalOverflows:  sh.jrnOverflows.Load(),
		RecoveryMode:      sh.recMode.Load(),
		RecoveryFallbacks: sh.recFallbacks.Load(),
		RecoveryRestored:  sh.recRestored.Load(),
		RecoveryReplayed:  sh.recReplayed.Load(),
	}
	if ctrl := sh.st.ctrl; ctrl != nil {
		g := ctrl.Gauges(sh.id)
		st.AdaptiveCap = g.Capacity
		st.AdaptiveLast = g.LastSeq
		st.AdaptiveResizes = g.Resizes
		st.AdaptiveSample = g.Sampled
	}
	sh.latMu.Lock()
	lats := append([]float64(nil), sh.lats...)
	sh.latMu.Unlock()
	if len(lats) > 0 {
		sort.Float64s(lats)
		st.CommitP50 = percentile(lats, 0.50)
		st.CommitP99 = percentile(lats, 0.99)
	}
	return st
}

// percentile reads the p-quantile from sorted samples (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Stats snapshots every shard's instrumentation.
func (s *Store) Stats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.stats()
	}
	return out
}

// StripeStats snapshots the heap's per-stripe lock counters: the residual
// cross-shard serialization of the sharded dirty-state control plane
// (shard writers own disjoint lines, so contention here is hash collisions
// on stripes, not data conflicts). Exported through the server's STATS
// verb.
func (s *Store) StripeStats() []pmem.StripeStat { return s.heap.StripeStats() }

// StripeSummary aggregates the heap's stripe counters.
func (s *Store) StripeSummary() pmem.StripeSummary {
	return pmem.SummarizeStripes(s.heap.StripeStats())
}

// Totals aggregates shard stats (percentiles are the max across shards —
// the service-level tail).
func Totals(stats []ShardStats) ShardStats {
	var t ShardStats
	t.Shard = -1
	for _, st := range stats {
		t.Puts += st.Puts
		t.Deletes += st.Deletes
		t.Incrs += st.Incrs
		t.Decrs += st.Decrs
		t.Gets += st.Gets
		t.Scans += st.Scans
		t.Batches += st.Batches
		t.BatchedOps += st.BatchedOps
		t.Aborts += st.Aborts
		t.Absorbed += st.Absorbed
		t.Committed += st.Committed
		t.AbsorbThresholdCommits += st.AbsorbThresholdCommits
		t.AbsorbDeadlineCommits += st.AbsorbDeadlineCommits
		t.AsyncFlushes += st.AsyncFlushes
		t.DrainedFlushes += st.DrainedFlushes
		t.Barriers += st.Barriers
		t.PipeBatches += st.PipeBatches
		t.PipeBatchLines += st.PipeBatchLines
		t.PipeEpochs += st.PipeEpochs
		t.PipeStalls += st.PipeStalls
		t.PipeStallNanos += st.PipeStallNanos
		t.PipeAwaitNanos += st.PipeAwaitNanos
		if st.PipeBatchMax > t.PipeBatchMax {
			t.PipeBatchMax = st.PipeBatchMax
		}
		if st.PipeDepthMax > t.PipeDepthMax {
			t.PipeDepthMax = st.PipeDepthMax
		}
		t.AdaptiveCap += st.AdaptiveCap
		t.AdaptiveResizes += st.AdaptiveResizes
		t.AdaptiveSample += st.AdaptiveSample
		if st.AdaptiveLast > t.AdaptiveLast {
			t.AdaptiveLast = st.AdaptiveLast
		}
		t.Checkpoints += st.Checkpoints
		t.CheckpointSkipped += st.CheckpointSkipped
		t.CheckpointPairs += st.CheckpointPairs
		t.JournalOps += st.JournalOps
		t.JournalTruncated += st.JournalTruncated
		t.JournalOverflows += st.JournalOverflows
		t.RecoveryFallbacks += st.RecoveryFallbacks
		t.RecoveryRestored += st.RecoveryRestored
		t.RecoveryReplayed += st.RecoveryReplayed
		if st.CheckpointLastGen > t.CheckpointLastGen {
			t.CheckpointLastGen = st.CheckpointLastGen
		}
		if st.RecoveryMode > t.RecoveryMode {
			t.RecoveryMode = st.RecoveryMode
		}
		t.CommitP50 = math.Max(t.CommitP50, st.CommitP50)
		t.CommitP99 = math.Max(t.CommitP99, st.CommitP99)
	}
	return t
}
