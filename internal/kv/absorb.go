package kv

// absorb.go is the logical write-absorption layer in front of group
// commit. The paper combines writes at cache-line granularity inside the
// software cache; absorption lifts the same idea one level up, to whole
// operations: self-canceling logical ops — a later PUT or DELETE of a key
// already written in the pending batch, increment/decrement pairs — are
// collapsed *before* they reach the persistence stack, so the B+-tree pays
// one root-to-leaf copy for the net effect instead of one per op.
//
// Two mechanisms compose:
//
//   - Same-key coalescing: the batch planner simulates the batch's
//     requests serially against the committed tree, records each
//     requester's exact serial result (a DELETE's found bit, a counter's
//     post-op value), and emits only the net write per touched key. A key
//     whose final simulated state equals its tree state emits nothing at
//     all — a provably net-null pair (PUT then DELETE of an absent key,
//     INCR then DECR) never enters a FASE.
//
//   - Counter accumulation: INCR/DECR requests do not force a commit of
//     their own. Their net deltas are held in a volatile per-shard
//     vector–scalar accumulator (the per-key delta vector plus the parked
//     requesters), and the net effect is committed through the normal
//     undo-logged FASE path only once the parked-op count crosses
//     Threshold or the oldest parked op crosses Deadline. Requesters are
//     acked only at that commit — an acked counter op is durable across
//     any crash, exactly like a PUT, and a parked one is nacked by a crash
//     with nothing on the heap to roll forward.
//
// Crash semantics are exact by construction: the accumulator lives only in
// DRAM, its commit is an ordinary FASE (undo-logged, rolled back whole by
// Recover), and the four absorption boundaries (merge, threshold commit,
// deadline commit, absorb ack) are numbered fault-injection sites swept
// exhaustively by internal/faultinject.

import (
	"time"
)

// AbsorbConfig configures the absorption layer. The zero value disables
// it; with absorption off, every request is applied individually inside
// its batch's FASE (the pre-absorption behavior), and INCR/DECR commit
// immediately like PUTs.
type AbsorbConfig struct {
	// Enabled turns on same-key batch coalescing and the counter
	// accumulator.
	Enabled bool
	// Threshold is the parked counter-op count that forces an accumulator
	// commit. <=0 takes the default (64).
	Threshold int
	// Deadline bounds how long a counter op may stay parked (and so how
	// long its ack may be deferred) before the accumulator commits. It
	// rides the same machinery as MaxDelay; 0 takes MaxDelay. The adaptive
	// controller retargets it at runtime as its fourth actuator.
	Deadline time.Duration
}

func (c AbsorbConfig) withDefaults(maxDelay time.Duration) AbsorbConfig {
	if c.Threshold <= 0 {
		c.Threshold = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = maxDelay
	}
	return c
}

// AbsorbOp names an absorption boundary, in the order the layer crosses
// them. Options.AbsorbHook receives each crossing; internal/faultinject
// numbers them as crash-exploration sites.
type AbsorbOp uint8

const (
	// AbsorbMerge is one counter op folding into the accumulator (or into
	// its batch's net write): volatile-only, nothing durable yet.
	AbsorbMerge AbsorbOp = iota
	// AbsorbThresholdCommit fires when the parked-op count crosses
	// Threshold, before the net-delta FASE begins.
	AbsorbThresholdCommit
	// AbsorbDeadlineCommit fires when the oldest parked op crosses
	// Deadline (or at graceful shutdown), before the net-delta FASE.
	AbsorbDeadlineCommit
	// AbsorbAck sits between the accumulator commit's durability and the
	// delivery of the parked acks — a crash here loses acks, never data.
	AbsorbAck
)

// accumulator is the per-shard vector–scalar accumulator: the pending net
// delta per key (volatile), the counter requests those deltas belong to,
// and each request's precomputed serial result. Writer-goroutine-owned.
type accumulator struct {
	deltas  map[uint64]uint64 // key → net pending delta (wrapping)
	order   []uint64          // keys in first-merge order (deterministic commits)
	parked  []request         // counter requests awaiting the next commit
	results []result          // serial results, index-aligned with parked
	opened  time.Time         // arrival of the oldest parked op
}

func (a *accumulator) pending() int { return len(a.parked) }

func (a *accumulator) reset() {
	a.deltas = nil
	a.order = a.order[:0]
	a.parked = nil
	a.results = nil
}

// park holds one counter request (and its precomputed result) until the
// next accumulator commit.
func (a *accumulator) park(r request, res result, d uint64) {
	if a.deltas == nil {
		a.deltas = make(map[uint64]uint64, 8)
	}
	if len(a.parked) == 0 {
		a.opened = time.Now()
	}
	if _, ok := a.deltas[r.k]; !ok {
		a.order = append(a.order, r.k)
	}
	a.deltas[r.k] += d
	a.parked = append(a.parked, r)
	a.results = append(a.results, res)
}

// netWrite is one physical operation an absorbed commit applies: the net
// effect of every logical op that touched the key.
type netWrite struct {
	del  bool
	k, v uint64
}

// commitPlan is one planned commit under absorption: the requests it acks
// (batch requests plus, when folding, every parked counter request), their
// precomputed serial results, and the net writes the FASE applies. A plan
// with no writes delivers its acks without a FASE — the absorbed ops are
// provably net-null, so there is nothing to persist.
type commitPlan struct {
	acks    []request
	results []result
	writes  []netWrite
	// fold reports that parked counter ops are acked by this commit (the
	// AbsorbAck boundary applies).
	fold bool
	// trigger is the hook fired before the FASE begins: threshold or
	// deadline commits announce themselves; conflict folds (a batch write
	// touching a key with pending deltas) ride the batch's own commit.
	trigger AbsorbOp
	hasTrig bool
}

// absorbed returns how many acked logical ops were absorbed (folded away
// without a physical write of their own).
func (p *commitPlan) absorbed() int { return len(p.acks) - len(p.writes) }

func (sh *shard) absorbOn() bool { return sh.st.opts.Absorb.Enabled }

func (sh *shard) absorbHook(op AbsorbOp) {
	if h := sh.st.opts.AbsorbHook; h != nil {
		h(op)
	}
}

// absorbDue reports whether the accumulator's deadline has passed (the
// run-loop timer and the planner both consult it).
func (sh *shard) absorbDue() bool {
	return sh.acc.pending() > 0 &&
		time.Since(sh.acc.opened) >= time.Duration(sh.absorbDeadlineNs.Load())
}

// simState is one key's simulated value during batch planning: the state
// the serial execution of (parked deltas, then the batch's requests so
// far) would leave the key in.
type simState struct {
	present bool
	val     uint64
	// written marks the key as touched by a PUT/DEL of this batch (or a
	// counter op ordered after one): its net write belongs to this commit.
	written bool
}

// planCommit simulates batch serially and builds the commit plan. Counter
// ops whose key the batch does not write are parked (merged into the
// accumulator, result precomputed, ack deferred); everything else acks
// with this commit. The accumulator folds into the plan — its parked
// requests join the acks and its net deltas the writes — when a batch
// write conflicts with a pending delta, when the parked count crosses
// Threshold, when the deadline has passed, or when force is set (graceful
// shutdown). Writer goroutine only; may panic through AbsorbHook (an
// injected crash), which the caller recovers.
func (sh *shard) planCommit(batch []request, force bool) *commitPlan {
	plan := &commitPlan{}
	sim := make(map[uint64]simState, len(batch))
	var touched []uint64 // batch-written keys, first-touch order
	conflict := false

	// look returns k's simulated state, seeding it from the committed
	// tree plus any pending delta (parked ops are ordered before the
	// batch, so their effect is visible to it).
	look := func(k uint64) simState {
		if s, ok := sim[k]; ok {
			return s
		}
		v, ok := sh.db.Get(k)
		s := simState{present: ok, val: v}
		if d, pend := sh.acc.deltas[k]; pend {
			s.present = true
			s.val = v + d
		}
		sim[k] = s
		return s
	}

	for i := range batch {
		r := batch[i]
		switch r.op {
		case opPut:
			s := look(r.k)
			if _, pend := sh.acc.deltas[r.k]; pend {
				conflict = true
			}
			if !s.written {
				touched = append(touched, r.k)
			}
			sim[r.k] = simState{present: true, val: r.v, written: true}
			plan.acks = append(plan.acks, r)
			plan.results = append(plan.results, result{})
		case opDel:
			s := look(r.k)
			if _, pend := sh.acc.deltas[r.k]; pend {
				conflict = true
			}
			if !s.written {
				touched = append(touched, r.k)
			}
			sim[r.k] = simState{written: true}
			plan.acks = append(plan.acks, r)
			plan.results = append(plan.results, result{found: s.present})
		case opPuts:
			// A batched put is its pairs applied in order: each pair
			// coalesces exactly as a lone PUT would, but the request acks
			// once, for the whole slice.
			for _, p := range r.pairs {
				s := look(p.K)
				if _, pend := sh.acc.deltas[p.K]; pend {
					conflict = true
				}
				if !s.written {
					touched = append(touched, p.K)
				}
				sim[p.K] = simState{present: true, val: p.V, written: true}
			}
			plan.acks = append(plan.acks, r)
			plan.results = append(plan.results, result{})
		case opIncr, opDecr:
			sh.absorbHook(AbsorbMerge)
			d := r.v
			if r.op == opDecr {
				d = -d
			}
			s := look(r.k)
			nv := s.val + d
			if !s.present {
				nv = d
			}
			res := result{val: nv}
			if s.written {
				// Ordered after a write of this batch: the counter op
				// commits (and acks) with the batch, folded into the
				// key's net write.
				sim[r.k] = simState{present: true, val: nv, written: true}
				plan.acks = append(plan.acks, r)
				plan.results = append(plan.results, res)
			} else {
				sim[r.k] = simState{present: true, val: nv}
				sh.acc.park(r, res, d)
			}
		}
	}

	fold := force || conflict || sh.absorbDue() ||
		sh.acc.pending() >= int(sh.absorbThreshold.Load())
	if fold && sh.acc.pending() > 0 {
		switch {
		case conflict || force:
			// The fold rides a commit that was happening anyway (or the
			// shutdown drain); no trigger boundary of its own. Shutdown
			// drains reuse the deadline boundary below when forced with an
			// empty batch.
			if force && len(batch) == 0 {
				plan.trigger, plan.hasTrig = AbsorbDeadlineCommit, true
				sh.absorbDeadlineC.Add(1)
			}
		case sh.acc.pending() >= int(sh.absorbThreshold.Load()):
			plan.trigger, plan.hasTrig = AbsorbThresholdCommit, true
			sh.absorbThresholdC.Add(1)
		default:
			plan.trigger, plan.hasTrig = AbsorbDeadlineCommit, true
			sh.absorbDeadlineC.Add(1)
		}
		plan.fold = true
		// Accumulator keys are written first (their ops arrived first),
		// then the batch's keys; conflicting keys keep their accumulator
		// position. The parked requesters ack with this commit. Keys parked
		// by earlier batches may not be in sim yet — materialize them
		// before the accumulator (look's delta source) resets.
		for _, k := range sh.acc.order {
			look(k)
		}
		keys := append(append([]uint64(nil), sh.acc.order...), touched...)
		touched = keys
		plan.acks = append(plan.acks, sh.acc.parked...)
		plan.results = append(plan.results, sh.acc.results...)
		sh.acc.reset()
	}

	seen := make(map[uint64]bool, len(touched))
	for _, k := range touched {
		if seen[k] {
			continue
		}
		seen[k] = true
		s := look(k)
		tv, tok := sh.db.Get(k)
		switch {
		case s.present && (!tok || tv != s.val):
			plan.writes = append(plan.writes, netWrite{k: k, v: s.val})
		case !s.present && tok:
			plan.writes = append(plan.writes, netWrite{del: true, k: k})
		}
		// Final state equal to the tree state: the key's ops are net-null
		// and absorb completely.
	}
	return plan
}

// nackParked fails every parked counter request (crash path: the store is
// dying and their deltas were never committed). No-op when nothing is
// parked; the graceful Close path drains the accumulator first.
func (sh *shard) nackParked(err error) {
	if sh.acc.pending() == 0 {
		return
	}
	for i := range sh.acc.parked {
		sh.acc.parked[i].done <- result{err: err}
	}
	sh.acc.reset()
}

// drainAbsorb commits any parked counter deltas (graceful-shutdown path);
// it reports whether the store crashed during the drain.
func (sh *shard) drainAbsorb() (crashed bool) {
	if !sh.absorbOn() || sh.acc.pending() == 0 {
		return false
	}
	return sh.commitBatch(nil)
}

// finishAbsorbed completes a plan with no physical writes: every acked op
// absorbed into nothing (net-null), so there is no FASE — the acks are
// delivered once the in-flight predecessor (if any) has settled, crossing
// the same ack boundaries a committed batch would.
func (sh *shard) finishAbsorbed(plan *commitPlan) (crashed bool) {
	if len(plan.acks) == 0 {
		return false
	}
	if sh.settle() {
		nackAll(plan.acks, ErrCrashed)
		return true
	}
	if sh.st.crashing.Load() {
		nackAll(plan.acks, ErrCrashed)
		return true
	}
	crash := func(fn func()) bool {
		if sh.crashedDuring(fn) {
			sh.st.initiateCrash(sh)
			nackAll(plan.acks, ErrCrashed)
			return true
		}
		return false
	}
	if hook := sh.st.opts.AckHook; hook != nil {
		if crash(func() { hook(sh.id) }) {
			return true
		}
	}
	if plan.fold {
		if crash(func() { sh.absorbHook(AbsorbAck) }) {
			return true
		}
	}
	logical := uint64(logicalOps(plan.acks))
	sh.noteOps(plan.acks)
	sh.batchedOps.Add(logical)
	sh.absorbed.Add(logical)
	for i := range plan.acks {
		plan.acks[i].done <- plan.results[i]
	}
	return false
}
