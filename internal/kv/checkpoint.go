package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"time"

	"nvmcache/internal/atlas"
	"nvmcache/internal/mdb"
	"nvmcache/internal/pmem"
)

// Bounded-time recovery. A store recovered from the undo logs alone is
// correct but pays O(history) nothing — the tree is already durable — yet a
// store that must *re-verify* or rebuild state (and the paper's Atlas
// baseline, which replays logs) pays time proportional to what the logs
// cover. This file bounds that: each shard periodically publishes a
// consistent snapshot of its tree into a double-buffered checkpoint region
// (pmem.CheckpointRegion), keeps a persistent redo journal of every
// committed logical write, and truncates the journal to what the
// second-newest checkpoint still needs. Recovery then loads the newest
// valid image and replays only the short journal suffix behind it —
// work bounded by the checkpoint interval, not by the store's lifetime —
// with shards recovered in parallel by a bounded worker pool.
//
// Why a redo journal when atlas already has undo logs: the undo logs are
// truncated at every FASE commit (that is their point — they cover only
// the in-flight FASE), so they cannot provide a replay suffix. The journal
// is the missing piece: an append-only ring of the *logical* ops each
// committed batch applied, sealed inside the batch's own FASE so it
// advances exactly when the tree does and rolls back exactly when the
// tree does.
//
// Journal layout (per shard, all persistent):
//
//	jrn+0:   tail — logical index one past the last sealed entry (FASE word)
//	jrn+8:   gen  — tree generation as of the sealed tail (FASE word)
//	jrn+64:  head — logical index of the oldest entry recovery may need
//	jrn+72:  overflow — 1 while journaling is suspended (ring filled up)
//	jrn+80:  broken — 1 once the journal's [0,tail) range has a gap
//	jrn+128: entry ring, 24 bytes each: op, key, value
//
// tail and gen live on their own line and are written with atlas stores
// inside the committing FASE, so a crash rolls them back in lockstep with
// the tree (including under the overlapped pipeline: rollback is
// newest-log-first). head and the flags are maintenance state outside any
// FASE, written through. Entries are written through *before* the seal —
// write-ahead — so a sealed tail never points past durable entries; slots
// beyond tail may hold torn garbage, which recovery never reads.
//
// Checkpoint/journal consistency: an image published with meta
// (gen, jpos, epoch) asserts "the serialized tree is the committed state
// after journal entry jpos". Replaying entries [jpos, tail) over the image
// therefore reproduces the state at tail. Images are only published from
// the shard writer at settled points (no FASE open, no batch in flight),
// where tree, generation and tail are mutually consistent by construction.
//
// Truncation lags by one image: head advances to the *older* valid image's
// jpos, so even if the newest image is torn or rotted, the older image
// still has its full suffix and recovery falls back to it. Until a second
// checkpoint exists head stays 0 and the journal alone can rebuild the
// store from empty (the deepest fallback short of trusting the tree).
//
// Overflow: when a batch needs more ring slots than remain even after a
// forced checkpoint, the shard stops journaling (overflow=1), revokes both
// images (their suffixes can no longer be completed) and marks the journal
// broken (its [0,tail) range now has a gap forever). The next successful
// checkpoint is a full-state image: it sets head=tail, clears overflow and
// resumes journaling. broken never clears — it permanently disqualifies
// the full-replay-from-empty mode, whose range would cross the gap.
const (
	ckdMagic = 0x4e564d434b444952 // "NVMCKDIR"

	ckdShardsOff     = 8
	ckdJournalOpsOff = 16
	ckdMaxPairsOff   = 24
	ckdHdr           = 64
	ckdStride        = 16

	jrnTailOff     = 0
	jrnGenOff      = 8
	jrnHeadOff     = 64
	jrnOverflowOff = 72
	jrnBrokenOff   = 80
	jrnHdr         = 128
	jrnEntrySize   = 24

	jOpPut = 0
	jOpDel = 1

	// rebuildBatch is the FASE size recovery rebuilds with: large enough to
	// amortize page copies, small enough that one undo log always covers it.
	rebuildBatch = 256
)

// Recovery modes, reported per shard as the recovery_mode gauge.
const (
	// RecoveryModeNone: the heap has no checkpoint structures (legacy).
	RecoveryModeNone = iota
	// RecoveryModeLegacy: structures exist but none were usable; the
	// rolled-back tree is trusted as-is (exactly the legacy guarantee) and
	// a repair checkpoint re-establishes the bounded-recovery invariant.
	RecoveryModeLegacy
	// RecoveryModeCheckpoint: rebuilt from a checkpoint image plus the
	// journal suffix behind it — the bounded-time path.
	RecoveryModeCheckpoint
	// RecoveryModeJournal: no valid image yet; rebuilt from an empty tree
	// by replaying the whole journal (only possible while head==0 and the
	// journal has never gapped).
	RecoveryModeJournal
)

// CkptOp tells Options.CheckpointHook which checkpoint boundary the shard
// writer is about to cross; internal/faultinject numbers each as a
// crash-exploration site.
type CkptOp uint8

const (
	// CkptBegin fires before the tree snapshot is serialized.
	CkptBegin CkptOp = iota
	// CkptPage fires before each payload chunk of the image is persisted.
	CkptPage
	// CkptPublish fires immediately before the seal that makes the new
	// image valid.
	CkptPublish
	// CkptTruncate fires after the seal, before the journal head advances.
	CkptTruncate
)

func (op CkptOp) String() string {
	switch op {
	case CkptBegin:
		return "checkpoint-begin"
	case CkptPage:
		return "checkpoint-page"
	case CkptPublish:
		return "checkpoint-publish"
	case CkptTruncate:
		return "log-truncate"
	default:
		return fmt.Sprintf("ckpt-op-%d", op)
	}
}

// CheckpointConfig configures per-shard checkpointing and bounded-time
// recovery. Zero-valued numeric fields take defaults when Enabled.
type CheckpointConfig struct {
	// Enabled turns the subsystem on. A heap opened with checkpointing
	// keeps it on across recoveries (the persistent structures must stay
	// maintained); a legacy heap recovered with Enabled set is retrofitted.
	Enabled bool
	// Interval is the wall-clock checkpoint cadence (0 = no timer; the
	// batch-count trigger, explicit Checkpoint calls and journal pressure
	// still publish images).
	Interval time.Duration
	// IntervalBatches checkpoints after this many committed batches
	// (0 = no batch trigger).
	IntervalBatches int
	// JournalOps is the per-shard redo-journal ring capacity in entries
	// (default 4096, floor 4×MaxBatch). Persisted at Open; recovery adopts
	// the persistent value.
	JournalOps int
	// MaxPairs bounds the pairs one checkpoint image may hold (default
	// 4×PoolPages); a tree larger than this skips its checkpoint.
	// Persisted at Open; recovery adopts the persistent value.
	MaxPairs int
	// RecoverWorkers bounds the parallel shard-recovery pool
	// (default GOMAXPROCS). Runtime knob, not persisted.
	RecoverWorkers int
}

func (c CheckpointConfig) withDefaults(poolPages, maxBatch int) CheckpointConfig {
	if !c.Enabled {
		return c
	}
	if c.JournalOps <= 0 {
		c.JournalOps = 4096
	}
	if floor := 4 * maxBatch; c.JournalOps < floor {
		c.JournalOps = floor
	}
	if c.MaxPairs <= 0 {
		c.MaxPairs = 4 * poolPages
	}
	if c.RecoverWorkers <= 0 {
		c.RecoverWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// journal is the volatile handle on one shard's persistent redo ring.
// Mutated only by the shard writer (or, before the store starts, by the
// recovery worker that owns the shard).
type journal struct {
	h    *pmem.Heap
	base uint64
	cap  uint64

	tail, head       uint64 // mirrors of the persistent words
	overflow, broken bool
	staged           uint64 // entries appended but not yet sealed
}

func createJournal(h *pmem.Heap, capEntries int) (*journal, error) {
	base, err := h.AllocLines(jrnHdr + jrnEntrySize*uint64(capEntries))
	if err != nil {
		return nil, fmt.Errorf("kv: journal: %w", err)
	}
	for _, off := range []uint64{jrnTailOff, jrnGenOff, jrnHeadOff, jrnOverflowOff, jrnBrokenOff} {
		h.Write64Through(base+off, 0)
	}
	return &journal{h: h, base: base, cap: uint64(capEntries)}, nil
}

func attachJournal(h *pmem.Heap, base uint64, capEntries int) *journal {
	return &journal{
		h: h, base: base, cap: uint64(capEntries),
		tail:     h.ReadUint64(base + jrnTailOff),
		head:     h.ReadUint64(base + jrnHeadOff),
		overflow: h.ReadUint64(base+jrnOverflowOff) != 0,
		broken:   h.ReadUint64(base+jrnBrokenOff) != 0,
	}
}

func (j *journal) slot(idx uint64) uint64 { return j.base + jrnHdr + (idx%j.cap)*jrnEntrySize }

// hasRoom reports whether n more entries fit without overwriting the live
// [head, tail) range (staged-but-unsealed entries count as live).
func (j *journal) hasRoom(n int) bool { return j.tail-j.head+j.staged+uint64(n) <= j.cap }

// append stages one entry past the current tail, written through so it is
// durable before the seal that will cover it.
func (j *journal) append(op, k, v uint64) {
	s := j.slot(j.tail + j.staged)
	j.h.Write64Through(s, op)
	j.h.Write64Through(s+8, k)
	j.h.Write64Through(s+16, v)
	j.staged++
}

// seal covers the staged entries: tail and gen are atlas stores inside the
// caller's FASE, so a crash before the commit rolls the journal back in
// lockstep with the tree.
func (j *journal) seal(th *atlas.Thread, gen uint64) {
	th.Store64(j.base+jrnTailOff, j.tail+j.staged)
	th.Store64(j.base+jrnGenOff, gen)
	j.tail += j.staged
	j.staged = 0
}

// abort discards the staged entries (the FASE they were written ahead of
// rolled back; the slots beyond tail are garbage recovery never reads).
func (j *journal) abort() { j.staged = 0 }

func (j *journal) setHead(h uint64) {
	j.h.Write64Through(j.base+jrnHeadOff, h)
	j.head = h
}

func (j *journal) setOverflow() {
	j.h.Write64Through(j.base+jrnOverflowOff, 1)
	j.h.Write64Through(j.base+jrnBrokenOff, 1)
	j.overflow, j.broken = true, true
}

func (j *journal) clearOverflow() {
	j.h.Write64Through(j.base+jrnOverflowOff, 0)
	j.overflow = false
}

func (j *journal) genWord() uint64 { return j.h.ReadUint64(j.base + jrnGenOff) }

func (j *journal) entry(idx uint64) (op, k, v uint64) {
	s := j.slot(idx)
	return j.h.ReadUint64(s), j.h.ReadUint64(s + 8), j.h.ReadUint64(s + 16)
}

// shardCkpt bundles one shard's checkpoint state.
type shardCkpt struct {
	cfg    CheckpointConfig
	jrn    *journal
	region *pmem.CheckpointRegion
}

// setupCheckpoints creates the persistent checkpoint structures for every
// shard plus the directory that finds them again, publishing the directory
// address as the heap's aux root last — a crash mid-setup leaves aux 0 and
// the heap recovers as legacy (the partial structures are leaked, not
// consulted). broken marks journals whose range can never cover the
// pre-existing tree (the retrofit path).
func setupCheckpoints(h *pmem.Heap, cfg CheckpointConfig, shards int, broken bool) ([]*shardCkpt, error) {
	out := make([]*shardCkpt, shards)
	dir, err := h.AllocLines(uint64(ckdHdr + ckdStride*shards))
	if err != nil {
		return nil, fmt.Errorf("kv: checkpoint directory: %w", err)
	}
	for i := 0; i < shards; i++ {
		jrn, err := createJournal(h, cfg.JournalOps)
		if err != nil {
			return nil, err
		}
		if broken {
			jrn.h.Write64Through(jrn.base+jrnBrokenOff, 1)
			jrn.broken = true
		}
		region, err := pmem.NewCheckpointRegion(h, 16*uint64(cfg.MaxPairs))
		if err != nil {
			return nil, err
		}
		h.Write64Through(dir+ckdHdr+ckdStride*uint64(i), jrn.base)
		h.Write64Through(dir+ckdHdr+ckdStride*uint64(i)+8, region.Base())
		out[i] = &shardCkpt{cfg: cfg, jrn: jrn, region: region}
	}
	h.Write64Through(dir, ckdMagic)
	h.Write64Through(dir+ckdShardsOff, uint64(shards))
	h.Write64Through(dir+ckdJournalOpsOff, uint64(cfg.JournalOps))
	h.Write64Through(dir+ckdMaxPairsOff, uint64(cfg.MaxPairs))
	h.SetAux(dir)
	return out, nil
}

// openCheckpoints reattaches to the structures setupCheckpoints published,
// adopting the persistent geometry (JournalOps, MaxPairs) over whatever the
// caller configured.
func openCheckpoints(h *pmem.Heap, dir uint64, cfg CheckpointConfig, shards int) ([]*shardCkpt, CheckpointConfig, error) {
	if h.ReadUint64(dir) != ckdMagic {
		return nil, cfg, fmt.Errorf("kv: %d does not hold a checkpoint directory", dir)
	}
	if n := h.ReadUint64(dir + ckdShardsOff); n != uint64(shards) {
		return nil, cfg, fmt.Errorf("kv: checkpoint directory covers %d shards, store has %d", n, shards)
	}
	cfg.Enabled = true
	cfg.JournalOps = int(h.ReadUint64(dir + ckdJournalOpsOff))
	cfg.MaxPairs = int(h.ReadUint64(dir + ckdMaxPairsOff))
	if cfg.RecoverWorkers <= 0 {
		cfg.RecoverWorkers = runtime.GOMAXPROCS(0)
	}
	out := make([]*shardCkpt, shards)
	for i := 0; i < shards; i++ {
		jb := h.ReadUint64(dir + ckdHdr + ckdStride*uint64(i))
		rb := h.ReadUint64(dir + ckdHdr + ckdStride*uint64(i) + 8)
		region, err := pmem.OpenCheckpointRegion(h, rb)
		if err != nil {
			return nil, cfg, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		out[i] = &shardCkpt{cfg: cfg, jrn: attachJournal(h, jb, cfg.JournalOps), region: region}
	}
	return out, cfg, nil
}

// serializeTree flattens the tree at root into the checkpoint payload
// format — 16-byte little-endian (key, value) pairs in key order. A tree
// with more than maxPairs pairs returns a nil buffer (checkpoint skipped).
func serializeTree(db *mdb.DB, root uint64, maxPairs int) ([]byte, int) {
	buf := make([]byte, 0, 4096)
	pairs := 0
	for c := db.Seek(root, 0); c.Valid(); c.Next() {
		if pairs >= maxPairs {
			return nil, pairs + 1
		}
		var kv [16]byte
		binary.LittleEndian.PutUint64(kv[0:], c.Key())
		binary.LittleEndian.PutUint64(kv[8:], c.Value())
		buf = append(buf, kv[:]...)
		pairs++
	}
	return buf, pairs
}

// publishImage serializes the tree and publishes it with meta
// (generation, journal position, undo epoch), firing the checkpoint hook at
// each durability boundary. Returns false (no error) when the tree exceeds
// the image capacity.
func publishImage(db *mdb.DB, ck *shardCkpt, hook func(CkptOp)) (published bool, pairs int, gen uint64, err error) {
	root, gen := db.Snapshot(), db.Generation()
	buf, pairs := serializeTree(db, root, ck.cfg.MaxPairs)
	if buf == nil {
		return false, pairs, gen, nil
	}
	_, err = ck.region.Publish(buf, [3]uint64{gen, ck.jrn.tail, atlas.CurrentSeq()},
		func(stage pmem.PublishStage, chunk int) {
			if hook == nil {
				return
			}
			if stage == pmem.StagePage {
				hook(CkptPage)
			} else {
				hook(CkptPublish)
			}
		})
	if err != nil {
		return false, pairs, gen, err
	}
	return true, pairs, gen, nil
}

// truncateAfterPublish advances the journal head after a successful
// publish. Coming out of overflow the fresh image is a full-state one, so
// the whole ring is released and journaling resumes; otherwise the head
// lags one image behind (the older valid image keeps its suffix intact so
// recovery can fall back to it). Returns the entries released.
func truncateAfterPublish(ck *shardCkpt, hook func(CkptOp)) uint64 {
	if hook != nil {
		hook(CkptTruncate)
	}
	j := ck.jrn
	if j.overflow {
		freed := j.tail - j.head
		j.setHead(j.tail)
		j.clearOverflow()
		return freed
	}
	if imgs := ck.region.Images(); len(imgs) == 2 {
		if nh := imgs[1].Meta[1]; nh > j.head {
			freed := nh - j.head
			j.setHead(nh)
			return freed
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Shard-writer side: journaling inside the FASE, checkpoint scheduling.

// journalAppend stages the redo entry for one physical write the open FASE
// just applied. No-op while checkpointing is off or suspended by overflow.
func (sh *shard) journalAppend(op, k, v uint64) {
	if ck := sh.ckpt; ck != nil && !ck.jrn.overflow {
		ck.jrn.append(op, k, v)
	}
}

// journalSeal covers the staged entries inside the committing FASE. gen is
// the generation the commit is about to install (Generation()+1 — mdb
// bumps the meta word at commit).
func (sh *shard) journalSeal() {
	ck := sh.ckpt
	if ck == nil || ck.jrn.overflow || ck.jrn.staged == 0 {
		return
	}
	sh.jrnOps.Add(ck.jrn.staged)
	ck.jrn.seal(sh.th, sh.db.Generation()+1)
}

// journalAbort discards staged entries alongside the FASE abort.
func (sh *shard) journalAbort() {
	if ck := sh.ckpt; ck != nil {
		ck.jrn.abort()
	}
}

// ensureJournalRoom makes space for a batch's entries before its FASE
// opens: journal pressure forces a checkpoint (twice if need be — the
// lag-by-one truncation only releases the older image's suffix on the
// second publish), and a batch that still does not fit trips the overflow
// protocol: both images are revoked (their suffixes can never complete),
// the journal is marked broken, and journaling suspends until the next
// full-state checkpoint. Reports whether an injected crash ended the store.
func (sh *shard) ensureJournalRoom(need int) (crashed bool) {
	ck := sh.ckpt
	if ck == nil || ck.jrn.overflow {
		return false
	}
	for attempt := 0; attempt < 2 && !ck.jrn.hasRoom(need); attempt++ {
		published, crashed := sh.checkpointNow()
		if crashed {
			return true
		}
		if !published {
			break
		}
	}
	if !ck.jrn.hasRoom(need) {
		ck.region.Invalidate(0)
		ck.region.Invalidate(1)
		ck.jrn.setOverflow()
		sh.jrnOverflows.Add(1)
	}
	return false
}

// maybeCheckpoint publishes an image when a cadence trigger is due.
func (sh *shard) maybeCheckpoint() (crashed bool) {
	ck := sh.ckpt
	if ck == nil {
		return false
	}
	due := ck.cfg.IntervalBatches > 0 && sh.batchesSince >= ck.cfg.IntervalBatches
	if !due && ck.cfg.Interval > 0 && time.Since(sh.lastCkpt) >= ck.cfg.Interval {
		due = true
	}
	if !due {
		return false
	}
	_, crashed = sh.checkpointNow()
	return crashed
}

// serveCheckpoint handles one explicit Store.Checkpoint request. It always
// replies (the requester may be parked on an unbuffered handshake), even
// when the attempt ends in a crash.
func (sh *shard) serveCheckpoint(reply chan error) (crashed bool) {
	if sh.ckpt == nil {
		reply <- errors.New("kv: checkpointing disabled")
		return false
	}
	published, crashed := sh.checkpointNow()
	switch {
	case crashed:
		reply <- ErrCrashed
	case !published:
		reply <- errors.New("kv: checkpoint skipped (tree exceeds image capacity)")
	default:
		reply <- nil
	}
	return crashed
}

// checkpointNow settles any in-flight batch and publishes one checkpoint
// from the resulting quiescent point, where tree, generation and journal
// tail are mutually consistent. Runs only on the shard writer. An injected
// crash at any checkpoint boundary ends the store exactly as a power
// failure there would — everything up to the torn image is already
// durable, and the torn image was invalidated before a byte of it was
// written, so recovery falls back cleanly.
func (sh *shard) checkpointNow() (published bool, crashed bool) {
	ck := sh.ckpt
	if ck == nil {
		return false, false
	}
	if sh.settle() {
		return false, true
	}
	if sh.st.crashing.Load() {
		return false, true
	}
	sh.lastCkpt = time.Now()
	sh.batchesSince = 0
	var pairs int
	var gen uint64
	var perr error
	crashed = sh.crashedDuring(func() {
		if hook := sh.st.opts.CheckpointHook; hook != nil {
			hook(CkptBegin)
		}
		published, pairs, gen, perr = publishImage(sh.db, ck, sh.st.opts.CheckpointHook)
		if published {
			sh.jrnTruncated.Add(truncateAfterPublish(ck, sh.st.opts.CheckpointHook))
		}
	})
	if crashed {
		sh.st.initiateCrash(sh)
		return false, true
	}
	if !published || perr != nil {
		sh.ckptSkipped.Add(1)
		return false, false
	}
	sh.ckpts.Add(1)
	sh.ckptPairs.Store(uint64(pairs))
	sh.ckptLastGen.Store(gen)
	return true, false
}

// ---------------------------------------------------------------------------
// Recovery side.

// shardRecovery is what one recovery worker hands back.
type shardRecovery struct {
	ck                            *shardCkpt
	mode                          uint64
	fallbacks, replayed, restored uint64
}

// recoverShardCkpt brings one shard's tree to the recovered state using the
// cheapest trustworthy source, in fallback order: newest valid image +
// journal suffix, older valid image + longer suffix, full journal replay
// from empty, and finally the rolled-back tree itself (the legacy
// guarantee, still crash-consistent — atlas already rolled back any
// in-flight FASE). The legacy path publishes a repair image so the next
// crash recovers bounded again. Safe to re-run from any crash point:
// nothing here consumes or invalidates the sources it reads, and the
// rebuild starts by discarding whatever partial tree a previous attempt
// left.
func recoverShardCkpt(db *mdb.DB, ck *shardCkpt, rhook func(atlas.RecoverOp), chook func(CkptOp)) (shardRecovery, error) {
	r := shardRecovery{ck: ck}
	j := ck.jrn
	imgs := ck.region.Images()
	torn := 0
	for i := 0; i < 2; i++ {
		if ck.region.SlotSeq(i) != 0 {
			torn++
		}
	}
	torn -= len(imgs)

	if !j.overflow {
		for i := range imgs {
			jpos := imgs[i].Meta[1]
			if jpos >= j.head && jpos <= j.tail {
				r.mode = RecoveryModeCheckpoint
				r.fallbacks = uint64(torn + i)
				var err error
				r.restored, r.replayed, err = rebuildShard(db, j, &imgs[i], rhook)
				return r, err
			}
		}
		if j.head == 0 && !j.broken {
			r.mode = RecoveryModeJournal
			r.fallbacks = uint64(torn + len(imgs))
			var err error
			r.restored, r.replayed, err = rebuildShard(db, j, nil, rhook)
			return r, err
		}
	}

	// Legacy: trust the rolled-back tree, then repair the invariant with a
	// fresh full-state image so the *next* recovery is bounded again.
	r.mode = RecoveryModeLegacy
	r.fallbacks = uint64(torn + len(imgs))
	published, _, _, err := publishImage(db, ck, chook)
	if err != nil {
		return r, err
	}
	if published {
		truncateAfterPublish(ck, chook)
	}
	return r, nil
}

// rebuildShard discards the crashed tree and reconstructs it from img (nil
// = start empty) plus the journal entries [img.jpos, tail). Work proceeds
// in FASE batches of rebuildBatch ops; the recovery hook fires before each
// batch (RecoverReplay) and before the final generation install
// (RecoverInstall), so crash exploration can cut the rebuild anywhere — a
// second recovery simply discards the partial tree and rebuilds again.
func rebuildShard(db *mdb.DB, j *journal, img *pmem.CheckpointImage, hook func(atlas.RecoverOp)) (restored, replayed uint64, err error) {
	if err := db.ResetForRebuild(); err != nil {
		return 0, 0, err
	}
	var start uint64
	targetGen := j.genWord()
	if img != nil {
		start = img.Meta[1]
		if start == j.tail {
			// Empty suffix: the journal's gen word may predate the image
			// (overflow-resume images cover un-journaled commits).
			targetGen = img.Meta[0]
		}
		for off := 0; off < len(img.Payload); off += 16 * rebuildBatch {
			if hook != nil {
				hook(atlas.RecoverReplay)
			}
			if err := db.Begin(); err != nil {
				return 0, 0, err
			}
			end := off + 16*rebuildBatch
			if end > len(img.Payload) {
				end = len(img.Payload)
			}
			for p := off; p+16 <= end; p += 16 {
				k := binary.LittleEndian.Uint64(img.Payload[p:])
				v := binary.LittleEndian.Uint64(img.Payload[p+8:])
				if err := db.Put(k, v); err != nil {
					_ = db.Abort()
					return 0, 0, err
				}
				restored++
			}
			if err := db.Commit(); err != nil {
				return 0, 0, err
			}
		}
	} else if j.tail == 0 {
		targetGen = 0
	}
	for idx := start; idx < j.tail; {
		if hook != nil {
			hook(atlas.RecoverReplay)
		}
		if err := db.Begin(); err != nil {
			return 0, 0, err
		}
		for n := 0; n < rebuildBatch && idx < j.tail; n++ {
			op, k, v := j.entry(idx)
			var werr error
			switch op {
			case jOpPut:
				werr = db.Put(k, v)
			case jOpDel:
				_, werr = db.Delete(k)
			default:
				werr = fmt.Errorf("kv: journal entry %d has unknown op %d", idx, op)
			}
			if werr != nil {
				_ = db.Abort()
				return 0, 0, werr
			}
			idx++
			replayed++
		}
		if err := db.Commit(); err != nil {
			return 0, 0, err
		}
	}
	if hook != nil {
		hook(atlas.RecoverInstall)
	}
	if err := db.ForceGeneration(targetGen); err != nil {
		return 0, 0, err
	}
	return restored, replayed, nil
}

// ---------------------------------------------------------------------------
// Store-level API.

// Checkpoint forces every shard to publish a checkpoint image now,
// returning once all are sealed and the journals are truncated. The
// request is served by each shard's writer at its next settled point, so
// the images are consistent committed states.
func (s *Store) Checkpoint() error {
	for _, sh := range s.shards {
		reply := make(chan error, 1)
		s.mu.RLock()
		if s.state != stateServing {
			st := s.state
			s.mu.RUnlock()
			if st == stateCrashed {
				return ErrCrashed
			}
			return ErrClosed
		}
		select {
		case sh.ckptCh <- reply:
			s.mu.RUnlock()
		case <-s.crashCh:
			s.mu.RUnlock()
			return ErrCrashed
		}
		select {
		case err := <-reply:
			if err != nil {
				return err
			}
		case <-s.crashCh:
			<-s.crashDone
			select {
			case err := <-reply:
				if err != nil {
					return err
				}
			default:
				return ErrCrashed
			}
		}
	}
	return nil
}

// CheckpointInfo exposes one shard's checkpoint state for tests and
// diagnostics. Read it only on a quiesced store (freshly recovered or
// closed); ok is false when checkpointing is disabled.
type CheckpointInfo struct {
	// Region is the shard's image region (tests corrupt images through it).
	Region *pmem.CheckpointRegion
	// JournalTail and JournalHead are the persistent ring bounds.
	JournalTail, JournalHead uint64
	// Overflow is set while journaling is suspended; Broken once the
	// journal's history has a permanent gap.
	Overflow, Broken bool
}

func (s *Store) CheckpointInfo(shard int) (CheckpointInfo, bool) {
	if shard < 0 || shard >= len(s.shards) {
		return CheckpointInfo{}, false
	}
	ck := s.shards[shard].ckpt
	if ck == nil {
		return CheckpointInfo{}, false
	}
	return CheckpointInfo{
		Region:      ck.region,
		JournalTail: s.heap.ReadUint64(ck.jrn.base + jrnTailOff),
		JournalHead: s.heap.ReadUint64(ck.jrn.base + jrnHeadOff),
		Overflow:    s.heap.ReadUint64(ck.jrn.base+jrnOverflowOff) != 0,
		Broken:      s.heap.ReadUint64(ck.jrn.base+jrnBrokenOff) != 0,
	}, true
}
