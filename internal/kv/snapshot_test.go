package kv

import (
	"testing"
	"time"
)

// TestSnapshotIsolation pins a snapshot and checks it stays an unchanged
// view while the shard's writer commits puts and deletes over it — the
// satellite property: reader holds db.Snapshot(), concurrent writer
// commits, GetSnapshot still answers from the old tree.
func TestSnapshotIsolation(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	defer s.Close()

	for k := uint64(0); k < 100; k++ {
		if err := s.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	gen := snap.Gen()

	// Concurrent writer: overwrite, delete, and insert behind the reader's
	// back, each acked (committed and flushed) before we re-read.
	for k := uint64(0); k < 50; k++ {
		if err := s.Put(k, 7777); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(50); k < 75; k++ {
		if _, err := s.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1000); k < 1050; k++ {
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	// The pinned view is exactly the tree at generation gen: original
	// values, deleted keys still present, new keys absent.
	for k := uint64(0); k < 100; k++ {
		if v, ok := snap.Get(k); !ok || v != k+1 {
			t.Fatalf("snapshot Get(%d) = %d,%v, want %d", k, v, ok, k+1)
		}
	}
	for k := uint64(1000); k < 1050; k++ {
		if _, ok := snap.Get(k); ok {
			t.Fatalf("snapshot sees key %d from a later generation", k)
		}
	}
	// The live view moved on.
	if v, ok, _ := s.Get(0); !ok || v != 7777 {
		t.Fatalf("live Get(0) = %d,%v", v, ok)
	}
	if _, ok, _ := s.Get(60); ok {
		t.Fatal("live view still has deleted key 60")
	}
	// Raw mdb-level assertion, as the satellite asks: the snapshot root
	// still resolves through GetSnapshot while the committed root differs.
	sh := s.shards[0]
	if sh.db.Generation() == gen {
		t.Fatal("writer never committed past the snapshot")
	}
	if v, ok := sh.db.GetSnapshot(snap.Root(), 25); !ok || v != 26 {
		t.Fatalf("mdb GetSnapshot = %d,%v", v, ok)
	}
	snap.Release()
}

// TestSnapshotDeferredReclaim holds a snapshot across enough churn that,
// without deferred reclamation, its pages would be recycled and rewritten;
// then checks the pool recovers once the snapshot is released (pages are
// parked, not leaked).
func TestSnapshotDeferredReclaim(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	defer s.Close()

	for k := uint64(0); k < 64; k++ {
		if err := s.Put(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := s.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: rewrite the same keys many times. Every commit supersedes
	// path pages the snapshot may reference, and while it stays pinned
	// they park instead of recycling.
	for round := uint64(0); round < 20; round++ {
		for k := uint64(0); k < 64; k++ {
			if err := s.Put(k, round<<32|k); err != nil {
				t.Fatal(err)
			}
		}
	}
	sh := s.shards[0]
	held := sh.db.PoolRemaining() // while pinned: superseded pages parked
	for k := uint64(0); k < 64; k++ {
		if v, ok := snap.Get(k); !ok || v != k*2 {
			t.Fatalf("snapshot Get(%d) = %d,%v after churn, want %d", k, v, ok, k*2)
		}
	}
	snap.Release()
	// More commits let the writer recycle the parked pages.
	for k := uint64(0); k < 64; k++ {
		if err := s.Put(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	if after := sh.db.PoolRemaining(); after <= held {
		t.Fatalf("release did not return parked pages: %d -> %d", held, after)
	}
}
