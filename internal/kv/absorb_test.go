package kv

import (
	"sync"
	"testing"
	"time"

	"nvmcache/internal/testutil"
)

// TestAbsorbIncrDecrBasic exercises the counter verbs end to end with
// absorption on: serial post-op values, durability across Close/Recover,
// and the absorbed+committed == issued accounting invariant.
func TestAbsorbIncrDecrBasic(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = time.Millisecond
	opts.Absorb = AbsorbConfig{Enabled: true, Threshold: 64, Deadline: 2 * time.Millisecond}
	s := newStore(t, opts)

	if v, err := s.Incr(1, 5); err != nil || v != 5 {
		t.Fatalf("Incr(1,5) = %d,%v", v, err)
	}
	if v, err := s.Incr(1, 2); err != nil || v != 7 {
		t.Fatalf("Incr(1,2) = %d,%v", v, err)
	}
	if v, err := s.Decr(1, 3); err != nil || v != 4 {
		t.Fatalf("Decr(1,3) = %d,%v", v, err)
	}
	// Decr below zero wraps (uint64 arithmetic).
	if v, err := s.Decr(2, 1); err != nil || v != ^uint64(0) {
		t.Fatalf("Decr(2,1) = %d,%v", v, err)
	}
	if v, ok, err := s.Get(1); err != nil || !ok || v != 4 {
		t.Fatalf("Get(1) = %d,%v,%v", v, ok, err)
	}
	st := Totals(s.Stats())
	if st.Incrs != 2 || st.Decrs != 2 {
		t.Fatalf("counter stats: %+v", st)
	}
	if st.Absorbed+st.Committed != st.BatchedOps {
		t.Fatalf("absorbed %d + committed %d != issued %d", st.Absorbed, st.Committed, st.BatchedOps)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rep, err := Recover(s.Heap(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 0 {
		t.Fatalf("clean shutdown rolled back %d FASEs", rep.FASEsRolledBack)
	}
	if v, ok, _ := s2.Get(1); !ok || v != 4 {
		t.Fatalf("recovered Get(1) = %d,%v", v, ok)
	}
	if v, ok, _ := s2.Get(2); !ok || v != ^uint64(0) {
		t.Fatalf("recovered Get(2) = %d,%v", v, ok)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAbsorbThresholdCoalescesSameKey parks concurrent increments of one
// key until the threshold commit and checks that the accumulator folded
// them into a single physical write: absorbed = n-1, committed = 1.
func TestAbsorbThresholdCoalescesSameKey(t *testing.T) {
	const n = 8
	opts := DefaultOptions()
	opts.Shards = 1
	opts.Absorb = AbsorbConfig{Enabled: true, Threshold: n, Deadline: 10 * time.Second}
	s := newStore(t, opts)
	defer s.Close()

	var wg sync.WaitGroup
	got := make([]uint64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.Incr(42, 1)
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("incr %d: %v", i, errs[i])
		}
		seen[got[i]] = true
	}
	// Serial results: each parked increment observed a distinct running
	// value 1..n, in park order.
	for v := uint64(1); v <= n; v++ {
		if !seen[v] {
			t.Fatalf("missing serial value %d in %v", v, got)
		}
	}
	if v, ok, _ := s.Get(42); !ok || v != n {
		t.Fatalf("Get(42) = %d,%v", v, ok)
	}
	st := Totals(s.Stats())
	if st.Committed != 1 || st.Absorbed != n-1 {
		t.Fatalf("want 1 committed / %d absorbed, got %d / %d", n-1, st.Committed, st.Absorbed)
	}
	if st.AbsorbThresholdCommits != 1 {
		t.Fatalf("threshold commits = %d", st.AbsorbThresholdCommits)
	}
}

// TestAbsorbNetNullPairSkipsFASE checks the provably-net-null case: an
// increment/decrement pair over an existing key cancels to the tree's
// current state, so the accumulator commit applies zero physical writes
// and pays no FASE at all — yet both callers are acked.
func TestAbsorbNetNullPairSkipsFASE(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.Absorb = AbsorbConfig{Enabled: true, Threshold: 2, Deadline: 10 * time.Second}
	s := newStore(t, opts)
	defer s.Close()

	if err := s.Put(7, 100); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var ierr, derr error
	wg.Add(2)
	go func() { defer wg.Done(); _, ierr = s.Incr(7, 5) }()
	go func() { defer wg.Done(); _, derr = s.Decr(7, 5) }()
	wg.Wait()
	if ierr != nil || derr != nil {
		t.Fatalf("incr/decr: %v / %v", ierr, derr)
	}
	if v, ok, _ := s.Get(7); !ok || v != 100 {
		t.Fatalf("Get(7) = %d,%v after canceling pair", v, ok)
	}
	st := Totals(s.Stats())
	if st.Batches != 1 { // the Put's FASE only
		t.Fatalf("net-null pair paid FASEs: batches=%d", st.Batches)
	}
	if st.Absorbed != 2 || st.Committed != 1 {
		t.Fatalf("want 2 absorbed / 1 committed, got %d / %d", st.Absorbed, st.Committed)
	}
}

// TestAbsorbDeadlineCommit parks a lone increment below the threshold and
// checks the deadline path commits (and acks) it without further traffic.
func TestAbsorbDeadlineCommit(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.Absorb = AbsorbConfig{Enabled: true, Threshold: 1 << 20, Deadline: 2 * time.Millisecond}
	s := newStore(t, opts)
	defer s.Close()

	start := time.Now()
	if v, err := s.Incr(9, 3); err != nil || v != 3 {
		t.Fatalf("Incr = %d,%v", v, err)
	}
	if waited := time.Since(start); waited < 2*time.Millisecond {
		t.Fatalf("ack arrived %v after issue, before the deadline", waited)
	}
	st := Totals(s.Stats())
	if st.AbsorbDeadlineCommits == 0 {
		t.Fatalf("no deadline commit recorded: %+v", st)
	}
	if v, ok, _ := s.Get(9); !ok || v != 3 {
		t.Fatalf("Get(9) = %d,%v", v, ok)
	}
}

// oracleState is the brute-force serial oracle: plain maps applied in op
// order on the issuing goroutine.
type oracleState struct {
	m map[uint64]uint64
}

func (o *oracleState) put(k, v uint64)   { o.m[k] = v }
func (o *oracleState) del(k uint64) bool { _, ok := o.m[k]; delete(o.m, k); return ok }
func (o *oracleState) incr(k, d uint64) uint64 {
	o.m[k] += d
	return o.m[k]
}

// TestAbsorbDifferentialOracle drives the identical seeded op stream
// through a store with absorption on, a store with absorption off, and
// the brute oracle, sequentially — asserting identical per-op ack results
// at every step, identical final durable state after Close, and the
// absorbed+committed == issued accounting on both stores.
func TestAbsorbDifferentialOracle(t *testing.T) {
	const (
		ops  = 400
		keys = 24
	)
	rng := testutil.Rand(t, 0xab50)
	mk := func(absorb bool) *Store {
		opts := DefaultOptions()
		opts.Shards = 2
		opts.MaxDelay = 200 * time.Microsecond
		opts.Absorb = AbsorbConfig{Enabled: absorb, Threshold: 4, Deadline: time.Millisecond}
		return newStore(t, opts)
	}
	on, off := mk(true), mk(false)
	oracle := &oracleState{m: make(map[uint64]uint64)}

	var issued uint64
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keys))
		switch rng.Intn(10) {
		case 0, 1, 2: // PUT
			v := rng.Uint64()
			if err := on.Put(k, v); err != nil {
				t.Fatalf("op %d: absorb Put: %v", i, err)
			}
			if err := off.Put(k, v); err != nil {
				t.Fatalf("op %d: plain Put: %v", i, err)
			}
			oracle.put(k, v)
			issued++
		case 3: // DELETE
			fa, err := on.Delete(k)
			if err != nil {
				t.Fatalf("op %d: absorb Delete: %v", i, err)
			}
			fb, err := off.Delete(k)
			if err != nil {
				t.Fatalf("op %d: plain Delete: %v", i, err)
			}
			fo := oracle.del(k)
			if fa != fo || fb != fo {
				t.Fatalf("op %d: Delete(%d) found absorb=%v plain=%v oracle=%v", i, k, fa, fb, fo)
			}
			issued++
		case 4: // GET (reads bypass the writer queue; parked deltas invisible on both)
			va, oka, err := on.Get(k)
			if err != nil {
				t.Fatalf("op %d: absorb Get: %v", i, err)
			}
			vb, okb, err := off.Get(k)
			if err != nil {
				t.Fatalf("op %d: plain Get: %v", i, err)
			}
			if oka != okb || (oka && va != vb) {
				t.Fatalf("op %d: Get(%d) absorb=%d,%v plain=%d,%v", i, k, va, oka, vb, okb)
			}
		default: // INCR / DECR
			d := uint64(rng.Intn(9) + 1)
			onOp, offOp, delta, name := on.Incr, off.Incr, d, "Incr"
			if rng.Intn(3) == 0 {
				onOp, offOp, delta, name = on.Decr, off.Decr, -d, "Decr"
			}
			va, err := onOp(k, d)
			if err != nil {
				t.Fatalf("op %d: absorb %s: %v", i, name, err)
			}
			vb, err := offOp(k, d)
			if err != nil {
				t.Fatalf("op %d: plain %s: %v", i, name, err)
			}
			vo := oracle.incr(k, delta)
			if va != vo || vb != vo {
				t.Fatalf("op %d: %s(%d,%d) absorb=%d plain=%d oracle=%d", i, name, k, d, va, vb, vo)
			}
			issued++
		}
	}

	for _, s := range []*Store{on, off} {
		st := Totals(s.Stats())
		if st.BatchedOps != issued {
			t.Fatalf("issued %d mutations, store acked %d", issued, st.BatchedOps)
		}
		if st.Absorbed+st.Committed != issued {
			t.Fatalf("absorbed %d + committed %d != issued %d", st.Absorbed, st.Committed, issued)
		}
	}
	if st := Totals(off.Stats()); st.Absorbed != 0 {
		t.Fatalf("absorption-off store absorbed %d ops", st.Absorbed)
	}

	// Identical final durable state, on the closed stores and against the
	// oracle.
	if err := on.Close(); err != nil {
		t.Fatal(err)
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		va, oka, _ := on.Get(k)
		vb, okb, _ := off.Get(k)
		vo, oko := oracle.m[k]
		if oka != oko || okb != oko || (oko && (va != vo || vb != vo)) {
			t.Fatalf("final state key %d: absorb=%d,%v plain=%d,%v oracle=%d,%v",
				k, va, oka, vb, okb, vo, oko)
		}
	}
}

// TestAbsorbOffCountersStillWork checks the INCR/DECR verbs with the
// absorption layer disabled: plain read-modify-write per op, same serial
// results.
func TestAbsorbOffCountersStillWork(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	defer s.Close()
	if v, err := s.Incr(3, 10); err != nil || v != 10 {
		t.Fatalf("Incr = %d,%v", v, err)
	}
	if v, err := s.Decr(3, 4); err != nil || v != 6 {
		t.Fatalf("Decr = %d,%v", v, err)
	}
	st := Totals(s.Stats())
	if st.Absorbed != 0 || st.Committed != st.BatchedOps {
		t.Fatalf("absorption-off accounting: %+v", st)
	}
}
