package kv

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"nvmcache/internal/pmem"
)

// ckptOptions is the small deterministic store shape the checkpoint tests
// share: no timer and no batch trigger, so checkpoints happen exactly when
// a test asks for them.
func ckptOptions() Options {
	o := DefaultOptions()
	o.Shards = 2
	o.MaxBatch = 4
	o.MaxDelay = 200 * time.Microsecond
	o.PoolPages = 256
	o.LogEntries = 1 << 12
	o.Checkpoint = CheckpointConfig{
		Enabled:        true,
		JournalOps:     256,
		MaxPairs:       128,
		RecoverWorkers: 2,
	}
	return o
}

// seqPuts issues n single-op batches over a keys-wide space, one at a
// time, so the resulting heap state is deterministic.
func seqPuts(t *testing.T, s *Store, start, n, keys int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		if err := s.Put(uint64(i%keys), 0xC0DE_0000+uint64(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
}

// wantAfterPuts mirrors seqPuts: the expected key→value state after ops
// [0, n) have been applied.
func wantAfterPuts(n, keys int) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		m[uint64(i%keys)] = 0xC0DE_0000 + uint64(i)
	}
	return m
}

func checkState(t *testing.T, s *Store, want map[uint64]uint64, keys int) {
	t.Helper()
	for k := uint64(0); k < uint64(keys); k++ {
		got, found, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		wv, wf := want[k]
		if found != wf || (found && got != wv) {
			t.Fatalf("key %d: got (%#x, present=%v), want (%#x, present=%v)", k, got, found, wv, wf)
		}
	}
}

// TestCheckpointBoundedReplay is the tentpole's basic property: after a
// checkpoint, recovery restores the image and replays only the journal
// suffix written since — not the whole history.
func TestCheckpointBoundedReplay(t *testing.T) {
	opts := ckptOptions()
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	seqPuts(t, s, 0, 40, keys)
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	tot := Totals(s.Stats())
	if tot.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2 (one per shard)", tot.Checkpoints)
	}
	if tot.CheckpointPairs == 0 || tot.CheckpointLastGen == 0 {
		t.Fatalf("checkpoint gauges unset: %+v", tot)
	}
	seqPuts(t, s, 40, 6, keys)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	rt := Totals(s2.Stats())
	if rt.RecoveryMode != RecoveryModeCheckpoint {
		t.Fatalf("recovery mode = %d, want %d (checkpoint)", rt.RecoveryMode, RecoveryModeCheckpoint)
	}
	if rt.RecoveryRestored == 0 {
		t.Fatalf("no pairs restored from images: %+v", rt)
	}
	// Only the 6 post-checkpoint ops may be replayed from the journal.
	if rt.RecoveryReplayed > 6 {
		t.Fatalf("replayed %d journal entries, want <= 6 (bounded suffix)", rt.RecoveryReplayed)
	}
	checkState(t, s2, wantAfterPuts(46, keys), keys)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTornImageFallback corrupts the newest image of each shard
// (a torn checkpoint, as a crash mid-serialize would leave after losing
// its seal) and requires recovery to fall back to the older image with its
// longer journal suffix — exact state, fallbacks counted.
func TestCheckpointTornImageFallback(t *testing.T) {
	opts := ckptOptions()
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	seqPuts(t, s, 0, 20, keys)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seqPuts(t, s, 20, 20, keys)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seqPuts(t, s, 40, 5, keys)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < opts.Shards; shard++ {
		info, ok := s.CheckpointInfo(shard)
		if !ok {
			t.Fatalf("shard %d: no checkpoint info", shard)
		}
		if n := len(info.Region.Images()); n != 2 {
			t.Fatalf("shard %d: %d valid images before corruption, want 2", shard, n)
		}
		newest := 0
		if info.Region.SlotSeq(1) > info.Region.SlotSeq(0) {
			newest = 1
		}
		info.Region.FlipPayloadByte(newest, 3)
	}

	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("recover after corruption: %v", err)
	}
	rt := Totals(s2.Stats())
	if rt.RecoveryMode != RecoveryModeCheckpoint {
		t.Fatalf("recovery mode = %d, want %d (older image)", rt.RecoveryMode, RecoveryModeCheckpoint)
	}
	if rt.RecoveryFallbacks == 0 {
		t.Fatalf("corrupted newest images but no fallbacks counted: %+v", rt)
	}
	// The older image covers ops [0,20); everything after must come from
	// the journal suffix — 25 ops split across both shards.
	if rt.RecoveryReplayed == 0 || rt.RecoveryReplayed > 25 {
		t.Fatalf("replayed %d entries, want in (0, 25]", rt.RecoveryReplayed)
	}
	checkState(t, s2, wantAfterPuts(45, keys), keys)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointAllImagesCorruptFullReplay corrupts every valid image
// while the journal still holds the full history (one checkpoint — the
// lag-by-one truncation rule keeps head at 0) and requires recovery to
// rebuild each shard from an empty tree by replaying the whole journal.
func TestCheckpointAllImagesCorruptFullReplay(t *testing.T) {
	opts := ckptOptions()
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	seqPuts(t, s, 0, 20, keys)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seqPuts(t, s, 20, 5, keys)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < opts.Shards; shard++ {
		info, ok := s.CheckpointInfo(shard)
		if !ok {
			t.Fatalf("shard %d: no checkpoint info", shard)
		}
		if info.JournalHead != 0 {
			t.Fatalf("shard %d: head %d after one checkpoint, lag-by-one should keep 0", shard, info.JournalHead)
		}
		for i := 0; i < 2; i++ {
			if info.Region.SlotSeq(i) != 0 {
				info.Region.FlipPayloadByte(i, 0)
			}
		}
	}

	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("recover with no valid image: %v", err)
	}
	rt := Totals(s2.Stats())
	if rt.RecoveryMode != RecoveryModeJournal {
		t.Fatalf("recovery mode = %d, want %d (full journal replay)", rt.RecoveryMode, RecoveryModeJournal)
	}
	if rt.RecoveryRestored != 0 {
		t.Fatalf("restored %d pairs with every image corrupt", rt.RecoveryRestored)
	}
	if rt.RecoveryReplayed != 25 {
		t.Fatalf("replayed %d entries, want all 25", rt.RecoveryReplayed)
	}
	checkState(t, s2, wantAfterPuts(25, keys), keys)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointOverflowDegradesToLegacy forces the journal into overflow
// (a one-pair image cap makes every checkpoint skip, so pressure can never
// be relieved) and checks the degraded contract: serving continues, the
// broken flag is permanent, and recovery falls back to trusting the
// committed tree — still losing nothing.
func TestCheckpointOverflowDegradesToLegacy(t *testing.T) {
	opts := ckptOptions()
	opts.MaxBatch = 1
	opts.Checkpoint.JournalOps = 4
	opts.Checkpoint.MaxPairs = 1
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 6
	seqPuts(t, s, 0, 30, keys)
	tot := Totals(s.Stats())
	if tot.JournalOverflows == 0 {
		t.Fatalf("4-entry journal never overflowed after 30 ops: %+v", tot)
	}
	if tot.CheckpointSkipped == 0 {
		t.Fatalf("one-pair image cap never skipped a checkpoint: %+v", tot)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	broken := 0
	for shard := 0; shard < opts.Shards; shard++ {
		if info, ok := s.CheckpointInfo(shard); ok && info.Broken {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("no shard carries the permanent broken flag after overflow")
	}

	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("recover overflowed store: %v", err)
	}
	// A shard still in overflow has no image and no usable journal: it must
	// take the legacy path. (A shard whose tree later shrank to one pair may
	// have cleared its overflow with a full-state image and legitimately
	// recover from it — broken only forbids trusting the journal's history.)
	legacies := 0
	for shard, st := range s2.Stats() {
		info, ok := s2.CheckpointInfo(shard)
		if !ok {
			t.Fatalf("shard %d: no checkpoint info", shard)
		}
		if info.Overflow && st.RecoveryMode != RecoveryModeLegacy {
			t.Fatalf("shard %d: overflowed but recovery mode = %d, want %d",
				shard, st.RecoveryMode, RecoveryModeLegacy)
		}
		if st.RecoveryMode == RecoveryModeLegacy {
			legacies++
		}
	}
	if legacies == 0 {
		t.Fatalf("no shard degraded to legacy recovery: %+v", Totals(s2.Stats()))
	}
	checkState(t, s2, wantAfterPuts(30, keys), keys)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverLegacyHeapUntouched is the backward-compatibility regression:
// recovering a cleanly-closed, un-checkpointed heap with checkpointing
// disabled takes exactly the pre-checkpoint code path — no directory, no
// journals, no images (the aux word stays zero), and the recovery is
// bit-deterministic: a byte-level clone of the heap recovers to a
// byte-identical image. (The heap is not literally unmodified — recovery
// has always allocated fresh runtime structures, moving the allocation
// cursor — so determinism plus aux==0 is the checkable contract.)
func TestRecoverLegacyHeapUntouched(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 2
	opts.MaxBatch = 4
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqPuts(t, s, 0, 24, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Clone the closed heap byte for byte (it is drained: volatile and
	// persisted views agree), then recover original and clone side by side.
	h2 := pmem.New(int(h.Size()))
	h2.WriteBytes(0, h.ReadBytes(0, h.Size()))
	h2.Persist(0, h2.Size())

	recoverOne := func(h *pmem.Heap) {
		s, rep, err := Recover(h, opts)
		if err != nil {
			t.Fatalf("recover legacy heap: %v", err)
		}
		if rt := Totals(s.Stats()); rt.RecoveryMode != RecoveryModeNone {
			t.Fatalf("legacy recovery reported mode %d, want %d", rt.RecoveryMode, RecoveryModeNone)
		}
		if rep.FASEsRolledBack != 0 {
			t.Fatalf("clean heap rolled back %d FASEs", rep.FASEsRolledBack)
		}
		checkState(t, s, wantAfterPuts(24, 6), 6)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recoverOne(h)
	recoverOne(h2)
	if h.Aux() != 0 || h2.Aux() != 0 {
		t.Fatalf("legacy recovery wrote the checkpoint directory (aux %#x, %#x)", h.Aux(), h2.Aux())
	}
	if !bytes.Equal(h.ReadBytes(0, h.Size()), h2.ReadBytes(0, h2.Size())) {
		for i := uint64(0); i < h.Size(); i++ {
			if h.ReadBytes(i, 1)[0] != h2.ReadBytes(i, 1)[0] {
				t.Fatalf("recovering identical legacy heaps diverged (first diff at offset %d)", i)
			}
		}
	}
}

// TestCheckpointRetrofit recovers a legacy heap with checkpointing
// requested: the directory is built, a first image of the existing state
// is published for every shard (recovery mode legacy, by definition — the
// tree was the only source), and the next recovery runs from checkpoints.
func TestCheckpointRetrofit(t *testing.T) {
	legacy := ckptOptions()
	legacy.Checkpoint = CheckpointConfig{}
	// Size the heap for the checkpointed shape plus slack: the retrofit
	// allocates the directory, journals and image regions on a heap whose
	// cursor already holds the legacy store.
	h := pmem.New(int(2 * RecommendedHeapBytes(ckptOptions())))
	s, err := Open(h, legacy)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 6
	seqPuts(t, s, 0, 24, keys)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if h.Aux() != 0 {
		t.Fatal("legacy store published a checkpoint directory")
	}

	opts := ckptOptions()
	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("retrofit recover: %v", err)
	}
	rt := Totals(s2.Stats())
	if rt.RecoveryMode != RecoveryModeLegacy {
		t.Fatalf("retrofit recovery mode = %d, want %d", rt.RecoveryMode, RecoveryModeLegacy)
	}
	if h.Aux() == 0 {
		t.Fatal("retrofit did not publish the checkpoint directory")
	}
	for shard := 0; shard < opts.Shards; shard++ {
		info, ok := s2.CheckpointInfo(shard)
		if !ok {
			t.Fatalf("shard %d: no checkpoint info after retrofit", shard)
		}
		if len(info.Region.Images()) == 0 {
			t.Fatalf("shard %d: retrofit published no image", shard)
		}
	}
	checkState(t, s2, wantAfterPuts(24, keys), keys)
	seqPuts(t, s2, 24, 6, keys)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if rt := Totals(s3.Stats()); rt.RecoveryMode != RecoveryModeCheckpoint {
		t.Fatalf("post-retrofit recovery mode = %d, want %d", rt.RecoveryMode, RecoveryModeCheckpoint)
	}
	checkState(t, s3, wantAfterPuts(30, keys), keys)
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelRecoveryConcurrentReads recovers many checkpointed shards
// with a bounded parallel worker pool, then immediately hammers the
// recovered store from concurrent readers (Stats, Get, Snapshot) and
// writers — the -race CI job turns this into a data-race proof for the
// recovery gauges and the handoff from recovery workers to serving shards.
func TestParallelRecoveryConcurrentReads(t *testing.T) {
	opts := ckptOptions()
	opts.Shards = 8
	opts.Checkpoint.RecoverWorkers = 4
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 64
	seqPuts(t, s, 0, 200, keys)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seqPuts(t, s, 200, 40, keys)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatalf("parallel recover: %v", err)
	}
	if rt := Totals(s2.Stats()); rt.RecoveryMode != RecoveryModeCheckpoint {
		t.Fatalf("recovery mode = %d, want %d", rt.RecoveryMode, RecoveryModeCheckpoint)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					_ = Totals(s2.Stats())
				case 1:
					if _, _, err := s2.Get(uint64(i % keys)); err != nil {
						t.Errorf("get: %v", err)
						return
					}
				default:
					snap, err := s2.Snapshot(i % opts.Shards)
					if err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
					snap.Release()
				}
			}
		}(c)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Writer keys live far above the checked key space.
				if err := s2.Put((uint64(c)+1)<<32|uint64(i), uint64(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	checkState(t, s2, wantAfterPuts(240, keys), keys)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointIntervalTimer lets the wall-clock trigger publish images
// with no explicit Checkpoint call and no batch trigger: an idle shard
// writer must wake up on its own cadence.
func TestCheckpointIntervalTimer(t *testing.T) {
	opts := ckptOptions()
	opts.Checkpoint.Interval = 5 * time.Millisecond
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqPuts(t, s, 0, 10, 4)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if Totals(s.Stats()).Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval timer never published a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
