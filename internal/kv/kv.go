// Package kv is a sharded, group-committing, durable key-value service
// layered on the paper's persistence stack: each shard owns one mdb COW
// B+-tree on its own atlas.Thread, driven by a dedicated writer goroutine
// that drains a queue of Put/Delete requests into a single
// Begin/…/Commit failure-atomic section. Group commit is the paper's
// write-combining idea lifted one level: where the software cache combines
// flushes of the same line *within* a FASE, the batch writer combines
// whole operations *into* one FASE, so the root-to-leaf page copies of a
// B+-tree update are paid once per batch instead of once per operation and
// the FASE-end drain is amortized over the batch. Requesters are acked
// only after the commit's flush completes, so an acked write survives any
// crash (see Crash and Recover).
//
// Reads never enter the writer queue: they are snapshot reads against the
// last committed root, published atomically by the writer. Superseded
// pages are reclaimed only once no snapshot that can still see them is
// live (deferred reclamation via mdb.SetFreeHook), so readers never block
// writers and writers never invalidate readers.
package kv

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvmcache/internal/adaptive"
	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/mdb"
	"nvmcache/internal/pmem"
)

// Errors returned by the request paths.
var (
	// ErrClosed reports a request against a store after Close.
	ErrClosed = errors.New("kv: store closed")
	// ErrCrashed reports a request lost to a (simulated) power failure; the
	// operation was not acked and may or may not be durable — after
	// Recover, requests aborted mid-batch are guaranteed rolled back.
	ErrCrashed = errors.New("kv: store crashed")
)

// Options configures a Store. Use DefaultOptions as the base; zero numeric
// fields are replaced by defaults, but Policy/Config are taken as-is.
type Options struct {
	// Shards is the number of independent engines (trees, writer
	// goroutines). Keys are routed by ShardIndex.
	Shards int
	// MaxBatch bounds how many requests one commit may absorb; 1 disables
	// group commit (every operation is its own FASE).
	MaxBatch int
	// MaxDelay bounds how long the writer waits for a batch to fill once
	// its first request has arrived.
	MaxDelay time.Duration
	// QueueDepth is the per-shard request channel capacity.
	QueueDepth int
	// PoolPages is the per-shard B+-tree page pool capacity.
	PoolPages int
	// LogEntries is the per-shard undo-log capacity; it must cover the
	// distinct words a full batch writes, or aborts and crash rollbacks
	// become incomplete.
	LogEntries int
	// Policy and Config select the per-thread persistence technique
	// (default: the paper's online-adaptive software cache).
	Policy core.PolicyKind
	Config core.Config
	// Pipeline, when Enabled, gives every shard thread an asynchronous
	// batched flush pipeline (core.FlushPipeline) and switches the writer
	// to the overlapped commit protocol: batch N's FASE is published
	// (mdb.CommitPublish) and batch N+1's stores and undo logging run
	// while batch N drains in the background; acks still wait for
	// durability (settle), only the wait moves off the apply path.
	Pipeline core.PipelineConfig
	// Adaptive, when Enabled, runs the online control plane
	// (internal/adaptive): per-shard samplers tap the store stream, and a
	// periodic controller retargets each shard's write-cache capacity from
	// its live miss-ratio curve and retunes the group-commit bounds and
	// flush-pipeline depth from observed counters. Policy is forced to
	// SoftCacheOffline so the external controller solely owns cache sizing
	// (the policy's own one-shot sampler stays out of the loop).
	Adaptive adaptive.Config
	// Absorb configures the logical write-absorption layer (absorb.go):
	// same-key coalescing inside each batch's FASE plus the volatile
	// counter accumulator behind Incr/Decr. Disabled by default.
	Absorb AbsorbConfig
	// AbsorbHook observes each absorption boundary crossing (merge,
	// threshold commit, deadline commit, absorb ack) on the shard writer;
	// internal/faultinject numbers them as crash-exploration sites.
	AbsorbHook func(op AbsorbOp)
	// Checkpoint configures per-shard checkpoint images, the redo journal
	// behind them, and parallel bounded-time recovery (checkpoint.go).
	// Disabled by default. A heap that already holds checkpoint structures
	// keeps them maintained across Recover regardless of this field.
	Checkpoint CheckpointConfig
	// CheckpointHook observes each checkpoint durability boundary
	// (begin, per-page persist, seal, truncate) on the shard writer;
	// internal/faultinject numbers them as crash-exploration sites.
	CheckpointHook func(op CkptOp)
	// RecoverHook observes recovery-side boundaries: atlas undo-log
	// rollback stages and each rebuild/replay batch during checkpointed
	// recovery. A panic claimed by IsInjectedCrash aborts the recovery
	// mid-flight (Recover returns ErrCrashed with the heap quiesced), and a
	// second Recover on the same heap must converge — the crash-exploration
	// contract for recovery itself.
	RecoverHook func(op atlas.RecoverOp)
	// CrashBeforeCommit is a failure-injection hook: when it returns true
	// the writer simulates a power failure in the middle of its FASE —
	// after the batch's stores, before the commit — so the whole store
	// crashes with that batch unacked and recoverable only by rollback.
	// batch is the shard's committed-batch count so far.
	CrashBeforeCommit func(shard, batch, size int) bool

	// WrapSink and UndoHook are forwarded to the underlying atlas runtime
	// (atlas.Options), interposing on each shard thread's flush sink and
	// undo log. internal/faultinject uses them to number every persistence
	// boundary of the group-commit path as a crash-exploration site. Shard
	// i's thread id is i.
	WrapSink func(thread int32, sink core.FlushSink) core.FlushSink
	UndoHook func(op atlas.UndoOp)
	// AckHook runs on the shard writer between a batch's durable commit
	// and the delivery of its acks — the last boundary at which a crash
	// leaves committed-but-unacked writes.
	AckHook func(shard int)
	// IsInjectedCrash classifies a panic raised by one of the hooks above
	// as a simulated power failure: the shard writer then abandons its
	// FASE and crashes the store exactly as CrashBeforeCommit does. Panics
	// it does not claim propagate unchanged.
	IsInjectedCrash func(r any) bool
}

// DefaultOptions returns the serving configuration used by cmd/nvserver.
func DefaultOptions() Options {
	return Options{
		Shards:     4,
		MaxBatch:   64,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: 256,
		PoolPages:  1 << 13,
		LogEntries: 1 << 14,
		Policy:     core.SoftCacheOnline,
		Config:     core.DefaultConfig(),
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Shards <= 0 {
		o.Shards = d.Shards
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = d.MaxBatch
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = d.MaxDelay
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = d.QueueDepth
	}
	if o.PoolPages <= 0 {
		o.PoolPages = d.PoolPages
	}
	if o.LogEntries <= 0 {
		o.LogEntries = d.LogEntries
	}
	if o.Adaptive.Enabled {
		o.Adaptive = o.Adaptive.WithDefaults()
		o.Policy = core.SoftCacheOffline
	}
	o.Absorb = o.Absorb.withDefaults(o.MaxDelay)
	o.Checkpoint = o.Checkpoint.withDefaults(o.PoolPages, o.MaxBatch)
	return o
}

// RecommendedHeapBytes estimates the persistent heap a store with these
// options needs, including headroom for the fresh undo logs each recovery
// allocates (the registry grows across restarts).
func RecommendedHeapBytes(o Options) uint64 {
	o = o.withDefaults()
	logs := uint64(1)
	if o.Pipeline.Enabled {
		logs = 2 // the spare overlap log each pipelined thread allocates
	}
	perShard := uint64(192)*uint64(o.PoolPages) + // page pool arena
		logs*16*uint64(o.LogEntries) + // undo log entries
		8*64 // meta page, pool header, log headers, slack
	total := uint64(o.Shards) * perShard
	restarts := uint64(4) // undo logs re-allocated per recovery
	total += restarts * uint64(o.Shards) * logs * (16*uint64(o.LogEntries) + 64)
	total += 64 + 8*uint64(o.Shards) + 1<<14 // directory + registry + slack
	if c := o.Checkpoint; c.Enabled {
		perShard := pmem.CheckpointRegionSize(16*uint64(c.MaxPairs)) +
			jrnHdr + jrnEntrySize*uint64(c.JournalOps) + 128
		total += uint64(o.Shards)*perShard + ckdHdr + ckdStride*uint64(o.Shards)
	}
	return total + total/4
}

// ShardIndex routes a key to a shard: a fixed avalanche hash (splitmix64
// finalizer) reduced mod shards, so routing is deterministic across
// processes and restarts.
func ShardIndex(key uint64, shards int) int {
	x := key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

const (
	stateServing = iota
	stateClosed
	stateCrashed
)

// Store is the sharded service handle. All methods are safe for concurrent
// use.
type Store struct {
	heap   *pmem.Heap
	rt     *atlas.Runtime
	opts   Options
	shards []*shard

	// Adaptive control plane (nil unless Options.Adaptive.Enabled).
	taps []*adaptive.Tap
	ctrl *adaptive.Controller

	crashing  atomic.Bool
	crashCh   chan struct{} // closed when a crash begins
	crashDone chan struct{} // closed when the crash has fully taken effect

	mu    sync.RWMutex
	state int
}

func runtimeOptions(o Options, taps []*adaptive.Tap) atlas.Options {
	// Trace recording is always off: a serving store runs indefinitely and
	// per-store trace buffers grow without bound.
	ro := atlas.Options{Policy: o.Policy, Config: o.Config, LogEntries: o.LogEntries, DisableTrace: true,
		WrapSink: o.WrapSink, UndoHook: o.UndoHook, Pipeline: o.Pipeline}
	if taps != nil {
		ro.StoreTap = func(thread int32) core.StoreTap {
			if int(thread) < len(taps) {
				return taps[thread]
			}
			return nil // a thread beyond the shard set stays untapped
		}
	}
	return ro
}

// Open creates a new store in an empty heap: a shard directory (shard
// count plus each shard's mdb meta address) becomes the heap root, so
// Recover can reattach after a restart.
func Open(heap *pmem.Heap, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if heap.Root() != 0 {
		return nil, errors.New("kv: heap already holds a store; use Recover")
	}
	taps := initAdaptive(opts)
	rt := atlas.NewRuntime(heap, runtimeOptions(opts, taps))
	dir, err := heap.AllocLines(uint64(8 + 8*opts.Shards))
	if err != nil {
		return nil, fmt.Errorf("kv: allocating shard directory: %w", err)
	}
	heap.WriteUint64(dir, uint64(opts.Shards))
	s := &Store{heap: heap, rt: rt, opts: opts, taps: taps,
		crashCh: make(chan struct{}), crashDone: make(chan struct{})}
	for i := 0; i < opts.Shards; i++ {
		th, err := rt.NewThread()
		if err != nil {
			return nil, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		db, err := mdb.Create(th, opts.PoolPages)
		if err != nil {
			return nil, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		heap.WriteUint64(dir+8+8*uint64(i), db.MetaAddr())
		s.shards = append(s.shards, newShard(s, i, th, db))
	}
	heap.Persist(dir, uint64(8+8*opts.Shards))
	heap.SetRoot(dir)
	if opts.Checkpoint.Enabled {
		// Fresh store: the journal covers the whole (empty) history, so the
		// journal-only recovery mode stays available until a first image
		// lands (broken=false).
		cks, err := setupCheckpoints(heap, opts.Checkpoint, opts.Shards, false)
		if err != nil {
			return nil, err
		}
		for i, sh := range s.shards {
			sh.ckpt = cks[i]
		}
	}
	s.start()
	return s, nil
}

// crashGuard runs fn, converting a panic claimed by the injected-crash
// classifier into crashed=true (recovery-side mirror of shard.crashedDuring).
func crashGuard(claim func(any) bool, fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if claim == nil || !claim(r) {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}

// Recover reattaches to a heap that held a store, rolling back any FASE
// that was in flight at the crash (every unacked batch), and resumes
// serving. The shard count is read back from the directory; opts.Shards is
// ignored.
//
// On a heap with checkpoint structures (see Options.Checkpoint) each
// shard's tree is then rebuilt from its newest valid checkpoint image plus
// the redo-journal suffix behind it — work bounded by the checkpoint
// interval, not the store's history — with shards recovered in parallel by
// a pool of Checkpoint.RecoverWorkers goroutines. A legacy heap (no
// structures) takes exactly the rollback-only path and is not written to
// beyond it; setting Checkpoint.Enabled on such a heap retrofits the
// structures during this recovery.
//
// Recovery itself is crash-safe: an injected crash at any RecoverHook or
// CheckpointHook boundary quiesces the heap and returns ErrCrashed, and a
// fresh Recover on the same heap converges — rebuilds restart from scratch
// and never consume the images or journal entries they read.
func Recover(heap *pmem.Heap, opts Options) (*Store, atlas.RecoveryReport, error) {
	opts = opts.withDefaults()
	claim := opts.IsInjectedCrash
	var rep atlas.RecoveryReport
	var aerr error
	if crashGuard(claim, func() {
		rep, aerr = atlas.RecoverWith(heap, atlas.RecoverOptions{Hook: opts.RecoverHook})
	}) {
		heap.Crash()
		return nil, rep, ErrCrashed
	}
	if aerr != nil {
		return nil, rep, fmt.Errorf("kv: %w", aerr)
	}
	dir := heap.Root()
	if dir == 0 {
		return nil, rep, errors.New("kv: heap holds no store; use Open")
	}
	n := heap.ReadUint64(dir)
	if n == 0 || n > 1<<16 {
		return nil, rep, fmt.Errorf("kv: corrupt shard directory (%d shards)", n)
	}
	opts.Shards = int(n)

	// Checkpoint structures: a heap that has them keeps them maintained
	// (the persistent geometry wins over opts); a legacy heap gains them
	// only when the caller asks.
	var cks []*shardCkpt
	retrofit := false
	if aux := heap.Aux(); aux != 0 {
		var err error
		cks, opts.Checkpoint, err = openCheckpoints(heap, aux, opts.Checkpoint, opts.Shards)
		if err != nil {
			return nil, rep, err
		}
	} else if opts.Checkpoint.Enabled {
		retrofit = true
	}

	taps := initAdaptive(opts)
	rt := atlas.NewRuntime(heap, runtimeOptions(opts, taps))
	s := &Store{heap: heap, rt: rt, opts: opts, taps: taps,
		crashCh: make(chan struct{}), crashDone: make(chan struct{})}
	ths := make([]*atlas.Thread, opts.Shards)
	dbs := make([]*mdb.DB, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		th, err := rt.NewThread()
		if err != nil {
			return nil, rep, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		db, err := mdb.Attach(th, heap.ReadUint64(dir+8+8*uint64(i)))
		if err != nil {
			return nil, rep, fmt.Errorf("kv: shard %d: %w", i, err)
		}
		ths[i], dbs[i] = th, db
	}

	recs := make([]shardRecovery, opts.Shards)
	if cks != nil {
		// Parallel checkpointed recovery: each worker owns its shard's
		// thread and tree outright, so the only shared state is the atlas
		// runtime's internals, which are built for concurrent threads.
		workers := opts.Checkpoint.RecoverWorkers
		if workers > opts.Shards {
			workers = opts.Shards
		}
		sem := make(chan struct{}, workers)
		errs := make([]error, opts.Shards)
		crashes := make([]bool, opts.Shards)
		panics := make([]any, opts.Shards)
		var wg sync.WaitGroup
		for i := range dbs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				defer func() {
					if r := recover(); r != nil {
						if claim != nil && claim(r) {
							crashes[i] = true
							return
						}
						panics[i] = r
					}
				}()
				recs[i], errs[i] = recoverShardCkpt(dbs[i], cks[i], opts.RecoverHook, opts.CheckpointHook)
			}(i)
		}
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
		for _, c := range crashes {
			if c {
				// An injected crash cut a rebuild mid-flight. Quiesce exactly
				// as a power failure would: abort any pipeline residue and
				// drop the volatile view. The next Recover starts over.
				rt.CrashAbort()
				heap.Crash()
				return nil, rep, ErrCrashed
			}
		}
		for i, err := range errs {
			if err != nil {
				return nil, rep, fmt.Errorf("kv: shard %d: recovery: %w", i, err)
			}
		}
	} else if retrofit {
		// Legacy heap, checkpointing requested: create the structures with
		// broken journals (their range can never cover the pre-existing
		// tree) and seed each region with a full-state image so the next
		// recovery is already bounded.
		var err error
		cks, err = setupCheckpoints(heap, opts.Checkpoint, opts.Shards, true)
		if err != nil {
			return nil, rep, err
		}
		for i := range dbs {
			var perr error
			if crashGuard(claim, func() {
				var published bool
				published, _, _, perr = publishImage(dbs[i], cks[i], opts.CheckpointHook)
				if published {
					truncateAfterPublish(cks[i], opts.CheckpointHook)
				}
			}) {
				rt.CrashAbort()
				heap.Crash()
				return nil, rep, ErrCrashed
			}
			if perr != nil {
				return nil, rep, fmt.Errorf("kv: shard %d: retrofit checkpoint: %w", i, perr)
			}
			recs[i] = shardRecovery{mode: RecoveryModeLegacy}
		}
	}

	for i := 0; i < opts.Shards; i++ {
		sh := newShard(s, i, ths[i], dbs[i])
		if cks != nil {
			sh.ckpt = cks[i]
		}
		sh.recMode.Store(recs[i].mode)
		sh.recFallbacks.Store(recs[i].fallbacks)
		sh.recReplayed.Store(recs[i].replayed)
		sh.recRestored.Store(recs[i].restored)
		s.shards = append(s.shards, sh)
	}
	s.start()
	return s, rep, nil
}

func (s *Store) start() {
	for _, sh := range s.shards {
		go sh.run()
	}
	s.startAdaptive()
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// ShardFor returns the shard index serving key k.
func (s *Store) ShardFor(k uint64) int { return ShardIndex(k, len(s.shards)) }

// Heap returns the underlying persistent heap.
func (s *Store) Heap() *pmem.Heap { return s.heap }

// enqueue hands a request to its shard's writer. The read lock is held
// across the send so state transitions (Close, the crash taking effect)
// cannot race the channel.
func (s *Store) enqueue(sh *shard, r request) error {
	s.mu.RLock()
	if s.state != stateServing {
		st := s.state
		s.mu.RUnlock()
		if st == stateCrashed {
			return ErrCrashed
		}
		return ErrClosed
	}
	select {
	case sh.ch <- r:
		s.mu.RUnlock()
		return nil
	case <-s.crashCh:
		s.mu.RUnlock()
		return ErrCrashed
	}
}

func (s *Store) await(done chan result) (result, error) {
	select {
	case res := <-done:
		return res, nil
	case <-s.crashCh:
		// Wait for the crash to take full effect: by then every batch that
		// committed before the failure has delivered its acks and every
		// abandoned request has been nacked, so a missing result here
		// firmly means the operation did not commit.
		<-s.crashDone
		select {
		case res := <-done:
			return res, nil
		default:
			return result{}, ErrCrashed
		}
	}
}

// Put durably stores k→v. It returns nil only after the batch containing
// the write has committed and its flushes completed — an acked Put
// survives any crash.
func (s *Store) Put(k, v uint64) error {
	sh := s.shards[ShardIndex(k, len(s.shards))]
	r := request{op: opPut, k: k, v: v, done: make(chan result, 1)}
	if err := s.enqueue(sh, r); err != nil {
		return err
	}
	res, err := s.await(r.done)
	if err != nil {
		return err
	}
	return res.err
}

// Delete durably removes k, reporting whether it was present. The same
// ack-after-flush guarantee as Put applies.
func (s *Store) Delete(k uint64) (bool, error) {
	sh := s.shards[ShardIndex(k, len(s.shards))]
	r := request{op: opDel, k: k, done: make(chan result, 1)}
	if err := s.enqueue(sh, r); err != nil {
		return false, err
	}
	res, err := s.await(r.done)
	if err != nil {
		return false, err
	}
	return res.found, res.err
}

// Incr durably adds d to k (wrapping uint64 arithmetic; a missing key
// counts from zero) and returns the post-increment value computed at the
// operation's serialization point. With absorption enabled the ack — and
// so the return — may be deferred until the shard's accumulator commits
// the key's net delta (threshold or deadline); the durability contract is
// unchanged: a returned Incr survives any crash.
func (s *Store) Incr(k, d uint64) (uint64, error) { return s.counterOp(opIncr, k, d) }

// Decr durably subtracts d from k (wrapping; a missing key counts from
// zero) and returns the post-decrement value, with Incr's ack semantics.
func (s *Store) Decr(k, d uint64) (uint64, error) { return s.counterOp(opDecr, k, d) }

func (s *Store) counterOp(op opKind, k, d uint64) (uint64, error) {
	sh := s.shards[ShardIndex(k, len(s.shards))]
	r := request{op: op, k: k, v: d, done: make(chan result, 1)}
	if err := s.enqueue(sh, r); err != nil {
		return 0, err
	}
	res, err := s.await(r.done)
	if err != nil {
		return 0, err
	}
	return res.val, res.err
}

// PutBatch durably stores every pair, grouping the pairs by shard so the
// whole batch costs one writer-queue enqueue (and one ack) per shard
// touched instead of one per pair — the wire protocol's MPUT rides this.
// Pairs routed to the same shard apply in slice order (a later duplicate
// key wins); ordering across shards is unspecified, as for concurrent
// Puts. It returns nil only after every pair's batch has committed and
// flushed: an acked PutBatch survives any crash in full. On error, a
// prefix of the shard groups may have committed — individual pairs are
// still atomic, the batch as a whole is not.
func (s *Store) PutBatch(pairs []Pair) error {
	switch len(pairs) {
	case 0:
		return nil
	case 1:
		return s.Put(pairs[0].K, pairs[0].V)
	}
	ns := len(s.shards)
	// Counting-sort the pairs into one shard-grouped backing slice; each
	// shard's request aliases its contiguous run.
	counts := make([]int, ns)
	for i := range pairs {
		counts[ShardIndex(pairs[i].K, ns)]++
	}
	offs := make([]int, ns)
	sum, touched := 0, 0
	for i, c := range counts {
		offs[i] = sum
		sum += c
		if c > 0 {
			touched++
		}
	}
	grouped := make([]Pair, len(pairs))
	fill := make([]int, ns)
	copy(fill, offs)
	for i := range pairs {
		si := ShardIndex(pairs[i].K, ns)
		grouped[fill[si]] = pairs[i]
		fill[si]++
	}
	// One buffered done channel shared by every shard request: writers
	// never block on it even if we bail out early on an enqueue error.
	done := make(chan result, touched)
	sent := 0
	var firstErr error
	for i := 0; i < ns; i++ {
		if counts[i] == 0 {
			continue
		}
		r := request{op: opPuts, pairs: grouped[offs[i] : offs[i]+counts[i]], done: done}
		if err := s.enqueue(s.shards[i], r); err != nil {
			firstErr = err
			break
		}
		sent++
	}
	for j := 0; j < sent; j++ {
		res, err := s.await(done)
		if err == nil {
			err = res.err
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// getBatchShards bounds the stack-allocated snapshot bookkeeping in
// GetBatch; stores with more shards fall back to heap slices.
const getBatchShards = 64

// GetBatch reads keys[i] into vals[i] and found[i] (both must be at
// least len(keys) long) from each shard's last committed snapshot — the
// wire protocol's MGET. The store lock is taken once and each shard's
// snapshot is pinned at most once, so the view is per-shard consistent
// exactly like a sequence of Gets, at a fraction of the synchronization.
// Allocation-free for stores with up to getBatchShards shards.
func (s *Store) GetBatch(keys, vals []uint64, found []bool) error {
	if len(keys) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.state == stateCrashed {
		return ErrCrashed
	}
	ns := len(s.shards)
	var rootsArr, gensArr [getBatchShards]uint64
	var pinnedArr [getBatchShards]bool
	roots, gens, pinned := rootsArr[:], gensArr[:], pinnedArr[:]
	if ns > getBatchShards {
		roots = make([]uint64, ns)
		gens = make([]uint64, ns)
		pinned = make([]bool, ns)
	}
	for i, k := range keys {
		si := ShardIndex(k, ns)
		sh := s.shards[si]
		if !pinned[si] {
			roots[si], gens[si] = sh.acquire()
			pinned[si] = true
		}
		vals[i], found[i] = sh.db.GetSnapshot(roots[si], k)
		sh.gets.Add(1)
	}
	for si := 0; si < ns; si++ {
		if pinned[si] {
			s.shards[si].release(gens[si])
		}
	}
	return nil
}

// Get reads k from the shard's last committed snapshot, without entering
// the writer queue: concurrent commits never block a reader and a reader
// never blocks the writer. Reads keep working after Close (the heap stays
// attached) but not after a crash.
func (s *Store) Get(k uint64) (uint64, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.state == stateCrashed {
		return 0, false, ErrCrashed
	}
	sh := s.shards[ShardIndex(k, len(s.shards))]
	root, gen := sh.acquire()
	v, ok := sh.db.GetSnapshot(root, k)
	sh.release(gen)
	sh.gets.Add(1)
	return v, ok, nil
}

// Pair is one key/value returned by Scan.
type Pair struct{ K, V uint64 }

// Scan returns up to n pairs with keys ≥ start in ascending key order.
// Keys are hash-routed across shards, so each shard's B+-tree holds an
// arbitrary key subset: Scan walks every shard's last committed snapshot
// from start (up to n pairs each) and merges, giving a globally ordered
// range read. The per-shard snapshots are lock-free but acquired one
// after another, so the merged view is per-shard — not cross-shard —
// consistent. Like Get it never enters the writer queue.
func (s *Store) Scan(start uint64, n int) ([]Pair, error) {
	if n <= 0 {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.state == stateCrashed {
		return nil, ErrCrashed
	}
	all := make([]Pair, 0, n)
	for _, sh := range s.shards {
		root, gen := sh.acquire()
		taken := 0
		for c := sh.db.Seek(root, start); c.Valid() && taken < n; c.Next() {
			all = append(all, Pair{c.Key(), c.Value()})
			taken++
		}
		sh.release(gen)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].K < all[j].K })
	if len(all) > n {
		all = all[:n]
	}
	s.shards[ShardIndex(start, len(s.shards))].scans.Add(1)
	return all, nil
}

// Snapshot pins shard's current committed root: Get against the snapshot
// sees that exact tree regardless of concurrent commits, because the pages
// it references are not recycled until Release. Snapshots must be released
// before Crash; reads concurrent with a power failure are undefined.
func (s *Store) Snapshot(shard int) (*Snapshot, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("kv: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.state == stateCrashed {
		return nil, ErrCrashed
	}
	sh := s.shards[shard]
	root, gen := sh.acquire()
	return &Snapshot{sh: sh, root: root, gen: gen}, nil
}

// Snapshot is a pinned read-only view of one shard.
type Snapshot struct {
	sh       *shard
	root     uint64
	gen      uint64
	released bool
}

// Get looks k up in the pinned view.
func (sn *Snapshot) Get(k uint64) (uint64, bool) { return sn.sh.db.GetSnapshot(sn.root, k) }

// Gen returns the committed generation the snapshot pins.
func (sn *Snapshot) Gen() uint64 { return sn.gen }

// Root exposes the pinned root (for mdb.GetSnapshot-level assertions).
func (sn *Snapshot) Root() uint64 { return sn.root }

// Release unpins the view, allowing its superseded pages to be recycled.
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	sn.sh.release(sn.gen)
}

// Close drains every shard gracefully: pending requests are accepted no
// more, queued ones are batched, committed and acked, writer goroutines
// exit, and the runtime's residual dirty state is persisted. Reads remain
// possible afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.state != stateServing {
		st := s.state
		s.mu.Unlock()
		if st == stateCrashed {
			return ErrCrashed
		}
		return nil
	}
	s.state = stateClosed
	s.mu.Unlock()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	s.stopAdaptive()
	if s.crashing.Load() {
		return ErrCrashed
	}
	s.rt.Close()
	return nil
}

// Crash simulates a power failure: in-flight batches are abandoned
// mid-FASE (never acked, rolled back by Recover), writer goroutines stop,
// the heap's volatile view is discarded, and every queued request fails
// with ErrCrashed. The Store is unusable afterwards; build a new one with
// Recover on the same heap.
func (s *Store) Crash() error { return s.initiateCrash(nil) }

// Crashed is closed once a crash (external or injected) has fully taken
// effect — after it, the heap is safe to Recover.
func (s *Store) Crashed() <-chan struct{} { return s.crashDone }

// initiateCrash coordinates the failure: writers park first (so no
// goroutine mutates the heap mid-discard), then the volatile view is
// dropped. except is the writer-shard initiating the crash from inside its
// own FASE (via CrashBeforeCommit), which parks itself after returning.
func (s *Store) initiateCrash(except *shard) error {
	if !s.crashing.CompareAndSwap(false, true) {
		return ErrCrashed
	}
	close(s.crashCh)
	// Tear down the flush pipelines first: a writer parked on backpressure
	// or an epoch await (settle) is released by the abort and exits through
	// its crash path, and no pipeline worker touches the heap after this
	// returns — the volatile view below is dropped on a quiescent heap.
	s.rt.CrashAbort()
	for _, sh := range s.shards {
		if sh != except {
			<-sh.done
		}
	}
	// The controller's targets are published atomically and applied only at
	// writer safe points, so it cannot corrupt the quiescing heap; stop it
	// anyway so no decision loop outlives the store.
	s.stopAdaptive()
	s.mu.Lock()
	s.state = stateCrashed
	s.heap.Crash()
	s.mu.Unlock()
	for _, sh := range s.shards {
		for {
			select {
			case r := <-sh.ch:
				r.done <- result{err: ErrCrashed}
				continue
			default:
			}
			break
		}
	}
	close(s.crashDone)
	return nil
}

// CheckInvariants validates every shard's tree structure. Call it on a
// quiesced store (freshly recovered, or after Close).
func (s *Store) CheckInvariants() error {
	for _, sh := range s.shards {
		if err := sh.db.CheckInvariants(); err != nil {
			return fmt.Errorf("kv: shard %d: %w", sh.id, err)
		}
	}
	return nil
}
