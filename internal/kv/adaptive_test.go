package kv

import (
	"sync"
	"testing"
	"time"

	"nvmcache/internal/adaptive"
	"nvmcache/internal/core"
)

// adaptiveOptions is a store configuration whose controller ticks fast and
// whose taps complete bursts quickly, so convergence is observable within a
// test deadline.
func adaptiveOptions() Options {
	opts := DefaultOptions()
	opts.Shards = 2
	opts.MaxDelay = 200 * time.Microsecond
	opts.Adaptive = adaptive.Config{
		Enabled:     true,
		Interval:    2 * time.Millisecond,
		BurstLength: 256,
		Hibernation: 256,
		Hysteresis:  0.01,
	}
	return opts
}

// TestAdaptiveControllerConverges drives a hot-key workload through a live
// store and waits for the control plane to sample it and retarget the
// write-cache capacity away from the offline default.
func TestAdaptiveControllerConverges(t *testing.T) {
	s := newStore(t, adaptiveOptions())
	defer s.Close()
	if s.opts.Policy != core.SoftCacheOffline {
		t.Fatalf("adaptive store runs policy %v, want SoftCacheOffline", s.opts.Policy)
	}

	deadline := time.Now().Add(10 * time.Second)
	var k uint64
	for time.Now().Before(deadline) {
		// A small hot set recycled continuously: every shard's line stream
		// has strong reuse, so bursts complete and knees exist.
		for i := 0; i < 256; i++ {
			if err := s.Put(k%64, k); err != nil {
				t.Fatal(err)
			}
			k++
		}
		gauges := s.AdaptiveGauges()
		if gauges == nil {
			t.Fatal("AdaptiveGauges() = nil on an adaptive store")
		}
		resized := 0
		for _, g := range gauges {
			if g.Sampled > 0 && g.Resizes > 0 {
				resized++
			}
		}
		if resized == len(gauges) {
			decs := s.AdaptiveDecisions()
			if len(decs) == 0 {
				t.Fatal("resizes recorded but the decision trajectory is empty")
			}
			for _, st := range s.Stats() {
				if st.AdaptiveCap <= 0 {
					t.Fatalf("shard %d: adaptive_cap=%d after a resize", st.Shard, st.AdaptiveCap)
				}
				if st.AdaptiveSample <= 0 || st.AdaptiveResizes <= 0 || st.AdaptiveLast <= 0 {
					t.Fatalf("shard %d: adaptive gauges not populated: %+v", st.Shard, st)
				}
			}
			return
		}
	}
	t.Fatalf("controller did not resize every shard within the deadline: %+v", s.AdaptiveGauges())
}

// TestAdaptiveGaugesNilWhenDisabled pins the off-state surface: nil gauge
// and decision slices, zero-valued adaptive_* STATS keys.
func TestAdaptiveGaugesNilWhenDisabled(t *testing.T) {
	s := newStore(t, DefaultOptions())
	defer s.Close()
	if g := s.AdaptiveGauges(); g != nil {
		t.Fatalf("AdaptiveGauges() = %v on a static store, want nil", g)
	}
	if d := s.AdaptiveDecisions(); d != nil {
		t.Fatalf("AdaptiveDecisions() = %v on a static store, want nil", d)
	}
	for _, st := range s.Stats() {
		if st.AdaptiveCap != 0 || st.AdaptiveResizes != 0 || st.AdaptiveSample != 0 {
			t.Fatalf("static store reports adaptive gauges: %+v", st)
		}
	}
}

// TestResizeRacesStoresAndDrains hammers RequestCacheResize from several
// goroutines while writers commit pipelined batches and observers read
// stats — the capacity handoff (atomic publication, applied at FASE end) and
// the batch-bound atomics must be race-clean. Run with -race.
func TestResizeRacesStoresAndDrains(t *testing.T) {
	opts := adaptiveOptions()
	opts.Pipeline = core.PipelineConfig{Enabled: true, Depth: 64, BatchSize: 16}
	s := newStore(t, opts)
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(k%512, k); err != nil {
					t.Error(err)
					return
				}
				k += 7
			}
		}(uint64(w) * 131)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		capacities := []int{1, 50, 8, 2, 33}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for sh := 0; sh < s.Shards(); sh++ {
				if !s.RequestCacheResize(sh, capacities[i%len(capacities)]) {
					t.Error("RequestCacheResize refused on a resizable policy")
					return
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Stats()
			s.AdaptiveGauges()
			s.AdaptiveDecisions()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every key the storm acked must read back.
	for k := uint64(0); k < 512; k++ {
		if _, _, err := s.Get(k); err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
