package kv

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/mdb"
)

type opKind uint8

const (
	opPut opKind = iota
	opDel
	opIncr
	opDecr
	// opPuts is a batched put (Store.PutBatch / the wire protocol's MPUT):
	// one request carrying a shard-local pairs slice, acked once after the
	// whole slice is durable. It rides the queue as a single request so an
	// MPUT costs one enqueue/ack per shard touched instead of one per pair.
	opPuts
)

// request is one queued mutation; done (buffered) carries the ack after
// the containing batch has committed and flushed. For counter ops v is
// the delta; for opPuts the payload is pairs and k/v are unused.
type request struct {
	op    opKind
	k, v  uint64
	pairs []Pair // opPuts only; shard-local, owned by the writer after enqueue
	done  chan result
}

// reqCost is a request's logical op count: a batched put carries one op
// per pair (never less than one, so a batch always makes progress),
// everything else is one. Group-commit bounds, journal sizing, and stats
// all count logical ops so an MPUT of n pairs weighs the same as n PUTs.
func reqCost(r *request) int {
	if r.op == opPuts && len(r.pairs) > 1 {
		return len(r.pairs)
	}
	return 1
}

// logicalOps sums reqCost over a batch.
func logicalOps(batch []request) int {
	n := 0
	for i := range batch {
		n += reqCost(&batch[i])
	}
	return n
}

type result struct {
	err   error
	found bool
	val   uint64 // counter ops: the post-op value at the serialization point
}

// genPages are the pages superseded by the commit of generation gen; a
// snapshot of any generation < gen may still read them.
type genPages struct {
	gen   uint64
	pages []uint64
}

// flightBatch is one group commit whose FASE has been published
// (mdb.CommitPublish) but not yet settled: its epoch is draining through
// the flush pipeline while the writer applies the next batch, and its
// requesters are still waiting for acks.
type flightBatch struct {
	batch   []request
	results []result
	pc      *mdb.PendingCommit
	root    uint64 // the published root, installed for readers at settle
	gen     uint64
	pre     core.FlushStats // thread flush counters straddling the apply
	post    core.FlushStats
	applied int  // physical ops the FASE executed (absorption accounting)
	fold    bool // parked counter ops ack with this batch (AbsorbAck boundary)
}

// shard is one engine: a COW B+-tree on its own atlas thread, mutated only
// by its writer goroutine (run), read by anyone through pinned snapshots.
type shard struct {
	id   int
	st   *Store
	th   *atlas.Thread
	db   *mdb.DB
	ch   chan request
	done chan struct{} // closed when the writer goroutine exits

	// maxBatch/maxDelayNs are the live group-commit bounds, initialized from
	// Options and retargeted at runtime by the adaptive controller
	// (shardControl.SetBatchBounds); the writer reads them once per gather,
	// so a new bound takes effect at the next batch.
	maxBatch   atomic.Int64
	maxDelayNs atomic.Int64

	// Absorption knobs (live, adaptive-retargetable like the bounds above)
	// and the counter accumulator. acc is writer-goroutine-owned.
	absorbThreshold  atomic.Int64
	absorbDeadlineNs atomic.Int64
	acc              accumulator

	// inFlight is the previous batch, commit-published but not settled
	// (awaited, installed for readers, acked). Non-nil only between loop
	// iterations of the overlapped protocol. Writer goroutine only.
	inFlight *flightBatch

	// Checkpoint state (nil when checkpointing is off). ckptCh carries
	// explicit Store.Checkpoint requests to the writer, which serves them at
	// settled points; lastCkpt/batchesSince drive the cadence triggers.
	// Writer goroutine only, except the ckptCh sends.
	ckpt         *shardCkpt
	ckptCh       chan chan error
	lastCkpt     time.Time
	batchesSince int

	// Snapshot bookkeeping. curRoot/curGen are the last *committed* root
	// and generation — never a mid-transaction root, which is why readers
	// must go through acquire instead of db.Snapshot.
	snapMu  sync.Mutex
	curRoot uint64
	curGen  uint64
	active  map[uint64]int // snapshot generation → pin count
	pending []genPages     // freed pages awaiting reader drain

	counters
}

func newShard(s *Store, id int, th *atlas.Thread, db *mdb.DB) *shard {
	sh := &shard{
		id: id, st: s, th: th, db: db,
		ch:     make(chan request, s.opts.QueueDepth),
		ckptCh: make(chan chan error),
		done:   make(chan struct{}),
		active: make(map[uint64]int),
	}
	sh.lastCkpt = time.Now()
	sh.maxBatch.Store(int64(s.opts.MaxBatch))
	sh.maxDelayNs.Store(int64(s.opts.MaxDelay))
	sh.absorbThreshold.Store(int64(s.opts.Absorb.Threshold))
	sh.absorbDeadlineNs.Store(int64(s.opts.Absorb.Deadline))
	sh.curRoot = db.Snapshot()
	sh.curGen = db.Generation()
	db.SetFreeHook(sh.onFreed)
	sh.lats = make([]float64, 0, latRingCap)
	return sh
}

// acquire pins the current committed view for a reader.
func (sh *shard) acquire() (root, gen uint64) {
	sh.snapMu.Lock()
	root, gen = sh.curRoot, sh.curGen
	sh.active[gen]++
	sh.snapMu.Unlock()
	return root, gen
}

// release unpins; eligible pages are recycled at the writer's next commit
// (the pool free list is single-writer).
func (sh *shard) release(gen uint64) {
	sh.snapMu.Lock()
	if sh.active[gen]--; sh.active[gen] <= 0 {
		delete(sh.active, gen)
	}
	sh.snapMu.Unlock()
}

// onFreed is the mdb free hook: it runs on the writer goroutine during
// Commit, parking the superseded pages until readers drain.
func (sh *shard) onFreed(gen uint64, pages []uint64) {
	sh.snapMu.Lock()
	sh.pending = append(sh.pending, genPages{gen: gen, pages: pages})
	sh.snapMu.Unlock()
}

// publish installs the newly committed root for readers and recycles every
// parked page no live snapshot can still reach.
func (sh *shard) publish() { sh.publishView(sh.db.Snapshot(), sh.db.Generation()) }

// publishView is publish with an explicit root/generation: the overlapped
// protocol settles batch N after batch N+1 has already advanced the tree,
// so readers must be handed N's root, not the db's current (still
// undurable) one.
func (sh *shard) publishView(root, gen uint64) {
	sh.snapMu.Lock()
	sh.curRoot = root
	sh.curGen = gen
	minGen := uint64(math.MaxUint64)
	for g := range sh.active {
		if g < minGen {
			minGen = g
		}
	}
	var reclaim []uint64
	keep := sh.pending[:0]
	for _, gp := range sh.pending {
		// Pages freed by commit gen are needed by snapshots with
		// generation < gen only.
		if minGen >= gp.gen {
			reclaim = append(reclaim, gp.pages...)
		} else {
			keep = append(keep, gp)
		}
	}
	sh.pending = keep
	sh.snapMu.Unlock()
	if len(reclaim) > 0 {
		sh.db.RecyclePages(reclaim)
	}
}

// run is the shard's writer loop: take the first waiting request, gather a
// batch (bounded by MaxBatch and MaxDelay), commit it as one FASE, ack.
//
// With the flush pipeline enabled the loop is overlapped: commitBatch
// leaves the batch in flight (published, draining in the background) and
// the writer immediately starts the next batch if work is already queued —
// batch N+1's stores and undo logging run concurrently with batch N's
// drain — settling the in-flight batch (await, install root, ack) as soon
// as the queue goes idle or its successor is published.
func (sh *shard) run() {
	defer close(sh.done)
	// Parked counter requests survive loop iterations; if the writer exits
	// with any still parked (crash paths — the graceful close drains the
	// accumulator first), their deltas were never committed and nacking is
	// exact.
	defer sh.nackParked(ErrCrashed)
	for {
		if sh.inFlight != nil {
			select {
			case req, ok := <-sh.ch:
				if !ok {
					if !sh.drainAbsorb() {
						sh.settle()
					}
					return
				}
				batch := sh.gatherQueued(req)
				if sh.commitBatch(batch) {
					return
				}
				if sh.maybeCheckpoint() {
					return
				}
			case reply := <-sh.ckptCh:
				if sh.serveCheckpoint(reply) {
					return
				}
			case <-sh.st.crashCh:
				sh.dropInFlight()
				return
			default:
				// Queue idle: stop overlapping and deliver the acks.
				if sh.settle() {
					return
				}
			}
			continue
		}
		// With counter ops parked, wake at the absorption deadline so their
		// net delta commits (and they ack) even if the queue stays idle.
		var (
			deadlineC <-chan time.Time
			timer     *time.Timer
		)
		if sh.absorbOn() && sh.acc.pending() > 0 {
			wait := time.Duration(sh.absorbDeadlineNs.Load()) - time.Since(sh.acc.opened)
			if wait < 0 {
				wait = 0
			}
			timer = time.NewTimer(wait)
			deadlineC = timer.C
		}
		// With a wall-clock checkpoint cadence configured, wake at the next
		// due time even if the queue stays idle.
		var (
			ckptC     <-chan time.Time
			ckptTimer *time.Timer
		)
		if ck := sh.ckpt; ck != nil && ck.cfg.Interval > 0 {
			wait := ck.cfg.Interval - time.Since(sh.lastCkpt)
			if wait < 0 {
				wait = 0
			}
			ckptTimer = time.NewTimer(wait)
			ckptC = ckptTimer.C
		}
		stopTimers := func() {
			if timer != nil {
				timer.Stop()
			}
			if ckptTimer != nil {
				ckptTimer.Stop()
			}
		}
		select {
		case req, ok := <-sh.ch:
			stopTimers()
			if !ok {
				if !sh.drainAbsorb() {
					sh.settle()
				}
				return
			}
			batch := sh.gather(req)
			if sh.commitBatch(batch) {
				return
			}
			if sh.maybeCheckpoint() {
				return
			}
		case <-deadlineC:
			if ckptTimer != nil {
				ckptTimer.Stop()
			}
			if sh.commitBatch(nil) {
				return
			}
			if sh.maybeCheckpoint() {
				return
			}
		case <-ckptC:
			if timer != nil {
				timer.Stop()
			}
			if _, crashed := sh.checkpointNow(); crashed {
				return
			}
		case reply := <-sh.ckptCh:
			stopTimers()
			if sh.serveCheckpoint(reply) {
				return
			}
		case <-sh.st.crashCh:
			stopTimers()
			return
		}
	}
}

// gather collects requests for one group commit: it returns when the batch
// is full, when MaxDelay has passed since the batch opened, or when the
// store is shutting down or crashing.
func (sh *shard) gather(first request) []request {
	maxBatch := int(sh.maxBatch.Load())
	batch := make([]request, 1, maxBatch)
	batch[0] = first
	n := reqCost(&first)
	if maxBatch <= 1 || n >= maxBatch {
		return batch
	}
	timer := time.NewTimer(time.Duration(sh.maxDelayNs.Load()))
	defer timer.Stop()
	for n < maxBatch {
		select {
		case r, ok := <-sh.ch:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			n += reqCost(&r)
		case <-timer.C:
			return batch
		case <-sh.st.crashCh:
			return batch
		}
	}
	return batch
}

// gatherQueued collects a batch without waiting: while a published batch is
// still in flight, the writer absorbs only requests that are already
// queued — blocking on MaxDelay here would hold back the in-flight batch's
// acks for no benefit.
func (sh *shard) gatherQueued(first request) []request {
	maxBatch := int(sh.maxBatch.Load())
	batch := make([]request, 1, maxBatch)
	batch[0] = first
	n := reqCost(&first)
	for n < maxBatch {
		select {
		case r, ok := <-sh.ch:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			n += reqCost(&r)
		default:
			return batch
		}
	}
	return batch
}

func nackAll(batch []request, err error) {
	for i := range batch {
		batch[i].done <- result{err: err}
	}
}

// batchOutcome describes how applyBatch left the shard's transaction.
type batchOutcome uint8

const (
	batchCommitted     batchOutcome = iota
	batchBeginErr                   // opening the transaction failed
	batchFailed                     // pre-commit op failure; transaction aborted
	batchCommitErr                  // the durable commit itself failed
	batchCrashInjected              // power failure injected mid-FASE on this shard
	batchCrashRace                  // a concurrent crash caught this shard mid-FASE
)

// commitBatch applies the batch inside one FASE and acks after the commit
// is durable — directly, or (overlapped protocol) by leaving the published
// batch in flight for a later settle. It reports whether the store crashed
// (the writer must exit).
func (sh *shard) commitBatch(batch []request) (crashed bool) {
	if sh.st.crashing.Load() {
		sh.dropInFlight()
		nackAll(batch, ErrCrashed)
		return true
	}
	results := make([]result, len(batch))
	var plan *commitPlan
	if sh.absorbOn() {
		// A nil batch is a deadline (or shutdown-drain) wakeup: force the
		// accumulator out.
		force := batch == nil
		if sh.crashedDuring(func() { plan = sh.planCommit(batch, force) }) {
			// Injected crash at a merge boundary: only volatile accumulator
			// state was touched, nothing durable. Requests the partial plan
			// already parked are nacked by run's deferred nackParked; nack
			// the rest of the batch here (each request exactly once).
			sh.st.initiateCrash(sh)
			sh.dropInFlight()
			parked := make(map[chan result]bool, sh.acc.pending())
			for i := range sh.acc.parked {
				parked[sh.acc.parked[i].done] = true
			}
			for i := range batch {
				if !parked[batch[i].done] {
					batch[i].done <- result{err: ErrCrashed}
				}
			}
			return true
		}
		if len(plan.writes) == 0 {
			// Every op this plan acks absorbed into nothing (and parked-only
			// plans ack nobody): no FASE.
			return sh.finishAbsorbed(plan)
		}
		batch, results = plan.acks, plan.results
	}
	// Journal pressure: the batch's redo entries must fit before its FASE
	// opens (forcing a checkpoint, or tripping overflow, if not). Counted
	// in logical ops: a batched put journals one entry per pair.
	jneed := logicalOps(batch)
	if plan != nil {
		jneed = len(plan.writes)
	}
	if sh.ensureJournalRoom(jneed) {
		nackAll(batch, ErrCrashed)
		return true
	}
	pre := sh.th.FlushStats()
	outcome, pc, failed := sh.applyBatch(batch, results, plan)
	switch outcome {
	case batchBeginErr, batchCommitErr:
		nackAll(batch, failed)
		return sh.settle()
	case batchFailed:
		// The abort already awaited any in-flight FASE (atlas orders
		// published commits before a rollback's persists); settle delivers
		// its acks.
		sh.aborts.Add(1)
		nackAll(batch, failed)
		return sh.settle()
	case batchCrashInjected:
		// Injected power failure: if it hit mid-FASE the undo log is still
		// active and Recover rolls the batch back in full; if it hit at the
		// ack boundary the batch is durable but nacked, which the service
		// contract permits (ErrCrashed promises nothing either way). An
		// in-flight predecessor is unawaited — still active, rolled back —
		// and was never acked.
		sh.st.initiateCrash(sh)
		sh.dropInFlight()
		nackAll(batch, ErrCrashed)
		return true
	case batchCrashRace:
		sh.dropInFlight()
		nackAll(batch, ErrCrashed)
		return true
	}
	post := sh.th.FlushStats()
	applied, fold := logicalOps(batch), false
	if plan != nil {
		applied, fold = len(plan.writes), plan.fold
	}
	if pc != nil {
		// Overlapped commit: the batch is published and draining. Settle its
		// predecessor (whose drain ran while this batch was applying), then
		// leave this one in flight.
		if sh.settle() {
			nackAll(batch, ErrCrashed)
			return true
		}
		sh.inFlight = &flightBatch{batch: batch, results: results, pc: pc,
			root: sh.db.Snapshot(), gen: sh.db.Generation(), pre: pre, post: post,
			applied: applied, fold: fold}
		return false
	}
	sh.publish()
	sh.note(batch, applied, pre, post)
	for i := range batch {
		batch[i].done <- results[i]
	}
	return false
}

// settle completes the in-flight batch: await its epoch's persistence
// (which commits its undo log), fire the ack hook, install its root for
// readers, and deliver the acks. It reports whether a crash — concurrent,
// or injected at the ack site — requires the writer to exit.
func (sh *shard) settle() (crashed bool) {
	fb := sh.inFlight
	if fb == nil {
		return false
	}
	sh.inFlight = nil
	if sh.crashedDuring(fb.pc.Await) {
		// An injected crash at the undo-commit boundary inside the await:
		// the epoch is persisted but the log is still active, so Recover
		// rolls the batch back — never acked, consistent.
		sh.st.initiateCrash(sh)
		nackAll(fb.batch, ErrCrashed)
		return true
	}
	if sh.st.crashing.Load() {
		// The await may have been cut short by the crash's pipeline abort,
		// leaving the batch's log active (Recover rolls it back). Either
		// way its requesters were never acked, so ErrCrashed is honest.
		nackAll(fb.batch, ErrCrashed)
		return true
	}
	if hook := sh.st.opts.AckHook; hook != nil {
		// The last crash boundary: the commit is durable but no requester
		// has been told. A crash here must lose no data, only acks.
		if sh.crashedDuring(func() { hook(sh.id) }) {
			sh.st.initiateCrash(sh)
			nackAll(fb.batch, ErrCrashed)
			return true
		}
	}
	if fb.fold {
		// Same boundary, for the parked counter acks this commit carries.
		if sh.crashedDuring(func() { sh.absorbHook(AbsorbAck) }) {
			sh.st.initiateCrash(sh)
			nackAll(fb.batch, ErrCrashed)
			return true
		}
	}
	sh.publishView(fb.root, fb.gen)
	sh.note(fb.batch, fb.applied, fb.pre, fb.post)
	for i := range fb.batch {
		fb.batch[i].done <- fb.results[i]
	}
	return false
}

// crashedDuring runs fn, converting a panic claimed by
// Options.IsInjectedCrash into a reported crash — the out-of-FASE mirror
// of applyBatch's recover. settle crosses injection sites too: the
// undo-commit boundary inside the await and the ack boundary after it.
func (sh *shard) crashedDuring(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			claim := sh.st.opts.IsInjectedCrash
			if claim == nil || !claim(r) {
				panic(r)
			}
			crashed = true
		}
	}()
	fn()
	return false
}

// dropInFlight nacks the in-flight batch without settling it: the crash
// path. Its FASE was published but never awaited, so its undo log is still
// active and Recover rolls the batch back — consistent with the nack.
func (sh *shard) dropInFlight() {
	if fb := sh.inFlight; fb != nil {
		sh.inFlight = nil
		nackAll(fb.batch, ErrCrashed)
	}
}

// applyBatch runs the whole FASE — Begin, the batch's mutations, the crash
// hooks, and the commit: a durable synchronous commit normally, or a
// publish (mdb.CommitPublish, pc non-nil) under the overlapped protocol,
// in which case the ack hook and the acks are deferred to settle. A panic
// claimed by Options.IsInjectedCrash — a fault-injection site firing
// inside a store, flush, or undo-log write — abandons the FASE with its
// undo log still active, exactly as a power failure at that instruction
// would; panics it does not claim propagate.
func (sh *shard) applyBatch(batch []request, results []result, plan *commitPlan) (outcome batchOutcome, pc *mdb.PendingCommit, err error) {
	defer func() {
		if r := recover(); r != nil {
			claim := sh.st.opts.IsInjectedCrash
			if claim == nil || !claim(r) {
				panic(r)
			}
			outcome, pc, err = batchCrashInjected, nil, ErrCrashed
		}
	}()
	if plan != nil && plan.hasTrig {
		// Threshold/deadline accumulator commits announce themselves before
		// the FASE begins; a crash here loses only parked (unacked) ops.
		sh.absorbHook(plan.trigger)
	}
	if err := sh.db.Begin(); err != nil {
		return batchBeginErr, nil, err
	}
	var failed error
	if plan != nil {
		// Absorbed commit: results were precomputed by the serial planner;
		// the FASE applies only the net write per touched key. Each physical
		// write is mirrored into the redo journal (deletes of absent keys
		// included — their replay is a no-op).
		for _, w := range plan.writes {
			if w.del {
				_, failed = sh.db.Delete(w.k)
				if failed == nil {
					sh.journalAppend(jOpDel, w.k, 0)
				}
			} else {
				failed = sh.db.Put(w.k, w.v)
				if failed == nil {
					sh.journalAppend(jOpPut, w.k, w.v)
				}
			}
			if failed != nil {
				break
			}
		}
	} else {
		for i := range batch {
			r := &batch[i]
			switch r.op {
			case opPut:
				failed = sh.db.Put(r.k, r.v)
				if failed == nil {
					sh.journalAppend(jOpPut, r.k, r.v)
				}
			case opDel:
				results[i].found, failed = sh.db.Delete(r.k)
				if failed == nil {
					sh.journalAppend(jOpDel, r.k, 0)
				}
			case opPuts:
				for _, p := range r.pairs {
					if failed = sh.db.Put(p.K, p.V); failed != nil {
						break
					}
					sh.journalAppend(jOpPut, p.K, p.V)
				}
			case opIncr, opDecr:
				// Absorption off: an ordinary read-modify-write inside the
				// batch's FASE (Get sees the in-transaction tree, so earlier
				// batch ops are visible). Journaled as the computed put, so
				// replay needs no read-back.
				d := r.v
				if r.op == opDecr {
					d = -d
				}
				cur, _ := sh.db.Get(r.k)
				results[i].val = cur + d
				failed = sh.db.Put(r.k, cur+d)
				if failed == nil {
					sh.journalAppend(jOpPut, r.k, cur+d)
				}
			}
			if failed != nil {
				break
			}
		}
	}
	if failed != nil {
		// Shed the whole batch: roll the transaction back so the committed
		// tree is untouched, and surface the cause (typically
		// mdb.ErrPoolExhausted) to every requester.
		sh.journalAbort()
		if aerr := sh.db.Abort(); aerr != nil {
			failed = fmt.Errorf("%w (abort: %v)", failed, aerr)
		}
		return batchFailed, nil, failed
	}
	// Seal the staged journal entries inside the FASE: the tail/gen words
	// are undo-logged stores, so any crash short of the commit rolls the
	// journal and the tree back together.
	sh.journalSeal()
	if hook := sh.st.opts.CrashBeforeCommit; hook != nil &&
		hook(sh.id, int(sh.batches.Load()), len(batch)) {
		return batchCrashInjected, nil, ErrCrashed
	}
	if sh.st.crashing.Load() {
		// A concurrent crash caught us mid-FASE: abandon without
		// committing, exactly as the power failure would.
		return batchCrashRace, nil, ErrCrashed
	}
	if sh.st.opts.Pipeline.Enabled {
		pc, cerr := sh.db.CommitPublish()
		if cerr != nil {
			return batchCommitErr, nil, cerr
		}
		return batchCommitted, pc, nil
	}
	if err := sh.db.Commit(); err != nil {
		return batchCommitErr, nil, err
	}
	if hook := sh.st.opts.AckHook; hook != nil {
		// The last crash boundary: the commit is durable but no requester
		// has been told. A crash here must lose no data, only acks.
		hook(sh.id)
	}
	if plan != nil && plan.fold {
		// Same boundary, for the parked counter acks this commit carries.
		sh.absorbHook(AbsorbAck)
	}
	return batchCommitted, nil, nil
}
