package kv

import (
	"fmt"
	"math"
	"sync"
	"time"

	"nvmcache/internal/atlas"
	"nvmcache/internal/mdb"
)

type opKind uint8

const (
	opPut opKind = iota
	opDel
)

// request is one queued mutation; done (buffered, capacity 1) carries the
// ack after the containing batch has committed and flushed.
type request struct {
	op   opKind
	k, v uint64
	done chan result
}

type result struct {
	err   error
	found bool
}

// genPages are the pages superseded by the commit of generation gen; a
// snapshot of any generation < gen may still read them.
type genPages struct {
	gen   uint64
	pages []uint64
}

// shard is one engine: a COW B+-tree on its own atlas thread, mutated only
// by its writer goroutine (run), read by anyone through pinned snapshots.
type shard struct {
	id   int
	st   *Store
	th   *atlas.Thread
	db   *mdb.DB
	ch   chan request
	done chan struct{} // closed when the writer goroutine exits

	// Snapshot bookkeeping. curRoot/curGen are the last *committed* root
	// and generation — never a mid-transaction root, which is why readers
	// must go through acquire instead of db.Snapshot.
	snapMu  sync.Mutex
	curRoot uint64
	curGen  uint64
	active  map[uint64]int // snapshot generation → pin count
	pending []genPages     // freed pages awaiting reader drain

	counters
}

func newShard(s *Store, id int, th *atlas.Thread, db *mdb.DB) *shard {
	sh := &shard{
		id: id, st: s, th: th, db: db,
		ch:     make(chan request, s.opts.QueueDepth),
		done:   make(chan struct{}),
		active: make(map[uint64]int),
	}
	sh.curRoot = db.Snapshot()
	sh.curGen = db.Generation()
	db.SetFreeHook(sh.onFreed)
	sh.lats = make([]float64, 0, latRingCap)
	return sh
}

// acquire pins the current committed view for a reader.
func (sh *shard) acquire() (root, gen uint64) {
	sh.snapMu.Lock()
	root, gen = sh.curRoot, sh.curGen
	sh.active[gen]++
	sh.snapMu.Unlock()
	return root, gen
}

// release unpins; eligible pages are recycled at the writer's next commit
// (the pool free list is single-writer).
func (sh *shard) release(gen uint64) {
	sh.snapMu.Lock()
	if sh.active[gen]--; sh.active[gen] <= 0 {
		delete(sh.active, gen)
	}
	sh.snapMu.Unlock()
}

// onFreed is the mdb free hook: it runs on the writer goroutine during
// Commit, parking the superseded pages until readers drain.
func (sh *shard) onFreed(gen uint64, pages []uint64) {
	sh.snapMu.Lock()
	sh.pending = append(sh.pending, genPages{gen: gen, pages: pages})
	sh.snapMu.Unlock()
}

// publish installs the newly committed root for readers and recycles every
// parked page no live snapshot can still reach.
func (sh *shard) publish() {
	sh.snapMu.Lock()
	sh.curRoot = sh.db.Snapshot()
	sh.curGen = sh.db.Generation()
	minGen := uint64(math.MaxUint64)
	for g := range sh.active {
		if g < minGen {
			minGen = g
		}
	}
	var reclaim []uint64
	keep := sh.pending[:0]
	for _, gp := range sh.pending {
		// Pages freed by commit gen are needed by snapshots with
		// generation < gen only.
		if minGen >= gp.gen {
			reclaim = append(reclaim, gp.pages...)
		} else {
			keep = append(keep, gp)
		}
	}
	sh.pending = keep
	sh.snapMu.Unlock()
	if len(reclaim) > 0 {
		sh.db.RecyclePages(reclaim)
	}
}

// run is the shard's writer loop: take the first waiting request, gather a
// batch (bounded by MaxBatch and MaxDelay), commit it as one FASE, ack.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		select {
		case req, ok := <-sh.ch:
			if !ok {
				return
			}
			batch := sh.gather(req)
			if sh.commitBatch(batch) {
				return
			}
		case <-sh.st.crashCh:
			return
		}
	}
}

// gather collects requests for one group commit: it returns when the batch
// is full, when MaxDelay has passed since the batch opened, or when the
// store is shutting down or crashing.
func (sh *shard) gather(first request) []request {
	batch := make([]request, 1, sh.st.opts.MaxBatch)
	batch[0] = first
	if sh.st.opts.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(sh.st.opts.MaxDelay)
	defer timer.Stop()
	for len(batch) < sh.st.opts.MaxBatch {
		select {
		case r, ok := <-sh.ch:
			if !ok {
				return batch
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-sh.st.crashCh:
			return batch
		}
	}
	return batch
}

func nackAll(batch []request, err error) {
	for i := range batch {
		batch[i].done <- result{err: err}
	}
}

// batchOutcome describes how applyBatch left the shard's transaction.
type batchOutcome uint8

const (
	batchCommitted     batchOutcome = iota
	batchBeginErr                   // opening the transaction failed
	batchFailed                     // pre-commit op failure; transaction aborted
	batchCommitErr                  // the durable commit itself failed
	batchCrashInjected              // power failure injected mid-FASE on this shard
	batchCrashRace                  // a concurrent crash caught this shard mid-FASE
)

// commitBatch applies the batch inside one FASE and acks after the commit
// is durable. It reports whether the store crashed (the writer must exit).
func (sh *shard) commitBatch(batch []request) (crashed bool) {
	if sh.st.crashing.Load() {
		nackAll(batch, ErrCrashed)
		return true
	}
	pre := sh.th.FlushStats()
	results := make([]result, len(batch))
	outcome, failed := sh.applyBatch(batch, results)
	switch outcome {
	case batchBeginErr, batchCommitErr:
		nackAll(batch, failed)
		return false
	case batchFailed:
		sh.aborts.Add(1)
		nackAll(batch, failed)
		return false
	case batchCrashInjected:
		// Injected power failure: if it hit mid-FASE the undo log is still
		// active and Recover rolls the batch back in full; if it hit at the
		// ack boundary the batch is durable but nacked, which the service
		// contract permits (ErrCrashed promises nothing either way).
		sh.st.initiateCrash(sh)
		nackAll(batch, ErrCrashed)
		return true
	case batchCrashRace:
		nackAll(batch, ErrCrashed)
		return true
	}
	post := sh.th.FlushStats()
	sh.publish()
	sh.note(batch, pre, post)
	for i := range batch {
		batch[i].done <- results[i]
	}
	return false
}

// applyBatch runs the whole FASE — Begin, the batch's mutations, the
// crash hooks, and the durable commit. A panic claimed by
// Options.IsInjectedCrash — a fault-injection site firing inside a store,
// flush, or undo-log write — abandons the FASE with its undo log still
// active, exactly as a power failure at that instruction would; panics it
// does not claim propagate.
func (sh *shard) applyBatch(batch []request, results []result) (outcome batchOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			claim := sh.st.opts.IsInjectedCrash
			if claim == nil || !claim(r) {
				panic(r)
			}
			outcome, err = batchCrashInjected, ErrCrashed
		}
	}()
	if err := sh.db.Begin(); err != nil {
		return batchBeginErr, err
	}
	var failed error
	for i := range batch {
		r := &batch[i]
		switch r.op {
		case opPut:
			failed = sh.db.Put(r.k, r.v)
		case opDel:
			results[i].found, failed = sh.db.Delete(r.k)
		}
		if failed != nil {
			break
		}
	}
	if failed != nil {
		// Shed the whole batch: roll the transaction back so the committed
		// tree is untouched, and surface the cause (typically
		// mdb.ErrPoolExhausted) to every requester.
		if aerr := sh.db.Abort(); aerr != nil {
			failed = fmt.Errorf("%w (abort: %v)", failed, aerr)
		}
		return batchFailed, failed
	}
	if hook := sh.st.opts.CrashBeforeCommit; hook != nil &&
		hook(sh.id, int(sh.batches.Load()), len(batch)) {
		return batchCrashInjected, ErrCrashed
	}
	if sh.st.crashing.Load() {
		// A concurrent crash caught us mid-FASE: abandon without
		// committing, exactly as the power failure would.
		return batchCrashRace, ErrCrashed
	}
	if err := sh.db.Commit(); err != nil {
		return batchCommitErr, err
	}
	if hook := sh.st.opts.AckHook; hook != nil {
		// The last crash boundary: the commit is durable but no requester
		// has been told. A crash here must lose no data, only acks.
		hook(sh.id)
	}
	return batchCommitted, nil
}
