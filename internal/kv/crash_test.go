package kv

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nvmcache/internal/pmem"
)

// TestCrashMidFASEZeroAckedLoss injects a power failure in the middle of a
// shard's commit FASE while concurrent clients are writing, recovers, and
// checks the service contract both ways: every acked write survives, and
// every ErrCrashed write is fully rolled back (never half-applied).
func TestCrashMidFASEZeroAckedLoss(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 4
	opts.MaxBatch = 16
	opts.MaxDelay = time.Millisecond
	opts.CrashBeforeCommit = func(shard, batch, size int) bool {
		return shard == 0 && batch >= 2
	}
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	type ack struct {
		k, v uint64
	}
	ackedCh := make(chan ack, 1<<16)
	crashedCh := make(chan uint64, 1<<16)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			for i := uint64(0); i < 4000; i++ {
				k := c<<32 | i
				if err := s.Put(k, k+1); err != nil {
					if errors.Is(err, ErrCrashed) {
						crashedCh <- k
					}
					return
				}
				ackedCh <- ack{k, k + 1}
			}
		}(uint64(c))
	}
	wg.Wait()
	close(ackedCh)
	close(crashedCh)
	select {
	case <-s.Crashed():
	case <-time.After(10 * time.Second):
		t.Fatal("crash never took effect (hook not reached?)")
	}
	if s.Heap().Crashes() != 1 {
		t.Fatalf("heap crashed %d times", s.Heap().Crashes())
	}

	s2, rep, err := Recover(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep.FASEsRolledBack == 0 {
		t.Fatal("the injected mid-FASE batch left no active undo log")
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatalf("recovered tree corrupt: %v", err)
	}
	nacked, ncrashed := 0, 0
	for a := range ackedCh {
		nacked++
		if v, ok, err := s2.Get(a.k); err != nil || !ok || v != a.v {
			t.Fatalf("acked write %d lost after crash: %d,%v,%v", a.k, v, ok, err)
		}
	}
	for k := range crashedCh {
		ncrashed++
		if _, ok, _ := s2.Get(k); ok {
			t.Fatalf("ErrCrashed write %d is durable (half-committed batch?)", k)
		}
	}
	if nacked == 0 {
		t.Fatal("no writes acked before the crash")
	}
	t.Logf("acked=%d crashed=%d rolledBack=%d wordsRestored=%d",
		nacked, ncrashed, rep.FASEsRolledBack, rep.WordsRestored)

	// The recovered store keeps serving.
	if err := s2.Put(1<<60, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get(1 << 60); !ok || v != 42 {
		t.Fatalf("post-recovery put lost: %d,%v", v, ok)
	}
}

// TestExternalCrash crashes from outside the writers (the coordinator
// path cmd/nvserver's self-test uses) under concurrent load.
func TestExternalCrash(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 2
	opts.MaxBatch = 8
	opts.MaxDelay = time.Millisecond
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	acked := map[uint64]uint64{}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				k := c<<32 | i
				if err := s.Put(k, k^0xabc); err != nil {
					return
				}
				mu.Lock()
				acked[k] = k ^ 0xabc
				mu.Unlock()
			}
		}(uint64(c))
	}
	time.Sleep(50 * time.Millisecond)
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := s.Crash(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("second crash: %v", err)
	}
	if _, _, err := s.Get(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Get on crashed store: %v", err)
	}
	if err := s.Put(1, 1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Put on crashed store: %v", err)
	}

	s2, _, err := Recover(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k, v := range acked {
		if got, ok, err := s2.Get(k); err != nil || !ok || got != v {
			t.Fatalf("acked write %d lost: %d,%v,%v", k, got, ok, err)
		}
	}
	if len(acked) == 0 {
		t.Fatal("nothing acked before crash")
	}
}
