package kv

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"nvmcache/internal/core"
)

func pipelineOptions() Options {
	opts := DefaultOptions()
	opts.Shards = 4
	opts.MaxDelay = time.Millisecond
	opts.Pipeline = core.PipelineConfig{Enabled: true, Depth: 128, BatchSize: 16}
	return opts
}

// TestPipelinedStoreServes is the normal-operation integration test for the
// overlapped commit protocol: concurrent clients, acked writes readable,
// pipeline counters surfaced through STATS, clean close, clean recovery.
func TestPipelinedStoreServes(t *testing.T) {
	opts := pipelineOptions()
	s := newStore(t, opts)
	const n = 500
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			errs[k] = s.Put(k, k*7+1)
		}(uint64(i))
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != k*7+1 {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
	st := Totals(s.Stats())
	if st.Puts != n {
		t.Fatalf("stats: %+v", st)
	}
	if st.PipeEpochs == 0 {
		t.Fatalf("no pipeline epochs surfaced in stats: %+v", st)
	}
	if !strings.Contains(st.String(), "pipe_epochs=") {
		t.Fatalf("STATS line missing pipeline fields: %s", st.String())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rep, err := Recover(s.Heap(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 0 {
		t.Fatalf("clean shutdown rolled back FASEs: %+v", rep)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get(3); !ok || v != 3*7+1 {
		t.Fatalf("recovered Get(3) = %d,%v", v, ok)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedCrashDuringTraffic crashes a pipelined store mid-traffic
// (an in-flight batch may be published but not yet settled) and checks the
// service contract: every acked write survives recovery with its exact
// value, and the recovered store passes its invariants.
func TestPipelinedCrashDuringTraffic(t *testing.T) {
	opts := pipelineOptions()
	s := newStore(t, opts)
	const writers = 8
	acked := make([]uint64, writers) // highest acked sequence per writer
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w uint64) {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(w*1_000_000+i, i); err != nil {
					if errors.Is(err, ErrCrashed) {
						return
					}
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked[w] = i
			}
		}(uint64(w))
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Crash(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	<-s.Crashed()
	s2, _, err := Recover(s.Heap(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for w := uint64(0); w < writers; w++ {
		for i := uint64(1); i <= acked[w]; i++ {
			v, ok, err := s2.Get(w*1_000_000 + i)
			if err != nil || !ok || v != i {
				t.Fatalf("acked write writer=%d seq=%d lost or torn: %d,%v,%v", w, i, v, ok, err)
			}
		}
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
