package kv

import (
	"errors"
	"sync"
	"testing"
	"time"

	"nvmcache/internal/mdb"
	"nvmcache/internal/pmem"
)

func newStore(t *testing.T, opts Options) *Store {
	t.Helper()
	opts = opts.withDefaults()
	h := pmem.New(int(RecommendedHeapBytes(opts)))
	s, err := Open(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDeleteAcrossShards(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 4
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	const n = 500
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			errs[k] = s.Put(k, k*3)
		}(uint64(i))
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || v != k*3 {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
	found, err := s.Delete(7)
	if err != nil || !found {
		t.Fatalf("Delete(7) = %v,%v", found, err)
	}
	if _, ok, _ := s.Get(7); ok {
		t.Fatal("key 7 survives delete")
	}
	if found, _ := s.Delete(7); found {
		t.Fatal("second delete found the key")
	}
	st := Totals(s.Stats())
	if st.Puts != n || st.Deletes != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Batches == 0 || st.BatchedOps != n+2 {
		t.Fatalf("batch stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Reads still work on the closed (durably drained) store.
	if v, ok, err := s.Get(3); err != nil || !ok || v != 9 {
		t.Fatalf("Get after close = %d,%v,%v", v, ok, err)
	}
	// A clean shutdown recovers with nothing to roll back.
	s2, rep, err := Recover(s.Heap(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FASEsRolledBack != 0 {
		t.Fatalf("clean shutdown rolled back: %+v", rep)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get(3); !ok || v != 9 {
		t.Fatalf("recovered Get(3) = %d,%v", v, ok)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitMaxBatchBound(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.MaxBatch = 8
	opts.MaxDelay = time.Hour // only the size bound may trigger
	s := newStore(t, opts)
	defer s.Close()
	const n = 16 // exactly two full batches
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			if err := s.Put(k, k); err != nil {
				t.Errorf("put %d: %v", k, err)
			}
		}(uint64(i))
	}
	wg.Wait() // acks arrived without any timer or shutdown: size-triggered
	st := s.Stats()[0]
	if st.Batches != 2 || st.BatchedOps != n {
		t.Fatalf("want 2 full batches of 8, got batches=%d ops=%d", st.Batches, st.BatchedOps)
	}
	if st.AvgBatch() != 8 {
		t.Fatalf("avg batch %.2f, want 8", st.AvgBatch())
	}
}

func TestGroupCommitMaxDelayBound(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.MaxBatch = 1 << 20 // unreachable: only the latency bound may trigger
	opts.MaxDelay = 20 * time.Millisecond
	s := newStore(t, opts)
	defer s.Close()
	start := time.Now()
	if err := s.Put(1, 10); err != nil { // a lone request can never fill a batch
		t.Fatal(err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("latency-bound commit took %v", waited)
	}
	st := s.Stats()[0]
	if st.Batches != 1 || st.BatchedOps != 1 {
		t.Fatalf("stats after lone put: %+v", st)
	}
	if v, ok, _ := s.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
}

func TestShardRoutingDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7, 16} {
		hit := make([]int, shards)
		for k := uint64(0); k < 4096; k++ {
			i := ShardIndex(k, shards)
			if i < 0 || i >= shards {
				t.Fatalf("ShardIndex(%d,%d) = %d out of range", k, shards, i)
			}
			if j := ShardIndex(k, shards); j != i {
				t.Fatalf("ShardIndex(%d,%d) unstable: %d then %d", k, shards, i, j)
			}
			hit[i]++
		}
		for i, n := range hit {
			if n == 0 {
				t.Fatalf("%d shards: shard %d never hit", shards, i)
			}
		}
	}
	// The store routes with the same function it exports.
	opts := DefaultOptions()
	opts.Shards = 4
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	defer s.Close()
	perShard := make([]uint64, 4)
	for k := uint64(0); k < 100; k++ {
		if s.ShardFor(k) != ShardIndex(k, 4) {
			t.Fatalf("ShardFor(%d) disagrees with ShardIndex", k)
		}
		perShard[s.ShardFor(k)]++
		if err := s.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range s.Stats() {
		if st.Puts != perShard[i] {
			t.Fatalf("shard %d served %d puts, want %d", i, st.Puts, perShard[i])
		}
	}
}

func TestGracefulShutdownDrainsPending(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 2
	opts.MaxBatch = 1 << 20
	opts.MaxDelay = time.Hour // nothing commits until shutdown
	s := newStore(t, opts)
	const n = 40
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			errs[k] = s.Put(k, k+100)
		}(uint64(i))
	}
	time.Sleep(300 * time.Millisecond) // let every request reach its shard queue
	if st := Totals(s.Stats()); st.Batches != 0 {
		t.Fatalf("batches committed before shutdown: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pending put %d not drained: %v", i, err)
		}
	}
	for k := uint64(0); k < n; k++ {
		if v, ok, err := s.Get(k); err != nil || !ok || v != k+100 {
			t.Fatalf("Get(%d) after drain = %d,%v,%v", k, v, ok, err)
		}
	}
	if st := Totals(s.Stats()); st.BatchedOps != n {
		t.Fatalf("drained ops: %+v", st)
	}
	// New requests are refused after close.
	if err := s.Put(999, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
}

func TestPoolExhaustionShedsBatchAndKeepsServing(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 1
	opts.PoolPages = 64 // tiny: exhausts mid-run
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	defer s.Close()
	var exhausted error
	var acked []uint64
	for k := uint64(0); k < 10000; k++ {
		if err := s.Put(k, k); err != nil {
			exhausted = err
			break
		}
		acked = append(acked, k)
	}
	if exhausted == nil {
		t.Fatal("tiny pool never exhausted")
	}
	if !errors.Is(exhausted, mdb.ErrPoolExhausted) {
		t.Fatalf("error %v does not wrap mdb.ErrPoolExhausted", exhausted)
	}
	// The failed batch was aborted, not half-applied: everything acked is
	// still there and the store still serves reads.
	if st := Totals(s.Stats()); st.Aborts == 0 {
		t.Fatalf("no abort recorded: %+v", st)
	}
	for _, k := range acked {
		if v, ok, err := s.Get(k); err != nil || !ok || v != k {
			t.Fatalf("acked Get(%d) = %d,%v,%v after shed batch", k, v, ok, err)
		}
	}
}
