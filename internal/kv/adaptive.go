package kv

import (
	"time"

	"nvmcache/internal/adaptive"
	"nvmcache/internal/core"
)

// shardControl adapts one shard to the adaptive.Shard control surface. All
// methods publish targets the shard applies at its next safe point — the
// capacity at the next FASE end (core.CapacityControlled), the batch bounds
// at the next gather (atomics), the pipeline depth immediately under the
// pipeline's own lock — so the controller never touches writer-owned state.
type shardControl struct {
	sh *shard
}

func (sc *shardControl) CacheCapacity() int {
	if cc, ok := sc.sh.th.Policy().(core.CapacityControlled); ok {
		return cc.CacheSize()
	}
	return 0
}

func (sc *shardControl) SetCacheCapacity(capacity int) {
	if cc, ok := sc.sh.th.Policy().(core.CapacityControlled); ok {
		cc.RequestCapacity(capacity)
	}
}

func (sc *shardControl) BatchBounds() (int, time.Duration) {
	return int(sc.sh.maxBatch.Load()), time.Duration(sc.sh.maxDelayNs.Load())
}

func (sc *shardControl) SetBatchBounds(maxBatch int, maxDelay time.Duration) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxDelay < 0 {
		maxDelay = 0
	}
	sc.sh.maxBatch.Store(int64(maxBatch))
	sc.sh.maxDelayNs.Store(int64(maxDelay))
}

func (sc *shardControl) PipeDepth() int {
	if p := sc.sh.th.Pipeline(); p != nil {
		return p.Depth()
	}
	return 0
}

func (sc *shardControl) SetPipeDepth(depth int) {
	if p := sc.sh.th.Pipeline(); p != nil {
		p.SetDepth(depth)
	}
}

func (sc *shardControl) AbsorbDeadline() time.Duration {
	if !sc.sh.absorbOn() {
		return 0
	}
	return time.Duration(sc.sh.absorbDeadlineNs.Load())
}

func (sc *shardControl) SetAbsorbDeadline(d time.Duration) {
	if !sc.sh.absorbOn() || d <= 0 {
		return
	}
	sc.sh.absorbDeadlineNs.Store(int64(d))
}

func (sc *shardControl) Counters() adaptive.Counters {
	return adaptive.Counters{
		Batches:    sc.sh.batches.Load(),
		BatchedOps: sc.sh.batchedOps.Load(),
		PipeStalls: sc.sh.pipeStalls.Load(),
		Absorbed:   sc.sh.absorbed.Load(),
		Committed:  sc.sh.committed.Load(),
		CounterOps: sc.sh.incrs.Load() + sc.sh.decrs.Load(),
	}
}

// initAdaptive builds the per-shard sampling taps before the runtime exists
// (Open/Recover hand them to atlas via Options.StoreTap; shard i's thread id
// is i, so the tap slice is index-aligned with the shards).
func initAdaptive(opts Options) []*adaptive.Tap {
	if !opts.Adaptive.Enabled {
		return nil
	}
	taps := make([]*adaptive.Tap, opts.Shards)
	for i := range taps {
		taps[i] = adaptive.NewTap(opts.Adaptive.BurstLength, opts.Adaptive.Hibernation)
	}
	return taps
}

// startAdaptive wires the controller over the built shards and launches its
// decision loop. Called after the shards exist, before serving starts.
func (s *Store) startAdaptive() {
	if s.taps == nil {
		return
	}
	ctls := make([]adaptive.Shard, len(s.shards))
	for i, sh := range s.shards {
		ctls[i] = &shardControl{sh: sh}
	}
	s.ctrl = adaptive.NewController(s.opts.Adaptive, s.taps, ctls)
	s.ctrl.Start()
}

// stopAdaptive halts the controller; safe to call multiple times and with no
// controller at all.
func (s *Store) stopAdaptive() {
	if s.ctrl != nil {
		s.ctrl.Stop()
	}
}

// RequestCacheResize asks shard's persistence policy to retarget its write
// cache to capacity lines, applied by the shard writer at its next FASE end
// (before that FASE's drain, so shrink evictions are covered by the drain's
// barrier). It reports whether the shard's policy supports resizing; it does
// not wait for the resize to take effect. Deterministic workloads (e.g. the
// fault-injection explorer) use this to place resizes at exact points in the
// operation stream, independent of the controller.
func (s *Store) RequestCacheResize(shard, capacity int) bool {
	if shard < 0 || shard >= len(s.shards) {
		return false
	}
	if cc, ok := s.shards[shard].th.Policy().(core.CapacityControlled); ok {
		cc.RequestCapacity(capacity)
		return true
	}
	return false
}

// AdaptiveGauges snapshots every shard's control-plane instrumentation, or
// nil when the adaptive controller is off.
func (s *Store) AdaptiveGauges() []adaptive.ShardGauges {
	if s.ctrl == nil {
		return nil
	}
	out := make([]adaptive.ShardGauges, len(s.shards))
	for i := range out {
		out[i] = s.ctrl.Gauges(i)
	}
	return out
}

// AdaptiveDecisions returns the controller's retained decision trajectory
// (oldest first), or nil when the controller is off.
func (s *Store) AdaptiveDecisions() []adaptive.Decision {
	if s.ctrl == nil {
		return nil
	}
	return s.ctrl.Decisions()
}
