package kv

import (
	"testing"
	"time"
)

func TestPutBatchGetBatch(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 4
	opts.MaxDelay = time.Millisecond
	s := newStore(t, opts)
	defer s.Close()

	const n = 300
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{K: uint64(i), V: uint64(i) * 7}
	}
	if err := s.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	found := make([]bool, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := s.GetBatch(keys, vals, found); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !found[i] || vals[i] != uint64(i)*7 {
			t.Fatalf("GetBatch[%d] = %d,%v, want %d,true", i, vals[i], found[i], uint64(i)*7)
		}
	}
	// Misses report found=false in input order.
	keys[0], keys[1] = 1<<40, 2
	if err := s.GetBatch(keys[:2], vals[:2], found[:2]); err != nil {
		t.Fatal(err)
	}
	if found[0] || !found[1] || vals[1] != 14 {
		t.Fatalf("miss/hit = (%v, %d/%v)", found[0], vals[1], found[1])
	}
	// Logical-op accounting: every pair counts as one put, batched through
	// at most one request per shard.
	st := Totals(s.Stats())
	if st.Puts != n {
		t.Fatalf("puts = %d, want %d", st.Puts, n)
	}
	if st.BatchedOps != n {
		t.Fatalf("batched ops = %d, want %d", st.BatchedOps, n)
	}
	if st.Batches > uint64(opts.Shards) {
		t.Fatalf("batches = %d for one PutBatch over %d shards", st.Batches, opts.Shards)
	}
}

func TestPutBatchDuplicateKeyLastWins(t *testing.T) {
	s := newStore(t, DefaultOptions())
	defer s.Close()
	if err := s.PutBatch([]Pair{{K: 5, V: 1}, {K: 5, V: 2}, {K: 5, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get(5); !ok || v != 3 {
		t.Fatalf("Get(5) = %d,%v, want 3,true", v, ok)
	}
}

func TestPutBatchEmptyAndSingle(t *testing.T) {
	s := newStore(t, DefaultOptions())
	defer s.Close()
	if err := s.PutBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBatch([]Pair{{K: 9, V: 90}}); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get(9); !ok || v != 90 {
		t.Fatalf("Get(9) = %d,%v", v, ok)
	}
	if err := s.GetBatch(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPutBatchDurableAcrossRecover: an acked PutBatch must survive a
// crash-stop (Close here; crash paths are swept by crash_test.go).
func TestPutBatchDurableAcrossRecover(t *testing.T) {
	opts := DefaultOptions()
	s := newStore(t, opts)
	pairs := make([]Pair, 64)
	for i := range pairs {
		pairs[i] = Pair{K: uint64(1000 + i), V: uint64(i)}
	}
	if err := s.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, err := Recover(s.Heap(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := range pairs {
		if v, ok, _ := s2.Get(pairs[i].K); !ok || v != pairs[i].V {
			t.Fatalf("recovered Get(%d) = %d,%v", pairs[i].K, v, ok)
		}
	}
}

// TestPutBatchAbsorb: under absorption a batched put coalesces per key
// like lone PUTs, and the accounting still balances.
func TestPutBatchAbsorb(t *testing.T) {
	opts := DefaultOptions()
	opts.Absorb.Enabled = true
	s := newStore(t, opts)
	defer s.Close()
	pairs := make([]Pair, 100)
	for i := range pairs {
		pairs[i] = Pair{K: uint64(i % 10), V: uint64(i)} // 10 distinct keys
	}
	if err := s.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 10; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = %v,%v", k, ok, err)
		}
		// Last pair for key k is 90+k.
		if v != 90+k {
			t.Fatalf("Get(%d) = %d, want %d", k, v, 90+k)
		}
	}
	st := Totals(s.Stats())
	if st.Puts != 100 {
		t.Fatalf("puts = %d, want 100", st.Puts)
	}
	if st.Absorbed+st.Committed != 100 {
		t.Fatalf("absorbed %d + committed %d != 100", st.Absorbed, st.Committed)
	}
}

// TestGetBatchAllocs pins GetBatch at zero allocations per call with
// reused argument slices — the server's MGET hot path rides it.
func TestGetBatchAllocs(t *testing.T) {
	opts := DefaultOptions()
	opts.Shards = 8
	s := newStore(t, opts)
	defer s.Close()
	keys := make([]uint64, 32)
	vals := make([]uint64, 32)
	found := make([]bool, 32)
	for i := range keys {
		keys[i] = uint64(i)
		if err := s.Put(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.GetBatch(keys, vals, found); err != nil { // warm
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := s.GetBatch(keys, vals, found); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("GetBatch allocs/op = %v, want 0", n)
	}
}
