package faultinject

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"nvmcache/internal/atlas"
	"nvmcache/internal/core"
	"nvmcache/internal/kv"
	"nvmcache/internal/pmem"
)

// KVOptions shapes the kv exploration workloads.
type KVOptions struct {
	// Shards is the store's shard count; keys cycle across shards.
	Shards int
	// Ops and Keys size the deterministic exhaustive workload: Ops
	// operations cycling over a Keys-wide key space, so most writes
	// overwrite earlier ones and undo logging must restore real old
	// values, with a delete mixed in every fifth op.
	Ops  int
	Keys int
	// Policy and Config select the per-shard persistence technique.
	Policy core.PolicyKind
	Config core.Config
	// Runs and Clients size the randomized concurrent mode
	// (ExploreKVRandom): Runs crash runs, each with up to Clients
	// concurrently mutating client goroutines.
	Runs    int
	Clients int
	// Seed is the randomized mode's root seed; 0 takes -faultinject.seed.
	Seed uint64
	// Middleware, when non-nil, wraps each shard's sink between the
	// policy and the injection points (policy → middleware → injector →
	// pmem). Negative tests install DropDrains here.
	Middleware func(core.FlushSink) core.FlushSink
	// Pipeline runs the store under the asynchronous batched flush
	// pipeline and kv's overlapped commit protocol (publish batch N, apply
	// batch N+1, settle), in the pipeline's synchronous mode so the site
	// enumeration stays deterministic: hand-off, per-batch and epoch
	// boundaries join the site space.
	Pipeline bool
	// Absorb runs the store under kv's logical write-absorption layer
	// (same-key batch coalescing plus the counter accumulator), adding the
	// four absorption boundaries — merge, threshold commit, deadline
	// commit, absorb ack — to the site space. AbsorbThreshold and
	// AbsorbDeadline pass through to kv.AbsorbConfig: threshold 1 folds
	// every counter op into its own commit (threshold sites); a large
	// threshold with a short deadline parks each op until the shard's
	// deadline timer commits it (deadline sites). Either shape keeps the
	// blocking sequential workload's site enumeration deterministic — the
	// boundary sequence per op is the same whether the fold happens at
	// plan time or at the timer.
	Absorb          bool
	AbsorbThreshold int
	AbsorbDeadline  time.Duration
	// ResizeEvery, when positive, requests a write-cache resize on every
	// shard before each ResizeEvery-th sequential op, cycling the
	// capacities of resizeCycle. Requests are issued between acked ops —
	// the shard writers are idle — so each is applied at the next FASE end,
	// before that FASE's drain: the shrink evictions it forces become
	// ordinary FlushLine crash sites, enumerated deterministically, and the
	// sweep proves a crash mid-resize loses no acked write. Requires a
	// policy implementing core.CapacityControlled (the soft caches).
	ResizeEvery int
	// CheckpointEvery, when positive, runs the store with per-shard
	// checkpoints enabled (redo journal + double-buffered images) and
	// issues an explicit Store.Checkpoint after every CheckpointEvery-th
	// sequential op. Checkpoints are writer-driven and the workload is
	// blocking-sequential, so every shard is settled when the request
	// arrives — the begin/serialize-page/publish/truncate boundaries join
	// the site space deterministically. The timer and batch-count triggers
	// stay off (Interval 0, IntervalBatches 0) so explicit requests are the
	// only checkpoint cause the enumeration sees.
	CheckpointEvery int
}

// resizeCycle is the capacity schedule ResizeEvery steps through: a hard
// shrink to 1 (maximal evictions at the apply point), a growth to 50 (the
// knee search's upper range), and a shrink to 2.
var resizeCycle = []int{1, 50, 2}

// DefaultKVOptions keeps the exhaustive sweep in the low hundreds of
// sites: every site still gets its own crash run in well under a minute.
func DefaultKVOptions() KVOptions {
	return KVOptions{
		Shards: 2, Ops: 10, Keys: 4,
		Policy: core.SoftCacheOnline, Config: core.DefaultConfig(),
		Runs: 24, Clients: 3,
	}
}

func (o KVOptions) withDefaults() KVOptions {
	d := DefaultKVOptions()
	if o.Shards <= 0 {
		o.Shards = d.Shards
	}
	if o.Ops <= 0 {
		o.Ops = d.Ops
	}
	if o.Keys <= 0 {
		o.Keys = d.Keys
	}
	if o.Config == (core.Config{}) {
		o.Config = d.Config
	}
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.Clients <= 0 {
		o.Clients = d.Clients
	}
	return o
}

// storeOptions builds the small-footprint store configuration under the
// injector's hooks (inj may be nil for recovery, which must replay no
// faults while it repairs the heap).
func (o KVOptions) storeOptions(inj *Injector) kv.Options {
	ko := kv.DefaultOptions()
	ko.Shards = o.Shards
	ko.MaxBatch = 4
	ko.MaxDelay = 200 * time.Microsecond
	ko.QueueDepth = 64
	ko.PoolPages = 256
	ko.LogEntries = 1 << 12
	ko.Policy = o.Policy
	ko.Config = o.Config
	if o.Pipeline {
		ko.Pipeline = pipelineConfig(true, inj)
	}
	if o.Absorb {
		ko.Absorb = kv.AbsorbConfig{
			Enabled:   true,
			Threshold: o.AbsorbThreshold,
			Deadline:  o.AbsorbDeadline,
		}
	}
	if o.CheckpointEvery > 0 {
		// Small geometry keeps the heap compact; RecoverWorkers 1 makes the
		// recovery-phase site enumeration (ExploreKVRecovery) deterministic.
		// No timer, no batch trigger: the explorer's explicit Checkpoint
		// calls are the only cause of a checkpoint.
		ko.Checkpoint = kv.CheckpointConfig{
			Enabled:        true,
			JournalOps:     256,
			MaxPairs:       64,
			RecoverWorkers: 1,
		}
	}
	if inj != nil {
		ko.WrapSink = func(id int32, s core.FlushSink) core.FlushSink {
			s = inj.WrapSink(id, s)
			if o.Middleware != nil {
				s = o.Middleware(s)
			}
			return s
		}
		ko.UndoHook = inj.UndoHook()
		ko.AckHook = func(int) { inj.AckPoint() }
		ko.AbsorbHook = inj.AbsorbHook()
		ko.CheckpointHook = inj.CheckpointHook()
		ko.RecoverHook = inj.RecoverHook()
		ko.IsInjectedCrash = IsCrash
	}
	return ko
}

// AbsorbHook has the shape of kv Options.AbsorbHook, numbering the
// absorption layer's boundaries as injection sites. It lives here rather
// than inject.go because it is the one injector seam that speaks kv's
// vocabulary.
func (in *Injector) AbsorbHook() func(kv.AbsorbOp) {
	return func(op kv.AbsorbOp) {
		switch op {
		case kv.AbsorbMerge:
			in.Point(KindAbsorbMerge)
		case kv.AbsorbThresholdCommit:
			in.Point(KindAbsorbThreshold)
		case kv.AbsorbDeadlineCommit:
			in.Point(KindAbsorbDeadline)
		case kv.AbsorbAck:
			in.Point(KindAbsorbAck)
		}
	}
}

// CheckpointHook has the shape of kv Options.CheckpointHook, numbering the
// checkpoint pipeline's persistence boundaries as injection sites: before
// the snapshot is taken, before each payload chunk persists, before the
// seal that validates the new image, and before the journal head advances
// past entries the older image covers.
func (in *Injector) CheckpointHook() func(kv.CkptOp) {
	return func(op kv.CkptOp) {
		switch op {
		case kv.CkptBegin:
			in.Point(KindCkptBegin)
		case kv.CkptPage:
			in.Point(KindCkptPage)
		case kv.CkptPublish:
			in.Point(KindCkptPublish)
		case kv.CkptTruncate:
			in.Point(KindLogTruncate)
		}
	}
}

type kvOpKind uint8

const (
	kvPut kvOpKind = iota
	kvDel
	kvIncr
	kvDecr
)

type kvOp struct {
	kind kvOpKind
	key  uint64
	val  uint64 // put: value; incr/decr: delta
}

// exhaustiveOps builds the deterministic sequential workload: puts cycling
// a narrow key space (so undo logging restores real old values), a delete
// every fifth op, and a counter op (incr or decr) every fourth — with
// absorption off these take the read-modify-write path inside the FASE,
// with absorption on they park in the accumulator and commit as net
// deltas, putting every absorption boundary into the site space.
func exhaustiveOps(o KVOptions) []kvOp {
	ops := make([]kvOp, o.Ops)
	for i := range ops {
		key := uint64(i % o.Keys)
		switch {
		case (i+1)%5 == 0:
			ops[i] = kvOp{kind: kvDel, key: key}
		case i%4 == 2 && i%8 == 2:
			ops[i] = kvOp{kind: kvIncr, key: key, val: uint64(i) + 3}
		case i%4 == 2:
			ops[i] = kvOp{kind: kvDecr, key: key, val: uint64(i) + 1}
		default:
			ops[i] = kvOp{kind: kvPut, key: key, val: 0xBEE5_0000 + uint64(i) + 1}
		}
	}
	return ops
}

// applyOps computes the expected key→value state after ops[:n], with kv's
// counter semantics: wrapping uint64 arithmetic, missing keys counting
// from zero (an incr/decr always leaves its key present).
func applyOps(ops []kvOp, n int) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, op := range ops[:n] {
		switch op.kind {
		case kvDel:
			delete(m, op.key)
		case kvIncr:
			m[op.key] += op.val
		case kvDecr:
			m[op.key] -= op.val
		default:
			m[op.key] = op.val
		}
	}
	return m
}

// kvSeqRun opens a fresh store under inj and issues the deterministic op
// sequence one at a time — each op is its own single-request batch through
// the full group-commit path (gather, FASE, commit, ack), which is what
// makes the site enumeration identical run to run. It returns the heap,
// how many ops were acked, and errInjected if the armed site crashed the
// store.
func kvSeqRun(o KVOptions, ops []kvOp, inj *Injector) (h *pmem.Heap, acked int, err error) {
	ko := o.storeOptions(inj)
	h = pmem.New(int(2 * kv.RecommendedHeapBytes(ko)))
	st, err := kv.Open(h, ko)
	if err != nil {
		return nil, 0, err
	}
	// Enumeration starts only now: the site space is the serving path, not
	// the store's own setup.
	inj.Enable()
	defer inj.Disable()
	for i, op := range ops {
		if o.ResizeEvery > 0 && i%o.ResizeEvery == 0 {
			c := resizeCycle[(i/o.ResizeEvery)%len(resizeCycle)]
			for sh := 0; sh < o.Shards; sh++ {
				if !st.RequestCacheResize(sh, c) {
					return h, acked, fmt.Errorf("shard %d: policy %v cannot resize", sh, o.Policy)
				}
			}
		}
		var err error
		switch op.kind {
		case kvDel:
			_, err = st.Delete(op.key)
		case kvIncr:
			_, err = st.Incr(op.key, op.val)
		case kvDecr:
			_, err = st.Decr(op.key, op.val)
		default:
			err = st.Put(op.key, op.val)
		}
		switch {
		case err == nil:
			acked++
		case errors.Is(err, kv.ErrCrashed):
			<-st.Crashed()
			return h, acked, errInjected
		default:
			return h, acked, err
		}
		if o.CheckpointEvery > 0 && (i+1)%o.CheckpointEvery == 0 {
			// Every shard is settled (the workload blocks per op), so the
			// checkpoint runs at a consistent tree/journal point and its
			// boundary sequence is identical run to run.
			switch cerr := st.Checkpoint(); {
			case cerr == nil:
			case errors.Is(cerr, kv.ErrCrashed):
				<-st.Crashed()
				return h, acked, errInjected
			default:
				return h, acked, cerr
			}
		}
	}
	inj.Disable()
	if err := st.Close(); err != nil {
		return h, acked, err
	}
	return h, acked, nil
}

// recoverAndVerifyKV recovers a crashed heap and checks the service
// contract: every acked op's effect is present with its exact value (no
// acked write lost), the single nacked op is fully rolled back (no unacked
// write visible) — except when the crash fired at the ack boundary, after
// its durable commit, where it must instead be fully applied — the tree
// invariants hold, the heap is self-consistent, and no dirty lines remain
// once the recovered store closes.
func recoverAndVerifyKV(o KVOptions, h *pmem.Heap, ops []kvOp, acked int, crash Crash) (checks int, rrep atlas.RecoveryReport, err error) {
	st, rrep, err := kv.Recover(h, o.storeOptions(nil))
	if err != nil {
		return 0, rrep, err
	}
	if err := st.CheckInvariants(); err != nil {
		return checks, rrep, err
	}
	checks++
	visible := acked
	if (crash.Kind == KindAck || crash.Kind == KindAbsorbAck) && acked < len(ops) {
		// The nacked op's batch committed durably before the ack boundary
		// crashed: it must be visible, exactly once, untorn. KindAbsorbAck is
		// the same boundary for an absorbed commit's parked counter acks; a
		// net-null op acked without a FASE crosses KindAck too, and counting
		// it visible is still exact because its net effect on the expected
		// state is nothing.
		visible = acked + 1
	}
	want := applyOps(ops, visible)
	for k := uint64(0); k < uint64(o.Keys); k++ {
		got, found, err := st.Get(k)
		if err != nil {
			return checks, rrep, err
		}
		wantV, wantFound := want[k]
		if found != wantFound || (found && got != wantV) {
			return checks, rrep, fmt.Errorf("key %d: got (%#x, present=%v), want (%#x, present=%v)",
				k, got, found, wantV, wantFound)
		}
		checks++
	}
	if err := st.Close(); err != nil {
		return checks, rrep, err
	}
	if err := h.CheckConsistency(); err != nil {
		return checks, rrep, err
	}
	checks++
	if n := h.DirtyCount(); n != 0 {
		return checks, rrep, fmt.Errorf("%d dirty lines after recovered store closed", n)
	}
	checks++
	return checks, rrep, nil
}

// ExploreKV exhaustively explores every injection site of the kv serving
// path: one counting run enumerates the boundaries (undo appends, line
// write-backs, drain steps, ack boundaries), then each site gets its own
// fresh store, a crash at exactly that boundary, kv.Recover, and the full
// service-contract check. The first violated invariant aborts the sweep
// with an error naming the site and boundary kind.
func ExploreKV(o KVOptions) (Report, error) {
	o = o.withDefaults()
	ops := exhaustiveOps(o)
	counter := NewCounting()
	_, acked, err := kvSeqRun(o, ops, counter)
	if err != nil {
		return Report{}, fmt.Errorf("faultinject: counting run: %w", err)
	}
	if acked != len(ops) {
		return Report{}, fmt.Errorf("faultinject: counting run acked %d/%d ops", acked, len(ops))
	}
	rep := Report{Sites: counter.Sites(), Kinds: counter.Kinds()}
	for site := 0; site < rep.Sites; site++ {
		inj := NewArmed(site)
		h, acked, err := kvSeqRun(o, ops, inj)
		if !errors.Is(err, errInjected) {
			if err != nil {
				return rep, fmt.Errorf("faultinject: run %d: %w", site, err)
			}
			return rep, fmt.Errorf("faultinject: site %d never fired (%d sites enumerated; workload not deterministic?)",
				site, rep.Sites)
		}
		crash, _ := inj.Fired()
		checks, rrep, err := recoverAndVerifyKV(o, h, ops, acked, crash)
		rep.Checks += checks
		rep.FASEsRolledBack += rrep.FASEsRolledBack
		rep.WordsRestored += rrep.WordsRestored
		if err != nil {
			return rep, fmt.Errorf("faultinject: invariant violated after %v (acked %d/%d ops): %w",
				crash, acked, len(ops), err)
		}
		rep.Runs++
		rep.Crashes++
	}
	return rep, nil
}

// genCrashedKVHeap re-runs the deterministic workload with the given
// serving site armed, producing a bit-identical crashed heap on every
// call — the recovery explorer's way of getting a fresh copy of "the same
// crash" for each recovery-phase site it wants to cut.
func genCrashedKVHeap(o KVOptions, ops []kvOp, servingSite int) (*pmem.Heap, int, Crash, error) {
	inj := NewArmed(servingSite)
	h, acked, err := kvSeqRun(o, ops, inj)
	if !errors.Is(err, errInjected) {
		if err != nil {
			return nil, 0, Crash{}, err
		}
		return nil, 0, Crash{}, fmt.Errorf("serving site %d never fired", servingSite)
	}
	crash, _ := inj.Fired()
	return h, acked, crash, nil
}

// ExploreKVRecovery crashes the recovery itself. For a spread of serving
// crash shapes (each a deterministic armed site in the checkpointed
// serving sweep), it enumerates every persistence boundary crossed while
// kv.Recover repairs that heap — undo rollbacks, rebuild-FASE flushes,
// replay batches, generation installs, repair-checkpoint pages — then, per
// boundary, regenerates the identical crashed heap, cuts the recovery at
// exactly that point (kv.Recover must return ErrCrashed with the heap
// quiesced), and proves idempotence: a second, clean Recover must converge
// to the exact expected state, same as if the first recovery had never been
// interrupted. RecoverWorkers is pinned to 1 so the recovery-phase site
// enumeration is deterministic.
func ExploreKVRecovery(o KVOptions) (Report, error) {
	o = o.withDefaults()
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 3
	}
	ops := exhaustiveOps(o)
	counter := NewCounting()
	if _, acked, err := kvSeqRun(o, ops, counter); err != nil {
		return Report{}, fmt.Errorf("faultinject: counting run: %w", err)
	} else if acked != len(ops) {
		return Report{}, fmt.Errorf("faultinject: counting run acked %d/%d ops", acked, len(ops))
	}
	serving := counter.Sites()
	if serving == 0 {
		return Report{}, errors.New("faultinject: no serving sites enumerated")
	}
	// A handful of serving shapes spread across the run: early (little
	// durable state, maybe no image yet), around the checkpoints in the
	// middle, and the very last boundary (journal suffix at its longest).
	shapes := []int{0, serving / 4, serving / 2, 3 * serving / 4, serving - 1}
	rep := Report{Kinds: make(map[Kind]int)}
	seen := make(map[int]bool)
	for _, s := range shapes {
		if seen[s] {
			continue
		}
		seen[s] = true
		h, acked, crash, err := genCrashedKVHeap(o, ops, s)
		if err != nil {
			return rep, fmt.Errorf("faultinject: serving shape %d: %w", s, err)
		}
		// Counting pass over this heap's recovery. The injector is disabled
		// again before the recovered store is closed, so the enumeration
		// covers exactly the Recover window.
		rcount := NewCounting()
		rcount.Enable()
		st, _, err := kv.Recover(h, o.storeOptions(rcount))
		rcount.Disable()
		if err != nil {
			return rep, fmt.Errorf("faultinject: shape %d: counting recovery: %w", s, err)
		}
		if err := st.Close(); err != nil {
			return rep, fmt.Errorf("faultinject: shape %d: close after counting recovery: %w", s, err)
		}
		rsites := rcount.Sites()
		if rsites == 0 {
			return rep, fmt.Errorf("faultinject: shape %d: recovery crossed no boundaries", s)
		}
		rep.Sites += rsites
		for k, n := range rcount.Kinds() {
			rep.Kinds[k] += n
		}
		for site := 0; site < rsites; site++ {
			h, acked2, _, err := genCrashedKVHeap(o, ops, s)
			if err != nil {
				return rep, fmt.Errorf("faultinject: shape %d site %d: regenerate: %w", s, site, err)
			}
			if acked2 != acked {
				return rep, fmt.Errorf("faultinject: shape %d not deterministic: acked %d then %d", s, acked, acked2)
			}
			rinj := NewArmed(site)
			rinj.Enable()
			_, _, rerr := kv.Recover(h, o.storeOptions(rinj))
			rinj.Disable()
			if !errors.Is(rerr, kv.ErrCrashed) {
				if rerr != nil {
					return rep, fmt.Errorf("faultinject: shape %d recovery site %d: %w", s, site, rerr)
				}
				return rep, fmt.Errorf("faultinject: shape %d recovery site %d never fired (%d sites; recovery not deterministic?)",
					s, site, rsites)
			}
			rcrash, fired := rinj.Fired()
			if !fired {
				return rep, fmt.Errorf("faultinject: shape %d recovery site %d: ErrCrashed without a fired site", s, site)
			}
			// Second, clean recovery of the twice-crashed heap: the exact
			// acked-state oracle still decides, against the original serving
			// crash's ack-boundary semantics.
			checks, rrep, err := recoverAndVerifyKV(o, h, ops, acked, crash)
			rep.Checks += checks
			rep.FASEsRolledBack += rrep.FASEsRolledBack
			rep.WordsRestored += rrep.WordsRestored
			if err != nil {
				return rep, fmt.Errorf("faultinject: shape %d (%v): recovery crashed at %v, second recovery violated invariant: %w",
					s, crash, rcrash, err)
			}
			rep.Runs++
			rep.Crashes++
		}
	}
	return rep, nil
}

// randSchedule is one randomized run's sampled shape.
type randSchedule struct {
	maxBatch   int
	maxDelayUS int
	clients    int
	opsPer     int
	keysPer    int
	target     int
}

// keyWrites tracks, for one key, the values issued in order and the index
// of the last acked one (-1: none acked).
type keyWrites struct {
	vals  []uint64
	acked int
}

// counterKey is client c's private counter key, disjoint from its put
// slots (keysPer stays far below 1<<16).
func counterKey(c int) uint64 { return uint64(c)<<20 | 1<<16 }

// ExploreKVRandom is the seeded randomized mode for long-running sweeps:
// each run samples a concurrent schedule (clients, batch shape) and a
// crash site from one PCG stream, so a failure reproduces exactly from the
// reported seed (settable with -faultinject.seed). Group-commit batching
// makes concurrent site spaces nondeterministic, so a run may miss its
// armed site; missed runs complete, are verified crash-free, and are
// tallied in Report.Missed.
//
// The per-key invariant is weaker than the sequential mode's exact-state
// check, because ack-boundary crashes legally commit nacked writes: a
// key's recovered value must be one of the values written to it no older
// than its last acked write, and a key may be absent only if none of its
// writes were acked.
func ExploreKVRandom(o KVOptions) (Report, error) {
	o = o.withDefaults()
	seed := o.Seed
	if seed == 0 {
		seed = FlagSeed()
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	rep := Report{Seed: seed}
	fail := func(sched randSchedule, err error) (Report, error) {
		return rep, fmt.Errorf("faultinject: randomized run %d (seed %d, schedule %+v): %w",
			rep.Runs, seed, sched, err)
	}
	for run := 0; run < o.Runs; run++ {
		sched := randSchedule{
			maxBatch:   1 + rng.IntN(8),
			maxDelayUS: 50 + rng.IntN(200),
			clients:    2 + rng.IntN(o.Clients),
			opsPer:     6 + rng.IntN(10),
			keysPer:    2 + rng.IntN(4),
		}
		// A counting pass over the same schedule estimates the site space;
		// the armed site is drawn a little beyond it so some runs
		// deliberately miss and exercise the crash-free path.
		counter := NewCounting()
		if _, _, err := kvRandRun(o, sched, counter, rng.Uint64()); err != nil {
			return fail(sched, err)
		}
		est := counter.Sites()
		rep.Sites += est
		sched.target = rng.IntN(est + est/4 + 1)
		inj := NewArmed(sched.target)
		checks, rrep, err := kvRandRun(o, sched, inj, rng.Uint64())
		rep.Runs++
		rep.Checks += checks
		rep.FASEsRolledBack += rrep.FASEsRolledBack
		rep.WordsRestored += rrep.WordsRestored
		if err != nil {
			return fail(sched, err)
		}
		if _, fired := inj.Fired(); fired {
			rep.Crashes++
		} else {
			rep.Missed++
		}
	}
	return rep, nil
}

// kvRandRun executes one concurrent schedule under inj, then recovers (if
// the site fired) and verifies the per-key invariant. workloadSeed only
// perturbs client op interleaving hints, not correctness.
func kvRandRun(o KVOptions, sched randSchedule, inj *Injector, workloadSeed uint64) (checks int, rrep atlas.RecoveryReport, err error) {
	ko := o.storeOptions(inj)
	ko.MaxBatch = sched.maxBatch
	ko.MaxDelay = time.Duration(sched.maxDelayUS) * time.Microsecond
	h := pmem.New(int(2 * kv.RecommendedHeapBytes(ko)))
	st, err := kv.Open(h, ko)
	if err != nil {
		return 0, rrep, err
	}
	inj.Enable()
	defer inj.Disable()

	logs := make([][]keyWrites, sched.clients)
	ctrs := make([]keyWrites, sched.clients)
	var wg sync.WaitGroup
	for c := 0; c < sched.clients; c++ {
		keys := make([]keyWrites, sched.keysPer)
		for i := range keys {
			keys[i].acked = -1
		}
		logs[c] = keys
		ctrs[c].acked = -1
		wg.Add(1)
		go func(c int, crng *rand.Rand) {
			defer wg.Done()
			for i := 0; i < sched.opsPer; i++ {
				if i%3 == 2 {
					// Every third op increments the client's private counter
					// key. Recording the running sums as the issued values
					// makes the per-key prefix invariant below apply
					// unchanged: each client has at most one op in flight, so
					// a recovered counter is the last acked sum or its
					// successor — with absorption on, the successor's delta
					// may have parked in the accumulator and committed as a
					// net delta (or been nacked with nothing durable).
					kw := &ctrs[c]
					d := 1 + uint64(crng.IntN(7))
					var last uint64
					if n := len(kw.vals); n > 0 {
						last = kw.vals[n-1]
					}
					kw.vals = append(kw.vals, last+d)
					if _, err := st.Incr(counterKey(c), d); err != nil {
						return
					}
					kw.acked = len(kw.vals) - 1
					continue
				}
				slot := crng.IntN(sched.keysPer)
				key := uint64(c)<<20 | uint64(slot)
				val := uint64(c)<<32 | uint64(i+1)
				kw := &logs[c][slot]
				kw.vals = append(kw.vals, val)
				if err := st.Put(key, val); err != nil {
					// ErrCrashed (or a racing nack): stop; the write stays
					// recorded as issued-but-unacked.
					return
				}
				kw.acked = len(kw.vals) - 1
			}
		}(c, rand.New(rand.NewPCG(workloadSeed, uint64(c))))
	}
	wg.Wait()
	inj.Disable()

	if _, fired := inj.Fired(); fired {
		<-st.Crashed()
		st, rrep, err = kv.Recover(h, o.storeOptions(nil))
		if err != nil {
			return 0, rrep, err
		}
	}
	if err := st.CheckInvariants(); err != nil {
		return checks, rrep, err
	}
	checks++
	checkKey := func(key uint64, kw *keyWrites) error {
		got, found, err := st.Get(key)
		if err != nil {
			return err
		}
		if !found {
			if kw.acked >= 0 {
				return fmt.Errorf("key %#x absent but write %d was acked", key, kw.acked)
			}
			return nil
		}
		for i := max(kw.acked, 0); i < len(kw.vals); i++ {
			if kw.vals[i] == got {
				return nil
			}
		}
		return fmt.Errorf("key %#x = %#x, not among writes ≥ last acked (%v, acked %d)",
			key, got, kw.vals, kw.acked)
	}
	for c := range logs {
		for slot := range logs[c] {
			key := uint64(c)<<20 | uint64(slot)
			if err := checkKey(key, &logs[c][slot]); err != nil {
				return checks, rrep, err
			}
			checks++
		}
		if err := checkKey(counterKey(c), &ctrs[c]); err != nil {
			return checks, rrep, err
		}
		checks++
	}
	if err := st.Close(); err != nil {
		return checks, rrep, err
	}
	if err := h.CheckConsistency(); err != nil {
		return checks, rrep, err
	}
	checks++
	if n := h.DirtyCount(); n != 0 {
		return checks, rrep, fmt.Errorf("%d dirty lines after store closed", n)
	}
	checks++
	return checks, rrep, nil
}
